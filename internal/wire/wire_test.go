package wire

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"gigascope/internal/exec"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// watchdog panics with full stacks if the test has not finished within d
// — a deadlocked shutdown path fails loudly with the blocked goroutines
// visible instead of hanging the whole package run.
func watchdog(t *testing.T, d time.Duration) (cancel func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic(fmt.Sprintf("watchdog: %s still running after %v:\n%s", t.Name(), d, buf[:n]))
		}
	}()
	return func() { close(done) }
}

// leakCheck snapshots the goroutine count; the returned func fails the
// test if the count has not returned to the baseline shortly after —
// the shutdown paths must not leave readers, writers, accept loops, or
// backoff sleepers behind.
func leakCheck(t *testing.T) func() {
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d now vs %d at start\n%s", runtime.NumGoroutine(), base, buf[:n])
	}
}

// tempSock returns a socket path short enough for sun_path (t.TempDir
// paths can blow the 104-byte limit).
func tempSock(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "gsw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return filepath.Join(dir, "s.sock")
}

// newFeedManager builds an RTS exporting one stream "feed", published
// through a RemoteSource handle (a push-driven source node — the
// simplest way for a test to emit exact batches on the server side).
func newFeedManager(t *testing.T) (*rts.Manager, *rts.RemoteSource) {
	t.Helper()
	m := rts.NewManager(schema.NewCatalog(), rts.Config{})
	src, err := m.AddRemoteSource("feed", feedSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, src
}

func tupleBatch(ts ...uint64) exec.Batch {
	var b exec.Batch
	for _, v := range ts {
		b = append(b, exec.TupleMsg(feedTuple(v, 0x0a000001, "t")))
	}
	return b
}

// recvTuples reads from sub until n tuples arrive, returning them plus
// the number of heartbeats seen on the way.
func recvTuples(t *testing.T, sub *rts.Subscription, n int) (tuples []schema.Tuple, heartbeats int) {
	t.Helper()
	timeout := time.After(10 * time.Second)
	for len(tuples) < n {
		select {
		case b, ok := <-sub.C:
			if !ok {
				t.Fatalf("stream closed after %d/%d tuples", len(tuples), n)
			}
			for _, m := range b {
				if m.IsHeartbeat() {
					heartbeats++
				} else {
					tuples = append(tuples, m.Tuple)
				}
			}
		case <-timeout:
			t.Fatalf("timed out after %d/%d tuples", len(tuples), n)
		}
	}
	return tuples, heartbeats
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerCloseMidHandshake pins the shutdown-ordering contract: a
// Server.Close racing connections parked mid-handshake (nothing sent,
// and a half-written frame header) must return promptly and leave no
// goroutines behind.
func TestServerCloseMidHandshake(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 30*time.Second)()

	mgr, _ := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	srv, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Conn 1: connects and says nothing — server blocked reading hello.
	c1, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Conn 2: half a frame header, then silence.
	c2, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Write([]byte{frameHello, 0x00})
	// Let the server accept both and park in the handshake reads.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v with connections mid-handshake", d)
	}
}

// TestClientCloseDuringBackoff pins the other half of the contract:
// Close while the client is asleep in a (deliberately huge) backoff
// window must interrupt the sleep and return promptly.
func TestClientCloseDuringBackoff(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 30*time.Second)()

	mgr, _ := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	srv, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 1})
	if err != nil {
		t.Fatal(err)
	}

	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		BackoffMin: time.Hour, BackoffMax: time.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server: the client's read fails and it enters the
	// hour-long jittered backoff sleep.
	srv.Close()
	waitFor(t, "client in backoff", func() bool { return cl.PeerStats().State == "backoff" })

	start := time.Now()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v during backoff sleep", d)
	}
	if st := cl.PeerStats().State; st != "closed" {
		t.Fatalf("state after Close: %q", st)
	}
}

// TestReconnectResume is the deterministic kill-and-restart scenario:
// the server dies mid-stream, tuples are published while the client is
// away, the server restarts as the same incarnation, and the client
// must resume with the gap counted exactly and a gap punctuation
// injected between the pre-kill and post-resume tuples.
func TestReconnectResume(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 60*time.Second)()

	mgr, feed := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	scfg := ServerConfig{Instance: 7}
	srvA, err := ListenAndServe(mgr, "unix", sock, scfg)
	if err != nil {
		t.Fatal(err)
	}

	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed", LocalName: "import",
		BackoffMin: 5 * time.Millisecond, BackoffMax: 40 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sub, err := cmgr.Subscribe("import", 64)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: three tuples arrive normally.
	feed.Publish(tupleBatch(1, 2, 3), 3, 100)
	got, hbs := recvTuples(t, sub, 3)
	if hbs != 0 {
		t.Fatalf("phase 1: %d unexpected heartbeats", hbs)
	}

	// Kill the server; publish two tuples into the void. The stream's
	// cumulative count advances — these are the tuples the client must
	// account as lost.
	srvA.Close()
	feed.Publish(tupleBatch(4, 5), 2, 200)

	// Restart as the same incarnation on the same socket.
	srvB, err := ListenAndServe(mgr, "unix", sock, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	waitFor(t, "reconnect", func() bool {
		ps := cl.PeerStats()
		return ps.Reconnects == 1 && ps.State == "connected"
	})

	// Phase 2: four more tuples after resume.
	feed.Publish(tupleBatch(6, 7, 8, 9), 4, 300)
	got2, hbs2 := recvTuples(t, sub, 4)

	ps := cl.PeerStats()
	if ps.GapTuples != 2 {
		t.Fatalf("gapTuples = %d, want exactly 2 (same-incarnation resume)", ps.GapTuples)
	}
	if ps.GapEvents != 1 || ps.Reconnects != 1 {
		t.Fatalf("gapEvents=%d reconnects=%d, want 1/1", ps.GapEvents, ps.Reconnects)
	}
	if hbs2 < 1 {
		t.Fatal("no gap punctuation between pre-kill and post-resume tuples")
	}
	for i, want := range []uint64{1, 2, 3} {
		if got[i][0].Uint() != want {
			t.Fatalf("phase 1 tuple %d: time %d want %d", i, got[i][0].Uint(), want)
		}
	}
	for i, want := range []uint64{6, 7, 8, 9} {
		if got2[i][0].Uint() != want {
			t.Fatalf("phase 2 tuple %d: time %d want %d", i, got2[i][0].Uint(), want)
		}
	}
}

// TestReconnectAcrossRestartUnquantifiable: when the exporter comes back
// as a NEW incarnation (its counters reset), the loss is real but not
// quantifiable — the client must record the gap event without inventing
// a tuple count.
func TestReconnectAcrossRestartUnquantifiable(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 60*time.Second)()

	mgr, feed := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	srvA, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 7})
	if err != nil {
		t.Fatal(err)
	}
	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		BackoffMin: 5 * time.Millisecond, BackoffMax: 40 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sub, err := cmgr.Subscribe("feed", 64)
	if err != nil {
		t.Fatal(err)
	}
	feed.Publish(tupleBatch(1), 1, 100)
	recvTuples(t, sub, 1)

	srvA.Close()
	feed.Publish(tupleBatch(2, 3), 2, 200) // lost, and unaccountable
	srvB, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	waitFor(t, "reconnect", func() bool {
		ps := cl.PeerStats()
		return ps.Reconnects == 1 && ps.State == "connected"
	})

	ps := cl.PeerStats()
	// Instance changed: a new-incarnation handshake must not project the
	// fresh counter onto the old one. (The restarted exporter reports its
	// cumulative count, which here keeps growing because both servers
	// share one manager — the point is the client must not trust it
	// across an instance change.)
	if ps.GapTuples != 0 {
		t.Fatalf("gapTuples = %d across an instance change, want 0 (unquantifiable)", ps.GapTuples)
	}
	if ps.GapEvents != 1 {
		t.Fatalf("gapEvents = %d, want 1", ps.GapEvents)
	}
}

// fakeServer is a hand-rolled peer for failure-injection at the protocol
// level: it completes the handshake, then behaves as told (silence,
// etc.). Close tears down the listener and every accepted conn.
type fakeServer struct {
	ln       net.Listener
	instance uint64
	mu       sync.Mutex
	conns    []net.Conn
	wg       sync.WaitGroup
}

func newFakeServer(t *testing.T, sock string, instance uint64) *fakeServer {
	t.Helper()
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, instance: instance}
	fs.wg.Add(1)
	go fs.accept()
	return fs
}

func (fs *fakeServer) accept() {
	defer fs.wg.Done()
	for {
		c, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns = append(fs.conns, c)
		fs.mu.Unlock()
		fs.wg.Add(1)
		go func(c net.Conn) {
			defer fs.wg.Done()
			var buf []byte
			typ, _, err := readFrame(c, DefaultMaxFrame, &buf)
			if err != nil || typ != frameHello {
				c.Close()
				return
			}
			sc := feedSchema()
			hs := schemaFrame{Instance: fs.instance, Fingerprint: SchemaFingerprint(sc), Schema: sc}
			c.Write(endFrame(encodeSchemaFrame(beginFrame(nil, frameSchema), hs)))
			// ... and then total silence: no batches, no keepalives.
		}(c)
	}
}

// closeListener stops accepting without touching live conns: the peer
// stays connected but will never hear from us again — the stalled-peer
// scenario, as opposed to Close's killed-peer one.
func (fs *fakeServer) closeListener() {
	fs.ln.Close()
}

func (fs *fakeServer) Close() {
	fs.ln.Close()
	fs.mu.Lock()
	for _, c := range fs.conns {
		c.Close()
	}
	fs.mu.Unlock()
	fs.wg.Wait()
}

// TestHeartbeatTimeoutDropPartition: a peer that stops sending anything
// (no keepalives) must be detected via read-deadline heartbeat misses;
// with DegradeDropPartition and no listener to redial, the client
// declares the peer dead and closes the local stream so downstream
// continues without this partition.
func TestHeartbeatTimeoutDropPartition(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 60*time.Second)()

	sock := tempSock(t)
	fs := newFakeServer(t, sock, 99)
	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		ReadTimeout: 30 * time.Millisecond, HBMissLimit: 2,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 10 * time.Millisecond, Seed: 3,
		Degrade: DegradeDropPartition, DeadAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sub, err := cmgr.Subscribe("feed", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Take the listener away (so redials fail) but leave the conn up and
	// silent, and let the stall play out: 2 read timeouts -> stalled ->
	// 2 failed dials -> dead.
	defer fs.Close()
	fs.closeListener()
	select {
	case <-cl.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("client never declared the peer dead")
	}
	ps := cl.PeerStats()
	if ps.State != "dead" {
		t.Fatalf("state = %q, want dead", ps.State)
	}
	if ps.HBMisses < 2 {
		t.Fatalf("hbMisses = %d, want >= HBMissLimit", ps.HBMisses)
	}
	if ps.GapEvents != 1 {
		t.Fatalf("gapEvents = %d, want 1 (the death punctuation)", ps.GapEvents)
	}
	// The local stream must close: gap punctuation first, then close.
	sawHB := false
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				sawHB = true
			} else {
				t.Fatalf("unexpected tuple from a silent peer: %v", m.Tuple)
			}
		}
	}
	if !sawHB {
		t.Fatal("no gap punctuation before the partition dropped")
	}
}

// TestHeartbeatTimeoutHold: same silent-peer stall, but with the default
// hold-and-wait policy the client must keep retrying (never dead, local
// stream stays open) and recover when the peer returns.
func TestHeartbeatTimeoutHold(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 60*time.Second)()

	sock := tempSock(t)
	fs := newFakeServer(t, sock, 99)
	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		ReadTimeout: 30 * time.Millisecond, HBMissLimit: 2,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 4,
		Degrade: DegradeHold,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sub, err := cmgr.Subscribe("feed", 64)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	// Far past any DeadAfter budget: with Hold the client must still be
	// cycling backoff/connecting, and the local stream must be open.
	time.Sleep(300 * time.Millisecond)
	ps := cl.PeerStats()
	if ps.State == "dead" || ps.State == "closed" || ps.State == "done" {
		t.Fatalf("hold policy reached terminal state %q", ps.State)
	}
	select {
	case _, ok := <-sub.C:
		if !ok {
			t.Fatal("hold policy closed the local stream")
		}
	default:
	}

	// Peer returns (same incarnation): the client must reconnect.
	fs2 := newFakeServer(t, sock, 99)
	defer fs2.Close()
	waitFor(t, "recovery", func() bool {
		ps := cl.PeerStats()
		return ps.State == "connected" && ps.Reconnects >= 1
	})
}

// TestFingerprintMismatchDegrades: if the stream was redefined while the
// client was away, resuming would feed the local plan tuples it would
// misinterpret — the client must refuse and degrade instead.
func TestFingerprintMismatchDegrades(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 60*time.Second)()

	mgr, _ := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	srv, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 7})
	if err != nil {
		t.Fatal(err)
	}
	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	cl, err := Connect(cmgr, ClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	srv.Close()
	// Same socket, same stream name, same incarnation — different shape.
	fsDiff := newDifferentSchemaServer(t, sock)
	defer fsDiff.Close()

	select {
	case <-cl.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("client never degraded on fingerprint mismatch")
	}
	if st := cl.PeerStats().State; st != "dead" {
		t.Fatalf("state = %q, want dead after schema change", st)
	}
}

// newDifferentSchemaServer serves a handshake for a stream whose shape
// differs from feedSchema (extra column) under the same name/instance.
func newDifferentSchemaServer(t *testing.T, sock string) *fakeServer {
	t.Helper()
	os.Remove(sock)
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, instance: 7}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			c, err := fs.ln.Accept()
			if err != nil {
				return
			}
			fs.mu.Lock()
			fs.conns = append(fs.conns, c)
			fs.mu.Unlock()
			fs.wg.Add(1)
			go func(c net.Conn) {
				defer fs.wg.Done()
				var buf []byte
				typ, _, err := readFrame(c, DefaultMaxFrame, &buf)
				if err != nil || typ != frameHello {
					c.Close()
					return
				}
				sc := feedSchema()
				sc.Cols = append(sc.Cols, schema.Column{Name: "extra", Type: schema.TUint})
				hs := schemaFrame{Instance: fs.instance, Fingerprint: SchemaFingerprint(sc), Schema: sc}
				c.Write(endFrame(encodeSchemaFrame(beginFrame(nil, frameSchema), hs)))
			}(c)
		}
	}()
	return fs
}

// TestServeUnknownStreamRejected: subscribing to a stream the exporter
// does not have must fail the handshake with the peer's error message,
// not hang or succeed vacuously.
func TestServeUnknownStreamRejected(t *testing.T) {
	defer leakCheck(t)()
	defer watchdog(t, 30*time.Second)()

	mgr, _ := newFeedManager(t)
	defer mgr.Stop()
	sock := tempSock(t)
	srv, err := ListenAndServe(mgr, "unix", sock, ServerConfig{Instance: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cmgr := rts.NewManager(schema.NewCatalog(), rts.Config{})
	defer cmgr.Stop()
	if _, err := Connect(cmgr, ClientConfig{Network: "unix", Addr: sock, Stream: "nope"}); err == nil {
		t.Fatal("subscribing to an unknown stream succeeded")
	}
}
