package difftest

import (
	"testing"
)

// TestPlacementInvariance is the placement-invariance property: for a
// fixed case, the output row multiset must not depend on where operators
// run. Thirty seeded cases each execute under four deployments — single
// process, 2 nodes (whole capture + sink), 3 nodes (capture split), and
// 4 nodes (capture split + HFTA tier) — and every query's canonical
// sorted multiset must be byte-identical across all four.
func TestPlacementInvariance(t *testing.T) {
	const packets = 600
	seeds := make([]int64, 0, 30)
	for s := int64(1); s <= 30; s++ {
		seeds = append(seeds, s)
	}
	if testing.Short() {
		seeds = seeds[:6]
	}
	cfg := Config{MaxBatch: 64, Shards: 1, Columnar: true}
	for _, seed := range seeds {
		seed := seed
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			c, err := NewCase(seed, packets)
			if err != nil {
				t.Fatalf("generating case: %v", err)
			}
			ref, err := RunPipeline(c, cfg)
			if err != nil {
				t.Fatalf("single-process run: %v", err)
			}
			want := map[string][]string{}
			for name, rows := range ref.Rows {
				want[name] = packRows(rows)
			}
			for _, nodes := range []int{2, 3, 4} {
				dcfg := cfg
				dcfg.Distributed = nodes
				run, err := RunDistributed(c, dcfg)
				if err != nil {
					t.Fatalf("%d-node run: %v", nodes, err)
				}
				for name, wantKeys := range want {
					gotKeys := packRows(run.Rows[name])
					missing, extra := diffSorted(wantKeys, gotKeys)
					if len(missing) != 0 || len(extra) != 0 {
						t.Errorf("query %s: %d-node run diverges from single process: %d missing, %d extra (of %d)",
							name, nodes, len(missing), len(extra), len(wantKeys))
					}
				}
				if len(run.Rows) != len(want) {
					t.Errorf("%d-node run produced %d query outputs, single process %d",
						nodes, len(run.Rows), len(want))
				}
			}
		})
	}
}
