// Package rts is the Gigascope run time system (paper §3): a stream
// manager that tracks query nodes, a registry applications subscribe
// through, packet interfaces with LFTAs linked into the capture path, and
// HFTA query nodes running as independent tasks connected by bounded
// rings.
//
// Faithful architectural properties:
//   - LFTAs are linked into the RTS and evaluated inline on the capture
//     path; the LFTA set is fixed once the manager starts ("changing the
//     set of LFTAs requires that the query system be stopped ... however
//     new HFTAs can be submitted at any point").
//   - Every node's output — including mangled-name LFTA streams — is
//     subscribable by name through the registry.
//   - Under overload the least-processed tuples are dropped first (§4:
//     "highly processed tuples ... are more valuable than less-processed
//     tuples"): LFTA output rings shed when full, HFTA edges apply
//     backpressure instead.
//   - Heartbeats (§3 ordering update tokens) are generated at the sources
//     from the virtual clock, periodically and on demand when a blocked
//     operator requests one.
package rts

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gigascope/internal/capture"
	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/ring"
	"gigascope/internal/schema"
)

// DefaultInterface is the interface used when a query names none
// (paper §2.2: "if no Interface is given, a default Interface is
// implied").
const DefaultInterface = "default"

// Config tunes the manager.
type Config struct {
	// RingSize is the capacity of subscription rings, counted in batches
	// (each batch holds up to MaxBatch messages, so a ring holds at least
	// as many tuples as the same setting did under the per-message
	// pipeline). 0 uses 1024.
	RingSize int
	// MaxBatch is the flush threshold for output batches: a node's pending
	// batch crosses its rings when it reaches this many messages (or
	// earlier, on a heartbeat or window end — see queryNode). 0 uses 64;
	// 1 approximates the old per-message pipeline.
	MaxBatch int
	// InboxDepth is the capacity (in batches) of an HFTA node's input
	// inbox, previously hard-coded at 64. 0 uses 64.
	InboxDepth int
	// HeartbeatUsec is the virtual-time interval between source
	// heartbeats. 0 uses 1s of virtual time.
	HeartbeatUsec uint64
	// ValidateOrdering enables runtime verification of imputed ordering
	// properties: every emitted tuple is checked against its stream's
	// declared orderings and violations are counted in NodeStats. A
	// debugging mode; it costs a comparison per ordered column per tuple.
	ValidateOrdering bool
	// Shards is the number of RSS capture shards per interface. 0 or 1
	// runs LFTAs inline on the capture path (the single-core model). For
	// n > 1, every poll window is steered by flow hash across n shard
	// workers, each running its own instance of every LFTA over its slice
	// of the traffic; the shard outputs are reunified by an
	// order-preserving merge registered under the LFTA's original name,
	// so downstream HFTAs observe unchanged ordering guarantees. The
	// per-shard streams are also registered (mangled "name#shard<i>") and
	// subscribable like any other stream.
	Shards int
	// QuarantineRestartUsec enables auto-restart of quarantined query
	// nodes: a node that panicked is re-instantiated with clean state once
	// this much virtual time has passed, doubling per subsequent
	// quarantine up to 64x (bounded exponential backoff). 0 (the default)
	// makes quarantine permanent until the RTS restarts. User-written and
	// source nodes never auto-restart: there is no compiled plan to
	// rebuild them from.
	QuarantineRestartUsec uint64
	// DisableColumnar forces the capture path onto the row-at-a-time
	// reference pipeline: poll windows are pushed packet by packet instead
	// of being accumulated into column batches. The columnar path is
	// semantics-preserving (the differential harness A/Bs the two), so
	// this is a debugging and benchmarking switch.
	DisableColumnar bool
}

func (c Config) ringSize() int {
	if c.RingSize <= 0 {
		return 1024
	}
	return c.RingSize
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

func (c Config) inboxDepth() int {
	if c.InboxDepth <= 0 {
		return 64
	}
	return c.InboxDepth
}

func (c Config) hbUsec() uint64 {
	if c.HeartbeatUsec == 0 {
		return 1_000_000
	}
	return c.HeartbeatUsec
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// shardName mangles the per-shard instance name of a sharded LFTA. The
// '#' cannot appear in a GSQL identifier, so shard streams never collide
// with query names.
func shardName(name string, i int) string {
	return fmt.Sprintf("%s#shard%d", name, i)
}

// Manager is the stream manager and registry.
type Manager struct {
	cfg Config
	cat *schema.Catalog

	// clock is the manager-wide virtual-time high-water mark across all
	// interfaces; it drives clock-driven source nodes (sysmon sampling).
	clock atomic.Uint64

	mu      sync.Mutex
	started bool
	stopped bool
	nodes   map[string]*queryNode // by lower-cased stream name
	ifaces  map[string]*Interface
	order   []*queryNode // creation order (dependency order)
	sources []*queryNode // clock-driven source nodes (subset of order)
	remotes []*RemoteSource // transport-fed remote streams (AddRemoteSource)
	wg      sync.WaitGroup
}

// NewManager builds a manager over a catalog (used only for diagnostics;
// compilation happens in core).
func NewManager(cat *schema.Catalog, cfg Config) *Manager {
	return &Manager{
		cfg:    cfg,
		cat:    cat,
		nodes:  make(map[string]*queryNode),
		ifaces: make(map[string]*Interface),
	}
}

// Interface returns (creating on demand) the named packet interface.
func (m *Manager) Interface(name string) *Interface {
	if name == "" {
		name = DefaultInterface
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ifaceLocked(name)
}

func (m *Manager) ifaceLocked(name string) *Interface {
	key := strings.ToLower(name)
	if it, ok := m.ifaces[key]; ok {
		return it
	}
	it := &Interface{name: name, m: m, hbEvery: m.cfg.hbUsec()}
	m.ifaces[key] = it
	return it
}

// AddQuery instantiates a compiled query's nodes with the given parameter
// bindings. LFTA nodes may only be added before Start (paper §3); HFTA
// nodes may be added at any time.
func (m *Manager) AddQuery(cq *core.CompiledQuery, params map[string]schema.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("rts: manager stopped")
	}
	for _, n := range cq.Nodes {
		if n.Level == core.LevelLFTA && m.started {
			return fmt.Errorf("rts: cannot add LFTA %s after start: stop the RTS, change the LFTA set, and restart (paper §3)", n.Name)
		}
	}
	var added []*queryNode
	rollback := func() {
		for _, qn := range added {
			delete(m.nodes, strings.ToLower(qn.name))
		}
	}
	for _, n := range cq.Nodes {
		key := strings.ToLower(n.Name)
		if _, dup := m.nodes[key]; dup {
			rollback()
			return fmt.Errorf("rts: query node %s already registered", n.Name)
		}
		if n.Level == core.LevelLFTA && m.cfg.shards() > 1 {
			shardNodes, err := m.addShardedLFTA(n, params)
			added = append(added, shardNodes...)
			if err != nil {
				rollback()
				return err
			}
			continue
		}
		inst, err := n.Instantiate(params)
		if err != nil {
			rollback()
			return err
		}
		qn := &queryNode{
			m:        m,
			name:     n.Name,
			level:    n.Level,
			node:     n,
			inst:     inst,
			op:       inst.Op,
			gateKey:  key,
			params:   cloneParams(params),
			pub:      &publisher{name: n.Name, level: n.Level, shed: n.Level == core.LevelLFTA},
			maxBatch: m.cfg.maxBatch(),
			// LFTAs flush on heartbeat so ordering bounds reach downstream
			// merges immediately; HFTAs flush at window end instead.
			hbFlush: n.Level == core.LevelLFTA,
		}
		if m.cfg.ValidateOrdering {
			qn.initCheckers(n.Out)
		}
		if n.Level == core.LevelLFTA {
			iface := m.ifaceLocked(ifaceName(n))
			iface.attach(qn)
		} else {
			// Wire inputs; they must already be registered.
			for _, src := range n.Sources {
				in, ok := m.nodes[strings.ToLower(src.Name)]
				if !ok {
					rollback()
					return fmt.Errorf("rts: input stream %s of %s not registered", src.Name, n.Name)
				}
				sub := in.pub.subscribe(m.cfg.ringSize())
				sub.reqFn = in.requestHeartbeat
				qn.inputs = append(qn.inputs, sub)
			}
		}
		m.nodes[key] = qn
		m.order = append(m.order, qn)
		added = append(added, qn)
		if m.started && n.Level == core.LevelHFTA {
			qn.start()
		}
	}
	return nil
}

// AddUserNode registers a hand-written query node against the query-node
// API (paper §3: "users can write their own query nodes to implement
// special operators by following this API ... we have implemented a
// special IP defragmentation operator in this manner"). The operator's
// input port i is fed from inputs[i]; its output stream is registered
// under `name` (the operator's OutSchema is renamed accordingly) so other
// queries and applications can read it like any compiled query's output.
func (m *Manager) AddUserNode(name string, op exec.Operator, inputs []string) error {
	if op == nil {
		return fmt.Errorf("rts: nil operator")
	}
	if op.Ports() != len(inputs) {
		return fmt.Errorf("rts: operator has %d ports, %d inputs given", op.Ports(), len(inputs))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("rts: manager stopped")
	}
	key := strings.ToLower(name)
	if _, dup := m.nodes[key]; dup {
		return fmt.Errorf("rts: query node %s already registered", name)
	}
	qn := &queryNode{
		m:        m,
		name:     name,
		level:    core.LevelHFTA,
		op:       op,
		pub:      &publisher{name: name, level: core.LevelHFTA},
		maxBatch: m.cfg.maxBatch(),
	}
	if m.cfg.ValidateOrdering {
		qn.initCheckers(op.OutSchema())
	}
	for _, srcName := range inputs {
		in, ok := m.nodes[strings.ToLower(srcName)]
		if !ok {
			return fmt.Errorf("rts: input stream %s of %s not registered", srcName, name)
		}
		sub := in.pub.subscribe(m.cfg.ringSize())
		sub.reqFn = in.requestHeartbeat
		qn.inputs = append(qn.inputs, sub)
	}
	out := op.OutSchema().Clone()
	out.Name = name
	out.Kind = schema.KindStream
	if err := m.registerStreamLocked(out); err != nil {
		return err
	}
	m.nodes[key] = qn
	m.order = append(m.order, qn)
	if m.started {
		qn.start()
	}
	return nil
}

// registerStreamLocked registers a node-output schema, superseding a
// node-less stream entry of the same name. Compiling a script registers
// every output schema into the catalog even when the producing node is
// instantiated on a different host (distributed placement); a wire
// import or reunify node then materializes the stream locally and must
// be able to claim the name. A name owned by a live node never reaches
// here (the m.nodes dup check precedes registration under the same
// lock), and protocol schemas stay protected. Callers hold m.mu.
func (m *Manager) registerStreamLocked(sc *schema.Schema) error {
	if old, ok := m.cat.Lookup(sc.Name); ok && old.Kind != schema.KindProtocol {
		return m.cat.Replace(sc)
	}
	return m.cat.Register(sc)
}

// addShardedLFTA registers one LFTA as Config.Shards per-shard instances
// plus a reunifying node (called with m.mu held, before Start). Each shard
// instance has its own operator state — shard-local aggregate tables merge
// downstream at epoch close instead of contending on one table — and its
// own shedding publisher, registered under a mangled "name#shard<i>". The
// reunifying node runs as an HFTA task under the LFTA's original name, so
// downstream wiring and subscribers are oblivious to the sharding; its
// publisher keeps LFTA shed semantics (§4 drop placement: this stream IS
// the LFTA's output). On error the returned nodes are the partial
// registrations for the caller's rollback.
func (m *Manager) addShardedLFTA(n *core.Node, params map[string]schema.Value) ([]*queryNode, error) {
	s := m.cfg.shards()
	for i := 0; i < s; i++ {
		if _, dup := m.nodes[strings.ToLower(shardName(n.Name, i))]; dup {
			return nil, fmt.Errorf("rts: query node %s already registered", shardName(n.Name, i))
		}
	}
	reOp, err := core.NewShardReunify(n.Out, s)
	if err != nil {
		return nil, err
	}
	// Instantiate all shard copies before registering anything, so a
	// parameter-binding failure leaves no partial state.
	insts := make([]*core.Instance, s)
	for i := range insts {
		if insts[i], err = n.Instantiate(params); err != nil {
			return nil, err
		}
	}
	iface := m.ifaceLocked(ifaceName(n))
	iface.ensureShards(s)
	re := &queryNode{
		m:     m,
		name:  n.Name,
		level: core.LevelHFTA,
		op:    reOp,
		pub:   &publisher{name: n.Name, level: core.LevelLFTA, shed: true},
		// Flush on heartbeat like the LFTA it replaces, so ordering bounds
		// reach downstream merges immediately.
		maxBatch: m.cfg.maxBatch(),
		hbFlush:  true,
	}
	// The shard→reunify hop rides lock-free SPSC rings instead of channel
	// subscriptions: each shard publisher owns one ring (single producer:
	// the shard worker; single consumer: the reunify loop), and all rings
	// share the reunify node's waker. The mangled "name#shard<i>" streams
	// stay subscribable through the normal channel path.
	re.ringWaker = ring.NewWaker()
	var added []*queryNode
	for i := 0; i < s; i++ {
		name := shardName(n.Name, i)
		qn := &queryNode{
			m:        m,
			name:     name,
			level:    core.LevelLFTA,
			node:     n,
			inst:     insts[i],
			op:       insts[i].Op,
			gateKey:  strings.ToLower(n.Name),
			params:   cloneParams(params),
			pub:      &publisher{name: name, level: core.LevelLFTA, shed: true},
			maxBatch: m.cfg.maxBatch(),
			hbFlush:  true,
			shardIdx: i + 1,
		}
		if m.cfg.ValidateOrdering {
			qn.initCheckers(n.Out)
		}
		iface.attachShard(i, qn)
		r := ring.New[exec.Batch](m.cfg.ringSize(), re.ringWaker)
		qn.pub.ringEdge = r
		re.ringIns = append(re.ringIns, r)
		re.ringReqs = append(re.ringReqs, qn.requestHeartbeat)
		re.shardsOf = append(re.shardsOf, qn)
		m.nodes[strings.ToLower(name)] = qn
		m.order = append(m.order, qn)
		added = append(added, qn)
	}
	if m.cfg.ValidateOrdering {
		re.initCheckers(reOp.OutSchema())
	}
	m.nodes[strings.ToLower(n.Name)] = re
	m.order = append(m.order, re)
	added = append(added, re)
	return added, nil
}

func ifaceName(n *core.Node) string {
	name := n.Sources[0].Interface
	if name == "" {
		return DefaultInterface
	}
	return name
}

// Start launches the HFTA query nodes and freezes the LFTA set.
func (m *Manager) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("rts: already started")
	}
	m.started = true
	for _, qn := range m.order {
		if qn.level == core.LevelHFTA {
			qn.start()
		}
	}
	return nil
}

// Stop flushes every node (sources first, then downstream) and closes all
// subscriptions. The manager cannot be restarted; build a fresh one (the
// paper's workflow: stop the RTS, change it, restart — "we can change the
// RTS in seconds").
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	ifaces := make([]*Interface, 0, len(m.ifaces))
	for _, it := range m.ifaces {
		ifaces = append(ifaces, it)
	}
	sources := m.sources
	remotes := m.remotes
	m.mu.Unlock()

	// Flush LFTAs and close their publishers; HFTA nodes then see their
	// inputs close, flush in topological order, and close their own.
	for _, it := range ifaces {
		it.shutdown()
	}
	// Source nodes sample one last time after the LFTAs have flushed, so
	// the final telemetry tuples carry the final source-side counters, and
	// close; HFTAs reading SYSMON.* streams then drain normally.
	for _, qn := range sources {
		qn.flushSource(m.clock.Load())
	}
	// Remote streams close last (idempotent — the owning transport client
	// usually closed them already): HFTAs reading them must see their
	// input end or wg.Wait below never returns.
	for _, r := range remotes {
		r.Close()
	}
	m.wg.Wait()
}

// Subscribe returns a handle on the named stream (the paper's registry
// lookup: "it submits the query name to the registry and receives a query
// handle in return"). bufSize 0 uses the configured ring size.
func (m *Manager) Subscribe(name string, bufSize int) (*Subscription, error) {
	m.mu.Lock()
	qn, ok := m.nodes[strings.ToLower(name)]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rts: no query node named %s", name)
	}
	if bufSize <= 0 {
		bufSize = m.cfg.ringSize()
	}
	sub := qn.pub.subscribe(bufSize)
	sub.reqFn = qn.requestHeartbeat
	return sub, nil
}

// LookupSchema returns the named stream's catalog schema — the wire
// server's handshake source (wire.Exporter).
func (m *Manager) LookupSchema(name string) (*schema.Schema, bool) {
	return m.cat.Lookup(name)
}

// SetParams changes a query node's parameters on the fly (paper §3).
func (m *Manager) SetParams(name string, params map[string]schema.Value) error {
	m.mu.Lock()
	qn, ok := m.nodes[strings.ToLower(name)]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("rts: no query node named %s", name)
	}
	return qn.setParams(params)
}

// SetApprox demotes (or promotes) a query's eligible exact aggregates to
// their sketched twins, returning how many aggregate slots are demotable
// across the query's operators (0 means the query has none). The demotion
// may live in the named node itself (unsplit plan) or in its mangled
// LFTAs (split plan, where the HFTA's union super-aggregate merges exact
// and sketched partials transparently). The switch only affects groups
// opened afterward; open groups finish in their current representation.
func (m *Manager) SetApprox(name string, on bool) (int, error) {
	m.mu.Lock()
	_, ok := m.nodes[strings.ToLower(name)]
	nodes := m.demotionNodesLocked(name)
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("rts: no query node named %s", name)
	}
	n := 0
	for _, qn := range nodes {
		n += qn.setApprox(on)
	}
	return n, nil
}

// StateBytes estimates the aggregate-table memory the named query
// currently holds across its plan: the query's own node plus its mangled
// LFTAs (sharded instances summed through their reunifying node). Queries
// without aggregation report 0.
func (m *Manager) StateBytes(name string) (int64, error) {
	m.mu.Lock()
	_, ok := m.nodes[strings.ToLower(name)]
	nodes := m.demotionNodesLocked(name)
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("rts: no query node named %s", name)
	}
	var total int64
	for _, qn := range nodes {
		total += qn.stateBytes()
	}
	return total, nil
}

// demotionNodesLocked returns the query nodes that can host the named
// query's aggregate demotion: the node itself plus its mangled LFTAs.
// Per-shard instances are omitted — the reunifying node forwards to them.
// Caller holds m.mu.
func (m *Manager) demotionNodesLocked(target string) []*queryNode {
	target = strings.ToLower(target)
	var out []*queryNode
	for name, qn := range m.nodes {
		if strings.Contains(name, "#shard") {
			continue
		}
		if name == target || name == "_lfta_"+target ||
			strings.HasPrefix(name, "_lfta_"+target+"_") {
			out = append(out, qn)
		}
	}
	return out
}

// Registry lists the registered stream names, sorted.
func (m *Manager) Registry() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.nodes))
	for _, qn := range m.nodes {
		names = append(names, qn.name)
	}
	sort.Strings(names)
	return names
}

// Inject delivers one captured packet to the named interface's LFTAs.
// This is the host capture entry point; the capture simulator and traffic
// drivers call it.
func (m *Manager) Inject(iface string, p *pkt.Packet) {
	m.Interface(iface).Inject(p)
	m.noteClock(p.TS)
}

// InjectBatch delivers one interrupt/poll window of packets to the named
// interface. LFTA output accumulated over the window crosses the rings as
// a single batch per LFTA — the batched capture entry point (one ring
// crossing per window instead of one per packet).
func (m *Manager) InjectBatch(iface string, ps []*pkt.Packet) {
	if len(ps) == 0 {
		return
	}
	m.Interface(iface).InjectBatch(ps)
	m.noteClock(ps[len(ps)-1].TS)
}

// AdvanceClock moves the virtual clock on every interface, emitting
// periodic and requested heartbeats.
func (m *Manager) AdvanceClock(usec uint64) {
	m.mu.Lock()
	ifaces := make([]*Interface, 0, len(m.ifaces))
	for _, it := range m.ifaces {
		ifaces = append(ifaces, it)
	}
	m.mu.Unlock()
	for _, it := range ifaces {
		it.AdvanceClock(usec)
	}
	m.noteClock(usec)
}

// NodeStats is a monitoring snapshot of one query node.
type NodeStats struct {
	Name  string
	Level core.Level
	// Shard is 0 for unsharded nodes and i+1 for the i'th shard instance
	// of a sharded LFTA.
	Shard    int
	Op       exec.OpStats
	RingDrop uint64 // tuples shed at this node's output rings
	HBDrop   uint64 // heartbeats discarded at this node's full rings
	Packets  uint64 // packets seen (LFTA only)
	BadPkts  uint64 // packets whose fields could not be interpreted
	// Batch telemetry: ring crossings, tuples carried by them (so
	// BatchTuples/Batches is the mean ring-batch occupancy), and how often
	// each flush-policy reason closed a batch.
	Batches     uint64
	BatchTuples uint64
	FlushSize   uint64 // pending reached Config.MaxBatch
	FlushHB     uint64 // flushed on heartbeat (LFTA/source nodes)
	FlushWindow uint64 // flushed at window end (inbox batch, poll window, shutdown)
	// OrderViolations counts imputed-ordering violations observed when
	// Config.ValidateOrdering is on (anything non-zero is a bug).
	OrderViolations uint64
	// Quarantine state: a node whose operator panicked is detached from
	// its publisher until a clean-state restart (Config.
	// QuarantineRestartUsec) or forever. Quarantines counts entries,
	// Restarts clean-state recoveries, QuarDrop tuples discarded while
	// quarantined, and OpErrors non-fatal operator errors (Push returned
	// an error; the node kept running).
	Quarantined      bool
	Quarantines      uint64
	Restarts         uint64
	QuarDrop         uint64
	OpErrors         uint64
	QuarantineReason string // last panic message, empty if never quarantined
	// SharedBy lists the other queries this node also feeds after
	// shared-LFTA elimination (paper §5); empty for unshared nodes. Work
	// the node does — packets, predicate evaluations, state — is thus
	// attributable to len(SharedBy)+1 queries, not one.
	SharedBy []string
	// Remote-peer transport state (AddRemoteSource nodes only; see
	// PeerStats for the field semantics). Empty/zero for local nodes.
	PeerState  string
	Reconnects uint64
	GapTuples  uint64
	GapEvents  uint64
	HBMisses   uint64
}

// cloneParams copies a parameter-binding map so each query node owns its
// bindings (rebinding one sharded instance must not alias another's
// restart state).
func cloneParams(params map[string]schema.Value) map[string]schema.Value {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]schema.Value, len(params))
	for k, v := range params {
		out[k] = v
	}
	return out
}

// Stats returns a snapshot for every node, sorted by name.
func (m *Manager) Stats() []NodeStats {
	m.mu.Lock()
	nodes := append([]*queryNode(nil), m.order...)
	m.mu.Unlock()
	out := make([]NodeStats, 0, len(nodes))
	for _, qn := range nodes {
		out = append(out, qn.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IfaceStats is a monitoring snapshot of one packet interface, including
// the capture-stack and NIC counters of any bound devices — the drop
// placement the paper's deployment story (§4–§5) says operators watch.
type IfaceStats struct {
	Name  string
	Clock uint64 // interface virtual time, microseconds
	LFTAs int    // LFTAs linked to this interface (a sharded LFTA counts once)
	// Shards is the RSS shard count (0 = unsharded capture path);
	// ShardPackets gives the per-shard steered packet counts, exposing
	// flow-hash skew.
	Shards       int
	ShardPackets []uint64
	Packets      uint64 // packets injected (after any NIC/capture filtering losses)
	Offered      uint64 // packets offered, including ones lost before the LFTAs
	Heartbeats   uint64 // source heartbeats emitted

	// Capture-stack counters (HasCapture reports a bound capture.Stack).
	HasCapture bool
	Capture    capture.Stats
	Livelocked bool // host ring full: the interrupt-livelock regime

	// NIC device counters (HasNIC reports a bound nic.Device).
	HasNIC       bool
	NICDelivered uint64
	NICFiltered  uint64

	// Common-prefilter gate counters (paper §5). PrefilterEvals counts
	// term evaluations the gate performed; PrefilterGated counts packet
	// deliveries it skipped — work the member LFTAs never had to do.
	PrefilterGroups int
	PrefilterTerms  int
	PrefilterEvals  uint64
	PrefilterGated  uint64
}

// IfaceStats returns a snapshot for every interface, sorted by name.
func (m *Manager) IfaceStats() []IfaceStats {
	m.mu.Lock()
	ifaces := make([]*Interface, 0, len(m.ifaces))
	for _, it := range m.ifaces {
		ifaces = append(ifaces, it)
	}
	m.mu.Unlock()
	out := make([]IfaceStats, 0, len(ifaces))
	for _, it := range ifaces {
		out = append(out, it.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
