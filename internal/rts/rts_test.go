package rts

import (
	"testing"
	"time"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

func newCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustCompile(t *testing.T, cat *schema.Catalog, src string) *core.CompiledQuery {
	t.Helper()
	q, err := gsql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.Compile(cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func tcpPkt(sec uint64, srcIP uint32, port uint16, payload string) pkt.Packet {
	return pkt.BuildTCP(sec*1e6, pkt.TCPSpec{
		SrcIP: srcIP, DstIP: 0x0a000002,
		SrcPort: 30000, DstPort: port,
		Payload: []byte(payload),
	})
}

// drain reads tuples until the channel closes, with a watchdog.
func drain(t *testing.T, sub *Subscription) []schema.Tuple {
	t.Helper()
	var out []schema.Tuple
	timeout := time.After(5 * time.Second)
	for {
		select {
		case b, ok := <-sub.C:
			if !ok {
				return out
			}
			for _, m := range b {
				if !m.IsHeartbeat() {
					out = append(out, m.Tuple)
				}
			}
		case <-timeout:
			t.Fatal("drain timed out")
		}
	}
}

func TestManagerSingleLFTAQuery(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name port80; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("port80", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	pkts := []pkt.Packet{
		tcpPkt(1, 0x0a000001, 80, "x"),
		tcpPkt(2, 0x0a000009, 443, "x"),
		tcpPkt(3, 0x0a000003, 80, "x"),
	}
	for i := range pkts {
		m.Inject("eth0", &pkts[i])
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].IP() != 0x0a000001 || rows[1][1].IP() != 0x0a000003 {
		t.Errorf("rows = %v", rows)
	}
}

func TestManagerSplitQueryChain(t *testing.T) {
	// The §4 HTTP query: LFTA filter + HFTA regex, wired automatically.
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name http; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("http", 128)
	if err != nil {
		t.Fatal(err)
	}
	// The mangled LFTA stream is also subscribable (paper §3).
	lftaSub, err := m.Subscribe("_lfta_http", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	pkts := []pkt.Packet{
		tcpPkt(1, 1, 80, "GET / HTTP/1.1\r\n"),
		tcpPkt(2, 2, 80, "tunneled junk"),
		tcpPkt(3, 3, 443, "GET / HTTP/1.1\r\n"),
		tcpPkt(4, 4, 80, "HTTP/1.0 200 OK\r\n"),
	}
	for i := range pkts {
		m.Inject("", &pkts[i])
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 2 {
		t.Fatalf("http rows = %v", rows)
	}
	lrows := drain(t, lftaSub)
	if len(lrows) != 3 { // port-80 only filter
		t.Fatalf("lfta rows = %v", lrows)
	}
}

func TestManagerAggregateSplitChain(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name counts; }
		SELECT tb, count(*) FROM tcp GROUP BY time/60 as tb`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("counts", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for sec := uint64(0); sec < 180; sec += 10 {
		p := tcpPkt(sec, 1, 80, "x")
		m.Inject("", &p)
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i, row := range rows {
		if row[0].Uint() != uint64(i) || row[1].Uint() != 6 {
			t.Errorf("row %d = %v, want [%d, 6]", i, row, i)
		}
	}
}

func TestManagerComposedQueries(t *testing.T) {
	// Query composition: counts reads port80 reads packets (paper §2.2:
	// "the ease with which queries can be composed").
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	q1 := mustCompile(t, cat, `
		DEFINE { query_name port80c; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	q2 := mustCompile(t, cat, `
		DEFINE { query_name persec; }
		SELECT time, count(*) FROM port80c GROUP BY time`)
	if err := m.AddQuery(q1, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddQuery(q2, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("persec", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for sec := uint64(0); sec < 5; sec++ {
		for i := 0; i < 3; i++ {
			p := tcpPkt(sec, uint32(i), 80, "x")
			m.Inject("", &p)
		}
		p := tcpPkt(sec, 9, 443, "x")
		m.Inject("", &p)
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	for _, row := range rows {
		if row[1].Uint() != 3 {
			t.Errorf("row = %v, want count 3", row)
		}
	}
}

func TestManagerMergeWithHeartbeats(t *testing.T) {
	// Two interfaces, one silent: periodic source heartbeats keep the
	// merge from blocking (paper §3 unblocking).
	cat := newCatalog(t)
	m := NewManager(cat, Config{HeartbeatUsec: 1_000_000})
	q0 := mustCompile(t, cat, `DEFINE { query_name m0; } SELECT time, srcIP FROM eth0.tcp`)
	q1 := mustCompile(t, cat, `DEFINE { query_name m1; } SELECT time, srcIP FROM eth1.tcp`)
	qm := mustCompile(t, cat, `DEFINE { query_name both; } MERGE m0.time : m1.time FROM m0, m1`)
	for _, cq := range []*core.CompiledQuery{q0, q1, qm} {
		if err := m.AddQuery(cq, nil); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := m.Subscribe("both", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// eth0 is fast; eth1 silent but its clock advances.
	for sec := uint64(1); sec <= 50; sec++ {
		p := tcpPkt(sec, 7, 80, "x")
		m.Inject("eth0", &p)
		m.AdvanceClock(sec * 1e6)
	}
	// Before stop, the merge should already have released most tuples.
	released := 0
	deadline := time.After(5 * time.Second)
poll:
	for released < 40 {
		select {
		case b, ok := <-sub.C:
			if !ok {
				break poll
			}
			released += b.Tuples()
		case <-deadline:
			t.Fatalf("merge released only %d tuples while live", released)
		}
	}
	m.Stop()
	for range sub.C {
	}
}

func TestManagerLFTAAfterStartRejected(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	cq := mustCompile(t, cat, `DEFINE { query_name late; } SELECT time FROM tcp`)
	if err := m.AddQuery(cq, nil); err == nil {
		t.Error("LFTA accepted after start (paper §3 forbids)")
	}
	// HFTAs may be added at any point: need an existing base stream.
	m.Stop()

	cat2 := newCatalog(t)
	m2 := NewManager(cat2, Config{})
	base := mustCompile(t, cat2, `DEFINE { query_name b; } SELECT time, destPort FROM tcp`)
	if err := m2.AddQuery(base, nil); err != nil {
		t.Fatal(err)
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	late := mustCompile(t, cat2, `DEFINE { query_name lateh; } SELECT time FROM b WHERE destPort = 80`)
	if err := m2.AddQuery(late, nil); err != nil {
		t.Errorf("HFTA after start rejected: %v", err)
	}
	m2.Stop()
}

func TestManagerParamsChangeOnTheFly(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name byport; param port uint; }
		SELECT time, srcIP FROM tcp WHERE destPort = $port`)
	if err := m.AddQuery(cq, map[string]schema.Value{"port": schema.MakeUint(80)}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("byport", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	p1 := tcpPkt(1, 1, 80, "x")
	m.Inject("", &p1)
	if err := m.SetParams("byport", map[string]schema.Value{"port": schema.MakeUint(443)}); err != nil {
		t.Fatal(err)
	}
	p2 := tcpPkt(2, 2, 80, "x")
	p3 := tcpPkt(3, 3, 443, "x")
	m.Inject("", &p2)
	m.Inject("", &p3)
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 2 || rows[0][1].IP() != 1 || rows[1][1].IP() != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestManagerMissingParamRejected(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name needsp; param port uint; }
		SELECT time FROM tcp WHERE destPort = $port`)
	if err := m.AddQuery(cq, nil); err == nil {
		t.Error("unbound parameter accepted")
	}
}

func TestManagerRegistryAndStats(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name regq; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, 'HTTP')`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	names := m.Registry()
	if len(names) != 2 || names[0] != "_lfta_regq" || names[1] != "regq" {
		t.Fatalf("registry = %v", names)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := tcpPkt(uint64(i), 1, 80, "GET / HTTP/1.1")
		m.Inject("", &p)
	}
	m.Stop()
	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	var lfta, hfta NodeStats
	for _, s := range stats {
		if s.Level == core.LevelLFTA {
			lfta = s
		} else {
			hfta = s
		}
	}
	if lfta.Packets != 10 || lfta.Op.Out != 10 {
		t.Errorf("lfta stats = %+v", lfta)
	}
	if hfta.Op.In != 10 || hfta.Op.Out != 10 {
		t.Errorf("hfta stats = %+v", hfta)
	}
}

func TestManagerSubscribeUnknown(t *testing.T) {
	m := NewManager(newCatalog(t), Config{})
	if _, err := m.Subscribe("ghost", 1); err == nil {
		t.Error("unknown stream subscribable")
	}
}

func TestManagerLFTARingSheds(t *testing.T) {
	// A subscriber that never reads a mangled LFTA stream must not stall
	// the capture path: LFTA rings shed (least-processed tuples dropped
	// first, paper §4).
	cat := newCatalog(t)
	m := NewManager(cat, Config{RingSize: 4})
	cq := mustCompile(t, cat, `
		DEFINE { query_name shed; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("shed", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			p := tcpPkt(uint64(i), 1, 80, "x")
			m.Inject("", &p)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("capture path stalled on a slow subscriber")
	}
	m.Stop()
	var got int
	for b := range sub.C {
		got += b.Tuples()
	}
	if got >= 100 {
		t.Errorf("nothing shed: got %d", got)
	}
	stats := m.Stats()
	var drops uint64
	for _, s := range stats {
		drops += s.RingDrop
	}
	if drops == 0 {
		t.Error("no ring drops recorded")
	}
}
