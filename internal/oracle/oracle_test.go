package oracle

import (
	"testing"

	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// udp builds one UDP frame at second `sec` of virtual time.
func udp(sec uint64, src, dst uint32, sport, dport uint16, payload int) pkt.Packet {
	return pkt.BuildUDP(sec*1_000_000, pkt.UDPSpec{
		SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport, TTL: 64,
		Payload: make([]byte, payload),
	})
}

func tcp(sec uint64, src, dst uint32, sport, dport uint16, payload int) pkt.Packet {
	return pkt.BuildTCP(sec*1_000_000, pkt.TCPSpec{
		SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport, TTL: 64,
		Payload: make([]byte, payload),
	})
}

func evalOne(t *testing.T, texts []string, params map[string]schema.Value, trace []pkt.Packet) []*Result {
	t.Helper()
	rs, err := Eval(texts, params, trace)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return rs
}

func TestSelProj(t *testing.T) {
	trace := []pkt.Packet{
		udp(10, 0x0a000001, 0x0a000002, 1000, 53, 40),
		udp(11, 0x0a000003, 0x0a000002, 1001, 80, 40),
		udp(12, 0x0a000004, 0x0a000002, 1002, 53, 60),
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name q; } SELECT time, srcIP FROM eth0.UDP WHERE destPort = 53`,
	}, nil, trace)
	r := rs[0]
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(r.Rows), r.Rows)
	}
	if r.Rows[0][0].Uint() != 10 || r.Rows[1][0].Uint() != 12 {
		t.Fatalf("wrong times: %v", r.Rows)
	}
	if r.Rows[0][1].IP() != 0x0a000001 || r.Rows[1][1].IP() != 0x0a000004 {
		t.Fatalf("wrong srcIPs: %v", r.Rows)
	}
	// The output schema must impute the time column's ordering so
	// downstream consumers (and the difftest order checks) can use it.
	if _, c := r.Schema.Col("time"); c == nil || !c.Ordering.Increasing() {
		t.Fatalf("time ordering not imputed: %+v", r.Schema)
	}
}

func TestAggGroupingAndHaving(t *testing.T) {
	trace := []pkt.Packet{
		udp(10, 0x0a000001, 0x0a000002, 1000, 53, 40), // bucket 10, port 53
		udp(10, 0x0a000001, 0x0a000002, 1001, 53, 50), // bucket 10, port 53
		udp(10, 0x0a000001, 0x0a000002, 1002, 80, 60), // bucket 10, port 80
		udp(11, 0x0a000001, 0x0a000002, 1003, 53, 70), // bucket 11, port 53
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name q; }
		 SELECT tb, gk, count(*) AS cnt, max(udp_length) AS mx
		 FROM eth0.UDP GROUP BY time AS tb, destPort AS gk
		 HAVING count(*) > 1`,
	}, nil, trace)
	r := rs[0]
	// Only (10, 53) has count > 1. udp_length = 8 + payload.
	if len(r.Rows) != 1 {
		t.Fatalf("got %d rows, want 1: %v", len(r.Rows), r.Rows)
	}
	row := r.Rows[0]
	if row[0].Uint() != 10 || row[1].Uint() != 53 || row[2].Uint() != 2 || row[3].Uint() != 58 {
		t.Fatalf("wrong agg row: %v", row)
	}
}

func TestAggSortsByOrdThenKey(t *testing.T) {
	trace := []pkt.Packet{
		udp(11, 0x0a000001, 0x0a000002, 1000, 80, 40),
		udp(10, 0x0a000001, 0x0a000002, 1001, 53, 40),
		udp(10, 0x0a000001, 0x0a000002, 1002, 80, 40),
	}
	// Note the trace is fed as-is; the oracle sorts output groups by the
	// ordered key first (mirroring pipeline flush order).
	rs := evalOne(t, []string{
		`DEFINE { query_name q; }
		 SELECT tb, gk, count(*) AS cnt FROM eth0.UDP GROUP BY time AS tb, destPort AS gk`,
	}, nil, trace)
	r := rs[0]
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(r.Rows), r.Rows)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][0].Uint() < r.Rows[i-1][0].Uint() {
			t.Fatalf("rows not sorted by ordered group key: %v", r.Rows)
		}
	}
}

func TestAvgIsFloatRatio(t *testing.T) {
	trace := []pkt.Packet{
		udp(10, 0x0a000001, 0x0a000002, 1000, 53, 10), // udp_length 18
		udp(10, 0x0a000001, 0x0a000002, 1001, 53, 21), // udp_length 29
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name q; }
		 SELECT tb, avg(udp_length) AS a FROM eth0.UDP GROUP BY time AS tb`,
	}, nil, trace)
	r := rs[0]
	if len(r.Rows) != 1 {
		t.Fatalf("got %d rows: %v", len(r.Rows), r.Rows)
	}
	if got := r.Rows[0][1].Float(); got != 23.5 {
		t.Fatalf("avg = %v, want 23.5", got)
	}
}

func TestMergeInterleavesByColumn(t *testing.T) {
	trace := []pkt.Packet{
		tcp(10, 0x0a000001, 0x0a000002, 1000, 80, 10),
		udp(11, 0x0a000003, 0x0a000004, 1001, 53, 10),
		tcp(12, 0x0a000001, 0x0a000002, 1002, 80, 10),
		udp(13, 0x0a000003, 0x0a000004, 1003, 53, 10),
	}
	// Protocol schemas do not implicitly filter by IP protocol number (a
	// TCP-schema query sees every frame whose fields extract); per the
	// paper's idiom the query states the protocol predicate itself.
	rs := evalOne(t, []string{
		`DEFINE { query_name a; } SELECT time, srcPort AS p FROM eth0.TCP WHERE protocol = 6`,
		`DEFINE { query_name b; } SELECT time, srcPort AS p FROM eth0.UDP WHERE protocol = 17`,
		`DEFINE { query_name m; } MERGE a.time : b.time FROM a, b`,
	}, nil, trace)
	m := rs[2]
	if len(m.Rows) != 4 {
		t.Fatalf("merge got %d rows, want 4: %v", len(m.Rows), m.Rows)
	}
	wantTimes := []uint64{10, 11, 12, 13}
	for i, w := range wantTimes {
		if m.Rows[i][0].Uint() != w {
			t.Fatalf("merge order: row %d time %d, want %d", i, m.Rows[i][0].Uint(), w)
		}
	}
}

func TestJoinWindowAndResidual(t *testing.T) {
	trace := []pkt.Packet{
		tcp(10, 0x0a000001, 0x0a000002, 1000, 80, 10),
		tcp(11, 0x0a000001, 0x0a000002, 1000, 80, 10),
		tcp(20, 0x0a000005, 0x0a000002, 1000, 80, 10), // different srcIP
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name a; } SELECT time, srcIP AS ip FROM eth0.TCP`,
		`DEFINE { query_name b; } SELECT time, srcIP AS ip FROM eth0.TCP`,
		`DEFINE { query_name j; }
		 SELECT a.time AS t, a.ip AS ip FROM a, b
		 WHERE a.time = b.time AND a.ip = b.ip`,
	}, nil, trace)
	j := rs[2]
	// Each packet pairs with itself only (times unique, IPs must match):
	// 3 self-pairs.
	if len(j.Rows) != 3 {
		t.Fatalf("join got %d rows, want 3: %v", len(j.Rows), j.Rows)
	}
}

func TestBadPacketDropped(t *testing.T) {
	good := udp(10, 0x0a000001, 0x0a000002, 1000, 53, 40)
	bad := udp(11, 0x0a000003, 0x0a000002, 1001, 53, 40)
	bad.Data = bad.Data[:20] // truncate into the IP header
	rs := evalOne(t, []string{
		`DEFINE { query_name q; } SELECT time, srcPort FROM eth0.UDP`,
	}, nil, []pkt.Packet{good, bad})
	if len(rs[0].Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (bad packet dropped): %v", len(rs[0].Rows), rs[0].Rows)
	}
}

func TestParamsApply(t *testing.T) {
	trace := []pkt.Packet{
		udp(10, 0x0a000001, 0x0a000002, 1000, 53, 40),
		udp(11, 0x0a000003, 0x0a000002, 2000, 53, 40),
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name q; param p uint; } SELECT time FROM eth0.UDP WHERE srcPort >= $p`,
	}, map[string]schema.Value{"p": schema.MakeUint(1500)}, trace)
	if len(rs[0].Rows) != 1 || rs[0].Rows[0][0].Uint() != 11 {
		t.Fatalf("param filter wrong: %v", rs[0].Rows)
	}
}

func TestStreamFeedsDownstream(t *testing.T) {
	trace := []pkt.Packet{
		udp(10, 0x0a000001, 0x0a000002, 1000, 53, 40),
		udp(10, 0x0a000001, 0x0a000002, 1001, 53, 40),
	}
	rs := evalOne(t, []string{
		`DEFINE { query_name feed; } SELECT time, srcPort AS p FROM eth0.UDP`,
		`DEFINE { query_name agg; } SELECT tb, count(*) AS cnt FROM feed GROUP BY time AS tb`,
	}, nil, trace)
	a := rs[1]
	if len(a.Rows) != 1 || a.Rows[0][1].Uint() != 2 {
		t.Fatalf("stream-fed agg wrong: %v", a.Rows)
	}
}
