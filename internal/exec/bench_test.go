package exec

import (
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// Micro-benchmarks for the operator hot paths; the experiment-level
// benchmarks live in the repository root.

func BenchmarkExprPredicate(b *testing.B) {
	e := quietCompile(quietInSchema(), "x", "destPort = 80 and len > 100")[0]
	row := mkRowQuiet(1, 80)
	row[3] = schema.MakeUint(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Eval(row, nil); !ok {
			b.Fatal("eval failed")
		}
	}
}

func BenchmarkExprArithmetic(b *testing.B) {
	e := quietCompile(quietInSchema(), "x", "time/60")[0]
	row := mkRowQuiet(12345, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(row, nil)
	}
}

func BenchmarkSelProjPush(b *testing.B) {
	s := quietInSchema()
	pred := quietCompile(s, "x", "destPort = 80")[0]
	outs := quietCompile(s, "x", "time", "srcIP", "destPort")
	op := NewSelProj(pred, outs, nil, nil, outSchema("time", "src", "port"))
	row := mkRowQuiet(1, 80)
	emit := func(Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Push(0, TupleMsg(row), emit)
	}
}

func BenchmarkSelProjPushBatch(b *testing.B) {
	s := quietInSchema()
	pred := quietCompile(s, "x", "destPort = 80")[0]
	outs := quietCompile(s, "x", "time", "srcIP", "destPort")
	op := NewSelProj(pred, outs, nil, nil, outSchema("time", "src", "port"))
	const n = 64
	batch := make(Batch, n)
	for i := range batch {
		batch[i] = TupleMsg(mkRowQuiet(uint64(i), 80))
	}
	emit := func(Batch) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.PushBatch(0, batch, emit)
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkAggPush(b *testing.B) {
	op := buildDirectCountQuiet()
	emit := func(Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Push(0, TupleMsg(mkRowQuiet(uint64(i/1000), uint64(i%64))), emit)
	}
}

func BenchmarkLFTAAggPush(b *testing.B) {
	op := buildLFTACountQuiet(4096)
	emit := func(Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Push(0, TupleMsg(mkRowQuiet(uint64(i/1000), uint64(i%64))), emit)
	}
}

func BenchmarkLFTAAggPushBatch(b *testing.B) {
	op := buildLFTACountQuiet(4096)
	const n = 64
	batch := make(Batch, n)
	for i := range batch {
		batch[i] = TupleMsg(mkRowQuiet(uint64(i/1000), uint64(i%64)))
	}
	emit := func(Batch) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.PushBatch(0, batch, emit)
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkMergePush(b *testing.B) {
	m, err := NewMerge([]int{0, 0}, outSchema("time", "v"))
	if err != nil {
		b.Fatal(err)
	}
	emit := func(Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := schema.Tuple{schema.MakeUint(uint64(i / 2)), schema.MakeUint(uint64(i))}
		m.Push(i%2, TupleMsg(row), emit)
	}
}

func BenchmarkJoinPush(b *testing.B) {
	j := buildJoinQuiet(1, 1)
	emit := func(Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := uint64(i / 2)
		if i%2 == 0 {
			j.Push(0, TupleMsg(lrow(t, uint64(i%16))), emit)
		} else {
			j.Push(1, TupleMsg(rrow(t, uint64(i%16), t)), emit)
		}
	}
}

func BenchmarkAggStateSum(b *testing.B) {
	agg, _ := funcs.Global.Aggregate("sum")
	st := agg.New(schema.TUint)
	v := schema.MakeUint(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(v)
	}
}
