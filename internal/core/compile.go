package core

import (
	"fmt"
	"strings"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/plan"
	"gigascope/internal/schema"
)

// Compilation is staged (see internal/plan): semantic analysis lowers
// each gsql.Query into the logical plan IR, a pass pipeline rewrites it
// (predicate pushdown, shared-LFTA elimination, prefilter extraction —
// paper §5), and emit instantiates the compiled closures from the
// rewritten trees. A scriptCompiler scopes the cross-query state: sharing
// and prefilter grouping happen only among queries compiled together.

type scriptCompiler struct {
	cat   *schema.Catalog
	opts  *Options
	ctx   *plan.ScriptContext
	emit  *scriptEmit
	plans []*plan.QueryPlan
}

func newScriptCompiler(cat *schema.Catalog, opts *Options) *scriptCompiler {
	reg := opts.registry()
	probe := &analyzer{reg: reg}
	return &scriptCompiler{
		cat:  cat,
		opts: opts,
		ctx: &plan.ScriptContext{
			Cheap:          probe.exprCheap,
			DisableSharing: opts.disableSharing(),
		},
		emit: newScriptEmit(),
	}
}

// compileQuery runs one query through lower -> rewrite -> emit and
// registers the resulting output schemas in the catalog.
func (sc *scriptCompiler) compileQuery(q *gsql.Query) (*CompiledQuery, error) {
	name := q.Name()
	if name == "" {
		return nil, &Error{Err: fmt.Errorf("query has no name; add DEFINE { query_name <name>; }")}
	}
	if _, exists := sc.cat.Lookup(name); exists {
		return nil, &Error{Query: name, Err: fmt.Errorf("a stream or protocol named %q already exists", name)}
	}
	a := &analyzer{cat: sc.cat, reg: sc.opts.registry(), opts: sc.opts, name: name, params: q.Params()}
	srcs, err := a.resolveSources(q)
	if err != nil {
		return nil, &Error{Query: name, Err: err}
	}
	pl, err := a.lower(name, srcs, q)
	if err != nil {
		return nil, &Error{Query: name, Err: err}
	}
	if err := plan.Rewrite(pl, sc.ctx); err != nil {
		return nil, &Error{Query: name, Err: err}
	}
	nodes, err := a.emitPlan(pl, sc.emit)
	if err != nil {
		return nil, &Error{Query: name, Err: err}
	}
	for _, n := range nodes {
		if err := sc.cat.Register(n.Out); err != nil {
			return nil, &Error{Query: name, Err: err}
		}
	}
	sc.plans = append(sc.plans, pl)
	return &CompiledQuery{Name: name, Nodes: nodes, Plan: pl}, nil
}

// Compile turns one GSQL query into its node tree: zero or more LFTAs plus
// at most one HFTA (paper §3). The output schemas of all nodes — including
// the mangled-name LFTAs — are registered in the catalog so other queries
// (and applications) can subscribe to them. Cross-query sharing requires
// CompileScript: a standalone Compile sees only its own query.
func Compile(cat *schema.Catalog, q *gsql.Query, opts *Options) (*CompiledQuery, error) {
	return newScriptCompiler(cat, opts).compileQuery(q)
}

// ScriptResult is the full compilation of a query script: the per-query
// node trees, the whole-script plan IR (for EXPLAIN), and the compiled
// per-interface prefilters the RTS installs for delivery gating.
type ScriptResult struct {
	Queries    []*CompiledQuery
	Plan       *plan.Script
	Prefilters []*Prefilter
}

// CompileScriptPlan compiles a sequence of queries (and registers any
// protocol definitions) in order, so later queries can read earlier
// outputs. Unlike per-query Compile, the whole set shares one rewrite
// context: structurally identical LFTAs are instantiated once, and the
// shared cheap predicates are hoisted into per-interface prefilters
// (paper §5). Options.DisableSharing reverts to isolated per-query
// compilation.
func CompileScriptPlan(cat *schema.Catalog, script *gsql.Script, opts *Options) (*ScriptResult, error) {
	for _, p := range script.Protocols {
		s, err := ProtocolSchema(p)
		if err != nil {
			return nil, err
		}
		if err := cat.Register(s); err != nil {
			return nil, &Error{Err: err}
		}
	}
	sc := newScriptCompiler(cat, opts)
	res := &ScriptResult{}
	for _, q := range script.Queries {
		cq, err := sc.compileQuery(q)
		if err != nil {
			return nil, err
		}
		res.Queries = append(res.Queries, cq)
	}
	res.Plan = &plan.Script{Plans: sc.plans}
	if err := (plan.PrefilterPass{}).Run(res.Plan, sc.ctx); err != nil {
		return nil, &Error{Err: err}
	}
	pfs, err := sc.compilePrefilters(res.Plan)
	if err != nil {
		return nil, err
	}
	res.Prefilters = pfs
	return res, nil
}

// CompileScript is the node-list view of CompileScriptPlan, kept for
// callers that do not install prefilters.
func CompileScript(cat *schema.Catalog, script *gsql.Script, opts *Options) ([]*CompiledQuery, error) {
	res, err := CompileScriptPlan(cat, script, opts)
	if err != nil {
		return nil, err
	}
	return res.Queries, nil
}

// ProtocolSchema converts a parsed PROTOCOL definition into a schema,
// flattening the base protocol's columns first.
func ProtocolSchema(def *gsql.ProtocolDef) (*schema.Schema, error) {
	s := &schema.Schema{Name: def.Name, Kind: schema.KindProtocol, Base: def.Base}
	for _, c := range def.Cols {
		s.Cols = append(s.Cols, schema.Column{
			Name: c.Name, Type: c.Type, Interp: c.Interp, Ordering: c.Ord,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, &Error{Err: err}
	}
	return s, nil
}

// selectableCheap reports whether every select expression is LFTA-safe.
func (a *analyzer) selectableCheap(q *gsql.Query) bool {
	for _, item := range q.Select {
		if !a.exprCheap(item.Expr) {
			return false
		}
	}
	return true
}

// aggSplittable reports whether the aggregation itself can run in the LFTA
// (all group expressions and aggregate arguments cheap).
func (a *analyzer) aggSplittable(q *gsql.Query) bool {
	for _, item := range q.GroupBy {
		if !a.exprCheap(item.Expr) {
			return false
		}
	}
	ok := true
	check := func(e gsql.Expr) {
		gsql.Walk(e, func(n gsql.Expr) bool {
			if call, isCall := n.(*gsql.FuncCall); isCall && a.reg.IsAggregate(call.Name) {
				for _, arg := range call.Args {
					if !a.exprCheap(arg) {
						ok = false
					}
				}
			}
			return true
		})
	}
	for _, item := range q.Select {
		check(item.Expr)
	}
	if q.Having != nil {
		check(q.Having)
	}
	return ok
}

// streamRef wraps an LFTA node's output as a source for the HFTA.
func (a *analyzer) streamRef(n *Node) SourceRef {
	return SourceRef{Name: n.Out.Name, Binding: n.Out.Name, Schema: n.Out}
}

// mangle builds the LFTA's mangled stream name (paper §3: "the LFTA query
// will have a mangled name").
func mangle(name string, i int) string {
	if i == 0 {
		return "_lfta_" + name
	}
	return fmt.Sprintf("_lfta_%s_%d", name, i)
}

func stripList(es []gsql.Expr) []gsql.Expr {
	out := make([]gsql.Expr, len(es))
	for i, e := range es {
		out[i] = stripQualifiers(e)
	}
	return out
}

// splitAggregate implements the paper's §3 aggregate query splitting: the
// LFTA computes sub-aggregates into a direct-mapped table; the HFTA
// recombines the partials with super-aggregates.
func (a *analyzer) splitAggregate(name string, src SourceRef, q *gsql.Query, cheap []gsql.Expr) ([]*Node, error) {
	// Group item names in the LFTA output.
	usedNames := make(map[string]bool)
	groupNames := make([]string, len(q.GroupBy))
	for i, item := range q.GroupBy {
		n, err := outName(item, i, usedNames)
		if err != nil {
			return nil, fmt.Errorf("group-by: %w", err)
		}
		groupNames[i] = n
	}

	// Collect distinct aggregate calls from SELECT and HAVING.
	type aggCall struct {
		call *gsql.FuncCall
		spec *funcs.Aggregate
		subs []string // LFTA output column names for the sub-aggregates
	}
	var calls []*aggCall
	canonSlot := make(map[string]int)
	scan := func(e gsql.Expr) {
		gsql.Walk(e, func(x gsql.Expr) bool {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !a.reg.IsAggregate(call.Name) {
				return true
			}
			canon := strings.ToLower(call.Name) + "(" + argsText(call.Args) + ")"
			if _, dup := canonSlot[canon]; !dup {
				spec, _ := a.reg.Aggregate(call.Name)
				canonSlot[canon] = len(calls)
				calls = append(calls, &aggCall{call: call, spec: spec})
			}
			return false // don't descend into aggregate args
		})
	}
	for _, it := range q.Select {
		scan(it.Expr)
	}
	if q.Having != nil {
		scan(q.Having)
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("GROUP BY without any aggregate")
	}

	// LFTA query: group items + sub-aggregates.
	lname := mangle(name, 0)
	lq := &gsql.Query{
		Defs:    map[string][]string{"query_name": {lname}},
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Interface: src.Interface, Name: src.Name}},
		Where:   conjoin(stripList(cheap)),
	}
	for i, item := range q.GroupBy {
		g := gsql.SelectItem{Expr: stripQualifiers(item.Expr), Alias: groupNames[i]}
		lq.GroupBy = append(lq.GroupBy, g)
		lq.Select = append(lq.Select, g)
	}
	for ci, c := range calls {
		for si, sub := range c.spec.Subs {
			colName := fmt.Sprintf("sub%d_%d", ci, si)
			c.subs = append(c.subs, colName)
			var args []gsql.Expr
			for _, arg := range c.call.Args {
				if _, star := arg.(*gsql.Star); star {
					args = append(args, &gsql.Star{At: c.call.At})
				} else {
					args = append(args, stripQualifiers(arg))
				}
			}
			subAgg, ok := a.reg.Aggregate(sub)
			if !ok {
				return nil, fmt.Errorf("sub-aggregate %s of %s unregistered", sub, c.spec.Name)
			}
			if subAgg.TakesArg {
				// Sub-aggregates over the same argument; count-style subs
				// keep the original argument list.
				if len(args) == 1 {
					if _, star := args[0].(*gsql.Star); star && subAgg.TakesArg {
						return nil, fmt.Errorf("%s cannot take '*'", sub)
					}
				}
			}
			lq.Select = append(lq.Select, gsql.SelectItem{
				Expr:  &gsql.FuncCall{Name: sub, Args: args, At: c.call.At},
				Alias: colName,
			})
		}
	}
	lfta, err := a.buildAgg(lname, LevelLFTA, src, lq, true)
	if err != nil {
		return nil, err
	}

	// HFTA query: original select/having with each aggregate call
	// replaced by its super-aggregate recombination over the partials.
	// Aggregates must be replaced BEFORE group-key references are renamed:
	// renaming descends into aggregate arguments and changes their
	// canonical text, which would break the canonSlot lookup (e.g.
	// max(caplen + destPort) with destPort also a group key).
	var rewriteErr error
	rewrite := func(e gsql.Expr) gsql.Expr {
		return transform(e, func(x gsql.Expr) gsql.Expr {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !a.reg.IsAggregate(call.Name) {
				return nil
			}
			canon := strings.ToLower(call.Name) + "(" + argsText(call.Args) + ")"
			slot, ok := canonSlot[canon]
			if !ok {
				if rewriteErr == nil {
					rewriteErr = fmt.Errorf("internal: aggregate %s not collected during split", canon)
				}
				return x
			}
			c := calls[slot]
			superOf := func(i int) gsql.Expr {
				return &gsql.FuncCall{
					Name: c.spec.Supers[i],
					Args: []gsql.Expr{&gsql.ColRef{Name: c.subs[i], At: call.At}},
					At:   call.At,
				}
			}
			switch c.spec.Final {
			case funcs.FinalRatio:
				return &gsql.BinaryExpr{
					Op: gsql.OpDiv,
					L:  &gsql.FuncCall{Name: "to_float", Args: []gsql.Expr{superOf(0)}, At: call.At},
					R:  &gsql.FuncCall{Name: "to_float", Args: []gsql.Expr{superOf(1)}, At: call.At},
					At: call.At,
				}
			case funcs.FinalScalarCall:
				// Sketch aggregates: the union super yields a partial-sketch
				// blob; the registered finalizer scalar extracts the answer.
				return &gsql.FuncCall{
					Name: c.spec.Finalizer,
					Args: []gsql.Expr{superOf(0)},
					At:   call.At,
				}
			default:
				return superOf(0)
			}
		})
	}
	hq := &gsql.Query{
		Defs:    q.Defs,
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Name: lname}},
	}
	for i := range q.GroupBy {
		hq.GroupBy = append(hq.GroupBy, gsql.SelectItem{
			Expr: &gsql.ColRef{Name: groupNames[i]}, Alias: groupNames[i],
		})
	}
	for _, it := range q.Select {
		e := stripQualifiersKeepingGroups(rewrite(it.Expr), q.GroupBy, groupNames)
		hq.Select = append(hq.Select, gsql.SelectItem{Expr: e, Alias: it.Alias})
	}
	if q.Having != nil {
		hq.Having = stripQualifiersKeepingGroups(rewrite(q.Having), q.GroupBy, groupNames)
	}
	if rewriteErr != nil {
		return nil, rewriteErr
	}
	hfta, err := a.buildAgg(name, LevelHFTA, a.streamRef(lfta), hq, false)
	if err != nil {
		return nil, err
	}
	return []*Node{lfta, hfta}, nil
}

// stripQualifiersKeepingGroups strips qualifiers and replaces group-by
// expressions with references to their LFTA output names.
func stripQualifiersKeepingGroups(e gsql.Expr, groups []gsql.SelectItem, names []string) gsql.Expr {
	return transform(e, func(x gsql.Expr) gsql.Expr {
		for i, g := range groups {
			if x.String() == g.Expr.String() {
				return &gsql.ColRef{Name: names[i], At: x.Pos()}
			}
			if c, ok := x.(*gsql.ColRef); ok && g.Alias != "" && strings.EqualFold(c.Name, g.Alias) {
				return &gsql.ColRef{Name: names[i], At: x.Pos()}
			}
		}
		if c, ok := x.(*gsql.ColRef); ok && c.Table != "" {
			return &gsql.ColRef{Name: c.Name, At: c.At}
		}
		return nil
	})
}
