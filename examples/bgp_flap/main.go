// bgp_flap monitors BGP updates for route flaps — the "router
// configuration (e.g. BGP monitoring)" application from the paper's
// introduction. BGP updates are just another Protocol stream; the same
// GSQL machinery (group by a time bucket, HAVING threshold) that counts
// packets counts route announcements.
//
//	go run ./examples/bgp_flap
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}

	// Withdrawal rate per peer per minute: a session going unstable shows
	// up here first.
	sys.MustAddQuery(`
		DEFINE { query_name withdrawals; }
		SELECT tb, peer, count(*) as n
		FROM BGPUPDATE WHERE kind = 1
		GROUP BY time/60 as tb, peer`, nil)

	// Flap detection: prefixes updated more than 20 times in a minute.
	sys.MustAddQuery(`
		DEFINE { query_name flaps; }
		SELECT tb, prefix, masklen, count(*) as updates
		FROM BGPUPDATE
		GROUP BY time/60 as tb, prefix, masklen
		HAVING count(*) > 20`, nil)

	wSub, err := sys.Subscribe("withdrawals", 4096)
	if err != nil {
		log.Fatal(err)
	}
	fSub, err := sys.Subscribe("flaps", 4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	gen, err := gigascope.NewBGPGenerator(gigascope.BGPConfig{
		Seed: 11, Peers: 4, Prefixes: 1000,
		BaselinePerSec: 20, FlappingPrefixes: 1, FlapPerSec: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for i := 0; i < 30_000; i++ {
			p := gen.Next()
			sys.Inject("", &p)
		}
		sys.Stop()
	}()

	go func() {
		for b := range wSub.C {
			_ = b // withdrawal rates consumed; print only flaps below
		}
	}()

	fmt.Println("minute  prefix              updates   <-- flapping routes")
	for b := range fSub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			fmt.Printf("%6d  %-15s/%-2d %8d\n",
				m.Tuple[0].Uint(),
				gigascope.FormatIP(m.Tuple[1].IP()), m.Tuple[2].Uint(),
				m.Tuple[3].Uint())
		}
	}
}
