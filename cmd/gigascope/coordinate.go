package main

// Multi-process coordinated deployment: `gigascope -coordinate` places
// the script across the topology's hosts, prints the manifest, then
// re-execs itself once per host (`-placed-host NAME`) with a shared
// socket-address map. Each child derives the identical manifest from
// (script, topology, seed), runs its share via StartHost, and generates
// the full deterministic traffic stream locally, injecting only the
// packets the topology routes to interfaces it captures — so the union
// of what the children capture is exactly what a single process would
// see, and the sink's printed rows sort-diff clean against a
// single-process `gigascope -f ... -n 0` run.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gigascope"
)

// coordOptions carries the flag subset the coordinator modes use.
type coordOptions struct {
	scriptPath string
	topoPath   string
	host       string // non-empty: run as a placed host
	addrs      string // name=addr,... (children)
	seed       int64
	seconds    float64
	rate       float64
	httpFrac   float64
	maxRows    int
}

// runCoordinator is the parent: place, print the manifest, spawn one
// child process per host in manifest order, wait for all of them.
func runCoordinator(opt coordOptions) {
	script, err := os.ReadFile(opt.scriptPath)
	if err != nil {
		fatal(err)
	}
	topoSrc, err := os.ReadFile(opt.topoPath)
	if err != nil {
		fatal(err)
	}
	topo, err := gigascope.ParseTopology(string(topoSrc))
	if err != nil {
		fatal(err)
	}
	m, err := gigascope.PlaceScript(string(script), topo, gigascope.Config{}, opt.seed, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, m.Render())

	dir, err := os.MkdirTemp("", "gsc")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	var addrList []string
	for i, h := range m.Hosts {
		addrList = append(addrList, fmt.Sprintf("%s=unix:%s", h.Name, filepath.Join(dir, fmt.Sprintf("h%d.sock", i))))
	}
	addrs := strings.Join(addrList, ",")

	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	procs := make(map[string]*exec.Cmd, len(m.Order))
	for _, host := range m.Order {
		cmd := exec.Command(self,
			"-f", opt.scriptPath,
			"-topo", opt.topoPath,
			"-placed-host", host,
			"-addrs", addrs,
			"-place-seed", fmt.Sprint(opt.seed),
			"-seconds", fmt.Sprint(opt.seconds),
			"-rate", fmt.Sprint(opt.rate),
			"-http", fmt.Sprint(opt.httpFrac),
			"-n", fmt.Sprint(opt.maxRows),
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("spawn host %s: %w", host, err))
		}
		fmt.Fprintf(os.Stderr, "gigascope: coordinator spawned host %s (pid %d)\n", host, cmd.Process.Pid)
		procs[host] = cmd
	}
	failed := false
	for _, host := range m.Order {
		if err := procs[host].Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "gigascope: host %s: %v\n", host, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runPlacedHost is the child: bring up this host's share of the placed
// deployment, wait for downstream subscribers, inject this host's slice
// of the deterministic traffic, drain, and (sink only) print rows in the
// same format the single-process mode uses.
func runPlacedHost(opt coordOptions) {
	script, err := os.ReadFile(opt.scriptPath)
	if err != nil {
		fatal(err)
	}
	topoSrc, err := os.ReadFile(opt.topoPath)
	if err != nil {
		fatal(err)
	}
	topo, err := gigascope.ParseTopology(string(topoSrc))
	if err != nil {
		fatal(err)
	}
	addrs := map[string]string{}
	for _, item := range strings.Split(opt.addrs, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			fatal(fmt.Errorf("-addrs wants name=addr[,name=addr...], got %q", item))
		}
		addrs[name] = addr
	}

	h, err := gigascope.StartHost(gigascope.HostConfig{
		Script:   string(script),
		Topology: topo,
		Host:     opt.host,
		Seed:     opt.seed,
		Addrs:    addrs,
	})
	if err != nil {
		fatal(fmt.Errorf("host %s: %w", opt.host, err))
	}
	m := h.Manifest()

	// Sink: collect every query output before any traffic flows.
	var wg sync.WaitGroup
	var mu sync.Mutex
	isSink := opt.host == m.Sink
	if isSink {
		queries := map[string]bool{}
		for _, hp := range m.Hosts {
			for _, a := range hp.Assignments {
				queries[a.Query] = true
			}
		}
		names := make([]string, 0, len(queries))
		for q := range queries {
			names = append(names, q)
		}
		sort.Strings(names)
		for _, name := range names {
			sub, err := h.System().Subscribe(name, 8192)
			if err != nil {
				fatal(fmt.Errorf("sink subscribe %s: %w", name, err))
			}
			wg.Add(1)
			go func(name string, sub *gigascope.Subscription) {
				defer wg.Done()
				rows := 0
				for b := range sub.C {
					for _, t := range b {
						if t.IsHeartbeat() {
							continue
						}
						rows++
						if opt.maxRows == 0 || rows <= opt.maxRows {
							mu.Lock()
							fmt.Printf("%-20s %s\n", name+":", t.Tuple)
							mu.Unlock()
						}
					}
				}
				mu.Lock()
				fmt.Printf("%-20s %d tuples total\n", name+":", rows)
				mu.Unlock()
			}(name, sub)
		}
	}

	// Hold traffic until every host that imports from this one is
	// actually subscribed; a wire subscription only sees batches
	// published after it attaches.
	if err := h.AwaitSubscribers(30 * time.Second); err != nil {
		fatal(fmt.Errorf("host %s: %w", opt.host, err))
	}

	tn := topo.Node(opt.host)
	if tn != nil && len(tn.Captures) > 0 {
		injectPlacedTraffic(h.System(), topo, opt)
	}
	h.Shutdown(60 * time.Second)
	wg.Wait()
}

// injectPlacedTraffic generates the full deterministic traffic stream —
// byte-identical to the single-process mode's — and injects the slice
// the topology routes to this host: per-interface packet indices drive
// the same round-robin split the coordinator assumed when it placed the
// partitioned LFTAs.
func injectPlacedTraffic(sys *gigascope.System, topo *gigascope.Topology, opt coordOptions) {
	web := opt.rate * 0.6
	bg := opt.rate - web
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 1,
		Classes: []gigascope.TrafficClass{
			{Name: "web", RateMbps: web, PktBytes: 1000, DstPort: 80,
				Proto: gigascope.ProtoTCP, Payload: gigascope.PayloadHTTP, HTTPFraction: opt.httpFrac},
			{Name: "tcp-bg", RateMbps: bg * 0.7, PktBytes: 800, DstPort: 443,
				Proto: gigascope.ProtoTCP},
			{Name: "udp-bg", RateMbps: bg * 0.3, PktBytes: 400, DstPort: 53,
				Proto: gigascope.ProtoUDP},
		},
	})
	if err != nil {
		fatal(err)
	}
	router := topo.Router()
	horizon := uint64(opt.seconds * 1e6)
	step := horizon / 100
	if step == 0 {
		step = 1
	}
	ifaces := []string{"eth0", "eth1"}
	idx := map[string]uint64{}
	i := 0
	for usec := step; usec <= horizon; usec += step {
		gen.Until(usec, func(p *gigascope.Packet) {
			// Mirror the single-process loop: each packet lands on an
			// alternating interface AND the default interface.
			for _, ifc := range []string{ifaces[i%len(ifaces)], ""} {
				key := ifc
				if key == "" {
					key = "default"
				}
				host, ok := router.Route(ifc, idx[key])
				idx[key]++
				if ok && host == opt.host {
					sys.Inject(ifc, p)
				}
			}
			i++
		})
		sys.AdvanceClock(usec)
	}
}
