package exec

import (
	"fmt"
	"sort"

	"gigascope/internal/schema"
)

// JoinSpec configures a two-stream window join. The join window is derived
// at plan time from predicates over ordered attributes of both inputs
// (paper §2.1: "the join predicate must contain a constraint on an ordered
// attribute from each table which can be used to define a join window"):
//
//	ordL - LowSlack <= ordR <= ordL + HighSlack
//
// Equality on the ordered attributes gives LowSlack = HighSlack = 0.
type JoinSpec struct {
	// OrdL and OrdR evaluate the ordered window attribute over the left
	// and right input rows respectively. Both must increase.
	OrdL, OrdR Expr
	LowSlack   int64
	HighSlack  int64
	// EqL/EqR are parallel hash-equality key expressions (may be empty).
	EqL, EqR []Expr
	// Residual is the remaining predicate over the combined row
	// (left columns followed by right columns); may be nil.
	Residual Expr
	// Outs computes output columns over the combined row.
	Outs []Expr
	Out  *schema.Schema
	Ctx  *Ctx
	// OutOrdL/OutOrdR index output columns that carry the left/right
	// ordered attribute, for heartbeat propagation; -1 when absent.
	OutOrdL, OutOrdR int
	// MaxBuffer bounds each side's buffer; 0 means unbounded. When the
	// bound is hit the oldest entry is dropped (overload shedding).
	MaxBuffer int
	// SortOutput selects the order-preserving join algorithm (paper
	// §2.1: the output ordering "depends on the choice of join
	// algorithm" — "monotonically increasing requires more buffer
	// space"). Matches are held in a reorder buffer and released in
	// left-ordered-attribute order once the watermarks guarantee no
	// earlier match can appear. Requires OutOrdL >= 0.
	SortOutput bool
}

// Join is the streaming window join operator.
type Join struct {
	spec  JoinSpec
	sides [2]joinSide
	stats Counters
	// reorder buffer for SortOutput mode: pending output rows keyed by
	// the left ordered attribute.
	pending []pendingOut
	seq     uint64
}

type pendingOut struct {
	ord int64
	seq uint64 // arrival tiebreak for a stable order
	row schema.Tuple
}

type joinSide struct {
	entries []joinEntry // ord nondecreasing, front-evicted
	start   int         // logical start within entries
	buckets map[string][]int
	wm      int64
	hasWM   bool
}

type joinEntry struct {
	row  schema.Tuple
	ord  int64
	key  string
	dead bool
}

// NewJoin builds a window join operator.
func NewJoin(spec JoinSpec) (*Join, error) {
	if spec.OrdL == nil || spec.OrdR == nil {
		return nil, fmt.Errorf("exec: join needs ordered window attributes on both inputs")
	}
	if len(spec.EqL) != len(spec.EqR) {
		return nil, fmt.Errorf("exec: join equality key lists must be parallel")
	}
	if spec.SortOutput && spec.OutOrdL < 0 {
		return nil, fmt.Errorf("exec: ordered join output requires the left ordered attribute in the select list")
	}
	j := &Join{spec: spec}
	for i := range j.sides {
		j.sides[i].buckets = make(map[string][]int)
	}
	return j, nil
}

// Ports implements Operator.
func (o *Join) Ports() int { return 2 }

// OutSchema implements Operator.
func (o *Join) OutSchema() *schema.Schema { return o.spec.Out }

// Stats returns a snapshot of the operator counters.
func (o *Join) Stats() OpStats { return o.stats.Snapshot() }

// Buffered returns the number of tuples buffered on the given side.
func (o *Join) Buffered(port int) int {
	return len(o.sides[port].entries) - o.sides[port].start
}

// ordKey converts an ordered attribute value to the int64 domain the
// window arithmetic runs in.
func ordKey(v schema.Value) (int64, bool) {
	switch v.Type {
	case schema.TUint, schema.TIP:
		return int64(v.U), true
	case schema.TInt:
		return v.Int(), true
	case schema.TFloat:
		return int64(v.F), true
	}
	return 0, false
}

func (o *Join) ordExpr(port int) Expr {
	if port == 0 {
		return o.spec.OrdL
	}
	return o.spec.OrdR
}

func (o *Join) eqExprs(port int) []Expr {
	if port == 0 {
		return o.spec.EqL
	}
	return o.spec.EqR
}

// slacks returns (before, after): a tuple on `port` at ord t matches other
// side tuples with ord in [t-before, t+after].
func (o *Join) slacks(port int) (int64, int64) {
	if port == 0 {
		// left at t matches right in [t-LowSlack, t+HighSlack]
		return o.spec.LowSlack, o.spec.HighSlack
	}
	// right at t matches left in [t-HighSlack, t+LowSlack]
	return o.spec.HighSlack, o.spec.LowSlack
}

// Push implements Operator.
func (o *Join) Push(port int, m Message, emit Emit) error {
	if port < 0 || port > 1 {
		return fmt.Errorf("exec: join port %d out of range", port)
	}
	if m.IsHeartbeat() {
		v, ok := o.ordExpr(port).Eval(m.Bounds, o.spec.Ctx)
		if ok && !v.IsNull() {
			if k, ok := ordKey(v); ok {
				o.advance(port, k)
			}
		}
		o.releasePending(emit)
		o.emitHeartbeat(emit)
		return nil
	}
	o.stats.In.Add(1)
	row := m.Tuple
	v, ok := o.ordExpr(port).Eval(row, o.spec.Ctx)
	if !ok || v.IsNull() {
		o.stats.Dropped.Add(1)
		return nil
	}
	t, ok := ordKey(v)
	if !ok {
		o.stats.Dropped.Add(1)
		return nil
	}
	o.advance(port, t)

	key, ok := o.evalKey(port, row)
	if !ok {
		o.stats.Dropped.Add(1)
		return nil
	}

	// Probe the other side's buffer.
	other := 1 - port
	before, after := o.slacks(port)
	o.probe(port, row, t, key, other, t-before, t+after, emit)
	o.releasePending(emit)

	// Buffer this tuple for future matches from the other side, unless the
	// other side's watermark already rules them out.
	os := &o.sides[other]
	if os.hasWM && os.wm > t+after {
		return nil
	}
	s := &o.sides[port]
	if o.spec.MaxBuffer > 0 && len(s.entries)-s.start >= o.spec.MaxBuffer {
		o.evictOldest(port)
	}
	idx := len(s.entries)
	s.entries = append(s.entries, joinEntry{row: row.Clone(), ord: t, key: key})
	s.buckets[key] = append(s.buckets[key], idx)
	return nil
}

func (o *Join) evalKey(port int, row schema.Tuple) (string, bool) {
	eqs := o.eqExprs(port)
	if len(eqs) == 0 {
		return "", true
	}
	kv := make(schema.Tuple, len(eqs))
	for i, e := range eqs {
		v, ok := e.Eval(row, o.spec.Ctx)
		if !ok {
			return "", false
		}
		if v.IsNull() {
			return "", false // NULL never joins
		}
		kv[i] = v
	}
	return string(kv.Pack(nil)), true
}

// probe emits combined rows for other-side entries with matching key and
// ord within [lo, hi].
func (o *Join) probe(port int, row schema.Tuple, _ int64, key string, other int, lo, hi int64, emit Emit) {
	os := &o.sides[other]
	candidates := os.buckets[key]
	live := candidates[:0]
	for _, idx := range candidates {
		if idx < os.start || os.entries[idx].dead {
			continue // evicted; compact the bucket as we go
		}
		e := &os.entries[idx]
		live = append(live, idx)
		if e.ord >= lo && e.ord <= hi {
			o.emitMatch(port, row, e.row, emit)
		}
	}
	if len(live) == 0 {
		delete(os.buckets, key)
	} else {
		os.buckets[key] = live
	}
}

func (o *Join) emitMatch(port int, row, otherRow schema.Tuple, emit Emit) {
	var combined schema.Tuple
	if port == 0 {
		combined = append(append(schema.Tuple{}, row...), otherRow...)
	} else {
		combined = append(append(schema.Tuple{}, otherRow...), row...)
	}
	if o.spec.Residual != nil {
		pass, ok := EvalPred(o.spec.Residual, combined, o.spec.Ctx)
		if !ok || !pass {
			return
		}
	}
	outRow := make(schema.Tuple, len(o.spec.Outs))
	for i, e := range o.spec.Outs {
		v, ok := e.Eval(combined, o.spec.Ctx)
		if !ok {
			o.stats.Dropped.Add(1)
			return
		}
		outRow[i] = v
	}
	if o.spec.SortOutput {
		ord, _ := ordKey(outRow[o.spec.OutOrdL])
		o.seq++
		o.pending = append(o.pending, pendingOut{ord: ord, seq: o.seq, row: outRow})
		return
	}
	o.stats.Out.Add(1)
	emit(TupleMsg(outRow))
}

// releasePending emits reorder-buffered rows whose left ordered value can
// no longer be preceded: bound = min(wmL, wmR - HighSlack).
func (o *Join) releasePending(emit Emit) {
	if !o.spec.SortOutput || len(o.pending) == 0 {
		return
	}
	l, r := &o.sides[0], &o.sides[1]
	if !l.hasWM || !r.hasWM {
		return
	}
	bound := min64(l.wm, r.wm-o.spec.HighSlack)
	sort.Slice(o.pending, func(i, j int) bool {
		if o.pending[i].ord != o.pending[j].ord {
			return o.pending[i].ord < o.pending[j].ord
		}
		return o.pending[i].seq < o.pending[j].seq
	})
	n := 0
	for n < len(o.pending) && o.pending[n].ord <= bound {
		o.stats.Out.Add(1)
		emit(TupleMsg(o.pending[n].row))
		n++
	}
	o.pending = append(o.pending[:0], o.pending[n:]...)
}

// advance updates the watermark for port and evicts unmatchable entries
// from the other side.
func (o *Join) advance(port int, t int64) {
	s := &o.sides[port]
	if !s.hasWM || t > s.wm {
		s.wm = t
		s.hasWM = true
	}
	// Entries on the other side at ord e can only match future tuples on
	// `port` at ord >= wm; the match needs e >= ord - before, so entries
	// with e < wm - before are dead.
	before, _ := o.slacks(port)
	threshold := s.wm - before
	o.evictBelow(1-port, threshold)
}

func (o *Join) evictBelow(side int, threshold int64) {
	s := &o.sides[side]
	for s.start < len(s.entries) && s.entries[s.start].ord < threshold {
		s.entries[s.start].dead = true
		s.entries[s.start].row = nil
		s.start++
	}
	o.maybeCompact(s)
}

func (o *Join) evictOldest(side int) {
	s := &o.sides[side]
	if s.start < len(s.entries) {
		o.stats.Dropped.Add(1)
		s.entries[s.start].dead = true
		s.entries[s.start].row = nil
		s.start++
		o.maybeCompact(s)
	}
}

// maybeCompact reclaims the dead prefix once it dominates the buffer.
func (o *Join) maybeCompact(s *joinSide) {
	if s.start < 1024 || s.start*2 < len(s.entries) {
		return
	}
	live := len(s.entries) - s.start
	fresh := make([]joinEntry, live)
	copy(fresh, s.entries[s.start:])
	// Rebuild buckets with shifted indexes.
	for k := range s.buckets {
		delete(s.buckets, k)
	}
	for i := range fresh {
		if !fresh[i].dead {
			s.buckets[fresh[i].key] = append(s.buckets[fresh[i].key], i)
		}
	}
	s.entries = fresh
	s.start = 0
}

// emitHeartbeat publishes conservative bounds for the ordered output
// columns: no future output can carry a left ordered value below
// min(wmL, wmR - HighSlack) nor a right one below min(wmR, wmL - LowSlack).
func (o *Join) emitHeartbeat(emit Emit) {
	if o.spec.OutOrdL < 0 && o.spec.OutOrdR < 0 {
		return
	}
	l, r := &o.sides[0], &o.sides[1]
	outBounds := make(schema.Tuple, len(o.spec.Outs))
	if o.spec.OutOrdL >= 0 && l.hasWM && r.hasWM {
		b := min64(l.wm, r.wm-o.spec.HighSlack)
		outBounds[o.spec.OutOrdL] = schema.MakeUint(uint64(max64(b, 0)))
	}
	if o.spec.OutOrdR >= 0 && l.hasWM && r.hasWM {
		b := min64(r.wm, l.wm-o.spec.LowSlack)
		outBounds[o.spec.OutOrdR] = schema.MakeUint(uint64(max64(b, 0)))
	}
	emit(HeartbeatMsg(outBounds))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FlushAll implements Operator: reorder-buffered output (SortOutput mode)
// is released in order; the window buffers only ever hold tuples that
// might still match, so they are simply cleared.
func (o *Join) FlushAll(emit Emit) error {
	if len(o.pending) > 0 {
		sort.Slice(o.pending, func(i, j int) bool {
			if o.pending[i].ord != o.pending[j].ord {
				return o.pending[i].ord < o.pending[j].ord
			}
			return o.pending[i].seq < o.pending[j].seq
		})
		for _, p := range o.pending {
			o.stats.Out.Add(1)
			emit(TupleMsg(p.row))
		}
		o.pending = nil
	}
	for i := range o.sides {
		s := &o.sides[i]
		s.entries = nil
		s.start = 0
		s.buckets = make(map[string][]int)
	}
	return nil
}
