package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/capture"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
)

// Interface is a symbolic packet source the run time system binds LFTAs
// to (paper §2.2: "the Protocol must be bound to an Interface — a symbolic
// name which the run time system can bind to a source of packets").
//
// An Interface may additionally own a measurement substrate: a virtual
// NIC (nic.Device) that pre-filters and snaps packets, and a capture
// stack (capture.Stack) that models host interrupt/copy costs and losses.
// Once bound, every injected packet is routed through them, and their
// counters — NIC overruns, host ring drops, livelock state — are surfaced
// through Manager.IfaceStats and the SYSMON.IfaceStats telemetry stream.
type Interface struct {
	name    string
	m       *Manager
	hbEvery uint64

	mu           sync.Mutex
	lftas        []*queryNode
	clock        uint64 // virtual time, microseconds
	lastHB       uint64
	offered      uint64 // packets offered, including capture losses
	packets      uint64 // packets delivered to the LFTAs
	heartbeats   uint64 // source heartbeats emitted
	capStack     *capture.Stack
	nicDev       *nic.Device
	hbAsked      atomic.Bool
	shutdownOnce sync.Once
}

// Name returns the interface's symbolic name.
func (it *Interface) Name() string { return it.name }

func (it *Interface) attach(qn *queryNode) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.lftas = append(it.lftas, qn)
}

// LFTACount returns the number of LFTAs linked to this interface.
func (it *Interface) LFTACount() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.lftas)
}

// BindCapture routes injected packets through a capture-stack simulation:
// packets the stack loses (host ring full, NIC input overrun) never reach
// the LFTAs, and the stack's counters become part of the interface's
// monitoring snapshot. Bind before traffic starts.
func (it *Interface) BindCapture(st *capture.Stack) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.capStack = st
}

// BindNIC routes injected packets through a virtual NIC device: packets
// its program filters out never reach the host, qualifying packets are
// snapped to the program's snap length. Bind before traffic starts.
func (it *Interface) BindNIC(d *nic.Device) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.nicDev = d
}

// Inject delivers one packet to every attached LFTA inline (the capture
// path). The packet timestamp advances the interface clock. Bound NIC and
// capture-stack devices see the packet first and may filter, snap, or
// lose it before the LFTAs run. A single Inject is a poll window of one
// packet: LFTA output crosses the rings before Inject returns, so latency
// matches the per-message pipeline exactly.
func (it *Interface) Inject(p *pkt.Packet) {
	window := [1]*pkt.Packet{p}
	it.InjectBatch(window[:])
}

// InjectBatch delivers one interrupt/poll window of packets: the window
// runs through the NIC and capture stack, the survivors through every
// LFTA under one lock acquisition, and each LFTA's accumulated output
// crosses its rings as one batch at the window end. This is the batched
// capture entry point — one ring crossing per window instead of one per
// packet.
func (it *Interface) InjectBatch(ps []*pkt.Packet) {
	if len(ps) == 0 {
		return
	}
	it.mu.Lock()
	lftas := it.lftas
	for _, p := range ps {
		if p.TS > it.clock {
			it.clock = p.TS
		}
	}
	it.offered += uint64(len(ps))
	kept := ps
	if it.nicDev != nil {
		snapped := it.nicDev.ProcessBatch(kept, make([]pkt.Packet, 0, len(kept)))
		kept = make([]*pkt.Packet, len(snapped))
		for i := range snapped {
			kept[i] = &snapped[i]
		}
	}
	if it.capStack != nil {
		// Packets the host ring (or NIC input queue) drops never reach
		// the LFTAs.
		kept = it.capStack.ArriveBatch(kept, make([]*pkt.Packet, 0, len(kept)))
	}
	it.packets += uint64(len(kept))
	it.mu.Unlock()
	for _, qn := range lftas {
		qn.pushPackets(kept)
	}
	it.maybeHeartbeat(false)
}

// AdvanceClock moves the virtual clock forward (idle time with no
// packets) and emits periodic or requested heartbeats.
func (it *Interface) AdvanceClock(usec uint64) {
	it.mu.Lock()
	if usec > it.clock {
		it.clock = usec
	}
	it.mu.Unlock()
	it.maybeHeartbeat(false)
}

func (it *Interface) requestHeartbeat() {
	it.hbAsked.Store(true)
	// Serve the request immediately from the current clock; a source
	// with no flowing packets would otherwise never answer.
	it.maybeHeartbeat(true)
}

func (it *Interface) maybeHeartbeat(forced bool) {
	it.mu.Lock()
	clock := it.clock
	due := clock >= it.lastHB+it.hbEvery
	if forced || it.hbAsked.Load() {
		due = clock > it.lastHB || forced
	}
	if !due || clock == 0 {
		it.mu.Unlock()
		return
	}
	it.lastHB = clock
	it.heartbeats++
	lftas := it.lftas
	it.mu.Unlock()
	it.hbAsked.Store(false)
	for _, qn := range lftas {
		qn.clockHeartbeat(clock)
	}
}

// stats snapshots the interface counters, including any bound devices.
func (it *Interface) stats() IfaceStats {
	it.mu.Lock()
	defer it.mu.Unlock()
	s := IfaceStats{
		Name:       it.name,
		Clock:      it.clock,
		LFTAs:      len(it.lftas),
		Packets:    it.packets,
		Offered:    it.offered,
		Heartbeats: it.heartbeats,
	}
	if it.capStack != nil {
		s.HasCapture = true
		s.Capture = it.capStack.Stats()
		s.Livelocked = it.capStack.Livelocked()
	}
	if it.nicDev != nil {
		s.HasNIC = true
		s.NICDelivered = it.nicDev.Delivered()
		s.NICFiltered = it.nicDev.Filtered()
	}
	return s
}

// shutdown flushes and closes every attached LFTA.
func (it *Interface) shutdown() {
	it.shutdownOnce.Do(func() {
		it.mu.Lock()
		lftas := it.lftas
		it.mu.Unlock()
		for _, qn := range lftas {
			qn.flushInline()
		}
	})
}
