package rts

import (
	"fmt"
	"strings"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// OverloadStream is the default stream name an overload controller's
// decision tuples publish under. Like the sysmon streams it is a
// first-class catalog stream: GSQL queries can read the controller's own
// behavior (FROM SYSMON.Overload).
const OverloadStream = "SYSMON.Overload"

// OverloadConfig tunes one closed-loop overload controller: the paper's
// §4 parameter-based load shedding ("reducing the amount of data sent to
// the HFTAs, e.g. by setting the sampling rate of some of the queries")
// run as an automatic loop instead of a manual knob. The controller
// watches the drop counters of one interface's capture path and one
// target query, and pushes a sampling-rate parameter through the
// SetParams command path — throttling multiplicatively under overload and
// restoring the rate once the system has stayed healthy, with hysteresis
// in both directions.
type OverloadConfig struct {
	// Stream names the controller's decision stream; OverloadStream when
	// empty.
	Stream string
	// Iface is the interface whose capture stack (Stats().RingDrops,
	// Livelocked()) is watched; the default interface when empty.
	Iface string
	// Target is the registered query whose parameter is throttled; its
	// output-ring shed counters are watched too (for a sharded LFTA the
	// per-shard rings are summed). Required.
	Target string
	// Param is the target's sampling-rate parameter (a GSQL `param <name>
	// float` in its DEFINE block). Required.
	Param string

	// Full is the healthy sampling rate restored after recovery (1.0 when
	// zero); Min is the throttle floor (0.05 when zero).
	Full float64
	Min  float64
	// StepDown multiplies the rate on each overloaded decision (0.5 when
	// zero); StepUp multiplies it on each restore step (1.25 when zero).
	StepDown float64
	StepUp   float64

	// HighWater is the per-interval drop delta (capture ring drops plus
	// target ring sheds) that marks the interval overloaded (default 1;
	// a livelocked capture ring always does). LowWater is the delta at or
	// below which the interval counts as recovered (default 0). Deltas in
	// between touch neither run — the hysteresis dead band.
	HighWater uint64
	LowWater  uint64
	// TripIntervals is how many consecutive overloaded intervals arm a
	// throttle step (default 1); HoldIntervals how many consecutive
	// recovered intervals arm each restore step (default 3, so restoring
	// is slower than shedding).
	TripIntervals int
	HoldIntervals int

	// IntervalUsec is the decision interval on the virtual clock
	// (default 100ms).
	IntervalUsec uint64

	// DemoteFirst lets the controller demote the target's eligible exact
	// aggregates to their sketched twins (count_distinct -> approx_distinct,
	// quantile -> approx_quantile) before it starts cutting the sampling
	// rate: the first armed throttle step switches representation instead
	// of shedding data, trading bounded answer error for aggregate-table
	// memory and eviction pressure. Promotion back to exact happens only
	// after the rate has fully restored. The decision stream's demoted /
	// eps / delta columns publish the mode and the active error bound.
	DemoteFirst bool

	// OnApply, when set, observes every applied rate change — the hook
	// load models use to keep a simulated capture cost consistent with
	// the rebound predicate.
	OnApply func(rate float64)
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Stream == "" {
		c.Stream = OverloadStream
	}
	if c.Full == 0 {
		c.Full = 1.0
	}
	if c.Min == 0 {
		c.Min = 0.05
	}
	if c.StepDown == 0 {
		c.StepDown = 0.5
	}
	if c.StepUp == 0 {
		c.StepUp = 1.25
	}
	if c.HighWater == 0 {
		c.HighWater = 1
	}
	if c.TripIntervals == 0 {
		c.TripIntervals = 1
	}
	if c.HoldIntervals == 0 {
		c.HoldIntervals = 3
	}
	if c.IntervalUsec == 0 {
		c.IntervalUsec = 100_000
	}
	return c
}

// overloadSchema is the decision stream layout: one row per decision
// interval.
func overloadSchema(name string) *schema.Schema {
	return &schema.Schema{
		Name: name,
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "ts", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "iface", Type: schema.TString},
			{Name: "target", Type: schema.TString},
			{Name: "rate", Type: schema.TFloat},
			{Name: "drops", Type: schema.TUint},    // drop delta observed this interval
			{Name: "livelocked", Type: schema.TBool},
			{Name: "throttled", Type: schema.TBool}, // rate below Full
			{Name: "applied", Type: schema.TBool},   // SetParams succeeded (or no change needed)
			{Name: "demoted", Type: schema.TBool},   // aggregates demoted to sketches
			{Name: "eps", Type: schema.TFloat},      // active error bound (0 when exact)
			{Name: "delta", Type: schema.TFloat},    // active error probability (0 when exact)
		},
	}
}

// overloadController implements SourceNode: it rides the same virtual
// clock as the sysmon samplers, so decisions are deterministic for a
// given packet sequence and need no wall-clock timer.
type overloadController struct {
	m      *Manager
	cfg    OverloadConfig
	it     *Interface
	target *queryNode
	out    *schema.Schema

	last      uint64
	prevDrops uint64
	rate      float64
	badRun    int
	goodRun   int
	stats     exec.Counters

	// Demotion actuator state (DemoteFirst): the query nodes hosting the
	// target's aggregation (the named node plus its mangled LFTAs), the
	// current mode, and the compiled error bound demotion runs at.
	demotable []*queryNode
	demoted   bool
	eps       float64
	delta     float64
}

// AttachOverloadController registers a closed-loop overload controller as
// a clock-driven source node. The target query must already be registered
// (add queries first, attach controllers second); its throttle parameter
// starts at cfg.Full. Call before Start, alongside the other source
// nodes.
func (m *Manager) AttachOverloadController(cfg OverloadConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Target == "" || cfg.Param == "" {
		return fmt.Errorf("rts: overload controller needs Target and Param")
	}
	target := strings.ToLower(cfg.Target)
	m.mu.Lock()
	qn, ok := m.nodes[target]
	var it *Interface
	var candidates []*queryNode
	if ok {
		it = m.ifaceLocked(ifaceNameOrDefault(cfg.Iface))
		// The aggregation demotion can live in the target node itself
		// (unsplit plan) or in its mangled LFTAs (split plan).
		candidates = m.demotionNodesLocked(target)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("rts: overload controller target %s not registered", cfg.Target)
	}
	ctrl := &overloadController{
		m:      m,
		cfg:    cfg,
		it:     it,
		target: qn,
		out:    overloadSchema(cfg.Stream),
		rate:   cfg.Full,
	}
	if cfg.DemoteFirst {
		for _, node := range candidates {
			e, d, n := node.demoteBounds()
			if n == 0 {
				continue
			}
			ctrl.demotable = append(ctrl.demotable, node)
			if e > ctrl.eps {
				ctrl.eps = e
			}
			if d > ctrl.delta {
				ctrl.delta = d
			}
		}
	}
	return m.AddSourceNode(cfg.Stream, ctrl)
}

func ifaceNameOrDefault(name string) string {
	if name == "" {
		return DefaultInterface
	}
	return name
}

// OutSchema implements SourceNode.
func (c *overloadController) OutSchema() *schema.Schema { return c.out }

// Stats reports the controller's own operator counters (decisions in,
// rows out), so it shows up in SYSMON.NodeStats like any node.
func (c *overloadController) Stats() exec.OpStats { return c.stats.Snapshot() }

// Tick implements SourceNode: one control decision per interval.
func (c *overloadController) Tick(nowUsec uint64, emit exec.Emit) {
	if nowUsec < c.last+c.cfg.IntervalUsec {
		return
	}
	c.decide(nowUsec, emit)
}

// Heartbeat implements SourceNode.
func (c *overloadController) Heartbeat(nowUsec uint64, emit exec.Emit) {
	if nowUsec == 0 {
		return
	}
	bounds := make(schema.Tuple, len(c.out.Cols))
	bounds[0] = schema.MakeUint(nowUsec)
	emit(exec.HeartbeatMsg(bounds))
}

// Flush implements SourceNode: one final decision row at shutdown.
func (c *overloadController) Flush(nowUsec uint64, emit exec.Emit) {
	if nowUsec < c.last {
		nowUsec = c.last
	}
	c.decide(nowUsec, emit)
}

// setDemoted flips every demotable node between exact and sketched
// aggregation and records the controller's view of the mode.
func (c *overloadController) setDemoted(on bool) {
	for _, node := range c.demotable {
		node.setApprox(on)
	}
	c.demoted = on
}

// drops sums the watched drop counters: the capture stack's ring drops
// plus the tuples shed at the target's output rings (per-shard rings
// included for a sharded target).
func (c *overloadController) drops() (uint64, bool) {
	n := c.target.pub.drops.Load()
	for _, sh := range c.target.shardsOf {
		n += sh.pub.drops.Load()
	}
	s := c.it.stats()
	if s.HasCapture {
		n += s.Capture.RingDrops
	}
	return n, s.Livelocked
}

func (c *overloadController) decide(nowUsec uint64, emit exec.Emit) {
	c.last = nowUsec
	c.stats.In.Add(1)
	cur, livelocked := c.drops()
	d := cur - c.prevDrops
	if cur < c.prevDrops { // counter reset (target restarted)
		d = 0
	}
	c.prevDrops = cur

	overloaded := livelocked || d >= c.cfg.HighWater
	recovered := !livelocked && d <= c.cfg.LowWater
	newRate := c.rate
	switch {
	case overloaded:
		c.goodRun = 0
		c.badRun++
		if c.badRun >= c.cfg.TripIntervals {
			if len(c.demotable) > 0 && !c.demoted {
				// Demote before shedding: the first armed step switches the
				// target's aggregates to their sketched twins instead of
				// cutting the sampling rate — bounded answer error is a
				// gentler degradation than dropped data.
				c.setDemoted(true)
			} else {
				newRate = c.rate * c.cfg.StepDown
				if newRate < c.cfg.Min {
					newRate = c.cfg.Min
				}
			}
			c.badRun = 0
		}
	case recovered:
		c.badRun = 0
		if c.rate < c.cfg.Full || c.demoted {
			c.goodRun++
			if c.goodRun >= c.cfg.HoldIntervals {
				if c.rate < c.cfg.Full {
					newRate = c.rate * c.cfg.StepUp
					if newRate > c.cfg.Full {
						newRate = c.cfg.Full
					}
				} else {
					// Rate fully restored first; only then promote back to
					// exact aggregation (the reverse of the demote-first
					// shed order).
					c.setDemoted(false)
				}
				c.goodRun = 0
			}
		}
	default:
		// Dead band: neither run advances — hysteresis.
		c.badRun = 0
		c.goodRun = 0
	}

	applied := true
	if newRate != c.rate {
		err := c.target.setParams(map[string]schema.Value{c.cfg.Param: schema.MakeFloat(newRate)})
		if err != nil {
			applied = false
		} else {
			c.rate = newRate
			if c.cfg.OnApply != nil {
				c.cfg.OnApply(newRate)
			}
		}
	}

	// The active error bound: the compiled demotion (eps, delta) while
	// demoted, zero (exact) otherwise.
	eps, delta := 0.0, 0.0
	if c.demoted {
		eps, delta = c.eps, c.delta
	}
	c.stats.Out.Add(1)
	emit(exec.TupleMsg(schema.Tuple{
		schema.MakeUint(nowUsec),
		schema.MakeStr(c.it.Name()),
		schema.MakeStr(c.target.name),
		schema.MakeFloat(c.rate),
		schema.MakeUint(d),
		schema.MakeBool(livelocked),
		schema.MakeBool(c.rate < c.cfg.Full),
		schema.MakeBool(applied),
		schema.MakeBool(c.demoted),
		schema.MakeFloat(eps),
		schema.MakeFloat(delta),
	}))
	bounds := make(schema.Tuple, len(c.out.Cols))
	bounds[0] = schema.MakeUint(nowUsec)
	emit(exec.HeartbeatMsg(bounds))
}
