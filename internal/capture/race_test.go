//go:build race

package capture

// raceDetectorEnabled gates the multi-minute single-goroutine simulation
// tests: under the race detector's 10-20x slowdown they exceed the test
// timeout while exercising no concurrency.
const raceDetectorEnabled = true
