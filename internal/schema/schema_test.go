package schema

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		Name: "TCP",
		Kind: KindProtocol,
		Cols: []Column{
			{Name: "time", Type: TUint, Ordering: Ordering{Kind: OrderIncreasing}, Interp: "get_time"},
			{Name: "srcIP", Type: TIP, Interp: "get_src_ip"},
			{Name: "destPort", Type: TUint, Interp: "get_dest_port"},
		},
	}
}

func TestSchemaColLookup(t *testing.T) {
	s := testSchema()
	i, c := s.Col("srcip") // case-insensitive
	if i != 1 || c == nil || c.Name != "srcIP" {
		t.Errorf("Col(srcip) = %d, %v", i, c)
	}
	if i, c := s.Col("nosuch"); i != -1 || c != nil {
		t.Errorf("Col(nosuch) = %d, %v", i, c)
	}
	if !s.HasCol("TIME") {
		t.Error("HasCol(TIME) = false")
	}
}

func TestSchemaOrderedCols(t *testing.T) {
	s := testSchema()
	if got := s.OrderedCols(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("OrderedCols() = %v", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	dup := testSchema()
	dup.Cols = append(dup.Cols, Column{Name: "TIME", Type: TUint})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate column accepted")
	}
	noType := testSchema()
	noType.Cols[0].Type = TNull
	if err := noType.Validate(); err == nil {
		t.Error("untyped column accepted")
	}
	badGroup := testSchema()
	badGroup.Cols[0].Ordering = Ordering{Kind: OrderIncreasingInGroup, Group: []string{"ghost"}}
	if err := badGroup.Validate(); err == nil {
		t.Error("ordering group referencing unknown column accepted")
	}
	unordered := testSchema()
	unordered.Cols = append(unordered.Cols, Column{
		Name: "flag", Type: TBool, Ordering: Ordering{Kind: OrderIncreasing}})
	if err := unordered.Validate(); err == nil {
		t.Error("ordering on bool column accepted")
	}
	if err := (&Schema{Name: "empty", Kind: KindStream}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestSchemaCloneIsolation(t *testing.T) {
	s := testSchema()
	s.Cols[0].Ordering = Ordering{Kind: OrderIncreasingInGroup, Group: []string{"srcIP"}}
	c := s.Clone()
	c.Cols[0].Name = "mutated"
	c.Cols[0].Ordering.Group[0] = "mutated"
	if s.Cols[0].Name != "time" || s.Cols[0].Ordering.Group[0] != "srcIP" {
		t.Error("Clone shares storage with original")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := testSchema()
	if err := c.Register(s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(s); err == nil {
		t.Error("double Register accepted")
	}
	got, ok := c.Lookup("tcp")
	if !ok || got != s {
		t.Errorf("Lookup(tcp) = %v, %v", got, ok)
	}
	s2 := testSchema()
	s2.Cols = s2.Cols[:2]
	if err := c.Replace(s2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	got, _ = c.Lookup("TCP")
	if len(got.Cols) != 2 {
		t.Error("Replace did not overwrite")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "TCP" {
		t.Errorf("Names() = %v", names)
	}
	if protos := c.Protocols(); len(protos) != 1 {
		t.Errorf("Protocols() = %v", protos)
	}
	c.Remove("tcp")
	if _, ok := c.Lookup("TCP"); ok {
		t.Error("Remove did not delete")
	}
}

func TestTuplePackUnpackRoundTrip(t *testing.T) {
	tup := Tuple{
		MakeUint(12345),
		MakeInt(-99),
		MakeFloat(3.25),
		MakeStr("payload with \x00 bytes"),
		MakeBool(true),
		MakeIP(0x0a010203),
		Null,
	}
	packed := tup.Pack(nil)
	if len(packed) != tup.PackedSize() {
		t.Errorf("PackedSize() = %d, len(packed) = %d", tup.PackedSize(), len(packed))
	}
	got, n, err := Unpack(packed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if n != len(packed) {
		t.Errorf("Unpack consumed %d of %d bytes", n, len(packed))
	}
	if !got.Equal(tup) {
		t.Errorf("round trip: got %v, want %v", got, tup)
	}
}

func TestTuplePackRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, fl float64, s []byte, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; Equal would fail spuriously
		}
		tup := Tuple{MakeUint(u), MakeInt(i), MakeFloat(fl), MakeString(s), MakeBool(b)}
		got, n, err := Unpack(tup.Pack(nil))
		return err == nil && n == tup.PackedSize() && got.Equal(tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackTruncated(t *testing.T) {
	tup := Tuple{MakeUint(1), MakeStr("hello")}
	packed := tup.Pack(nil)
	for n := 0; n < len(packed); n++ {
		if _, _, err := Unpack(packed[:n]); err == nil {
			t.Errorf("Unpack of %d-byte prefix succeeded", n)
		}
	}
}

func TestTupleEqualAndClone(t *testing.T) {
	a := Tuple{MakeUint(1), MakeStr("x")}
	b := Tuple{MakeUint(1), MakeStr("x")}
	if !a.Equal(b) {
		t.Error("equal tuples compare unequal")
	}
	if a.Equal(a[:1]) {
		t.Error("tuples of different length compare equal")
	}
	c := a.Clone()
	c[1].B[0] = 'y'
	if a[1].Str() != "x" {
		t.Error("Clone shares storage")
	}
}
