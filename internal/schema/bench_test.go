package schema

import "testing"

func BenchmarkTuplePack(b *testing.B) {
	t := Tuple{MakeUint(1), MakeIP(0x0a000001), MakeUint(80), MakeStr("payload")}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.Pack(buf[:0])
	}
}

func BenchmarkValueCompare(b *testing.B) {
	x, y := MakeUint(5), MakeUint(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Compare(y)
	}
}
