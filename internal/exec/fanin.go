package exec

import (
	"fmt"

	"gigascope/internal/schema"
)

// FanIn is the order-free N-way union: it forwards every input tuple
// unchanged, in arrival order. It reunifies shard-parallel copies of a
// stream that declares no usable ordering, where an order-preserving
// Merge has no merge attribute to drive it — the output is the same
// multiset of tuples with no ordering guarantee, matching the (absent)
// declared properties.
//
// Heartbeats combine conservatively: a bound holds for the union only
// once every live input has reported one, and then only the column-wise
// minimum can be forwarded.
type FanIn struct {
	out   *schema.Schema
	sides []fanInSide
	stats Counters
}

type fanInSide struct {
	bounds schema.Tuple
	done   bool
}

// NewFanIn builds a fan-in over n inputs sharing the output schema.
func NewFanIn(n int, out *schema.Schema) (*FanIn, error) {
	if n < 2 {
		return nil, fmt.Errorf("exec: fan-in needs at least two inputs")
	}
	return &FanIn{out: out, sides: make([]fanInSide, n)}, nil
}

// Ports implements Operator.
func (o *FanIn) Ports() int { return len(o.sides) }

// OutSchema implements Operator.
func (o *FanIn) OutSchema() *schema.Schema { return o.out }

// Stats returns a snapshot of the operator counters.
func (o *FanIn) Stats() OpStats { return o.stats.Snapshot() }

// Push implements Operator.
func (o *FanIn) Push(port int, m Message, emit Emit) error {
	if port < 0 || port >= len(o.sides) {
		return fmt.Errorf("exec: fan-in port %d out of range", port)
	}
	if m.IsHeartbeat() {
		o.sides[port].bounds = m.Bounds
		o.emitHeartbeat(emit)
		return nil
	}
	o.stats.In.Add(1)
	o.stats.Out.Add(1)
	emit(m)
	return nil
}

// emitHeartbeat forwards the column-wise minimum bound once every live
// input has reported one.
func (o *FanIn) emitHeartbeat(emit Emit) {
	var min schema.Tuple
	for i := range o.sides {
		s := &o.sides[i]
		if s.done {
			continue
		}
		if s.bounds == nil {
			return
		}
		if min == nil {
			min = s.bounds.Clone()
			continue
		}
		for c := range min {
			if c >= len(s.bounds) {
				min[c] = schema.Null
				continue
			}
			v := s.bounds[c]
			if v.IsNull() {
				min[c] = schema.Null
			} else if !min[c].IsNull() && v.Compare(min[c]) < 0 {
				min[c] = v
			}
		}
	}
	if min != nil {
		emit(HeartbeatMsg(min))
	}
}

// PortDone marks an input as ended; its stale bounds no longer hold the
// combined heartbeat down.
func (o *FanIn) PortDone(port int, emit Emit) {
	if port >= 0 && port < len(o.sides) {
		o.sides[port].done = true
	}
}

// FlushAll implements Operator: fan-in buffers nothing.
func (o *FanIn) FlushAll(emit Emit) error { return nil }
