package netsim

import (
	"bytes"
	"regexp"
	"testing"

	"gigascope/internal/pkt"
)

func port80Class(rate float64, httpFrac float64) Class {
	return Class{
		Name: "web", RateMbps: rate, PktBytes: 1000, DstPort: 80,
		Proto: pkt.ProtoTCP, Payload: PayloadHTTP, HTTPFraction: httpFrac,
	}
}

func TestGeneratorRateAccuracy(t *testing.T) {
	g, err := New(Config{Seed: 1, Classes: []Class{port80Class(60, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 5e6 // 5 virtual seconds
	var bits uint64
	g.Until(horizon, func(p *pkt.Packet) {
		bits += uint64(p.WireLen * 8)
	})
	gotMbps := float64(bits) / 5 / 1e6
	if gotMbps < 54 || gotMbps > 66 {
		t.Errorf("offered rate = %.1f Mbit/s, want ~60", gotMbps)
	}
}

func TestGeneratorTimestampsIncrease(t *testing.T) {
	g, err := New(Config{Seed: 2, Classes: []Class{
		port80Class(60, 0.5),
		{Name: "bg", RateMbps: 100, PktBytes: 600, DstPort: 9999, Proto: pkt.ProtoUDP},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20000; i++ {
		p, _ := g.Next()
		if p.TS < last {
			t.Fatalf("timestamp went backwards at %d: %d < %d", i, p.TS, last)
		}
		last = p.TS
	}
}

func TestGeneratorPacketsAreValidFrames(t *testing.T) {
	g, err := New(Config{Seed: 3, Classes: []Class{
		port80Class(10, 1),
		{Name: "dns", RateMbps: 5, PktBytes: 200, DstPort: 53, Proto: pkt.ProtoUDP},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p, _ := g.Next()
		if err := pkt.Verify(&p); err != nil {
			t.Fatalf("packet %d invalid: %v", i, err)
		}
	}
}

func TestGeneratorHTTPFraction(t *testing.T) {
	// The §4 experiment depends on a controllable HTTP fraction among
	// port-80 packets; verify against the paper's own regex.
	re := regexp.MustCompile(`^[^\n]*HTTP/1.*`)
	g, err := New(Config{Seed: 4, Classes: []Class{port80Class(60, 0.7)}})
	if err != nil {
		t.Fatal(err)
	}
	match, total := 0, 0
	for i := 0; i < 10000; i++ {
		p, _ := g.Next()
		pay, ok := p.Payload()
		if !ok {
			t.Fatal("no payload")
		}
		total++
		if re.Match(pay) {
			match++
		}
	}
	frac := float64(match) / float64(total)
	if frac < 0.67 || frac > 0.73 {
		t.Errorf("HTTP fraction = %.3f, want ~0.7", frac)
	}
}

func TestGeneratorRandomPayloadNeverMatches(t *testing.T) {
	re := regexp.MustCompile(`^[^\n]*HTTP/1.*`)
	g, err := New(Config{Seed: 5, Classes: []Class{{
		Name: "bg", RateMbps: 50, PktBytes: 800, DstPort: 80,
		Proto: pkt.ProtoTCP, Payload: PayloadRandom,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p, _ := g.Next()
		pay, _ := p.Payload()
		if re.Match(pay) {
			t.Fatalf("random payload matched HTTP regex: %q", pay[:32])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() []uint64 {
		g, err := New(Config{Seed: 7, Classes: []Class{port80Class(60, 0.5)}})
		if err != nil {
			t.Fatal(err)
		}
		var ts []uint64
		for i := 0; i < 1000; i++ {
			p, _ := g.Next()
			ts = append(ts, p.TS)
		}
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGeneratorBurstyAverageHolds(t *testing.T) {
	g, err := New(Config{Seed: 8, Classes: []Class{{
		Name: "bursty", RateMbps: 40, PktBytes: 1000, DstPort: 80,
		Proto: pkt.ProtoTCP, Bursty: true,
		MeanOnSeconds: 0.2, MeanOffSeconds: 0.2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20e6
	var bits uint64
	g.Until(horizon, func(p *pkt.Packet) { bits += uint64(p.WireLen * 8) })
	got := float64(bits) / 20 / 1e6
	if got < 30 || got > 50 {
		t.Errorf("bursty average = %.1f Mbit/s, want ~40", got)
	}
}

func TestGeneratorBurstyHasGaps(t *testing.T) {
	g, err := New(Config{Seed: 9, Classes: []Class{{
		Name: "bursty", RateMbps: 40, PktBytes: 1000, DstPort: 80,
		Proto: pkt.ProtoTCP, Bursty: true,
		MeanOnSeconds: 0.1, MeanOffSeconds: 0.3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	maxGap := uint64(0)
	for i := 0; i < 20000; i++ {
		p, _ := g.Next()
		if last != 0 && p.TS-last > maxGap {
			maxGap = p.TS - last
		}
		last = p.TS
	}
	// With mean off period 300ms, gaps far beyond the steady interarrival
	// (~200us at burst rate) must appear.
	if maxGap < 50_000 {
		t.Errorf("max gap = %dus; burstiness not visible", maxGap)
	}
}

func TestGeneratorFlowDiversity(t *testing.T) {
	g, err := New(Config{Seed: 10, Classes: []Class{{
		Name: "f", RateMbps: 10, PktBytes: 500, DstPort: 80,
		Proto: pkt.ProtoTCP, Flows: 64,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make(map[uint32]bool)
	counts := make(map[uint32]int)
	for i := 0; i < 20000; i++ {
		p, _ := g.Next()
		f, _ := pkt.LookupInterp("get_src_ip")
		v, ok := f.Extract(&p)
		if !ok {
			t.Fatal("no srcIP")
		}
		srcs[v.IP()] = true
		counts[v.IP()]++
	}
	// Zipf selection: most flows appear, but popularity is heavily
	// skewed (temporal locality for the LFTA tables, paper §3).
	if len(srcs) < 32 {
		t.Errorf("distinct sources = %d, want most of 64", len(srcs))
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 20000/16 {
		t.Errorf("hottest flow carries %d/20000 packets; expected Zipf skew", maxC)
	}
}

func TestGeneratorConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Classes: []Class{{Name: "tiny", RateMbps: 1, PktBytes: 10}}}); err == nil {
		t.Error("tiny packets accepted")
	}
	if _, err := New(Config{Classes: []Class{{Name: "b", RateMbps: 1, PktBytes: 100, Bursty: true}}}); err == nil {
		t.Error("bursty without durations accepted")
	}
	if _, err := New(Config{Classes: []Class{{Name: "silent"}}}); err == nil {
		t.Error("all-silent config accepted")
	}
}

func TestGeneratorUDPFrames(t *testing.T) {
	g, err := New(Config{Seed: 11, Classes: []Class{{
		Name: "udp", RateMbps: 10, PktBytes: 300, DstPort: 53, Proto: pkt.ProtoUDP,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Next()
	if proto, _ := p.IPProto(); proto != pkt.ProtoUDP {
		t.Errorf("proto = %d", proto)
	}
	if p.WireLen != 300 {
		t.Errorf("wire len = %d", p.WireLen)
	}
	pay, ok := p.Payload()
	if !ok || len(pay) != 300-14-20-8 {
		t.Errorf("payload = %d bytes", len(pay))
	}
	if bytes.Contains(pay, []byte("HTTP/1")) {
		t.Error("random payload contains HTTP/1")
	}
}
