package gigascope

import (
	"fmt"
	"strings"
	"testing"
)

// sketchTrace builds a deterministic packet trace for the sketch
// integration tests: one time bucket of flows with 500 distinct source
// addresses, a skewed destination-port distribution, and payload sizes
// spanning 0..499 bytes.
func sketchTrace() []*Packet {
	ports := []uint16{80, 80, 80, 80, 443, 443, 8080, 53, 22, 25}
	var out []*Packet
	for i := 0; i < 2000; i++ {
		p := BuildTCP(uint64(1_000_000+i*10), TCPSpec{
			SrcIP:   0x0a000000 + uint32(i%500),
			DstIP:   0xc0a80001,
			DstPort: ports[i%len(ports)],
			Payload: make([]byte, i%500),
		})
		out = append(out, &p)
	}
	return out
}

// runSketchQuery compiles and runs one aggregation query over the trace,
// returning the flushed rows rendered as strings (stable across runs).
func runSketchQuery(t *testing.T, cfg Config, query string) []string {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddQuery(query, nil)
	sub, err := sys.Subscribe("sk", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	// Batched injection keeps the unsplit (pass-through LFTA) plan from
	// overflowing the per-tuple ring budget.
	trace := sketchTrace()
	for i := 0; i < len(trace); i += 100 {
		end := i + 100
		if end > len(trace) {
			end = len(trace)
		}
		sys.InjectBatch("eth0", trace[i:end])
	}
	sys.Stop()
	var rows []string
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			parts := make([]string, len(m.Tuple))
			for i, v := range m.Tuple {
				parts[i] = v.String()
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
	}
	return rows
}

func TestSketchAggregatesEndToEnd(t *testing.T) {
	rows := runSketchQuery(t, Config{}, `
		DEFINE { query_name sk; }
		SELECT tb, count_distinct(srcIP), approx_distinct(srcIP),
		       approx_quantile(total_length, 0.5),
		       heavy_hitters(destPort, 3),
		       cm_count(destPort, 80)
		FROM eth0.TCP
		GROUP BY time/60000000 as tb`)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	cols := strings.Split(rows[0], "|")
	if len(cols) != 6 {
		t.Fatalf("cols = %v", cols)
	}
	var exact, approx, med, cm float64
	fmt.Sscanf(cols[1], "%g", &exact)
	fmt.Sscanf(cols[2], "%g", &approx)
	fmt.Sscanf(cols[3], "%g", &med)
	fmt.Sscanf(cols[5], "%g", &cm)
	if exact != 500 {
		t.Errorf("count_distinct = %v, want 500", exact)
	}
	if approx < 500*0.9 || approx > 500*1.1 {
		t.Errorf("approx_distinct = %v, want 500 +/- 10%%", approx)
	}
	// Payload sizes are uniform over 0..499; total_length adds the fixed
	// 40-byte header. The median must land near 250+40.
	if med < 240 || med > 340 {
		t.Errorf("approx_quantile(total_length, 0.5) = %v, want ~290", med)
	}
	// Port 80 carries 40% of the trace; it must lead the heavy hitters.
	if !strings.HasPrefix(strings.Trim(cols[4], `"`), "80:800 443:400") {
		t.Errorf("heavy_hitters = %q, want leading 80:800 443:400", cols[4])
	}
	// Count-min never undercounts; 800 port-80 rows, eps*N = 2% slack.
	if cm < 800 || cm > 800+0.02*2000 {
		t.Errorf("cm_count(destPort, 80) = %v, want [800, 840]", cm)
	}
}

// TestSketchShardAndSplitInvariance checks the satellite property at the
// pipeline level: sketched answers are bit-identical across capture shard
// counts and across split vs unsplit plans, because every sketch merge is
// exact (order- and partition-independent).
func TestSketchShardAndSplitInvariance(t *testing.T) {
	const query = `
		DEFINE { query_name sk; }
		SELECT tb, approx_distinct(srcIP), approx_quantile(total_length, 0.9),
		       heavy_hitters(destPort, 3), cm_count(destPort, 443)
		FROM eth0.TCP
		GROUP BY time/60000000 as tb`
	base := runSketchQuery(t, Config{}, query)
	if len(base) == 0 {
		t.Fatal("no output rows")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		got := runSketchQuery(t, Config{Shards: shards}, query)
		if strings.Join(got, "\n") != strings.Join(base, "\n") {
			t.Errorf("shards=%d: rows diverge\n got %v\nwant %v", shards, got, base)
		}
	}
	got := runSketchQuery(t, Config{DisableSplit: true}, query)
	if strings.Join(got, "\n") != strings.Join(base, "\n") {
		t.Errorf("unsplit plan diverges\n got %v\nwant %v", got, base)
	}
}

// TestSketchEpsOverride checks the system-wide error-bound override: a
// coarser eps shrinks the HLL, changing (and roughening) the estimate,
// while an explicit literal in the query still wins over the override.
func TestSketchEpsOverride(t *testing.T) {
	const query = `
		DEFINE { query_name sk; }
		SELECT tb, approx_distinct(srcIP)
		FROM eth0.TCP GROUP BY time/60000000 as tb`
	fine := runSketchQuery(t, Config{}, query)
	coarse := runSketchQuery(t, Config{SketchEps: 0.2}, query)
	if strings.Join(fine, "\n") == strings.Join(coarse, "\n") {
		t.Errorf("eps override had no effect: %v", fine)
	}
	var est float64
	fmt.Sscanf(strings.Split(coarse[0], "|")[1], "%g", &est)
	if est < 500*0.5 || est > 500*1.5 {
		t.Errorf("coarse approx_distinct = %v, want 500 +/- 50%%", est)
	}
	// An explicit literal beats the override: results must match the
	// default-config run of the same explicit query.
	const explicit = `
		DEFINE { query_name sk; }
		SELECT tb, approx_distinct(srcIP, 0.02)
		FROM eth0.TCP GROUP BY time/60000000 as tb`
	a := runSketchQuery(t, Config{SketchEps: 0.2}, explicit)
	b := runSketchQuery(t, Config{}, explicit)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("explicit eps not honored under override: %v vs %v", a, b)
	}
}

func TestSketchBadParamsRejected(t *testing.T) {
	sys, _ := New()
	bad := []string{
		`DEFINE { query_name b1; } SELECT tb, approx_distinct(srcIP, 1.5) FROM TCP GROUP BY time/60 as tb`,
		`DEFINE { query_name b2; } SELECT tb, approx_distinct(srcIP, 0.0) FROM TCP GROUP BY time/60 as tb`,
		`DEFINE { query_name b3; } SELECT tb, heavy_hitters(destPort, 0) FROM TCP GROUP BY time/60 as tb`,
		`DEFINE { query_name b4; } SELECT tb, approx_quantile(total_length) FROM TCP GROUP BY time/60 as tb`,
		`DEFINE { query_name b5; } SELECT tb, approx_quantile(total_length, destPort) FROM TCP GROUP BY time/60 as tb`,
		`DEFINE { query_name b6; } SELECT tb, cm_count(destPort, 80, 0.02, 2.0) FROM TCP GROUP BY time/60 as tb`,
	}
	for _, q := range bad {
		if _, err := sys.AddQuery(q, nil); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}
