package core

import (
	"fmt"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// Shard reunification: when the RTS runs an LFTA sharded across capture
// cores (RSS steering), each shard publishes its own copy of the LFTA's
// output stream. Downstream HFTAs must observe one stream with the same
// ordering guarantees the unsharded LFTA declared, so the shards feed an
// order-preserving merge (paper §2.2) registered under the LFTA's
// original name. A stream with no increasing attribute has no merge key;
// it reunifies through an order-free fan-in instead, and its (absent)
// ordering properties are preserved trivially.

// MergeColumn picks the column that drives the reunifying merge: the
// first strictly-increasing column if any (its values never collide
// across shards, so the merged order is exactly the pre-shard arrival
// order), else the first nondecreasing column. Returns -1 when the
// schema declares no increasing attribute.
func MergeColumn(out *schema.Schema) int {
	fallback := -1
	for i := range out.Cols {
		ord := out.Cols[i].Ordering
		if ord.Kind == schema.OrderStrictIncreasing {
			return i
		}
		if fallback < 0 && ord.Increasing() {
			fallback = i
		}
	}
	return fallback
}

// ShardSchema imputes the reunified stream's ordering properties from the
// per-shard schema. Interleaving shards preserves only the merge
// attribute's monotonicity — weakened to nondecreasing, since equal
// values on different shards merge in arbitrary order — and destroys
// every other declared ordering (including in-group orderings: two
// tuples of one group can ride different shards).
func ShardSchema(out *schema.Schema) *schema.Schema {
	re := out.Clone()
	mc := MergeColumn(out)
	for i := range re.Cols {
		if i == mc {
			re.Cols[i].Ordering = re.Cols[i].Ordering.Weaken()
		} else {
			re.Cols[i].Ordering = schema.NoOrder
		}
	}
	return re
}

// NewShardReunify builds the operator that reunifies `shards` copies of a
// sharded LFTA's output: an order-preserving merge on the schema's merge
// column, or a fan-in when the stream declares no increasing attribute.
// The operator's OutSchema carries the imputed post-shard orderings.
func NewShardReunify(out *schema.Schema, shards int) (exec.Operator, error) {
	if shards < 2 {
		return nil, fmt.Errorf("core: shard reunify needs at least two shards, got %d", shards)
	}
	re := ShardSchema(out)
	mc := MergeColumn(out)
	if mc < 0 {
		return exec.NewFanIn(shards, re)
	}
	cols := make([]int, shards)
	for i := range cols {
		cols[i] = mc
	}
	return exec.NewMerge(cols, re)
}
