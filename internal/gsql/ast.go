package gsql

import (
	"fmt"
	"strings"

	"gigascope/internal/schema"
)

// Op enumerates expression operators.
type Op uint8

const (
	OpInvalid Op = iota
	OpOr
	OpAnd
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpNeg
	OpBitNot
)

func (o Op) String() string {
	switch o {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpNot:
		return "NOT"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpBitAnd:
		return "&"
	case OpBitOr:
		return "|"
	case OpBitXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpNeg:
		return "-"
	case OpBitNot:
		return "~"
	}
	return "?"
}

// Comparison reports whether the operator is a comparison.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Flip returns the comparison with sides exchanged (a < b == b > a).
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o
}

// Expr is a GSQL expression node.
type Expr interface {
	Pos() Pos
	String() string
	exprNode()
}

// ColRef references a column, optionally qualified by a table name or
// alias.
type ColRef struct {
	Table string // optional qualifier
	Name  string
	At    Pos
}

// Const is a literal value.
type Const struct {
	Val schema.Value
	At  Pos
}

// ParamRef references a query parameter ($name), bound at instantiation
// time and changeable on the fly (paper §3).
type ParamRef struct {
	Name string
	At   Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Op
	L, R Expr
	At   Pos
}

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	Op Op
	X  Expr
	At Pos
}

// FuncCall is a scalar, aggregate, or user-defined function call.
// count(*) is represented with a single Star argument.
type FuncCall struct {
	Name string
	Args []Expr
	At   Pos
}

// Star is the '*' argument of count(*).
type Star struct {
	At Pos
}

func (e *ColRef) Pos() Pos     { return e.At }
func (e *Const) Pos() Pos      { return e.At }
func (e *ParamRef) Pos() Pos   { return e.At }
func (e *BinaryExpr) Pos() Pos { return e.At }
func (e *UnaryExpr) Pos() Pos  { return e.At }
func (e *FuncCall) Pos() Pos   { return e.At }
func (e *Star) Pos() Pos       { return e.At }

func (*ColRef) exprNode()     {}
func (*Const) exprNode()      {}
func (*ParamRef) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*FuncCall) exprNode()   {}
func (*Star) exprNode()       {}

func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *Const) String() string {
	if e.Val.Type == schema.TString {
		return "'" + e.Val.Str() + "'"
	}
	return e.Val.String()
}

func (e *ParamRef) String() string { return "$" + e.Name }

func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *UnaryExpr) String() string {
	if e.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.X)
}

func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

func (e *Star) String() string { return "*" }

// Walk visits every node of the expression tree in prefix order; visiting
// stops in a subtree when f returns false.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.L, f)
		Walk(n.R, f)
	case *UnaryExpr:
		Walk(n.X, f)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, f)
		}
	}
}

// SelectItem is one output expression, optionally aliased.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableRef names a query source: either Interface.Protocol (a Protocol
// stream bound to a packet interface) or the name of another query's output
// stream. An absent interface on a protocol source implies the default
// interface (paper §2.2).
type TableRef struct {
	Interface string // optional: eth0 in eth0.TCP
	Name      string // protocol or stream name
	Alias     string
	At        Pos
}

func (t TableRef) String() string {
	s := t.Name
	if t.Interface != "" {
		s = t.Interface + "." + t.Name
	}
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

// Binding returns the name expressions should use to qualify columns from
// this source.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// QueryKind distinguishes SELECT queries from MERGE queries.
type QueryKind uint8

const (
	KindSelect QueryKind = iota + 1
	KindMerge
)

// Query is a parsed GSQL query.
type Query struct {
	// Defs holds the DEFINE block entries: key -> value words.
	Defs map[string][]string
	Kind QueryKind

	// SELECT query parts.
	Select  []SelectItem
	Sources []TableRef
	Where   Expr
	GroupBy []SelectItem
	Having  Expr

	// MERGE query parts: the ordered columns to merge by, one per source.
	MergeCols []*ColRef

	// paramDefs holds raw "param <name> <type>" declarations from the
	// DEFINE block (the param key may repeat, unlike other keys).
	paramDefs [][]string

	At Pos
}

// Name returns the query_name from the DEFINE block, or "".
func (q *Query) Name() string {
	if v, ok := q.Defs["query_name"]; ok && len(v) > 0 {
		return v[0]
	}
	return ""
}

// Params returns the declared query parameters (DEFINE entries of the form
// "param <name> <type>"), keyed by parameter name.
func (q *Query) Params() map[string]schema.Type {
	out := make(map[string]schema.Type)
	for _, words := range q.paramDefs {
		if len(words) == 2 {
			if ty, ok := schema.ParseType(words[1]); ok {
				out[words[0]] = ty
			}
		}
	}
	return out
}

func (q *Query) addParam(words []string) { q.paramDefs = append(q.paramDefs, words) }

func (q *Query) String() string {
	var b strings.Builder
	if len(q.Defs) > 0 || len(q.paramDefs) > 0 {
		b.WriteString("DEFINE { ")
		for k, v := range q.Defs {
			fmt.Fprintf(&b, "%s %s; ", k, strings.Join(v, " "))
		}
		for _, p := range q.paramDefs {
			fmt.Fprintf(&b, "param %s; ", strings.Join(p, " "))
		}
		b.WriteString("} ")
	}
	switch q.Kind {
	case KindMerge:
		b.WriteString("MERGE ")
		for i, c := range q.MergeCols {
			if i > 0 {
				b.WriteString(" : ")
			}
			b.WriteString(c.String())
		}
	default:
		b.WriteString("SELECT ")
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.Sources {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if q.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", q.Where)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if q.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", q.Having)
	}
	return b.String()
}

// ColDef is one column in a PROTOCOL definition.
type ColDef struct {
	Type   schema.Type
	Name   string
	Interp string
	Ord    schema.Ordering
	At     Pos
}

// ProtocolDef is a parsed PROTOCOL declaration:
//
//	PROTOCOL TCP (base IPV4) {
//	    uint time get_time (increasing);
//	    ...
//	}
type ProtocolDef struct {
	Name string
	Base string
	Cols []ColDef
	At   Pos
}

// Script is a parsed GSQL source file: protocol definitions and queries in
// source order.
type Script struct {
	Protocols []*ProtocolDef
	Queries   []*Query
}
