package difftest

import (
	"fmt"
	"io"

	"gigascope/internal/oracle"
)

// RunMatrix is the standalone entry point used by `gsbench -run difftest`:
// run cases for seeds 1..seeds across the full config matrix, print one
// line per cell, and return the number of failing cells. Harness errors
// (shedding, compile failures) count as failures too — they mean the
// equivalence claim was not checked.
func RunMatrix(w io.Writer, seeds, tracePackets int) int {
	return runMatrix(w, seeds, tracePackets, Matrix())
}

// RunDistributedMatrix is RunMatrix over the distributed cells only, used
// by `gsbench -run difftest-dist`: every case runs through the placement
// coordinator across 2/3/4 in-process hosts and is compared against the
// same naive oracle.
func RunDistributedMatrix(w io.Writer, seeds, tracePackets int) int {
	return runMatrix(w, seeds, tracePackets, DistributedMatrix())
}

func runMatrix(w io.Writer, seeds, tracePackets int, matrix []Config) int {
	failures := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		c, err := NewCase(seed, tracePackets)
		if err != nil {
			fmt.Fprintf(w, "seed %d: generate: %v\n", seed, err)
			failures++
			continue
		}
		cache := map[bool]map[string]*oracle.Result{}
		for _, cfg := range matrix {
			want, ok := cache[cfg.Faults]
			if !ok {
				want, err = OracleResults(c, cfg.Faults)
				if err != nil {
					fmt.Fprintf(w, "seed %d %s: oracle: %v\n", seed, cfg.Name(), err)
					failures++
					continue
				}
				cache[cfg.Faults] = want
			}
			m, err := CheckConfig(c, cfg, want)
			switch {
			case err != nil:
				fmt.Fprintf(w, "seed %-3d %-16s HARNESS ERROR: %v\n", seed, cfg.Name(), err)
				failures++
			case m != nil:
				fmt.Fprintf(w, "seed %-3d %-16s MISMATCH: %s\n", seed, cfg.Name(), m)
				failures++
			default:
				fmt.Fprintf(w, "seed %-3d %-16s ok (%d queries, %d packets)\n",
					seed, cfg.Name(), len(c.Queries), len(c.Trace))
			}
		}
	}
	return failures
}
