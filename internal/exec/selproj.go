package exec

import (
	"sync/atomic"

	"gigascope/internal/schema"
)

// SelProj is the selection + projection operator: applies a predicate and
// computes the output expressions. It is fully non-blocking. Heartbeats
// propagate: each output column whose expression can be evaluated over the
// input bounds (and which the planner marked order-preserving) carries a
// transformed bound.
type SelProj struct {
	pred Expr   // nil means no predicate
	outs []Expr // one per output column
	ctx  *Ctx
	out  *schema.Schema
	// hbCols marks output columns whose expression is monotone in the
	// input ordering, so heartbeat bounds may be propagated through it.
	hbCols []bool
	stats  Counters

	// Columnar form: compiled per-batch kernels, or colOK false when any
	// expression has no kernel (function calls are partial and must run
	// row-at-a-time). selBuf and outCols are single-goroutine scratch.
	colOK   bool
	predK   ColKernel
	outKs   []ColKernel
	selBuf  []uint32
	outCols []*Col
}

// OpStats is a point-in-time snapshot of operator activity; the RTS
// aggregates these for monitoring and the benchmarks use them for
// data-reduction measurements.
type OpStats struct {
	In      uint64 // tuples consumed
	Out     uint64 // tuples produced
	Dropped uint64 // tuples discarded by predicates/partial functions
	Evicted uint64 // LFTA aggregation collision evictions
	// Reordered counts tuples emitted out of declared order to bound
	// buffering under overload (merge MaxBuffer overflow). These tuples
	// are NOT lost — counting them as drops would make SYSMON report
	// tuple loss that never happened.
	Reordered uint64
}

// Counters holds the live operator counters. Increments happen on the
// operator's execution path (node goroutine or capture path) while
// monitoring — including the sysmon sampler — snapshots them from other
// goroutines, so each field is atomic.
type Counters struct {
	In        atomic.Uint64
	Out       atomic.Uint64
	Dropped   atomic.Uint64
	Evicted   atomic.Uint64
	Reordered atomic.Uint64
}

// Snapshot returns a consistent-enough point-in-time copy for monitoring.
func (c *Counters) Snapshot() OpStats {
	return OpStats{
		In:        c.In.Load(),
		Out:       c.Out.Load(),
		Dropped:   c.Dropped.Load(),
		Evicted:   c.Evicted.Load(),
		Reordered: c.Reordered.Load(),
	}
}

// NewSelProj builds a selection/projection operator. hbCols may be nil
// (no bound propagation).
func NewSelProj(pred Expr, outs []Expr, hbCols []bool, ctx *Ctx, out *schema.Schema) *SelProj {
	o := &SelProj{pred: pred, outs: outs, hbCols: hbCols, ctx: ctx, out: out}
	o.colOK = true
	if pred != nil {
		if o.predK = CompileColKernel(pred); o.predK == nil {
			o.colOK = false
		}
	}
	o.outKs = make([]ColKernel, len(outs))
	o.outCols = make([]*Col, len(outs))
	for i, e := range outs {
		if o.outKs[i] = CompileColKernel(e); o.outKs[i] == nil {
			o.colOK = false
		}
	}
	return o
}

// Columnar reports whether the operator has a native columnar path.
func (o *SelProj) Columnar() bool { return o.colOK }

// PushCols implements ColOperator: the predicate kernel narrows the
// selection vector, output kernels run only over surviving rows, and
// rows are materialized solely for emission. Semantics are byte-
// identical to pushing each live row through Push: kernels cannot fail
// (no partial functions when colOK), so pass/drop is decided entirely
// by the predicate.
func (o *SelProj) PushCols(cb *ColBatch, emit Emit) error {
	sel := cb.LiveSel()
	in := uint64(len(sel))
	if in > 0 {
		o.stats.In.Add(in)
	}
	if o.predK != nil {
		o.selBuf = FilterSel(o.predK, cb, sel, o.ctx, o.selBuf[:0])
		sel = o.selBuf
	}
	if dropped := in - uint64(len(sel)); dropped > 0 {
		o.stats.Dropped.Add(dropped)
	}
	if len(sel) == 0 {
		return nil
	}
	o.stats.Out.Add(uint64(len(sel)))
	for k, kn := range o.outKs {
		o.outCols[k] = kn(cb, sel, o.ctx)
	}
	// One backing slab for the whole batch's output rows: the rows are
	// handed downstream (never reused), but carving them from a single
	// allocation replaces len(sel) small allocs with one.
	w := len(o.outs)
	slab := make(schema.Tuple, len(sel)*w)
	for _, si := range sel {
		i := int(si)
		outRow := slab[:w:w]
		slab = slab[w:]
		for k, oc := range o.outCols {
			outRow[k] = oc.Value(i)
		}
		emit(TupleMsg(outRow))
	}
	return nil
}

// Ports implements Operator.
func (o *SelProj) Ports() int { return 1 }

// OutSchema implements Operator.
func (o *SelProj) OutSchema() *schema.Schema { return o.out }

// Stats returns a snapshot of the operator counters.
func (o *SelProj) Stats() OpStats { return o.stats.Snapshot() }

// Push implements Operator.
func (o *SelProj) Push(_ int, m Message, emit Emit) error {
	if m.IsHeartbeat() {
		emit(o.heartbeatMsg(m.Bounds))
		return nil
	}
	o.stats.In.Add(1)
	outRow, ok := o.apply(m.Tuple)
	if !ok {
		o.stats.Dropped.Add(1)
		return nil
	}
	o.stats.Out.Add(1)
	emit(TupleMsg(outRow))
	return nil
}

// PushBatch implements BatchOperator: the selection/projection hot loop
// with no per-tuple closure dispatch and counter updates amortized over
// the batch.
func (o *SelProj) PushBatch(_ int, b Batch, emit EmitBatch) error {
	out := make(Batch, 0, len(b))
	var in, outn, dropped uint64
	for i := range b {
		if b[i].IsHeartbeat() {
			out = append(out, o.heartbeatMsg(b[i].Bounds))
			continue
		}
		in++
		outRow, ok := o.apply(b[i].Tuple)
		if !ok {
			dropped++
			continue
		}
		outn++
		out = append(out, TupleMsg(outRow))
	}
	if in > 0 {
		o.stats.In.Add(in)
	}
	if outn > 0 {
		o.stats.Out.Add(outn)
	}
	if dropped > 0 {
		o.stats.Dropped.Add(dropped)
	}
	if len(out) > 0 {
		emit(out)
	}
	return nil
}

// apply evaluates the predicate and output expressions over one row; ok is
// false when the tuple is discarded (predicate miss or partial function).
func (o *SelProj) apply(row schema.Tuple) (schema.Tuple, bool) {
	if o.pred != nil {
		pass, ok := EvalPred(o.pred, row, o.ctx)
		if !ok || !pass {
			return nil, false
		}
	}
	outRow := make(schema.Tuple, len(o.outs))
	for i, e := range o.outs {
		v, ok := e.Eval(row, o.ctx)
		if !ok {
			return nil, false // partial function: discard tuple
		}
		outRow[i] = v
	}
	return outRow, true
}

// heartbeatMsg maps input bounds through the order-preserving output
// expressions. Columns without a usable bound carry NULL.
func (o *SelProj) heartbeatMsg(bounds schema.Tuple) Message {
	outBounds := make(schema.Tuple, len(o.outs))
	for i, e := range o.outs {
		if o.hbCols == nil || i >= len(o.hbCols) || !o.hbCols[i] {
			continue
		}
		v, ok := e.Eval(bounds, o.ctx)
		if ok && !v.IsNull() {
			outBounds[i] = v
		}
	}
	return HeartbeatMsg(outBounds)
}

// FlushAll implements Operator; selection holds no state.
func (o *SelProj) FlushAll(Emit) error { return nil }
