package pkt

import "gigascope/internal/schema"

// Built-in protocol schemas, the equivalent of Gigascope's packet_schema
// definition file. Users may also define protocols in DDL text via the gsql
// parser; these are the ones every installation ships with.

func col(name string, ty schema.Type, interp string, ord schema.Ordering) schema.Column {
	return schema.Column{Name: name, Type: ty, Interp: interp, Ordering: ord}
}

var (
	inc   = schema.Ordering{Kind: schema.OrderIncreasing}
	sinc  = schema.Ordering{Kind: schema.OrderStrictIncreasing}
	noOrd = schema.NoOrder
	tUint = schema.TUint
	tIP   = schema.TIP
	tStr  = schema.TString
)

func ethCols() []schema.Column {
	return []schema.Column{
		col("time", tUint, "get_time", inc),
		col("timestamp", tUint, "get_timestamp", sinc),
		col("caplen", tUint, "get_caplen", noOrd),
		col("wirelen", tUint, "get_wirelen", noOrd),
		col("eth_src", tUint, "get_eth_src", noOrd),
		col("eth_dst", tUint, "get_eth_dst", noOrd),
		col("ethertype", tUint, "get_ethertype", noOrd),
	}
}

func ipv4Cols() []schema.Column {
	return append(ethCols(),
		col("ipversion", tUint, "get_ip_version", noOrd),
		col("hdr_length", tUint, "get_hdr_length", noOrd),
		col("tos", tUint, "get_tos", noOrd),
		col("total_length", tUint, "get_total_length", noOrd),
		col("ip_id", tUint, "get_ip_id", noOrd),
		col("fragment_offset", tUint, "get_fragment_offset", noOrd),
		col("mf_flag", tUint, "get_mf_flag", noOrd),
		col("ttl", tUint, "get_ttl", noOrd),
		col("protocol", tUint, "get_protocol", noOrd),
		col("srcIP", tIP, "get_src_ip", noOrd),
		col("destIP", tIP, "get_dest_ip", noOrd),
		col("ip_payload", tStr, "get_ip_payload", noOrd),
	)
}

// BuiltinSchemas returns fresh copies of the built-in protocol schemas:
// ETH, IPV4, TCP, UDP.
func BuiltinSchemas() []*schema.Schema {
	eth := &schema.Schema{Name: "ETH", Kind: schema.KindProtocol, Cols: ethCols()}
	ipv4 := &schema.Schema{Name: "IPV4", Kind: schema.KindProtocol, Base: "ETH", Cols: ipv4Cols()}
	tcp := &schema.Schema{
		Name: "TCP", Kind: schema.KindProtocol, Base: "IPV4",
		Cols: append(ipv4Cols(),
			col("srcPort", tUint, "get_src_port", noOrd),
			col("destPort", tUint, "get_dest_port", noOrd),
			col("seq_number", tUint, "get_seq_number", noOrd),
			col("ack_number", tUint, "get_ack_number", noOrd),
			col("flags", tUint, "get_tcp_flags", noOrd),
			col("window", tUint, "get_window", noOrd),
			col("payload_length", tUint, "get_payload_length", noOrd),
			col("payload", tStr, "get_payload", noOrd),
		),
	}
	udp := &schema.Schema{
		Name: "UDP", Kind: schema.KindProtocol, Base: "IPV4",
		Cols: append(ipv4Cols(),
			col("srcPort", tUint, "get_src_port", noOrd),
			col("destPort", tUint, "get_dest_port", noOrd),
			col("udp_length", tUint, "get_udp_length", noOrd),
			col("payload_length", tUint, "get_payload_length", noOrd),
			col("payload", tStr, "get_payload", noOrd),
		),
	}
	return []*schema.Schema{eth, ipv4, tcp, udp}
}

// RegisterBuiltins adds the built-in protocol schemas to a catalog.
func RegisterBuiltins(cat *schema.Catalog) error {
	for _, s := range BuiltinSchemas() {
		if err := cat.Register(s); err != nil {
			return err
		}
	}
	return nil
}
