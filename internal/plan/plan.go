// Package plan is the compiler's logical intermediate representation.
// Analysis lowers each parsed gsql.Query into a tree of logical operator
// nodes; a pipeline of rewrite passes (predicate pushdown, shared-LFTA
// elimination, common-prefilter extraction — paper §5) rewrites the trees;
// a final emit stage in internal/core instantiates executable closures
// from the rewritten IR. The package deliberately knows nothing about the
// executor: nodes carry gsql expression trees plus resolved schemas, and
// all structural decisions (where the LFTA/HFTA boundary sits, which
// conjuncts run below it) are explicit in the tree so passes can move
// them.
package plan

import (
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// Node is one logical operator.
type Node interface {
	// Children returns the input subtrees in order.
	Children() []Node
	node()
}

// Scan reads a source: either a protocol stream bound to a packet
// interface, or another query's output stream.
type Scan struct {
	Name       string // protocol or stream name
	Interface  string // packet interface for protocol sources ("" = default)
	Binding    string // alias used to qualify columns
	IsProtocol bool
	Schema     *schema.Schema
}

// Filter drops rows failing Pred (always non-nil).
type Filter struct {
	Pred  gsql.Expr
	Input Node
}

// Project evaluates the select items over each input row.
type Project struct {
	Items []gsql.SelectItem
	Input Node
}

// Aggregate is a group-by/aggregation operator carrying the original
// query's SELECT/GROUP BY/HAVING clauses.
type Aggregate struct {
	GroupBy []gsql.SelectItem
	Select  []gsql.SelectItem
	Having  gsql.Expr
	Input   Node
}

// Merge is the N-way order-preserving union.
type Merge struct {
	Cols   []*gsql.ColRef // one merge column per input
	Inputs []Node
}

// Join is the two-stream window join. Pred is the full WHERE clause;
// window/equality decomposition happens at emit.
type Join struct {
	Left, Right Node
	Pred        gsql.Expr
	Select      []gsql.SelectItem
}

// BoundaryMode describes how a Boundary's subtree maps onto an LFTA.
type BoundaryMode uint8

const (
	// ModeWhole: the entire query runs as a single LFTA published under
	// the query's own name (no HFTA above it).
	ModeWhole BoundaryMode = iota + 1
	// ModePassThrough: the LFTA filters with the cheap conjuncts and
	// projects every column the HFTA needs (paper §3).
	ModePassThrough
	// ModeSplitAgg: the LFTA computes sub-aggregates into a direct-mapped
	// table; the HFTA above recombines partials (paper §3).
	ModeSplitAgg
	// ModeWrap: a full-schema pass-through LFTA feeding one input of a
	// join or merge.
	ModeWrap
)

func (m BoundaryMode) String() string {
	switch m {
	case ModeWhole:
		return "whole"
	case ModePassThrough:
		return "pass-through"
	case ModeSplitAgg:
		return "split-agg"
	case ModeWrap:
		return "wrap"
	}
	return "?"
}

// Boundary marks the LFTA/HFTA split: everything below it runs on the
// capture path. Passes annotate it with sharing and prefilter decisions;
// emit honors them.
type Boundary struct {
	Name  string // runtime node/stream name (mangled unless ModeWhole)
	Mode  BoundaryMode
	Input Node

	// SharedWith names the canonical boundary when the shared-LFTA pass
	// eliminated this one as a structural duplicate: emit instantiates no
	// node and points consumers at the canonical stream instead.
	SharedWith string
	// SharedBy lists (on the canonical boundary) the other queries whose
	// identical LFTAs were folded into this one.
	SharedBy []string

	// PrefilterGroup/PrefilterMask gate packet delivery: the RTS skips
	// delivering packets that fail the masked terms of the group's shared
	// prefilter (paper §5). Group -1 means ungated. Gating never replaces
	// the LFTA's own predicate — it only avoids delivering packets the
	// predicate would reject anyway, so a partial mask stays sound.
	PrefilterGroup int
	PrefilterMask  uint64
}

func (s *Scan) Children() []Node      { return nil }
func (f *Filter) Children() []Node    { return []Node{f.Input} }
func (p *Project) Children() []Node   { return []Node{p.Input} }
func (a *Aggregate) Children() []Node { return []Node{a.Input} }
func (m *Merge) Children() []Node     { return m.Inputs }
func (j *Join) Children() []Node      { return []Node{j.Left, j.Right} }
func (b *Boundary) Children() []Node  { return []Node{b.Input} }

func (*Scan) node()      {}
func (*Filter) node()    {}
func (*Project) node()   {}
func (*Aggregate) node() {}
func (*Merge) node()     {}
func (*Join) node()      {}
func (*Boundary) node()  {}

// Walk visits n and its subtree in prefix order; visiting stops in a
// subtree when f returns false.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, f)
	}
}

// Scan returns the source scan at the bottom of the boundary's subtree.
func (b *Boundary) Scan() *Scan {
	var scan *Scan
	Walk(b.Input, func(n Node) bool {
		if s, ok := n.(*Scan); ok {
			scan = s
			return false
		}
		return true
	})
	return scan
}

// InnerFilter returns the filter inside the boundary's subtree (the
// LFTA's own predicate), nil when absent.
func (b *Boundary) InnerFilter() *Filter {
	var filt *Filter
	Walk(b.Input, func(n Node) bool {
		if f, ok := n.(*Filter); ok {
			filt = f
			return false
		}
		return true
	})
	return filt
}

// InnerProject returns the projection inside the boundary's subtree, nil
// when absent (split-agg boundaries project implicitly).
func (b *Boundary) InnerProject() *Project {
	var proj *Project
	Walk(b.Input, func(n Node) bool {
		if p, ok := n.(*Project); ok {
			proj = p
			return false
		}
		return true
	})
	return proj
}

// Boundaries collects every Boundary in the tree in visit order.
func Boundaries(n Node) []*Boundary {
	var out []*Boundary
	Walk(n, func(x Node) bool {
		if b, ok := x.(*Boundary); ok {
			out = append(out, b)
		}
		return true
	})
	return out
}

// QueryPlan is the lowered IR of one query, paired with the original
// parse for emit.
type QueryPlan struct {
	Name  string
	Root  Node
	Query *gsql.Query
}

// PrefilterGroup is one per-(interface, protocol) set of shared cheap
// predicate terms hoisted by the prefilter pass (paper §5): each distinct
// term is evaluated once per packet and each member LFTA is gated on the
// conjunction selected by its bit mask.
type PrefilterGroup struct {
	Interface string
	Protocol  string
	Terms     []gsql.Expr // normalized, parameter-free, LFTA-cheap
	// Members maps an LFTA node name (lower-cased) to the mask of terms
	// that must all pass for a packet to be delivered to it.
	Members map[string]uint64
}

// Script is the whole-compilation IR: every query's plan plus the
// script-wide prefilter groups.
type Script struct {
	Plans      []*QueryPlan
	Prefilters []*PrefilterGroup
}
