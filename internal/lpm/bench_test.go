package lpm

import (
	"math/rand"
	"testing"
)

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := New()
	for i := 0; i < 100_000; i++ {
		length := 8 + rng.Intn(25)
		prefix := uint32(rng.Uint64())
		if err := tbl.Insert(prefix, length, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = uint32(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tbl := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(uint32(rng.Uint64()), 8+rng.Intn(25), uint64(i))
	}
}
