package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct counter (Flajolet et al.): 2^p one-byte
// registers, each remembering the maximum leading-zero rank seen in its
// hash bucket. The standard error of the estimate is about 1.04/sqrt(2^p).
//
// Merge takes the register-wise maximum, which is idempotent, commutative,
// and associative — per-partition HLLs merge to exactly the single-pass
// HLL, so estimates are invariant under sharding and the LFTA/HFTA split.
type HLL struct {
	p    uint8
	regs []uint8
}

const hllSeed = 0x1b873593a4093822

// NewHLL sizes the register file so the standard error is at most eps,
// clamping precision to [4, 18] (16 registers to 256 KiB).
func NewHLL(eps float64) (*HLL, error) {
	if err := checkFraction("eps", eps); err != nil {
		return nil, err
	}
	m := (1.04 / eps) * (1.04 / eps)
	p := uint8(math.Ceil(math.Log2(m)))
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return NewHLLPrecision(p)
}

// NewHLLPrecision builds an HLL with 2^p registers.
func NewHLLPrecision(p uint8) (*HLL, error) {
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("sketch: hll precision %d out of range [4,18]", p)
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}, nil
}

// Precision returns p; two HLLs merge only at equal precision.
func (h *HLL) Precision() uint8 { return h.p }

// StdErr is the relative standard error of Estimate for this precision.
func (h *HLL) StdErr() float64 { return 1.04 / math.Sqrt(float64(len(h.regs))) }

// Add observes one key.
func (h *HLL) Add(key []byte) {
	x := Hash64(key, hllSeed)
	idx := x >> (64 - h.p)
	rest := x << h.p
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if max := 64 - h.p + 1; rank > max {
		rank = max
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the approximate number of distinct keys added.
func (h *HLL) Estimate() uint64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	e := hllAlpha(len(h.regs)) * m * m / sum
	// Small-range correction: linear counting while empty registers remain.
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Merge folds o into h register-wise; precisions must match.
func (h *HLL) Merge(o *HLL) error {
	if h.p != o.p {
		return fmt.Errorf("sketch: hll precision mismatch (%d vs %d)", h.p, o.p)
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Footprint is the approximate in-memory size in bytes.
func (h *HLL) Footprint() int { return 32 + len(h.regs) }

// AppendBinary serializes the sketch.
func (h *HLL) AppendBinary(dst []byte) []byte {
	dst = append(dst, h.p)
	return append(dst, h.regs...)
}

// ParseHLL deserializes a sketch written by AppendBinary, returning it and
// the number of bytes consumed.
func ParseHLL(b []byte) (*HLL, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("sketch: short hll header")
	}
	p := b[0]
	if p < 4 || p > 18 {
		return nil, 0, fmt.Errorf("sketch: hll precision %d out of range", p)
	}
	m := 1 << p
	if len(b) < 1+m {
		return nil, 0, fmt.Errorf("sketch: truncated hll body")
	}
	h := &HLL{p: p, regs: make([]uint8, m)}
	copy(h.regs, b[1:1+m])
	return h, 1 + m, nil
}

// AddAll observes a batch of keys; used when converting an exact key set
// into an HLL (aggregate demotion mid-stream).
func (h *HLL) AddAll(keys [][]byte) {
	for _, k := range keys {
		h.Add(k)
	}
}
