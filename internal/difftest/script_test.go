package difftest

import (
	"strings"
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/netflow"
	"gigascope/internal/oracle"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// scriptFuzzSeeds is the committed corpus for the multi-query script
// fuzzer. The seeds are chosen so the set as a whole exercises both
// cross-query rewrites: several compile to scripts with common-prefilter
// groups, several to scripts with shared (fingerprint-identical) LFTAs —
// TestScriptSeedsExerciseSharing pins that property so generator drift
// cannot silently neuter the corpus.
var scriptFuzzSeeds = []int64{101, 102, 103, 104, 105, 106, 107, 108}

// TestMultiQueryScriptMatrix runs seeded multi-query script cases —
// compiled as one unit with shared LFTAs and the common prefilter on —
// under the full equivalence matrix against the per-query naive oracle.
// Any observable artifact of sharing (a gated packet an LFTA needed, a
// mis-fanned shared stream, wrong op attribution after demotion) shows up
// as a row-multiset or ordering divergence.
func TestMultiQueryScriptMatrix(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cells := 0
	for _, seed := range seeds {
		c, err := NewScriptCase(seed, tracePackets)
		if err != nil {
			t.Fatalf("seed %d: generating script case: %v", seed, err)
		}
		cache := map[bool]map[string]*oracle.Result{}
		for _, cfg := range Matrix() {
			cells++
			t.Run(cfg.Name()+"_seed"+itoa(seed), func(t *testing.T) {
				want, ok := cache[cfg.Faults]
				if !ok {
					var err error
					want, err = OracleResults(c, cfg.Faults)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					cache[cfg.Faults] = want
				}
				m, err := CheckConfig(c, cfg, want)
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if m == nil {
					return
				}
				min := Minimize(c, cfg, DefaultMinimizeBudget)
				var dir string
				if run, rerr := RunPipeline(min, cfg); rerr == nil {
					dir, err = WriteArtifact("testdata/repros", min, cfg, m, run.Plans)
				} else {
					dir, err = WriteArtifact("testdata/repros", min, cfg, m, nil)
				}
				if err != nil {
					t.Fatalf("mismatch (artifact write failed: %v): %s", err, m)
				}
				t.Fatalf("%s\nminimized repro written to %s", m, dir)
			})
		}
	}
	t.Logf("checked %d (script case, config) cells", cells)
}

// TestScriptSeedsExerciseSharing compiles every corpus seed's script and
// requires the set to cover both rewrites.
func TestScriptSeedsExerciseSharing(t *testing.T) {
	withPrefilter, withSharedLFTA := 0, 0
	for _, seed := range scriptFuzzSeeds {
		gen := gsql.GenerateScriptCase(seed)
		cat := schema.NewCatalog()
		if err := pkt.RegisterBuiltins(cat); err != nil {
			t.Fatal(err)
		}
		if err := netflow.Register(cat); err != nil {
			t.Fatal(err)
		}
		script, err := gsql.ParseScript(strings.Join(gen.Texts(), ";\n"))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.CompileScriptPlan(cat, script, nil)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if len(res.Prefilters) > 0 {
			withPrefilter++
		}
		for _, cq := range res.Queries {
			shared := false
			for _, n := range cq.Nodes {
				if len(n.SharedBy()) > 0 {
					shared = true
				}
			}
			if shared {
				withSharedLFTA++
				break
			}
		}
	}
	if withPrefilter < 4 {
		t.Errorf("only %d/%d corpus seeds compile with prefilter groups; corpus has drifted", withPrefilter, len(scriptFuzzSeeds))
	}
	if withSharedLFTA < 2 {
		t.Errorf("only %d/%d corpus seeds compile with a shared LFTA; corpus has drifted", withSharedLFTA, len(scriptFuzzSeeds))
	}
}

// FuzzMultiQueryScript feeds arbitrary seeds through the script-case
// generator and checks pipeline-vs-oracle equivalence on two configs: the
// production-shaped cell (batch 64, unsharded) and the sharded cell where
// the prefilter gates per shard. The trace is shorter than the matrix
// test's so the fuzzer gets through cases quickly.
func FuzzMultiQueryScript(f *testing.F) {
	for _, seed := range scriptFuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := NewScriptCase(seed, 400)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cfg := range []Config{
			{MaxBatch: 64, Shards: 1},
			{MaxBatch: 64, Shards: 4},
		} {
			m, err := Check(c, cfg)
			if err != nil {
				t.Fatalf("seed %d under %s: harness: %v", seed, cfg.Name(), err)
			}
			if m != nil {
				t.Fatalf("seed %d: %s", seed, m)
			}
		}
	})
}
