// Package nic simulates the network interface cards Gigascope ran on
// (paper §3, §4): from dumb capture devices, through NICs that accept a
// BPF-style preliminary filter and a snap length, up to programmable NICs
// with their own run-time system that host entire LFTAs on the card.
package nic

import (
	"fmt"
	"strings"

	"gigascope/internal/pkt"
)

// CmpOp is a comparison in a NIC filter program.
type CmpOp uint8

const (
	CmpEq CmpOp = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Cmp compares a raw header field against a constant, BPF-style: the field
// is a fixed-offset big-endian read with optional shift and mask.
type Cmp struct {
	Raw pkt.RawRef
	Op  CmpOp
	Val uint64
}

// Match evaluates the comparison; an unreadable field (short capture)
// fails the match.
func (c Cmp) Match(p *pkt.Packet) bool {
	v, ok := c.Raw.Read(p)
	if !ok {
		return false
	}
	switch c.Op {
	case CmpEq:
		return v == c.Val
	case CmpNe:
		return v != c.Val
	case CmpLt:
		return v < c.Val
	case CmpLe:
		return v <= c.Val
	case CmpGt:
		return v > c.Val
	case CmpGe:
		return v >= c.Val
	}
	return false
}

func (c Cmp) String() string {
	off := fmt.Sprintf("%d", c.Raw.Off)
	if c.Raw.L4 {
		// IHL-indirect read: offset rebased on the packet's IP header
		// length, BPF's "ldx 4*([14]&0xf)" idiom.
		off = "x+" + off
	}
	return fmt.Sprintf("u%d[%s]%s %s %d", c.Raw.Width*8, off, maskStr(c.Raw), c.Op, c.Val)
}

func maskStr(r pkt.RawRef) string {
	if r.Shift == 0 && r.Mask == 0 {
		return ""
	}
	return fmt.Sprintf(">>%d&%#x", r.Shift, r.Mask)
}

// Clause is a disjunction of comparisons.
type Clause []Cmp

// Match reports whether any comparison holds.
func (cl Clause) Match(p *pkt.Packet) bool {
	for _, c := range cl {
		if c.Match(p) {
			return true
		}
	}
	return false
}

// Program is a NIC pre-filter in conjunctive normal form plus a snap
// length: the number of leading bytes of qualifying packets to deliver
// (paper §3: "specify a bpf preliminary filter, and ... the number of
// bytes of qualifying packets to be returned"). SnapLen 0 means deliver
// the whole packet.
type Program struct {
	Clauses []Clause
	SnapLen int
}

// Match reports whether the packet passes the filter.
func (p *Program) Match(pk *pkt.Packet) bool {
	for _, cl := range p.Clauses {
		if !cl.Match(pk) {
			return false
		}
	}
	return true
}

// Empty reports whether the program filters nothing and keeps whole
// packets.
func (p *Program) Empty() bool {
	return p == nil || (len(p.Clauses) == 0 && p.SnapLen == 0)
}

// String renders the program for EXPLAIN output.
func (p *Program) String() string {
	if p == nil {
		return "<none>"
	}
	var parts []string
	for _, cl := range p.Clauses {
		var alts []string
		for _, c := range cl {
			alts = append(alts, c.String())
		}
		s := strings.Join(alts, " or ")
		if len(cl) > 1 {
			s = "(" + s + ")"
		}
		parts = append(parts, s)
	}
	out := strings.Join(parts, " and ")
	if out == "" {
		out = "true"
	}
	if p.SnapLen > 0 {
		out += fmt.Sprintf(" snap %dB", p.SnapLen)
	}
	return out
}
