package funcs

import (
	"os"
	"path/filepath"
	"testing"

	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Table-driven boundary tests for every builtin in builtin.go. funcs_test.go
// covers registration and the happy paths; this file pins the edges: rate
// and mask-length boundaries, NULL propagation, empty strings, and what the
// string builtins see when the capture was truncated mid-payload.

// evalScalar runs a registered builtin without a handle.
func evalScalar(t *testing.T, name string, args ...schema.Value) (schema.Value, bool) {
	t.Helper()
	f, ok := Global.Scalar(name)
	if !ok {
		t.Fatalf("builtin %s not registered", name)
	}
	return f.Eval(args, nil)
}

func TestSampleFractionBoundaries(t *testing.T) {
	vals := []schema.Value{
		schema.MakeUint(0),
		schema.MakeUint(1),
		schema.MakeUint(1 << 63),
		schema.MakeUint(^uint64(0)),
		schema.MakeFloat(3.7),
		schema.MakeStr(""),
		schema.MakeStr("10.1.2.3"),
		schema.MakeIP(0x0a010203),
	}
	for _, v := range vals {
		if !SampleFraction(v, 1.0) {
			t.Errorf("rate 1.0 must keep everything, dropped %v", v)
		}
		if !SampleFraction(v, 1.5) {
			t.Errorf("rate > 1 must keep everything, dropped %v", v)
		}
		if SampleFraction(v, 0) {
			t.Errorf("rate 0 must drop everything, kept %v", v)
		}
		if SampleFraction(v, -0.2) {
			t.Errorf("rate < 0 must drop everything, kept %v", v)
		}
		// Deterministic: the same value samples the same way every call.
		if SampleFraction(v, 0.5) != SampleFraction(v, 0.5) {
			t.Errorf("non-deterministic sampling for %v", v)
		}
	}
}

func TestSampleFractionMonotoneInRate(t *testing.T) {
	// The overload controller relies on this: raising the rate only grows
	// the kept set, so adjusting a sampling parameter never churns which
	// flows are observed.
	rates := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	for i := uint64(0); i < 500; i++ {
		v := schema.MakeUint(i * 2654435761)
		kept := false
		for _, r := range rates {
			now := SampleFraction(v, r)
			if kept && !now {
				t.Fatalf("value %v kept at a lower rate but dropped at %v", v, r)
			}
			kept = now
		}
	}
}

func TestSampleFractionApproximatesRate(t *testing.T) {
	const n = 4000
	kept := 0
	for i := uint64(0); i < n; i++ {
		if SampleFraction(schema.MakeUint(i*0x9e3779b97f4a7c15), 0.25) {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("rate 0.25 kept %.3f of distinct values", frac)
	}
}

func TestSamplehashScalarMirrorsSampleFraction(t *testing.T) {
	for _, v := range []schema.Value{
		schema.MakeUint(42), schema.MakeStr("flow-a"), schema.MakeFloat(8.5),
	} {
		for _, rate := range []float64{0, 0.3, 1} {
			got, ok := evalScalar(t, "samplehash", v, schema.MakeFloat(rate))
			if !ok {
				t.Fatalf("samplehash(%v, %v) produced no value", v, rate)
			}
			if got.Bool() != SampleFraction(v, rate) {
				t.Errorf("samplehash(%v, %v) = %v disagrees with SampleFraction", v, rate, got)
			}
		}
	}
}

func TestToUintTable(t *testing.T) {
	cases := []struct {
		name string
		in   schema.Value
		want uint64
		ok   bool
	}{
		{"uint passthrough", schema.MakeUint(7), 7, true},
		{"uint max", schema.MakeUint(^uint64(0)), ^uint64(0), true},
		{"float truncates", schema.MakeFloat(3.9), 3, true},
		{"float zero", schema.MakeFloat(0), 0, true},
		{"bool true", schema.MakeBool(true), 1, true},
		{"ip payload", schema.MakeIP(0x0a000001), 0x0a000001, true},
		{"null discards", schema.Null, 0, false},
	}
	for _, c := range cases {
		v, ok := evalScalar(t, "to_uint", c.in)
		if ok != c.ok || (ok && v.Uint() != c.want) {
			t.Errorf("%s: to_uint(%v) = %v, %v; want %v, %v", c.name, c.in, v, ok, c.want, c.ok)
		}
		if ok && v.Type != schema.TUint {
			t.Errorf("%s: result type %v", c.name, v.Type)
		}
	}
}

func TestToFloatTable(t *testing.T) {
	cases := []struct {
		name string
		in   schema.Value
		want float64
		ok   bool
	}{
		{"uint", schema.MakeUint(5), 5, true},
		{"negative int", schema.MakeInt(-3), -3, true},
		{"float passthrough", schema.MakeFloat(2.25), 2.25, true},
		{"null discards", schema.Null, 0, false},
	}
	for _, c := range cases {
		v, ok := evalScalar(t, "to_float", c.in)
		if ok != c.ok || (ok && v.Float() != c.want) {
			t.Errorf("%s: to_float(%v) = %v, %v; want %v, %v", c.name, c.in, v, ok, c.want, c.ok)
		}
	}
}

func TestSubnetTable(t *testing.T) {
	ip := schema.MakeIP(0x0a01027f) // 10.1.2.127
	cases := []struct {
		name string
		ml   uint64
		want uint32
		ok   bool
	}{
		{"mask 0 is the zero address", 0, 0, true},
		{"mask 1 keeps the top bit", 1, 0, true}, // 10.x has top bit clear
		{"mask 8", 8, 0x0a000000, true},
		{"mask 24", 24, 0x0a010200, true},
		{"mask 31", 31, 0x0a01027e, true},
		{"mask 32 is identity", 32, 0x0a01027f, true},
		{"mask 33 discards", 33, 0, false},
		{"huge mask discards", 1 << 40, 0, false},
	}
	for _, c := range cases {
		v, ok := evalScalar(t, "subnet", ip, schema.MakeUint(c.ml))
		if ok != c.ok || (ok && v.IP() != c.want) {
			t.Errorf("%s: subnet(10.1.2.127, %d) = %v, %v; want %08x, %v",
				c.name, c.ml, v, ok, c.want, c.ok)
		}
	}
}

func TestIPInNetTable(t *testing.T) {
	mk := schema.MakeIP
	cases := []struct {
		name          string
		ip, net, mask uint32
		want          bool
	}{
		{"inside /24", 0x0a0101fe, 0x0a010100, 0xffffff00, true},
		{"outside /24", 0x0a0102fe, 0x0a010100, 0xffffff00, false},
		{"zero mask matches anything", 0xdeadbeef, 0x0a010100, 0, true},
		{"/32 exact match", 0x0a010101, 0x0a010101, 0xffffffff, true},
		{"/32 off by one", 0x0a010102, 0x0a010101, 0xffffffff, false},
		{"net host bits ignored under mask", 0x0a0101fe, 0x0a010177, 0xffffff00, true},
	}
	for _, c := range cases {
		v, ok := evalScalar(t, "ip_in_net", mk(c.ip), mk(c.net), mk(c.mask))
		if !ok || v.Bool() != c.want {
			t.Errorf("%s: ip_in_net = %v, %v; want %v", c.name, v, ok, c.want)
		}
	}
}

func TestStrBuiltinEdgeTable(t *testing.T) {
	s := schema.MakeStr
	cases := []struct {
		name string
		fn   string
		args []schema.Value
		want bool
	}{
		{"prefix of empty", "str_prefix", []schema.Value{s(""), s("G")}, false},
		{"empty prefix always matches", "str_prefix", []schema.Value{s("GET"), s("")}, true},
		{"prefix equals string", "str_prefix", []schema.Value{s("GET"), s("GET")}, true},
		{"prefix longer than string", "str_prefix", []schema.Value{s("GE"), s("GET")}, false},
		{"substr in empty", "str_find_substr", []schema.Value{s(""), s("x")}, false},
		{"empty substr always found", "str_find_substr", []schema.Value{s("abc"), s("")}, true},
		{"substr at end", "str_find_substr", []schema.Value{s("payload:HTTP"), s("HTTP")}, true},
	}
	for _, c := range cases {
		v, ok := evalScalar(t, c.fn, c.args...)
		if !ok || v.Bool() != c.want {
			t.Errorf("%s: %s = %v, %v; want %v", c.name, c.fn, v, ok, c.want)
		}
	}
	if v, ok := evalScalar(t, "str_len", s("")); !ok || v.Uint() != 0 {
		t.Errorf("str_len(\"\") = %v, %v", v, ok)
	}
}

func TestGetLPMIDBoundaries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peerid.tbl")
	// Default route, nested prefixes, a host route, and a prefix written
	// with host bits set (routing tables in the wild carry them).
	tbl := "0.0.0.0/0 1\n10.0.0.0/8 2\n10.1.0.0/16 3\n10.1.2.3/32 4\n192.168.7.9/16 5\n"
	if err := os.WriteFile(path, []byte(tbl), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := Global.Scalar("getlpmid")
	h, err := f.MakeHandle(schema.MakeStr(path))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ip   uint32
		want uint64
	}{
		{"default route catches strangers", 0x08080808, 1},
		{"/8 beats default", 0x0a636363, 2},
		{"/16 beats /8", 0x0a01ffff, 3},
		{"/32 beats /16", 0x0a010203, 4},
		{"host bits normalized on insert", 0xc0a8ffff, 5}, // 192.168.255.255
	}
	for _, c := range cases {
		v, ok := f.Eval([]schema.Value{schema.MakeIP(c.ip), schema.Null}, h)
		if !ok || v.Uint() != c.want {
			t.Errorf("%s: getlpmid(%08x) = %v, %v; want %d", c.name, c.ip, v, ok, c.want)
		}
	}
}

// TestStringBuiltinsOnTruncatedCapture feeds the payload builtins exactly
// what the extractor produces from a capture truncated mid-payload: a
// shortened payload string (the snap keeps the byte prefix), not a dropped
// tuple. The functions must behave consistently on the shortened view —
// prefixes that fit the snap still match, substrings past the cut do not.
func TestStringBuiltinsOnTruncatedCapture(t *testing.T) {
	spec, ok := pkt.LookupInterp("get_payload")
	if !ok {
		t.Fatal("get_payload interpretation function missing")
	}
	full := pkt.BuildTCP(1_000_000, pkt.TCPSpec{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 30000, DstPort: 80, TTL: 64,
		Payload: []byte("GET /index.html HTTP/1.1\r\nHost: example\r\n"),
	})
	payloadOff := len(full.Data) - 41

	// Truncate 9 bytes into the payload: extraction still succeeds with the
	// prefix "GET /inde".
	cut := full
	cut.Data = full.Data[:payloadOff+9]
	v, ok := spec.Extract(&cut)
	if !ok {
		t.Fatal("payload extraction failed on mid-payload truncation")
	}
	if v.Str() != "GET /inde" {
		t.Fatalf("truncated payload = %q", v.Str())
	}
	if got, ok := evalScalar(t, "str_len", v); !ok || got.Uint() != 9 {
		t.Errorf("str_len(truncated) = %v, %v", got, ok)
	}
	if got, ok := evalScalar(t, "str_prefix", v, schema.MakeStr("GET ")); !ok || !got.Bool() {
		t.Error("str_prefix(GET ) false on truncated payload")
	}
	if got, ok := evalScalar(t, "str_find_substr", v, schema.MakeStr("HTTP/1.1")); !ok || got.Bool() {
		t.Error("str_find_substr found bytes past the truncation point")
	}
	re, _ := Global.Scalar("str_regex_match")
	h, err := re.MakeHandle(schema.MakeStr(`^[^\n]*HTTP/1.*`))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := re.Eval([]schema.Value{v, schema.Null}, h); !ok || got.Bool() {
		t.Error("regex matched HTTP marker cut off by the snap")
	}

	// Truncate to the very start of the payload: extraction yields the
	// empty string (still a value — the packet simply carried no captured
	// payload bytes).
	empty := full
	empty.Data = full.Data[:payloadOff]
	v, ok = spec.Extract(&empty)
	if !ok || len(v.Bytes()) != 0 {
		t.Fatalf("zero-payload capture: %q, %v", v.Str(), ok)
	}

	// Truncate into the TCP header: the data-offset byte is gone, payload
	// extraction fails, and the tuple is dropped before any builtin runs.
	short := full
	short.Data = full.Data[:pkt.EthHeaderLen+pkt.IPv4HeaderLen+4]
	if _, ok := spec.Extract(&short); ok {
		t.Error("payload extracted from capture cut inside the TCP header")
	}
}
