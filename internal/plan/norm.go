package plan

import (
	"sort"
	"strings"

	"gigascope/internal/gsql"
)

// Expression normalization for structural hashing and equality. Two
// expressions are structurally equal when their normalized canonical texts
// match: qualifiers are stripped (the boundary input schema makes them
// redundant), identifier case is folded, and conjunct order is
// canonicalized. Literal case is preserved ('GET' != 'get').

// Normalize rebuilds an expression with table qualifiers removed and
// column/function identifiers lower-cased. The input is not modified.
func Normalize(e gsql.Expr) gsql.Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *gsql.ColRef:
		return &gsql.ColRef{Name: strings.ToLower(n.Name), At: n.At}
	case *gsql.ParamRef:
		return &gsql.ParamRef{Name: strings.ToLower(n.Name), At: n.At}
	case *gsql.BinaryExpr:
		return &gsql.BinaryExpr{Op: n.Op, L: Normalize(n.L), R: Normalize(n.R), At: n.At}
	case *gsql.UnaryExpr:
		return &gsql.UnaryExpr{Op: n.Op, X: Normalize(n.X), At: n.At}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Normalize(a)
		}
		return &gsql.FuncCall{Name: strings.ToLower(n.Name), Args: args, At: n.At}
	}
	return e
}

// Canon returns the canonical text of an expression.
func Canon(e gsql.Expr) string {
	if e == nil {
		return ""
	}
	return Normalize(e).String()
}

// Conjuncts flattens a predicate into AND-ed terms.
func Conjuncts(e gsql.Expr) []gsql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*gsql.BinaryExpr); ok && b.Op == gsql.OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []gsql.Expr{e}
}

// Conjoin rebuilds a predicate from conjuncts; nil for an empty list.
func Conjoin(es []gsql.Expr) gsql.Expr {
	var out gsql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &gsql.BinaryExpr{Op: gsql.OpAnd, L: out, R: e, At: e.Pos()}
		}
	}
	return out
}

// CanonConjuncts returns the sorted canonical texts of a predicate's
// conjuncts, making filter fingerprints insensitive to AND order.
func CanonConjuncts(e gsql.Expr) []string {
	cjs := Conjuncts(e)
	out := make([]string, len(cjs))
	for i, cj := range cjs {
		out[i] = Canon(cj)
	}
	sort.Strings(out)
	return out
}

// HasParam reports whether the expression references a query parameter.
func HasParam(e gsql.Expr) bool {
	found := false
	gsql.Walk(e, func(n gsql.Expr) bool {
		if _, ok := n.(*gsql.ParamRef); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Fingerprint derives the structural identity of a boundary's LFTA
// subplan. Boundaries with equal fingerprints compute identical streams
// and may be instantiated once (paper §5: "identical LFTAs should be
// instantiated once"). Only mangled selection/projection boundaries over
// protocol scans are eligible:
//
//   - ModeWhole is excluded: its name is the query's output name, which
//     applications subscribe to directly.
//   - ModeSplitAgg is excluded: aggregate LFTAs are demotion targets
//     (SetApprox on the owning query would silently make sharers
//     approximate).
//   - Parameterized boundaries are excluded: SetParams rebinds one
//     query's predicate on the fly, which must not affect sharers.
//
// ok is false for ineligible boundaries.
func Fingerprint(b *Boundary) (fp string, ok bool) {
	if b.Mode != ModePassThrough && b.Mode != ModeWrap {
		return "", false
	}
	var (
		scan  *Scan
		filt  *Filter
		proj  *Project
		other bool
	)
	for n := b.Input; n != nil; {
		switch x := n.(type) {
		case *Scan:
			scan = x
			n = nil
		case *Filter:
			if filt != nil {
				other = true
				n = nil
				break
			}
			filt = x
			n = x.Input
		case *Project:
			if proj != nil || filt != nil {
				// Projection above filter is the canonical shape; anything
				// else is not a plain selproj subtree.
				other = true
				n = nil
				break
			}
			proj = x
			n = x.Input
		default:
			other = true
			n = nil
		}
	}
	if other || scan == nil || proj == nil || !scan.IsProtocol {
		return "", false
	}
	if filt != nil && HasParam(filt.Pred) {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(strings.ToLower(scan.Interface))
	sb.WriteByte('|')
	sb.WriteString(strings.ToLower(scan.Name))
	sb.WriteString("|proj:")
	for i, it := range proj.Items {
		if i > 0 {
			sb.WriteByte(',')
		}
		if HasParam(it.Expr) {
			return "", false
		}
		sb.WriteString(Canon(it.Expr))
		if it.Alias != "" {
			sb.WriteString("/as:")
			sb.WriteString(strings.ToLower(it.Alias))
		}
	}
	sb.WriteString("|filt:")
	if filt != nil {
		sb.WriteString(strings.Join(CanonConjuncts(filt.Pred), " AND "))
	}
	return sb.String(), true
}
