// defrag_tree demonstrates the query-node API the paper highlights (§3):
// "Users can write their own query nodes to implement special operators
// by following this API ... we have implemented a special IP
// defragmentation operator in this manner and have built a query tree
// using it."
//
// The tree: a pass-through LFTA projects raw IPV4 tuples (fragments
// included), the user-written defragmentation node reassembles datagrams,
// and a normal GSQL aggregation reads whole datagrams from its output.
//
//	go run ./examples/defrag_tree
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New(gigascope.Config{RingSize: 8192})
	if err != nil {
		log.Fatal(err)
	}

	// LFTA: the IPV4 view of the wire, fragments and all.
	sys.MustAddQuery(`
		DEFINE { query_name rawip; }
		SELECT time, srcIP, destIP, ip_id, protocol, hdr_length,
		       fragment_offset, mf_flag, total_length, ip_payload
		FROM IPV4`, nil)

	// User-written query node: the IP defragmenter (30 s timeout).
	if err := sys.AddDefragNode("datagrams", "rawip", 30); err != nil {
		log.Fatal(err)
	}

	// Plain GSQL over the user node's output stream.
	sys.MustAddQuery(`
		DEFINE { query_name sizes; }
		SELECT tb, count(*) as dgrams, sum(total_length) as bytes
		FROM datagrams GROUP BY time/10 as tb`, nil)

	// Watch both the fragment-level and datagram-level views.
	fragSub, err := sys.Subscribe("rawip", 16384)
	if err != nil {
		log.Fatal(err)
	}
	aggSub, err := sys.Subscribe("sizes", 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	// Jumbo datagrams fragmented at an MTU of 600 bytes.
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 9,
		Classes: []gigascope.TrafficClass{{
			Name: "jumbo", RateMbps: 5, PktBytes: 2014, DstPort: 80,
			Proto: gigascope.ProtoTCP, FragmentMTU: 600,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		gen.Until(30_000_000, func(p *gigascope.Packet) { sys.Inject("", p) })
		sys.Stop()
	}()

	fragments := 0
	go func() {
		for b := range fragSub.C {
			fragments += b.Tuples()
		}
	}()

	fmt.Println("window  datagrams      bytes")
	var dgrams uint64
	for b := range aggSub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			dgrams += m.Tuple[1].Uint()
			fmt.Printf("%6d %10d %10d\n", m.Tuple[0].Uint(), m.Tuple[1].Uint(), m.Tuple[2].Uint())
		}
	}
	fmt.Printf("\n%d wire fragments reassembled into %d datagrams (avg %.1f fragments each)\n",
		fragments, dgrams, float64(fragments)/float64(dgrams))
}
