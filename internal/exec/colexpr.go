package exec

import (
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// ColKernel is the per-batch per-column form of a compiled expression:
// it evaluates the expression over the rows listed in sel and returns a
// column holding the per-row results. The returned column is scratch
// owned by the kernel closure (or a direct alias of an input column for
// bare column references) and is valid only until the kernel's next
// invocation; values are defined only at the positions in sel.
//
// Kernels exist for every expression node except function calls:
// scalar functions are partial (a row-level Eval may report !ok and
// discard the tuple), which has no columnar equivalent, so an operator
// whose expressions contain calls stays on the row path entirely.
// Every kernelable node is total — the only failure-like outcome is
// NULL (division by zero, NULL operands), which the null mask carries —
// so kernel evaluation over extra rows (e.g. both sides of a
// short-circuit) is side-effect-free and semantically invisible.
type ColKernel func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col

// CompileColKernel builds the columnar form of a compiled expression,
// or nil when the expression has no columnar form (it contains a
// function call). The kernel must produce, row for row, exactly the
// Value the expression's Eval produces — the difftest columnar axis and
// the row-vs-columnar property tests in colbatch_test.go enforce this
// byte for byte.
func CompileColKernel(e Expr) ColKernel {
	switch x := e.(type) {
	case constExpr:
		return compileConstK(x.v)
	case colExpr:
		return compileColRefK(x)
	case paramExpr:
		return compileParamK(x)
	case notExpr:
		return compileNotK(x)
	case negExpr:
		return compileNegK(x)
	case bitNotExpr:
		return compileBitNotK(x)
	case boolExpr:
		return compileBoolK(x)
	case cmpExpr:
		return compileCmpK(x)
	case arithExpr:
		return compileArithK(x)
	}
	return nil // callExpr (partial functions) and unknown nodes
}

// colU reads the integer payload of row i, mirroring Value.Uint: the U
// field, which is zero for float/string values.
func colU(c *Col, i int) uint64 {
	switch c.Ty {
	case schema.TFloat, schema.TString, schema.TNull:
		return 0
	default:
		return c.U[i]
	}
}

// colF reads row i as a float, mirroring Value.Float's conversions.
func colF(c *Col, i int) float64 {
	switch c.Ty {
	case schema.TFloat:
		return c.F[i]
	case schema.TInt:
		return float64(int64(c.U[i]))
	case schema.TString, schema.TNull:
		return 0
	default:
		return float64(c.U[i])
	}
}

func compileConstK(v schema.Value) ColKernel {
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, _ *Ctx) *Col {
		fillBroadcast(out, v, cb.N, sel)
		return out
	}
}

func compileParamK(x paramExpr) ColKernel {
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		// Parameters are stable within a batch: Rebind requires no
		// concurrent evaluation, so one lookup covers the window.
		v := schema.Null
		if ctx != nil {
			if pv, ok := ctx.Params[x.name]; ok {
				v = pv
			}
		}
		fillBroadcast(out, v, cb.N, sel)
		return out
	}
}

// fillBroadcast types out after the runtime value (not the declared
// type: the row path returns whatever Value is bound, so a parameter
// bound off-type must flow through with its actual type) and replicates
// it at the selected rows.
func fillBroadcast(out *Col, v schema.Value, n int, sel []uint32) {
	if v.IsNull() {
		out.prep(schema.TNull, n)
		return
	}
	out.prep(v.Type, n)
	switch v.Type {
	case schema.TFloat:
		for _, i := range sel {
			out.Null[i] = false
			out.F[i] = v.F
		}
	case schema.TString:
		for _, i := range sel {
			out.Null[i] = false
			out.B[i] = v.B
		}
	default:
		for _, i := range sel {
			out.Null[i] = false
			out.U[i] = v.U
		}
	}
}

func compileColRefK(x colExpr) ColKernel {
	nullCol := &Col{Ty: schema.TNull}
	return func(cb *ColBatch, sel []uint32, _ *Ctx) *Col {
		if x.idx >= len(cb.Cols) {
			// Mirrors the row path's out-of-range → NULL behavior.
			return nullCol
		}
		return &cb.Cols[x.idx]
	}
}

func compileNotK(x notExpr) ColKernel {
	xk := CompileColKernel(x.x)
	if xk == nil {
		return nil
	}
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		xc := xk(cb, sel, ctx)
		out.prep(schema.TBool, cb.N)
		for _, si := range sel {
			i := int(si)
			if xc.IsNull(i) {
				out.Null[i] = true
				continue
			}
			out.Null[i] = false
			if colU(xc, i) != 0 {
				out.U[i] = 0
			} else {
				out.U[i] = 1
			}
		}
		return out
	}
}

func compileNegK(x negExpr) ColKernel {
	xk := CompileColKernel(x.x)
	if xk == nil {
		return nil
	}
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		xc := xk(cb, sel, ctx)
		out.prep(x.ty, cb.N)
		for _, si := range sel {
			i := int(si)
			if xc.IsNull(i) {
				out.Null[i] = true
				continue
			}
			out.Null[i] = false
			if x.ty == schema.TFloat {
				out.F[i] = -colF(xc, i)
			} else {
				out.U[i] = uint64(-int64(colU(xc, i)))
			}
		}
		return out
	}
}

func compileBitNotK(x bitNotExpr) ColKernel {
	xk := CompileColKernel(x.x)
	if xk == nil {
		return nil
	}
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		xc := xk(cb, sel, ctx)
		out.prep(schema.TUint, cb.N)
		for _, si := range sel {
			i := int(si)
			if xc.IsNull(i) {
				out.Null[i] = true
				continue
			}
			out.Null[i] = false
			out.U[i] = ^colU(xc, i)
		}
		return out
	}
}

func compileBoolK(x boolExpr) ColKernel {
	lk, rk := CompileColKernel(x.l), CompileColKernel(x.r)
	if lk == nil || rk == nil {
		return nil
	}
	isAnd := x.op == gsql.OpAnd
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		lc := lk(cb, sel, ctx)
		rc := rk(cb, sel, ctx)
		out.prep(schema.TBool, cb.N)
		for _, si := range sel {
			i := int(si)
			lnull := lc.IsNull(i)
			if !lnull {
				lb := colU(lc, i) != 0
				// Short-circuit on known outcomes even with a NULL other
				// side, as the row path does.
				if isAnd && !lb {
					out.Null[i], out.U[i] = false, 0
					continue
				}
				if !isAnd && lb {
					out.Null[i], out.U[i] = false, 1
					continue
				}
			}
			if lnull || rc.IsNull(i) {
				out.Null[i] = true
				continue
			}
			out.Null[i] = false
			rb := colU(rc, i) != 0
			var res bool
			if isAnd {
				res = !lnull && colU(lc, i) != 0 && rb
			} else {
				res = (!lnull && colU(lc, i) != 0) || rb
			}
			if res {
				out.U[i] = 1
			} else {
				out.U[i] = 0
			}
		}
		return out
	}
}

func compileCmpK(x cmpExpr) ColKernel {
	lk, rk := CompileColKernel(x.l), CompileColKernel(x.r)
	if lk == nil || rk == nil {
		return nil
	}
	op := x.op
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		lc := lk(cb, sel, ctx)
		rc := rk(cb, sel, ctx)
		out.prep(schema.TBool, cb.N)
		// Fast path: both sides share an unsigned-payload type, so the
		// comparison is a direct compare of the U slices. This covers the
		// dominant capture-path predicates (ports, protocols, lengths,
		// timestamps, same-type IPs).
		if lc.Ty == rc.Ty && (lc.Ty == schema.TUint || lc.Ty == schema.TIP || lc.Ty == schema.TBool) {
			lu, ru := lc.U, rc.U
			for _, si := range sel {
				i := int(si)
				if lc.IsNull(i) || rc.IsNull(i) {
					out.Null[i] = true
					continue
				}
				out.Null[i] = false
				var c int
				switch {
				case lu[i] < ru[i]:
					c = -1
				case lu[i] > ru[i]:
					c = 1
				}
				out.U[i] = cmpResult(op, c)
			}
			return out
		}
		for _, si := range sel {
			i := int(si)
			if lc.IsNull(i) || rc.IsNull(i) {
				out.Null[i] = true
				continue
			}
			out.Null[i] = false
			c := lc.Value(i).Compare(rc.Value(i))
			out.U[i] = cmpResult(op, c)
		}
		return out
	}
}

func cmpResult(op gsql.Op, c int) uint64 {
	var b bool
	switch op {
	case gsql.OpEq:
		b = c == 0
	case gsql.OpNe:
		b = c != 0
	case gsql.OpLt:
		b = c < 0
	case gsql.OpLe:
		b = c <= 0
	case gsql.OpGt:
		b = c > 0
	case gsql.OpGe:
		b = c >= 0
	}
	if b {
		return 1
	}
	return 0
}

func compileArithK(x arithExpr) ColKernel {
	lk, rk := CompileColKernel(x.l), CompileColKernel(x.r)
	if lk == nil || rk == nil {
		return nil
	}
	op, ty := x.op, x.ty
	out := &Col{}
	return func(cb *ColBatch, sel []uint32, ctx *Ctx) *Col {
		lc := lk(cb, sel, ctx)
		rc := rk(cb, sel, ctx)
		out.prep(ty, cb.N)
		switch ty {
		case schema.TFloat:
			for _, si := range sel {
				i := int(si)
				if lc.IsNull(i) || rc.IsNull(i) {
					out.Null[i] = true
					continue
				}
				a, b := colF(lc, i), colF(rc, i)
				var f float64
				switch op {
				case gsql.OpAdd:
					f = a + b
				case gsql.OpSub:
					f = a - b
				case gsql.OpMul:
					f = a * b
				case gsql.OpDiv:
					if b == 0 {
						out.Null[i] = true
						continue
					}
					f = a / b
				}
				out.Null[i] = false
				out.F[i] = f
			}
		case schema.TInt:
			for _, si := range sel {
				i := int(si)
				if lc.IsNull(i) || rc.IsNull(i) {
					out.Null[i] = true
					continue
				}
				a, b := int64(colU(lc, i)), int64(colU(rc, i))
				var v int64
				switch op {
				case gsql.OpAdd:
					v = a + b
				case gsql.OpSub:
					v = a - b
				case gsql.OpMul:
					v = a * b
				case gsql.OpDiv:
					if b == 0 {
						out.Null[i] = true
						continue
					}
					v = a / b
				case gsql.OpMod:
					if b == 0 {
						out.Null[i] = true
						continue
					}
					v = a % b
				case gsql.OpBitAnd:
					v = a & b
				case gsql.OpBitOr:
					v = a | b
				case gsql.OpBitXor:
					v = a ^ b
				case gsql.OpShl:
					v = a << uint(b)
				case gsql.OpShr:
					v = a >> uint(b)
				}
				out.Null[i] = false
				out.U[i] = uint64(v)
			}
		default: // TUint
			for _, si := range sel {
				i := int(si)
				if lc.IsNull(i) || rc.IsNull(i) {
					out.Null[i] = true
					continue
				}
				a, b := colU(lc, i), colU(rc, i)
				var v uint64
				switch op {
				case gsql.OpAdd:
					v = a + b
				case gsql.OpSub:
					v = a - b
				case gsql.OpMul:
					v = a * b
				case gsql.OpDiv:
					if b == 0 {
						out.Null[i] = true
						continue
					}
					v = a / b
				case gsql.OpMod:
					if b == 0 {
						out.Null[i] = true
						continue
					}
					v = a % b
				case gsql.OpBitAnd:
					v = a & b
				case gsql.OpBitOr:
					v = a | b
				case gsql.OpBitXor:
					v = a ^ b
				case gsql.OpShl:
					v = a << b
				case gsql.OpShr:
					v = a >> b
				}
				out.Null[i] = false
				out.U[i] = v
			}
		}
		return out
	}
}

// FilterSel applies a compiled predicate kernel over sel and appends
// the passing row indexes to dst (typically dst[:0] of a reusable
// buffer), preserving ascending order. NULL predicate results filter
// the row, matching EvalPred.
func FilterSel(pk ColKernel, cb *ColBatch, sel []uint32, ctx *Ctx, dst []uint32) []uint32 {
	pc := pk(cb, sel, ctx)
	for _, si := range sel {
		i := int(si)
		if pc.IsNull(i) {
			continue
		}
		if colU(pc, i) != 0 {
			dst = append(dst, si)
		}
	}
	return dst
}
