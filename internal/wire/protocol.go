// Package wire is the inter-RTS stream transport: a length-prefixed
// tuple-batch protocol over TCP or unix sockets that lets one run time
// system subscribe to another's streams (ROADMAP item 1 — many capture
// hosts feeding a smaller HFTA tier). A Server exports any catalog
// stream through the ordinary pubsub rings (same exact-shed accounting
// as local subscribers); a Client presents the remote stream as a local
// source node, and owns the failure story: deadlines, reconnect with
// capped doubling backoff + jitter, gap punctuation on resume, and a
// configurable degrade policy when the peer is declared dead.
//
// Frame layout (all integers big-endian):
//
//	+------+-------------+----------------+
//	| type | length (u32)| payload        |
//	| 1 B  | 4 B         | length bytes   |
//	+------+-------------+----------------+
//
// Frame types:
//
//	'H' hello      client→server  version, last instance, last seq, stream name
//	'S' schema     server→client  instance, seq, clock, fingerprint, schema
//	'B' batch      server→client  clock, then messages (tuples + heartbeats)
//	'K' keepalive  server→client  clock, seq — carries the virtual clock
//	'R' hbreq      client→server  demand an on-demand ordering token (§3)
//	'E' error      server→client  handshake rejection, UTF-8 message
//	'F' fin        either         clean end of stream
//
// The schema handshake pins a structural fingerprint; a client refuses to
// resume onto a peer whose stream no longer has the shape its local plan
// was compiled against. Heartbeat messages inside batch frames carry the
// stream's native ordering bounds, so downstream window-close logic works
// unchanged across the hop; keepalive frames carry the exporting
// manager's virtual clock for the importing side's clock high-water mark.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// Version is the protocol version carried in the hello frame.
const Version = 1

// DefaultMaxFrame bounds a single frame (4 MiB). A length prefix larger
// than the cap is rejected before any allocation, so a corrupt or
// malicious peer cannot make the decoder over-allocate.
const DefaultMaxFrame = 4 << 20

// Frame types.
const (
	frameHello     = 'H'
	frameSchema    = 'S'
	frameBatch     = 'B'
	frameKeepalive = 'K'
	frameHBReq     = 'R'
	frameError     = 'E'
	frameFin       = 'F'
)

// Decode sanity bounds, enforced before allocation.
const (
	maxCols      = 4096
	maxNameLen   = 1024
	maxGroupCols = 256
	// minMsgBytes is the smallest encoded message: kind byte + 2-byte
	// field count. A batch frame claiming more messages than its payload
	// could possibly hold is rejected before the slice is allocated.
	minMsgBytes = 3
)

// DecodeError is the typed error every malformed-input path returns: a
// frame or payload that cannot be decoded is a protocol violation by the
// peer, never a panic or an oversized allocation.
type DecodeError struct {
	What string
}

func (e *DecodeError) Error() string { return "wire: decode: " + e.What }

func decodeErrf(format string, args ...any) error {
	return &DecodeError{What: fmt.Sprintf(format, args...)}
}

// ErrFrameTooBig wraps the frame-cap violation so callers can
// distinguish "peer sent garbage lengths" from short reads.
var ErrFrameTooBig = &DecodeError{What: "frame exceeds size cap"}

// appendFrame appends a whole frame (header + payload) to dst. Frames
// are written with a single Write call so a fault-injected truncation
// tears exactly one frame.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// beginFrame starts an in-place frame in buf: type byte plus a length
// placeholder. The payload is appended directly after it, then endFrame
// patches the length — one buffer, one Write call per frame.
func beginFrame(buf []byte, typ byte) []byte {
	return append(buf[:0], typ, 0, 0, 0, 0)
}

func endFrame(buf []byte) []byte {
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
	return buf
}

// readFrame reads one frame, reusing *buf for the payload. maxFrame
// caps the length prefix; violations return ErrFrameTooBig without
// allocating.
func readFrame(r io.Reader, maxFrame int, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > maxFrame {
		return 0, nil, ErrFrameTooBig
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// helloFrame is the client's opening message.
type helloFrame struct {
	Version  byte
	Instance uint64 // last known server instance (0 = first connect)
	Seq      uint64 // stream tuple count the client has accounted through
	Stream   string
}

func encodeHello(dst []byte, h helloFrame) []byte {
	dst = append(dst, h.Version)
	dst = binary.BigEndian.AppendUint64(dst, h.Instance)
	dst = binary.BigEndian.AppendUint64(dst, h.Seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(h.Stream)))
	return append(dst, h.Stream...)
}

func decodeHello(p []byte) (helloFrame, error) {
	var h helloFrame
	if len(p) < 19 {
		return h, decodeErrf("short hello (%d bytes)", len(p))
	}
	h.Version = p[0]
	h.Instance = binary.BigEndian.Uint64(p[1:])
	h.Seq = binary.BigEndian.Uint64(p[9:])
	n := int(binary.BigEndian.Uint16(p[17:]))
	if n > maxNameLen {
		return h, decodeErrf("hello stream name too long (%d)", n)
	}
	if len(p) < 19+n {
		return h, decodeErrf("truncated hello stream name")
	}
	h.Stream = string(p[19 : 19+n])
	return h, nil
}

// schemaFrame is the server's handshake reply: the exporter incarnation,
// the stream's cumulative published-tuple count (the client's gap-
// accounting base), the exporter's virtual clock, and the stream schema
// with its structural fingerprint.
type schemaFrame struct {
	Instance    uint64
	Seq         uint64
	Clock       uint64
	Fingerprint uint64
	Schema      *schema.Schema
}

func encodeSchemaFrame(dst []byte, f schemaFrame) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.Instance)
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint64(dst, f.Clock)
	dst = binary.BigEndian.AppendUint64(dst, f.Fingerprint)
	return appendSchema(dst, f.Schema)
}

func decodeSchemaFrame(p []byte) (schemaFrame, error) {
	var f schemaFrame
	if len(p) < 32 {
		return f, decodeErrf("short schema frame (%d bytes)", len(p))
	}
	f.Instance = binary.BigEndian.Uint64(p)
	f.Seq = binary.BigEndian.Uint64(p[8:])
	f.Clock = binary.BigEndian.Uint64(p[16:])
	f.Fingerprint = binary.BigEndian.Uint64(p[24:])
	sc, n, err := decodeSchema(p[32:])
	if err != nil {
		return f, err
	}
	if n != len(p)-32 {
		return f, decodeErrf("trailing bytes after schema")
	}
	f.Schema = sc
	return f, nil
}

// appendSchema encodes the structural description of a stream schema:
// kind, then per column the name, type, ordering (kind, band, group) and
// interpretation function. The schema's own name is deliberately
// excluded — importers register the stream under a local name, and the
// fingerprint must describe shape, not labeling.
func appendSchema(dst []byte, sc *schema.Schema) []byte {
	dst = append(dst, byte(sc.Kind))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(sc.Cols)))
	for i := range sc.Cols {
		c := &sc.Cols[i]
		dst = appendString16(dst, c.Name)
		dst = append(dst, byte(c.Type), byte(c.Ordering.Kind))
		dst = binary.BigEndian.AppendUint64(dst, c.Ordering.Band)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.Ordering.Group)))
		for _, g := range c.Ordering.Group {
			dst = appendString16(dst, g)
		}
		dst = appendString16(dst, c.Interp)
	}
	return dst
}

func decodeSchema(p []byte) (*schema.Schema, int, error) {
	if len(p) < 3 {
		return nil, 0, decodeErrf("short schema header")
	}
	sc := &schema.Schema{Kind: schema.Kind(p[0])}
	if sc.Kind != schema.KindProtocol && sc.Kind != schema.KindStream {
		return nil, 0, decodeErrf("unknown schema kind %d", p[0])
	}
	ncols := int(binary.BigEndian.Uint16(p[1:]))
	if ncols == 0 || ncols > maxCols {
		return nil, 0, decodeErrf("column count %d out of range", ncols)
	}
	// Each column costs at least name(2) + type(1) + ordKind(1) + band(8)
	// + ngroup(2) + interp(2) = 16 bytes; refuse to allocate for more
	// columns than the payload could hold.
	if ncols*16 > len(p)-3 {
		return nil, 0, decodeErrf("column count %d exceeds payload", ncols)
	}
	off := 3
	sc.Cols = make([]schema.Column, ncols)
	for i := 0; i < ncols; i++ {
		c := &sc.Cols[i]
		var err error
		if c.Name, off, err = readString16(p, off, "column name"); err != nil {
			return nil, 0, err
		}
		if off+12 > len(p) {
			return nil, 0, decodeErrf("truncated column %d", i)
		}
		c.Type = schema.Type(p[off])
		if c.Type > schema.TIP {
			return nil, 0, decodeErrf("unknown column type %d", p[off])
		}
		c.Ordering.Kind = schema.OrderKind(p[off+1])
		if c.Ordering.Kind > schema.OrderIncreasingInGroup {
			return nil, 0, decodeErrf("unknown ordering kind %d", p[off+1])
		}
		c.Ordering.Band = binary.BigEndian.Uint64(p[off+2:])
		ngroup := int(binary.BigEndian.Uint16(p[off+10:]))
		off += 12
		if ngroup > maxGroupCols {
			return nil, 0, decodeErrf("ordering group of %d columns", ngroup)
		}
		if ngroup > 0 {
			if ngroup*2 > len(p)-off {
				return nil, 0, decodeErrf("ordering group exceeds payload")
			}
			c.Ordering.Group = make([]string, ngroup)
			for g := 0; g < ngroup; g++ {
				if c.Ordering.Group[g], off, err = readString16(p, off, "group column"); err != nil {
					return nil, 0, err
				}
			}
		}
		if c.Interp, off, err = readString16(p, off, "interp name"); err != nil {
			return nil, 0, err
		}
	}
	return sc, off, nil
}

func appendString16(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString16(p []byte, off int, what string) (string, int, error) {
	if off+2 > len(p) {
		return "", 0, decodeErrf("truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(p[off:]))
	off += 2
	if n > maxNameLen {
		return "", 0, decodeErrf("%s too long (%d)", what, n)
	}
	if off+n > len(p) {
		return "", 0, decodeErrf("truncated %s", what)
	}
	return string(p[off : off+n]), off + n, nil
}

// SchemaFingerprint is the FNV-1a 64 hash of the schema's structural
// encoding: column names, types, orderings, and interpretation bindings
// — everything query compilation depends on, excluding the stream's
// registered name. Two streams with equal fingerprints compile to
// identical plans, which is what makes reconnect-resume and cross-host
// reunification safe to accept.
func SchemaFingerprint(sc *schema.Schema) uint64 {
	h := fnv.New64a()
	h.Write(appendSchema(nil, sc))
	return h.Sum64()
}

// Message kinds inside a batch frame.
const (
	msgTuple     = 'T'
	msgHeartbeat = 'H'
)

// encodeBatch appends a batch payload: the exporter's virtual clock,
// a message count, then each message as a kind byte plus the standard
// packed tuple format (paper §2.2) — bounds tuples for heartbeats.
func encodeBatch(dst []byte, clock uint64, b exec.Batch) []byte {
	dst = binary.BigEndian.AppendUint64(dst, clock)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	for i := range b {
		if b[i].IsHeartbeat() {
			dst = append(dst, msgHeartbeat)
			dst = b[i].Bounds.Pack(dst)
		} else {
			dst = append(dst, msgTuple)
			dst = b[i].Tuple.Pack(dst)
		}
	}
	return dst
}

// decodeBatch parses a batch payload, returning the exporter clock, the
// messages, and the tuple (non-heartbeat) count. The message count is
// validated against the payload size before the batch is allocated.
func decodeBatch(p []byte) (clock uint64, b exec.Batch, nTuples int, err error) {
	if len(p) < 12 {
		return 0, nil, 0, decodeErrf("short batch header (%d bytes)", len(p))
	}
	clock = binary.BigEndian.Uint64(p)
	count := int(binary.BigEndian.Uint32(p[8:]))
	rest := p[12:]
	if count*minMsgBytes > len(rest) {
		return 0, nil, 0, decodeErrf("message count %d exceeds payload", count)
	}
	b = make(exec.Batch, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) == 0 {
			return 0, nil, 0, decodeErrf("truncated batch at message %d", i)
		}
		kind := rest[0]
		t, n, uerr := schema.Unpack(rest[1:])
		if uerr != nil {
			return 0, nil, 0, &DecodeError{What: uerr.Error()}
		}
		rest = rest[1+n:]
		switch kind {
		case msgTuple:
			b = append(b, exec.TupleMsg(t))
			nTuples++
		case msgHeartbeat:
			b = append(b, exec.HeartbeatMsg(t))
		default:
			return 0, nil, 0, decodeErrf("unknown message kind %q", kind)
		}
	}
	if len(rest) != 0 {
		return 0, nil, 0, decodeErrf("trailing bytes after batch")
	}
	return clock, b, nTuples, nil
}

// keepalive payload: clock, then the stream's cumulative tuple count.
func encodeKeepalive(dst []byte, clock, seq uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, clock)
	return binary.BigEndian.AppendUint64(dst, seq)
}

func decodeKeepalive(p []byte) (clock, seq uint64, err error) {
	if len(p) < 16 {
		return 0, 0, decodeErrf("short keepalive (%d bytes)", len(p))
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint64(p[8:]), nil
}
