package rts

import (
	"testing"
	"time"
)

// TestManagerJoinQuery runs a windowed join through the full runtime:
// two interfaces, per-link LFTAs, join HFTA.
func TestManagerJoinQuery(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	for _, q := range []string{
		`DEFINE { query_name jl; } SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`,
		`DEFINE { query_name jr; } SELECT time, srcIP FROM eth1.tcp WHERE destPort = 80`,
		`DEFINE { query_name joined; }
		 SELECT L.time, L.srcIP FROM jl L, jr R
		 WHERE L.srcIP = R.srcIP and L.time = R.time`,
	} {
		if err := m.AddQuery(mustCompile(t, cat, q), nil); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := m.Subscribe("joined", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Same srcIP appears on both links at seconds 1..10; a different
	// srcIP only on eth0.
	for sec := uint64(1); sec <= 10; sec++ {
		p0 := tcpPkt(sec, 7, 80, "x")
		p1 := tcpPkt(sec, 7, 80, "y")
		px := tcpPkt(sec, 9, 80, "z")
		m.Inject("eth0", &p0)
		m.Inject("eth0", &px)
		m.Inject("eth1", &p1)
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 10 {
		t.Fatalf("joined rows = %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if r[1].IP() != 7 {
			t.Errorf("joined wrong source: %v", r)
		}
	}
}

// TestManagerThreeWayMerge merges three interfaces.
func TestManagerThreeWayMerge(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	for _, q := range []string{
		`DEFINE { query_name t0; } SELECT time, srcIP FROM eth0.tcp`,
		`DEFINE { query_name t1; } SELECT time, srcIP FROM eth1.tcp`,
		`DEFINE { query_name t2; } SELECT time, srcIP FROM eth2.tcp`,
		`DEFINE { query_name t012; } MERGE t0.time : t1.time : t2.time FROM t0, t1, t2`,
	} {
		if err := m.AddQuery(mustCompile(t, cat, q), nil); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := m.Subscribe("t012", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for sec := uint64(1); sec <= 20; sec++ {
		for i, iface := range []string{"eth0", "eth1", "eth2"} {
			p := tcpPkt(sec, uint32(i), 80, "x")
			m.Inject(iface, &p)
		}
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 60 {
		t.Fatalf("merged %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].Uint() < rows[i-1][0].Uint() {
			t.Fatalf("merge order violated at %d", i)
		}
	}
}

// TestSubscriptionHeartbeatRequest exercises the on-demand heartbeat path
// from an application subscription back to the packet source.
func TestSubscriptionHeartbeatRequest(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{HeartbeatUsec: 1 << 62}) // periodic HBs off
	cq := mustCompile(t, cat, `
		DEFINE { query_name hbq; }
		SELECT tb, count(*) FROM tcp GROUP BY time/60 as tb`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("hbq", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// One packet in minute 0; the group stays open (no flush trigger).
	p := tcpPkt(10, 1, 80, "x")
	m.Inject("", &p)
	// Advance the interface clock far into the future, then demand a
	// heartbeat through the subscription: the LFTA emits a clock bound,
	// the HFTA closes minute 0 and emits its row.
	m.AdvanceClock(10 * 60 * 1e6)
	sub.RequestHeartbeat()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case b, ok := <-sub.C:
			if !ok {
				t.Fatal("stream closed before row arrived")
			}
			for _, msg := range b {
				if !msg.IsHeartbeat() {
					if msg.Tuple[0].Uint() != 0 || msg.Tuple[1].Uint() != 1 {
						t.Errorf("row = %v", msg.Tuple)
					}
					m.Stop()
					return
				}
			}
		case <-deadline:
			t.Fatal("heartbeat request did not flush the open group")
		}
	}
}

// TestInterfaceCountersAndCancel covers remaining surface: LFTACount,
// subscription Cancel mid-stream, stats of a cancelled stream.
func TestInterfaceCountersAndCancel(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `DEFINE { query_name cc; } SELECT time FROM eth0.tcp`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Interface("eth0").LFTACount(); got != 1 {
		t.Errorf("LFTACount = %d", got)
	}
	sub, err := m.Subscribe("cc", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	p := tcpPkt(1, 1, 80, "x")
	m.Inject("eth0", &p)
	sub.Cancel()
	// Further injections must not block or panic with the cancelled sub.
	for i := uint64(2); i < 100; i++ {
		p := tcpPkt(i, 1, 80, "x")
		m.Inject("eth0", &p)
	}
	m.Stop()
	stats := m.Stats()
	if len(stats) != 1 || stats[0].Packets != 99 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestStopIdempotentAndAddAfterStop verifies shutdown edge cases.
func TestStopIdempotentAndAddAfterStop(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `DEFINE { query_name s1; } SELECT time FROM tcp`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop() // idempotent
	cq2 := mustCompile(t, cat, `DEFINE { query_name s2; } SELECT time FROM s1`)
	if err := m.AddQuery(cq2, nil); err == nil {
		t.Error("AddQuery after Stop accepted")
	}
}

// TestValidateOrderingMode runs a full chain with runtime ordering
// verification on: zero violations expected, proving the imputed
// properties hold live (and exercising the validation path itself).
func TestValidateOrderingMode(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{ValidateOrdering: true})
	for _, q := range []string{
		`DEFINE { query_name v0; } SELECT time, srcIP, destPort FROM eth0.tcp`,
		`DEFINE { query_name v1; } SELECT time, srcIP, destPort FROM eth1.tcp`,
		`DEFINE { query_name vm; } MERGE v0.time : v1.time FROM v0, v1`,
		`DEFINE { query_name va; } SELECT tb, count(*) FROM vm GROUP BY time/10 as tb`,
	} {
		if err := m.AddQuery(mustCompile(t, cat, q), nil); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := m.Subscribe("va", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for sec := uint64(1); sec <= 100; sec++ {
		p0 := tcpPkt(sec, 1, 80, "x")
		p1 := tcpPkt(sec, 2, 80, "y")
		m.Inject("eth0", &p0)
		m.Inject("eth1", &p1)
	}
	m.Stop()
	drain(t, sub)
	for _, s := range m.Stats() {
		if s.OrderViolations != 0 {
			t.Errorf("node %s: %d ordering violations", s.Name, s.OrderViolations)
		}
	}
}
