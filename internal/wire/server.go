package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// Exporter is what a Server needs from the hosting run time system:
// stream subscription through the registry (so remote subscribers get
// the same bounded rings and exact-shed accounting as local ones), the
// catalog schema for the handshake, and the virtual-clock high-water
// mark for keepalive frames. *rts.Manager and the root System both
// satisfy it.
type Exporter interface {
	Subscribe(name string, bufSize int) (*rts.Subscription, error)
	LookupSchema(name string) (*schema.Schema, bool)
	Clock() uint64
}

// ServerConfig tunes a wire server. The zero value is usable.
type ServerConfig struct {
	// Heartbeat is the wall-clock keepalive interval: a connection with
	// no batch traffic carries the virtual clock in keepalive frames at
	// this period, and clients size their read deadlines against it.
	// Default 100ms.
	Heartbeat time.Duration
	// WriteTimeout bounds each frame write; a subscriber that stops
	// reading is disconnected rather than allowed to wedge the sender.
	// Default 5s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the hello→schema exchange. Default 5s.
	HandshakeTimeout time.Duration
	// RingBatches is the per-subscriber send-queue depth in batches —
	// the same bounded pubsub ring local subscribers get, with the same
	// shed-vs-backpressure policy and exact drop accounting. Default 256.
	RingBatches int
	// MaxFrame caps inbound frame sizes (DefaultMaxFrame when 0).
	MaxFrame int
	// Instance identifies this exporter incarnation; clients use it to
	// tell "same stream state, resumable with exact gap accounting" from
	// "server restarted, loss unquantifiable". 0 derives one from the
	// wall clock at Serve time.
	Instance uint64
	// WrapConn, when non-nil, wraps every accepted connection — the
	// fault-injection hook (faultinject.WireFaults.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// SkewClock, when non-nil, maps the virtual clock announced in
	// keepalive frames — the clock-skew fault-injection hook.
	SkewClock func(uint64) uint64
}

func (c ServerConfig) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return 100 * time.Millisecond
	}
	return c.Heartbeat
}

func (c ServerConfig) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 5 * time.Second
	}
	return c.WriteTimeout
}

func (c ServerConfig) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout <= 0 {
		return 5 * time.Second
	}
	return c.HandshakeTimeout
}

func (c ServerConfig) ringBatches() int {
	if c.RingBatches <= 0 {
		return 256
	}
	return c.RingBatches
}

func (c ServerConfig) maxFrame() int {
	if c.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return c.MaxFrame
}

// Server exports an RTS's streams to remote subscribers. One goroutine
// accepts; each connection gets a reader (heartbeat requests, close
// detection) and a writer (batches + keepalives) running against a
// dedicated pubsub subscription.
type Server struct {
	exp Exporter
	cfg ServerConfig
	ln  net.Listener

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	closing chan struct{}
	wg      sync.WaitGroup

	accepted atomic.Uint64
	rejected atomic.Uint64
	active   atomic.Int64
}

// ListenAndServe binds network/addr ("tcp", "unix") and serves on it.
func ListenAndServe(exp Exporter, network, addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return Serve(exp, ln, cfg), nil
}

// Serve exports exp's streams on an existing listener, which the server
// takes ownership of (Close closes it).
func Serve(exp Exporter, ln net.Listener, cfg ServerConfig) *Server {
	if cfg.Instance == 0 {
		cfg.Instance = uint64(time.Now().UnixNano()) | 1
	}
	s := &Server{
		exp:     exp,
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Instance returns the exporter-incarnation identifier sent in schema
// handshakes.
func (s *Server) Instance() uint64 { return s.cfg.Instance }

// Conns reports the number of live subscriber connections — examples
// and tests use it to wait for a subscriber before generating traffic.
func (s *Server) Conns() int { return int(s.active.Load()) }

// Drain waits until every live subscriber connection has ended — after
// the exported streams close (RTS Stop), the per-connection writers
// send their fin frames and exit — or until d elapses; it reports
// whether the server drained fully. Clean two-process shutdown is
// Stop → Drain → Close: skipping Drain races Close's connection
// teardown against the in-flight fin, and the peer sees a failure (and
// reconnects) instead of a clean end of stream.
func (s *Server) Drain(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for s.active.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Close stops accepting, disconnects every subscriber (including any
// mid-handshake), and waits for all connection goroutines to exit.
// Prompt: nothing on the serve path blocks Close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.closing)
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Listener failed for good; the server is done accepting.
			return
		}
		if s.cfg.WrapConn != nil {
			c = s.cfg.WrapConn(c)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// handle runs one subscriber connection: handshake, then a writer loop
// forwarding the subscription's batches 1:1 as batch frames (message
// order preserved — the importing side reproduces the exact local
// delivery sequence) interleaved with keepalives, while a reader
// goroutine serves heartbeat requests and notices the peer going away.
func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	c.SetDeadline(time.Now().Add(s.cfg.handshakeTimeout()))
	var rbuf []byte
	typ, payload, err := readFrame(c, s.cfg.maxFrame(), &rbuf)
	if err != nil || typ != frameHello {
		s.rejected.Add(1)
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		s.rejected.Add(1)
		return
	}
	wbuf := make([]byte, 0, 512)
	if hello.Version != Version {
		s.reject(c, wbuf, fmt.Sprintf("version %d unsupported (want %d)", hello.Version, Version))
		return
	}
	sc, ok := s.exp.LookupSchema(hello.Stream)
	if !ok {
		s.reject(c, wbuf, "no stream named "+hello.Stream)
		return
	}
	sub, err := s.exp.Subscribe(hello.Stream, s.cfg.ringBatches())
	if err != nil {
		s.reject(c, wbuf, err.Error())
		return
	}
	defer sub.Cancel()

	hs := schemaFrame{
		Instance:    s.cfg.Instance,
		Seq:         sub.StreamTuples(),
		Clock:       s.exp.Clock(),
		Fingerprint: SchemaFingerprint(sc),
		Schema:      sc,
	}
	wbuf = endFrame(encodeSchemaFrame(beginFrame(wbuf, frameSchema), hs))
	if err := s.write(c, wbuf); err != nil {
		return
	}
	c.SetDeadline(time.Time{})
	s.active.Add(1)
	defer s.active.Add(-1)

	// Reader: heartbeat requests and peer-close detection. It owns no
	// state; closing the conn (from Close, from a write error, or from
	// the peer) unblocks it.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var buf []byte
		for {
			typ, _, err := readFrame(c, s.cfg.maxFrame(), &buf)
			if err != nil {
				c.Close() // unblock any in-flight write promptly
				return
			}
			switch typ {
			case frameHBReq:
				sub.RequestHeartbeat()
			case frameFin:
				c.Close()
				return
			}
		}
	}()

	ticker := time.NewTicker(s.cfg.heartbeat())
	defer ticker.Stop()
	for {
		select {
		case <-s.closing:
			return
		case b, ok := <-sub.C:
			if !ok {
				// Stream ended cleanly (RTS stop or query close): tell the
				// peer so it can flush downstream state instead of treating
				// the close as a failure.
				s.write(c, endFrame(beginFrame(wbuf, frameFin)))
				return
			}
			wbuf = endFrame(encodeBatch(beginFrame(wbuf, frameBatch), s.exp.Clock(), b))
			if err := s.write(c, wbuf); err != nil {
				return
			}
		case <-ticker.C:
			clock := s.exp.Clock()
			if s.cfg.SkewClock != nil {
				clock = s.cfg.SkewClock(clock)
			}
			wbuf = endFrame(encodeKeepalive(beginFrame(wbuf, frameKeepalive), clock, sub.StreamTuples()))
			if err := s.write(c, wbuf); err != nil {
				return
			}
		}
	}
}

// write sends one framed buffer under the write deadline, as a single
// Write call (so a fault-injected truncation tears exactly one frame).
func (s *Server) write(c net.Conn, frame []byte) error {
	c.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout()))
	_, err := c.Write(frame)
	return err
}

func (s *Server) reject(c net.Conn, wbuf []byte, msg string) {
	s.rejected.Add(1)
	s.write(c, endFrame(append(beginFrame(wbuf, frameError), msg...)))
}
