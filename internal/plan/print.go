package plan

import (
	"fmt"
	"sort"
	"strings"

	"gigascope/internal/gsql"
)

// Format renders one query's logical plan as an indented tree, one
// operator per line. The rendering is deterministic and diff-friendly:
// golden-plan tests pin it.
func (pl *QueryPlan) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s\n", pl.Name)
	formatNode(&b, pl.Root, 1)
	return b.String()
}

func formatNode(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *Scan:
		kind := "stream"
		src := x.Name
		if x.IsProtocol {
			kind = "protocol"
			iface := x.Interface
			if iface == "" {
				iface = "<default>"
			}
			src = iface + "." + x.Name
		}
		fmt.Fprintf(b, "%sScan %s (%s)", indent, src, kind)
		if x.Binding != "" && !strings.EqualFold(x.Binding, x.Name) {
			fmt.Fprintf(b, " as %s", x.Binding)
		}
		b.WriteByte('\n')
	case *Filter:
		fmt.Fprintf(b, "%sFilter %s\n", indent, x.Pred)
	case *Project:
		fmt.Fprintf(b, "%sProject [%s]\n", indent, itemsText(x.Items))
	case *Aggregate:
		fmt.Fprintf(b, "%sAggregate group=[%s] select=[%s]", indent,
			itemsText(x.GroupBy), itemsText(x.Select))
		if x.Having != nil {
			fmt.Fprintf(b, " having=%s", x.Having)
		}
		b.WriteByte('\n')
	case *Merge:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = c.String()
		}
		fmt.Fprintf(b, "%sMerge [%s]\n", indent, strings.Join(cols, " : "))
	case *Join:
		fmt.Fprintf(b, "%sJoin on %s select=[%s]\n", indent, x.Pred, itemsText(x.Select))
	case *Boundary:
		fmt.Fprintf(b, "%sBoundary %s [%s]", indent, x.Name, x.Mode)
		if x.SharedWith != "" {
			fmt.Fprintf(b, " shared-with=%s", x.SharedWith)
		}
		if len(x.SharedBy) > 0 {
			fmt.Fprintf(b, " shared-by=[%s]", strings.Join(x.SharedBy, ","))
		}
		if x.PrefilterMask != 0 {
			fmt.Fprintf(b, " prefilter=g%d/%#x", x.PrefilterGroup, x.PrefilterMask)
		}
		b.WriteByte('\n')
	default:
		fmt.Fprintf(b, "%s?%T\n", indent, n)
	}
	for _, c := range n.Children() {
		formatNode(b, c, depth+1)
	}
}

func itemsText(items []gsql.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

// FormatScript renders the whole-script view: every query's plan followed
// by the script-wide sharing and prefilter summary.
func (s *Script) Format() string {
	var b strings.Builder
	for i, pl := range s.Plans {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(pl.Format())
	}

	type shared struct {
		owner   string
		sharers []string
	}
	var sharedNames []string
	byName := make(map[string]*shared)
	for _, pl := range s.Plans {
		for _, bd := range Boundaries(pl.Root) {
			if len(bd.SharedBy) > 0 {
				if _, ok := byName[bd.Name]; !ok {
					sharedNames = append(sharedNames, bd.Name)
					byName[bd.Name] = &shared{owner: pl.Name, sharers: bd.SharedBy}
				}
			}
		}
	}
	if len(sharedNames) > 0 {
		b.WriteString("\nshared LFTAs\n")
		sort.Strings(sharedNames)
		for _, name := range sharedNames {
			sh := byName[name]
			fmt.Fprintf(&b, "  %s: owner=%s also-feeds=[%s]\n",
				name, sh.owner, strings.Join(sh.sharers, ","))
		}
	}
	if len(s.Prefilters) > 0 {
		b.WriteString("\nprefilter groups\n")
		for i, g := range s.Prefilters {
			iface := g.Interface
			if iface == "" {
				iface = "<default>"
			}
			fmt.Fprintf(&b, "  g%d %s.%s: %d term(s), %d member(s)\n",
				i, iface, g.Protocol, len(g.Terms), len(g.Members))
			for j, t := range g.Terms {
				fmt.Fprintf(&b, "    [%d] %s\n", j, t)
			}
			members := make([]string, 0, len(g.Members))
			for m := range g.Members {
				members = append(members, m)
			}
			sort.Strings(members)
			for _, m := range members {
				fmt.Fprintf(&b, "    %s mask=%#x\n", m, g.Members[m])
			}
		}
	}
	return b.String()
}
