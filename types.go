package gigascope

import (
	"gigascope/internal/bgp"
	"gigascope/internal/exec"
	"gigascope/internal/faultinject"
	"gigascope/internal/netflow"
	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// Aliases exposing the core data types through the public API.
type (
	// Value is one GSQL scalar.
	Value = schema.Value
	// Tuple is one stream record.
	Tuple = schema.Tuple
	// Message is a stream element: a tuple or a heartbeat punctuation.
	Message = exec.Message
	// Batch is an ordered run of messages delivered as one unit; it is
	// what subscription channels carry. Treat received batches as
	// read-only — the runtime shares one batch among all subscribers.
	Batch = exec.Batch
	// Packet is one captured frame.
	Packet = pkt.Packet
	// Subscription is a query handle returned by Subscribe.
	Subscription = rts.Subscription
	// StreamOperator is the query-node API user-written operators
	// implement (paper §3); see AddUserNode.
	StreamOperator = exec.Operator
	// Emit is the output callback a StreamOperator pushes messages into.
	Emit = exec.Emit
	// TCPSpec and UDPSpec describe frames to synthesize.
	TCPSpec = pkt.TCPSpec
	// UDPSpec describes a UDP frame to synthesize.
	UDPSpec = pkt.UDPSpec
	// TrafficClass configures one class of synthetic traffic.
	TrafficClass = netsim.Class
	// TrafficConfig configures a traffic generator.
	TrafficConfig = netsim.Config
	// TrafficGenerator produces synthetic packets in timestamp order.
	TrafficGenerator = netsim.Generator
	// FlowRecord is one NetFlow-style record.
	FlowRecord = netflow.Record
	// FlowConfig configures a NetFlow record synthesizer.
	FlowConfig = netflow.Config
	// FlowGenerator produces NetFlow-style records.
	FlowGenerator = netflow.Generator
	// BGPUpdate is one BGP update record.
	BGPUpdate = bgp.Update
	// BGPConfig configures a BGP update synthesizer.
	BGPConfig = bgp.Config
	// BGPGenerator produces BGP update records.
	BGPGenerator = bgp.Generator
	// FaultInjector mutates injected packets with seeded, reproducible
	// capture faults; see BindFaults.
	FaultInjector = faultinject.Injector
	// FaultConfig tunes a FaultInjector's per-packet fault rates.
	FaultConfig = faultinject.Config
	// OverloadConfig tunes a closed-loop overload controller; see
	// AttachOverloadController.
	OverloadConfig = rts.OverloadConfig
)

// StreamOverload is the default decision-stream name of an overload
// controller attached with AttachOverloadController.
const StreamOverload = rts.OverloadStream

// NewFaultInjector builds a seeded fault injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultinject.New(cfg) }

// DefaultFaultConfig returns the standard dirty-tap fault mix at the
// given seed (about 5% of frames faulted).
func DefaultFaultConfig(seed int64) FaultConfig { return faultinject.DefaultConfig(seed) }

// Payload kinds for synthetic traffic.
const (
	PayloadRandom = netsim.PayloadRandom
	PayloadHTTP   = netsim.PayloadHTTP
)

// IP protocol numbers.
const (
	ProtoTCP = pkt.ProtoTCP
	ProtoUDP = pkt.ProtoUDP
)

// Value constructors.
var (
	// Uint builds an unsigned integer Value.
	Uint = schema.MakeUint
	// Int builds a signed integer Value.
	Int = schema.MakeInt
	// Float builds a float Value.
	Float = schema.MakeFloat
	// Str builds a string Value.
	Str = schema.MakeStr
	// Bool builds a boolean Value.
	Bool = schema.MakeBool
	// IP builds an IPv4 Value from its 32-bit form.
	IP = schema.MakeIP
	// ParseIP parses a dotted-quad IPv4 address.
	ParseIP = schema.ParseIP
	// FormatIP renders an IPv4 address.
	FormatIP = schema.FormatIP
)

// BuildTCP synthesizes a byte-accurate TCP frame at the given virtual
// time (microseconds).
func BuildTCP(usec uint64, spec TCPSpec) Packet { return pkt.BuildTCP(usec, spec) }

// BuildUDP synthesizes a byte-accurate UDP frame.
func BuildUDP(usec uint64, spec UDPSpec) Packet { return pkt.BuildUDP(usec, spec) }

// NewTrafficGenerator builds a synthetic traffic source.
func NewTrafficGenerator(cfg TrafficConfig) (*TrafficGenerator, error) { return netsim.New(cfg) }

// NewFlowGenerator builds a NetFlow-style record source. Records are
// delivered as packets of the built-in NETFLOW protocol.
func NewFlowGenerator(cfg FlowConfig) (*FlowGenerator, error) { return netflow.NewGenerator(cfg) }

// DecodeFlow parses a NETFLOW record packet.
func DecodeFlow(p *Packet) (FlowRecord, error) { return netflow.Decode(p) }

// NewBGPGenerator builds a BGP update source. Updates are delivered as
// packets of the built-in BGPUPDATE protocol.
func NewBGPGenerator(cfg BGPConfig) (*BGPGenerator, error) { return bgp.NewGenerator(cfg) }

// DecodeBGP parses a BGPUPDATE record packet.
func DecodeBGP(p *Packet) (BGPUpdate, error) { return bgp.Decode(p) }
