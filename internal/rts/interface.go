package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/capture"
	"gigascope/internal/faultinject"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
)

// Interface is a symbolic packet source the run time system binds LFTAs
// to (paper §2.2: "the Protocol must be bound to an Interface — a symbolic
// name which the run time system can bind to a source of packets").
//
// An Interface may additionally own a measurement substrate: a virtual
// NIC (nic.Device) that pre-filters and snaps packets, and a capture
// stack (capture.Stack) that models host interrupt/copy costs and losses.
// Once bound, every injected packet is routed through them, and their
// counters — NIC overruns, host ring drops, livelock state — are surfaced
// through Manager.IfaceStats and the SYSMON.IfaceStats telemetry stream.
type Interface struct {
	name    string
	m       *Manager
	hbEvery uint64

	// gating is the installed common-prefilter state (nil = no gate).
	// Published atomically so the capture path and shard workers read it
	// without taking the interface lock.
	gating atomic.Pointer[gatingTable]

	mu           sync.Mutex
	lftas        []*queryNode
	shards       []*ifaceShard // non-nil: RSS-sharded capture path
	closed       bool          // shutdown ran: shard work channels are closed
	clock        uint64        // virtual time, microseconds
	lastHB       uint64
	offered      uint64 // packets offered, including capture losses
	packets      uint64 // packets delivered to the LFTAs
	heartbeats   uint64 // source heartbeats emitted
	capStack     *capture.Stack
	nicDev       *nic.Device
	faults       *faultinject.Injector
	hbAsked      atomic.Bool
	shutdownOnce sync.Once
}

// Name returns the interface's symbolic name.
func (it *Interface) Name() string { return it.name }

func (it *Interface) attach(qn *queryNode) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.lftas = append(it.lftas, qn)
}

// ensureShards turns the interface's capture path into n RSS shards, each
// with a worker goroutine; idempotent once created. Called by the manager
// (before Start, with the LFTA set still mutable) when it attaches the
// first sharded LFTA.
func (it *Interface) ensureShards(n int) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.shards != nil || n < 2 {
		return
	}
	it.shards = make([]*ifaceShard, n)
	for i := range it.shards {
		it.shards[i] = newIfaceShard(it, i)
	}
	if it.capStack != nil {
		it.capStack.SetShards(n)
	}
}

// attachShard links one shard-local LFTA instance to shard i.
func (it *Interface) attachShard(i int, qn *queryNode) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.shards[i].lftas = append(it.shards[i].lftas, qn)
}

// LFTACount returns the number of LFTAs linked to this interface (each
// sharded LFTA counts once, not once per shard).
func (it *Interface) LFTACount() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.lftaCountLocked()
}

func (it *Interface) lftaCountLocked() int {
	if len(it.shards) > 0 {
		return len(it.shards[0].lftas)
	}
	return len(it.lftas)
}

// BindCapture routes injected packets through a capture-stack simulation:
// packets the stack loses (host ring full, NIC input overrun) never reach
// the LFTAs, and the stack's counters become part of the interface's
// monitoring snapshot. Bind before traffic starts.
func (it *Interface) BindCapture(st *capture.Stack) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.capStack = st
	if len(it.shards) > 1 {
		st.SetShards(len(it.shards))
	}
}

// BindNIC routes injected packets through a virtual NIC device: packets
// its program filters out never reach the host, qualifying packets are
// snapped to the program's snap length. Bind before traffic starts.
func (it *Interface) BindNIC(d *nic.Device) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.nicDev = d
}

// BindFaults routes every injected packet through a seeded fault
// injector before the NIC and capture stack: the dirty-input path of a
// real tap (truncated captures, mangled headers, option-bearing frames,
// clock skew) applied to this interface only. Faulted packets are
// mutated copies — a packet shared with another interface stays clean
// there. Bind before traffic starts.
func (it *Interface) BindFaults(inj *faultinject.Injector) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.faults = inj
}

// Inject delivers one packet to every attached LFTA inline (the capture
// path). The packet timestamp advances the interface clock. Bound NIC and
// capture-stack devices see the packet first and may filter, snap, or
// lose it before the LFTAs run. A single Inject is a poll window of one
// packet: LFTA output crosses the rings before Inject returns, so latency
// matches the per-message pipeline exactly.
func (it *Interface) Inject(p *pkt.Packet) {
	window := [1]*pkt.Packet{p}
	it.InjectBatch(window[:])
}

// InjectBatch delivers one interrupt/poll window of packets: the window
// runs through the NIC and capture stack, the survivors through every
// LFTA under one lock acquisition, and each LFTA's accumulated output
// crosses its rings as one batch at the window end. This is the batched
// capture entry point — one ring crossing per window instead of one per
// packet.
//
// On a sharded interface (Config.Shards > 1) the survivors are instead
// steered by flow hash across the shard workers and processed
// asynchronously: InjectBatch returns once the window is enqueued, and
// the caller must not mutate the packets afterwards.
func (it *Interface) InjectBatch(ps []*pkt.Packet) {
	if len(ps) == 0 {
		return
	}
	it.mu.Lock()
	lftas := it.lftas
	if it.faults != nil {
		// Faults land before the NIC and capture stack see the window —
		// the wire is where frames get dirty — and before the clock
		// advance, so injected clock skew moves this interface's clock.
		ps = it.faults.ApplyBatch(ps)
	}
	for _, p := range ps {
		if p.TS > it.clock {
			it.clock = p.TS
		}
	}
	it.offered += uint64(len(ps))
	kept := ps
	if it.nicDev != nil {
		snapped := it.nicDev.ProcessBatch(kept, make([]pkt.Packet, 0, len(kept)))
		kept = make([]*pkt.Packet, len(snapped))
		for i := range snapped {
			kept[i] = &snapped[i]
		}
	}
	if it.capStack != nil {
		// Packets the host ring (or NIC input queue) drops never reach
		// the LFTAs.
		kept = it.capStack.ArriveBatch(kept, make([]*pkt.Packet, 0, len(kept)))
	}
	it.packets += uint64(len(kept))
	if len(it.shards) > 0 {
		if it.closed {
			it.mu.Unlock()
			return
		}
		// Enqueue under the lock: per shard, windows land in clock order
		// and no later heartbeat can overtake them. A full work ring
		// blocks (backpressure on the capture path); the workers never
		// take this lock and their publishers shed, so they always drain.
		windows := nic.Steer(kept, len(it.shards), nil)
		for i, sh := range it.shards {
			if len(windows[i]) > 0 {
				sh.work.Push(shardWork{window: windows[i]})
			}
		}
		it.mu.Unlock()
		it.maybeHeartbeat(false)
		return
	}
	it.mu.Unlock()
	deliverWindow(it.gating.Load(), 0, kept, lftas)
	it.maybeHeartbeat(false)
}

// AdvanceClock moves the virtual clock forward (idle time with no
// packets) and emits periodic or requested heartbeats.
func (it *Interface) AdvanceClock(usec uint64) {
	it.mu.Lock()
	if usec > it.clock {
		it.clock = usec
	}
	it.mu.Unlock()
	it.maybeHeartbeat(false)
}

func (it *Interface) requestHeartbeat() {
	it.hbAsked.Store(true)
	// Serve the request immediately from the current clock; a source
	// with no flowing packets would otherwise never answer.
	it.maybeHeartbeat(true)
}

func (it *Interface) maybeHeartbeat(forced bool) {
	it.mu.Lock()
	clock := it.clock
	due := clock >= it.lastHB+it.hbEvery
	if forced || it.hbAsked.Load() {
		// A bound equal to the last one carries no new ordering
		// information (and no tuple outlives a poll window unflushed), so
		// even a forced request waits for the clock to advance — a merge
		// re-requesting every blocked tuple would otherwise flood the
		// stream with duplicate heartbeats, defeating batching.
		due = clock > it.lastHB
	}
	if !due || clock == 0 {
		it.mu.Unlock()
		return
	}
	it.lastHB = clock
	it.heartbeats++
	if len(it.shards) > 0 {
		if it.closed {
			// Shutdown already flushed the shards; the reunifying merge's
			// final drain may still request bounds — nothing to send.
			it.mu.Unlock()
			return
		}
		// Enqueue to every shard under the lock: the clock only advances
		// under it, so the bound is enqueued after every window that
		// raised the clock to it — per shard, heartbeats never overtake
		// the tuples they bound.
		for _, sh := range it.shards {
			sh.work.Push(shardWork{hb: clock})
		}
		it.mu.Unlock()
		it.hbAsked.Store(false)
		return
	}
	lftas := it.lftas
	it.mu.Unlock()
	it.hbAsked.Store(false)
	for _, qn := range lftas {
		qn.clockHeartbeat(clock)
	}
}

// stats snapshots the interface counters, including any bound devices.
func (it *Interface) stats() IfaceStats {
	it.mu.Lock()
	defer it.mu.Unlock()
	s := IfaceStats{
		Name:       it.name,
		Clock:      it.clock,
		LFTAs:      it.lftaCountLocked(),
		Shards:     len(it.shards),
		Packets:    it.packets,
		Offered:    it.offered,
		Heartbeats: it.heartbeats,
	}
	for _, sh := range it.shards {
		s.ShardPackets = append(s.ShardPackets, sh.packets.Load())
	}
	if it.capStack != nil {
		s.HasCapture = true
		s.Capture = it.capStack.Stats()
		s.Livelocked = it.capStack.Livelocked()
	}
	if it.nicDev != nil {
		s.HasNIC = true
		s.NICDelivered = it.nicDev.Delivered()
		s.NICFiltered = it.nicDev.Filtered()
	}
	if gt := it.gating.Load(); gt != nil {
		s.PrefilterGroups = len(gt.groups)
		for _, g := range gt.groups {
			s.PrefilterTerms += g.pf.NumTerms()
			s.PrefilterEvals += g.evals.Load()
			s.PrefilterGated += g.gated.Load()
		}
	}
	return s
}

// shutdown flushes and closes every attached LFTA. On a sharded
// interface it closes the work channels and joins the workers, which
// flush their shard-local LFTA instances on exit — so by the time
// shutdown returns, all queued windows have been processed and every
// LFTA-side counter is final.
func (it *Interface) shutdown() {
	it.shutdownOnce.Do(func() {
		it.mu.Lock()
		lftas := it.lftas
		shards := it.shards
		it.closed = true
		it.mu.Unlock()
		if len(shards) > 0 {
			for _, sh := range shards {
				sh.work.Close()
			}
			for _, sh := range shards {
				<-sh.done
			}
			return
		}
		for _, qn := range lftas {
			qn.flushInline()
		}
	})
}
