package funcs

import (
	"strings"
	"testing"

	"gigascope/internal/schema"
)

// runChain simulates the split execution of a sketch aggregate: several
// LFTA partials (one per shard), a union super merging the partial blobs,
// and the finalizer scalar — exactly the dataflow of a split plan.
func runChain(t *testing.T, name string, params []schema.Value, shards [][]schema.Value) schema.Value {
	t.Helper()
	agg, ok := Global.Aggregate(name)
	if !ok {
		t.Fatalf("aggregate %s not registered", name)
	}
	part, ok := Global.Aggregate(agg.Subs[0])
	if !ok {
		t.Fatalf("sub %s not registered", agg.Subs[0])
	}
	union, ok := Global.Aggregate(agg.Supers[0])
	if !ok {
		t.Fatalf("super %s not registered", agg.Supers[0])
	}
	partParams, _, err := part.ResolveParams(paramPrefix(params, len(part.Params)), nil)
	if err != nil {
		t.Fatal(err)
	}
	u := union.NewState(schema.TString, nil)
	for _, vals := range shards {
		st := part.NewState(schema.TUint, partParams)
		for _, v := range vals {
			st.Add(v)
		}
		u.Add(st.Result())
	}
	if agg.Final != FinalScalarCall {
		t.Fatalf("%s: expected FinalScalarCall", name)
	}
	fin, ok := Global.Scalar(agg.Finalizer)
	if !ok {
		t.Fatalf("finalizer %s not registered", agg.Finalizer)
	}
	out, _ := fin.Eval([]schema.Value{u.Result()}, nil)
	return out
}

func paramPrefix(params []schema.Value, n int) []schema.Value {
	if len(params) > n {
		return params[:n]
	}
	return params
}

func uintVals(n int) []schema.Value {
	vs := make([]schema.Value, n)
	for i := range vs {
		vs[i] = schema.MakeUint(uint64(i))
	}
	return vs
}

func shardSplit(vals []schema.Value, parts int) [][]schema.Value {
	out := make([][]schema.Value, parts)
	for i, v := range vals {
		out[i%parts] = append(out[i%parts], v)
	}
	return out
}

func TestApproxDistinctChainShardInvariance(t *testing.T) {
	vals := uintVals(5000)
	var first schema.Value
	for _, parts := range []int{1, 2, 4, 8} {
		got := runChain(t, "approx_distinct", nil, shardSplit(vals, parts))
		if got.Type != schema.TUint {
			t.Fatalf("parts=%d: result type %s", parts, got.Type)
		}
		if parts == 1 {
			first = got
			// Within the default eps.
			rel := relErr(float64(got.Uint()), 5000)
			if rel > 4*DefaultEps {
				t.Fatalf("estimate %d too far from 5000 (rel %.4f)", got.Uint(), rel)
			}
			continue
		}
		if got.Uint() != first.Uint() {
			t.Fatalf("parts=%d: estimate %d != single-shard %d", parts, got.Uint(), first.Uint())
		}
	}
}

func TestCountDistinctChainExact(t *testing.T) {
	vals := uintVals(300)
	vals = append(vals, uintVals(300)...) // duplicates
	for _, parts := range []int{1, 3} {
		got := runChain(t, "count_distinct", nil, shardSplit(vals, parts))
		if got.Uint() != 300 {
			t.Fatalf("parts=%d: count_distinct = %d, want 300", parts, got.Uint())
		}
	}
}

func TestDistUnionMixedExactAndSketchPartials(t *testing.T) {
	// The demotion scenario: some shards still ship exact set blobs while
	// a demoted shard ships HLL blobs. The union must converge on a sketch
	// that covers both.
	exact, _ := Global.Aggregate("count_distinct_part")
	approx, _ := Global.Aggregate("approx_distinct_part")
	approxParams, _, err := approx.ResolveParams(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	union, _ := Global.Aggregate("dist_union")

	u := union.NewState(schema.TString, nil)
	es := exact.NewState(schema.TUint, nil)
	for i := 0; i < 1000; i++ {
		es.Add(schema.MakeUint(uint64(i)))
	}
	as := approx.NewState(schema.TUint, approxParams)
	for i := 500; i < 1500; i++ { // overlaps the exact half
		as.Add(schema.MakeUint(uint64(i)))
	}
	u.Add(es.Result())
	u.Add(as.Result())

	fin, _ := Global.Scalar("dist_card")
	out, _ := fin.Eval([]schema.Value{u.Result()}, nil)
	rel := relErr(float64(out.Uint()), 1500)
	if rel > 4*DefaultEps {
		t.Fatalf("mixed union estimate %d too far from 1500 (rel %.4f)", out.Uint(), rel)
	}

	// Order independence: sketch first, then exact keys folded in.
	u2 := union.NewState(schema.TString, nil)
	u2.Add(as.Result())
	u2.Add(es.Result())
	out2, _ := fin.Eval([]schema.Value{u2.Result()}, nil)
	if out.Uint() != out2.Uint() {
		t.Fatalf("mixed union order-dependent: %d vs %d", out.Uint(), out2.Uint())
	}
}

func TestQuantileChains(t *testing.T) {
	var vals []schema.Value
	for i := 1; i <= 10000; i++ {
		vals = append(vals, schema.MakeUint(uint64(i)))
	}
	q := []schema.Value{schema.MakeFloat(0.5)}

	exact := runChain(t, "quantile", q, shardSplit(vals, 4))
	if exact.Float() != 5000 {
		t.Fatalf("exact median = %v, want 5000", exact.Float())
	}

	var approx1 schema.Value
	for _, parts := range []int{1, 2, 4, 8} {
		got := runChain(t, "approx_quantile", q, shardSplit(vals, parts))
		if rel := relErr(got.Float(), 5000); rel > 3*DefaultEps {
			t.Fatalf("parts=%d: approx median %v (rel err %.4f)", parts, got.Float(), rel)
		}
		if parts == 1 {
			approx1 = got
		} else if got.Float() != approx1.Float() {
			t.Fatalf("parts=%d: approx median %v != single-shard %v", parts, got.Float(), approx1.Float())
		}
	}
}

func TestQuantUnionMixedPartials(t *testing.T) {
	exact, _ := Global.Aggregate("quantile_part")
	approx, _ := Global.Aggregate("approx_quantile_part")
	q := []schema.Value{schema.MakeFloat(0.5)}
	eParams, _, _ := exact.ResolveParams(q, nil)
	aParams, _, _ := approx.ResolveParams(q, nil)
	union, _ := Global.Aggregate("quant_union")

	u := union.NewState(schema.TString, nil)
	es := exact.NewState(schema.TUint, eParams)
	as := approx.NewState(schema.TUint, aParams)
	for i := 1; i <= 5000; i++ {
		es.Add(schema.MakeUint(uint64(i)))
		as.Add(schema.MakeUint(uint64(i + 5000)))
	}
	u.Add(es.Result())
	u.Add(as.Result())
	fin, _ := Global.Scalar("quant_value")
	out, _ := fin.Eval([]schema.Value{u.Result()}, nil)
	if rel := relErr(out.Float(), 5000); rel > 3*DefaultEps {
		t.Fatalf("mixed quantile %v too far from 5000 (rel %.4f)", out.Float(), rel)
	}
}

func TestHeavyHittersChain(t *testing.T) {
	// Key i appears (50-i) times, i in [0,50): top-3 is 0,1,2.
	var vals []schema.Value
	for i := 0; i < 50; i++ {
		for j := 0; j < 50-i; j++ {
			vals = append(vals, schema.MakeUint(uint64(i)))
		}
	}
	params := []schema.Value{schema.MakeUint(3)}
	var first string
	for _, parts := range []int{1, 2, 4, 8} {
		got := runChain(t, "heavy_hitters", params, shardSplit(vals, parts))
		if got.Type != schema.TString {
			t.Fatalf("parts=%d: result type %s", parts, got.Type)
		}
		s := got.Str()
		if parts == 1 {
			first = s
			if !strings.HasPrefix(s, "0:50 1:49 2:48") {
				t.Fatalf("unexpected top-3 report %q", s)
			}
			continue
		}
		if s != first {
			t.Fatalf("parts=%d: report %q != single-shard %q", parts, s, first)
		}
	}
}

func TestCMCountChain(t *testing.T) {
	var vals []schema.Value
	for i := 0; i < 2000; i++ {
		vals = append(vals, schema.MakeUint(uint64(i%100)))
	}
	params := []schema.Value{schema.MakeUint(7)} // target value 7 appears 20x
	var first schema.Value
	for _, parts := range []int{1, 2, 4} {
		got := runChain(t, "cm_count", params, shardSplit(vals, parts))
		if got.Uint() < 20 {
			t.Fatalf("parts=%d: cm_count undercounts: %d < 20", parts, got.Uint())
		}
		if got.Uint() > 20+uint64(float64(len(vals))*DefaultEps)+1 {
			t.Fatalf("parts=%d: cm_count %d exceeds eps*N bound", parts, got.Uint())
		}
		if parts == 1 {
			first = got
		} else if got.Uint() != first.Uint() {
			t.Fatalf("parts=%d: estimate %d != single-shard %d", parts, got.Uint(), first.Uint())
		}
	}
}

func TestResolveParams(t *testing.T) {
	agg, _ := Global.Aggregate("heavy_hitters")

	// Defaults fill unsupplied optionals.
	ps, _, err := agg.ResolveParams([]schema.Value{schema.MakeUint(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[1].Float() != DefaultEps || ps[2].Float() != DefaultDelta {
		t.Fatalf("defaults not applied: %v", ps)
	}

	// Overrides beat defaults but not explicit arguments.
	ov := map[string]schema.Value{"eps": schema.MakeFloat(0.1)}
	ps, _, err = agg.ResolveParams([]schema.Value{schema.MakeUint(5)}, ov)
	if err != nil || ps[1].Float() != 0.1 {
		t.Fatalf("override not applied: %v %v", ps, err)
	}
	ps, _, err = agg.ResolveParams([]schema.Value{schema.MakeUint(5), schema.MakeFloat(0.2)}, ov)
	if err != nil || ps[1].Float() != 0.2 {
		t.Fatalf("explicit eps should beat override: %v %v", ps, err)
	}

	// Missing required parameter.
	if _, _, err := agg.ResolveParams(nil, nil); err == nil {
		t.Fatal("missing k should fail")
	}
	// Out-of-range eps reports the offending argument index.
	_, bad, err := agg.ResolveParams([]schema.Value{schema.MakeUint(5), schema.MakeFloat(2)}, nil)
	if err == nil || bad != 1 {
		t.Fatalf("bad eps: idx=%d err=%v", bad, err)
	}
	// Too many parameters.
	if _, _, err := agg.ResolveParams(make([]schema.Value, 4), nil); err == nil {
		t.Fatal("4 params should fail")
	}
	// Wrong type for k.
	if _, _, err := agg.ResolveParams([]schema.Value{schema.MakeStr("x")}, nil); err == nil {
		t.Fatal("string k should fail")
	}
}

func TestDemoteTwinContracts(t *testing.T) {
	// Every Demote link must point at a registered aggregate with the same
	// result type and a parameter list extending the exact one as a prefix.
	for _, name := range Global.AggregateNames() {
		agg, _ := Global.Aggregate(name)
		if agg.Demote == "" {
			continue
		}
		twin, ok := Global.Aggregate(agg.Demote)
		if !ok {
			t.Fatalf("%s: demote twin %s not registered", name, agg.Demote)
		}
		for _, ty := range []schema.Type{schema.TUint, schema.TFloat} {
			if agg.Ret(ty) != twin.Ret(ty) {
				t.Fatalf("%s -> %s: result types differ for arg %s", name, agg.Demote, ty)
			}
		}
		if len(twin.Params) < len(agg.Params) {
			t.Fatalf("%s -> %s: twin declares fewer params", name, agg.Demote)
		}
		for i := range agg.Params {
			if twin.Params[i].Name != agg.Params[i].Name {
				t.Fatalf("%s -> %s: param %d name mismatch", name, agg.Demote, i)
			}
		}
		// The exact aggregate's resolved params must resolve on the twin.
		exact, _, err := agg.ResolveParams(exampleParams(agg), nil)
		if err != nil {
			t.Fatalf("%s: resolve: %v", name, err)
		}
		if _, _, err := twin.ResolveParams(exact, nil); err != nil {
			t.Fatalf("%s -> %s: twin resolve: %v", name, agg.Demote, err)
		}
	}
}

func exampleParams(a *Aggregate) []schema.Value {
	var out []schema.Value
	for _, p := range a.Params {
		if !p.Required {
			break
		}
		switch p.Name {
		case "q":
			out = append(out, schema.MakeFloat(0.5))
		case "k":
			out = append(out, schema.MakeUint(3))
		default:
			out = append(out, schema.MakeUint(1))
		}
	}
	return out
}

func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
