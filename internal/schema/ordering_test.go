package schema

import (
	"strings"
	"testing"
)

func TestOrderingPredicates(t *testing.T) {
	cases := []struct {
		ord                Ordering
		inc, dec, monotone bool
	}{
		{Ordering{Kind: OrderStrictIncreasing}, true, false, true},
		{Ordering{Kind: OrderIncreasing}, true, false, true},
		{Ordering{Kind: OrderStrictDecreasing}, false, true, true},
		{Ordering{Kind: OrderDecreasing}, false, true, true},
		{Ordering{Kind: OrderBandedIncreasing, Band: 30}, false, false, true},
		{Ordering{Kind: OrderNonrepeating}, false, false, false},
		{Ordering{Kind: OrderIncreasingInGroup, Group: []string{"srcIP"}}, false, false, false},
		{NoOrder, false, false, false},
	}
	for _, c := range cases {
		if c.ord.Increasing() != c.inc {
			t.Errorf("%s.Increasing() = %v, want %v", c.ord, c.ord.Increasing(), c.inc)
		}
		if c.ord.Decreasing() != c.dec {
			t.Errorf("%s.Decreasing() = %v, want %v", c.ord, c.ord.Decreasing(), c.dec)
		}
		if c.ord.Monotone() != c.monotone {
			t.Errorf("%s.Monotone() = %v, want %v", c.ord, c.ord.Monotone(), c.monotone)
		}
	}
}

func TestOrderingWeaken(t *testing.T) {
	if got := (Ordering{Kind: OrderStrictIncreasing}).Weaken(); got.Kind != OrderIncreasing {
		t.Errorf("Weaken(strict inc) = %s", got)
	}
	if got := (Ordering{Kind: OrderStrictDecreasing}).Weaken(); got.Kind != OrderDecreasing {
		t.Errorf("Weaken(strict dec) = %s", got)
	}
	if got := (Ordering{Kind: OrderNonrepeating}).Weaken(); got.Kind != OrderNone {
		t.Errorf("Weaken(nonrepeating) = %s", got)
	}
	band := Ordering{Kind: OrderBandedIncreasing, Band: 5}
	if got := band.Weaken(); got.Kind != band.Kind || got.Band != band.Band {
		t.Errorf("Weaken(banded) = %s, want unchanged", got)
	}
}

func TestOrderingMeet(t *testing.T) {
	inc := Ordering{Kind: OrderIncreasing}
	sinc := Ordering{Kind: OrderStrictIncreasing}
	dec := Ordering{Kind: OrderDecreasing}
	band10 := Ordering{Kind: OrderBandedIncreasing, Band: 10}
	band30 := Ordering{Kind: OrderBandedIncreasing, Band: 30}

	if got := Meet(sinc, sinc); got.Kind != OrderIncreasing {
		t.Errorf("Meet(strict, strict) = %s, want increasing (merge may interleave equals)", got)
	}
	if got := Meet(inc, dec); got.Kind != OrderNone {
		t.Errorf("Meet(inc, dec) = %s, want none", got)
	}
	if got := Meet(band10, band30); got.Kind != OrderBandedIncreasing || got.Band != 30 {
		t.Errorf("Meet(banded 10, banded 30) = %s, want banded_increasing(30)", got)
	}
	if got := Meet(inc, band10); got.Kind != OrderBandedIncreasing || got.Band != 10 {
		t.Errorf("Meet(inc, banded 10) = %s, want banded_increasing(10)", got)
	}
	if got := Meet(NoOrder, inc); got.Kind != OrderNone {
		t.Errorf("Meet(none, inc) = %s, want none", got)
	}
}

func TestOrderCheckerStrictIncreasing(t *testing.T) {
	c := NewOrderChecker(Ordering{Kind: OrderStrictIncreasing}, nil)
	for _, u := range []uint64{1, 2, 5} {
		if err := c.Observe(MakeUint(u), nil); err != nil {
			t.Fatalf("Observe(%d): %v", u, err)
		}
	}
	if err := c.Observe(MakeUint(5), nil); err == nil {
		t.Error("repeat accepted under strictly_increasing")
	}
}

func TestOrderCheckerIncreasingAllowsRepeats(t *testing.T) {
	c := NewOrderChecker(Ordering{Kind: OrderIncreasing}, nil)
	for _, u := range []uint64{1, 1, 2, 2, 3} {
		if err := c.Observe(MakeUint(u), nil); err != nil {
			t.Fatalf("Observe(%d): %v", u, err)
		}
	}
	if err := c.Observe(MakeUint(2), nil); err == nil {
		t.Error("decrease accepted under increasing")
	}
}

func TestOrderCheckerDecreasing(t *testing.T) {
	c := NewOrderChecker(Ordering{Kind: OrderDecreasing}, nil)
	for _, u := range []uint64{9, 9, 4, 1} {
		if err := c.Observe(MakeUint(u), nil); err != nil {
			t.Fatalf("Observe(%d): %v", u, err)
		}
	}
	if err := c.Observe(MakeUint(2), nil); err == nil {
		t.Error("increase accepted under decreasing")
	}
}

func TestOrderCheckerBanded(t *testing.T) {
	c := NewOrderChecker(Ordering{Kind: OrderBandedIncreasing, Band: 30}, nil)
	// NetFlow-style: high water mark advances, stragglers within 30s ok.
	seq := []uint64{100, 130, 105, 140, 111, 170}
	for _, u := range seq {
		if err := c.Observe(MakeUint(u), nil); err != nil {
			t.Fatalf("Observe(%d): %v", u, err)
		}
	}
	if err := c.Observe(MakeUint(139), nil); err == nil {
		t.Error("value 31 below high water mark accepted under banded_increasing(30)")
	}
}

func TestOrderCheckerInGroup(t *testing.T) {
	key := func(tup Tuple) string { return tup[0].String() }
	c := NewOrderChecker(Ordering{Kind: OrderIncreasingInGroup, Group: []string{"flow"}}, key)
	obs := []struct {
		flow string
		ts   uint64
	}{
		{"a", 1}, {"b", 9}, {"a", 2}, {"b", 9}, {"a", 7},
	}
	for _, o := range obs {
		tup := Tuple{MakeStr(o.flow), MakeUint(o.ts)}
		if err := c.Observe(tup[1], tup); err != nil {
			t.Fatalf("Observe(%v): %v", o, err)
		}
	}
	bad := Tuple{MakeStr("b"), MakeUint(3)}
	if err := c.Observe(bad[1], bad); err == nil {
		t.Error("in-group decrease accepted")
	}
}

func TestOrderingString(t *testing.T) {
	got := Ordering{Kind: OrderBandedIncreasing, Band: 30}.String()
	if got != "banded_increasing(30)" {
		t.Errorf("String() = %q", got)
	}
	got = Ordering{Kind: OrderIncreasingInGroup, Group: []string{"a", "b"}}.String()
	if !strings.Contains(got, "a,b") {
		t.Errorf("String() = %q, want group list", got)
	}
}
