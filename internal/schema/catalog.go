package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is the schema registry: protocol schemas declared in the DDL and
// stream schemas registered when queries are compiled. It is safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	schemas map[string]*Schema
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{schemas: make(map[string]*Schema)}
}

// Register adds a schema, validating it first. Registering a name twice is
// an error; use Replace to update.
func (c *Catalog) Register(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(s.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.schemas[key]; ok {
		return fmt.Errorf("schema: %s already registered", s.Name)
	}
	c.schemas[key] = s
	return nil
}

// Replace adds or overwrites a schema.
func (c *Catalog) Replace(s *Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.schemas[strings.ToLower(s.Name)] = s
	return nil
}

// Lookup returns the schema with the given name (case-insensitive).
func (c *Catalog) Lookup(name string) (*Schema, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[strings.ToLower(name)]
	return s, ok
}

// Remove deletes a schema by name.
func (c *Catalog) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.schemas, strings.ToLower(name))
}

// Names returns all registered schema names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.schemas))
	for _, s := range c.schemas {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Protocols returns the registered Protocol schemas, sorted by name.
func (c *Catalog) Protocols() []*Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Schema
	for _, s := range c.schemas {
		if s.Kind == KindProtocol {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
