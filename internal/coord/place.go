package coord

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"gigascope/internal/core"
)

// PlaceOptions parameterizes Place. The same (queries, topology, seed,
// costs) always yield the same Manifest — determinism is what lets the
// differential harness compare distributed runs across processes.
type PlaceOptions struct {
	// Seed perturbs tie-breaks between equally-scored hosts (and only
	// tie-breaks: the jitter is ~1e-9 of a score unit).
	Seed int64
	// Costs supplies the cost model; nil uses DefaultCostModel().
	Costs *CostModel
}

// PartitionName is the runtime name of partition i of a
// partition-captured LFTA. '#' cannot appear in GSQL identifiers, so
// the mangling never collides with a compiled name (the same convention
// as the "#shard<i>" names inside a sharded capture path).
func PartitionName(name string, i int) string {
	return fmt.Sprintf("%s#part%d", name, i)
}

// PartitionNode clones an LFTA node as its partition-i instance: same
// operator template, renamed node and output schema. The clone shares
// the stateless compiled templates with the original (instantiation
// creates fresh state), which is the same aliasing the sharded capture
// path relies on.
func PartitionNode(n *core.Node, i int) *core.Node {
	cp := *n
	cp.Name = PartitionName(n.Name, i)
	out := n.Out.Clone()
	out.Name = cp.Name
	cp.Out = out
	return &cp
}

// Assignment places one runtime node on one host.
type Assignment struct {
	// Node is the runtime node name — the logical name, or
	// "logical#part<i>" for one partition of a partition-captured LFTA.
	Node string `json:"node"`
	// Logical is the compiled node name the runtime node instantiates.
	Logical string `json:"logical"`
	// Query is the owning query (binds its parameters at install time).
	Query string `json:"query"`
	Level string `json:"level"`          // "lfta" | "hfta"
	Kind  string `json:"kind"`           // selproj | agg | join | merge
	Mode  string `json:"mode,omitempty"` // plan boundary mode (LFTA only)
	// Interface is the captured interface (LFTA only).
	Interface string `json:"iface,omitempty"`
	// Partition/Of identify the capture split (Of 0 = whole).
	Partition int `json:"part,omitempty"`
	Of        int `json:"of,omitempty"`
	// CostUs is the modeled cost in µs of CPU per second of traffic.
	CostUs float64 `json:"cost_us"`
}

// ImportSpec is one wire subscription a host opens at startup.
type ImportSpec struct {
	From      string `json:"from"`   // producing host
	Stream    string `json:"stream"` // remote stream name
	LocalName string `json:"local"`  // local registration (== Stream)
}

// ReunifySpec merges the partition streams of one logical stream back
// under its logical name on the host that consumes it.
type ReunifySpec struct {
	Name   string   `json:"name"`
	Inputs []string `json:"inputs"`
}

// HostPlan is everything one host must do to realize its share of the
// placement.
type HostPlan struct {
	Name   string  `json:"host"`
	Budget float64 `json:"budget"`
	// CostUs is the summed modeled cost of the host's assignments;
	// Util is CostUs/Budget (may exceed 1: over-budget placements are
	// allowed but flagged, mirroring how the paper's overload control
	// sheds rather than refuses).
	CostUs float64 `json:"cost_us"`
	Util   float64 `json:"util"`
	Over   bool    `json:"over,omitempty"`
	Listen string  `json:"listen,omitempty"`

	Assignments []Assignment  `json:"assignments,omitempty"`
	Imports     []ImportSpec  `json:"imports,omitempty"`
	Reunify     []ReunifySpec `json:"reunify,omitempty"`
	// Exports lists streams other hosts import from this one (what the
	// wire server will be asked for, and how many subscribers to await).
	Exports []string `json:"exports,omitempty"`
}

// Manifest is the deployment plan: one HostPlan per topology host
// (sorted by name) plus the order hosts must start in (producers before
// consumers; the sink, the terminal consumer, comes last whenever it
// imports anything). Stopping in the same order is safe: closing a
// producer sends fin on its exports, so consumers' imports drain before
// their own shutdown.
type Manifest struct {
	Seed  int64      `json:"seed"`
	Sink  string     `json:"sink"`
	Order []string   `json:"order"`
	Hosts []HostPlan `json:"hosts"`
	// Topology is the rendered source topology, making the manifest
	// self-describing for repro artifacts.
	Topology string `json:"topology,omitempty"`
}

// Host returns the plan for the named host, or nil.
func (m *Manifest) Host(name string) *HostPlan {
	for i := range m.Hosts {
		if m.Hosts[i].Name == name {
			return &m.Hosts[i]
		}
	}
	return nil
}

// ExpectedSubscribers counts the wire subscriptions other hosts open
// against this host — the barrier AwaitSubscribers waits on before
// traffic starts.
func (m *Manifest) ExpectedSubscribers(host string) int {
	n := 0
	for i := range m.Hosts {
		if m.Hosts[i].Name == host {
			continue
		}
		for _, imp := range m.Hosts[i].Imports {
			if imp.From == host {
				n++
			}
		}
	}
	return n
}

// Render writes the manifest as deterministic human-readable text.
func (m *Manifest) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement seed=%d sink=%s order=%s\n",
		m.Seed, m.Sink, strings.Join(m.Order, ","))
	for i := range m.Hosts {
		h := &m.Hosts[i]
		over := ""
		if h.Over {
			over = " OVER-BUDGET"
		}
		fmt.Fprintf(&b, "host %s budget=%g cost=%.2fus util=%.3f%s\n",
			h.Name, h.Budget, h.CostUs, h.Util, over)
		for _, a := range h.Assignments {
			loc := ""
			if a.Of > 0 {
				loc = fmt.Sprintf(" part=%d/%d", a.Partition, a.Of)
			}
			if a.Interface != "" {
				loc += " iface=" + a.Interface
			}
			if a.Mode != "" {
				loc += " mode=" + a.Mode
			}
			fmt.Fprintf(&b, "  %s %s %s query=%s%s cost=%.2fus\n",
				a.Level, a.Kind, a.Node, a.Query, loc, a.CostUs)
		}
		for _, imp := range h.Imports {
			fmt.Fprintf(&b, "  import %s from %s\n", imp.Stream, imp.From)
		}
		for _, r := range h.Reunify {
			fmt.Fprintf(&b, "  reunify %s <- %s\n", r.Name, strings.Join(r.Inputs, ","))
		}
		if len(h.Exports) > 0 {
			fmt.Fprintf(&b, "  export %s\n", strings.Join(h.Exports, ","))
		}
	}
	return b.String()
}

func kindName(k core.OpKind) string {
	switch k {
	case core.OpAgg:
		return "agg"
	case core.OpJoin:
		return "join"
	case core.OpMerge:
		return "merge"
	default:
		return "selproj"
	}
}

// jitter derives a tiny deterministic score perturbation from (seed,
// node, host): enough to break exact ties differently per seed, far too
// small to override a real cost difference.
func jitter(seed int64, node, host string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, node, host)
	return float64(h.Sum64()%(1<<20)) * 1e-15
}

// placer carries the mutable placement state.
type placer struct {
	topo     *Topology
	cm       *CostModel
	seed     int64
	sink     string
	inRate   map[string]float64
	outRate  map[string]float64
	hostOf   map[string][]string // logical node -> hosts (len>1 = partition slots)
	hostCost map[string]float64
	edges    map[string]map[string]bool // producer host -> consumer hosts
	plans    map[string]*HostPlan
}

// reaches reports whether the host DAG has a path from a to b.
func (p *placer) reaches(a, b string) bool {
	if a == b {
		return true
	}
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(h string) bool {
		if h == b {
			return true
		}
		if seen[h] {
			return false
		}
		seen[h] = true
		for c := range p.edges[h] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(a)
}

func (p *placer) addEdge(from, to string) {
	if from == to {
		return
	}
	if p.edges[from] == nil {
		p.edges[from] = map[string]bool{}
	}
	p.edges[from][to] = true
}

// Place computes the operator placement of the compiled queries over the
// topology. LFTAs are pinned to the hosts capturing their interfaces
// (split captures get one renamed instance per partition); HFTAs are
// placed greedily by utilization-plus-transfer score against per-host
// CPU budgets, with seed-perturbed tie-breaks. The resulting host import
// graph is always acyclic with the sink as a terminal consumer, so
// Manifest.Order is a valid bring-up (and tear-down) sequence.
func Place(queries []*core.CompiledQuery, topo *Topology, opts PlaceOptions) (*Manifest, error) {
	if topo == nil || len(topo.Nodes) == 0 {
		return nil, fmt.Errorf("coord: empty topology")
	}
	cm := opts.Costs
	if cm == nil {
		cm = DefaultCostModel()
	}
	inRate, outRate := cm.nodeRates(queries)
	p := &placer{
		topo:     topo,
		cm:       cm,
		seed:     opts.Seed,
		sink:     topo.Sink().Name,
		inRate:   inRate,
		outRate:  outRate,
		hostOf:   map[string][]string{},
		hostCost: map[string]float64{},
		edges:    map[string]map[string]bool{},
		plans:    map[string]*HostPlan{},
	}
	for _, tn := range topo.Nodes {
		p.plans[tn.Name] = &HostPlan{Name: tn.Name, Budget: tn.CPU, Listen: tn.Listen}
	}

	for _, q := range queries {
		for _, n := range q.Nodes {
			var err error
			if n.Level == core.LevelLFTA {
				err = p.placeLFTA(q, n)
			} else {
				err = p.placeHFTA(q, n)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	p.wire(queries)

	m := &Manifest{Seed: opts.Seed, Sink: p.sink, Topology: topo.Render()}
	for _, name := range sortedHostNames(topo) {
		h := p.plans[name]
		h.CostUs = p.hostCost[name]
		if h.Budget > 0 {
			h.Util = h.CostUs / h.Budget
		}
		h.Over = h.CostUs > h.Budget
		m.Hosts = append(m.Hosts, *h)
	}
	m.Order = p.order()
	return m, nil
}

func lftaIface(n *core.Node) string {
	if len(n.Sources) == 0 || n.Sources[0].Interface == "" {
		return "default"
	}
	return n.Sources[0].Interface
}

func (p *placer) placeLFTA(q *core.CompiledQuery, n *core.Node) error {
	iface := lftaIface(n)
	captors := p.topo.Captors(iface)
	if len(captors) == 0 {
		return fmt.Errorf("coord: no topology node captures interface %q (needed by LFTA %s of query %s)",
			iface, n.Name, q.Name)
	}
	mode := ""
	if b := planBoundary(q.Plan, n.Name); b != nil {
		mode = b.Mode.String()
	}
	rate := p.inRate[strings.ToLower(n.Name)]
	unit := p.cm.perUnitUs(n)
	key := strings.ToLower(n.Name)
	if len(captors) == 1 {
		host := captors[0].Name
		cost := unit * rate / 1e0
		p.hostCost[host] += cost
		p.plans[host].Assignments = append(p.plans[host].Assignments, Assignment{
			Node: n.Name, Logical: n.Name, Query: q.Name, Level: "lfta",
			Kind: kindName(n.Kind), Mode: mode, Interface: iface, CostUs: cost,
		})
		p.hostOf[key] = []string{host}
		return nil
	}
	k := len(captors)
	hosts := make([]string, k)
	for i, c := range captors {
		host := c.Name
		hosts[i] = host
		cost := unit * rate / float64(k)
		p.hostCost[host] += cost
		p.plans[host].Assignments = append(p.plans[host].Assignments, Assignment{
			Node: PartitionName(n.Name, i), Logical: n.Name, Query: q.Name,
			Level: "lfta", Kind: kindName(n.Kind), Mode: mode, Interface: iface,
			Partition: i, Of: k, CostUs: cost,
		})
	}
	p.hostOf[key] = hosts
	return nil
}

func (p *placer) placeHFTA(q *core.CompiledQuery, n *core.Node) error {
	key := strings.ToLower(n.Name)
	rate := p.inRate[key]
	cost := p.cm.perUnitUs(n) * rate

	// Resolve input producer hosts; a source outside the placement (a
	// local stream every host has, like SYSMON) pins the node to the
	// sink so its rows have one well-defined home.
	type input struct {
		hosts []string
		rate  float64 // per producing host
	}
	var ins []input
	pinned := false
	for _, src := range n.Sources {
		hs, ok := p.hostOf[strings.ToLower(src.Name)]
		if !ok {
			pinned = true
			continue
		}
		r := p.outRate[strings.ToLower(src.Name)]
		ins = append(ins, input{hosts: hs, rate: r / float64(len(hs))})
	}

	host := p.sink
	if !pinned {
		best, bestScore := "", 0.0
		for _, cand := range sortedHostNames(p.topo) {
			ok := true
			var wireUs float64
			for _, in := range ins {
				for _, s := range in.hosts {
					if s == cand {
						continue
					}
					// Keep the host graph acyclic and the sink terminal.
					if s == p.sink || p.reaches(cand, s) {
						ok = false
						break
					}
					wireUs += p.topo.LinkCost(s, cand) * in.rate * p.cm.SteerPerPktUs
				}
				if !ok {
					break
				}
			}
			if cand == p.sink {
				// The sink is always a valid consumer (it never exports,
				// so edges into it cannot close a cycle).
				ok = true
				wireUs = 0
				for _, in := range ins {
					for _, s := range in.hosts {
						if s != cand {
							wireUs += p.topo.LinkCost(s, cand) * in.rate * p.cm.SteerPerPktUs
						}
					}
				}
			}
			if !ok {
				continue
			}
			budget := p.plans[cand].Budget
			if budget <= 0 {
				budget = 1
			}
			score := (p.hostCost[cand]+cost+wireUs)/budget + jitter(p.seed, n.Name, cand)
			if best == "" || score < bestScore {
				best, bestScore = cand, score
			}
		}
		host = best
	}

	for _, in := range ins {
		for _, s := range in.hosts {
			p.addEdge(s, host)
		}
	}
	p.hostCost[host] += cost
	p.plans[host].Assignments = append(p.plans[host].Assignments, Assignment{
		Node: n.Name, Logical: n.Name, Query: q.Name, Level: "hfta",
		Kind: kindName(n.Kind), CostUs: cost,
	})
	p.hostOf[key] = []string{host}
	return nil
}

// wire derives each host's imports and reunify nodes from the finished
// assignment map, then routes every query output to the sink.
func (p *placer) wire(queries []*core.CompiledQuery) {
	type impKey struct{ host, local string }
	seenImp := map[impKey]bool{}
	seenReu := map[impKey]bool{}

	addImport := func(host, from, stream string) {
		if from == host {
			return
		}
		k := impKey{host, stream}
		if seenImp[k] {
			return
		}
		seenImp[k] = true
		p.plans[host].Imports = append(p.plans[host].Imports, ImportSpec{
			From: from, Stream: stream, LocalName: stream,
		})
		p.addEdge(from, host)
	}
	need := func(host, logical string) {
		hs, ok := p.hostOf[strings.ToLower(logical)]
		if !ok {
			return // local stream (SYSMON etc.), nothing to wire
		}
		if len(hs) == 1 {
			addImport(host, hs[0], logical)
			return
		}
		k := impKey{host, strings.ToLower(logical)}
		if seenReu[k] {
			return
		}
		seenReu[k] = true
		inputs := make([]string, len(hs))
		for i, s := range hs {
			inputs[i] = PartitionName(logical, i)
			addImport(host, s, inputs[i])
		}
		p.plans[host].Reunify = append(p.plans[host].Reunify, ReunifySpec{
			Name: logical, Inputs: inputs,
		})
	}

	for _, hp := range p.plans {
		for _, a := range hp.Assignments {
			if a.Level != "hfta" {
				continue
			}
			n := findNode(queries, a.Logical)
			if n == nil {
				continue
			}
			for _, src := range n.Sources {
				need(hp.Name, src.Name)
			}
		}
	}
	// Every query output must be readable at the sink.
	for _, q := range queries {
		if out := q.Output(); out != nil {
			need(p.sink, out.Name)
		}
	}

	// Exports: what other hosts import from each host.
	exp := map[string]map[string]bool{}
	for _, hp := range p.plans {
		for _, imp := range hp.Imports {
			if exp[imp.From] == nil {
				exp[imp.From] = map[string]bool{}
			}
			exp[imp.From][imp.Stream] = true
		}
	}
	for host, streams := range exp {
		var list []string
		for s := range streams {
			list = append(list, s)
		}
		sort.Strings(list)
		p.plans[host].Exports = list
	}
	// Deterministic import/reunify order per host.
	for _, hp := range p.plans {
		sort.Slice(hp.Imports, func(i, j int) bool {
			a, b := hp.Imports[i], hp.Imports[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.Stream < b.Stream
		})
		sort.Slice(hp.Reunify, func(i, j int) bool {
			return hp.Reunify[i].Name < hp.Reunify[j].Name
		})
	}
}

func findNode(queries []*core.CompiledQuery, name string) *core.Node {
	for _, q := range queries {
		for _, n := range q.Nodes {
			if strings.EqualFold(n.Name, name) {
				return n
			}
		}
	}
	return nil
}

// order topologically sorts hosts producer-first (Kahn's algorithm,
// lexicographic tie-break), so starting hosts in Order guarantees every
// wire import dials a server whose stream already exists.
func (p *placer) order() []string {
	names := sortedHostNames(p.topo)
	indeg := map[string]int{}
	for _, n := range names {
		indeg[n] = 0
	}
	for from, tos := range p.edges {
		_ = from
		for to := range tos {
			indeg[to]++
		}
	}
	var out []string
	done := map[string]bool{}
	for len(out) < len(names) {
		picked := ""
		for _, n := range names {
			if !done[n] && indeg[n] == 0 {
				picked = n
				break
			}
		}
		if picked == "" {
			// Defensive: the placer never creates cycles, but emit the
			// remainder deterministically rather than spin.
			for _, n := range names {
				if !done[n] {
					out = append(out, n)
					done[n] = true
				}
			}
			break
		}
		done[picked] = true
		out = append(out, picked)
		for to := range p.edges[picked] {
			indeg[to]--
		}
	}
	return out
}
