// Package schema defines the value model, tuples, column schemas, and
// attribute ordering properties shared by every Gigascope component.
//
// Gigascope is a pure stream system: every query input and output is a
// stream of tuples. A tuple is a flat vector of Values whose layout is
// described by a Schema. Ordering properties attached to schema columns are
// the planner's currency for turning blocking operators (aggregation, join,
// merge) into stream operators.
package schema

import (
	"fmt"
	"strconv"
)

// Type enumerates the GSQL scalar types.
type Type uint8

const (
	TNull   Type = iota // absent value (unset heartbeat bound, SQL NULL)
	TBool               // boolean
	TUint               // unsigned 64-bit integer: timestamps, ports, counters
	TInt                // signed 64-bit integer
	TFloat              // 64-bit float
	TString             // byte string (packet payload slices, names)
	TIP                 // IPv4 address, stored as a 32-bit value
)

// String returns the GSQL name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "null"
	case TBool:
		return "bool"
	case TUint:
		return "uint"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TIP:
		return "ip"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType maps a GSQL type name to a Type. It reports false for unknown
// names.
func ParseType(s string) (Type, bool) {
	switch s {
	case "bool":
		return TBool, true
	case "uint", "ullong", "ulong", "ushort": // GSQL width aliases
		return TUint, true
	case "int", "llong", "long", "short":
		return TInt, true
	case "float", "double":
		return TFloat, true
	case "string", "v_str":
		return TString, true
	case "ip", "IP":
		return TIP, true
	}
	return TNull, false
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool { return t == TUint || t == TInt || t == TFloat }

// Ordered reports whether values of the type have a total order usable for
// ordering properties and comparison predicates.
func (t Type) Ordered() bool {
	return t == TUint || t == TInt || t == TFloat || t == TString || t == TIP
}

// Value is a single GSQL scalar. It is a compact tagged union: numeric
// payloads live in U or F, strings in B. The zero Value is NULL.
type Value struct {
	Type Type
	U    uint64 // bool (0/1), uint, int (two's-complement), IP
	F    float64
	B    []byte // string payload
}

// Null is the NULL value.
var Null = Value{}

// MakeBool returns a boolean Value.
func MakeBool(b bool) Value {
	var u uint64
	if b {
		u = 1
	}
	return Value{Type: TBool, U: u}
}

// MakeUint returns an unsigned integer Value.
func MakeUint(u uint64) Value { return Value{Type: TUint, U: u} }

// MakeInt returns a signed integer Value.
func MakeInt(i int64) Value { return Value{Type: TInt, U: uint64(i)} }

// MakeFloat returns a float Value.
func MakeFloat(f float64) Value { return Value{Type: TFloat, F: f} }

// MakeString returns a string Value. The byte slice is aliased, not copied.
func MakeString(b []byte) Value { return Value{Type: TString, B: b} }

// MakeStr returns a string Value from a Go string.
func MakeStr(s string) Value { return Value{Type: TString, B: []byte(s)} }

// MakeIP returns an IPv4 Value from its 32-bit big-endian representation.
func MakeIP(addr uint32) Value { return Value{Type: TIP, U: uint64(addr)} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Type == TNull }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.U != 0 }

// Uint returns the unsigned payload.
func (v Value) Uint() uint64 { return v.U }

// Int returns the signed payload.
func (v Value) Int() int64 { return int64(v.U) }

// Float returns the float payload, converting integer payloads.
func (v Value) Float() float64 {
	switch v.Type {
	case TFloat:
		return v.F
	case TInt:
		return float64(int64(v.U))
	default:
		return float64(v.U)
	}
}

// Bytes returns the string payload.
func (v Value) Bytes() []byte { return v.B }

// Str returns the string payload as a Go string.
func (v Value) Str() string { return string(v.B) }

// IP returns the IPv4 payload.
func (v Value) IP() uint32 { return uint32(v.U) }

// Clone returns a deep copy of the value (strings are copied).
func (v Value) Clone() Value {
	if v.Type == TString && v.B != nil {
		b := make([]byte, len(v.B))
		copy(b, v.B)
		v.B = b
	}
	return v
}

// Equal reports value equality. Values of different types are unequal
// except across numeric types, which compare by numeric value.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare returns -1, 0, or +1 ordering v against o. NULL sorts first.
// Numeric types compare by value across type; other mixed-type pairs
// compare by type tag so that Compare remains a total order.
func (v Value) Compare(o Value) int {
	if v.Type == TNull || o.Type == TNull {
		switch {
		case v.Type == o.Type:
			return 0
		case v.Type == TNull:
			return -1
		default:
			return 1
		}
	}
	if v.Type.Numeric() && o.Type.Numeric() {
		return compareNumeric(v, o)
	}
	if v.Type != o.Type {
		if v.Type < o.Type {
			return -1
		}
		return 1
	}
	switch v.Type {
	case TBool, TUint, TIP:
		return compareU64(v.U, o.U)
	case TString:
		return compareBytes(v.B, o.B)
	}
	return 0
}

func compareNumeric(v, o Value) int {
	if v.Type == TFloat || o.Type == TFloat {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Type == TInt || o.Type == TInt {
		// Compare as signed when either side is signed; a uint payload
		// above MaxInt64 is greater than any int64.
		if v.Type == TUint && v.U > 1<<63-1 {
			return 1
		}
		if o.Type == TUint && o.U > 1<<63-1 {
			return -1
		}
		a, b := int64(v.U), int64(o.U)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return compareU64(v.U, o.U)
}

func compareU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// String renders the value for display and test assertions.
func (v Value) String() string {
	switch v.Type {
	case TNull:
		return "NULL"
	case TBool:
		if v.U != 0 {
			return "true"
		}
		return "false"
	case TUint:
		return strconv.FormatUint(v.U, 10)
	case TInt:
		return strconv.FormatInt(int64(v.U), 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return strconv.Quote(string(v.B))
	case TIP:
		return FormatIP(uint32(v.U))
	}
	return "?"
}

// FormatIP renders a 32-bit IPv4 address in dotted-quad form.
func FormatIP(a uint32) string {
	var buf [15]byte
	b := strconv.AppendUint(buf[:0], uint64(a>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a&0xff), 10)
	return string(b)
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (uint32, error) {
	var addr uint32
	part, digits, dots := uint32(0), 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			part = part*10 + uint32(c-'0')
			digits++
			if part > 255 || digits > 3 {
				return 0, fmt.Errorf("schema: invalid IPv4 address %q", s)
			}
		case c == '.':
			if digits == 0 || dots == 3 {
				return 0, fmt.Errorf("schema: invalid IPv4 address %q", s)
			}
			addr = addr<<8 | part
			part, digits = 0, 0
			dots++
		default:
			return 0, fmt.Errorf("schema: invalid IPv4 address %q", s)
		}
	}
	if dots != 3 || digits == 0 {
		return 0, fmt.Errorf("schema: invalid IPv4 address %q", s)
	}
	return addr<<8 | part, nil
}
