package exec

import (
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// parseSelect parses a single select-item expression.
func parseSelect(item string) (gsql.Expr, error) {
	q, err := gsql.ParseQuery("SELECT " + item + " FROM x")
	if err != nil {
		return nil, err
	}
	return q.Select[0].Expr, nil
}

// LFTAAgg -------------------------------------------------------------------

// buildLFTACount builds the LFTA partial count: group by (time/60, destPort).
func buildLFTACount(t *testing.T, tableSize int) *LFTAAgg {
	t.Helper()
	s := testInSchema()
	group := compileSel(t, s, "x", "time/60", "destPort")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "port", "cnt")
	postSel := compileSel(t, post, "out", "tb", "port", "cnt")
	op, err := NewLFTAAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	}, tableSize)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestLFTAAggEvictsOnCollision(t *testing.T) {
	// A table of 16 slots with 500 distinct ports must evict; partials
	// must still sum to the true count downstream.
	op := buildLFTACount(t, 16)
	if op.TableSize() != 16 {
		t.Fatalf("table size = %d", op.TableSize())
	}
	var out []Message
	emit := Collect(&out)
	const n = 500
	for i := 0; i < n; i++ {
		op.Push(0, TupleMsg(mkRow(1, uint64(i%251), 1)), emit)
	}
	op.FlushAll(emit)
	if op.Stats().Evicted == 0 {
		t.Error("no evictions with 251 groups in 16 slots")
	}
	// Partial counts per port must total n.
	var total uint64
	perPort := make(map[uint64]uint64)
	for _, row := range tuplesOf(out) {
		total += row[2].Uint()
		perPort[row[1].Uint()] += row[2].Uint()
	}
	if total != n {
		t.Errorf("partials total %d, want %d", total, n)
	}
	for port, c := range perPort {
		want := uint64(n / 251)
		if port < n%251 {
			want++
		}
		if c != want {
			t.Errorf("port %d: %d, want %d", port, c, want)
		}
	}
}

func TestLFTAAggTemporalLocalityReduction(t *testing.T) {
	// Few hot groups in a tiny table: no evictions, massive reduction
	// (paper §3: "because of temporal locality, aggregation even with a
	// small hash table is effective in early data reduction").
	op := buildLFTACount(t, 16)
	var out []Message
	emit := Collect(&out)
	for i := 0; i < 10_000; i++ {
		op.Push(0, TupleMsg(mkRow(uint64(i/1000), uint64(i%4), 1)), emit)
	}
	op.FlushAll(emit)
	st := op.Stats()
	if st.Evicted != 0 {
		t.Errorf("evictions = %d with 4 hot groups", st.Evicted)
	}
	if st.Out >= st.In/100 {
		t.Errorf("reduction too small: %d in, %d out", st.In, st.Out)
	}
}

func TestLFTAAggFlushesOnOrderedAdvance(t *testing.T) {
	op := buildLFTACount(t, 64)
	var out []Message
	emit := Collect(&out)
	op.Push(0, TupleMsg(mkRow(10, 80, 1)), emit)
	op.Push(0, TupleMsg(mkRow(20, 80, 1)), emit)
	if len(tuplesOf(out)) != 0 {
		t.Fatal("premature flush")
	}
	op.Push(0, TupleMsg(mkRow(70, 80, 1)), emit)
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][2].Uint() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLFTAPlusSuperAggEqualsUnsplit(t *testing.T) {
	// Property: LFTA partial aggregation (any table size) followed by an
	// HFTA super-aggregation equals the single-level aggregate. This is
	// the §3 aggregate-splitting invariant end to end on operators.
	f := func(seed int64, sizeSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tableSize := 16 << (sizeSel % 4)

		lfta := buildLFTACountQuiet(tableSize)
		super := buildSuperSumQuiet()
		direct := buildDirectCountQuiet()

		var lftaOut []Message
		lemit := Collect(&lftaOut)
		var directOut []Message
		demit := Collect(&directOut)

		for i := 0; i < 400; i++ {
			ts := uint64(i / 4)
			port := uint64(r.Intn(40))
			row := mkRowQuiet(ts, port)
			lfta.Push(0, TupleMsg(row), lemit)
			direct.Push(0, TupleMsg(row), demit)
		}
		lfta.FlushAll(lemit)
		direct.FlushAll(demit)

		var superOut []Message
		semit := Collect(&superOut)
		for _, m := range lftaOut {
			if !m.IsHeartbeat() {
				super.Push(0, m, semit)
			}
		}
		super.FlushAll(semit)

		return sameGroupCounts(tuplesOf(superOut), tuplesOf(directOut))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func mkRowQuiet(ts, port uint64) schema.Tuple {
	return schema.Tuple{
		schema.MakeUint(ts),
		schema.MakeIP(1),
		schema.MakeUint(port),
		schema.MakeUint(1),
		schema.MakeStr(""),
		schema.MakeInt(0),
		schema.MakeFloat(0),
	}
}

func quietCompile(s *schema.Schema, binding string, items ...string) []Expr {
	var out []Expr
	for _, it := range items {
		q, err := parseSelect(it)
		if err != nil {
			panic(err)
		}
		c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(s, binding)}
		e, err := c.Compile(q)
		if err != nil {
			panic(err)
		}
		out = append(out, e)
	}
	return out
}

func buildLFTACountQuiet(tableSize int) *LFTAAgg {
	s := quietInSchema()
	group := quietCompile(s, "x", "time/60", "destPort")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "port", "cnt")
	postSel := quietCompile(post, "out", "tb", "port", "cnt")
	op, err := NewLFTAAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	}, tableSize)
	if err != nil {
		panic(err)
	}
	return op
}

// buildSuperSumQuiet consumes (tb, port, cnt) partials and groups by
// (tb, port) summing cnt — the HFTA half of a split count.
func buildSuperSumQuiet() *Agg {
	in := outSchema("tb", "port", "cnt")
	group := quietCompile(in, "out", "tb", "port")
	sum, _ := funcs.Global.Aggregate("sum")
	arg := quietCompile(in, "out", "cnt")[0]
	post := outSchema("tb", "port", "cnt")
	postSel := quietCompile(post, "out", "tb", "port", "cnt")
	op, err := NewAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: sum, Arg: arg, ArgType: schema.TUint}},
		PostSelect: postSel, Out: post,
	})
	if err != nil {
		panic(err)
	}
	return op
}

func buildDirectCountQuiet() *Agg {
	s := quietInSchema()
	group := quietCompile(s, "x", "time/60", "destPort")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "port", "cnt")
	postSel := quietCompile(post, "out", "tb", "port", "cnt")
	op, err := NewAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	})
	if err != nil {
		panic(err)
	}
	return op
}

func quietInSchema() *schema.Schema {
	return &schema.Schema{
		Name: "s", Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "srcIP", Type: schema.TIP},
			{Name: "destPort", Type: schema.TUint},
			{Name: "len", Type: schema.TUint},
			{Name: "payload", Type: schema.TString},
			{Name: "delta", Type: schema.TInt},
			{Name: "ratio", Type: schema.TFloat},
		},
	}
}

func sameGroupCounts(a, b []schema.Tuple) bool {
	key := func(t schema.Tuple) [2]uint64 { return [2]uint64{t[0].Uint(), t[1].Uint()} }
	ma := make(map[[2]uint64]uint64)
	for _, t := range a {
		ma[key(t)] += t[2].Uint()
	}
	mb := make(map[[2]uint64]uint64)
	for _, t := range b {
		mb[key(t)] += t[2].Uint()
	}
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

// Merge ----------------------------------------------------------------------

func mergeSchema() *schema.Schema {
	return outSchema("time", "val")
}

func mrow(ts, val uint64) schema.Tuple {
	return schema.Tuple{schema.MakeUint(ts), schema.MakeUint(val)}
}

func TestMergePreservesOrder(t *testing.T) {
	m, err := NewMerge([]int{0, 0}, mergeSchema())
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	// Interleave two ordered streams.
	m.Push(0, TupleMsg(mrow(1, 100)), emit)
	m.Push(1, TupleMsg(mrow(2, 200)), emit)
	m.Push(0, TupleMsg(mrow(3, 101)), emit)
	m.Push(1, TupleMsg(mrow(4, 201)), emit)
	m.Push(0, TupleMsg(mrow(5, 102)), emit)
	m.FlushAll(emit)
	rows := tuplesOf(out)
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].Uint() < rows[i-1][0].Uint() {
			t.Fatalf("order violated at %d: %v", i, rows)
		}
	}
}

func TestMergeOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := NewMerge([]int{0, 0, 0}, mergeSchema())
		if err != nil {
			return false
		}
		var out []Message
		emit := Collect(&out)
		// Three independently increasing streams pushed in random
		// interleaving.
		ts := [3]uint64{}
		var want []uint64
		for i := 0; i < 300; i++ {
			p := r.Intn(3)
			ts[p] += uint64(r.Intn(5))
			want = append(want, ts[p])
			m.Push(p, TupleMsg(mrow(ts[p], uint64(p))), emit)
		}
		m.FlushAll(emit)
		rows := tuplesOf(out)
		if len(rows) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, rowt := range rows {
			if rowt[0].Uint() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeBlocksOnSilentInputThenHeartbeatUnblocks(t *testing.T) {
	m, err := NewMerge([]int{0, 0}, mergeSchema())
	if err != nil {
		t.Fatal(err)
	}
	var blockedPort = -1
	m.OnBlocked = func(p int) { blockedPort = p }
	var out []Message
	emit := Collect(&out)
	// Port 1 is silent; port 0 is fast.
	for ts := uint64(1); ts <= 10; ts++ {
		m.Push(0, TupleMsg(mrow(ts, 0)), emit)
	}
	if len(tuplesOf(out)) != 0 {
		t.Fatalf("emitted without port-1 information: %v", out)
	}
	if m.Buffered(0) != 10 || m.MaxBuffered() != 10 {
		t.Errorf("buffered = %d", m.Buffered(0))
	}
	if blockedPort != 1 {
		t.Errorf("OnBlocked port = %d", blockedPort)
	}
	// Heartbeat from port 1: time >= 7 releases tuples 1..7.
	bounds := schema.Tuple{schema.MakeUint(7), schema.Null}
	m.Push(1, HeartbeatMsg(bounds), emit)
	rows := tuplesOf(out)
	if len(rows) != 7 {
		t.Fatalf("released %d rows, want 7: %v", len(rows), rows)
	}
	// The merged heartbeat carries the min watermark.
	last := out[len(out)-1]
	if !last.IsHeartbeat() || last.Bounds[0].Uint() != 7 {
		t.Errorf("merged HB = %v", last)
	}
}

func TestMergePortDone(t *testing.T) {
	m, _ := NewMerge([]int{0, 0}, mergeSchema())
	var out []Message
	emit := Collect(&out)
	m.Push(0, TupleMsg(mrow(5, 0)), emit)
	m.PortDone(1, emit)
	if rows := tuplesOf(out); len(rows) != 1 {
		t.Fatalf("rows after PortDone = %v", rows)
	}
}

func TestMergeMaxBufferDegradesGracefully(t *testing.T) {
	m, _ := NewMerge([]int{0, 0}, mergeSchema())
	m.MaxBuffer = 5
	var out []Message
	emit := Collect(&out)
	for ts := uint64(1); ts <= 20; ts++ {
		m.Push(0, TupleMsg(mrow(ts, 0)), emit)
	}
	if m.Buffered(0) > 5 {
		t.Errorf("buffer grew to %d despite MaxBuffer", m.Buffered(0))
	}
	if m.Stats().Reordered == 0 {
		t.Error("no disorder events counted")
	}
	if d := m.Stats().Dropped; d != 0 {
		t.Errorf("Dropped = %d for tuples that were emitted, not lost", d)
	}
	if len(tuplesOf(out)) != 15 {
		t.Errorf("emitted %d", len(tuplesOf(out)))
	}
	// Overflow emissions plus regular drain must conserve every input
	// tuple once the stream flushes: nothing is lost, only reordered.
	m.FlushAll(emit)
	if got := len(tuplesOf(out)); got != 20 {
		t.Errorf("total emitted after flush = %d, want all 20 inputs", got)
	}
}

func TestMergeRejectsBadConfig(t *testing.T) {
	if _, err := NewMerge([]int{0}, mergeSchema()); err == nil {
		t.Error("single-input merge accepted")
	}
	m, _ := NewMerge([]int{0, 0}, mergeSchema())
	if err := m.Push(5, TupleMsg(mrow(1, 1)), func(Message) {}); err == nil {
		t.Error("out-of-range port accepted")
	}
}
