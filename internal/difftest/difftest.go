// Package difftest is the differential correctness harness: it generates
// seeded random GSQL query sets and traffic traces (internal/gsql,
// internal/netsim), runs each case through the real pipeline across a
// configuration matrix (batch size x shard count x fault injection), and
// compares the output of every query against the naive reference oracle
// (internal/oracle).
//
// The comparison has two halves. Row content is compared as a canonical
// multiset (sorted packed rows): operator flush batching, shard merge ties
// and heartbeat timing legitimately permute arrival order between configs,
// so exact sequences are not comparable — but the full set of rows must be
// byte-identical. Ordering is then checked separately against the plan's
// own promise: every output column the compiler declares ordered (the
// imputed ordering of the plan's output schema) is verified with a
// schema.OrderChecker over the actual arrival order.
//
// Failures are written as self-contained replayable artifacts (seed, query
// text, trace, config) by repro.go and shrunk by minimize.go.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"gigascope"
	"gigascope/internal/core"
	"gigascope/internal/faultinject"
	"gigascope/internal/gsql"
	"gigascope/internal/netsim"
	"gigascope/internal/oracle"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Config is one cell of the equivalence matrix. Every cell must produce
// the same row multiset for the same case; only arrival order may differ.
type Config struct {
	// MaxBatch is the pipeline flush threshold (1 approximates
	// per-message delivery; 4096 exercises maximal batching).
	MaxBatch int
	// Shards is the capture-path RSS shard count.
	Shards int
	// Faults pre-applies seeded capture faults (truncation, bad header
	// lengths, IP options) to the trace. The identical faulted bytes feed
	// both the pipeline and the oracle, so results must still match:
	// both sides drop packets whose referenced fields no longer parse.
	Faults bool
	// Columnar runs the capture path through the column-batch kernels;
	// false pins the row-at-a-time reference pipeline. Both halves of the
	// axis must match the oracle — and therefore each other — byte for
	// byte. (False is also what legacy repro artifacts, recorded before
	// the columnar path existed, deserialize to.)
	Columnar bool
	// Distributed, when nonzero, runs the case through the placement
	// coordinator across that many in-process Systems wired over unix
	// sockets (see DistTopology for the 2/3/4-node presets) instead of a
	// single System. Zero — what legacy artifacts deserialize to — is the
	// ordinary single-process pipeline.
	Distributed int
}

// Name returns a short config label used in repro directory names.
func (c Config) Name() string {
	s := fmt.Sprintf("b%d_s%d", c.MaxBatch, c.Shards)
	if c.Distributed > 0 {
		s += fmt.Sprintf("_d%d", c.Distributed)
	}
	if c.Columnar {
		s += "_col"
	}
	if c.Faults {
		s += "_faults"
	}
	return s
}

// Matrix returns the full equivalence matrix: {1, 64, 4096} batch sizes x
// {1, 4} shards x columnar off/on x faults off/on.
func Matrix() []Config {
	var out []Config
	for _, b := range []int{1, 64, 4096} {
		for _, sh := range []int{1, 4} {
			for _, col := range []bool{false, true} {
				for _, f := range []bool{false, true} {
					out = append(out, Config{MaxBatch: b, Shards: sh, Columnar: col, Faults: f})
				}
			}
		}
	}
	return out
}

// Case is one differential test case: a seeded query set plus a recorded
// traffic trace. The same case runs under every matrix Config.
type Case struct {
	Seed    int64
	Queries []string
	Params  map[string]schema.Value
	Trace   []pkt.Packet
	// Script makes the pipeline compile all queries as one script
	// (AddScriptParams), enabling the cross-query rewrites — shared LFTAs
	// and the common prefilter. The oracle is unchanged: it evaluates each
	// query naively and independently, so any sharing artifact in the
	// pipeline shows up as a divergence.
	Script bool
}

// NewCase generates the queries and trace for seed.
func NewCase(seed int64, tracePackets int) (*Case, error) {
	gen := gsql.GenerateCase(seed)
	trace, err := GenTrace(seed, tracePackets)
	if err != nil {
		return nil, err
	}
	return &Case{Seed: seed, Queries: gen.Texts(), Params: gen.Params, Trace: trace}, nil
}

// NewScriptCase generates a multi-query script case for seed: 2..8
// queries with overlapping predicates and sources (gsql.
// GenerateScriptCase), compiled as one unit so shared-LFTA elimination
// and common-prefilter extraction fire.
func NewScriptCase(seed int64, tracePackets int) (*Case, error) {
	gen := gsql.GenerateScriptCase(seed)
	trace, err := GenTrace(seed, tracePackets)
	if err != nil {
		return nil, err
	}
	return &Case{Seed: seed, Queries: gen.Texts(), Params: gen.Params, Trace: trace, Script: true}, nil
}

// GenTrace records n packets of seeded synthetic traffic: always web and
// DNS classes, sometimes a bursty bulk class, to exercise TCP, UDP, HTTP
// payloads, and idle gaps.
func GenTrace(seed int64, n int) ([]pkt.Packet, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed7ace))
	// Rates are deliberately low so a ~1200-packet trace spans several
	// SECONDS of virtual time: the `time` column (second granularity) must
	// take many distinct values, or every time-ordering check and
	// time-bucketed aggregation in the matrix is vacuously trivial.
	classes := []netsim.Class{
		{Name: "web", RateMbps: 0.6, PktBytes: 600, DstPort: 80, Proto: pkt.ProtoTCP,
			Payload: netsim.PayloadHTTP, HTTPFraction: 0.7, Flows: 64},
		{Name: "dns", RateMbps: 0.12, PktBytes: 120, DstPort: 53, Proto: pkt.ProtoUDP, Flows: 32},
	}
	if rng.Intn(2) == 0 {
		classes = append(classes, netsim.Class{Name: "bulk", RateMbps: 0.5, PktBytes: 1200,
			DstPort: 8080, Proto: pkt.ProtoTCP, Flows: 16,
			Bursty: true, MeanOnSeconds: 0.4, MeanOffSeconds: 0.4})
	}
	// Start well past virtual time zero: banded join windows subtract a
	// slack from the ordered column, and at time 0 the literal predicate
	// (uint arithmetic, wraps) and the decomposed window (signed slack)
	// would legitimately disagree.
	return netsim.Record(netsim.Config{Seed: seed, Classes: classes, StartUsec: 30_000_000}, n)
}

// FaultedTrace applies the seeded dirty-tap fault mix to a trace,
// returning a new slice (the input is untouched). Clock faults are
// excluded: both sides must see identical, nondecreasing timestamps.
// Faults are applied to the trace once, up front, rather than via
// System.BindFaults, so the pipeline and the oracle consume byte-identical
// packets regardless of injection order.
func FaultedTrace(seed int64, trace []pkt.Packet) []pkt.Packet {
	inj := faultinject.New(faultinject.Config{
		Seed:     seed ^ 0x0fa517,
		Truncate: 0.04, BadIHL: 0.03, BadTotalLen: 0.03, Options: 0.04,
	})
	out := make([]pkt.Packet, len(trace))
	for i := range trace {
		p := trace[i]
		if q, _, ok := inj.Apply(&p); ok && q != nil {
			out[i] = *q
		} else {
			out[i] = p
		}
	}
	return out
}

// effectiveTrace returns the trace a config actually consumes.
func (c *Case) effectiveTrace(cfg Config) []pkt.Packet {
	if cfg.Faults {
		return FaultedTrace(c.Seed, c.Trace)
	}
	return c.Trace
}

// queryParams returns one query's name and its parameter bindings,
// filtered down to the names it declares (AddQuery rejects undeclared
// parameters).
func queryParams(text string, params map[string]schema.Value) (string, map[string]schema.Value, error) {
	q, err := gsql.ParseQuery(text)
	if err != nil {
		return "", nil, err
	}
	declared := q.Params()
	if len(declared) == 0 {
		return q.Name(), nil, nil
	}
	out := make(map[string]schema.Value, len(declared))
	for name := range declared {
		v, ok := params[name]
		if !ok {
			return "", nil, fmt.Errorf("difftest: query %s declares parameter %s with no value", q.Name(), name)
		}
		out[name] = v
	}
	return q.Name(), out, nil
}

// PipelineRun is the observable output of one pipeline execution: per-query
// tuples in arrival order plus the compiled plans.
type PipelineRun struct {
	Rows  map[string][]schema.Tuple
	Plans map[string]*core.CompiledQuery
}

// RunPipeline executes the case's queries through the real system under
// cfg and collects every query's output in arrival order. Buffers are
// sized generously and each subscription is drained concurrently so that
// load shedding cannot occur; any shed, quarantine, or merge reorder is
// reported as a harness error (it would make the comparison meaningless),
// not as a mismatch.
func RunPipeline(c *Case, cfg Config) (*PipelineRun, error) {
	sysCfg := gigascope.Config{
		RingSize:        8192,
		MaxBatch:        cfg.MaxBatch,
		InboxDepth:      4096,
		HeartbeatUsec:   250_000,
		Shards:          cfg.Shards,
		DisableColumnar: !cfg.Columnar,
	}
	if cfg.Faults {
		// The matrix's fault cells run with quarantine recovery enabled,
		// matching production config; dirty frames must still never
		// quarantine a query (they are dropped at extraction).
		sysCfg.QuarantineRestartUsec = 50_000
	}
	sys, err := gigascope.New(sysCfg)
	if err != nil {
		return nil, err
	}
	run := &PipelineRun{
		Rows:  make(map[string][]schema.Tuple, len(c.Queries)),
		Plans: make(map[string]*core.CompiledQuery, len(c.Queries)),
	}
	var names []string
	if c.Script {
		// One compilation unit: sharing passes on. Parameters rebind by
		// query name, filtered to each query's declared set.
		perQuery := make(map[string]map[string]schema.Value)
		for _, text := range c.Queries {
			name, p, err := queryParams(text, c.Params)
			if err != nil {
				return nil, err
			}
			if p != nil {
				perQuery[name] = p
			}
			names = append(names, name)
		}
		if err := sys.AddScriptParams(strings.Join(c.Queries, ";\n"), perQuery); err != nil {
			return nil, fmt.Errorf("difftest: AddScriptParams: %w", err)
		}
		for _, name := range names {
			if plan, ok := sys.Plan(name); ok {
				run.Plans[name] = plan
			}
		}
	} else {
		for _, text := range c.Queries {
			_, p, err := queryParams(text, c.Params)
			if err != nil {
				return nil, err
			}
			plan, err := sys.AddQuery(text, p)
			if err != nil {
				return nil, fmt.Errorf("difftest: AddQuery: %w", err)
			}
			run.Plans[plan.Name] = plan
			names = append(names, plan.Name)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		sub, err := sys.Subscribe(name, 4096)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(name string, sub *gigascope.Subscription) {
			defer wg.Done()
			var rows []schema.Tuple
			for batch := range sub.C {
				for _, m := range batch {
					if m.IsHeartbeat() {
						continue
					}
					// Batches are shared and read-only; clone the tuple so
					// the comparison owns its rows.
					rows = append(rows, append(schema.Tuple(nil), m.Tuple...))
				}
			}
			mu.Lock()
			run.Rows[name] = rows
			mu.Unlock()
		}(name, sub)
	}

	if err := sys.Start(); err != nil {
		return nil, err
	}
	trace := c.effectiveTrace(cfg)
	const chunk = 256
	for i := 0; i < len(trace); i += chunk {
		end := i + chunk
		if end > len(trace) {
			end = len(trace)
		}
		batch := make([]*gigascope.Packet, 0, end-i)
		for j := i; j < end; j++ {
			batch = append(batch, &trace[j])
		}
		sys.InjectBatch("eth0", batch)
		sys.AdvanceClock(trace[end-1].TS)
	}
	if len(trace) > 0 {
		// Push virtual time far past the last packet so every window,
		// band, and join slack drains through ordinary heartbeat flushing
		// before the shutdown flush.
		sys.AdvanceClock(trace[len(trace)-1].TS + 10_000_000)
	}
	sys.Stop()
	wg.Wait()

	for _, st := range sys.Stats() {
		switch {
		case st.RingDrop > 0:
			return nil, fmt.Errorf("difftest: harness undersized: node %s shed %d tuples at its rings", st.Name, st.RingDrop)
		case st.Quarantines > 0:
			return nil, fmt.Errorf("difftest: node %s quarantined %d times (%s)", st.Name, st.Quarantines, st.QuarantineReason)
		case st.QuarDrop > 0:
			return nil, fmt.Errorf("difftest: node %s dropped %d tuples while quarantined", st.Name, st.QuarDrop)
		case st.Op.Reordered > 0:
			return nil, fmt.Errorf("difftest: node %s emitted %d tuples out of order under buffer pressure", st.Name, st.Op.Reordered)
		}
	}
	return run, nil
}

// Mismatch describes one confirmed pipeline/oracle divergence.
type Mismatch struct {
	Query  string
	Config Config
	// Kind is "multiset" (row content differs), "ordering" (a declared
	// output ordering was violated in arrival order), or "bounded-error"
	// (a sketched result drifted outside its declared error bound).
	Kind   string
	Detail string
	// ObservedErr is the maximum relative error measured before the check
	// failed. Only set for "bounded-error" mismatches; -1 when the rows
	// could not even be aligned (JSON cannot carry +Inf).
	ObservedErr float64
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("query %s under %s: %s mismatch: %s", m.Query, m.Config.Name(), m.Kind, m.Detail)
}

// OracleResults evaluates the case's queries with the reference oracle
// over the (possibly faulted) trace, keyed by query name.
func OracleResults(c *Case, faults bool) (map[string]*oracle.Result, error) {
	trace := c.Trace
	if faults {
		trace = FaultedTrace(c.Seed, c.Trace)
	}
	results, err := oracle.Eval(c.Queries, c.Params, trace)
	if err != nil {
		return nil, fmt.Errorf("difftest: oracle: %w", err)
	}
	out := make(map[string]*oracle.Result, len(results))
	for _, r := range results {
		out[r.Name] = r
	}
	return out, nil
}

// CheckConfig runs the pipeline under cfg and compares against
// pre-computed oracle results. It returns a non-nil Mismatch on
// divergence, and an error only for harness problems (compile failure,
// shedding) that make the comparison itself invalid.
func CheckConfig(c *Case, cfg Config, want map[string]*oracle.Result) (*Mismatch, error) {
	var run *PipelineRun
	var err error
	if cfg.Distributed > 0 {
		run, err = RunDistributed(c, cfg)
	} else {
		run, err = RunPipeline(c, cfg)
	}
	if err != nil {
		return nil, err
	}
	for name, res := range want {
		got := run.Rows[name]
		if m := compareMultiset(name, cfg, res, got); m != nil {
			return m, nil
		}
		plan := run.Plans[name]
		if plan == nil {
			continue
		}
		if m := checkOrdering(name, cfg, plan.Output().Out, got); m != nil {
			return m, nil
		}
	}
	return nil, nil
}

// Check computes the oracle results itself and compares one config; used
// by the minimizer and artifact replay.
func Check(c *Case, cfg Config) (*Mismatch, error) {
	want, err := OracleResults(c, cfg.Faults)
	if err != nil {
		return nil, err
	}
	return CheckConfig(c, cfg, want)
}

// compareMultiset compares packed rows as sorted multisets.
func compareMultiset(name string, cfg Config, want *oracle.Result, got []schema.Tuple) *Mismatch {
	wantKeys := packRows(want.Rows)
	gotKeys := packRows(got)
	missing, extra := diffSorted(wantKeys, gotKeys)
	if len(missing) == 0 && len(extra) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "oracle has %d rows, pipeline has %d", len(want.Rows), len(got))
	renderSide(&b, "missing from pipeline", missing)
	renderSide(&b, "extra in pipeline", extra)
	return &Mismatch{Query: name, Config: cfg, Kind: "multiset", Detail: b.String()}
}

func packRows(rows []schema.Tuple) []string {
	keys := make([]string, len(rows))
	for i, t := range rows {
		keys[i] = string(t.Pack(nil))
	}
	sort.Strings(keys)
	return keys
}

// diffSorted returns elements only in a (missing) and only in b (extra).
func diffSorted(a, b []string) (missing, extra []string) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			missing = append(missing, a[i])
			i++
		default:
			extra = append(extra, b[j])
			j++
		}
	}
	missing = append(missing, a[i:]...)
	extra = append(extra, b[j:]...)
	return missing, extra
}

func renderSide(b *strings.Builder, label string, keys []string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(b, "; %s: %d rows", label, len(keys))
	const show = 3
	for i, k := range keys {
		if i == show {
			fmt.Fprintf(b, ", ...")
			break
		}
		if t, _, err := schema.Unpack([]byte(k)); err == nil {
			fmt.Fprintf(b, " %s", t.String())
		}
	}
}

// checkOrdering verifies every output column whose declared (imputed)
// ordering is checkable against the pipeline's actual arrival order.
func checkOrdering(name string, cfg Config, out *schema.Schema, rows []schema.Tuple) *Mismatch {
	for idx, col := range out.Cols {
		ord := col.Ordering
		if ord.Kind == schema.OrderNone || ord.Kind == schema.OrderNonrepeating {
			continue
		}
		var key func(schema.Tuple) string
		if ord.Kind == schema.OrderIncreasingInGroup {
			gidx := make([]int, 0, len(ord.Group))
			ok := true
			for _, g := range ord.Group {
				i, c := out.Col(g)
				if c == nil {
					ok = false
					break
				}
				gidx = append(gidx, i)
			}
			if !ok {
				// The grouping fields were projected away; the in-group
				// property is not checkable on this output.
				continue
			}
			key = func(t schema.Tuple) string {
				g := make(schema.Tuple, 0, len(gidx))
				for _, i := range gidx {
					g = append(g, t[i])
				}
				return string(g.Pack(nil))
			}
		}
		chk := schema.NewOrderChecker(ord, key)
		for rowIdx, t := range rows {
			if idx >= len(t) {
				continue
			}
			if err := chk.Observe(t[idx], t); err != nil {
				return &Mismatch{Query: name, Config: cfg, Kind: "ordering",
					Detail: fmt.Sprintf("column %s row %d: %v", col.Name, rowIdx, err)}
			}
		}
	}
	return nil
}
