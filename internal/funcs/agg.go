package funcs

import "gigascope/internal/schema"

// Built-in aggregate functions: count, sum, min, max, avg, and the
// and_agg/or_agg bit aggregates used in flag analysis. Each declares its
// sub/super decomposition for LFTA/HFTA query splitting.

type countState struct{ n uint64 }

func (s *countState) Add(schema.Value)     { s.n++ }
func (s *countState) Result() schema.Value { return schema.MakeUint(s.n) }

type sumState struct {
	ty schema.Type
	u  uint64
	i  int64
	f  float64
}

func (s *sumState) Add(v schema.Value) {
	switch s.ty {
	case schema.TFloat:
		s.f += v.Float()
	case schema.TInt:
		s.i += v.Int()
	default:
		s.u += v.Uint()
	}
}

func (s *sumState) Result() schema.Value {
	switch s.ty {
	case schema.TFloat:
		return schema.MakeFloat(s.f)
	case schema.TInt:
		return schema.MakeInt(s.i)
	default:
		return schema.MakeUint(s.u)
	}
}

type extremeState struct {
	want int // -1 for min, +1 for max
	seen bool
	cur  schema.Value
}

func (s *extremeState) Add(v schema.Value) {
	if !s.seen || v.Compare(s.cur)*s.want > 0 {
		s.seen = true
		s.cur = v.Clone()
	}
}

func (s *extremeState) Result() schema.Value {
	if !s.seen {
		return schema.Null
	}
	return s.cur
}

type avgState struct {
	sum float64
	n   uint64
}

func (s *avgState) Add(v schema.Value) {
	s.sum += v.Float()
	s.n++
}

func (s *avgState) Result() schema.Value {
	if s.n == 0 {
		return schema.Null
	}
	return schema.MakeFloat(s.sum / float64(s.n))
}

type bitState struct {
	or   bool // OR-aggregate when true, AND-aggregate otherwise
	seen bool
	bits uint64
}

func (s *bitState) Add(v schema.Value) {
	if !s.seen {
		s.seen, s.bits = true, v.Uint()
		return
	}
	if s.or {
		s.bits |= v.Uint()
	} else {
		s.bits &= v.Uint()
	}
}

func (s *bitState) Result() schema.Value {
	if !s.seen {
		return schema.Null
	}
	return schema.MakeUint(s.bits)
}

func retSame(arg schema.Type) schema.Type { return arg }

func registerBuiltinAggregates(r *Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.RegisterAggregate(&Aggregate{
		Name:     "count",
		TakesArg: false,
		Ret:      func(schema.Type) schema.Type { return schema.TUint },
		New:      func(schema.Type) AggState { return &countState{} },
		// count splits into an LFTA count whose partials are summed.
		Subs: []string{"count"}, Supers: []string{"sum"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "sum",
		TakesArg: true,
		Ret:      retSame,
		New:      func(arg schema.Type) AggState { return &sumState{ty: arg} },
		Subs:     []string{"sum"}, Supers: []string{"sum"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "min",
		TakesArg: true,
		Ret:      retSame,
		New:      func(schema.Type) AggState { return &extremeState{want: -1} },
		Subs:     []string{"min"}, Supers: []string{"min"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "max",
		TakesArg: true,
		Ret:      retSame,
		New:      func(schema.Type) AggState { return &extremeState{want: 1} },
		Subs:     []string{"max"}, Supers: []string{"max"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "avg",
		TakesArg: true,
		Ret:      func(schema.Type) schema.Type { return schema.TFloat },
		New:      func(schema.Type) AggState { return &avgState{} },
		// avg(x) splits into LFTA (sum(x), count(x)); the HFTA sums both
		// and takes the ratio.
		Subs: []string{"sum", "count_arg"}, Supers: []string{"sum", "sum"}, Final: FinalRatio,
	}))
	// count_arg is the internal per-argument count used by the avg
	// decomposition; it is registered so split plans can reference it.
	must(r.RegisterAggregate(&Aggregate{
		Name:     "count_arg",
		TakesArg: true,
		Ret:      func(schema.Type) schema.Type { return schema.TUint },
		New:      func(schema.Type) AggState { return &countState{} },
		Subs:     []string{"count_arg"}, Supers: []string{"sum"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "or_agg",
		TakesArg: true,
		Ret:      func(schema.Type) schema.Type { return schema.TUint },
		New:      func(schema.Type) AggState { return &bitState{or: true} },
		Subs:     []string{"or_agg"}, Supers: []string{"or_agg"}, Final: FinalIdentity,
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name:     "and_agg",
		TakesArg: true,
		Ret:      func(schema.Type) schema.Type { return schema.TUint },
		New:      func(schema.Type) AggState { return &bitState{or: false} },
		Subs:     []string{"and_agg"}, Supers: []string{"and_agg"}, Final: FinalIdentity,
	}))
}
