package rts

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/ring"
	"gigascope/internal/schema"
)

// queryNode hosts one instantiated plan node. HFTA nodes run their own
// goroutine fed by input subscriptions; LFTA nodes are executed inline on
// their interface's capture path (paper §3: LFTAs "are linked into the
// stream manager").
//
// Output moves in batches: emissions accumulate in pending and cross the
// ring as one exec.Batch when the flush policy fires. Flush reasons:
//
//   - size:   pending reached Config.MaxBatch;
//   - hb:     a heartbeat was appended (LFTA and source nodes flush so
//     downstream sees ordering bounds immediately — virtual-clock
//     latency is unchanged vs. the per-message pipeline);
//   - window: an execution window closed (an HFTA finished one inbox
//     batch, a capture poll window ended, or the stream shut down).
type queryNode struct {
	m     *Manager
	name  string
	level core.Level
	// node/inst are set for compiled plan nodes; user-written nodes
	// (AddUserNode) carry only op; clock-driven source nodes
	// (AddSourceNode) carry only src.
	node      *core.Node
	inst      *core.Instance
	op        exec.Operator
	src       SourceNode
	srcClosed bool
	// peer/remoteReq are set for remote source nodes (AddRemoteSource):
	// peer is the transport client polled for failure stats (immutable
	// after construction); remoteReq forwards heartbeat demands to the
	// peer (guarded by mu — the transport installs it after registration).
	peer      PeerMonitor
	remoteReq func()
	pub       *publisher
	inputs    []*Subscription
	// gateKey is the lower-cased compiled-node name the interface gate
	// looks the LFTA up under (shard instances share the original name).
	gateKey string

	// Batch assembly. pending is touched only by the node's single
	// emitting goroutine (HFTA loop, or capture path under mu).
	// pendingTuples counts the non-heartbeat messages in pending,
	// maintained incrementally so publish-time shed accounting never
	// rescans the batch.
	maxBatch      int
	hbFlush       bool // flush on heartbeat (LFTA/source nodes)
	pending       exec.Batch
	pendingTuples int
	flushSize     atomic.Uint64
	flushHB       atomic.Uint64
	flushWindow   atomic.Uint64

	// LFTA-side counters; the interface goroutine is the only writer.
	packets atomic.Uint64

	// Runtime ordering validation (Config.ValidateOrdering).
	checkers   []*schema.OrderChecker
	violations atomic.Uint64

	// HFTA goroutine state. started is atomic: Manager.Start (and AddQuery
	// after start) write it under the manager lock while SetParams reads it
	// from arbitrary goroutines.
	inbox   chan portBatch
	cmds    chan func()
	done    chan struct{}
	started atomic.Bool
	mu      sync.Mutex // guards inline LFTA execution vs setParams

	// Ring-fed input (shard→reunify hop): when ringIns is non-empty the
	// node consumes SPSC rings directly on ringLoop instead of channel
	// subscriptions + forwarder goroutines. ringWaker is shared by all
	// input rings; ringReqs[port] demands a heartbeat from that port's
	// producer (the per-shard LFTA). Wired before start.
	ringIns   []*ring.SPSC[exec.Batch]
	ringWaker *ring.Waker
	ringReqs  []func()

	// Quarantine state. A panic escaping the operator poisons its state:
	// the node detaches from its publisher (everything it would emit is
	// discarded and counted in quarDrop) until a clean-state restart, or
	// forever when restart is disabled or impossible. The flag and
	// counters are atomic for lock-free stats; the restart bookkeeping
	// (restartAt, backoffUsec, params) changes only under qn.mu.
	quarantined atomic.Bool
	quarantines atomic.Uint64 // times the node entered quarantine
	restarts    atomic.Uint64 // clean-state restarts performed
	quarDrop    atomic.Uint64 // tuples discarded while quarantined
	opErrors    atomic.Uint64 // non-fatal operator errors (Push returned error)
	quarReason  atomic.Value  // string: last panic message
	restartAt   uint64        // virtual-clock eligibility for restart; 0 = permanent
	backoffUsec uint64        // current restart backoff (doubles per quarantine)
	params      map[string]schema.Value // instantiation bindings, for clean restarts

	// instMu guards the inst/op pointer identity for stats() readers
	// against clean-state restart swaps; the executing goroutine itself
	// is always in the swapper's synchronization domain and reads the
	// fields directly.
	instMu sync.Mutex

	// approxMode records whether the node's aggregation has been demoted to
	// sketched aggregates (exec.Demotable), so a clean-state restart comes
	// back in the same mode. Executing-context only, like params.
	approxMode bool

	// shardIdx is 0 for unsharded nodes and i+1 for the i'th shard instance
	// of a sharded LFTA (see Manager.addShardedLFTA).
	shardIdx int
	// shardsOf lists the per-shard LFTA instances feeding this node when it
	// is a shard-reunifying merge; SetParams on the original query name
	// forwards to each shard.
	shardsOf []*queryNode
}

type portBatch struct {
	port  int
	batch exec.Batch
	done  bool // the port's input stream ended
}

// start launches the HFTA node goroutine and its input forwarders. It
// holds qn.mu across the transition so setParams cannot rebind directly
// (believing the node idle) while the loop goroutine comes up — see the
// started re-check in setParams.
func (qn *queryNode) start() {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if !qn.started.CompareAndSwap(false, true) {
		return
	}
	qn.cmds = make(chan func(), 4)
	qn.done = make(chan struct{})

	qn.wireMerge()

	if len(qn.ringIns) > 0 {
		// Ring-fed node: no forwarder goroutines, no inbox. The loop
		// polls the SPSC rings directly and parks on the shared waker.
		qn.m.wg.Add(1)
		go func() {
			defer qn.m.wg.Done()
			qn.ringLoop()
		}()
		return
	}

	qn.inbox = make(chan portBatch, qn.m.cfg.inboxDepth())

	var fwd sync.WaitGroup
	for i, sub := range qn.inputs {
		fwd.Add(1)
		go func(port int, sub *Subscription) {
			defer fwd.Done()
			for b := range sub.C {
				qn.inbox <- portBatch{port: port, batch: b}
			}
			qn.inbox <- portBatch{port: port, done: true}
		}(i, sub)
	}
	qn.m.wg.Add(1)
	go func() {
		defer qn.m.wg.Done()
		qn.loop(len(qn.inputs))
	}()
	go func() {
		fwd.Wait()
		close(qn.inbox)
	}()
}

// wireMerge gives a merge operator a way to demand heartbeats from a
// starving input (the paper's on-demand ordering update tokens, §3).
// Called at start and again after a clean-state restart swaps the op.
func (qn *queryNode) wireMerge() {
	if mg, ok := qn.op.(*exec.Merge); ok {
		if len(qn.ringReqs) > 0 {
			reqs := qn.ringReqs
			mg.OnBlocked = func(port int) {
				if port >= 0 && port < len(reqs) {
					reqs[port]()
				}
			}
			return
		}
		inputs := qn.inputs
		mg.OnBlocked = func(port int) {
			if port >= 0 && port < len(inputs) {
				inputs[port].RequestHeartbeat()
			}
		}
	}
}

func (qn *queryNode) loop(openPorts int) {
	defer close(qn.done)
	for {
		select {
		case cmd := <-qn.cmds:
			cmd()
			continue
		default:
		}
		select {
		case cmd := <-qn.cmds:
			cmd()
		case pm, ok := <-qn.inbox:
			if !ok {
				if qn.maybeRestart() {
					qn.guard("flush", func() error { return qn.op.FlushAll(qn.emit) })
					qn.flushPending(&qn.flushWindow)
				}
				qn.pub.close()
				return
			}
			if !qn.maybeRestart() {
				// Quarantined: keep draining the inbox so upstream
				// forwarders never block, discard and count the input.
				qn.quarDrop.Add(uint64(pm.batch.Tuples()))
				continue
			}
			if pm.done {
				openPorts--
				if mg, isMerge := qn.op.(*exec.Merge); isMerge {
					qn.guard("portdone", func() error { mg.PortDone(pm.port, qn.emit); return nil })
				}
			} else {
				qn.guard("push", func() error {
					return exec.PushBatch(qn.op, pm.port, pm.batch, qn.emitBatch)
				})
			}
			// Window end: one inbox batch fully processed. Flushing here
			// keeps end-to-end latency identical to the per-message
			// pipeline — output never waits for unrelated future input.
			qn.flushPending(&qn.flushWindow)
		}
	}
}

// ringPortQuota bounds consecutive pops from one ring per polling pass,
// so a hot shard cannot starve its siblings at the reunify merge.
const ringPortQuota = 4

// ringLoop consumes the node's SPSC input rings (the shard→reunify hop):
// round-robin polling with a per-port quota, then park on the shared
// waker when every open ring is empty. The double-check between Clear
// and the blocking select is what makes the park race-free — a producer
// that published between our last poll and Clear re-arms the token, and
// one that publishes after Clear wakes us from the select.
func (qn *queryNode) ringLoop() {
	defer close(qn.done)
	open := make([]bool, len(qn.ringIns))
	for i := range open {
		open[i] = true
	}
	openPorts := len(qn.ringIns)

	poll := func() bool {
		progress := false
		for port, r := range qn.ringIns {
			if !open[port] {
				continue
			}
			for q := 0; q < ringPortQuota; q++ {
				b, ok := r.TryPop()
				if !ok {
					if r.Done() {
						open[port] = false
						openPorts--
						if mg, isMerge := qn.op.(*exec.Merge); isMerge && qn.maybeRestart() {
							qn.guard("portdone", func() error { mg.PortDone(port, qn.emit); return nil })
							qn.flushPending(&qn.flushWindow)
						}
						progress = true
					}
					break
				}
				progress = true
				if !qn.maybeRestart() {
					qn.quarDrop.Add(uint64(b.Tuples()))
					continue
				}
				qn.guard("push", func() error {
					return exec.PushBatch(qn.op, port, b, qn.emitBatch)
				})
				qn.flushPending(&qn.flushWindow)
			}
		}
		return progress
	}

	for openPorts > 0 {
		for {
			select {
			case cmd := <-qn.cmds:
				cmd()
				continue
			default:
			}
			break
		}
		if poll() {
			continue
		}
		if openPorts == 0 {
			break
		}
		qn.ringWaker.Clear()
		if poll() { // re-check after Clear: a wake between poll and Clear is not lost
			continue
		}
		if openPorts == 0 {
			break
		}
		select {
		case cmd := <-qn.cmds:
			cmd()
		case <-qn.ringWaker.Chan():
		}
	}
	if qn.maybeRestart() {
		qn.guard("flush", func() error { return qn.op.FlushAll(qn.emit) })
		qn.flushPending(&qn.flushWindow)
	}
	qn.pub.close()
}

// guard runs one operator step under panic recovery: a panic quarantines
// the node in place instead of killing the process (or, on an LFTA,
// killing the capture path). A returned error is the non-fatal case —
// counted and survived. Must run in the node's executing context (under
// qn.mu for inline LFTA/source nodes, on the loop goroutine for HFTAs);
// reports whether the step completed without panicking.
func (qn *queryNode) guard(stage string, f func() error) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			qn.quarantine(fmt.Sprintf("%s: %v", stage, r))
		}
	}()
	if err := f(); err != nil {
		qn.opErrors.Add(1)
	}
	return true
}

// quarantine detaches the node: its poisoned pending output is discarded
// and every subsequent input is dropped (counted in quarDrop) until a
// clean-state restart. Executing-context only.
func (qn *queryNode) quarantine(reason string) {
	qn.pending = nil // emitted alongside the poisoned operator state: discard
	qn.pendingTuples = 0
	qn.quarReason.Store(reason)
	qn.quarantines.Add(1)
	qn.quarantined.Store(true)
	base := qn.m.cfg.QuarantineRestartUsec
	if base == 0 || qn.node == nil {
		// Restart disabled, or nothing to rebuild from (user-written and
		// source nodes carry no compiled plan): quarantine is permanent.
		qn.restartAt = 0
		return
	}
	// Bounded exponential backoff: base, 2x, 4x, ... capped at 64x.
	if qn.backoffUsec == 0 {
		qn.backoffUsec = base
	} else if qn.backoffUsec < base<<6 {
		qn.backoffUsec *= 2
	}
	qn.restartAt = qn.m.clock.Load() + qn.backoffUsec
}

// maybeRestart re-instantiates a quarantined node with clean state once
// its backoff has elapsed on the virtual clock. Reports whether the node
// is runnable (healthy, or just restarted). Executing-context only.
func (qn *queryNode) maybeRestart() bool {
	if !qn.quarantined.Load() {
		return true
	}
	if qn.restartAt == 0 || qn.node == nil || qn.m.clock.Load() < qn.restartAt {
		return false
	}
	inst, err := qn.node.Instantiate(qn.params)
	if err != nil {
		qn.restartAt = 0 // bindings no longer instantiate: permanent
		return false
	}
	qn.instMu.Lock()
	qn.inst = inst
	qn.op = inst.Op
	qn.instMu.Unlock()
	qn.wireMerge()
	if qn.approxMode {
		// Stay demoted across the restart: the overload controller's
		// decision outlives the operator state, like the throttle parameter.
		if d, ok := qn.op.(exec.Demotable); ok {
			d.SetApprox(true)
		}
	}
	qn.restarts.Add(1)
	qn.quarantined.Store(false)
	return true
}

// initCheckers builds per-column ordering checkers for the output schema.
func (qn *queryNode) initCheckers(out *schema.Schema) {
	qn.checkers = make([]*schema.OrderChecker, len(out.Cols))
	for i, c := range out.Cols {
		if c.Ordering.Usable() {
			qn.checkers[i] = schema.NewOrderChecker(c.Ordering, nil)
		}
	}
}

// checkOrdering validates imputed orderings when enabled.
func (qn *queryNode) checkOrdering(m exec.Message) {
	if qn.checkers == nil || m.IsHeartbeat() {
		return
	}
	for i, ch := range qn.checkers {
		if ch == nil || i >= len(m.Tuple) {
			continue
		}
		if err := ch.Observe(m.Tuple[i], m.Tuple); err != nil {
			qn.violations.Add(1)
		}
	}
}

// emit appends one message to the pending batch, flushing per policy.
// Safe: each node emits from a single goroutine (or under its mutex).
func (qn *queryNode) emit(m exec.Message) {
	qn.checkOrdering(m)
	if qn.pending == nil {
		// Batches are handed off on flush, so the array can't be pooled —
		// but sizing it to the flush threshold up front turns the ~log2
		// append-regrow allocations per batch into one.
		qn.pending = make(exec.Batch, 0, qn.maxBatch)
	}
	qn.pending = append(qn.pending, m)
	if !m.IsHeartbeat() {
		qn.pendingTuples++
	}
	if len(qn.pending) >= qn.maxBatch {
		qn.flushPending(&qn.flushSize)
	} else if qn.hbFlush && m.IsHeartbeat() {
		qn.flushPending(&qn.flushHB)
	}
}

// emitBatch accepts a whole operator output batch, taking ownership.
// It applies the same flush policy as emit: size first, then heartbeat
// when the node asks for hbFlush and the batch carried one.
func (qn *queryNode) emitBatch(b exec.Batch) {
	sawHB := false
	for i := range b {
		qn.checkOrdering(b[i])
		if !b[i].IsHeartbeat() {
			qn.pendingTuples++
		} else {
			sawHB = true
		}
	}
	if len(qn.pending) == 0 {
		qn.pending = b
	} else {
		qn.pending = append(qn.pending, b...)
	}
	if len(qn.pending) >= qn.maxBatch {
		qn.flushPending(&qn.flushSize)
	} else if qn.hbFlush && sawHB {
		qn.flushPending(&qn.flushHB)
	}
}

// flushPending publishes the pending batch and records the flush reason.
// The batch is handed to subscribers, so the backing array is never reused.
func (qn *queryNode) flushPending(reason *atomic.Uint64) {
	if len(qn.pending) == 0 {
		return
	}
	reason.Add(1)
	b := qn.pending
	nT := qn.pendingTuples
	qn.pending = nil
	qn.pendingTuples = 0
	qn.pub.publish(b, nT)
}

// pushPackets runs one capture poll window through an LFTA inline, under a
// single lock acquisition; the output accumulated over the window flushes
// onto the rings as one batch (unless size/heartbeat flushes fired first).
// A quarantined LFTA discards its windows (counted per packet) while every
// sibling on the interface keeps running.
func (qn *queryNode) pushPackets(ps []*pkt.Packet) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if !qn.maybeRestart() {
		qn.quarDrop.Add(uint64(len(ps)))
		return
	}
	qn.packets.Add(uint64(len(ps)))
	if qn.guard("push", func() error {
		if !qn.m.cfg.DisableColumnar {
			// Columnar fast path: the whole window extracts into column
			// slices and runs through the operator's PushCols. handled is
			// false when the operator has no columnar form (or a value
			// drifted from its declared type) — fall through to the
			// per-packet row path, which is the semantic reference.
			handled, err := qn.inst.PushWindow(ps, qn.emit)
			if handled {
				if err != nil {
					qn.opErrors.Add(1)
				}
				return nil
			}
		}
		for _, p := range ps {
			if err := qn.inst.PushPacket(p, qn.emit); err != nil {
				qn.opErrors.Add(1)
			}
		}
		return nil
	}) {
		qn.flushPending(&qn.flushWindow)
	}
}

// clockHeartbeat emits a source heartbeat through the LFTA.
func (qn *queryNode) clockHeartbeat(usec uint64) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if !qn.maybeRestart() {
		return
	}
	qn.guard("heartbeat", func() error { return qn.inst.ClockHeartbeat(usec, qn.emit) })
}

// flushInline flushes an LFTA at shutdown. A quarantined LFTA skips the
// flush (its operator state is poisoned) but still closes its publisher
// so downstream streams end.
func (qn *queryNode) flushInline() {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.maybeRestart() {
		qn.guard("flush", func() error { return qn.op.FlushAll(qn.emit) })
		qn.flushPending(&qn.flushWindow)
	}
	qn.pub.close()
}

// setParams rebinds parameters. HFTA nodes apply the change on their own
// goroutine; LFTAs under the interface lock.
func (qn *queryNode) setParams(params map[string]schema.Value) error {
	if qn.inst == nil {
		if len(qn.shardsOf) > 0 {
			// Shard-reunifying node: the parameters live in the per-shard
			// LFTA instances.
			for _, shard := range qn.shardsOf {
				if err := shard.setParams(params); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("rts: %s is a user-written node; it has no query parameters", qn.name)
	}
	if qn.level == core.LevelLFTA {
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.rebind(params)
	}
	// Checking started and rebinding must be one critical section with
	// start(): otherwise the node can start — and its loop begin executing
	// the operator — between the check and the direct rebind.
	qn.mu.Lock()
	if !qn.started.Load() {
		defer qn.mu.Unlock()
		return qn.rebind(params)
	}
	cmds, done := qn.cmds, qn.done
	qn.mu.Unlock()
	errc := make(chan error, 1)
	select {
	case cmds <- func() { errc <- qn.rebind(params) }:
	case <-done:
		// The loop exited; nothing executes the operator anymore.
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.rebind(params)
	}
	select {
	case err := <-errc:
		return err
	case <-done:
		return nil
	}
}

// rebind applies a parameter change to the live instance and records the
// bindings, so a later clean-state restart re-instantiates with the
// latest values (the overload controller's throttle survives a
// quarantine). Executing-context only (or under qn.mu when idle).
func (qn *queryNode) rebind(params map[string]schema.Value) error {
	if err := qn.inst.Rebind(params); err != nil {
		return err
	}
	if qn.params == nil {
		qn.params = make(map[string]schema.Value, len(params))
	}
	for k, v := range params {
		qn.params[k] = v
	}
	return nil
}

// setApprox switches the node's aggregation between exact and demoted
// (sketched) mode, returning how many aggregate slots changed eligibility.
// Routing mirrors setParams: shard-reunifying nodes forward to their
// shards, LFTAs apply inline under the interface lock, HFTAs on their own
// goroutine.
func (qn *queryNode) setApprox(on bool) int {
	if qn.inst == nil {
		n := 0
		for _, shard := range qn.shardsOf {
			n += shard.setApprox(on)
		}
		return n
	}
	if qn.level == core.LevelLFTA {
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.applyApprox(on)
	}
	qn.mu.Lock()
	if !qn.started.Load() {
		defer qn.mu.Unlock()
		return qn.applyApprox(on)
	}
	cmds, done := qn.cmds, qn.done
	qn.mu.Unlock()
	nc := make(chan int, 1)
	select {
	case cmds <- func() { nc <- qn.applyApprox(on) }:
	case <-done:
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.applyApprox(on)
	}
	select {
	case n := <-nc:
		return n
	case <-done:
		return 0
	}
}

// applyApprox flips the mode on the live operator and records it for
// clean-state restarts. Executing-context only (or under qn.mu when idle).
func (qn *queryNode) applyApprox(on bool) int {
	qn.approxMode = on
	d, ok := qn.op.(exec.Demotable)
	if !ok {
		return 0
	}
	return d.SetApprox(on)
}

// stateBytes estimates the aggregate-table memory the node's operator
// currently holds. Routing mirrors setApprox: shard-reunifying nodes sum
// their shards, LFTAs read inline under the interface lock, HFTAs on
// their own goroutine (the group table is owned by the executing context,
// so an unsynchronized read would race with pushes).
func (qn *queryNode) stateBytes() int64 {
	if qn.inst == nil {
		var total int64
		for _, shard := range qn.shardsOf {
			total += shard.stateBytes()
		}
		return total
	}
	type sizer interface{ StateBytes() int64 }
	read := func() int64 {
		if s, ok := qn.op.(sizer); ok {
			return s.StateBytes()
		}
		return 0
	}
	if qn.level == core.LevelLFTA {
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return read()
	}
	qn.mu.Lock()
	if !qn.started.Load() {
		defer qn.mu.Unlock()
		return read()
	}
	cmds, done := qn.cmds, qn.done
	qn.mu.Unlock()
	bc := make(chan int64, 1)
	select {
	case cmds <- func() { bc <- read() }:
	case <-done:
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return read()
	}
	select {
	case b := <-bc:
		return b
	case <-done:
		return 0
	}
}

// demoteBounds reports the widest (eps, delta) the node's aggregation
// would run with when demoted, and how many of the node's operators are
// demotable (shards counted individually).
func (qn *queryNode) demoteBounds() (eps, delta float64, n int) {
	if qn.inst == nil {
		for _, shard := range qn.shardsOf {
			e, d, k := shard.demoteBounds()
			if k == 0 {
				continue
			}
			if e > eps {
				eps = e
			}
			if d > delta {
				delta = d
			}
			n += k
		}
		return eps, delta, n
	}
	qn.instMu.Lock()
	op := qn.op
	qn.instMu.Unlock()
	if dd, ok := op.(exec.Demotable); ok {
		if e, d, has := dd.DemoteBounds(); has {
			return e, d, 1
		}
	}
	return 0, 0, 0
}

func (qn *queryNode) stats() NodeStats {
	ns := NodeStats{
		Name:        qn.name,
		Level:       qn.level,
		Shard:       qn.shardIdx,
		RingDrop:    qn.pub.drops.Load(),
		HBDrop:      qn.pub.hbDrops.Load(),
		Batches:     qn.pub.batches.Load(),
		BatchTuples: qn.pub.tuples.Load(),
		FlushSize:   qn.flushSize.Load(),
		FlushHB:     qn.flushHB.Load(),
		FlushWindow: qn.flushWindow.Load(),
		Packets:     qn.packets.Load(),
	}
	ns.Quarantined = qn.quarantined.Load()
	ns.Quarantines = qn.quarantines.Load()
	ns.Restarts = qn.restarts.Load()
	ns.QuarDrop = qn.quarDrop.Load()
	ns.OpErrors = qn.opErrors.Load()
	if r, ok := qn.quarReason.Load().(string); ok {
		ns.QuarantineReason = r
	}
	// A clean-state restart swaps the inst/op pair; read it under instMu
	// so stats stay race-free against the executing goroutine.
	qn.instMu.Lock()
	inst, op := qn.inst, qn.op
	qn.instMu.Unlock()
	type statser interface{ Stats() exec.OpStats }
	switch {
	case inst != nil:
		ns.Op = inst.Stats()
		ns.BadPkts = inst.PacketsDropped()
	case op != nil:
		if s, ok := op.(statser); ok {
			ns.Op = s.Stats()
		}
	case qn.src != nil:
		if s, ok := qn.src.(statser); ok {
			ns.Op = s.Stats()
		}
	}
	ns.OrderViolations = qn.violations.Load()
	if qn.node != nil {
		ns.SharedBy = qn.node.SharedBy()
	}
	if qn.peer != nil {
		ps := qn.peer.PeerStats()
		ns.PeerState = ps.State
		ns.Reconnects = ps.Reconnects
		ns.GapTuples = ps.GapTuples
		ns.GapEvents = ps.GapEvents
		ns.HBMisses = ps.HBMisses
	}
	return ns
}

// requestHeartbeat propagates a downstream demand for ordering information
// toward the sources.
func (qn *queryNode) requestHeartbeat() {
	if qn.peer != nil {
		// Remote source: forward the demand across the wire. Best-effort —
		// during an outage there is no peer to ask.
		qn.mu.Lock()
		req := qn.remoteReq
		qn.mu.Unlock()
		if req != nil {
			req()
		}
		return
	}
	if qn.node != nil && qn.level == core.LevelLFTA {
		qn.m.Interface(ifaceName(qn.node)).requestHeartbeat()
		return
	}
	if qn.src != nil {
		qn.sourceHeartbeat()
		return
	}
	for _, sub := range qn.inputs {
		sub.RequestHeartbeat()
	}
}
