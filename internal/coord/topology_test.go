package coord

import (
	"strings"
	"testing"
)

const trioSrc = `
# two capture hosts splitting eth0, one aggregation sink
node capA {
	cpu 50
	capture eth0[0/2] default
	listen unix:/tmp/a.sock
	uplink agg cost 2
}
node capB {
	cpu 50
	capture eth0[1/2] eth1
	uplink agg
}
node agg { cpu 1000 sink }
`

func mustParse(t *testing.T, src string) *Topology {
	t.Helper()
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	return topo
}

func TestParseTopologyBasics(t *testing.T) {
	topo := mustParse(t, trioSrc)
	if len(topo.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(topo.Nodes))
	}
	a := topo.Node("capA")
	if a == nil || a.CPU != 50 || a.Listen != "unix:/tmp/a.sock" || a.Uplink != "agg" || a.UplinkCost != 2 {
		t.Fatalf("capA parsed wrong: %+v", a)
	}
	if len(a.Captures) != 2 || a.Captures[0].String() != "eth0[0/2]" || a.Captures[1].Interface != "default" {
		t.Fatalf("capA captures parsed wrong: %+v", a.Captures)
	}
	if s := topo.Sink(); s == nil || s.Name != "agg" {
		t.Fatalf("sink = %v, want agg", s)
	}
	caps := topo.Captors("eth0")
	if len(caps) != 2 || caps[0].Name != "capA" || caps[1].Name != "capB" {
		t.Fatalf("eth0 captors = %v", caps)
	}
	if caps := topo.Captors("ETH1"); len(caps) != 1 || caps[0].Name != "capB" {
		t.Fatalf("eth1 captors (case-insensitive) = %v", caps)
	}
	if caps := topo.Captors(""); len(caps) != 1 || caps[0].Name != "capA" {
		t.Fatalf("default-interface captors = %v", caps)
	}
}

func TestParseTopologyErrorsArePositioned(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no nodes"},
		{"garbage", "frobnicate", "expected 'node'"},
		{"unclosed", "node a { cpu 5", "missing '}'"},
		{"dup-node", "node a { cpu 1 }\nnode a { cpu 1 }", "duplicate node name"},
		{"zero-cpu", "node a { cpu 0 }", "must be positive"},
		{"neg-cpu", "node a { cpu -3 }", "must be positive"},
		{"bad-cpu", "node a { cpu lots }", "not a number"},
		{"dup-cpu", "node a { cpu 1 cpu 2 }", "duplicate cpu"},
		{"unknown-directive", "node a { turbo 9 }", "unknown directive"},
		{"unknown-uplink", "node a { uplink ghost }", "unknown uplink target"},
		{"self-uplink", "node a { uplink a }", "uplinks to itself"},
		{"uplink-cycle", "node a { uplink b }\nnode b { uplink a }", "uplink cycle"},
		{"two-sinks", "node a { sink }\nnode b { sink }", "duplicate sink"},
		{"capture-empty", "node a { capture }", "at least one interface"},
		{"capture-conflict", "node a { capture eth0 }\nnode b { capture eth0 }", "already captured"},
		{"whole-part-mix", "node a { capture eth0 }\nnode b { capture eth0[0/2] }", "mixes whole and partitioned"},
		{"part-counts-disagree", "node a { capture eth0[0/2] }\nnode b { capture eth0[1/3] }", "disagree"},
		{"dup-partition", "node a { capture eth0[0/2] }\nnode b { capture eth0[0/2] }", "already captured"},
		{"missing-partition", "node a { capture eth0[0/2] }", "captured nowhere"},
		{"part-out-of-range", "node a { capture eth0[2/2] }", "out of range"},
		{"malformed-part", "node a { capture eth0[1-2] }", "malformed capture partition"},
		{"same-host-twice", "node a { capture eth0[0/2] eth0[1/2] }", "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("unpositioned error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}

func TestTopologyRenderRoundTrip(t *testing.T) {
	topo := mustParse(t, trioSrc)
	text := topo.Render()
	topo2, err := ParseTopology(text)
	if err != nil {
		t.Fatalf("re-parse of Render output failed: %v\n%s", err, text)
	}
	if text2 := topo2.Render(); text2 != text {
		t.Fatalf("Render is not a fixpoint:\n%s\nvs\n%s", text, text2)
	}
}

func TestLinkCost(t *testing.T) {
	topo := mustParse(t, trioSrc)
	if c := topo.LinkCost("capA", "capA"); c != 0 {
		t.Errorf("self cost = %v", c)
	}
	if c := topo.LinkCost("capA", "agg"); c != 2 {
		t.Errorf("capA->agg = %v, want uplink cost 2", c)
	}
	if c := topo.LinkCost("capB", "agg"); c != 1 {
		t.Errorf("capB->agg = %v, want default cost 1", c)
	}
	if c := topo.LinkCost("capA", "capB"); c != 3 {
		t.Errorf("capA->capB = %v, want 2+1 via common root", c)
	}
}

func TestRouter(t *testing.T) {
	topo := mustParse(t, trioSrc)
	r := topo.Router()
	for i := uint64(0); i < 6; i++ {
		host, ok := r.Route("eth0", i)
		if !ok {
			t.Fatalf("eth0 packet %d unrouted", i)
		}
		want := "capA"
		if i%2 == 1 {
			want = "capB"
		}
		if host != want {
			t.Errorf("eth0 packet %d -> %s, want %s", i, host, want)
		}
	}
	if host, ok := r.Route("eth1", 99); !ok || host != "capB" {
		t.Errorf("eth1 -> %s/%v, want capB whole", host, ok)
	}
	if host, ok := r.Route("", 0); !ok || host != "capA" {
		t.Errorf("default iface -> %s/%v, want capA", host, ok)
	}
	if _, ok := r.Route("wlan9", 0); ok {
		t.Error("unknown interface routed")
	}
}
