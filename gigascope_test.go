package gigascope

import (
	"strings"
	"testing"
)

func TestSystemQuickPath(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddQuery(`
		DEFINE { query_name tcpdest; }
		SELECT destIP, destPort, time FROM eth0.TCP
		WHERE ipversion = 4 and protocol = 6`, nil)
	sub, err := sys.Subscribe("tcpdest", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	p := BuildTCP(1_000_000, TCPSpec{SrcIP: 0x0a000001, DstIP: 0x0a000002, DstPort: 80})
	sys.Inject("eth0", &p)
	sys.Stop()
	var rows int
	for b := range sub.C {
		for _, m := range b {
			if !m.IsHeartbeat() {
				rows++
				if m.Tuple[0].IP() != 0x0a000002 || m.Tuple[1].Uint() != 80 {
					t.Errorf("tuple = %v", m.Tuple)
				}
			}
		}
	}
	if rows != 1 {
		t.Errorf("rows = %d", rows)
	}
}

func TestSystemExplainAndRegistry(t *testing.T) {
	sys, _ := New()
	sys.MustAddQuery(`
		DEFINE { query_name http; }
		SELECT time FROM TCP
		WHERE destPort = 80 and str_regex_match(payload, 'HTTP/1')`, nil)
	exp, err := sys.Explain("http")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "LFTA") || !strings.Contains(exp, "HFTA") {
		t.Errorf("explain = %s", exp)
	}
	reg := sys.Registry()
	if len(reg) != 2 {
		t.Errorf("registry = %v", reg)
	}
	if _, err := sys.Explain("nosuch"); err == nil {
		t.Error("explain of unknown query succeeded")
	}
	if _, ok := sys.Plan("http"); !ok {
		t.Error("plan not found")
	}
}

func TestSystemAddQueryRollbackOnRTSError(t *testing.T) {
	sys, _ := New()
	sys.MustAddQuery(`DEFINE { query_name q1; } SELECT time FROM TCP`, nil)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	// An LFTA-bearing query after Start fails in the RTS; the catalog
	// must be rolled back so the name stays free.
	if _, err := sys.AddQuery(`DEFINE { query_name late; } SELECT time FROM TCP`, nil); err == nil {
		t.Fatal("LFTA after start accepted")
	}
	if _, ok := sys.Catalog().Lookup("late"); ok {
		t.Error("catalog not rolled back")
	}
	sys.Stop()
}

func TestSystemDefineProtocols(t *testing.T) {
	sys, _ := New()
	err := sys.DefineProtocols(`
		PROTOCOL SENSOR {
			uint time get_time (increasing);
			uint reading get_total_length;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Catalog().Lookup("SENSOR"); !ok {
		t.Error("protocol not registered")
	}
	if err := sys.DefineProtocols(`PROTOCOL BAD { uint x no_such_interp; }`); err == nil {
		t.Error("unknown interp accepted")
	}
	if err := sys.DefineProtocols(`SELECT x FROM y`); err == nil {
		t.Error("query accepted by DefineProtocols")
	}
}

func TestSystemScript(t *testing.T) {
	sys, _ := New()
	err := sys.AddScript(`
		DEFINE { query_name base; }
		SELECT time, destPort FROM TCP;
		DEFINE { query_name derived; }
		SELECT time FROM base WHERE destPort = 80`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Registry()) != 2 {
		t.Errorf("registry = %v", sys.Registry())
	}
}

func TestSystemNetflowBuiltin(t *testing.T) {
	sys, _ := New()
	sys.MustAddQuery(`
		DEFINE { query_name nf; }
		SELECT start_time, bytes FROM NETFLOW WHERE protocol = 6`, nil)
	sub, err := sys.Subscribe("nf", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	gen, err := NewFlowGenerator(FlowConfig{Seed: 1, FlowsPerSecond: 10, MeanDurationSec: 5, MeanPps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := gen.Next()
		sys.Inject("", &p)
	}
	sys.Stop()
	rows := 0
	for b := range sub.C {
		rows += b.Tuples()
	}
	if rows != 100 {
		t.Errorf("rows = %d", rows)
	}
}

func TestValueConstructors(t *testing.T) {
	if Uint(5).Uint() != 5 || Int(-1).Int() != -1 || !Bool(true).Bool() {
		t.Error("constructors broken")
	}
	a, err := ParseIP("10.0.0.1")
	if err != nil || FormatIP(a) != "10.0.0.1" {
		t.Errorf("ip round trip: %v %v", a, err)
	}
}
