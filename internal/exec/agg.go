package exec

import (
	"fmt"
	"sort"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// AggInstance is one aggregate computation within a group-by operator.
type AggInstance struct {
	Spec    *funcs.Aggregate
	Arg     Expr // nil for count(*)
	ArgType schema.Type
	// Params are the resolved compile-time literal parameters (sketch error
	// bounds, quantile rank, heavy-hitter k, ...); empty for classic
	// single-argument aggregates.
	Params []schema.Value
	// DemoteSpec, when non-nil, is the approximate twin this aggregate may
	// be demoted to under overload (e.g. count_distinct -> approx_distinct),
	// with DemoteParams its resolved parameters. The compiler fills these
	// from the registry's Demote links; operators consult them only when the
	// overload controller has switched the operator to approximate mode.
	DemoteSpec   *funcs.Aggregate
	DemoteParams []schema.Value
}

// NewState builds aggregate state for one group. When approx is true and a
// demotion twin is bound, the twin's (sketched) state is created instead;
// groups already open keep their existing state, so a mode switch only
// affects groups opened after it — the union super-aggregates accept the
// resulting mix of exact and sketched partials.
func (ai *AggInstance) NewState(approx bool) funcs.AggState {
	if approx && ai.DemoteSpec != nil {
		return ai.DemoteSpec.NewState(ai.ArgType, ai.DemoteParams)
	}
	return ai.Spec.NewState(ai.ArgType, ai.Params)
}

// DemoteBounds reports the (eps, delta) error parameters the demotion twin
// would run with, for publication on the SYSMON overload stream. ok is
// false when the instance has no demotion twin.
func (ai *AggInstance) DemoteBounds() (eps, delta float64, ok bool) {
	if ai.DemoteSpec == nil {
		return 0, 0, false
	}
	eps, delta = funcs.DefaultEps, funcs.DefaultDelta
	for i, p := range ai.DemoteSpec.Params {
		if i >= len(ai.DemoteParams) || ai.DemoteParams[i].IsNull() {
			continue
		}
		switch p.Name {
		case "eps":
			eps = ai.DemoteParams[i].Float()
		case "delta":
			delta = ai.DemoteParams[i].Float()
		}
	}
	return eps, delta, true
}

// Demotable is implemented by aggregation operators that can demote exact
// aggregates to their sketched twins under overload (and promote back).
// The overload controller actuates it through the RTS command path.
type Demotable interface {
	// SetApprox switches demotable aggregate slots between exact and
	// sketched state for groups opened from now on; returns the number of
	// slots with a demotion twin bound.
	SetApprox(on bool) int
	// Approx reports the current mode.
	Approx() bool
	// DemoteBounds returns the widest (eps, delta) the demoted slots run
	// with; ok is false when nothing is demotable.
	DemoteBounds() (eps, delta float64, ok bool)
}

// stateBytes estimates the in-memory footprint of one aggregate state for
// the aggregate-table memory accounting (experiment E11). Sketch states
// report exactly via funcs.Sizer; plain scalar accumulators are charged a
// nominal interface+struct overhead.
func stateBytes(s funcs.AggState) int64 {
	if sz, ok := s.(funcs.Sizer); ok {
		return int64(sz.Footprint())
	}
	return 48
}

// AggSpec configures a group-by/aggregation operator.
//
// The operator is unblocked by an ordered group-by key (paper §2.1): "when
// a tuple arrives for aggregation whose ordered attribute is larger than
// that in any current group, we can deduce that all of the current groups
// are closed", modulo a band tolerance for banded-increasing keys.
type AggSpec struct {
	Pred       Expr   // pre-aggregation filter (WHERE), may be nil
	GroupExprs []Expr // group-by key expressions over the input row
	// OrdGroup indexes GroupExprs: the ordered attribute driving flushes.
	// A negative value disables ordered flushing — the operator then only
	// emits on FlushAll (the paper permits this but warns the user).
	OrdGroup int
	Desc     bool   // ordered key decreases instead of increasing
	Band     uint64 // tolerance for banded-increasing keys
	Aggs     []AggInstance
	// PostSelect computes output columns over the post-aggregation row
	// [group values..., aggregate results...].
	PostSelect []Expr
	Having     Expr // over the post-aggregation row, may be nil
	Out        *schema.Schema
	Ctx        *Ctx
}

// Agg is the HFTA aggregation operator: an unbounded hash table of open
// groups, flushed as the ordered group key advances.
type Agg struct {
	spec   AggSpec
	groups map[string]*aggGroup
	wm     schema.Value // watermark: extreme ordered value seen
	hasWM  bool
	approx bool // demoted to sketched aggregates for new groups
	stats  Counters
	// Per-tuple scratch: group values and the packed key are computed
	// into reused buffers, and the key string is only materialized when a
	// new group is inserted (the map lookup itself goes through the
	// no-allocation string([]byte) index form). Safe because Push runs on
	// the owning node's goroutine.
	gvalsBuf schema.Tuple
	keyBuf   []byte
}

type aggGroup struct {
	gvals  schema.Tuple
	ord    schema.Value
	states []funcs.AggState
	key    string
}

// NewAgg builds an aggregation operator.
func NewAgg(spec AggSpec) (*Agg, error) {
	if len(spec.GroupExprs) == 0 {
		return nil, fmt.Errorf("exec: aggregation needs at least one group-by expression")
	}
	if spec.OrdGroup >= len(spec.GroupExprs) {
		return nil, fmt.Errorf("exec: ordered group index %d out of range", spec.OrdGroup)
	}
	return &Agg{spec: spec, groups: make(map[string]*aggGroup)}, nil
}

// Ports implements Operator.
func (o *Agg) Ports() int { return 1 }

// OutSchema implements Operator.
func (o *Agg) OutSchema() *schema.Schema { return o.spec.Out }

// Stats returns a snapshot of the operator counters.
func (o *Agg) Stats() OpStats { return o.stats.Snapshot() }

// OpenGroups returns the number of currently open groups.
func (o *Agg) OpenGroups() int { return len(o.groups) }

// Push implements Operator.
func (o *Agg) Push(_ int, m Message, emit Emit) error {
	if m.IsHeartbeat() {
		// A bound on the ordered group expression advances the watermark
		// and may close groups even with no tuple flowing (paper §3).
		if o.spec.OrdGroup >= 0 {
			v, ok := o.spec.GroupExprs[o.spec.OrdGroup].Eval(m.Bounds, o.spec.Ctx)
			if ok && !v.IsNull() {
				o.advance(v, emit)
			}
		}
		o.emitHeartbeat(emit)
		return nil
	}
	o.stats.In.Add(1)
	row := m.Tuple
	if o.spec.Pred != nil {
		pass, ok := EvalPred(o.spec.Pred, row, o.spec.Ctx)
		if !ok || !pass {
			o.stats.Dropped.Add(1)
			return nil
		}
	}
	if o.gvalsBuf == nil {
		o.gvalsBuf = make(schema.Tuple, len(o.spec.GroupExprs))
	}
	gvals := o.gvalsBuf
	for i, e := range o.spec.GroupExprs {
		v, ok := e.Eval(row, o.spec.Ctx)
		if !ok {
			o.stats.Dropped.Add(1)
			return nil // partial function in group key: discard
		}
		gvals[i] = v
	}
	if o.spec.OrdGroup >= 0 {
		ord := gvals[o.spec.OrdGroup]
		if ord.IsNull() {
			o.stats.Dropped.Add(1)
			return nil
		}
		o.advance(ord, emit)
	}
	o.keyBuf = gvals.Pack(o.keyBuf[:0])
	g, ok := o.groups[string(o.keyBuf)]
	if !ok {
		key := string(o.keyBuf)
		g = &aggGroup{gvals: gvals.Clone(), key: key, states: o.newStates()}
		if o.spec.OrdGroup >= 0 {
			g.ord = gvals[o.spec.OrdGroup]
		}
		o.groups[key] = g
	}
	o.addToGroup(g, row)
	return nil
}

func (o *Agg) newStates() []funcs.AggState {
	states := make([]funcs.AggState, len(o.spec.Aggs))
	for i := range o.spec.Aggs {
		states[i] = o.spec.Aggs[i].NewState(o.approx)
	}
	return states
}

// SetApprox switches the operator between exact and demoted (sketched)
// aggregation for groups opened from now on, returning how many aggregate
// slots have a demotion twin bound (0 means the call had no effect).
func (o *Agg) SetApprox(on bool) int {
	o.approx = on
	n := 0
	for i := range o.spec.Aggs {
		if o.spec.Aggs[i].DemoteSpec != nil {
			n++
		}
	}
	return n
}

// Approx reports whether the operator is in demoted (sketched) mode.
func (o *Agg) Approx() bool { return o.approx }

// DemoteBounds returns the widest (eps, delta) over the operator's
// demotable aggregate slots; ok is false when none is demotable.
func (o *Agg) DemoteBounds() (eps, delta float64, ok bool) {
	return aggsDemoteBounds(o.spec.Aggs)
}

// StateBytes estimates the aggregate-table memory held by open groups:
// group keys plus per-slot aggregate state.
func (o *Agg) StateBytes() int64 {
	var total int64
	for _, g := range o.groups {
		total += int64(len(g.key)) + 32
		for _, s := range g.states {
			total += stateBytes(s)
		}
	}
	return total
}

func aggsDemoteBounds(aggs []AggInstance) (eps, delta float64, ok bool) {
	for i := range aggs {
		e, d, has := aggs[i].DemoteBounds()
		if !has {
			continue
		}
		if !ok || e > eps {
			eps = e
		}
		if !ok || d > delta {
			delta = d
		}
		ok = true
	}
	return eps, delta, ok
}

func (o *Agg) addToGroup(g *aggGroup, row schema.Tuple) {
	for i, a := range o.spec.Aggs {
		if a.Arg == nil {
			g.states[i].Add(schema.Null)
			continue
		}
		v, ok := a.Arg.Eval(row, o.spec.Ctx)
		if !ok {
			continue // partial function in aggregate arg: skip this input
		}
		g.states[i].Add(v)
	}
}

// advance moves the watermark to ord (if it extends it) and flushes every
// group that can no longer receive input. Groups only close when the
// watermark moves, so the (O(open groups)) flush scan runs only then.
func (o *Agg) advance(ord schema.Value, emit Emit) {
	if o.hasWM && !o.newer(ord, o.wm) {
		return
	}
	o.wm = ord.Clone()
	o.hasWM = true
	o.flushClosed(emit)
}

// newer reports whether a extends the watermark past b.
func (o *Agg) newer(a, b schema.Value) bool {
	if o.spec.Desc {
		return a.Compare(b) < 0
	}
	return a.Compare(b) > 0
}

// closed reports whether a group at ord can no longer receive tuples given
// the watermark.
func (o *Agg) closed(ord schema.Value) bool {
	if !o.hasWM {
		return false
	}
	if o.spec.Band == 0 {
		return o.newer(o.wm, ord)
	}
	// Banded: the group closes once the watermark is more than Band past
	// its ordered value. Band requires a numeric key.
	band := float64(o.spec.Band)
	if o.spec.Desc {
		return o.wm.Float() < ord.Float()-band
	}
	return o.wm.Float() > ord.Float()+band
}

func (o *Agg) flushClosed(emit Emit) {
	var closed []*aggGroup
	for _, g := range o.groups {
		if o.closed(g.ord) {
			closed = append(closed, g)
		}
	}
	if len(closed) == 0 {
		return
	}
	o.sortGroups(closed)
	for _, g := range closed {
		delete(o.groups, g.key)
		o.emitGroup(g, emit)
	}
}

// sortGroups orders flushed groups by ordered value then group key so the
// output stream is deterministic and carries the imputed ordering.
func (o *Agg) sortGroups(gs []*aggGroup) {
	sort.Slice(gs, func(i, j int) bool {
		c := gs[i].ord.Compare(gs[j].ord)
		if c != 0 {
			if o.spec.Desc {
				return c > 0
			}
			return c < 0
		}
		return gs[i].key < gs[j].key
	})
}

func (o *Agg) emitGroup(g *aggGroup, emit Emit) {
	post := make(schema.Tuple, len(g.gvals)+len(g.states))
	copy(post, g.gvals)
	for i, s := range g.states {
		post[len(g.gvals)+i] = s.Result()
	}
	if o.spec.Having != nil {
		pass, ok := EvalPred(o.spec.Having, post, o.spec.Ctx)
		if !ok || !pass {
			o.stats.Dropped.Add(1)
			return
		}
	}
	outRow := make(schema.Tuple, len(o.spec.PostSelect))
	for i, e := range o.spec.PostSelect {
		v, ok := e.Eval(post, o.spec.Ctx)
		if !ok {
			o.stats.Dropped.Add(1)
			return
		}
		outRow[i] = v
	}
	o.stats.Out.Add(1)
	emit(TupleMsg(outRow))
}

// emitHeartbeat publishes the downstream bound implied by the watermark:
// every group still open has an ordered value within Band of the
// watermark, so downstream will never see an output row whose ordered
// column is below watermark - Band.
func (o *Agg) emitHeartbeat(emit Emit) {
	if !o.hasWM || o.spec.OrdGroup < 0 {
		return
	}
	post := make(schema.Tuple, len(o.spec.GroupExprs)+len(o.spec.Aggs))
	bound := o.wm
	if o.spec.Band != 0 {
		if o.spec.Desc {
			bound = schema.MakeUint(o.wm.Uint() + o.spec.Band)
		} else if o.wm.Uint() >= o.spec.Band {
			bound = schema.MakeUint(o.wm.Uint() - o.spec.Band)
		} else {
			bound = schema.MakeUint(0)
		}
	}
	post[o.spec.OrdGroup] = bound
	outBounds := make(schema.Tuple, len(o.spec.PostSelect))
	for i, e := range o.spec.PostSelect {
		v, ok := e.Eval(post, o.spec.Ctx)
		if ok && !v.IsNull() {
			outBounds[i] = v
		}
	}
	emit(HeartbeatMsg(outBounds))
}

// FlushAll implements Operator: emits every open group (the user-requested
// flush the paper describes for queries without an ordered group key).
func (o *Agg) FlushAll(emit Emit) error {
	all := make([]*aggGroup, 0, len(o.groups))
	for _, g := range o.groups {
		all = append(all, g)
	}
	o.sortGroups(all)
	for _, g := range all {
		delete(o.groups, g.key)
		o.emitGroup(g, emit)
	}
	return nil
}
