package rts

import (
	"testing"
	"time"

	"gigascope/internal/pkt"
)

// TestHeartbeatDropAccounting pins the heartbeat side of the shed policy:
// heartbeat-only batches never block, so on a full ring they are discarded
// — and counted in NodeStats.HBDrop, separately from the exact per-tuple
// RingDrop accounting.
func TestHeartbeatDropAccounting(t *testing.T) {
	cat := newCatalog(t)
	// A 1-usec heartbeat interval makes every injected packet due for a
	// source heartbeat, so each Inject publishes a tuple batch followed by
	// a heartbeat-only batch.
	m := NewManager(cat, Config{HeartbeatUsec: 1})
	cq := mustCompile(t, cat, `
		DEFINE { query_name alltcp; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	slow, err := m.Subscribe("alltcp", 1) // one slot, never read while running
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		p := tcpPkt(uint64(i+1), 0x0a000001, 80, "x")
		m.Inject("eth0", &p)
	}
	m.Stop()

	slowRows := drain(t, slow)
	var ns NodeStats
	for _, s := range m.Stats() {
		if s.Name == "alltcp" {
			ns = s
		}
	}
	if ns.HBDrop == 0 {
		t.Error("HBDrop = 0, want > 0 (heartbeat-only batches discarded at the full ring)")
	}
	// Tuple accounting stays exact: heartbeat batches contribute nothing
	// to RingDrop, so kept + shed reconciles to the tuple count.
	if want := uint64(n - len(slowRows)); ns.RingDrop != want {
		t.Errorf("RingDrop = %d, want %d (n=%d, ring kept %d)", ns.RingDrop, want, n, len(slowRows))
	}
	if ns.RingDrop == 0 {
		t.Error("expected the unread ring to force tuple shedding")
	}
}

// TestCancelPrunedOnNextPublish is the regression test for the Cancel
// drain-goroutine leak: a cancelled subscription must have its channel
// closed by the publisher's next publish — without waiting for Stop — so
// the short-lived drain goroutine exits instead of idling forever.
func TestCancelPrunedOnNextPublish(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name port80; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	victim, err := m.Subscribe("port80", 8)
	if err != nil {
		t.Fatal(err)
	}
	keeper, err := m.Subscribe("port80", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	p := tcpPkt(1, 0x0a000001, 80, "x")
	m.Inject("eth0", &p)

	victim.Cancel()
	p2 := tcpPkt(2, 0x0a000002, 80, "x")
	m.Inject("eth0", &p2) // this publish must prune and close victim.C

	deadline := time.After(5 * time.Second)
	for {
		var closed bool
		select {
		case _, ok := <-victim.C:
			closed = !ok
		case <-deadline:
			t.Fatal("cancelled subscription's channel was not closed by the next publish")
		}
		if closed {
			break
		}
	}

	// The surviving subscriber is unaffected by the prune.
	m.Stop()
	if rows := drain(t, keeper); len(rows) != 2 {
		t.Errorf("keeper got %d tuples, want 2", len(rows))
	}
}

// TestMaxBatchFlushPolicy pins the Config.MaxBatch knob and the flush-reason
// accounting: one poll window of 10 packets under MaxBatch 4 crosses the
// ring as batches of 4, 4, and 2 (two size flushes, one window flush).
func TestMaxBatchFlushPolicy(t *testing.T) {
	cat := newCatalog(t)
	// Push heartbeats out of the way so only size/window flushes fire.
	m := NewManager(cat, Config{MaxBatch: 4, HeartbeatUsec: 1 << 60})
	cq := mustCompile(t, cat, `
		DEFINE { query_name port80; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("port80", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	pkts := make([]pkt.Packet, 10)
	window := make([]*pkt.Packet, 10)
	for i := range pkts {
		pkts[i] = tcpPkt(uint64(i+1), 0x0a000001, 80, "x")
		window[i] = &pkts[i]
	}
	m.InjectBatch("eth0", window)
	m.Stop()

	var sizes []int
	for b := range sub.C {
		sizes = append(sizes, len(b))
	}
	want := []int{4, 4, 2}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes = %v, want %v", sizes, want)
		}
	}
	for _, ns := range m.Stats() {
		if ns.Name != "port80" {
			continue
		}
		if ns.FlushSize != 2 || ns.FlushWindow != 1 {
			t.Errorf("flush reasons = size %d, window %d; want 2, 1", ns.FlushSize, ns.FlushWindow)
		}
		if ns.Batches != 3 || ns.BatchTuples != 10 {
			t.Errorf("occupancy counters = %d batches, %d tuples; want 3, 10", ns.Batches, ns.BatchTuples)
		}
	}
}

// TestInboxDepthConfig smoke-tests the HFTA inbox knob at its minimum: a
// one-batch inbox throttles the forwarders but loses nothing (the HFTA edge
// backpressures rather than sheds).
func TestInboxDepthConfig(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{InboxDepth: 1, MaxBatch: 2})
	cq := mustCompile(t, cat, `
		DEFINE { query_name http; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("http", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		p := tcpPkt(uint64(i+1), 0x0a000001, 80, "GET / HTTP/1.1\r\n")
		m.Inject("", &p)
	}
	m.Stop()
	if rows := drain(t, sub); len(rows) != n {
		t.Errorf("got %d tuples through a depth-1 inbox, want %d", len(rows), n)
	}
}
