package core

import (
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// imputeSchema declares one column of each ordering flavor.
func imputeSchema() *schema.Schema {
	return &schema.Schema{
		Name: "s", Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "ts", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderStrictIncreasing}},
			{Name: "t", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "d", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderDecreasing}},
			{Name: "b", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: 30}},
			{Name: "n", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderNonrepeating}},
			{Name: "x", Type: schema.TUint},
			{Name: "g", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"x"}}},
		},
	}
}

func impute(t *testing.T, exprText string) schema.Ordering {
	t.Helper()
	q, err := gsql.ParseQuery("SELECT " + exprText + " FROM s")
	if err != nil {
		t.Fatalf("parse %q: %v", exprText, err)
	}
	return imputeExpr(q.Select[0].Expr, imputeSchema(), "s")
}

func TestImputeColumnPassThrough(t *testing.T) {
	cases := map[string]schema.OrderKind{
		"ts": schema.OrderStrictIncreasing,
		"t":  schema.OrderIncreasing,
		"d":  schema.OrderDecreasing,
		"b":  schema.OrderBandedIncreasing,
		"n":  schema.OrderNonrepeating,
		"x":  schema.OrderNone,
	}
	for expr, want := range cases {
		if got := impute(t, expr); got.Kind != want {
			t.Errorf("impute(%s) = %s, want kind %d", expr, got, want)
		}
	}
}

func TestImputeShiftPreservesEverything(t *testing.T) {
	// The paper's example: a projection computing ts+c keeps the
	// property.
	for _, expr := range []string{"ts + 3600", "ts - 5", "t + 1", "b + 10"} {
		got := impute(t, expr)
		if !got.Monotone() {
			t.Errorf("impute(%s) = %s, want monotone", expr, got)
		}
	}
	if got := impute(t, "ts + 1"); got.Kind != schema.OrderStrictIncreasing {
		t.Errorf("strictness lost under shift: %s", got)
	}
	if got := impute(t, "b + 10"); got.Band != 30 {
		t.Errorf("band changed under shift: %s", got)
	}
}

func TestImputeDivisionBuckets(t *testing.T) {
	// time/60: strictness lost, increasing kept — the canonical GSQL
	// bucketing idiom (§2.2).
	if got := impute(t, "ts/60"); got.Kind != schema.OrderIncreasing {
		t.Errorf("ts/60 = %s", got)
	}
	if got := impute(t, "d/10"); got.Kind != schema.OrderDecreasing {
		t.Errorf("d/10 = %s", got)
	}
	// banded(30)/60 -> banded(ceil(30/60)) = banded(1).
	got := impute(t, "b/60")
	if got.Kind != schema.OrderBandedIncreasing || got.Band != 1 {
		t.Errorf("b/60 = %s, want banded_increasing(1)", got)
	}
	// banded(30)/7 -> banded(ceil(30/7)) = banded(5).
	got = impute(t, "b/7")
	if got.Band != 5 {
		t.Errorf("b/7 = %s, want band 5", got)
	}
	// const/expr is not monotone.
	if got := impute(t, "60/ts"); got.Kind != schema.OrderNone {
		t.Errorf("60/ts = %s", got)
	}
	// Division by zero collapses.
	if got := impute(t, "ts/0"); got.Kind != schema.OrderNone {
		t.Errorf("ts/0 = %s", got)
	}
}

func TestImputeMultiplication(t *testing.T) {
	if got := impute(t, "ts * 1000"); got.Kind != schema.OrderStrictIncreasing {
		t.Errorf("ts*1000 = %s", got)
	}
	got := impute(t, "b * 2")
	if got.Kind != schema.OrderBandedIncreasing || got.Band != 60 {
		t.Errorf("b*2 = %s, want band 60", got)
	}
	if got := impute(t, "ts * 0"); got.Kind != schema.OrderNone {
		t.Errorf("ts*0 = %s", got)
	}
	if got := impute(t, "1000 * ts"); got.Kind != schema.OrderStrictIncreasing {
		t.Errorf("1000*ts = %s", got)
	}
}

func TestImputeNegationFlips(t *testing.T) {
	if got := impute(t, "-ts"); got.Kind != schema.OrderStrictDecreasing {
		t.Errorf("-ts = %s", got)
	}
	if got := impute(t, "-d"); got.Kind != schema.OrderIncreasing {
		t.Errorf("-d = %s", got)
	}
	// const - expr also flips.
	if got := impute(t, "1000000 - t"); got.Kind != schema.OrderDecreasing {
		t.Errorf("1000000-t = %s", got)
	}
	// Nonrepeating survives negation.
	if got := impute(t, "-n"); got.Kind != schema.OrderNonrepeating {
		t.Errorf("-n = %s", got)
	}
}

func TestImputeOpaqueOperationsDropOrdering(t *testing.T) {
	for _, expr := range []string{
		"ts % 60",      // wraps
		"ts & 255",     // wraps
		"ts + x",       // two columns
		"str_len('a')", // function call
		"to_uint(ts)",  // even monotone functions are opaque
	} {
		if got := impute(t, expr); got.Kind != schema.OrderNone {
			t.Errorf("impute(%s) = %s, want none", expr, got)
		}
	}
}

func TestImputeInGroupDroppedBySelProj(t *testing.T) {
	// In-group orderings don't survive projection (the group columns may
	// be gone); buildSelProj conservatively drops them.
	cat := schema.NewCatalog()
	if err := cat.Register(imputeSchema()); err != nil {
		t.Fatal(err)
	}
	q, err := gsql.ParseQuery(`DEFINE { query_name p; } SELECT g, ts FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := cq.Output().Out
	if out.Cols[0].Ordering.Kind != schema.OrderNone {
		t.Errorf("g ordering = %s, want none", out.Cols[0].Ordering)
	}
	if out.Cols[1].Ordering.Kind != schema.OrderStrictIncreasing {
		t.Errorf("ts ordering = %s", out.Cols[1].Ordering)
	}
}

// Runtime soundness: every imputed ordering must hold on the actual
// output stream. Exercise the §2.2-style chain and check with
// OrderChecker.
func TestImputedOrderingsHoldAtRuntime(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name chain; }
		SELECT tb, destPort, count(*) FROM tcp
		GROUP BY time/60 as tb, destPort`, nil)
	lfta, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	hfta, err := cq.Nodes[1].Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := cq.Output().Out
	checkers := make([]*schema.OrderChecker, len(out.Cols))
	for i, c := range out.Cols {
		if c.Ordering.Usable() {
			checkers[i] = schema.NewOrderChecker(c.Ordering, nil)
		}
	}
	sinkErr := error(nil)
	sink := func(m execMessage) {
		if m.IsHeartbeat() || sinkErr != nil {
			return
		}
		for i, ch := range checkers {
			if ch == nil {
				continue
			}
			if err := ch.Observe(m.Tuple[i], m.Tuple); err != nil {
				sinkErr = err
			}
		}
	}
	mid := func(m execMessage) { hfta.Op.Push(0, m, sink) }
	for i := 0; i < 20000; i++ {
		p := pktBuild(uint64(i)*50_000, uint16(i%7*100+80))
		if err := lfta.PushPacket(&p, mid); err != nil {
			t.Fatal(err)
		}
	}
	lfta.Op.FlushAll(mid)
	hfta.Op.FlushAll(sink)
	if sinkErr != nil {
		t.Errorf("imputed ordering violated at runtime: %v", sinkErr)
	}
}

// Helpers shared by the runtime ordering test.
type execMessage = exec.Message

func pktBuild(usec uint64, port uint16) pkt.Packet {
	return pkt.BuildTCP(usec, pkt.TCPSpec{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: port})
}
