package rts

import (
	"fmt"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/pkt"
)

// Prefilter gating (paper §5): the script compiler factors the distinct
// cheap predicate terms of the LFTAs on one (interface, protocol) pair
// into a common prefilter evaluated once per packet; each member LFTA
// carries a bit mask of the terms that must all pass for a packet to be
// worth delivering. The RTS applies the gate at delivery time — a gated
// LFTA never sees packets its own predicate would reject — while the
// LFTA keeps its full predicate, so partial masks stay sound.
//
// The gate is installed before Start (like the LFTA set itself) and
// published on the interface through an atomic pointer: the capture path
// and the shard workers read it lock-free.

// gatingTable is one interface's installed prefilter state: the compiled
// groups plus the member gate of every gated LFTA, keyed by lower-cased
// node name.
type gatingTable struct {
	groups []*pfRuntime
	gates  map[string]gateRef
}

// gateRef names the prefilter group and term mask gating one LFTA.
type gateRef struct {
	group int
	mask  uint64
}

// pfRuntime is one compiled prefilter group with its per-context
// evaluation instances: insts[0] serves the inline capture path,
// insts[i] shard worker i — so gating never contends across shards.
type pfRuntime struct {
	pf    *core.Prefilter
	insts []*core.PrefilterInstance
	evals atomic.Uint64 // term evaluations performed by the gate
	gated atomic.Uint64 // packet deliveries skipped by the gate
}

// newGatingTable compiles the interface's prefilter set into runtime
// form with slots evaluation instances per group.
func newGatingTable(pfs []*core.Prefilter, slots int) (*gatingTable, error) {
	if slots < 1 {
		slots = 1
	}
	gt := &gatingTable{gates: make(map[string]gateRef)}
	for _, pf := range pfs {
		rt := &pfRuntime{pf: pf, insts: make([]*core.PrefilterInstance, slots)}
		for i := range rt.insts {
			inst, err := pf.NewInstance()
			if err != nil {
				return nil, err
			}
			rt.insts[i] = inst
		}
		gi := len(gt.groups)
		gt.groups = append(gt.groups, rt)
		for _, name := range pf.Members() {
			if mask, ok := pf.MemberMask(name); ok {
				gt.gates[name] = gateRef{group: gi, mask: mask}
			}
		}
	}
	return gt, nil
}

// deliverWindow pushes one poll window of packets through the gate to a
// set of LFTAs. Each group's term masks are evaluated at most once per
// window (lazily: only when a gated member is actually attached), using
// the instance in the given slot; ungated LFTAs receive the full window.
// A nil table is the ungated fast path. Heartbeats never pass through
// here — ordering bounds bypass the gate.
func deliverWindow(gt *gatingTable, slot int, window []*pkt.Packet, lftas []*queryNode) {
	if gt == nil || len(gt.groups) == 0 {
		for _, qn := range lftas {
			qn.pushPackets(window)
		}
		return
	}
	var masks [][]uint64
	var scratch []*pkt.Packet
	for _, qn := range lftas {
		ref, gated := gt.gates[qn.gateKey]
		if !gated {
			qn.pushPackets(window)
			continue
		}
		g := gt.groups[ref.group]
		if masks == nil {
			masks = make([][]uint64, len(gt.groups))
		}
		if masks[ref.group] == nil {
			masks[ref.group] = g.insts[slot].EvalBatch(window, make([]uint64, 0, len(window)))
			g.evals.Add(uint64(len(window) * g.pf.NumTerms()))
		}
		gm := masks[ref.group]
		scratch = scratch[:0]
		for i, p := range window {
			if gm[i]&ref.mask == ref.mask {
				scratch = append(scratch, p)
			}
		}
		g.gated.Add(uint64(len(window) - len(scratch)))
		if len(scratch) > 0 {
			qn.pushPackets(scratch)
		}
	}
}

// InstallPrefilters installs the script compiler's common prefilters on
// their interfaces (creating interfaces on demand, like AddQuery does for
// LFTA attachment). Like the LFTA set, the gate is part of the frozen
// capture path: installation is rejected once the manager has started.
// Installing again replaces an interface's previous gate wholesale.
func (m *Manager) InstallPrefilters(pfs []*core.Prefilter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("rts: manager stopped")
	}
	if m.started {
		return fmt.Errorf("rts: cannot install prefilters after start: stop the RTS, change the capture path, and restart (paper §3)")
	}
	byIface := make(map[*Interface][]*core.Prefilter)
	var order []*Interface
	for _, pf := range pfs {
		name := pf.Interface
		if name == "" {
			name = DefaultInterface
		}
		it := m.ifaceLocked(name)
		if byIface[it] == nil {
			order = append(order, it)
		}
		byIface[it] = append(byIface[it], pf)
	}
	for _, it := range order {
		gt, err := newGatingTable(byIface[it], m.cfg.shards())
		if err != nil {
			return err
		}
		it.gating.Store(gt)
	}
	return nil
}
