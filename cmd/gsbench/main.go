// gsbench regenerates the paper's evaluation: every experiment from the
// per-experiment index in DESIGN.md, printed as the tables/series the
// paper reports. Results are recorded in EXPERIMENTS.md.
//
// gsbench also hosts the standalone differential-equivalence sweep
// (`gsbench -run difftest [-seeds N]`), which is not an experiment but a
// correctness gate: it runs seeded random query/trace cases across the
// batch x shard x fault config matrix and diffs every output against the
// reference oracle (see internal/difftest).
//
//	gsbench [-run E1,E3] [-quick]
//	gsbench -run difftest [-seeds 50]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"gigascope/internal/difftest"
	"gigascope/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (E1..E13), 'difftest', 'difftest-dist', or 'all'")
	quick := flag.Bool("quick", false, "smaller workloads for a fast pass")
	seeds := flag.Int("seeds", 25, "seed count for -run difftest")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	all := want["ALL"]
	sel := func(id string) bool { return all || want[id] }

	secs := 3.0
	pkts := 200_000
	if *quick {
		secs = 1.0
		pkts = 40_000
	}

	if want["DIFFTEST"] {
		// difftest is a correctness sweep, not an experiment; it is only
		// run when named explicitly (never under 'all').
		n := 1200
		if *quick {
			n = 400
		}
		failures := difftest.RunMatrix(os.Stdout, *seeds, n)
		// The bounded-error sweep rides along: sketched aggregates checked
		// against the exact oracle within their declared (eps, delta).
		failures += difftest.RunApproxMatrix(os.Stdout, *seeds, n)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "gsbench: difftest: %d failing cells\n", failures)
			os.Exit(1)
		}
		return
	}

	if want["DIFFTEST-DIST"] {
		// The distributed correctness sweep: the same seeded cases run
		// through the placement coordinator across 2/3/4 in-process hosts
		// over unix sockets and diffed against the naive oracle.
		n := 1200
		if *quick {
			n = 400
		}
		failures := difftest.RunDistributedMatrix(os.Stdout, *seeds, n)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "gsbench: difftest-dist: %d failing cells\n", failures)
			os.Exit(1)
		}
		return
	}

	if sel("E1") {
		rows, err := experiments.E1(secs)
		check(err)
		experiments.PrintE1(os.Stdout, rows)
		pts, err := experiments.E1Curve(secs, []float64{60, 120, 180, 240, 360, 480, 540, 610, 700})
		check(err)
		experiments.PrintE1Curve(os.Stdout, pts)
		fmt.Println()
	}
	if sel("E2") {
		rows, err := experiments.E2(
			[]int{64, 256, 1024, 4096, 16384},
			[]int{100, 1000, 10000},
			pkts)
		check(err)
		experiments.PrintE2(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E3") {
		rows, err := experiments.E3(pkts/4, 100_000)
		check(err)
		experiments.PrintE3(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E4") {
		rows, err := experiments.E4(pkts)
		check(err)
		experiments.PrintE4(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E5") {
		row, err := experiments.E5(pkts * 2)
		check(err)
		experiments.PrintE5(os.Stdout, row)
		fmt.Println()
	}
	if sel("E6") {
		joins, err := experiments.E6Join(pkts/4, []int64{0, 1, 2, 4, 8})
		check(err)
		agg, err := experiments.E6Agg(pkts / 4)
		check(err)
		experiments.PrintE6(os.Stdout, joins, agg)
		fmt.Println()
	}
	if sel("E7") {
		rows, err := experiments.E7(pkts/2, []float64{0.01, 0.05, 0.2, 0.5, 1.0}, 54)
		check(err)
		experiments.PrintE7(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E8") {
		rows, err := experiments.E8(secs, []float64{60, 120, 240, 360, 450, 490, 550, 700, 900})
		check(err)
		experiments.PrintE8(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E9") {
		rows, err := experiments.E9(pkts*2, nil)
		check(err)
		experiments.PrintE9(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E10") {
		rows, err := experiments.E10(pkts)
		check(err)
		experiments.PrintE10(os.Stdout, rows)
		fmt.Println()
	}
	if sel("E11") {
		flows := []int{10_000, 100_000, 1_000_000}
		if *quick {
			flows = []int{10_000, 100_000}
		}
		rows, err := experiments.E11(flows)
		check(err)
		ctrl, err := experiments.E11Control(pkts)
		check(err)
		experiments.PrintE11(os.Stdout, rows, ctrl)
		fmt.Println()
	}
	if sel("E12") {
		rows, identical, err := experiments.E12(pkts / 2)
		check(err)
		experiments.PrintE12(os.Stdout, rows, identical)
		fmt.Println()
	}
	if sel("E13") {
		rows, err := experiments.E13(pkts * 2)
		check(err)
		experiments.PrintE13(os.Stdout, rows)
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
		os.Exit(1)
	}
}
