package gigascope

import (
	"sort"
	"strings"
	"testing"
)

const clusterScript = `
DEFINE { query_name feed; }
SELECT time, srcIP, destIP, destPort FROM eth0.TCP
WHERE ipversion = 4 and protocol = 6;

DEFINE { query_name counts; }
SELECT time, destPort, count(*) FROM feed
GROUP BY time, destPort;
`

const clusterTrioTopo = `
node capA { cpu 50  capture eth0[0/2]  uplink agg }
node capB { cpu 50  capture eth0[1/2]  uplink agg }
node agg  { cpu 1000  sink }
`

// driveClusterTraffic plays the deterministic seeded traffic in poll
// windows through any injector — a single System or a Cluster — so both
// sides of a comparison see identical packets and clock advancement.
func driveClusterTraffic(t *testing.T, inject func(string, []*Packet), advance func(uint64)) {
	t.Helper()
	gen, err := NewTrafficGenerator(TrafficConfig{
		Seed: 42,
		Classes: []TrafficClass{
			{Name: "web", RateMbps: 20, PktBytes: 1000, DstPort: 80, Proto: ProtoTCP},
			{Name: "tls", RateMbps: 10, PktBytes: 800, DstPort: 443, Proto: ProtoTCP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2_000_000
	const step = horizon / 40
	for usec := uint64(step); usec <= horizon; usec += step {
		var window []*Packet
		gen.Until(usec, func(p *Packet) { window = append(window, p) })
		inject("eth0", window)
		advance(usec)
	}
}

func sortedRows(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

// TestClusterCaptureSplitByteIdentity pins the coordinator's core
// correctness claim: a capture-split 3-host placement (two capture hosts
// each seeing half the packets, one aggregation sink) computes the same
// multiset of output tuples as the single-process run.
func TestClusterCaptureSplitByteIdentity(t *testing.T) {
	// Reference: everything in one System.
	single, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := single.AddScript(clusterScript); err != nil {
		t.Fatal(err)
	}
	refFeed, err := single.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	refCounts, err := single.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Start(); err != nil {
		t.Fatal(err)
	}
	driveClusterTraffic(t, single.InjectBatch, single.AdvanceClock)
	single.Stop()
	wantFeed := sortedRows(collectRows(t, refFeed))
	wantCounts := sortedRows(collectRows(t, refCounts))
	if len(wantFeed) == 0 || len(wantCounts) == 0 {
		t.Fatalf("reference run produced no rows (feed=%d counts=%d)", len(wantFeed), len(wantCounts))
	}

	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{Topology: topo, Script: clusterScript, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedSub, err := c.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	countsSub, err := c.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}
	driveClusterTraffic(t, c.InjectBatch, c.AdvanceClock)
	c.Stop()
	gotFeed := sortedRows(collectRows(t, feedSub))
	gotCounts := sortedRows(collectRows(t, countsSub))

	diff := func(name string, want, got []string) {
		if len(want) != len(got) {
			t.Fatalf("%s: distributed run has %d rows, single-process has %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s row %d differs:\n single: %s\n cluster: %s", name, i, want[i], got[i])
			}
		}
	}
	diff("feed", wantFeed, gotFeed)
	diff("counts", wantCounts, gotCounts)

	// Fault-free clusters must see no transport degradation.
	for host, stats := range c.Stats() {
		for _, ns := range stats {
			if ns.Reconnects != 0 || ns.GapEvents != 0 {
				t.Errorf("host %s node %s: reconnects=%d gaps=%d in a fault-free run",
					host, ns.Name, ns.Reconnects, ns.GapEvents)
			}
		}
	}
}

// TestClusterManifestDeterminism pins that placement is a pure function
// of (script, topology, seed): two independent derivations render
// byte-identically, and LFTAs land on the hosts that capture their
// interfaces.
func TestClusterManifestDeterminism(t *testing.T) {
	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := PlaceScript(clusterScript, topo, Config{}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := PlaceScript(clusterScript, topo, Config{}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Render() != m2.Render() {
		t.Fatalf("same inputs, different manifests:\n%s\nvs\n%s", m1.Render(), m2.Render())
	}
	for _, h := range m1.Hosts {
		for _, a := range h.Assignments {
			if a.Level != "lfta" {
				continue
			}
			tn := topo.Node(h.Name)
			if _, ok := tn.CaptureOf(a.Interface); !ok {
				t.Errorf("LFTA %s placed on %s, which does not capture %s", a.Node, h.Name, a.Interface)
			}
		}
	}
	if m1.Sink != "agg" {
		t.Errorf("sink = %s, want agg", m1.Sink)
	}
	if got := m1.Order[len(m1.Order)-1]; got != "agg" {
		t.Errorf("start order %v should end at the sink", m1.Order)
	}
}

// TestClusterPlacementStream pins the SYSMON.Placement surface: the sink
// host of a self-monitoring cluster publishes one row per assignment
// with host budget utilization attached.
func TestClusterPlacementStream(t *testing.T) {
	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Topology: topo,
		Script:   clusterScript,
		Seed:     3,
		System:   Config{SelfMonitor: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(StreamPlacement, 8192)
	if err != nil {
		t.Fatal(err)
	}
	driveClusterTraffic(t, c.InjectBatch, c.AdvanceClock)
	c.Stop()
	rows := collectRows(t, sub)
	if len(rows) == 0 {
		t.Fatal("no SYSMON.Placement rows")
	}
	// Every assignment in the manifest appears at least once.
	assignments := 0
	for _, h := range c.Manifest().Hosts {
		for _, a := range h.Assignments {
			assignments++
			found := false
			for _, r := range rows {
				if strings.Contains(r, a.Node) && strings.Contains(r, h.Name) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("assignment %s@%s missing from SYSMON.Placement rows", a.Node, h.Name)
			}
		}
	}
	if assignments == 0 {
		t.Fatal("manifest has no assignments")
	}
}
