package exec

import (
	"strings"
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// Targeted tests for operator surface not exercised by the main suites:
// accessors, unary expression evaluation, LFTA heartbeats, the ordered
// join at the operator level, and message rendering.

func TestOperatorAccessors(t *testing.T) {
	agg := buildDirectCountQuiet()
	if agg.Ports() != 1 || agg.OutSchema().Name != "out" {
		t.Error("Agg accessors")
	}
	if agg.Stats().In != 0 {
		t.Error("fresh stats nonzero")
	}
	l := buildLFTACountQuiet(64)
	if l.Ports() != 1 || l.OutSchema() == nil {
		t.Error("LFTAAgg accessors")
	}
	j := buildJoinQuiet(0, 0)
	if j.Ports() != 2 || j.OutSchema() == nil {
		t.Error("Join accessors")
	}
	m, _ := NewMerge([]int{0, 0}, outSchema("time"))
	if m.Ports() != 2 || m.OutSchema() == nil {
		t.Error("Merge accessors")
	}
	sp := NewSelProj(nil, quietCompile(quietInSchema(), "x", "time"), nil, nil, outSchema("time"))
	if sp.OutSchema().Name != "out" {
		t.Error("SelProj accessors")
	}
}

func TestUnaryExpressionEval(t *testing.T) {
	s := quietInSchema()
	row := mkRowQuiet(5, 80)
	row[5] = schema.MakeInt(-4)
	row[6] = schema.MakeFloat(2.5)

	neg := quietCompile(s, "x", "-delta")[0]
	if v, ok := neg.Eval(row, nil); !ok || v.Int() != 4 {
		t.Errorf("-delta = %v", v)
	}
	if neg.Type() != schema.TInt {
		t.Errorf("neg type = %s", neg.Type())
	}
	negf := quietCompile(s, "x", "-ratio")[0]
	if v, _ := negf.Eval(row, nil); v.Float() != -2.5 {
		t.Errorf("-ratio = %v", v)
	}
	if negf.Type() != schema.TFloat {
		t.Errorf("negf type = %s", negf.Type())
	}
	bn := quietCompile(s, "x", "~destPort")[0]
	if v, _ := bn.Eval(row, nil); v.Uint() != ^uint64(80) {
		t.Errorf("~destPort = %v", v)
	}
	if bn.Type() != schema.TUint {
		t.Errorf("bitnot type = %s", bn.Type())
	}
	// NULL propagation through unary operators.
	nullRow := make(schema.Tuple, len(s.Cols))
	for _, e := range []Expr{neg, negf, bn} {
		if v, ok := e.Eval(nullRow, nil); !ok || !v.IsNull() {
			t.Errorf("unary over NULL = %v, %v", v, ok)
		}
	}
	notE := quietCompile(s, "x", "not (destPort = 80)")[0]
	if v, _ := notE.Eval(nullRow, nil); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
}

func TestCtxRebind(t *testing.T) {
	s := quietInSchema()
	q, err := parseSelect("str_regex_match(payload, $pat)")
	if err != nil {
		t.Fatal(err)
	}
	c := &Compiler{Reg: funcs.Global, Params: map[string]schema.Type{"pat": schema.TString},
		Resolve: SchemaResolver(s, "x")}
	e, err := c.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtx(c.Handles, map[string]schema.Value{"pat": schema.MakeStr("^GET")})
	if err != nil {
		t.Fatal(err)
	}
	row := mkRowQuiet(1, 80)
	row[4] = schema.MakeStr("GET / HTTP/1.1")
	if v, _ := e.Eval(row, ctx); !v.Bool() {
		t.Fatal("initial pattern failed")
	}
	// Rebind rebuilds the compiled-regex handle from the new parameter.
	if err := ctx.Rebind(c.Handles, map[string]schema.Value{"pat": schema.MakeStr("^POST")}); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Eval(row, ctx); v.Bool() {
		t.Error("rebind did not take effect")
	}
	if err := ctx.Rebind(c.Handles, nil); err == nil {
		t.Error("rebind without binding succeeded")
	}
}

func TestLFTAAggHeartbeat(t *testing.T) {
	op := buildLFTACountQuiet(64)
	var out []Message
	emit := Collect(&out)
	op.Push(0, TupleMsg(mkRowQuiet(10, 80)), emit)
	bounds := make(schema.Tuple, len(quietInSchema().Cols))
	bounds[0] = schema.MakeUint(120) // time >= 120 closes minute 0
	op.Push(0, HeartbeatMsg(bounds), emit)
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][2].Uint() != 1 {
		t.Fatalf("rows = %v", rows)
	}
	last := out[len(out)-1]
	if !last.IsHeartbeat() || last.Bounds[0].Uint() != 2 {
		t.Errorf("forwarded bound = %v", last)
	}
}

func TestJoinSortOutputOperatorLevel(t *testing.T) {
	ls, rs := joinLeftSchema(), joinRightSchema()
	j, err := NewJoin(JoinSpec{
		OrdL: quietCompile(ls, "L", "time")[0],
		OrdR: quietCompile(rs, "R", "time")[0],
		LowSlack: 2, HighSlack: 2,
		EqL: quietCompile(ls, "L", "src"),
		EqR: quietCompile(rs, "R", "src"),
		Outs: quietCompile(outSchema("ltime", "lsrc", "rtime", "rsrc", "peer"), "c", "ltime", "peer"),
		Out:  outSchema("time", "peer"),
		OutOrdL: 0, OutOrdR: -1,
		SortOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	// Right side runs ahead of left so matches arrive out of left-order.
	for i := 0; i < 200; i++ {
		tl := uint64(i / 2)
		tr := uint64(i/2) + uint64(i%2)*2
		j.Push(0, TupleMsg(lrow(tl, 7)), emit)
		j.Push(1, TupleMsg(rrow(tr, 7, tr)), emit)
	}
	j.FlushAll(emit)
	rows := tuplesOf(out)
	if len(rows) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].Compare(rows[i-1][0]) < 0 {
			t.Fatalf("SortOutput violated at %d: %v then %v", i, rows[i-1], rows[i])
		}
	}
	// SortOutput without the ordered column is rejected.
	if _, err := NewJoin(JoinSpec{
		OrdL: quietCompile(ls, "L", "time")[0],
		OrdR: quietCompile(rs, "R", "time")[0],
		Outs: quietCompile(outSchema("ltime", "lsrc", "rtime", "rsrc", "peer"), "c", "peer"),
		Out:  outSchema("peer"), OutOrdL: -1, OutOrdR: -1, SortOutput: true,
	}); err == nil {
		t.Error("SortOutput without OutOrdL accepted")
	}
}

func TestJoinBufferCompaction(t *testing.T) {
	// Drive enough evictions to trigger maybeCompact's slice rebuild.
	j := buildJoinQuiet(0, 0)
	emit := func(Message) {}
	for i := 0; i < 10_000; i++ {
		t := uint64(i)
		j.Push(0, TupleMsg(lrow(t, uint64(i%4))), emit)
		j.Push(1, TupleMsg(rrow(t, uint64(i%4), t)), emit)
	}
	if b := j.Buffered(0); b > 16 {
		t.Errorf("left buffer = %d after compaction", b)
	}
}

func TestMessageString(t *testing.T) {
	m := TupleMsg(schema.Tuple{schema.MakeUint(1)})
	if m.String() != "[1]" {
		t.Errorf("tuple msg = %q", m.String())
	}
	hb := HeartbeatMsg(schema.Tuple{schema.MakeUint(2)})
	if !strings.HasPrefix(hb.String(), "HB") {
		t.Errorf("hb msg = %q", hb.String())
	}
}

func TestRunTuplesRejectsBinaryOperator(t *testing.T) {
	j := buildJoinQuiet(0, 0)
	if _, err := RunTuples(j, nil); err == nil {
		t.Error("RunTuples accepted a 2-port operator")
	}
}

func TestOrdKeyTypes(t *testing.T) {
	cases := []struct {
		v    schema.Value
		want int64
		ok   bool
	}{
		{schema.MakeUint(7), 7, true},
		{schema.MakeInt(-3), -3, true},
		{schema.MakeFloat(2.9), 2, true},
		{schema.MakeIP(5), 5, true},
		{schema.MakeStr("x"), 0, false},
	}
	for _, c := range cases {
		got, ok := ordKey(c.v)
		if ok != c.ok || got != c.want {
			t.Errorf("ordKey(%v) = %d, %v", c.v, got, ok)
		}
	}
}
