package core

import (
	"fmt"
	"sort"

	"gigascope/internal/gsql"
	"gigascope/internal/plan"
)

// Lowering: semantic analysis turns each parsed query into the logical
// plan IR. The LFTA/HFTA split decision (which conjuncts are cheap, where
// the boundary sits, paper §3) is made here and recorded structurally in
// the tree; the rewrite passes then move predicates and fold duplicate
// boundaries, and emit.go instantiates executable nodes from the result.

// scanOf converts a resolved source reference into an IR scan.
func scanOf(src SourceRef) *plan.Scan {
	return &plan.Scan{
		Name:       src.Name,
		Interface:  src.Interface,
		Binding:    src.Binding,
		IsProtocol: src.IsProtocol,
		Schema:     src.Schema,
	}
}

// refOf converts an IR scan back into a source reference for emit.
func refOf(s *plan.Scan) SourceRef {
	return SourceRef{
		Name:       s.Name,
		Interface:  s.Interface,
		Binding:    s.Binding,
		Schema:     s.Schema,
		IsProtocol: s.IsProtocol,
	}
}

// lower builds the query's logical plan.
func (a *analyzer) lower(name string, srcs []SourceRef, q *gsql.Query) (*plan.QueryPlan, error) {
	var root plan.Node
	var err error
	switch {
	case q.Kind == gsql.KindMerge:
		root, err = a.lowerMerge(name, srcs, q)
	case len(srcs) == 2:
		root, err = a.lowerJoin(name, srcs, q)
	case len(srcs) == 1:
		root, err = a.lowerSingle(name, srcs[0], q)
	default:
		err = fmt.Errorf("joins are restricted to two streams (paper §2.2); got %d sources", len(srcs))
	}
	if err != nil {
		return nil, err
	}
	return &plan.QueryPlan{Name: name, Root: root, Query: q}, nil
}

// lowerSingle lowers a single-source SELECT, choosing the boundary
// placement that compileSingle used to decide monolithically.
func (a *analyzer) lowerSingle(name string, src SourceRef, q *gsql.Query) (plan.Node, error) {
	isAgg := len(q.GroupBy) > 0
	if !isAgg {
		for _, item := range q.Select {
			if a.hasAggregate(item.Expr) {
				return nil, fmt.Errorf("aggregate in SELECT requires GROUP BY")
			}
		}
	}

	if !src.IsProtocol {
		// Stream input: the whole query is one HFTA.
		var in plan.Node = scanOf(src)
		if q.Where != nil {
			in = &plan.Filter{Pred: q.Where, Input: in}
		}
		if isAgg {
			return &plan.Aggregate{GroupBy: q.GroupBy, Select: q.Select, Having: q.Having, Input: in}, nil
		}
		return &plan.Project{Items: q.Select, Input: in}, nil
	}

	// Protocol input: split (paper §3). Classify WHERE conjuncts by cost.
	var cheap, expensive []gsql.Expr
	for _, cj := range conjuncts(q.Where) {
		if a.exprCheap(cj) && !a.opts.disableSplit() {
			cheap = append(cheap, cj)
		} else {
			expensive = append(expensive, cj)
		}
	}

	if !isAgg && len(expensive) == 0 && a.selectableCheap(q) && !a.opts.disableSplit() {
		// The whole query runs as an LFTA under its own name.
		var in plan.Node = scanOf(src)
		if q.Where != nil {
			in = &plan.Filter{Pred: q.Where, Input: in}
		}
		return &plan.Boundary{
			Name: name, Mode: plan.ModeWhole, PrefilterGroup: -1,
			Input: &plan.Project{Items: q.Select, Input: in},
		}, nil
	}

	if isAgg && len(expensive) == 0 && a.aggSplittable(q) && !a.opts.disableSplit() {
		// Split aggregation: sub-aggregates below the boundary, super-
		// aggregates above (paper §3).
		var in plan.Node = scanOf(src)
		if w := conjoin(stripList(cheap)); w != nil {
			in = &plan.Filter{Pred: w, Input: in}
		}
		return &plan.Aggregate{
			GroupBy: q.GroupBy, Select: q.Select, Having: q.Having,
			Input: &plan.Boundary{
				Name: mangle(name, 0), Mode: plan.ModeSplitAgg, PrefilterGroup: -1,
				Input: in,
			},
		}, nil
	}

	// Pass-through boundary: the LFTA filters with the cheap conjuncts
	// and projects every column the HFTA needs.
	items, err := a.passThroughItems(src, q)
	if err != nil {
		return nil, err
	}
	var in plan.Node = scanOf(src)
	if w := conjoin(stripList(cheap)); w != nil {
		in = &plan.Filter{Pred: w, Input: in}
	}
	var above plan.Node = &plan.Boundary{
		Name: mangle(name, 0), Mode: plan.ModePassThrough, PrefilterGroup: -1,
		Input: &plan.Project{Items: items, Input: in},
	}
	if w := conjoin(stripList(expensive)); w != nil {
		above = &plan.Filter{Pred: w, Input: above}
	}
	if isAgg {
		return &plan.Aggregate{GroupBy: q.GroupBy, Select: q.Select, Having: q.Having, Input: above}, nil
	}
	return &plan.Project{Items: q.Select, Input: above}, nil
}

// passThroughItems computes the pass-through LFTA's projection: every
// column the query references, in canonical source-schema order. The
// canonical order makes structurally equal queries produce identical
// boundary subplans regardless of reference order, so the sharing pass
// can fold them; it is safe because the HFTA resolves LFTA output columns
// by name.
func (a *analyzer) passThroughItems(src SourceRef, q *gsql.Query) ([]gsql.SelectItem, error) {
	var exprs []gsql.Expr
	for _, it := range q.Select {
		exprs = append(exprs, it.Expr)
	}
	for _, it := range q.GroupBy {
		exprs = append(exprs, it.Expr)
	}
	if q.Where != nil {
		exprs = append(exprs, q.Where)
	}
	if q.Having != nil {
		exprs = append(exprs, q.Having)
	}
	type colAt struct {
		idx  int
		item gsql.SelectItem
	}
	var cols []colAt
	for _, c := range colRefs(exprs) {
		if i, col := src.Schema.Col(c.Name); i >= 0 {
			cols = append(cols, colAt{idx: i, item: gsql.SelectItem{
				Expr: &gsql.ColRef{Name: col.Name, At: c.At},
			}})
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("query references no columns of %s", src.Schema.Name)
	}
	sort.SliceStable(cols, func(i, j int) bool { return cols[i].idx < cols[j].idx })
	items := make([]gsql.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = c.item
	}
	return items, nil
}

// lowerWrapped lowers the inputs of a join or merge: protocol sources
// become full-schema wrap boundaries, streams scan directly.
func lowerWrapped(name string, srcs []SourceRef) []plan.Node {
	inputs := make([]plan.Node, len(srcs))
	for i, src := range srcs {
		if !src.IsProtocol {
			inputs[i] = scanOf(src)
			continue
		}
		var items []gsql.SelectItem
		for _, c := range src.Schema.Cols {
			items = append(items, gsql.SelectItem{Expr: &gsql.ColRef{Name: c.Name}})
		}
		inputs[i] = &plan.Boundary{
			Name: mangle(name, i), Mode: plan.ModeWrap, PrefilterGroup: -1,
			Input: &plan.Project{Items: items, Input: scanOf(src)},
		}
	}
	return inputs
}

// lowerMerge lowers an N-way merge; a WHERE clause becomes a filter above
// the merge that the pushdown pass distributes into every branch.
func (a *analyzer) lowerMerge(name string, srcs []SourceRef, q *gsql.Query) (plan.Node, error) {
	var root plan.Node = &plan.Merge{Cols: q.MergeCols, Inputs: lowerWrapped(name, srcs)}
	if q.Where != nil {
		for _, cj := range conjuncts(q.Where) {
			// Merge predicates apply to every branch's positionally
			// identical schema, so they must be unqualified, and they must
			// be LFTA-safe because protocol branches evaluate them below
			// the boundary.
			bad := false
			gsql.Walk(cj, func(n gsql.Expr) bool {
				if c, ok := n.(*gsql.ColRef); ok && c.Table != "" {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return nil, fmt.Errorf("MERGE WHERE must use unqualified column names (it applies to every input): %s", cj)
			}
			if !a.exprCheap(cj) {
				return nil, fmt.Errorf("MERGE WHERE must be LFTA-safe (no expensive functions): %s", cj)
			}
		}
		root = &plan.Filter{Pred: q.Where, Input: root}
	}
	return root, nil
}

// lowerJoin lowers a two-stream join.
func (a *analyzer) lowerJoin(name string, srcs []SourceRef, q *gsql.Query) (plan.Node, error) {
	inputs := lowerWrapped(name, srcs)
	return &plan.Join{Left: inputs[0], Right: inputs[1], Pred: q.Where, Select: q.Select}, nil
}
