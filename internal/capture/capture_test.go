package capture

import (
	"testing"

	"gigascope/internal/pkt"
)

func testPacket(usec uint64, port uint16, payload int) pkt.Packet {
	return pkt.BuildTCP(usec, pkt.TCPSpec{
		SrcIP: 1, DstIP: 2, SrcPort: 30000, DstPort: port,
		Payload: make([]byte, payload),
	})
}

func TestStackNoLossAtLowRate(t *testing.T) {
	par := DefaultParams()
	for _, mode := range []Mode{ModeDiskDump, ModePcapDiscard, ModeHostLFTA, ModeNICLFTA} {
		st, err := NewStack(mode, par, HTTPPipeline(), 1)
		if err != nil {
			t.Fatal(err)
		}
		// 1000 packets at 10ms spacing: trivially sustainable.
		for i := uint64(0); i < 1000; i++ {
			p := testPacket(i*10_000, 80, 500)
			st.Arrive(&p)
		}
		s := st.Stats()
		if s.Lost() != 0 {
			t.Errorf("%s: lost %d at trivial rate", mode, s.Lost())
		}
		if s.Offered != 1000 {
			t.Errorf("%s: offered = %d", mode, s.Offered)
		}
	}
}

func TestStackDropsUnderOverload(t *testing.T) {
	par := DefaultParams()
	for _, mode := range []Mode{ModeDiskDump, ModePcapDiscard, ModeHostLFTA, ModeNICLFTA} {
		st, err := NewStack(mode, par, HTTPPipeline(), 1)
		if err != nil {
			t.Fatal(err)
		}
		// 200k packets in one virtual second: far past any capacity.
		for i := uint64(0); i < 200_000; i++ {
			p := testPacket(i*5, 80, 960)
			st.Arrive(&p)
		}
		if st.Stats().LossRate() < 0.3 {
			t.Errorf("%s: loss = %.3f at 200k pps, want heavy loss", mode, st.Stats().LossRate())
		}
	}
}

func TestNICModeFiltersWithoutHostCost(t *testing.T) {
	par := DefaultParams()
	st, err := NewStack(ModeNICLFTA, par, HTTPPipeline(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// All packets are port 443: the NIC discards everything; host never
	// sees a tuple.
	for i := uint64(0); i < 10_000; i++ {
		p := testPacket(i*100, 443, 500)
		st.Arrive(&p)
	}
	s := st.Stats()
	if s.NICFiltered != 10_000 || s.Delivered != 0 || s.Lost() != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInterruptLivelockShape(t *testing.T) {
	// Past saturation, increasing the offered rate must *decrease*
	// delivered throughput on the host paths (livelock), not plateau.
	par := DefaultParams()
	delivered := func(pps uint64) uint64 {
		st, _ := NewStack(ModePcapDiscard, par, Pipeline{}, 1)
		gap := uint64(1e6 / pps)
		for i := uint64(0); i < pps; i++ { // one virtual second
			p := testPacket(i*gap, 80, 960)
			st.Arrive(&p)
		}
		return st.Stats().Delivered - uint64(st.queueLen())
	}
	atSat := delivered(70_000)
	overloaded := delivered(300_000)
	if overloaded >= atSat {
		t.Errorf("no livelock: delivered %d at 70kpps, %d at 300kpps", atSat, overloaded)
	}
}

func TestDiskStallsOccur(t *testing.T) {
	par := DefaultParams()
	st, _ := NewStack(ModeDiskDump, par, Pipeline{}, 1)
	for i := uint64(0); i < 20_000; i++ {
		p := testPacket(i*200, 80, 960)
		st.Arrive(&p)
	}
	s := st.Stats()
	if s.DiskStalls == 0 {
		t.Error("no disk stalls recorded")
	}
	if s.DiskBytes == 0 {
		t.Error("no disk bytes recorded")
	}
}

func TestPaperSection4Shape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("single-goroutine simulation; too slow under the race detector")
	}
	// The headline result: the ordering and rough ratios of the four
	// configurations' maximum sustainable rates (paper §4: disk ≈ 180,
	// pcap ≈ 480, host-LFTA ≈ 480, NIC-LFTA ≈ 610 Mbit/s at 2% loss).
	if testing.Short() {
		t.Skip("short mode")
	}
	par := DefaultParams()
	pipe := HTTPPipeline()
	rates := make(map[Mode]float64)
	for _, mode := range []Mode{ModeDiskDump, ModePcapDiscard, ModeHostLFTA, ModeNICLFTA} {
		r, err := MaxSustainableRate(mode, par, pipe, 0.02, 2)
		if err != nil {
			t.Fatal(err)
		}
		rates[mode] = r
		t.Logf("%-30s %6.0f Mbit/s", ConfigurationName(mode), r)
	}
	disk, pcap, host, nicr := rates[ModeDiskDump], rates[ModePcapDiscard], rates[ModeHostLFTA], rates[ModeNICLFTA]
	// Ordering: disk worst by far; pcap and host-LFTA similar; NIC best.
	if !(disk < pcap && disk < host && nicr > pcap && nicr > host) {
		t.Fatalf("ordering wrong: disk=%.0f pcap=%.0f host=%.0f nic=%.0f", disk, pcap, host, nicr)
	}
	// Rough factors: disk ~2.2-3.2x below pcap; NIC 1.15-1.6x above host.
	if r := pcap / disk; r < 2.0 || r > 3.5 {
		t.Errorf("pcap/disk = %.2f, want ~2.7", r)
	}
	if r := nicr / host; r < 1.1 || r > 1.7 {
		t.Errorf("nic/host = %.2f, want ~1.3", r)
	}
	// pcap and host-LFTA "had similar performance".
	if r := pcap / host; r < 0.9 || r > 1.2 {
		t.Errorf("pcap/host = %.2f, want ~1.0", r)
	}
	// Absolute ballparks (generous bands around the paper's numbers).
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.0f Mbit/s, want in [%.0f, %.0f]", name, got, lo, hi)
		}
	}
	check("disk", disk, 120, 260)
	check("pcap", pcap, 380, 580)
	check("host-LFTA", host, 380, 580)
	check("NIC-LFTA", nicr, 520, 760)
}

func TestRunConfigurationCountsHTTP(t *testing.T) {
	stats, err := RunConfiguration(ModeHostLFTA, DefaultParams(), DefaultWorkload(0), HTTPPipeline(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matched == 0 {
		t.Error("no port-80 matches")
	}
	// All port-80 packets match the LFTA filter: at 60 Mbit/s everything
	// is delivered.
	if stats.Lost() != 0 {
		t.Errorf("loss at 60 Mbit/s: %+v", stats)
	}
}

func TestNewStackErrors(t *testing.T) {
	if _, err := NewStack(ModeHostLFTA, DefaultParams(), Pipeline{}, 1); err == nil {
		t.Error("LFTA mode without filter accepted")
	}
	if _, err := NewStack(Mode(99), DefaultParams(), Pipeline{}, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	bad := DefaultParams()
	bad.RingPackets = 0
	if _, err := NewStack(ModePcapDiscard, bad, Pipeline{}, 1); err == nil {
		t.Error("zero ring accepted")
	}
}
