package rts

import (
	"testing"
	"time"

	"gigascope/internal/faultinject"
	"gigascope/internal/pkt"
)

// A subscriber that never reads an LFTA stream must not block the
// capture path or its sibling subscribers, and every tuple shed at its
// full ring must land in the publisher's drop counters exactly.
func TestStalledSubscriberExactShedAccounting(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name st; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	const (
		n        = 100
		stallBuf = 8
	)
	stalledSub, err := m.Subscribe("st", stallBuf)
	if err != nil {
		t.Fatal(err)
	}
	// The sibling's ring is deep enough for every batch: it must see the
	// whole stream even while the stalled ring overflows.
	liveSub, err := m.Subscribe("st", n+8)
	if err != nil {
		t.Fatal(err)
	}
	staller := faultinject.NewStaller(stalledSub.C)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	injected := make(chan struct{})
	go func() {
		defer close(injected)
		for i := 0; i < n; i++ {
			// Microsecond-apart timestamps: no periodic heartbeats fire, so
			// every published batch is exactly one tuple and the shed
			// arithmetic is exact.
			p := pkt.BuildTCP(uint64(i+1), pkt.TCPSpec{
				SrcIP: uint32(i + 1), DstIP: 2, SrcPort: 30000, DstPort: 80,
			})
			m.Inject("", &p)
		}
	}()
	select {
	case <-injected:
	case <-time.After(5 * time.Second):
		t.Fatal("capture path blocked on a stalled subscriber")
	}
	m.Stop()
	if rows := drain(t, liveSub); len(rows) != n {
		t.Fatalf("sibling subscriber got %d rows, want %d", len(rows), n)
	}
	staller.Release()
	staller.Wait()
	// The stalled ring held exactly its capacity; everything else shed.
	if got := staller.Tuples(); got != stallBuf {
		t.Fatalf("stalled subscriber drained %d tuples, want %d", got, stallBuf)
	}
	ns := nodeStats(t, m, "st")
	if ns.RingDrop != n-stallBuf {
		t.Fatalf("RingDrop = %d, want %d (n=%d minus ring capacity %d)",
			ns.RingDrop, n-stallBuf, n, stallBuf)
	}
}

// Heartbeats must keep propagating past a stalled subscriber: the live
// sibling still receives ordering bounds, and the heartbeats lost at the
// stalled ring are counted in hbDrops rather than blocking the clock.
func TestStalledSubscriberHeartbeatPropagation(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name hb; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	stalledSub, err := m.Subscribe("hb", 2)
	if err != nil {
		t.Fatal(err)
	}
	liveSub, err := m.Subscribe("hb", 256)
	if err != nil {
		t.Fatal(err)
	}
	staller := faultinject.NewStaller(stalledSub.C)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Fill the stalled ring with tuple batches, then advance idle virtual
	// time: each second emits a source heartbeat that cannot fit.
	for i := 0; i < 8; i++ {
		p := tcpPkt(1, uint32(i+1), 80, "x")
		m.Inject("", &p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sec := uint64(2); sec <= 10; sec++ {
			m.AdvanceClock(sec * 1_000_000)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("clock advance blocked on a stalled subscriber")
	}
	m.Stop()
	var liveTuples, liveHBs int
	for b := range liveSub.C {
		for _, msg := range b {
			if msg.IsHeartbeat() {
				liveHBs++
			} else {
				liveTuples++
			}
		}
	}
	if liveTuples != 8 {
		t.Fatalf("live subscriber tuples = %d, want 8", liveTuples)
	}
	if liveHBs == 0 {
		t.Fatal("no heartbeats reached the live subscriber")
	}
	ns := nodeStats(t, m, "hb")
	if ns.HBDrop == 0 {
		t.Fatalf("no heartbeat drops recorded at the stalled ring: %+v", ns)
	}
	staller.Release()
	staller.Wait()
}
