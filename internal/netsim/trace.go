package netsim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"gigascope/internal/pkt"
)

// Trace record/replay: the differential-test harness (internal/difftest)
// records a generated packet stream once, feeds the identical bytes to the
// real pipeline and to the reference oracle, and ships the trace inside a
// replayable repro artifact when they disagree.

// traceMagic identifies the trace file format; bump the trailing digit on
// layout changes.
const traceMagic = "GSTRACE1"

// Record runs a fresh generator for cfg and materializes up to n packets.
func Record(cfg Config, n int) ([]pkt.Packet, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]pkt.Packet, 0, n)
	for len(out) < n {
		p, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteTrace serializes packets: magic, count, then per packet the capture
// timestamp, wire length, and captured bytes (big endian throughout).
func WriteTrace(w io.Writer, ps []pkt.Packet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(ps)))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for i := range ps {
		p := &ps[i]
		binary.BigEndian.PutUint64(buf[:], p.TS)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(buf[:4], uint32(p.WireLen))
		binary.BigEndian.PutUint32(buf[4:], uint32(len(p.Data)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if _, err := bw.Write(p.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]pkt.Packet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("netsim: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("netsim: not a trace file (magic %q)", magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("netsim: reading trace count: %w", err)
	}
	n := binary.BigEndian.Uint32(buf[:4])
	const maxTracePackets = 16 << 20
	if n > maxTracePackets {
		return nil, fmt.Errorf("netsim: implausible trace packet count %d", n)
	}
	ps := make([]pkt.Packet, 0, n)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("netsim: packet %d header: %w", i, err)
		}
		ts := binary.BigEndian.Uint64(buf[:])
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("netsim: packet %d lengths: %w", i, err)
		}
		wireLen := binary.BigEndian.Uint32(buf[:4])
		dataLen := binary.BigEndian.Uint32(buf[4:])
		const maxPacketBytes = 1 << 20
		if dataLen > maxPacketBytes || wireLen > maxPacketBytes {
			return nil, fmt.Errorf("netsim: packet %d implausibly large (%d/%d bytes)", i, dataLen, wireLen)
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("netsim: packet %d data: %w", i, err)
		}
		ps = append(ps, pkt.Packet{TS: ts, WireLen: int(wireLen), Data: data})
	}
	return ps, nil
}

// WriteTraceFile writes a trace to path.
func WriteTraceFile(path string, ps []pkt.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, ps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) ([]pkt.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
