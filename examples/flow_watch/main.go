// flow_watch reproduces the paper's §2.2 aggregation example over NetFlow
// records: traffic per minute per peer, where the peer is found by
// longest-prefix matching the destination IP against a routing-table file
// — the getlpmid user-defined function with its pass-by-handle parameter:
//
//	Select peerid, tb, count(*) FROM tcpdest
//	Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid
//
// It also shows the multi-timestamp ordering machinery: grouping by the
// banded-increasing start_time of NetFlow records still streams.
//
//	go run ./examples/flow_watch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gigascope"
)

func main() {
	// The pass-by-handle parameter: a prefix table built from a routing
	// table, loaded once at query instantiation.
	dir, err := os.MkdirTemp("", "flowwatch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tbl := filepath.Join(dir, "peerid.tbl")
	err = os.WriteFile(tbl, []byte(`# peer prefix table (from BGP routing table)
192.168.0.0/18   7018
192.168.64.0/18  701
192.168.128.0/17 3356
0.0.0.0/0        1
`), 0o644)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}

	sys.MustAddQuery(fmt.Sprintf(`
		DEFINE { query_name peer_traffic; }
		SELECT peerid, tb, count(*) as flows, sum(bytes) as bytes
		FROM NETFLOW
		GROUP BY start_time/60 as tb, getlpmid(destIP, '%s') as peerid`, tbl), nil)

	plan, _ := sys.Explain("peer_traffic")
	fmt.Println(plan)

	sub, err := sys.Subscribe("peer_traffic", 4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	gen, err := gigascope.NewFlowGenerator(gigascope.FlowConfig{
		Seed: 7, FlowsPerSecond: 50, MeanDurationSec: 40, MeanPps: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for i := 0; i < 30_000; i++ {
			p := gen.Next()
			sys.Inject("", &p)
		}
		sys.Stop()
	}()

	fmt.Println("peer    minute   flows      bytes")
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			fmt.Printf("%-7d %6d %7d %10d\n",
				m.Tuple[0].Uint(), m.Tuple[1].Uint(), m.Tuple[2].Uint(), m.Tuple[3].Uint())
		}
	}
}
