package core

import (
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

type gsqlQuery = gsql.Query

func gsqlParse(src string) (*gsql.Query, error) { return gsql.ParseQuery(src) }

// The §2.1 algorithm-choice claim: the banded join imputes
// banded-increasing output; the ordered join imputes increasing output
// and actually delivers it, at the cost of buffering.
func TestJoinAlgorithmChoiceAffectsOrdering(t *testing.T) {
	build := func(algorithm string) *CompiledQuery {
		cat := newCatalog(t)
		compile(t, cat, `DEFINE { query_name jb; } SELECT time, srcIP FROM eth0.TCP`, nil)
		compile(t, cat, `DEFINE { query_name jc; } SELECT time, srcIP FROM eth1.TCP`, nil)
		return compile(t, cat, `
			DEFINE { query_name jj; join_algorithm `+algorithm+`; }
			SELECT B.time, B.srcIP FROM jb B, jc C
			WHERE B.srcIP = C.srcIP and B.time >= C.time - 2 and B.time <= C.time + 2`, nil)
	}

	banded := build("banded")
	ord := banded.Output().Out.Cols[0].Ordering
	if ord.Kind != schema.OrderBandedIncreasing || ord.Band != 4 {
		t.Errorf("banded join ordering = %s, want banded_increasing(4)", ord)
	}

	sorted := build("ordered")
	ord = sorted.Output().Out.Cols[0].Ordering
	if !ord.Increasing() {
		t.Errorf("ordered join ordering = %s, want increasing", ord)
	}

	// Run both over the same drifting streams; the ordered variant's
	// output must be monotone, and both must produce identical multisets.
	run := func(cq *CompiledQuery) []schema.Tuple {
		inst, err := cq.Output().Instantiate(nil)
		if err != nil {
			t.Fatal(err)
		}
		var rows []schema.Tuple
		emit := func(m exec.Message) {
			if !m.IsHeartbeat() {
				rows = append(rows, m.Tuple)
			}
		}
		for i := 0; i < 3000; i++ {
			tb := uint64(i / 3)
			tc := uint64(i/3) + uint64(i%3)
			b := schema.Tuple{schema.MakeUint(tb), schema.MakeIP(uint32(i % 5))}
			c := schema.Tuple{schema.MakeUint(tc), schema.MakeIP(uint32(i % 5))}
			inst.Op.Push(0, exec.TupleMsg(b), emit)
			inst.Op.Push(1, exec.TupleMsg(c), emit)
		}
		inst.Op.FlushAll(emit)
		return rows
	}
	bandedRows := run(banded)
	sortedRows := run(sorted)
	if len(bandedRows) != len(sortedRows) {
		t.Fatalf("row counts differ: %d vs %d", len(bandedRows), len(sortedRows))
	}
	if len(sortedRows) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(sortedRows); i++ {
		if sortedRows[i][0].Compare(sortedRows[i-1][0]) < 0 {
			t.Fatalf("ordered join output not monotone at %d", i)
		}
	}
	// The banded variant must be within its band but (on this workload)
	// genuinely out of order somewhere — otherwise the ablation shows
	// nothing.
	outOfOrder := false
	for i := 1; i < len(bandedRows); i++ {
		if bandedRows[i][0].Compare(bandedRows[i-1][0]) < 0 {
			outOfOrder = true
			break
		}
	}
	if !outOfOrder {
		t.Log("banded join happened to be ordered on this workload (acceptable, band is an upper bound)")
	}
	// Identical multisets.
	count := func(rows []schema.Tuple) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[r.String()]++
		}
		return m
	}
	cb, cs := count(bandedRows), count(sortedRows)
	for k, v := range cb {
		if cs[k] != v {
			t.Fatalf("multiset mismatch at %s: %d vs %d", k, v, cs[k])
		}
	}
}

func TestJoinAlgorithmErrors(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name ja; } SELECT time, srcIP FROM eth0.TCP`, nil)
	compile(t, cat, `DEFINE { query_name jbb; } SELECT time, srcIP FROM eth1.TCP`, nil)
	for _, src := range []string{
		// Unknown algorithm name.
		`DEFINE { query_name j1; join_algorithm zigzag; }
		 SELECT B.time FROM ja B, jbb C WHERE B.time = C.time`,
		// Ordered output without the window attribute in the select list.
		`DEFINE { query_name j2; join_algorithm ordered; }
		 SELECT B.srcIP FROM ja B, jbb C WHERE B.time = C.time`,
	} {
		q := mustParse(t, src)
		if _, err := Compile(cat, q, nil); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func mustParse(t *testing.T, src string) *gsqlQuery {
	t.Helper()
	q, err := gsqlParse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
