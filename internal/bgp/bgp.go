// Package bgp synthesizes BGP update records, one of the packet sources
// the paper names (§2.2: "these data packets can be from any reasonable
// source — IP packets transported via OC48, Netflow packets, BGP
// updates") supporting its router-configuration-analysis application
// ("router configuration (e.g. BGP monitoring)", §1).
//
// As with NetFlow, records are carried one per pkt.Packet in a compact
// fixed layout (the record stream a collector produces after parsing BGP
// UPDATE messages; full RFC 4271 framing is out of scope — see
// DESIGN.md).
package bgp

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/rand"

	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// RecordLen is the wire size of one update record.
const RecordLen = 24

// Update kinds.
const (
	KindAnnounce = 0
	KindWithdraw = 1
)

// Field offsets.
const (
	offPeer    = 0  // peer router IP (4)
	offPrefix  = 4  // announced/withdrawn prefix (4)
	offMaskLen = 8  // prefix length (1)
	offKind    = 9  // announce/withdraw (1)
	offOriginA = 10 // origin AS (2)
	offMED     = 12 // multi-exit discriminator (4)
	offTime    = 16 // update time, seconds (4)
	offSeq     = 20 // per-peer sequence number (4)
)

// Update is one decoded BGP update record.
type Update struct {
	Peer     uint32
	Prefix   uint32
	MaskLen  uint8
	Kind     uint8
	OriginAS uint16
	MED      uint32
	Time     uint32
	Seq      uint32
}

// Encode packs the update into a packet stamped at the given export time.
func (u Update) Encode(exportUsec uint64) pkt.Packet {
	data := make([]byte, RecordLen)
	binary.BigEndian.PutUint32(data[offPeer:], u.Peer)
	binary.BigEndian.PutUint32(data[offPrefix:], u.Prefix)
	data[offMaskLen] = u.MaskLen
	data[offKind] = u.Kind
	binary.BigEndian.PutUint16(data[offOriginA:], u.OriginAS)
	binary.BigEndian.PutUint32(data[offMED:], u.MED)
	binary.BigEndian.PutUint32(data[offTime:], u.Time)
	binary.BigEndian.PutUint32(data[offSeq:], u.Seq)
	return pkt.Packet{TS: exportUsec, WireLen: RecordLen, Data: data}
}

// Decode parses an update record packet.
func Decode(p *pkt.Packet) (Update, error) {
	if len(p.Data) < RecordLen {
		return Update{}, fmt.Errorf("bgp: short record (%d bytes)", len(p.Data))
	}
	return Update{
		Peer:     binary.BigEndian.Uint32(p.Data[offPeer:]),
		Prefix:   binary.BigEndian.Uint32(p.Data[offPrefix:]),
		MaskLen:  p.Data[offMaskLen],
		Kind:     p.Data[offKind],
		OriginAS: binary.BigEndian.Uint16(p.Data[offOriginA:]),
		MED:      binary.BigEndian.Uint32(p.Data[offMED:]),
		Time:     binary.BigEndian.Uint32(p.Data[offTime:]),
		Seq:      binary.BigEndian.Uint32(p.Data[offSeq:]),
	}, nil
}

func bgpRaw(name string, off, width int, ty schema.Type) {
	raw := pkt.RawRef{Off: off, Width: width}
	pkt.RegisterInterp(&pkt.FieldSpec{
		Name: name, Type: ty, Raw: &raw, NeedBytes: raw.End(),
		Extract: func(p *pkt.Packet) (schema.Value, bool) {
			v, ok := raw.Read(p)
			if !ok {
				return schema.Null, false
			}
			if ty == schema.TIP {
				return schema.MakeIP(uint32(v)), true
			}
			return schema.MakeUint(v), true
		},
	})
}

func init() {
	bgpRaw("bgp_peer", offPeer, 4, schema.TIP)
	bgpRaw("bgp_prefix", offPrefix, 4, schema.TIP)
	bgpRaw("bgp_masklen", offMaskLen, 1, schema.TUint)
	bgpRaw("bgp_kind", offKind, 1, schema.TUint)
	bgpRaw("bgp_origin_as", offOriginA, 2, schema.TUint)
	bgpRaw("bgp_med", offMED, 4, schema.TUint)
	bgpRaw("bgp_time", offTime, 4, schema.TUint)
	bgpRaw("bgp_seq", offSeq, 4, schema.TUint)
}

// Schema returns the BGPUPDATE protocol schema. Updates arrive in time
// order; per-peer sequence numbers increase within each peer (the paper's
// increasing-in-group property).
func Schema() *schema.Schema {
	inc := schema.Ordering{Kind: schema.OrderIncreasing}
	return &schema.Schema{
		Name: "BGPUPDATE",
		Kind: schema.KindProtocol,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Interp: "bgp_time", Ordering: inc},
			{Name: "peer", Type: schema.TIP, Interp: "bgp_peer"},
			{Name: "prefix", Type: schema.TIP, Interp: "bgp_prefix"},
			{Name: "masklen", Type: schema.TUint, Interp: "bgp_masklen"},
			{Name: "kind", Type: schema.TUint, Interp: "bgp_kind"},
			{Name: "origin_as", Type: schema.TUint, Interp: "bgp_origin_as"},
			{Name: "med", Type: schema.TUint, Interp: "bgp_med"},
			{Name: "seq", Type: schema.TUint, Interp: "bgp_seq",
				Ordering: schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"peer"}}},
		},
	}
}

// Register adds the BGPUPDATE schema to a catalog.
func Register(cat *schema.Catalog) error { return cat.Register(Schema()) }

// Config tunes the update synthesizer.
type Config struct {
	Seed  int64
	Peers int // BGP peers (default 4)
	// Prefixes is the routing-table size per peer (default 500).
	Prefixes int
	// BaselinePerSec is the steady announce/withdraw churn rate across
	// all peers (default 5).
	BaselinePerSec float64
	// FlappingPrefixes marks this many prefixes per peer as flapping:
	// they announce/withdraw at FlapPerSec each (default 2 at 1/s).
	FlappingPrefixes int
	FlapPerSec       float64
	StartSec         uint64
}

func (c *Config) fill() {
	if c.Peers == 0 {
		c.Peers = 4
	}
	if c.Prefixes == 0 {
		c.Prefixes = 500
	}
	if c.BaselinePerSec == 0 {
		c.BaselinePerSec = 5
	}
	if c.FlappingPrefixes == 0 {
		c.FlappingPrefixes = 2
	}
	if c.FlapPerSec == 0 {
		c.FlapPerSec = 1
	}
}

// Generator produces BGP updates in time order: baseline churn across the
// table plus a few route flaps (the classic BGP-monitoring target).
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	srcs  srcHeap
	seq   map[uint32]uint32
	count uint64
}

type updateSrc struct {
	peer    uint32
	prefix  uint32
	masklen uint8
	origin  uint16
	flap    bool
	state   uint8 // last kind emitted (flap alternates)
	rate    float64
	nextUs  float64
	// baseline sources pick a random prefix per event
	table []tableEntry
}

type tableEntry struct {
	prefix  uint32
	masklen uint8
	origin  uint16
}

type srcHeap []*updateSrc

func (h srcHeap) Len() int           { return len(h) }
func (h srcHeap) Less(i, j int) bool { return h[i].nextUs < h[j].nextUs }
func (h srcHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x any)        { *h = append(*h, x.(*updateSrc)) }
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewGenerator builds a BGP update source.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg.fill()
	if cfg.Peers < 1 || cfg.Prefixes < cfg.FlappingPrefixes {
		return nil, fmt.Errorf("bgp: invalid configuration")
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), seq: make(map[uint32]uint32)}
	start := float64(cfg.StartSec) * 1e6
	for p := 0; p < cfg.Peers; p++ {
		peer := 0xc0a8ff00 | uint32(p+1)
		table := make([]tableEntry, cfg.Prefixes)
		for i := range table {
			table[i] = tableEntry{
				prefix:  uint32(g.rng.Uint64()) &^ 0xff,
				masklen: uint8(12 + g.rng.Intn(13)),
				origin:  uint16(1000 + g.rng.Intn(60000)),
			}
		}
		// Baseline churn source for this peer.
		base := &updateSrc{
			peer: peer, table: table,
			rate:   cfg.BaselinePerSec / float64(cfg.Peers),
			nextUs: start + g.rng.ExpFloat64()*1e6,
		}
		heap.Push(&g.srcs, base)
		// Flapping prefixes.
		for i := 0; i < cfg.FlappingPrefixes; i++ {
			e := table[g.rng.Intn(len(table))]
			heap.Push(&g.srcs, &updateSrc{
				peer: peer, prefix: e.prefix, masklen: e.masklen, origin: e.origin,
				flap: true, rate: cfg.FlapPerSec,
				nextUs: start + g.rng.ExpFloat64()*1e6,
			})
		}
	}
	return g, nil
}

// Next returns the next update in time order.
func (g *Generator) Next() pkt.Packet {
	s := g.srcs[0]
	ts := uint64(s.nextUs)
	u := Update{Peer: s.peer, Time: uint32(ts / 1e6)}
	if s.flap {
		s.state ^= 1
		u.Prefix, u.MaskLen, u.OriginAS = s.prefix, s.masklen, s.origin
		u.Kind = s.state
	} else {
		e := s.table[g.rng.Intn(len(s.table))]
		u.Prefix, u.MaskLen, u.OriginAS = e.prefix, e.masklen, e.origin
		u.Kind = uint8(g.rng.Intn(2))
	}
	u.MED = uint32(g.rng.Intn(100))
	g.seq[s.peer]++
	u.Seq = g.seq[s.peer]
	s.nextUs += g.rng.ExpFloat64() * 1e6 / s.rate
	heap.Fix(&g.srcs, 0)
	g.count++
	return u.Encode(ts)
}

// Count returns the number of updates generated.
func (g *Generator) Count() uint64 { return g.count }
