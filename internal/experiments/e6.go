package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/exec"
	"gigascope/internal/netflow"
	"gigascope/internal/schema"
)

// E6: the ordering-property machinery (§2.1): a join window derived from
// ordered attributes bounds the join state; a banded-increasing NetFlow
// start timestamp bounds open aggregation groups. We sweep the join
// window width and measure peak buffered tuples, and run the NetFlow
// aggregation measuring peak open groups — both must stay far below the
// stream length (bounded state), and results must be exact.

// E6JoinRow is one window width's outcome.
type E6JoinRow struct {
	WindowSlack int64 // +/- seconds
	Tuples      int
	Matches     uint64
	PeakBuffer  int // max tuples buffered on either side
}

// E6Join compiles a banded join between two query streams and sweeps the
// window slack.
func E6Join(tuples int, slacks []int64) ([]E6JoinRow, error) {
	var rows []E6JoinRow
	for _, slack := range slacks {
		row, err := e6JoinRun(tuples, slack)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e6JoinRun(tuples int, slack int64) (E6JoinRow, error) {
	cat, err := newCatalog()
	if err != nil {
		return E6JoinRow{}, err
	}
	for _, q := range []string{
		`DEFINE { query_name e6b; } SELECT time, srcIP FROM eth0.TCP`,
		`DEFINE { query_name e6c; } SELECT time, srcIP FROM eth1.TCP`,
	} {
		if _, err := compileQuery(cat, q, nil); err != nil {
			return E6JoinRow{}, err
		}
	}
	join := fmt.Sprintf(`
		DEFINE { query_name e6join; }
		SELECT B.time, B.srcIP FROM e6b B, e6c C
		WHERE B.srcIP = C.srcIP and B.time >= C.time - %d and B.time <= C.time + %d`,
		slack, slack)
	cq, err := compileQuery(cat, join, nil)
	if err != nil {
		return E6JoinRow{}, err
	}
	inst, err := cq.Output().Instantiate(nil)
	if err != nil {
		return E6JoinRow{}, err
	}
	jop := inst.Op.(*exec.Join)

	row := E6JoinRow{WindowSlack: slack, Tuples: tuples}
	emit := func(m exec.Message) {
		if !m.IsHeartbeat() {
			row.Matches++
		}
	}
	// Two streams with drifting clocks and a small shared key space.
	for i := 0; i < tuples; i++ {
		tb := uint64(i / 3)
		tc := uint64(i/3) + uint64(i%2)
		b := schema.Tuple{schema.MakeUint(tb), schema.MakeIP(uint32(i % 17))}
		c := schema.Tuple{schema.MakeUint(tc), schema.MakeIP(uint32(i % 13))}
		jop.Push(0, exec.TupleMsg(b), emit)
		jop.Push(1, exec.TupleMsg(c), emit)
		for side := 0; side < 2; side++ {
			if buf := jop.Buffered(side); buf > row.PeakBuffer {
				row.PeakBuffer = buf
			}
		}
	}
	return row, nil
}

// E6AggRow is the banded NetFlow aggregation outcome.
type E6AggRow struct {
	Records    int
	Band       uint64
	PeakGroups int
	Results    uint64
	Exact      bool
}

// E6Agg aggregates NetFlow records by their banded-increasing start
// minute and measures peak open groups, verifying exactness against a
// reference computation.
func E6Agg(records int) (E6AggRow, error) {
	cat := schema.NewCatalog()
	if err := netflow.Register(cat); err != nil {
		return E6AggRow{}, err
	}
	cq, err := compileQuery(cat, `
		DEFINE { query_name e6nf; }
		SELECT stb, count(*) as recs, sum(bytes) as bytes
		FROM NETFLOW GROUP BY start_time/60 as stb`, nil)
	if err != nil {
		return E6AggRow{}, err
	}
	lfta, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		return E6AggRow{}, err
	}
	hfta, err := cq.Nodes[1].Instantiate(nil)
	if err != nil {
		return E6AggRow{}, err
	}
	hop := hfta.Op.(*exec.Agg)

	row := E6AggRow{Records: records, Band: 1}
	got := map[uint64][2]uint64{}
	sink := func(m exec.Message) {
		if m.IsHeartbeat() {
			return
		}
		row.Results++
		cur := got[m.Tuple[0].Uint()]
		cur[0] += m.Tuple[1].Uint()
		cur[1] += m.Tuple[2].Uint()
		got[m.Tuple[0].Uint()] = cur
	}
	mid := func(m exec.Message) {
		hfta.Op.Push(0, m, sink)
		if g := hop.OpenGroups(); g > row.PeakGroups {
			row.PeakGroups = g
		}
	}
	gen, err := netflow.NewGenerator(netflow.Config{
		Seed: 61, FlowsPerSecond: 40, MeanDurationSec: 50, MeanPps: 4,
	})
	if err != nil {
		return E6AggRow{}, err
	}
	want := map[uint64][2]uint64{}
	for i := 0; i < records; i++ {
		p := gen.Next()
		r, err := netflow.Decode(&p)
		if err != nil {
			return E6AggRow{}, err
		}
		cur := want[uint64(r.First/60)]
		cur[0]++
		cur[1] += uint64(r.Bytes)
		want[uint64(r.First/60)] = cur
		if err := lfta.PushPacket(&p, mid); err != nil {
			return E6AggRow{}, err
		}
	}
	lfta.Op.FlushAll(mid)
	hfta.Op.FlushAll(sink)
	row.Exact = len(got) == len(want)
	for k, v := range want {
		if got[k] != v {
			row.Exact = false
		}
	}
	return row, nil
}

// PrintE6 renders both halves.
func PrintE6(w io.Writer, joins []E6JoinRow, agg E6AggRow) {
	fmt.Fprintln(w, "E6: ordering properties bound operator state (§2.1)")
	fmt.Fprintf(w, "  join window sweep (%d tuples per side):\n", joins[0].Tuples)
	fmt.Fprintf(w, "    %10s %10s %12s\n", "slack +/-", "matches", "peak buffer")
	for _, r := range joins {
		fmt.Fprintf(w, "    %10d %10d %12d\n", r.WindowSlack, r.Matches, r.PeakBuffer)
	}
	fmt.Fprintf(w, "  NetFlow banded aggregation: %d records, band %d min: peak open groups %d, %d results, exact=%v\n",
		agg.Records, agg.Band, agg.PeakGroups, agg.Results, agg.Exact)
}
