package sketch

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// TopK tracks heavy hitters: a Count-Min sketch estimates frequencies while
// a bounded candidate set remembers the keys currently believed heaviest.
// The candidate capacity is a constant multiple of k, so memory stays
// O(k + 1/eps) regardless of how many distinct keys flow past.
//
// Merge unions the candidate sets and adds the Count-Min counters, then
// prunes back to capacity by merged estimate. When the number of distinct
// keys is at most the candidate capacity the tracker is exact about
// membership and merge-order invariant; beyond that it is approximate, with
// per-key counts still bounded by the Count-Min eps*N guarantee. Ties are
// broken by key bytes, so pruning is deterministic.
type TopK struct {
	k     int
	cap   int
	cm    *CountMin
	cands map[string]struct{}
}

// Entry is one reported heavy hitter.
type Entry struct {
	Key   []byte
	Count uint64
}

// NewTopK builds a tracker for the k heaviest keys with Count-Min
// parameters (eps, delta). Candidate capacity is max(8k, 64).
func NewTopK(k int, eps, delta float64) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: topk k must be >= 1, got %d", k)
	}
	cm, err := NewCountMin(eps, delta)
	if err != nil {
		return nil, err
	}
	cap := 8 * k
	if cap < 64 {
		cap = 64
	}
	return &TopK{k: k, cap: cap, cm: cm, cands: make(map[string]struct{})}, nil
}

// K is the configured report size.
func (t *TopK) K() int { return t.k }

// Eps and Delta expose the underlying Count-Min guarantee.
func (t *TopK) Eps() float64   { return t.cm.Eps() }
func (t *TopK) Delta() float64 { return t.cm.Delta() }

// Total is the number of observations added.
func (t *TopK) Total() uint64 { return t.cm.Total() }

// Add observes n occurrences of key.
func (t *TopK) Add(key []byte, n uint64) {
	t.cm.Add(key, n)
	if _, ok := t.cands[string(key)]; ok {
		return
	}
	if len(t.cands) < t.cap {
		t.cands[string(key)] = struct{}{}
		return
	}
	// Full: evict the weakest candidate if the newcomer beats it. Among
	// equal-estimate candidates the lexicographically largest key goes, so
	// the decision does not depend on map iteration order.
	est := t.cm.Estimate(key)
	minKey, minEst := "", uint64(0)
	for c := range t.cands {
		e := t.cm.Estimate([]byte(c))
		if minKey == "" || e < minEst || (e == minEst && c > minKey) {
			minKey, minEst = c, e
		}
	}
	if est > minEst {
		delete(t.cands, minKey)
		t.cands[string(key)] = struct{}{}
	}
}

// Top returns the k heaviest candidates, ordered by estimated count
// descending, then key ascending.
func (t *TopK) Top() []Entry {
	es := t.entries()
	if len(es) > t.k {
		es = es[:t.k]
	}
	return es
}

func (t *TopK) entries() []Entry {
	es := make([]Entry, 0, len(t.cands))
	for c := range t.cands {
		es = append(es, Entry{Key: []byte(c), Count: t.cm.Estimate([]byte(c))})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return string(es[i].Key) < string(es[j].Key)
	})
	return es
}

// Merge folds o into t: counters add, candidate sets union, then the set is
// pruned back to capacity by merged estimate.
func (t *TopK) Merge(o *TopK) error {
	if err := t.cm.Merge(o.cm); err != nil {
		return err
	}
	for c := range o.cands {
		t.cands[c] = struct{}{}
	}
	if t.cap < o.cap {
		t.cap = o.cap
	}
	if t.k < o.k {
		t.k = o.k
	}
	if len(t.cands) > t.cap {
		es := t.entries()
		for _, e := range es[t.cap:] {
			delete(t.cands, string(e.Key))
		}
	}
	return nil
}

// Footprint is the approximate in-memory size in bytes.
func (t *TopK) Footprint() int {
	n := 64 + t.cm.Footprint()
	for c := range t.cands {
		n += 48 + len(c)
	}
	return n
}

// AppendBinary serializes the tracker (candidates in key order, so the
// encoding of a given state is unique).
func (t *TopK) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.k))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.cap))
	dst = t.cm.AppendBinary(dst)
	keys := make([]string, 0, len(t.cands))
	for c := range t.cands {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
	for _, c := range keys {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// ParseTopK deserializes a tracker written by AppendBinary, returning it
// and the number of bytes consumed.
func ParseTopK(b []byte) (*TopK, int, error) {
	if len(b) < 8 {
		return nil, 0, fmt.Errorf("sketch: short topk header")
	}
	k := int(binary.BigEndian.Uint32(b))
	cap := int(binary.BigEndian.Uint32(b[4:]))
	if k < 1 || cap < k || cap > 1<<24 {
		return nil, 0, fmt.Errorf("sketch: implausible topk sizes k=%d cap=%d", k, cap)
	}
	cm, n, err := ParseCountMin(b[8:])
	if err != nil {
		return nil, 0, err
	}
	off := 8 + n
	if len(b) < off+4 {
		return nil, 0, fmt.Errorf("sketch: truncated topk candidate count")
	}
	nc := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if nc > cap {
		return nil, 0, fmt.Errorf("sketch: topk candidate count %d exceeds capacity %d", nc, cap)
	}
	t := &TopK{k: k, cap: cap, cm: cm, cands: make(map[string]struct{}, nc)}
	for i := 0; i < nc; i++ {
		if len(b) < off+4 {
			return nil, 0, fmt.Errorf("sketch: truncated topk candidate length")
		}
		l := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if len(b) < off+l {
			return nil, 0, fmt.Errorf("sketch: truncated topk candidate")
		}
		t.cands[string(b[off:off+l])] = struct{}{}
		off += l
	}
	return t, off, nil
}
