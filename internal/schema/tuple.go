package schema

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tuple is one stream record: a flat vector of Values laid out according to
// a Schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for i, v := range t {
		c[i] = v.Clone()
	}
	return c
}

// Equal reports field-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple for display and test assertions.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Pack serializes the tuple into the standard Gigascope wire format used
// between query nodes (paper §2.2: "fields of its tuples are packed in a
// standard fashion"): a field count, then per field a type tag and payload
// (fixed 8 bytes for scalars, length-prefixed bytes for strings).
func (t Tuple) Pack(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.Type))
		switch v.Type {
		case TNull:
		case TString:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.B)))
			dst = append(dst, v.B...)
		case TFloat:
			dst = binary.BigEndian.AppendUint64(dst, floatBits(v.F))
		default:
			dst = binary.BigEndian.AppendUint64(dst, v.U)
		}
	}
	return dst
}

// Unpack deserializes a tuple produced by Pack, returning the tuple and the
// number of bytes consumed.
func Unpack(src []byte) (Tuple, int, error) {
	if len(src) < 2 {
		return nil, 0, fmt.Errorf("schema: short tuple header")
	}
	n := int(binary.BigEndian.Uint16(src))
	off := 2
	t := make(Tuple, n)
	for i := 0; i < n; i++ {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("schema: truncated tuple at field %d", i)
		}
		ty := Type(src[off])
		off++
		switch ty {
		case TNull:
			t[i] = Null
		case TString:
			if off+4 > len(src) {
				return nil, 0, fmt.Errorf("schema: truncated string length at field %d", i)
			}
			l := int(binary.BigEndian.Uint32(src[off:]))
			off += 4
			if off+l > len(src) {
				return nil, 0, fmt.Errorf("schema: truncated string payload at field %d", i)
			}
			b := make([]byte, l)
			copy(b, src[off:off+l])
			off += l
			t[i] = Value{Type: TString, B: b}
		case TFloat:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("schema: truncated float at field %d", i)
			}
			t[i] = Value{Type: TFloat, F: floatFromBits(binary.BigEndian.Uint64(src[off:]))}
			off += 8
		case TBool, TUint, TInt, TIP:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("schema: truncated scalar at field %d", i)
			}
			t[i] = Value{Type: ty, U: binary.BigEndian.Uint64(src[off:])}
			off += 8
		default:
			return nil, 0, fmt.Errorf("schema: unknown field type %d", ty)
		}
	}
	return t, off, nil
}

// PackedSize returns the size in bytes of the packed representation, the
// unit the RTS uses to account for inter-node data transfer volume.
func (t Tuple) PackedSize() int {
	n := 2
	for _, v := range t {
		n++
		switch v.Type {
		case TNull:
		case TString:
			n += 4 + len(v.B)
		default:
			n += 8
		}
	}
	return n
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
