package rts

import (
	"fmt"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// PeerStats is the failure-machinery snapshot of one remote stream's
// transport peer, surfaced through NodeStats (and from there the SYSMON
// peerState / reconnects / gapTuples / hbMisses columns).
type PeerStats struct {
	// State names the connection state machine's current state:
	// connecting, connected, backoff, dead, done, or closed.
	State string
	// Reconnects counts successful re-handshakes after a connection loss.
	Reconnects uint64
	// GapTuples counts tuples known lost across reconnects (exact when
	// the exporter incarnation survived; restarts are unquantifiable and
	// show up in GapEvents only).
	GapTuples uint64
	// GapEvents counts injected gap punctuations (one per reconnect or
	// peer-death, whether or not the loss was quantifiable).
	GapEvents uint64
	// HBMisses counts read-deadline expiries with no peer traffic.
	HBMisses uint64
}

// PeerMonitor is implemented by the transport client owning a remote
// source (wire.Client); the node polls it on every stats snapshot.
type PeerMonitor interface {
	PeerStats() PeerStats
}

// RemoteSource is the local publishing handle for a stream imported from
// another RTS over a transport. The transport client pushes decoded
// batches through Publish, advances the local virtual clock with the
// peer's announced clock via Note, marks reconnect discontinuities with
// PublishGap, and Closes the stream on clean end or when degrading a
// dead partition away. Publish/PublishGap/Close serialize on the node
// lock; Note is lock-free.
type RemoteSource struct {
	qn  *queryNode
	out *schema.Schema
}

// AddRemoteSource registers a remote stream as a local source node:
// catalog entry plus shedding publisher, so local queries read it
// (FROM name) and applications Subscribe to it exactly like a native
// stream. Remote input is source-level, least-processed data, so its
// rings shed rather than backpressure the transport reader (§4 drop
// placement — and a stalled local consumer must never wedge the socket).
// Unlike clock-driven source nodes it is pushed by its transport, not
// ticked, so it may be added after Start.
func (m *Manager) AddRemoteSource(name string, out *schema.Schema, peer PeerMonitor) (*RemoteSource, error) {
	if out == nil {
		return nil, fmt.Errorf("rts: nil remote schema")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, fmt.Errorf("rts: manager stopped")
	}
	key := strings.ToLower(name)
	if _, dup := m.nodes[key]; dup {
		return nil, fmt.Errorf("rts: query node %s already registered", name)
	}
	sc := out.Clone()
	sc.Name = name
	sc.Kind = schema.KindStream
	if err := m.registerStreamLocked(sc); err != nil {
		return nil, err
	}
	qn := &queryNode{
		m:        m,
		name:     name,
		level:    core.LevelSource,
		peer:     peer,
		pub:      &publisher{name: name, level: core.LevelSource, shed: true},
		maxBatch: m.cfg.maxBatch(),
		hbFlush:  true, // forward peer heartbeats downstream immediately
	}
	if m.cfg.ValidateOrdering {
		qn.initCheckers(sc)
	}
	m.nodes[key] = qn
	m.order = append(m.order, qn)
	r := &RemoteSource{qn: qn, out: sc}
	m.remotes = append(m.remotes, r)
	return r, nil
}

// Publish delivers one decoded batch from the peer to local subscribers
// (taking ownership of b), then advances the local virtual clock to the
// peer clock stamped on the frame — so local window-close and sampling
// logic keeps moving off remote progress.
func (r *RemoteSource) Publish(b exec.Batch, nTuples int, clock uint64) {
	qn := r.qn
	qn.mu.Lock()
	if !qn.srcClosed && len(b) > 0 {
		qn.emitBatch(b)
		// One publish per received frame: batch boundaries on the local
		// rings reproduce the exporter's exactly (what makes two-process
		// output byte-identical to the single-process plan).
		qn.flushPending(&qn.flushWindow)
		_ = nTuples
	}
	qn.mu.Unlock()
	if clock > 0 {
		qn.m.noteClock(clock)
	}
}

// Note advances the local virtual clock to the peer's announced clock
// (keepalive frames): remote idle time still closes local windows.
func (r *RemoteSource) Note(clock uint64) {
	if clock > 0 {
		r.qn.m.noteClock(clock)
	}
}

// PublishGap injects a gap punctuation marking a delivery discontinuity
// (reconnect, or peer death): a heartbeat carrying the given bounds, or
// all-NULL bounds ("no information") when the transport has seen none.
// Downstream operators treat it as ordinary punctuation — it claims no
// ordering progress but marks that the stream resumed after loss; the
// quantitative loss is in the peer counters.
func (r *RemoteSource) PublishGap(bounds schema.Tuple) {
	qn := r.qn
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.srcClosed {
		return
	}
	if bounds == nil {
		bounds = make(schema.Tuple, len(r.out.Cols))
	}
	qn.emit(exec.HeartbeatMsg(bounds))
	qn.flushPending(&qn.flushWindow)
}

// SetRequestHeartbeat installs the hook that forwards downstream
// on-demand ordering-token requests (paper §3) to the peer.
func (r *RemoteSource) SetRequestHeartbeat(f func()) {
	r.qn.mu.Lock()
	r.qn.remoteReq = f
	r.qn.mu.Unlock()
}

// Close ends the local stream: downstream operators see it close, flush
// final state, and — under a merge — get PortDone for this partition.
// Idempotent; safe from any goroutine.
func (r *RemoteSource) Close() {
	qn := r.qn
	qn.mu.Lock()
	if !qn.srcClosed {
		qn.srcClosed = true
		qn.flushPending(&qn.flushWindow)
	}
	qn.mu.Unlock()
	qn.pub.close()
}

// Schema returns the locally registered stream schema.
func (r *RemoteSource) Schema() *schema.Schema { return r.out }
