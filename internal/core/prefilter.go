package core

import (
	"fmt"
	"strings"
	"sync"

	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/plan"
	"gigascope/internal/schema"
)

// The compiled prefilter (paper §5): the distinct cheap, parameter-free
// predicate terms of every LFTA on one (interface, protocol) pair,
// evaluated once per packet. Each member LFTA carries a bit mask naming
// the terms that must all pass for a packet to be delivered to it; the
// RTS skips delivery otherwise. Gating never replaces the LFTA's own
// predicate — it only avoids delivering packets the predicate would
// reject anyway — so a partial mask (terms beyond the 64-bit budget, or
// parameterized conjuncts) remains sound.

// Prefilter is the compiled per-(interface, protocol) term set.
type Prefilter struct {
	Interface string // "" = default interface
	Protocol  string

	schema     *schema.Schema
	terms      []pfTerm
	handles    []exec.HandleSpec
	members    map[string]uint64 // lower-cased LFTA node name -> term mask
	extractors []extractor
	width      int
}

type pfTerm struct {
	src  string // display text
	pred exec.Expr
	cols []int // schema column indexes the term reads
}

// compilePrefilters turns the prefilter pass's groups into executable
// form against the catalog's protocol schemas.
func (sc *scriptCompiler) compilePrefilters(ps *plan.Script) ([]*Prefilter, error) {
	var out []*Prefilter
	for _, g := range ps.Prefilters {
		s, ok := sc.cat.Lookup(g.Protocol)
		if !ok || s.Kind != schema.KindProtocol {
			return nil, &Error{Err: fmt.Errorf("internal: prefilter group references unknown protocol %q", g.Protocol)}
		}
		pf := &Prefilter{
			Interface: g.Interface,
			Protocol:  s.Name,
			schema:    s,
			members:   make(map[string]uint64, len(g.Members)),
			width:     len(s.Cols),
		}
		for name, mask := range g.Members {
			pf.members[strings.ToLower(name)] = mask
		}
		comp := &exec.Compiler{Reg: sc.opts.registry(), Resolve: exec.SchemaResolver(s, "")}
		needSeen := make(map[int]bool)
		for _, t := range g.Terms {
			pred, err := comp.Compile(t)
			if err != nil {
				return nil, &Error{Err: fmt.Errorf("internal: prefilter term %s: %w", t, err)}
			}
			if pred.Type() != schema.TBool {
				return nil, &Error{Err: fmt.Errorf("internal: prefilter term %s is %s, not boolean", t, pred.Type())}
			}
			term := pfTerm{src: t.String(), pred: pred}
			for _, c := range termCols(t, s) {
				term.cols = append(term.cols, c)
				if !needSeen[c] {
					needSeen[c] = true
					col := &s.Cols[c]
					spec, ok := pkt.LookupInterp(col.Interp)
					if !ok {
						return nil, &Error{Err: fmt.Errorf("core: %s.%s: interpretation function %q not registered",
							s.Name, col.Name, col.Interp)}
					}
					pf.extractors = append(pf.extractors, extractor{slot: c, spec: spec})
				}
			}
			pf.terms = append(pf.terms, term)
		}
		pf.handles = comp.Handles
		out = append(out, pf)
	}
	return out, nil
}

// termCols resolves the schema column indexes a term reads.
func termCols(t gsql.Expr, s *schema.Schema) []int {
	var out []int
	for _, c := range colRefs([]gsql.Expr{t}) {
		if i, _ := s.Col(c.Name); i >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// NumTerms returns the number of distinct prefilter terms.
func (pf *Prefilter) NumTerms() int { return len(pf.terms) }

// MemberMask returns the gating mask for an LFTA node name, false when
// the node is ungated.
func (pf *Prefilter) MemberMask(nodeName string) (uint64, bool) {
	m, ok := pf.members[strings.ToLower(nodeName)]
	return m, ok
}

// Members returns the gated LFTA node names (lower-cased).
func (pf *Prefilter) Members() []string {
	out := make([]string, 0, len(pf.members))
	for name := range pf.members {
		out = append(out, name)
	}
	return out
}

// NewInstance builds one evaluation instance. Instances hold mutable
// extraction state and serialize their own use; shard workers each get
// their own instance so gating never contends across shards.
func (pf *Prefilter) NewInstance() (*PrefilterInstance, error) {
	ctx, err := exec.NewCtx(pf.handles, nil)
	if err != nil {
		return nil, err
	}
	return &PrefilterInstance{
		pf:    pf,
		ctx:   ctx,
		row:   make(schema.Tuple, pf.width),
		colOK: make([]bool, pf.width),
	}, nil
}

// PrefilterInstance is one runnable prefilter evaluator.
type PrefilterInstance struct {
	pf    *Prefilter
	ctx   *exec.Ctx
	mu    sync.Mutex
	row   schema.Tuple
	colOK []bool
}

// EvalBatch evaluates every term against every packet, appending one
// pass-mask per packet to dst (bit i set = term i passed). A term whose
// referenced columns cannot be extracted from the packet is false — the
// member LFTA's own extraction would drop the packet anyway.
func (pi *PrefilterInstance) EvalBatch(pkts []*pkt.Packet, dst []uint64) []uint64 {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	for _, p := range pkts {
		for _, ex := range pi.pf.extractors {
			v, ok := ex.spec.Extract(p)
			pi.colOK[ex.slot] = ok
			if ok {
				pi.row[ex.slot] = v
			}
		}
		var mask uint64
		for i, t := range pi.pf.terms {
			usable := true
			for _, c := range t.cols {
				if !pi.colOK[c] {
					usable = false
					break
				}
			}
			if !usable {
				continue
			}
			if pass, ok := exec.EvalPred(t.pred, pi.row, pi.ctx); ok && pass {
				mask |= 1 << uint(i)
			}
		}
		dst = append(dst, mask)
	}
	return dst
}
