package faultinject

import (
	"fmt"
	"sync/atomic"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// FailMode selects how a FaultyOp misbehaves when its trigger fires.
type FailMode int

const (
	// FailPanic panics out of Push — the fault query quarantine must
	// contain.
	FailPanic FailMode = iota
	// FailError returns an error from Push — the non-fatal operator
	// failure the node counts and survives.
	FailError
)

// FaultyOp wraps an operator and forces a deterministic failure on the
// Nth input tuple (heartbeats don't count). With FailEvery set it keeps
// failing every FailEvery tuples after the first trigger; otherwise it
// fails exactly once and then behaves. Registered through AddUserNode it
// drives the quarantine and error-accounting tests.
type FaultyOp struct {
	Inner exec.Operator
	// FailAt is the 1-based tuple index that triggers the failure;
	// 0 never triggers.
	FailAt uint64
	// FailEvery re-triggers every n tuples after FailAt (0: fail once).
	FailEvery uint64
	Mode      FailMode

	seen  atomic.Uint64
	fired atomic.Uint64
}

// Fired reports how many times the failure triggered.
func (f *FaultyOp) Fired() uint64 { return f.fired.Load() }

// Ports returns the inner operator's port count.
func (f *FaultyOp) Ports() int { return f.Inner.Ports() }

// OutSchema returns the inner operator's output schema.
func (f *FaultyOp) OutSchema() *schema.Schema { return f.Inner.OutSchema() }

// Push fails on the trigger tuple and forwards everything else.
func (f *FaultyOp) Push(port int, m exec.Message, emit exec.Emit) error {
	if !m.IsHeartbeat() && f.FailAt > 0 {
		n := f.seen.Add(1)
		trip := n == f.FailAt
		if !trip && f.FailEvery > 0 && n > f.FailAt {
			trip = (n-f.FailAt)%f.FailEvery == 0
		}
		if trip {
			f.fired.Add(1)
			if f.Mode == FailPanic {
				panic(fmt.Sprintf("faultinject: forced panic at tuple %d", n))
			}
			return fmt.Errorf("faultinject: forced error at tuple %d", n)
		}
	}
	return f.Inner.Push(port, m, emit)
}

// FlushAll forwards to the inner operator.
func (f *FaultyOp) FlushAll(emit exec.Emit) error { return f.Inner.FlushAll(emit) }

// Staller models a stalled subscriber: it parks on a subscription channel
// without reading until released, then drains to completion. The producer
// side must shed (LFTA rings) or backpressure (HFTA edges) exactly as the
// drop-placement policy says; the stall tests pin that accounting.
type Staller struct {
	c        <-chan exec.Batch
	release  chan struct{}
	done     chan struct{}
	tuples   atomic.Uint64
	released atomic.Bool
}

// NewStaller starts stalling the given channel immediately.
func NewStaller(c <-chan exec.Batch) *Staller {
	s := &Staller{c: c, release: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		<-s.release
		for b := range s.c {
			s.tuples.Add(uint64(b.Tuples()))
		}
	}()
	return s
}

// Release un-stalls the subscriber; it drains from here on.
func (s *Staller) Release() {
	if s.released.CompareAndSwap(false, true) {
		close(s.release)
	}
}

// Wait blocks until the drained channel closes (call Release first).
func (s *Staller) Wait() { <-s.done }

// Tuples returns how many tuples the staller consumed after release.
func (s *Staller) Tuples() uint64 { return s.tuples.Load() }
