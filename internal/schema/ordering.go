package schema

import (
	"fmt"
	"strings"
)

// OrderKind enumerates the ordering properties an attribute can carry
// (paper §2.1). Properties may be declared in the DDL for source streams or
// imputed by the planner for derived streams.
type OrderKind uint8

const (
	// OrderNone means no known ordering.
	OrderNone OrderKind = iota
	// OrderStrictIncreasing: each value is strictly greater than the last.
	OrderStrictIncreasing
	// OrderIncreasing: monotone nondecreasing.
	OrderIncreasing
	// OrderStrictDecreasing: each value is strictly less than the last.
	OrderStrictDecreasing
	// OrderDecreasing: monotone nonincreasing.
	OrderDecreasing
	// OrderNonrepeating: monotone nonrepeating — a value never recurs once
	// a different value has been seen (e.g. output of a hash function over
	// an increasing key).
	OrderNonrepeating
	// OrderBandedIncreasing: every value is within Band of the running
	// maximum (e.g. NetFlow start timestamps are within 30 s of the high
	// water mark because records are flushed every 30 s).
	OrderBandedIncreasing
	// OrderIncreasingInGroup: increasing among the tuples that share the
	// values of the Group fields (e.g. NetFlow start time within a flow
	// 5-tuple).
	OrderIncreasingInGroup
)

// Ordering is an ordering property instance: a kind plus its parameters.
type Ordering struct {
	Kind  OrderKind
	Band  uint64   // OrderBandedIncreasing: width of the band
	Group []string // OrderIncreasingInGroup: grouping fields
}

// NoOrder is the absent ordering property.
var NoOrder = Ordering{Kind: OrderNone}

// Increasing reports whether the property guarantees the attribute never
// decreases (strictly or monotonically increasing).
func (o Ordering) Increasing() bool {
	return o.Kind == OrderStrictIncreasing || o.Kind == OrderIncreasing
}

// Decreasing reports whether the property guarantees the attribute never
// increases.
func (o Ordering) Decreasing() bool {
	return o.Kind == OrderStrictDecreasing || o.Kind == OrderDecreasing
}

// Monotone reports whether the attribute is usable as a progress indicator
// for unblocking operators: once the watermark passes a value, no tuple at
// or before that value (minus the band, if any) will arrive again.
func (o Ordering) Monotone() bool {
	return o.Increasing() || o.Decreasing() || o.Kind == OrderBandedIncreasing
}

// Usable reports whether the property can drive aggregation flushing or
// join/merge windows (paper §2.1). Nonrepeating alone cannot: it gives no
// bound on when a group closes. In-group increase only helps per-group.
func (o Ordering) Usable() bool { return o.Monotone() }

// Weaken returns the ordering that holds if a strictly ordered attribute
// may now repeat (e.g. after integer division by a constant).
func (o Ordering) Weaken() Ordering {
	switch o.Kind {
	case OrderStrictIncreasing:
		return Ordering{Kind: OrderIncreasing}
	case OrderStrictDecreasing:
		return Ordering{Kind: OrderDecreasing}
	case OrderNonrepeating:
		return NoOrder
	}
	return o
}

// Meet returns the strongest ordering implied by both a and b along a merge
// of two streams that each carry the respective property on the same
// attribute. (Used by the merge operator's imputation: merging two
// increasing streams on the merge key keeps the key increasing but not
// strictly.)
func Meet(a, b Ordering) Ordering {
	if a.Kind == OrderNone || b.Kind == OrderNone {
		return NoOrder
	}
	if a.Increasing() && b.Increasing() {
		return Ordering{Kind: OrderIncreasing}
	}
	if a.Decreasing() && b.Decreasing() {
		return Ordering{Kind: OrderDecreasing}
	}
	if (a.Kind == OrderBandedIncreasing || a.Increasing()) &&
		(b.Kind == OrderBandedIncreasing || b.Increasing()) {
		band := a.Band
		if b.Band > band {
			band = b.Band
		}
		return Ordering{Kind: OrderBandedIncreasing, Band: band}
	}
	return NoOrder
}

// String renders the property in the DDL annotation syntax.
func (o Ordering) String() string {
	switch o.Kind {
	case OrderNone:
		return "none"
	case OrderStrictIncreasing:
		return "strictly_increasing"
	case OrderIncreasing:
		return "increasing"
	case OrderStrictDecreasing:
		return "strictly_decreasing"
	case OrderDecreasing:
		return "decreasing"
	case OrderNonrepeating:
		return "monotone_nonrepeating"
	case OrderBandedIncreasing:
		return fmt.Sprintf("banded_increasing(%d)", o.Band)
	case OrderIncreasingInGroup:
		return fmt.Sprintf("increasing_in_group(%s)", strings.Join(o.Group, ","))
	}
	return fmt.Sprintf("ordering(%d)", uint8(o.Kind))
}

// Check validates a freshly observed value against the property given the
// previous observation state, returning an error describing the violation
// if the stream does not obey the declared property. It is used by tests
// and by the optional runtime order-checking mode.
type OrderChecker struct {
	ord   Ordering
	seen  bool
	last  Value
	max   Value // high water mark for banded
	group map[string]Value
	key   func(Tuple) string // group key extractor for in-group checking
}

// NewOrderChecker builds a checker for property ord. For
// OrderIncreasingInGroup, key must extract the group key from the tuple the
// checked value came from; it may be nil for other kinds.
func NewOrderChecker(ord Ordering, key func(Tuple) string) *OrderChecker {
	c := &OrderChecker{ord: ord, key: key}
	if ord.Kind == OrderIncreasingInGroup {
		c.group = make(map[string]Value)
	}
	return c
}

// Observe checks value v (from tuple t, used only for in-group keys)
// against the property.
func (c *OrderChecker) Observe(v Value, t Tuple) error {
	switch c.ord.Kind {
	case OrderNone:
		return nil
	case OrderIncreasingInGroup:
		k := c.key(t)
		if prev, ok := c.group[k]; ok && v.Compare(prev) < 0 {
			return fmt.Errorf("schema: %s violated in group %q: %s after %s", c.ord, k, v, prev)
		}
		c.group[k] = v
		return nil
	case OrderBandedIncreasing:
		if !c.seen {
			c.seen, c.max = true, v
			return nil
		}
		if v.Compare(c.max) > 0 {
			c.max = v
		} else if c.max.Type.Numeric() || c.max.Type == TIP {
			if c.max.Uint() > c.ord.Band && v.Uint() < c.max.Uint()-c.ord.Band {
				return fmt.Errorf("schema: %s violated: %s is more than %d below high water mark %s",
					c.ord, v, c.ord.Band, c.max)
			}
		}
		return nil
	}
	if !c.seen {
		c.seen, c.last = true, v
		return nil
	}
	cmp := v.Compare(c.last)
	var bad bool
	switch c.ord.Kind {
	case OrderStrictIncreasing:
		bad = cmp <= 0
	case OrderIncreasing:
		bad = cmp < 0
	case OrderStrictDecreasing:
		bad = cmp >= 0
	case OrderDecreasing:
		bad = cmp > 0
	case OrderNonrepeating:
		// Approximate check: flag immediate return to an earlier value is
		// impossible to detect without full history; detect equality after
		// change by remembering only the previous value.
		bad = false
	}
	if bad {
		return fmt.Errorf("schema: %s violated: %s after %s", c.ord, v, c.last)
	}
	c.last = v
	return nil
}
