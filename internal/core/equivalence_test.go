package core

import (
	"fmt"
	"sort"
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
)

// The fundamental compiler invariant: LFTA/HFTA splitting is a pure
// optimization. For a battery of query shapes, compile each query both
// split and monolithic, run identical traffic through the instantiated
// chains, and require identical result multisets.

var equivalenceQueries = []string{
	// Plain cheap selection.
	`DEFINE { query_name q; } SELECT time, srcIP, destPort FROM TCP WHERE destPort = 80`,
	// Selection with an expensive predicate (regex forced into HFTA).
	`DEFINE { query_name q; } SELECT time, srcIP FROM TCP
	 WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`,
	// Computed projections.
	`DEFINE { query_name q; } SELECT time/60 as tb, total_length*8 as bits, srcIP FROM TCP
	 WHERE protocol = 6 and total_length > 100`,
	// Split aggregation: count and sum.
	`DEFINE { query_name q; } SELECT tb, destPort, count(*), sum(total_length)
	 FROM TCP GROUP BY time/60 as tb, destPort`,
	// avg (ratio recombination) and min/max.
	`DEFINE { query_name q; } SELECT tb, avg(total_length), min(total_length), max(total_length)
	 FROM TCP GROUP BY time/60 as tb`,
	// Aggregation with WHERE and HAVING.
	`DEFINE { query_name q; } SELECT tb, srcIP, count(*) as cnt
	 FROM TCP WHERE destPort = 80 GROUP BY time/60 as tb, srcIP HAVING count(*) > 2`,
	// Aggregation forced monolithic by an expensive predicate.
	`DEFINE { query_name q; } SELECT tb, count(*) FROM TCP
	 WHERE str_regex_match(payload, 'HTTP') GROUP BY time/60 as tb`,
	// Bit aggregates.
	`DEFINE { query_name q; } SELECT tb, or_agg(flags), and_agg(flags)
	 FROM TCP GROUP BY time/60 as tb`,
	// Expression over aggregates in SELECT.
	`DEFINE { query_name q; } SELECT tb, count(*)*8 as cnt8, sum(total_length)/60 as rate
	 FROM TCP GROUP BY time/60 as tb`,
}

// runChain compiles and runs one query over the packets, returning the
// sorted rendering of the output tuples.
func runChain(t *testing.T, src string, disableSplit bool, pkts []pkt.Packet) []string {
	t.Helper()
	cat := newCatalog(t)
	cq := compile(t, cat, src, &Options{DisableSplit: disableSplit})
	insts := make([]*Instance, len(cq.Nodes))
	for i, n := range cq.Nodes {
		inst, err := n.Instantiate(nil)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
	}
	var rows []string
	var emits []exec.Emit
	emits = make([]exec.Emit, len(insts)+1)
	emits[len(insts)] = func(m exec.Message) {
		if !m.IsHeartbeat() {
			rows = append(rows, m.Tuple.String())
		}
	}
	for i := len(insts) - 1; i >= 1; i-- {
		next := insts[i]
		down := emits[i+1]
		emits[i] = func(m exec.Message) { next.Op.Push(0, m, down) }
	}
	for i := range pkts {
		if err := insts[0].PushPacket(&pkts[i], emits[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i, inst := range insts {
		inst.Op.FlushAll(emits[i+1])
	}
	sort.Strings(rows)
	return rows
}

func TestSplitMonolithicEquivalence(t *testing.T) {
	gen, err := netsim.New(netsim.Config{
		Seed: 99,
		Classes: []netsim.Class{
			{Name: "web", RateMbps: 60, PktBytes: 900, DstPort: 80,
				Proto: pkt.ProtoTCP, Payload: netsim.PayloadHTTP, HTTPFraction: 0.5, Flows: 64},
			{Name: "bg", RateMbps: 60, PktBytes: 700, DstPort: 443,
				Proto: pkt.ProtoTCP, Flows: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]pkt.Packet, 30_000)
	for i := range pkts {
		pkts[i], _ = gen.Next()
	}
	for qi, src := range equivalenceQueries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			split := runChain(t, src, false, pkts)
			mono := runChain(t, src, true, pkts)
			if len(split) != len(mono) {
				t.Fatalf("row counts differ: split %d, monolithic %d", len(split), len(mono))
			}
			for i := range split {
				if split[i] != mono[i] {
					t.Fatalf("row %d differs:\n  split: %s\n  mono:  %s", i, split[i], mono[i])
				}
			}
			if len(split) == 0 {
				t.Fatal("query produced no rows; workload does not exercise it")
			}
		})
	}
}

// The split plan must also agree with a hand-computed reference for the
// paper's headline aggregation.
func TestSplitAggMatchesReference(t *testing.T) {
	gen, err := netsim.New(netsim.Config{
		Seed: 100,
		Classes: []netsim.Class{{
			Name: "mix", RateMbps: 80, PktBytes: 600, DstPort: 80,
			Proto: pkt.ProtoTCP, Flows: 128,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]pkt.Packet, 20_000)
	want := map[[2]uint64][2]uint64{} // (tb, port) -> (count, bytes)
	tlInterp, _ := pkt.LookupInterp("get_total_length")
	tInterp, _ := pkt.LookupInterp("get_time")
	pInterp, _ := pkt.LookupInterp("get_dest_port")
	for i := range pkts {
		pkts[i], _ = gen.Next()
		tv, _ := tInterp.Extract(&pkts[i])
		pv, _ := pInterp.Extract(&pkts[i])
		lv, _ := tlInterp.Extract(&pkts[i])
		k := [2]uint64{tv.Uint() / 60, pv.Uint()}
		cur := want[k]
		cur[0]++
		cur[1] += lv.Uint()
		want[k] = cur
	}
	rows := runChain(t, `
		DEFINE { query_name ref; }
		SELECT tb, destPort, count(*), sum(total_length)
		FROM TCP GROUP BY time/60 as tb, destPort`, false, pkts)
	got := map[[2]uint64][2]uint64{}
	for _, r := range rows {
		var tb, port, cnt, bytes uint64
		if _, err := fmt.Sscanf(r, "[%d, %d, %d, %d]", &tb, &port, &cnt, &bytes); err != nil {
			t.Fatalf("parse row %q: %v", r, err)
		}
		got[[2]uint64{tb, port}] = [2]uint64{cnt, bytes}
	}
	if len(got) != len(want) {
		t.Fatalf("groups: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("group %v: got %v, want %v", k, got[k], w)
		}
	}
}
