package plan

import (
	"strings"
	"testing"

	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

func parseWhere(t *testing.T, pred string) gsql.Expr {
	t.Helper()
	q, err := gsql.ParseQuery("DEFINE { query_name t; param p uint; } SELECT time FROM TCP WHERE " + pred)
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	return q.Where
}

func testSchema() *schema.Schema {
	return &schema.Schema{
		Name: "TCP",
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "srcIP", Type: schema.TUint},
			{Name: "destPort", Type: schema.TUint},
			{Name: "total_length", Type: schema.TUint},
		},
	}
}

func items(names ...string) []gsql.SelectItem {
	out := make([]gsql.SelectItem, len(names))
	for i, n := range names {
		out[i] = gsql.SelectItem{Expr: &gsql.ColRef{Name: n}}
	}
	return out
}

// selproj builds the canonical boundary shape Project(Filter?(Scan)).
func selproj(name string, mode BoundaryMode, iface, binding string, pred gsql.Expr, cols ...string) *Boundary {
	var in Node = &Scan{Name: "TCP", Interface: iface, Binding: binding, IsProtocol: true, Schema: testSchema()}
	if pred != nil {
		in = &Filter{Pred: pred, Input: in}
	}
	in = &Project{Items: items(cols...), Input: in}
	return &Boundary{Name: name, Mode: mode, Input: in, PrefilterGroup: -1}
}

func TestCanonNormalization(t *testing.T) {
	a := parseWhere(t, "S.DestPort = 80 and STR_REGEX_MATCH(Payload, 'GET')")
	b := parseWhere(t, "destport = 80 and str_regex_match(payload, 'GET')")
	if Canon(a) != Canon(b) {
		t.Errorf("qualifier/case variants should canonicalize equal:\n  %s\n  %s", Canon(a), Canon(b))
	}
	c := parseWhere(t, "destport = 80 and str_regex_match(payload, 'get')")
	if Canon(a) == Canon(c) {
		t.Errorf("literal case must be preserved: %s", Canon(c))
	}
	if Canon(nil) != "" {
		t.Errorf("Canon(nil) = %q", Canon(nil))
	}
}

func TestConjunctsConjoinRoundTrip(t *testing.T) {
	e := parseWhere(t, "destPort = 80 and total_length > 40 and srcIP = 10")
	cjs := Conjuncts(e)
	if len(cjs) != 3 {
		t.Fatalf("Conjuncts: got %d, want 3", len(cjs))
	}
	if Canon(Conjoin(cjs)) != Canon(e) {
		t.Errorf("Conjoin(Conjuncts(e)) != e:\n  %s\n  %s", Canon(Conjoin(cjs)), Canon(e))
	}
	if Conjoin(nil) != nil {
		t.Errorf("Conjoin(nil) should be nil")
	}
	fwd := CanonConjuncts(parseWhere(t, "destPort = 80 and srcIP = 10"))
	rev := CanonConjuncts(parseWhere(t, "srcIP = 10 and destPort = 80"))
	if strings.Join(fwd, "|") != strings.Join(rev, "|") {
		t.Errorf("CanonConjuncts must be AND-order insensitive: %v vs %v", fwd, rev)
	}
}

func TestHasParam(t *testing.T) {
	if !HasParam(parseWhere(t, "destPort = $p")) {
		t.Errorf("missed parameter reference")
	}
	if HasParam(parseWhere(t, "destPort = 80")) {
		t.Errorf("false positive on literal predicate")
	}
}

func TestFingerprint(t *testing.T) {
	base := func() *Boundary {
		return selproj("_lfta_a", ModePassThrough, "eth0", "",
			parseWhere(t, "destPort = 80 and total_length > 40"), "time", "srcip")
	}
	fp1, ok := Fingerprint(base())
	if !ok {
		t.Fatalf("canonical selproj boundary should fingerprint")
	}
	// AND order must not change identity.
	reordered := selproj("_lfta_b", ModeWrap, "eth0", "",
		parseWhere(t, "total_length > 40 and destPort = 80"), "time", "srcip")
	if fp2, ok := Fingerprint(reordered); !ok || fp2 != fp1 {
		t.Errorf("conjunct order changed fingerprint:\n  %s\n  %s", fp1, fp2)
	}
	// Any structural difference must change identity.
	variants := map[string]*Boundary{
		"interface": selproj("_lfta_c", ModePassThrough, "eth1", "",
			parseWhere(t, "destPort = 80 and total_length > 40"), "time", "srcip"),
		"filter": selproj("_lfta_d", ModePassThrough, "eth0", "",
			parseWhere(t, "destPort = 443"), "time", "srcip"),
		"projection": selproj("_lfta_e", ModePassThrough, "eth0", "",
			parseWhere(t, "destPort = 80 and total_length > 40"), "time", "destport"),
	}
	for what, b := range variants {
		if fp, ok := Fingerprint(b); ok && fp == fp1 {
			t.Errorf("%s difference did not change fingerprint", what)
		}
	}
	// Ineligible shapes.
	whole := selproj("q", ModeWhole, "eth0", "", nil, "time")
	if _, ok := Fingerprint(whole); ok {
		t.Errorf("ModeWhole boundary must not be shareable (applications subscribe to its name)")
	}
	split := selproj("_lfta_s", ModeSplitAgg, "eth0", "", nil, "time")
	if _, ok := Fingerprint(split); ok {
		t.Errorf("ModeSplitAgg boundary must not be shareable (demotion target)")
	}
	param := selproj("_lfta_p", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = $p"), "time")
	if _, ok := Fingerprint(param); ok {
		t.Errorf("parameterized boundary must not be shareable (SetParams rebinds)")
	}
	stream := &Boundary{Name: "_lfta_st", Mode: ModePassThrough, Input: &Project{
		Items: items("time"),
		Input: &Scan{Name: "upstream", IsProtocol: false, Schema: testSchema()},
	}}
	if _, ok := Fingerprint(stream); ok {
		t.Errorf("stream-scan boundary must not be shareable")
	}
}

func TestSharePass(t *testing.T) {
	mk := func(query, node string) *QueryPlan {
		b := selproj(node, ModePassThrough, "eth0", "",
			parseWhere(t, "destPort = 80"), "time", "srcip")
		return &QueryPlan{Name: query, Root: &Aggregate{Input: b}}
	}
	p1, p2 := mk("q1", "_lfta_q1"), mk("q2", "_lfta_q2")
	ctx := &ScriptContext{}
	for _, pl := range []*QueryPlan{p1, p2} {
		if err := (SharePass{}).Run(pl, ctx); err != nil {
			t.Fatal(err)
		}
	}
	b1 := Boundaries(p1.Root)[0]
	b2 := Boundaries(p2.Root)[0]
	if b2.SharedWith != "_lfta_q1" {
		t.Errorf("duplicate boundary not eliminated: SharedWith=%q", b2.SharedWith)
	}
	if len(b1.SharedBy) != 1 || b1.SharedBy[0] != "q2" {
		t.Errorf("canonical boundary SharedBy = %v, want [q2]", b1.SharedBy)
	}

	// DisableSharing leaves every boundary independent.
	p3, p4 := mk("q3", "_lfta_q3"), mk("q4", "_lfta_q4")
	off := &ScriptContext{DisableSharing: true}
	for _, pl := range []*QueryPlan{p3, p4} {
		if err := (SharePass{}).Run(pl, off); err != nil {
			t.Fatal(err)
		}
	}
	if Boundaries(p4.Root)[0].SharedWith != "" {
		t.Errorf("DisableSharing still eliminated a boundary")
	}
}

func TestPushdownMergeDistribution(t *testing.T) {
	left := selproj("_lfta_m0", ModeWrap, "eth0", "", parseWhere(t, "srcIP = 10"), "time", "destport")
	right := &Scan{Name: "upstream", IsProtocol: false, Schema: testSchema()}
	m := &Merge{
		Cols:   []*gsql.ColRef{{Name: "time"}, {Name: "time"}},
		Inputs: []Node{left, right},
	}
	pl := &QueryPlan{Name: "mq", Root: &Filter{Pred: parseWhere(t, "destPort = 443"), Input: m}}
	if err := (PushdownPass{}).Run(pl, &ScriptContext{}); err != nil {
		t.Fatal(err)
	}
	if pl.Root != Node(m) {
		t.Fatalf("filter-over-merge not collapsed; root is %T", pl.Root)
	}
	// Boundary branch: conjunct ANDed into the inner filter.
	got := Canon(left.InnerFilter().Pred)
	if !strings.Contains(got, "destport = 443") || !strings.Contains(got, "srcip = 10") {
		t.Errorf("boundary branch filter = %s, want both conjuncts", got)
	}
	// Stream branch: explicit Filter node inserted for emit to materialize.
	f, ok := m.Inputs[1].(*Filter)
	if !ok {
		t.Fatalf("stream branch not wrapped in Filter: %T", m.Inputs[1])
	}
	if Canon(f.Pred) != Canon(parseWhere(t, "destPort = 443")) {
		t.Errorf("stream branch filter = %s", Canon(f.Pred))
	}
}

func TestPushdownJoinConjuncts(t *testing.T) {
	left := selproj("_lfta_j0", ModeWrap, "eth0", "S", nil, "time", "srcip", "destport")
	right := selproj("_lfta_j1", ModeWrap, "eth1", "A", nil, "time", "srcip", "destport")
	j := &Join{
		Left:  left,
		Right: right,
		Pred: parseWhere(t,
			"S.srcIP = A.srcIP and S.time >= A.time - 2 and S.time <= A.time + 2 and A.destPort = 80 and S.total_length = $p"),
		Select: items("time"),
	}
	pl := &QueryPlan{Name: "jq", Root: j}
	if err := (PushdownPass{}).Run(pl, &ScriptContext{}); err != nil {
		t.Fatal(err)
	}
	rf := right.InnerFilter()
	if rf == nil || Canon(rf.Pred) != "(destport = 80)" {
		t.Fatalf("single-side conjunct not pushed into right wrap boundary: %v", rf)
	}
	if left.InnerFilter() != nil {
		t.Errorf("left boundary gained a filter it should not have: %s", Canon(left.InnerFilter().Pred))
	}
	rest := Canon(j.Pred)
	for _, keep := range []string{
		"srcip = srcip",        // two-sided equality stays
		"time >= (time - 2)",   // window conjuncts stay (ordered column)
		"total_length = param", // parameterized conjunct stays
	} {
		if !strings.Contains(strings.ReplaceAll(rest, "$", "param:"), strings.ReplaceAll(keep, "param", "param:p")) {
			t.Errorf("residual join predicate lost %q: %s", keep, rest)
		}
	}
	if strings.Contains(rest, "destport = 80") {
		t.Errorf("pushed conjunct still in join predicate: %s", rest)
	}
}

func TestPrefilterPass(t *testing.T) {
	b1 := selproj("_lfta_a", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = 80 and total_length > 40"), "time")
	b2 := selproj("_lfta_b", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = 80"), "time")
	// Eliminated boundaries contribute nothing; the canonical one carries
	// the identical terms.
	b3 := selproj("_lfta_c", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = 80"), "time")
	b3.SharedWith = "_lfta_b"
	// A different interface lands in its own group.
	b4 := selproj("_lfta_d", ModePassThrough, "eth1", "",
		parseWhere(t, "destPort = 53"), "time")
	s := &Script{Plans: []*QueryPlan{
		{Name: "a", Root: &Aggregate{Input: b1}},
		{Name: "b", Root: &Aggregate{Input: b2}},
		{Name: "c", Root: &Aggregate{Input: b3}},
		{Name: "d", Root: &Aggregate{Input: b4}},
	}}
	if err := (PrefilterPass{}).Run(s, &ScriptContext{}); err != nil {
		t.Fatal(err)
	}
	if len(s.Prefilters) != 2 {
		t.Fatalf("got %d prefilter groups, want 2", len(s.Prefilters))
	}
	g := s.Prefilters[b1.PrefilterGroup]
	if len(g.Terms) != 2 {
		t.Fatalf("eth0 group has %d terms, want 2 (shared term deduplicated)", len(g.Terms))
	}
	if b1.PrefilterMask != 0b11 {
		t.Errorf("_lfta_a mask = %#x, want 0x3", b1.PrefilterMask)
	}
	if b2.PrefilterMask != 0b01 {
		t.Errorf("_lfta_b mask = %#x, want 0x1 (only the shared destPort term)", b2.PrefilterMask)
	}
	if b3.PrefilterMask != 0 || b3.PrefilterGroup != -1 {
		t.Errorf("eliminated boundary gated: group=%d mask=%#x", b3.PrefilterGroup, b3.PrefilterMask)
	}
	if b4.PrefilterGroup == b1.PrefilterGroup {
		t.Errorf("different interfaces merged into one prefilter group")
	}
	if got := g.Members["_lfta_a"] | g.Members["_lfta_b"]; got != 0b11 {
		t.Errorf("member masks = %#x, want combined 0x3", got)
	}

	// Parameterized terms never enter a group.
	bp := selproj("_lfta_p", ModePassThrough, "eth2", "",
		parseWhere(t, "destPort = $p"), "time")
	sp := &Script{Plans: []*QueryPlan{{Name: "p", Root: &Aggregate{Input: bp}}}}
	if err := (PrefilterPass{}).Run(sp, &ScriptContext{}); err != nil {
		t.Fatal(err)
	}
	if len(sp.Prefilters) != 0 || bp.PrefilterMask != 0 {
		t.Errorf("parameterized predicate was hoisted into a prefilter")
	}
}

func TestWalkAndAccessors(t *testing.T) {
	b := selproj("_lfta_w", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = 80"), "time", "srcip")
	root := &Aggregate{Input: b}
	var kinds []string
	Walk(root, func(n Node) bool {
		switch n.(type) {
		case *Aggregate:
			kinds = append(kinds, "agg")
		case *Boundary:
			kinds = append(kinds, "boundary")
		case *Project:
			kinds = append(kinds, "project")
		case *Filter:
			kinds = append(kinds, "filter")
		case *Scan:
			kinds = append(kinds, "scan")
		}
		return true
	})
	if strings.Join(kinds, ",") != "agg,boundary,project,filter,scan" {
		t.Errorf("Walk order: %v", kinds)
	}
	if b.Scan() == nil || !b.Scan().IsProtocol {
		t.Errorf("Boundary.Scan failed")
	}
	if b.InnerFilter() == nil || b.InnerProject() == nil {
		t.Errorf("inner accessors failed")
	}
	if n := len(Boundaries(root)); n != 1 {
		t.Errorf("Boundaries found %d, want 1", n)
	}
	for mode, want := range map[BoundaryMode]string{
		ModeWhole: "whole", ModePassThrough: "pass-through",
		ModeSplitAgg: "split-agg", ModeWrap: "wrap", BoundaryMode(0): "?",
	} {
		if mode.String() != want {
			t.Errorf("BoundaryMode(%d).String() = %q, want %q", mode, mode.String(), want)
		}
	}
}

func TestFormat(t *testing.T) {
	b := selproj("_lfta_f", ModePassThrough, "eth0", "",
		parseWhere(t, "destPort = 80"), "time", "srcip")
	b.SharedBy = []string{"other"}
	b.PrefilterGroup, b.PrefilterMask = 0, 0x1
	pl := &QueryPlan{Name: "fq", Root: &Aggregate{
		GroupBy: items("time"),
		Select:  items("time"),
		Input:   b,
	}}
	s := &Script{
		Plans: []*QueryPlan{pl},
		Prefilters: []*PrefilterGroup{{
			Interface: "eth0", Protocol: "TCP",
			Terms:   Conjuncts(Normalize(parseWhere(t, "destPort = 80"))),
			Members: map[string]uint64{"_lfta_f": 0x1},
		}},
	}
	out := s.Format()
	for _, want := range []string{
		"plan fq", "Aggregate", "Boundary _lfta_f [pass-through]",
		"shared-by=[other]", "prefilter=g0/0x1",
		"prefilter groups", "g0 eth0.TCP", "mask=0x1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Script.Format missing %q:\n%s", want, out)
		}
	}
}
