package core

import (
	"strings"
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

func newCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		t.Fatal(err)
	}
	return cat
}

func compile(t *testing.T, cat *schema.Catalog, src string, opts *Options) *CompiledQuery {
	t.Helper()
	q, err := gsql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cq, err := Compile(cat, q, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cq
}

func TestCompilePaperTCPDestEntirelyLFTA(t *testing.T) {
	// The paper's §2.2 example is cheap selection/projection: it must
	// compile to a single LFTA ("a simple query can execute entirely as
	// an LFTA").
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name tcpdest0; }
		SELECT destIP, destPort, time
		FROM eth0.tcp
		WHERE ipversion = 4 and protocol = 6`, nil)
	if len(cq.Nodes) != 1 {
		t.Fatalf("%d nodes, want 1:\n%s", len(cq.Nodes), cq.Explain())
	}
	n := cq.Output()
	if n.Level != LevelLFTA || n.Kind != OpSelProj {
		t.Errorf("node = %s %s", n.Level, n.Kind)
	}
	if n.Sources[0].Interface != "eth0" || !n.Sources[0].IsProtocol {
		t.Errorf("source = %v", n.Sources[0])
	}
	// Output schema: destIP ip, destPort uint, time uint (increasing).
	out := n.Out
	if len(out.Cols) != 3 || out.Cols[0].Type != schema.TIP {
		t.Fatalf("out = %s", out)
	}
	if !out.Cols[2].Ordering.Increasing() {
		t.Errorf("time ordering = %s", out.Cols[2].Ordering)
	}
	// NIC pushdown: both conjuncts are raw header comparisons.
	if n.NICProgram == nil || len(n.NICProgram.Clauses) != 2 {
		t.Fatalf("nic program = %v", n.NICProgram)
	}
	// Snap length: header fields only, no payload.
	if n.SnapLen == 0 || n.SnapLen > 54 {
		t.Errorf("snap = %d", n.SnapLen)
	}
	// The catalog now serves the query's output schema to other queries.
	if _, ok := cat.Lookup("tcpdest0"); !ok {
		t.Error("output schema not registered")
	}
}

func TestCompileHTTPFilterSplits(t *testing.T) {
	// The §4 experiment query: port-80 filter is cheap (LFTA), regex is
	// expensive (HFTA).
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name http80; }
		SELECT time, srcIP, destIP
		FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`, nil)
	if len(cq.Nodes) != 2 {
		t.Fatalf("%d nodes, want 2:\n%s", len(cq.Nodes), cq.Explain())
	}
	lfta, hfta := cq.Nodes[0], cq.Nodes[1]
	if lfta.Level != LevelLFTA || hfta.Level != LevelHFTA {
		t.Fatalf("levels = %s, %s", lfta.Level, hfta.Level)
	}
	if !strings.HasPrefix(lfta.Name, "_lfta_") {
		t.Errorf("mangled name = %q", lfta.Name)
	}
	// The LFTA's WHERE keeps only the cheap conjunct.
	if lfta.Query.Where == nil || strings.Contains(lfta.Query.Where.String(), "regex") {
		t.Errorf("lfta where = %v", lfta.Query.Where)
	}
	// The HFTA keeps the regex and reads the LFTA stream.
	if hfta.Query.Where == nil || !strings.Contains(hfta.Query.Where.String(), "str_regex_match") {
		t.Errorf("hfta where = %v", hfta.Query.Where)
	}
	if hfta.Sources[0].Name != lfta.Name {
		t.Errorf("hfta reads %s", hfta.Sources[0].Name)
	}
	// Payload referenced: full capture needed.
	if lfta.SnapLen != 0 {
		t.Errorf("snap = %d, want full (0)", lfta.SnapLen)
	}
	// The port-80 comparison is still pushable to the NIC.
	if lfta.NICProgram == nil || len(lfta.NICProgram.Clauses) != 1 {
		t.Errorf("nic = %v", lfta.NICProgram)
	}
	// Both node schemas registered (paper: "both streams are available to
	// the application, though the LFTA query will have a mangled name").
	if _, ok := cat.Lookup(lfta.Name); !ok {
		t.Error("LFTA stream not registered")
	}
}

func TestCompileAggregateSplit(t *testing.T) {
	// count(*) per minute per port over a protocol: LFTA sub-aggregation
	// + HFTA super-aggregation (§3).
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name perport; }
		SELECT tb, destPort, count(*), sum(total_length)
		FROM tcp
		WHERE protocol = 6
		GROUP BY time/60 as tb, destPort`, nil)
	if len(cq.Nodes) != 2 {
		t.Fatalf("%d nodes:\n%s", len(cq.Nodes), cq.Explain())
	}
	lfta, hfta := cq.Nodes[0], cq.Nodes[1]
	if lfta.Kind != OpAgg || hfta.Kind != OpAgg {
		t.Fatalf("kinds = %s, %s", lfta.Kind, hfta.Kind)
	}
	// LFTA emits partials: tb, destPort, sub0_0 (count), sub1_0 (sum).
	if len(lfta.Out.Cols) != 4 {
		t.Fatalf("lfta out = %s", lfta.Out)
	}
	// HFTA super-aggregates: count partials are SUMMED.
	hs := hfta.Query.String()
	if !strings.Contains(hs, "sum(sub0_0)") {
		t.Errorf("hfta query = %s", hs)
	}
	// Ordered group key imputed increasing through both levels.
	if !lfta.Out.Cols[0].Ordering.Increasing() {
		t.Errorf("lfta tb ordering = %s", lfta.Out.Cols[0].Ordering)
	}
	if !hfta.Out.Cols[0].Ordering.Increasing() {
		t.Errorf("hfta tb ordering = %s", hfta.Out.Cols[0].Ordering)
	}
}

func TestCompileAvgSplitsToRatio(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name avglen; }
		SELECT tb, avg(total_length) FROM tcp GROUP BY time/60 as tb`, nil)
	if len(cq.Nodes) != 2 {
		t.Fatalf("%d nodes", len(cq.Nodes))
	}
	hs := cq.Output().Query.String()
	// avg → sum(sum partial) / sum(count partial) as float.
	if !strings.Contains(hs, "to_float(sum(sub0_0))") || !strings.Contains(hs, "to_float(sum(sub0_1))") {
		t.Errorf("hfta query = %s", hs)
	}
	out := cq.Output().Out
	if out.Cols[1].Type != schema.TFloat {
		t.Errorf("avg type = %s", out.Cols[1].Type)
	}
}

func TestCompileExpensiveGroupByDoesNotSplitAgg(t *testing.T) {
	// Expensive predicate forces the aggregation wholly into the HFTA;
	// the LFTA only filters/projects.
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name h; }
		SELECT tb, count(*) FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, 'HTTP')
		GROUP BY time/60 as tb`, nil)
	if len(cq.Nodes) != 2 {
		t.Fatalf("%d nodes", len(cq.Nodes))
	}
	if cq.Nodes[0].Kind != OpSelProj {
		t.Errorf("lfta kind = %s, want select/project", cq.Nodes[0].Kind)
	}
	if cq.Nodes[1].Kind != OpAgg {
		t.Errorf("hfta kind = %s", cq.Nodes[1].Kind)
	}
}

func TestCompileStreamSourceIsPureHFTA(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name base; } SELECT time, destPort FROM tcp`, nil)
	cq := compile(t, cat, `
		DEFINE { query_name derived; }
		SELECT time FROM base WHERE destPort = 80`, nil)
	if len(cq.Nodes) != 1 || cq.Output().Level != LevelHFTA {
		t.Fatalf("nodes = %v", cq.Nodes)
	}
	if cq.Output().Sources[0].IsProtocol {
		t.Error("stream source marked protocol")
	}
}

func TestCompileMergePaperQuery(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name tcpdest0; } SELECT destIP, destPort, time FROM eth0.tcp`, nil)
	compile(t, cat, `DEFINE { query_name tcpdest1; } SELECT destIP, destPort, time FROM eth1.tcp`, nil)
	cq := compile(t, cat, `
		DEFINE { query_name tcpdest; }
		MERGE tcpdest0.time : tcpdest1.time
		FROM tcpdest0, tcpdest1`, nil)
	n := cq.Output()
	if n.Kind != OpMerge || len(n.Sources) != 2 {
		t.Fatalf("node = %+v", n)
	}
	// Output schema matches inputs; merge column keeps increasing.
	i, c := n.Out.Col("time")
	if i < 0 || !c.Ordering.Increasing() {
		t.Errorf("merged time ordering = %v", c)
	}
}

func TestCompileMergeDirectlyOverProtocols(t *testing.T) {
	// Merging two interfaces directly synthesizes pass-through LFTAs.
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name alltcp; }
		MERGE a.time : b.time
		FROM eth0.tcp a, eth1.tcp b`, nil)
	if len(cq.Nodes) != 3 {
		t.Fatalf("%d nodes:\n%s", len(cq.Nodes), cq.Explain())
	}
	if cq.Nodes[0].Level != LevelLFTA || cq.Nodes[1].Level != LevelLFTA {
		t.Error("protocol inputs not wrapped in LFTAs")
	}
	if cq.Output().Kind != OpMerge {
		t.Errorf("output = %s", cq.Output().Kind)
	}
}

func TestCompileJoinWithWindow(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name b; } SELECT time, srcIP, destIP FROM eth0.tcp`, nil)
	compile(t, cat, `DEFINE { query_name c; } SELECT time, srcIP, destIP FROM eth1.tcp`, nil)
	cq := compile(t, cat, `
		DEFINE { query_name bc; }
		SELECT B.time, B.srcIP, C.destIP
		FROM b B, c C
		WHERE B.time >= C.time - 1 and B.time <= C.time + 1 and B.srcIP = C.srcIP`, nil)
	n := cq.Output()
	if n.Kind != OpJoin {
		t.Fatalf("kind = %s", n.Kind)
	}
	js := n.joinSpec
	if js.LowSlack != 1 || js.HighSlack != 1 {
		t.Errorf("window = [-%d, +%d], want [-1, +1]", js.LowSlack, js.HighSlack)
	}
	if len(js.EqL) != 1 {
		t.Errorf("eq keys = %d, want 1 (srcIP)", len(js.EqL))
	}
	// Paper §2.1: band join output is banded-increasing(2) with the
	// low-buffer algorithm.
	ord := n.Out.Cols[0].Ordering
	if ord.Kind != schema.OrderBandedIncreasing || ord.Band != 2 {
		t.Errorf("output time ordering = %s, want banded_increasing(2)", ord)
	}
	if js.OutOrdL != 0 {
		t.Errorf("OutOrdL = %d", js.OutOrdL)
	}
}

func TestCompileJoinEqualityWindowImputesIncreasing(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name b2; } SELECT time, srcIP FROM eth0.tcp`, nil)
	compile(t, cat, `DEFINE { query_name c2; } SELECT time, srcIP FROM eth1.tcp`, nil)
	cq := compile(t, cat, `
		DEFINE { query_name bc2; }
		SELECT B.time, B.srcIP FROM b2 B, c2 C
		WHERE B.time = C.time and B.srcIP = C.srcIP`, nil)
	ord := cq.Output().Out.Cols[0].Ordering
	if !ord.Increasing() {
		t.Errorf("equality join output ordering = %s, want increasing", ord)
	}
}

func TestCompileJoinRequiresWindow(t *testing.T) {
	cat := newCatalog(t)
	compile(t, cat, `DEFINE { query_name b3; } SELECT time, srcIP FROM eth0.tcp`, nil)
	compile(t, cat, `DEFINE { query_name c3; } SELECT time, srcIP FROM eth1.tcp`, nil)
	q, _ := gsql.ParseQuery(`
		DEFINE { query_name bad; }
		SELECT B.time FROM b3 B, c3 C WHERE B.srcIP = C.srcIP`)
	if _, err := Compile(cat, q, nil); err == nil {
		t.Error("join without window constraint accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`SELECT time FROM tcp`,                                                   // no name
		`DEFINE { query_name tcp; } SELECT time FROM tcp`,                        // name collision with protocol
		`DEFINE { query_name x1; } SELECT time FROM nosuch`,                      // unknown source
		`DEFINE { query_name x2; } SELECT nosuchcol FROM tcp`,                    // unknown column
		`DEFINE { query_name x3; } SELECT count(*) FROM tcp`,                     // aggregate without group by
		`DEFINE { query_name x4; } SELECT time, time FROM tcp`,                   // duplicate out names
		`DEFINE { query_name x5; } SELECT srcIP FROM tcp GROUP BY time/60 as tb`, // non-group col
		`DEFINE { query_name x6; } SELECT a.time FROM eth0.tcp a, eth1.tcp b, eth2.tcp c WHERE a.time = b.time and b.time = c.time`, // 3-way join
		`DEFINE { query_name x7; } SELECT time FROM tcp WHERE count(*) > 1 GROUP BY time/60 as tb`,                                  // agg in where
		`DEFINE { query_name x8; } SELECT tb FROM tcp GROUP BY time/60 as tb`,                                                       // group by without aggregate
		`DEFINE { query_name x9; } MERGE a.time : b.destPort FROM eth0.tcp a, eth1.tcp b`,                                           // unordered merge col... destPort has no ordering
	}
	for _, src := range cases {
		cat := newCatalog(t)
		q, err := gsql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(cat, q, nil); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestCompileScriptOrderAndProtocolDefs(t *testing.T) {
	cat := newCatalog(t)
	script, err := gsql.ParseScript(`
		PROTOCOL SENSOR {
			uint time get_time (increasing);
			uint reading get_total_length;
		}
		DEFINE { query_name s1; }
		SELECT time, reading FROM SENSOR WHERE reading > 100;
		DEFINE { query_name s2; }
		SELECT tb, count(*) FROM s1 GROUP BY time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	cqs, err := CompileScript(cat, script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqs) != 2 {
		t.Fatalf("%d compiled queries", len(cqs))
	}
	if _, ok := cat.Lookup("SENSOR"); !ok {
		t.Error("protocol def not registered")
	}
}

func TestCompileDisableSplitOption(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name mono; }
		SELECT tb, count(*) FROM tcp WHERE destPort = 80 GROUP BY time/60 as tb`,
		&Options{DisableSplit: true})
	if len(cq.Nodes) != 2 {
		t.Fatalf("%d nodes", len(cq.Nodes))
	}
	// Pass-through LFTA does no filtering; everything happens in the HFTA.
	if cq.Nodes[0].Kind != OpSelProj || cq.Nodes[0].Query.Where != nil {
		t.Errorf("lfta = %s where=%v", cq.Nodes[0].Kind, cq.Nodes[0].Query.Where)
	}
	if cq.Nodes[1].Kind != OpAgg {
		t.Errorf("hfta = %s", cq.Nodes[1].Kind)
	}
}

func TestExplainOutput(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name e1; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, 'HTTP')`, nil)
	s := cq.Explain()
	for _, want := range []string{"LFTA", "HFTA", "_lfta_e1", "nic:", "snap: full packet", "increasing"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

// End-to-end: compile the paper's aggregation query and run packets
// through the instantiated LFTA→HFTA chain.
func TestCompiledChainEndToEnd(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name flows; }
		SELECT tb, destPort, count(*), sum(total_length)
		FROM tcp WHERE protocol = 6
		GROUP BY time/60 as tb, destPort`, nil)
	lfta, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	hfta, err := cq.Nodes[1].Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	var final []exec.Message
	sink := exec.Collect(&final)
	forward := func(m exec.Message) {
		if err := hfta.Op.Push(0, m, sink); err != nil {
			t.Fatal(err)
		}
	}
	// 3 packets to :80 and 2 to :443 in minute 0, then one in minute 2.
	mkpkt := func(sec uint64, port uint16, payload int) pkt.Packet {
		return pkt.BuildTCP(sec*1e6, pkt.TCPSpec{
			SrcIP: 0x0a000001, DstIP: 0x0a000002,
			SrcPort: 9999, DstPort: port,
			Payload: make([]byte, payload),
		})
	}
	pkts := []pkt.Packet{
		mkpkt(5, 80, 10), mkpkt(10, 443, 20), mkpkt(20, 80, 30),
		mkpkt(30, 443, 40), mkpkt(50, 80, 50),
		mkpkt(130, 80, 1),
	}
	for i := range pkts {
		if err := lfta.PushPacket(&pkts[i], forward); err != nil {
			t.Fatal(err)
		}
	}
	lfta.Op.FlushAll(forward)
	hfta.Op.FlushAll(sink)

	rows := map[[2]uint64][2]uint64{}
	for _, m := range final {
		if m.IsHeartbeat() {
			continue
		}
		tup := m.Tuple
		rows[[2]uint64{tup[0].Uint(), tup[1].Uint()}] = [2]uint64{tup[2].Uint(), tup[3].Uint()}
	}
	// total_length is the IPv4 total length: 40 header bytes + payload.
	want := map[[2]uint64][2]uint64{
		{0, 80}:  {3, 3*40 + 10 + 30 + 50},
		{0, 443}: {2, 2*40 + 20 + 40},
		{2, 80}:  {1, 40 + 1},
	}
	for k, w := range want {
		g, ok := rows[k]
		if !ok {
			t.Errorf("missing group %v (have %v)", k, rows)
			continue
		}
		if g != w {
			t.Errorf("group %v = %v, want %v", k, g, w)
		}
	}
	if len(rows) != len(want) {
		t.Errorf("rows = %v", rows)
	}
}
