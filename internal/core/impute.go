package core

import (
	"strings"

	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// Ordering imputation (paper §2.1): "The query processing system will
// impute ordering properties of the output of query operators." This file
// derives the ordering property of an expression over an input schema.

// imputeExpr returns the ordering property of expression e evaluated over
// rows of schema s (with the given binding for qualified references).
func imputeExpr(e gsql.Expr, s *schema.Schema, binding string) schema.Ordering {
	switch n := e.(type) {
	case *gsql.ColRef:
		if n.Table != "" && !strings.EqualFold(n.Table, binding) && !strings.EqualFold(n.Table, s.Name) {
			return schema.NoOrder
		}
		if _, c := s.Col(n.Name); c != nil {
			return c.Ordering
		}
		return schema.NoOrder
	case *gsql.UnaryExpr:
		if n.Op == gsql.OpNeg {
			return flipOrdering(imputeExpr(n.X, s, binding))
		}
		return schema.NoOrder
	case *gsql.BinaryExpr:
		return imputeBinary(n, s, binding)
	}
	return schema.NoOrder
}

func flipOrdering(o schema.Ordering) schema.Ordering {
	switch o.Kind {
	case schema.OrderStrictIncreasing:
		return schema.Ordering{Kind: schema.OrderStrictDecreasing}
	case schema.OrderIncreasing:
		return schema.Ordering{Kind: schema.OrderDecreasing}
	case schema.OrderStrictDecreasing:
		return schema.Ordering{Kind: schema.OrderStrictIncreasing}
	case schema.OrderDecreasing:
		return schema.Ordering{Kind: schema.OrderIncreasing}
	case schema.OrderNonrepeating:
		return o
	}
	// Banded-increasing does not survive negation in the uint domain.
	return schema.NoOrder
}

// imputeBinary handles expr OP const and const OP expr, the monotone
// transformations queries apply to timestamps: time/60 (bucketing),
// time+3600 (zone shifts), time*1000 (unit changes).
func imputeBinary(n *gsql.BinaryExpr, s *schema.Schema, binding string) schema.Ordering {
	var sub gsql.Expr
	var k schema.Value
	var constLeft bool
	if c, ok := n.R.(*gsql.Const); ok {
		sub, k = n.L, c.Val
	} else if c, ok := n.L.(*gsql.Const); ok {
		sub, k, constLeft = n.R, c.Val, true
	} else {
		return schema.NoOrder
	}
	ord := imputeExpr(sub, s, binding)
	if ord.Kind == schema.OrderNone || !k.Type.Numeric() && k.Type != schema.TIP {
		return schema.NoOrder
	}
	switch n.Op {
	case gsql.OpAdd:
		return ord // shift preserves everything, band included
	case gsql.OpSub:
		if constLeft {
			// const - expr flips direction.
			return flipOrdering(ord)
		}
		return ord
	case gsql.OpMul:
		return scaleOrdering(ord, k, constLeft)
	case gsql.OpDiv:
		if constLeft {
			return schema.NoOrder // const/expr is antitone and non-linear
		}
		return divOrdering(ord, k)
	}
	return schema.NoOrder
}

func scaleOrdering(ord schema.Ordering, k schema.Value, _ bool) schema.Ordering {
	f := k.Float()
	switch {
	case f > 0:
		if ord.Kind == schema.OrderBandedIncreasing {
			return schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: uint64(float64(ord.Band) * f)}
		}
		return ord
	case f < 0:
		return flipOrdering(ord)
	}
	return schema.NoOrder // *0 collapses
}

func divOrdering(ord schema.Ordering, k schema.Value) schema.Ordering {
	f := k.Float()
	if f <= 0 {
		if f < 0 {
			return flipOrdering(ord.Weaken())
		}
		return schema.NoOrder
	}
	// Integer division by a positive constant: strictness is lost
	// (multiple inputs map to one bucket); bands shrink but round up.
	switch ord.Kind {
	case schema.OrderStrictIncreasing, schema.OrderIncreasing:
		return schema.Ordering{Kind: schema.OrderIncreasing}
	case schema.OrderStrictDecreasing, schema.OrderDecreasing:
		return schema.Ordering{Kind: schema.OrderDecreasing}
	case schema.OrderBandedIncreasing:
		c := uint64(f)
		if c == 0 {
			return schema.NoOrder
		}
		return schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: (ord.Band + c - 1) / c}
	}
	return schema.NoOrder
}

// ImputeOrdering exposes ordering imputation to external checkers: the
// differential-test oracle (internal/oracle) mirrors the compiler's
// ordered-group-key choice, and the harness (internal/difftest) uses it to
// decide which output columns carry a checkable order.
func ImputeOrdering(e gsql.Expr, s *schema.Schema, binding string) schema.Ordering {
	return imputeExpr(e, s, binding)
}

// hbPropagatable reports whether heartbeat bounds can be pushed through
// the expression: it must carry a usable imputed ordering, which certifies
// monotonicity in its single ordered input.
func hbPropagatable(e gsql.Expr, s *schema.Schema, binding string) bool {
	return imputeExpr(e, s, binding).Usable()
}
