package exec

import (
	"fmt"
	"sort"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// LFTAAgg is the low-level aggregation operator that runs on the capture
// path (paper §3): a small direct-mapped hash table of groups. A hash
// collision ejects the incumbent group as a partial aggregate tuple;
// because of temporal locality even a small table achieves large early
// data reduction. The HFTA super-aggregate downstream recombines partials.
type LFTAAgg struct {
	spec   AggSpec
	slots  []lftaSlot
	mask   uint64
	wm     schema.Value
	hasWM  bool
	approx bool // demoted to sketched aggregates for new slots
	stats  Counters

	keyBuf []byte // packed-key scratch; the key string is allocated only on slot fill

	// Columnar form (nil kernels / colOK false → row path only).
	colOK    bool
	predK    ColKernel
	groupKs  []ColKernel
	argKs    []ColKernel
	selBuf   []uint32
	gvalsBuf schema.Tuple
	gcolsBuf []*Col
	acolsBuf []*Col
}

type lftaSlot struct {
	used   bool
	key    string
	gvals  schema.Tuple
	ord    schema.Value
	states []funcs.AggState
}

// NewLFTAAgg builds a direct-mapped aggregation with the given table size,
// rounded up to a power of two (minimum 16).
func NewLFTAAgg(spec AggSpec, tableSize int) (*LFTAAgg, error) {
	if len(spec.GroupExprs) == 0 {
		return nil, fmt.Errorf("exec: aggregation needs at least one group-by expression")
	}
	if spec.OrdGroup >= len(spec.GroupExprs) {
		return nil, fmt.Errorf("exec: ordered group index %d out of range", spec.OrdGroup)
	}
	size := 16
	for size < tableSize {
		size <<= 1
	}
	o := &LFTAAgg{spec: spec, slots: make([]lftaSlot, size), mask: uint64(size - 1)}
	o.colOK = true
	if spec.Pred != nil {
		if o.predK = CompileColKernel(spec.Pred); o.predK == nil {
			o.colOK = false
		}
	}
	o.groupKs = make([]ColKernel, len(spec.GroupExprs))
	for i, e := range spec.GroupExprs {
		if o.groupKs[i] = CompileColKernel(e); o.groupKs[i] == nil {
			o.colOK = false
		}
	}
	o.argKs = make([]ColKernel, len(spec.Aggs))
	for i := range spec.Aggs {
		if spec.Aggs[i].Arg == nil {
			continue
		}
		if o.argKs[i] = CompileColKernel(spec.Aggs[i].Arg); o.argKs[i] == nil {
			o.colOK = false
		}
	}
	o.gvalsBuf = make(schema.Tuple, len(spec.GroupExprs))
	return o, nil
}

// Ports implements Operator.
func (o *LFTAAgg) Ports() int { return 1 }

// OutSchema implements Operator.
func (o *LFTAAgg) OutSchema() *schema.Schema { return o.spec.Out }

// Stats returns a snapshot of the operator counters.
func (o *LFTAAgg) Stats() OpStats { return o.stats.Snapshot() }

// TableSize returns the direct-mapped table size.
func (o *LFTAAgg) TableSize() int { return len(o.slots) }

// SetApprox switches the operator between exact and demoted (sketched)
// aggregation for slots filled from now on, returning how many aggregate
// slots have a demotion twin bound (0 means the call had no effect).
func (o *LFTAAgg) SetApprox(on bool) int {
	o.approx = on
	n := 0
	for i := range o.spec.Aggs {
		if o.spec.Aggs[i].DemoteSpec != nil {
			n++
		}
	}
	return n
}

// Approx reports whether the operator is in demoted (sketched) mode.
func (o *LFTAAgg) Approx() bool { return o.approx }

// DemoteBounds returns the widest (eps, delta) over the operator's
// demotable aggregate slots; ok is false when none is demotable.
func (o *LFTAAgg) DemoteBounds() (eps, delta float64, ok bool) {
	return aggsDemoteBounds(o.spec.Aggs)
}

// StateBytes estimates the aggregate-table memory held by occupied slots:
// group keys plus per-slot aggregate state.
func (o *LFTAAgg) StateBytes() int64 {
	var total int64
	for i := range o.slots {
		s := &o.slots[i]
		if !s.used {
			continue
		}
		total += int64(len(s.key)) + 32
		for _, st := range s.states {
			total += stateBytes(st)
		}
	}
	return total
}

// Push implements Operator.
func (o *LFTAAgg) Push(_ int, m Message, emit Emit) error {
	if m.IsHeartbeat() {
		o.pushHB(m.Bounds, emit)
		return nil
	}
	o.stats.In.Add(1)
	o.pushTuple(m.Tuple, emit)
	return nil
}

// PushBatch implements BatchOperator: the capture-path aggregation loop
// with the input counter amortized over the batch and all emissions
// (collision evictions, watermark flushes, heartbeats) gathered into one
// output batch.
func (o *LFTAAgg) PushBatch(_ int, b Batch, emit EmitBatch) error {
	var out Batch
	collect := func(m Message) { out = append(out, m) }
	var in uint64
	for i := range b {
		if b[i].IsHeartbeat() {
			o.pushHB(b[i].Bounds, collect)
			continue
		}
		in++
		o.pushTuple(b[i].Tuple, collect)
	}
	if in > 0 {
		o.stats.In.Add(in)
	}
	if len(out) > 0 {
		emit(out)
	}
	return nil
}

// pushHB advances the watermark from a heartbeat bound and forwards the
// transformed bound downstream.
func (o *LFTAAgg) pushHB(bounds schema.Tuple, emit Emit) {
	if o.spec.OrdGroup >= 0 {
		v, ok := o.spec.GroupExprs[o.spec.OrdGroup].Eval(bounds, o.spec.Ctx)
		if ok && !v.IsNull() {
			o.advance(v, emit)
		}
	}
	o.emitHeartbeat(emit)
}

// pushTuple runs one tuple through the direct-mapped table. The caller has
// already counted it in stats.In.
func (o *LFTAAgg) pushTuple(row schema.Tuple, emit Emit) {
	if o.spec.Pred != nil {
		pass, ok := EvalPred(o.spec.Pred, row, o.spec.Ctx)
		if !ok || !pass {
			o.stats.Dropped.Add(1)
			return
		}
	}
	gvals := make(schema.Tuple, len(o.spec.GroupExprs))
	for i, e := range o.spec.GroupExprs {
		v, ok := e.Eval(row, o.spec.Ctx)
		if !ok {
			o.stats.Dropped.Add(1)
			return
		}
		gvals[i] = v
	}
	if o.spec.OrdGroup >= 0 {
		ord := gvals[o.spec.OrdGroup]
		if ord.IsNull() {
			o.stats.Dropped.Add(1)
			return
		}
		o.advance(ord, emit)
	}
	slot := o.lookupSlot(gvals, emit)
	for i, a := range o.spec.Aggs {
		if a.Arg == nil {
			slot.states[i].Add(schema.Null)
			continue
		}
		v, ok := a.Arg.Eval(row, o.spec.Ctx)
		if !ok {
			continue
		}
		slot.states[i].Add(v)
	}
	return
}

// fnv64a is hash/fnv's 64-bit FNV-1a over b without the per-call hasher
// allocation — this runs once per tuple on the capture path. It must
// stay bit-identical to hash/fnv (offset basis and prime from the FNV
// spec) so table placement, and therefore the eviction pattern and the
// byte-exact output order, match historical behavior.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// lookupSlot finds (evicting a colliding incumbent) or fills the table
// slot for gvals. The packed key is built in a reused buffer and
// compared against the incumbent without allocating; the key string is
// allocated only when a slot is (re)filled. gvals may be a reused
// scratch tuple: the slot stores a deep Clone and its ord references
// the clone, never the caller's buffer.
func (o *LFTAAgg) lookupSlot(gvals schema.Tuple, emit Emit) *lftaSlot {
	o.keyBuf = gvals.Pack(o.keyBuf[:0])
	slot := &o.slots[fnv64a(o.keyBuf)&o.mask]
	if slot.used && slot.key != string(o.keyBuf) {
		// Collision: eject the incumbent as a partial tuple (paper §3).
		o.stats.Evicted.Add(1)
		o.emitSlot(slot, emit)
		slot.used = false
	}
	if !slot.used {
		slot.used = true
		slot.key = string(o.keyBuf)
		slot.gvals = gvals.Clone()
		if o.spec.OrdGroup >= 0 {
			slot.ord = slot.gvals[o.spec.OrdGroup]
		}
		slot.states = make([]funcs.AggState, len(o.spec.Aggs))
		for i := range o.spec.Aggs {
			slot.states[i] = o.spec.Aggs[i].NewState(o.approx)
		}
	}
	return slot
}

// Columnar reports whether the operator has a native columnar path.
func (o *LFTAAgg) Columnar() bool { return o.colOK }

// PushCols implements ColOperator: the predicate kernel narrows the
// selection vector, group and aggregate-argument kernels run
// column-wise, and only the per-row table update walks rows. All
// emissions (evictions, watermark flushes) stream through emit exactly
// as the row path does, so output is byte-identical.
func (o *LFTAAgg) PushCols(cb *ColBatch, emit Emit) error {
	sel := cb.LiveSel()
	if in := uint64(len(sel)); in > 0 {
		o.stats.In.Add(in)
	}
	if o.predK != nil {
		before := len(sel)
		o.selBuf = FilterSel(o.predK, cb, sel, o.spec.Ctx, o.selBuf[:0])
		sel = o.selBuf
		if d := before - len(sel); d > 0 {
			o.stats.Dropped.Add(uint64(d))
		}
	}
	if len(sel) == 0 {
		return nil
	}
	if o.gcolsBuf == nil {
		o.gcolsBuf = make([]*Col, len(o.groupKs))
		o.acolsBuf = make([]*Col, len(o.argKs))
	}
	gcols, acols := o.gcolsBuf, o.acolsBuf
	for i, kn := range o.groupKs {
		gcols[i] = kn(cb, sel, o.spec.Ctx)
	}
	for i, kn := range o.argKs {
		if kn != nil {
			acols[i] = kn(cb, sel, o.spec.Ctx)
		} else {
			acols[i] = nil
		}
	}
	gvals := o.gvalsBuf
	for _, si := range sel {
		i := int(si)
		for j := range gcols {
			gvals[j] = gcols[j].Value(i)
		}
		if o.spec.OrdGroup >= 0 {
			ord := gvals[o.spec.OrdGroup]
			if ord.IsNull() {
				o.stats.Dropped.Add(1)
				continue
			}
			o.advance(ord, emit)
		}
		slot := o.lookupSlot(gvals, emit)
		for k := range o.spec.Aggs {
			if acols[k] == nil {
				slot.states[k].Add(schema.Null)
				continue
			}
			slot.states[k].Add(acols[k].Value(i))
		}
	}
	return nil
}

func (o *LFTAAgg) advance(ord schema.Value, emit Emit) {
	newer := func(a, b schema.Value) bool {
		if o.spec.Desc {
			return a.Compare(b) < 0
		}
		return a.Compare(b) > 0
	}
	// Slots only close when the watermark moves; skip the table scan
	// otherwise (it would run per packet on the capture path).
	if o.hasWM && !newer(ord, o.wm) {
		return
	}
	o.wm = ord.Clone()
	o.hasWM = true
	// Flush every slot whose group is closed under the watermark.
	closed := o.closedFn()
	var flush []*lftaSlot
	for i := range o.slots {
		s := &o.slots[i]
		if s.used && closed(s.ord) {
			flush = append(flush, s)
		}
	}
	if len(flush) == 0 {
		return
	}
	sort.Slice(flush, func(i, j int) bool {
		c := flush[i].ord.Compare(flush[j].ord)
		if c != 0 {
			if o.spec.Desc {
				return c > 0
			}
			return c < 0
		}
		return flush[i].key < flush[j].key
	})
	for _, s := range flush {
		o.emitSlot(s, emit)
		s.used = false
	}
}

func (o *LFTAAgg) closedFn() func(schema.Value) bool {
	return func(ord schema.Value) bool {
		if !o.hasWM {
			return false
		}
		if o.spec.Band == 0 {
			if o.spec.Desc {
				return o.wm.Compare(ord) < 0
			}
			return o.wm.Compare(ord) > 0
		}
		band := float64(o.spec.Band)
		if o.spec.Desc {
			return o.wm.Float() < ord.Float()-band
		}
		return o.wm.Float() > ord.Float()+band
	}
}

func (o *LFTAAgg) emitSlot(s *lftaSlot, emit Emit) {
	post := make(schema.Tuple, len(s.gvals)+len(s.states))
	copy(post, s.gvals)
	for i, st := range s.states {
		post[len(s.gvals)+i] = st.Result()
	}
	outRow := make(schema.Tuple, len(o.spec.PostSelect))
	for i, e := range o.spec.PostSelect {
		v, ok := e.Eval(post, o.spec.Ctx)
		if !ok {
			o.stats.Dropped.Add(1)
			return
		}
		outRow[i] = v
	}
	o.stats.Out.Add(1)
	emit(TupleMsg(outRow))
}

func (o *LFTAAgg) emitHeartbeat(emit Emit) {
	if !o.hasWM || o.spec.OrdGroup < 0 {
		return
	}
	// Partials for any open group may still be emitted at their original
	// ordered value, so the bound downstream is watermark - band only if
	// no open slot is older. Use the oldest open ordered value when the
	// table is non-empty.
	bound := o.wm
	for i := range o.slots {
		s := &o.slots[i]
		if !s.used {
			continue
		}
		older := s.ord.Compare(bound) < 0
		if o.spec.Desc {
			older = s.ord.Compare(bound) > 0
		}
		if older {
			bound = s.ord
		}
	}
	post := make(schema.Tuple, len(o.spec.GroupExprs)+len(o.spec.Aggs))
	post[o.spec.OrdGroup] = bound
	outBounds := make(schema.Tuple, len(o.spec.PostSelect))
	for i, e := range o.spec.PostSelect {
		v, ok := e.Eval(post, o.spec.Ctx)
		if ok && !v.IsNull() {
			outBounds[i] = v
		}
	}
	emit(HeartbeatMsg(outBounds))
}

// FlushAll implements Operator.
func (o *LFTAAgg) FlushAll(emit Emit) error {
	var flush []*lftaSlot
	for i := range o.slots {
		if o.slots[i].used {
			flush = append(flush, &o.slots[i])
		}
	}
	sort.Slice(flush, func(i, j int) bool {
		c := flush[i].ord.Compare(flush[j].ord)
		if c != 0 {
			if o.spec.Desc {
				return c > 0
			}
			return c < 0
		}
		return flush[i].key < flush[j].key
	})
	for _, s := range flush {
		o.emitSlot(s, emit)
		s.used = false
	}
	return nil
}
