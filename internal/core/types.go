// Package core is the Gigascope query compiler — the paper's primary
// contribution. It performs semantic analysis of GSQL queries, imputes
// attribute ordering properties through operators (§2.1), splits each query
// into low-level LFTA and high-level HFTA nodes (§3), and pushes selection
// and snap-length hints into the NIC as a BPF-style pre-filter.
//
// Where the original system generated C/C++ code, this implementation
// compiles queries to trees of closures over the exec operators; the plan
// shape (node split, pushdown, ordering reasoning) is faithful.
package core

import (
	"fmt"

	"gigascope/internal/exec"
	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/nic"
	"gigascope/internal/plan"
	"gigascope/internal/schema"
)

// Level distinguishes low-level from high-level query nodes (paper §3:
// "breaking queries into high level query nodes (HFTAs) and low level
// query nodes (LFTAs)"). LFTAs accept only Protocol input and run on the
// capture path (linked into the RTS, possibly on the NIC); HFTAs accept
// only Stream input and run as separate tasks.
type Level uint8

const (
	LevelLFTA Level = iota + 1
	LevelHFTA
	// LevelSource marks RTS-internal source nodes that originate tuples
	// from the system itself rather than from a packet interface — e.g.
	// the sysmon samplers publishing SYSMON.* telemetry streams.
	LevelSource
)

func (l Level) String() string {
	switch l {
	case LevelLFTA:
		return "LFTA"
	case LevelSource:
		return "SOURCE"
	}
	return "HFTA"
}

// OpKind classifies the operator a node executes.
type OpKind uint8

const (
	OpSelProj OpKind = iota + 1
	OpAgg
	OpJoin
	OpMerge
)

func (k OpKind) String() string {
	switch k {
	case OpSelProj:
		return "select/project"
	case OpAgg:
		return "group-by/aggregate"
	case OpJoin:
		return "join"
	case OpMerge:
		return "merge"
	}
	return "?"
}

// SourceRef is one resolved query input.
type SourceRef struct {
	Name       string // protocol or stream name
	Interface  string // packet interface for protocol sources ("" = default)
	Binding    string // alias used to qualify columns
	Schema     *schema.Schema
	IsProtocol bool
}

func (s SourceRef) String() string {
	if s.IsProtocol {
		iface := s.Interface
		if iface == "" {
			iface = "<default>"
		}
		return iface + "." + s.Name
	}
	return s.Name
}

// Node is one compiled query node. A GSQL query compiles to one or more
// nodes: the output node carries the query's name; synthetic nodes carry
// mangled names (the paper notes "the LFTA query will have a mangled
// name", visible to applications like any other stream).
type Node struct {
	Name    string
	Level   Level
	Kind    OpKind
	Sources []SourceRef
	Out     *schema.Schema
	// Query is the (possibly rewritten) single-operator GSQL query this
	// node executes; shown by EXPLAIN.
	Query *gsql.Query

	// NICProgram is the BPF pre-filter + snap length pushed into the NIC
	// when the interface supports it (LFTA nodes over protocol sources).
	NICProgram *nic.Program
	// SnapLen is the capture length the whole query tree needs from this
	// protocol source; 0 means full packets.
	SnapLen int

	// Instantiation templates (stateless, shared across instances).
	handles   []exec.HandleSpec
	params    map[string]schema.Type
	selPred   exec.Expr
	selOuts   []exec.Expr
	selHB     []bool
	aggSpec   *exec.AggSpec // group/agg template (state built per instance)
	lftaTable int           // direct-mapped table size for LFTA aggregation
	joinSpec  *exec.JoinSpec
	mergeCols []int
	// needCols marks which protocol columns the node extracts (LFTA over
	// a protocol source); indexes into the source schema.
	needCols []int
	// predTerms counts the node's WHERE conjuncts; the sharing experiments
	// model per-packet predicate evaluation cost from it.
	predTerms int
	// sharedBy lists the other queries whose structurally identical LFTAs
	// were folded into this node by the sharing pass (paper §5). Written
	// during script compilation, before the node is installed.
	sharedBy []string
}

// Params returns the declared query parameter types.
func (n *Node) Params() map[string]schema.Type { return n.params }

// PredConjuncts returns the number of AND-ed terms in the node's WHERE
// predicate (0 = unconditional).
func (n *Node) PredConjuncts() int { return n.predTerms }

// SharedBy returns the names of the other queries this node also feeds
// after shared-LFTA elimination (empty for unshared nodes).
func (n *Node) SharedBy() []string { return append([]string(nil), n.sharedBy...) }

// NeedCols returns the protocol columns this LFTA extracts.
func (n *Node) NeedCols() []int { return append([]int(nil), n.needCols...) }

// MergeColumns returns the per-input merge column positions of a merge
// node (nil for other kinds). Exposed for the differential-test harness.
func (n *Node) MergeColumns() []int { return append([]int(nil), n.mergeCols...) }

// AggOrdGroup describes the flush-driving ordered group key of an
// aggregation node: its index into the GROUP BY list, the band tolerance,
// and whether it decreases. ok is false for non-aggregation nodes and for
// aggregations without an ordered key (manual-flush only).
func (n *Node) AggOrdGroup() (idx int, band uint64, desc bool, ok bool) {
	if n.aggSpec == nil || n.aggSpec.OrdGroup < 0 {
		return 0, 0, false, false
	}
	return n.aggSpec.OrdGroup, n.aggSpec.Band, n.aggSpec.Desc, true
}

// JoinWindow returns the join's ordering window: a left tuple at ordered
// value t pairs with right tuples in [t-low, t+high]. ok is false for
// non-join nodes.
func (n *Node) JoinWindow() (low, high int64, ok bool) {
	if n.joinSpec == nil {
		return 0, 0, false
	}
	return n.joinSpec.LowSlack, n.joinSpec.HighSlack, true
}

// CompiledQuery is the full compilation result of one GSQL query: its
// nodes in dependency order (LFTAs first; the last node publishes the
// query's name).
type CompiledQuery struct {
	Name  string
	Nodes []*Node
	// Plan is the rewritten logical plan the nodes were emitted from;
	// EXPLAIN renders it. Shared LFTAs owned by earlier queries appear in
	// the plan (as shared boundaries) but not in Nodes.
	Plan *plan.QueryPlan
}

// Output returns the node publishing the query's result stream.
func (c *CompiledQuery) Output() *Node { return c.Nodes[len(c.Nodes)-1] }

// LFTAs returns the low-level nodes.
func (c *CompiledQuery) LFTAs() []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.Level == LevelLFTA {
			out = append(out, n)
		}
	}
	return out
}

// Options tunes compilation.
type Options struct {
	// Registry supplies scalar and aggregate functions; nil uses
	// funcs.Global.
	Registry *funcs.Registry
	// LFTATableSize is the direct-mapped aggregation table size for LFTA
	// nodes (paper §3); 0 uses the default of 4096 slots.
	LFTATableSize int
	// DisableSplit forces whole queries into single HFTA nodes reading
	// raw protocol streams through a pass-through LFTA. Used by the E4
	// ablation benchmark comparing split vs monolithic execution.
	DisableSplit bool
	// DisableSharing turns off the cross-query rewrite passes of script
	// compilation (shared-LFTA elimination and prefilter extraction,
	// paper §5); each query then instantiates its own nodes. Per-query
	// Compile never shares regardless.
	DisableSharing bool
	// SketchEps / SketchDelta override the registered default error
	// parameters of sketch aggregates (approx_distinct, approx_quantile,
	// heavy_hitters, cm_count) for call sites that do not spell them out.
	// Explicit literal arguments always win. Zero means no override; values
	// must lie in (0,1) and are validated at compile time.
	SketchEps   float64
	SketchDelta float64
}

func (o *Options) registry() *funcs.Registry {
	if o == nil || o.Registry == nil {
		return funcs.Global
	}
	return o.Registry
}

func (o *Options) tableSize() int {
	if o == nil || o.LFTATableSize == 0 {
		return 4096
	}
	return o.LFTATableSize
}

func (o *Options) disableSplit() bool { return o != nil && o.DisableSplit }

func (o *Options) disableSharing() bool { return o != nil && o.DisableSharing }

// sketchOverrides renders the sketch parameter overrides in the form
// funcs.ResolveParams consumes.
func (o *Options) sketchOverrides() map[string]schema.Value {
	if o == nil || (o.SketchEps == 0 && o.SketchDelta == 0) {
		return nil
	}
	m := make(map[string]schema.Value, 2)
	if o.SketchEps != 0 {
		m["eps"] = schema.MakeFloat(o.SketchEps)
	}
	if o.SketchDelta != 0 {
		m["delta"] = schema.MakeFloat(o.SketchDelta)
	}
	return m
}

// Error wraps a compilation error with the query name.
type Error struct {
	Query string
	Err   error
}

func (e *Error) Error() string {
	if e.Query == "" {
		return fmt.Sprintf("core: %v", e.Err)
	}
	return fmt.Sprintf("core: query %s: %v", e.Query, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }
