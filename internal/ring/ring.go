// Package ring provides the single-producer/single-consumer lock-free
// ring buffer used on the hottest hops of the capture path
// (capture→shard workers and shard→reunify; see "Scaling Ordered Stream
// Processing on Shared-Memory Multicores", PAPERS.md). A ring crossing
// in the common case is one plain slot write plus one atomic store — no
// mutex, no channel, no goroutine wakeup — while the empty/full edges
// fall back to parking on a tiny notification channel so an idle ring
// costs no CPU (the container this runs in may have a single core;
// unbounded spinning would starve the very goroutine being waited on).
//
// Memory-ordering argument (DESIGN.md has the long form): Go's
// sync/atomic operations are sequentially consistent, so the producer's
// plain write of buf[tail&mask] happens-before its tail.Store(tail+1),
// and a consumer that observes the new tail via head-side Load also
// observes the slot contents. Symmetrically the consumer clears the
// slot before head.Store(head+1), so the producer never overwrites a
// slot still being read. Exactly one goroutine may push (and close) and
// exactly one may pop at any time; ownership may transfer between
// goroutines only through another happens-before edge (a mutex, a
// channel, or WaitGroup), which is how the capture lock hands the
// producer role across Inject callers.
package ring

import (
	"runtime"
	"sync/atomic"
)

// cacheLinePad separates the producer- and consumer-owned indices so
// head/tail updates do not false-share one cache line.
type cacheLinePad [64]byte

// Waker is a one-token wakeup latch: Wake is cheap and idempotent while
// a token is pending, Chan exposes the token for select-based waits.
// Several rings may share one consumer-side Waker (the reunify node
// waits on all its shard rings with a single latch).
type Waker struct {
	ch chan struct{}
}

// NewWaker builds a latch with one buffered token.
func NewWaker() *Waker { return &Waker{ch: make(chan struct{}, 1)} }

// Wake deposits the token if none is pending.
func (w *Waker) Wake() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// Chan returns the token channel for select-based waits.
func (w *Waker) Chan() <-chan struct{} { return w.ch }

// Clear removes a stale token so a fresh wait observes only wakeups that
// happen after the caller's re-check of ring state.
func (w *Waker) Clear() {
	select {
	case <-w.ch:
	default:
	}
}

// SPSC is a bounded single-producer/single-consumer ring. The zero value
// is not usable; construct with New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next slot to pop; consumer-owned
	_    cacheLinePad
	tail atomic.Uint64 // next slot to push; producer-owned
	_    cacheLinePad

	closed atomic.Bool

	// cw wakes the consumer on empty→non-empty and on close; pw wakes
	// the producer on full→non-full. cw may be shared across rings.
	cw *Waker
	pw *Waker
}

// New builds a ring with capacity rounded up to a power of two (minimum
// 2). consumerWaker may be nil, in which case the ring allocates its
// own; pass a shared Waker when one consumer drains several rings.
func New[T any](capacity int, consumerWaker *Waker) *SPSC[T] {
	size := 2
	for size < capacity {
		size <<= 1
	}
	if consumerWaker == nil {
		consumerWaker = NewWaker()
	}
	return &SPSC[T]{
		buf:  make([]T, size),
		mask: uint64(size - 1),
		cw:   consumerWaker,
		pw:   NewWaker(),
	}
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered entries (racy snapshot; exact when
// called from either endpoint goroutine).
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush appends v and reports success; false means the ring is full.
// Producer goroutine only.
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	// Empty→non-empty wake. head must be re-loaded AFTER the tail store:
	// a consumer that re-polled (post-Clear) between our earlier head load
	// and the store saw the old tail and is about to park. Sequential
	// consistency of the atomics forces one of two outcomes: either the
	// consumer's tail load sees t+1 (it pops, no park), or our head load
	// here sees its head == t (it found nothing, so we wake). Deciding
	// from the pre-store head loses exactly that second case.
	if r.head.Load() == t {
		r.cw.Wake()
	}
	return true
}

// Push blocks until v is appended (backpressure). Producer goroutine
// only; must not be called after Close.
func (r *SPSC[T]) Push(v T) {
	for i := 0; ; i++ {
		if r.TryPush(v) {
			return
		}
		if i < 4 {
			// Brief politeness window: on a loaded single-core box the
			// consumer needs the CPU more than we need to poll.
			runtime.Gosched()
			continue
		}
		// Park until the consumer frees a slot. Re-check after clearing
		// the stale token: the pop that matters may have happened between
		// our failed TryPush and the Clear.
		r.pw.Clear()
		if r.TryPush(v) {
			return
		}
		<-r.pw.Chan()
	}
}

// TryPop removes the oldest entry. Consumer goroutine only.
func (r *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the reference; the slot may pin a large batch
	r.head.Store(h + 1)
	// Full→non-full wake, mirroring TryPush: tail must be re-loaded
	// AFTER the head store so a producer that re-polled against the old
	// head (and is about to park on a full ring) is either unblocked by
	// seeing h+1 or caught here by its tail satisfying the full test
	// against the head we just retired.
	if r.tail.Load()-h == uint64(len(r.buf)) {
		r.pw.Wake()
	}
	return v, true
}

// Pop blocks until an entry is available or the ring is closed and
// drained; ok is false only in the latter case. Consumer goroutine only.
func (r *SPSC[T]) Pop() (T, bool) {
	for i := 0; ; i++ {
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.Done() {
			var zero T
			return zero, false
		}
		if i < 4 {
			runtime.Gosched()
			continue
		}
		r.cw.Clear()
		if v, ok := r.TryPop(); ok {
			return v, true
		}
		if r.Done() {
			var zero T
			return zero, false
		}
		<-r.cw.Chan()
	}
}

// Close marks the stream ended. Producer goroutine only (or whoever has
// taken over the producer role through a happens-before edge); push
// nothing afterwards. The consumer drains the remaining entries and
// then observes Done.
func (r *SPSC[T]) Close() {
	r.closed.Store(true)
	r.cw.Wake()
}

// Closed reports whether Close was called (entries may remain buffered).
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// Done reports end-of-stream: closed and fully drained. The closed flag
// is checked first so a true result is stable — no push can follow a
// Close, so "closed and empty" can never revert.
func (r *SPSC[T]) Done() bool {
	if !r.closed.Load() {
		return false
	}
	return r.head.Load() == r.tail.Load()
}
