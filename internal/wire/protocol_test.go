package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// feedSchema is the stream shape the wire tests ship across the hop:
// an ordered time column, an IP, and a string — enough to exercise the
// ordering and interp encoding paths.
func feedSchema() *schema.Schema {
	return &schema.Schema{
		Name: "feed",
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "srcIP", Type: schema.TIP},
			{Name: "note", Type: schema.TString},
		},
	}
}

func protoSchema() *schema.Schema {
	return &schema.Schema{
		Name: "eth0.TCP",
		Kind: schema.KindProtocol,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint,
				Ordering: schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: 2},
				Interp:   "pkt_time"},
			{Name: "seqNo", Type: schema.TUint,
				Ordering: schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"srcIP", "destIP"}},
				Interp:   "tcp_seq"},
			{Name: "srcIP", Type: schema.TIP, Interp: "ip_src"},
			{Name: "destIP", Type: schema.TIP, Interp: "ip_dst"},
		},
	}
}

func feedTuple(ts uint64, ip uint32, note string) schema.Tuple {
	return schema.Tuple{schema.MakeUint(ts), schema.MakeIP(ip), schema.MakeStr(note)}
}

func TestHelloRoundTrip(t *testing.T) {
	h := helloFrame{Version: Version, Instance: 0xdeadbeef, Seq: 12345, Stream: "feed"}
	got, err := decodeHello(encodeHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round trip: got %+v want %+v", got, h)
	}
}

func TestSchemaFrameRoundTrip(t *testing.T) {
	for _, sc := range []*schema.Schema{feedSchema(), protoSchema()} {
		f := schemaFrame{
			Instance:    7,
			Seq:         99,
			Clock:       1_000_000,
			Fingerprint: SchemaFingerprint(sc),
			Schema:      sc,
		}
		got, err := decodeSchemaFrame(encodeSchemaFrame(nil, f))
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if got.Instance != f.Instance || got.Seq != f.Seq || got.Clock != f.Clock || got.Fingerprint != f.Fingerprint {
			t.Fatalf("%s: header fields: got %+v", sc.Name, got)
		}
		// The schema's registered name is deliberately not carried.
		if got.Schema.Name != "" {
			t.Fatalf("%s: schema name should not cross the wire, got %q", sc.Name, got.Schema.Name)
		}
		if got.Schema.Kind != sc.Kind || !reflect.DeepEqual(got.Schema.Cols, sc.Cols) {
			t.Fatalf("%s: columns round trip:\n got %+v\nwant %+v", sc.Name, got.Schema.Cols, sc.Cols)
		}
		if SchemaFingerprint(got.Schema) != f.Fingerprint {
			t.Fatalf("%s: fingerprint changed across round trip", sc.Name)
		}
	}
}

func TestSchemaFingerprintSemantics(t *testing.T) {
	a, b := feedSchema(), feedSchema()
	b.Name = "renamed_import" // labeling must not matter
	if SchemaFingerprint(a) != SchemaFingerprint(b) {
		t.Fatal("fingerprint depends on the stream name")
	}
	b.Cols[1].Name = "dstIP" // shape must matter
	if SchemaFingerprint(a) == SchemaFingerprint(b) {
		t.Fatal("fingerprint ignores a column rename")
	}
	c := feedSchema()
	c.Cols[0].Ordering.Kind = schema.OrderNone // ordering drives plans
	if SchemaFingerprint(a) == SchemaFingerprint(c) {
		t.Fatal("fingerprint ignores ordering change")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := exec.Batch{
		exec.TupleMsg(feedTuple(1, 0x0a000001, "a")),
		exec.HeartbeatMsg(feedTuple(2, 0, "")),
		exec.TupleMsg(feedTuple(3, 0x0a000002, "bb")),
	}
	clock, out, nT, err := decodeBatch(encodeBatch(nil, 42, in))
	if err != nil {
		t.Fatal(err)
	}
	if clock != 42 || nT != 2 || len(out) != len(in) {
		t.Fatalf("clock=%d nT=%d len=%d", clock, nT, len(out))
	}
	for i := range in {
		if in[i].IsHeartbeat() != out[i].IsHeartbeat() {
			t.Fatalf("message %d kind flipped", i)
		}
		want, got := in[i].Tuple, out[i].Tuple
		if in[i].IsHeartbeat() {
			want, got = in[i].Bounds, out[i].Bounds
		}
		if len(want) != len(got) {
			t.Fatalf("message %d width: %d vs %d", i, len(got), len(want))
		}
		for j := range want {
			if !want[j].Equal(got[j]) {
				t.Fatalf("message %d field %d: got %v want %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	clock, b, nT, err := decodeBatch(encodeBatch(nil, 7, nil))
	if err != nil || clock != 7 || nT != 0 || len(b) != 0 {
		t.Fatalf("empty batch: clock=%d b=%v nT=%d err=%v", clock, b, nT, err)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	clock, seq, err := decodeKeepalive(encodeKeepalive(nil, 123, 456))
	if err != nil || clock != 123 || seq != 456 {
		t.Fatalf("keepalive: clock=%d seq=%d err=%v", clock, seq, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// beginFrame/endFrame (the in-place single-Write path) must produce
	// the same bytes as appendFrame, and readFrame must invert both.
	payload := []byte("hello wire")
	a := appendFrame(nil, frameBatch, payload)
	b := endFrame(append(beginFrame(make([]byte, 0, 64), frameBatch), payload...))
	if !bytes.Equal(a, b) {
		t.Fatalf("framing paths disagree:\n%x\n%x", a, b)
	}
	var buf []byte
	typ, got, err := readFrame(bytes.NewReader(a), DefaultMaxFrame, &buf)
	if err != nil || typ != frameBatch || !bytes.Equal(got, payload) {
		t.Fatalf("readFrame: typ=%q payload=%q err=%v", typ, got, err)
	}
}

func TestReadFrameCapsLength(t *testing.T) {
	// A length prefix over the cap is rejected before any allocation —
	// the frame claims 1 GiB but only 5 header bytes exist, and the
	// decoder must not try to make the slice.
	hdr := []byte{frameBatch, 0x40, 0x00, 0x00, 0x00} // 1 GiB
	_, _, err := readFrame(bytes.NewReader(hdr), DefaultMaxFrame, new([]byte))
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("got %v, want ErrFrameTooBig", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("ErrFrameTooBig is not a *DecodeError: %T", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := appendFrame(nil, frameKeepalive, encodeKeepalive(nil, 1, 2))
	for cut := 0; cut < len(full); cut++ {
		_, _, err := readFrame(bytes.NewReader(full[:cut]), DefaultMaxFrame, new([]byte))
		if err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

// TestDecodeRejectsOversizedClaims pins the over-allocation guards: a
// payload whose counts claim more content than its bytes could hold must
// fail with a typed *DecodeError before any proportional allocation.
func TestDecodeRejectsOversizedClaims(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"batch count", func() error {
			p := encodeBatch(nil, 0, nil)
			p[8], p[9], p[10], p[11] = 0xff, 0xff, 0xff, 0xff // count=4B msgs, payload 0
			_, _, _, err := decodeBatch(p)
			return err
		}},
		{"schema columns", func() error {
			p := []byte{byte(schema.KindStream), 0xff, 0xff} // 65535 cols, no bytes
			_, _, err := decodeSchema(p)
			return err
		}},
		{"hello name", func() error {
			h := encodeHello(nil, helloFrame{Version: Version, Stream: "feed"})
			h[17], h[18] = 0xff, 0xff // name length 65535
			_, err := decodeHello(h)
			return err
		}},
		{"unknown message kind", func() error {
			p := encodeBatch(nil, 0, exec.Batch{exec.TupleMsg(feedTuple(1, 2, "x"))})
			p[12] = 'Z'
			_, _, _, err := decodeBatch(p)
			return err
		}},
		{"trailing garbage", func() error {
			p := append(encodeBatch(nil, 0, nil), 0xaa)
			_, _, _, err := decodeBatch(p)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s: decoded", tc.name)
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: error %v is %T, want *DecodeError", tc.name, err, err)
		}
	}
}
