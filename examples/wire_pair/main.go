// wire_pair demonstrates the inter-RTS wire transport: the paper's
// many-capture-hosts architecture split across two OS processes. A
// server process runs the capture-side selection (the LFTA tier),
// exports its output stream over a unix socket with ServeWire, and
// injects deterministic seeded traffic; a client process imports the
// stream with ConnectWire and completes the computation with an
// ordinary GSQL aggregation reading FROM the imported name.
//
// Modes:
//
//	go run ./examples/wire_pair                 # -role both: spawns server+client
//	go run ./examples/wire_pair -role single    # same pipeline in one process
//	go run ./examples/wire_pair -role server -sock /tmp/gs.sock
//	go run ./examples/wire_pair -role client -sock /tmp/gs.sock
//
// The aggregate rows printed by -role both are byte-identical to
// -role single: the transport forwards each published batch as exactly
// one frame and the importing side republishes it as exactly one batch,
// so downstream operators see the same delivery sequence either way.
// The CI smoke step diffs the two.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"gigascope"
)

// feedQuery is the capture-side half: a selection LFTA whose output
// stream ("feed") the server process exports.
const feedQuery = `
	DEFINE { query_name feed; }
	SELECT time, srcIP, destIP, destPort FROM eth0.TCP
	WHERE ipversion = 4 and protocol = 6`

// countsQuery is the consumer-side half: an aggregation over the feed,
// running in the client process against the imported stream.
const countsQuery = `
	DEFINE { query_name counts; }
	SELECT time, destPort, count(*) FROM feed
	GROUP BY time, destPort`

const trafficSeconds = 3

func main() {
	role := flag.String("role", "both", "single | server | client | both")
	sock := flag.String("sock", "", "unix socket path (server/client roles)")
	flag.Parse()
	switch *role {
	case "single":
		runSingle()
	case "server":
		runServer(*sock)
	case "client":
		runClient(*sock)
	case "both":
		runBoth()
	default:
		log.Fatalf("wire_pair: unknown -role %q", *role)
	}
}

// inject drives the same seeded traffic in every mode: determinism is
// what lets the CI step demand byte-identical output across process
// splits.
func inject(sys *gigascope.System) {
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 42,
		Classes: []gigascope.TrafficClass{
			{Name: "web", RateMbps: 20, PktBytes: 1000, DstPort: 80, Proto: gigascope.ProtoTCP},
			{Name: "tls", RateMbps: 10, PktBytes: 800, DstPort: 443, Proto: gigascope.ProtoTCP},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	horizon := uint64(trafficSeconds * 1e6)
	step := horizon / 50
	for usec := step; usec <= horizon; usec += step {
		// Poll-window injection: each step's packets cross the pipeline
		// as one batch per LFTA (and one wire frame per batch), instead
		// of a per-packet window flush flooding the rings.
		var window []*gigascope.Packet
		gen.Until(usec, func(p *gigascope.Packet) { window = append(window, p) })
		sys.InjectBatch("eth0", window)
		sys.AdvanceClock(usec)
	}
}

// printCounts drains the counts stream to stdout — the bytes the CI
// step compares across modes.
func printCounts(sub *gigascope.Subscription) int {
	rows := 0
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			rows++
			fmt.Printf("counts: %s\n", m.Tuple)
		}
	}
	return rows
}

func runSingle() {
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddQuery(feedQuery, nil)
	sys.MustAddQuery(countsQuery, nil)
	sub, err := sys.Subscribe("counts", 8192)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	inject(sys)
	sys.Stop()
	rows := printCounts(sub)
	fmt.Fprintf(os.Stderr, "wire_pair(single): %d aggregate rows\n", rows)
}

func runServer(sock string) {
	if sock == "" {
		log.Fatal("wire_pair: -role server requires -sock")
	}
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddQuery(feedQuery, nil)
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	// A deep send queue: the unpaced inject loop outruns the socket
	// writer, and a fault-free run must not shed (byte-identity).
	srv, err := sys.ServeWire("unix", sock, gigascope.WireServerConfig{RingBatches: 8192})
	if err != nil {
		log.Fatal(err)
	}
	// Traffic only flows once the subscriber is on: a wire subscription
	// (like a local one) sees batches published after it attaches.
	for i := 0; srv.Conns() == 0; i++ {
		if i > 1000 {
			log.Fatal("wire_pair: no subscriber within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	inject(sys)
	sys.Stop()         // closes the feed stream; the server fins the subscriber
	srv.Drain(10 * time.Second) // let the fin reach the peer before tearing down
	srv.Close()
	fmt.Fprintln(os.Stderr, "wire_pair(server): done")
}

func runClient(sock string) {
	if sock == "" {
		log.Fatal("wire_pair: -role client requires -sock")
	}
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}
	// Retry the first dial: the server process may still be starting.
	var cl *gigascope.WireClient
	for i := 0; ; i++ {
		cl, err = sys.ConnectWire(gigascope.WireClientConfig{
			Network: "unix", Addr: sock, Stream: "feed",
		})
		if err == nil {
			break
		}
		if i > 1000 {
			log.Fatalf("wire_pair: connect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sys.MustAddQuery(countsQuery, nil)
	sub, err := sys.Subscribe("counts", 8192)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	// The server's Stop ends the remote stream (fin): the import closes,
	// the aggregation flushes, and the subscription drains dry.
	<-cl.Done()
	rows := printCounts(sub)
	sys.Stop()
	cl.Close()
	fmt.Fprintf(os.Stderr, "wire_pair(client): %d aggregate rows\n", rows)
}

func runBoth() {
	dir, err := os.MkdirTemp("", "gsw")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "gs.sock")
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	srv := exec.Command(self, "-role", "server", "-sock", sock)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	cli := exec.Command(self, "-role", "client", "-sock", sock)
	cli.Stdout = os.Stdout
	cli.Stderr = os.Stderr
	if err := cli.Run(); err != nil {
		log.Fatalf("wire_pair: client: %v", err)
	}
	if err := srv.Wait(); err != nil {
		log.Fatalf("wire_pair: server: %v", err)
	}
}
