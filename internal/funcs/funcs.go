// Package funcs is the Gigascope function registry (paper §2.2): scalar and
// aggregate functions available to GSQL queries. Functions carry a cost
// class (whether they are cheap enough to run in an LFTA on the capture
// path), may be partial (no result means the tuple is discarded, acting as
// a foreign-key join), and may take pass-by-handle parameters — literal
// arguments that need expensive preprocessing once per query instantiation
// (compiling a regular expression, loading a prefix table).
package funcs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gigascope/internal/schema"
)

// Cost classifies a function for the LFTA/HFTA split.
type Cost uint8

const (
	// CostCheap functions may run inside an LFTA on the capture path.
	CostCheap Cost = iota
	// CostExpensive functions are forced into an HFTA (paper §4: "regular
	// expression finding is too expensive for an LFTA").
	CostExpensive
)

func (c Cost) String() string {
	if c == CostCheap {
		return "cheap"
	}
	return "expensive"
}

// Handle is a preprocessed pass-by-handle parameter (compiled regex, loaded
// LPM table). Handles are built once at query instantiation.
type Handle any

// Scalar describes one scalar function.
type Scalar struct {
	Name string
	// Args are the declared parameter types. A TNull entry accepts any
	// type. Numeric arguments accept any numeric type and are coerced.
	Args []schema.Type
	Ret  schema.Type
	Cost Cost
	// Partial marks functions that may produce no result; the tuple being
	// processed is then discarded (paper §2.2).
	Partial bool
	// HandleArg, if >= 0, is the index of the pass-by-handle parameter.
	// That argument must be a literal or query parameter; MakeHandle is
	// invoked on it once at instantiation.
	HandleArg  int
	MakeHandle func(v schema.Value) (Handle, error)
	// Eval computes the function. handle is nil unless HandleArg >= 0,
	// in which case the handle replaces args[HandleArg] (which is passed
	// as NULL). Returning false discards the tuple (partial functions).
	Eval func(args []schema.Value, handle Handle) (schema.Value, bool)
}

// FinalKind selects how an HFTA recombines super-aggregated sub-aggregates
// into the user-visible result of a split aggregate.
type FinalKind uint8

const (
	// FinalIdentity: the result is the first (only) super-aggregate.
	FinalIdentity FinalKind = iota
	// FinalRatio: the result is sub0/sub1 as a float (avg = sum/count).
	FinalRatio
	// FinalScalarCall: the result is Finalizer(super0) — a scalar function
	// applied to the single recombined super-aggregate. This is how opaque
	// sketch state crossing the LFTA→HFTA boundary is turned into the
	// user-visible value (estimate, quantile, top-k rendering).
	FinalScalarCall
)

// AggParam declares one literal parameter of an aggregate beyond its value
// argument — e.g. the quantile q, the sketch error eps, or the heavy-hitter
// k. Parameters are bound at compile time from constant arguments; they are
// not per-tuple expressions.
type AggParam struct {
	Name string
	// Type the literal must have; TNull accepts any type, and numeric
	// declarations accept any numeric literal (coerced).
	Type schema.Type
	// Required parameters must be given at the call site and must precede
	// all optional ones. Optional parameters fall back to Default (unless
	// the compiler supplies an override, e.g. from -sketch-eps).
	Required bool
	Default  schema.Value
	// Check validates the bound value; its error is reported at the call
	// site with the argument's source position.
	Check func(v schema.Value) error
}

// Aggregate describes one aggregate function and its LFTA/HFTA
// decomposition into sub- and super-aggregates (paper §3: "similar to
// subaggregates and superaggregates used in data cube computation").
type Aggregate struct {
	Name     string
	TakesArg bool // false: count(*)
	// AllowAnyArg lifts the numeric-argument requirement: the aggregate
	// accepts a value of any type (distinct counts, heavy hitters, and the
	// opaque TString sketch partials consumed by the union aggregates).
	AllowAnyArg bool
	// Ret maps the argument type to the result type.
	Ret func(arg schema.Type) schema.Type
	// New creates fresh accumulator state for one group. Aggregates with
	// Params use NewP instead and may leave New nil.
	New func(arg schema.Type) AggState
	// NewP creates state for a parameterized aggregate; params has one
	// resolved value per declared Params entry.
	NewP func(arg schema.Type, params []schema.Value) AggState
	// Params declares literal parameters beyond the value argument
	// (resolved by ResolveParams at compile time).
	Params []AggParam
	// Subs names the LFTA-side aggregates over the same argument, and
	// Supers the HFTA-side aggregates applied to each sub output.
	Subs   []string
	Supers []string
	Final  FinalKind
	// Finalizer names the scalar applied to super0 when Final is
	// FinalScalarCall.
	Finalizer string
	// Demote names this aggregate's approximate twin, the sketched form
	// the overload controller may switch to under pressure. The twin must
	// produce the same result type, and its parameter list must extend this
	// aggregate's as a prefix (missing entries fill from defaults).
	Demote string
}

// NewState builds accumulator state for one call site, routing through NewP
// when the aggregate is parameterized.
func (a *Aggregate) NewState(arg schema.Type, params []schema.Value) AggState {
	if a.NewP != nil {
		return a.NewP(arg, params)
	}
	return a.New(arg)
}

// ResolveParams binds the literal arguments given at a call site against
// the declared parameter list: given values bind positionally, then
// overrides by parameter name (compiler-wide defaults like -sketch-eps),
// then declared defaults. On error the second result is the index into
// `given` of the offending argument, or -1 when the problem is not tied to
// one (e.g. a missing required parameter).
func (a *Aggregate) ResolveParams(given []schema.Value, overrides map[string]schema.Value) ([]schema.Value, int, error) {
	if len(given) > len(a.Params) {
		return nil, len(a.Params), fmt.Errorf("funcs: %s takes at most %d parameters after its argument, got %d",
			a.Name, len(a.Params), len(given))
	}
	out := make([]schema.Value, len(a.Params))
	for i, p := range a.Params {
		var v schema.Value
		src := -1
		switch {
		case i < len(given):
			v = given[i]
			src = i
		case overrides[strings.ToLower(p.Name)].Type != schema.TNull:
			v = overrides[strings.ToLower(p.Name)]
		case p.Required:
			return nil, -1, fmt.Errorf("funcs: %s requires parameter %s (argument %d)", a.Name, p.Name, i+2)
		default:
			v = p.Default
		}
		coerced, err := coerceParam(p, v)
		if err != nil {
			return nil, src, fmt.Errorf("funcs: %s parameter %s: %v", a.Name, p.Name, err)
		}
		if p.Check != nil {
			if err := p.Check(coerced); err != nil {
				return nil, src, fmt.Errorf("funcs: %s parameter %s: %v", a.Name, p.Name, err)
			}
		}
		out[i] = coerced
	}
	return out, -1, nil
}

// coerceParam normalizes a literal to the declared parameter type so that
// params compare and serialize consistently (e.g. `0.5` and `5e-1`, or an
// integer literal where a float is declared).
func coerceParam(p AggParam, v schema.Value) (schema.Value, error) {
	switch p.Type {
	case schema.TNull:
		return v, nil
	case schema.TFloat:
		if !v.Type.Numeric() {
			return schema.Null, fmt.Errorf("want a numeric literal, got %s", v.Type)
		}
		return schema.MakeFloat(v.Float()), nil
	case schema.TUint:
		switch v.Type {
		case schema.TUint:
			return v, nil
		case schema.TInt:
			if v.Int() < 0 {
				return schema.Null, fmt.Errorf("want a non-negative integer, got %s", v.String())
			}
			return schema.MakeUint(uint64(v.Int())), nil
		}
		return schema.Null, fmt.Errorf("want an integer literal, got %s", v.Type)
	default:
		if v.Type != p.Type {
			return schema.Null, fmt.Errorf("want %s, got %s", p.Type, v.Type)
		}
		return v, nil
	}
}

// AggState accumulates one group's aggregate.
type AggState interface {
	// Add folds one input value in. For count(*), v is NULL.
	Add(v schema.Value)
	// Result returns the current aggregate value.
	Result() schema.Value
}

// Registry maps function names to implementations. The global registry is
// populated with the built-ins at init; users register their own functions
// the same way analysts did in the paper ("adding the code for the function
// to the function library, and registering the function prototype in the
// function registry").
type Registry struct {
	mu      sync.RWMutex
	scalars map[string]*Scalar
	aggs    map[string]*Aggregate
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		scalars: make(map[string]*Scalar),
		aggs:    make(map[string]*Aggregate),
	}
}

// Global is the default registry, pre-populated with built-ins.
var Global = NewRegistry()

// RegisterScalar adds a scalar function.
func (r *Registry) RegisterScalar(f *Scalar) error {
	if f.Name == "" || f.Eval == nil {
		return fmt.Errorf("funcs: scalar function needs a name and an Eval")
	}
	if f.HandleArg >= len(f.Args) {
		return fmt.Errorf("funcs: %s: handle arg %d out of range", f.Name, f.HandleArg)
	}
	if f.HandleArg >= 0 && f.MakeHandle == nil {
		return fmt.Errorf("funcs: %s: handle arg without MakeHandle", f.Name)
	}
	key := strings.ToLower(f.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scalars[key]; ok {
		return fmt.Errorf("funcs: scalar %s already registered", f.Name)
	}
	r.scalars[key] = f
	return nil
}

// RegisterAggregate adds an aggregate function.
func (r *Registry) RegisterAggregate(a *Aggregate) error {
	if a.Name == "" || (a.New == nil && a.NewP == nil) || a.Ret == nil {
		return fmt.Errorf("funcs: aggregate needs a name, Ret, and New or NewP")
	}
	if len(a.Subs) == 0 || len(a.Subs) != len(a.Supers) {
		return fmt.Errorf("funcs: %s: Subs/Supers must be non-empty and parallel", a.Name)
	}
	if a.Final == FinalScalarCall && a.Finalizer == "" {
		return fmt.Errorf("funcs: %s: FinalScalarCall needs a Finalizer", a.Name)
	}
	seenOptional := false
	for _, p := range a.Params {
		if p.Required && seenOptional {
			return fmt.Errorf("funcs: %s: required parameter %s follows an optional one", a.Name, p.Name)
		}
		if !p.Required {
			seenOptional = true
		}
	}
	key := strings.ToLower(a.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.aggs[key]; ok {
		return fmt.Errorf("funcs: aggregate %s already registered", a.Name)
	}
	r.aggs[key] = a
	return nil
}

// Scalar returns the named scalar function.
func (r *Registry) Scalar(name string) (*Scalar, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.scalars[strings.ToLower(name)]
	return f, ok
}

// Aggregate returns the named aggregate function.
func (r *Registry) Aggregate(name string) (*Aggregate, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.aggs[strings.ToLower(name)]
	return a, ok
}

// IsAggregate reports whether name is a registered aggregate.
func (r *Registry) IsAggregate(name string) bool {
	_, ok := r.Aggregate(name)
	return ok
}

// ScalarNames returns all scalar function names, sorted.
func (r *Registry) ScalarNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.scalars))
	for n := range r.scalars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AggregateNames returns all aggregate names, sorted.
func (r *Registry) AggregateNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.aggs))
	for n := range r.aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckArgs verifies call-site argument types against the declaration,
// allowing numeric coercion. It returns a descriptive error naming the
// function.
func (f *Scalar) CheckArgs(args []schema.Type) error {
	if len(args) != len(f.Args) {
		return fmt.Errorf("funcs: %s takes %d arguments, got %d", f.Name, len(f.Args), len(args))
	}
	for i, want := range f.Args {
		got := args[i]
		if want == schema.TNull || got == want {
			continue
		}
		if want.Numeric() && got.Numeric() {
			continue
		}
		return fmt.Errorf("funcs: %s argument %d: want %s, got %s", f.Name, i+1, want, got)
	}
	return nil
}
