package plan

import (
	"fmt"
	"strings"

	"gigascope/internal/gsql"
)

// The rewrite pipeline. Per-query passes (pushdown, shared-LFTA
// elimination) run between lowering and emit of each query; the
// script-wide prefilter pass runs once after every query has been
// lowered. All passes mutate the IR in place and record their decisions
// on Boundary nodes, where emit picks them up.

// ScriptContext carries script-scoped pass state and the cost oracle.
// One context spans a whole CompileScript call: sharing and prefilter
// grouping happen only among queries compiled together.
type ScriptContext struct {
	// Cheap reports whether an expression is LFTA-safe (no expensive
	// functions). Supplied by core from the function registry.
	Cheap func(gsql.Expr) bool
	// DisableSharing turns off the shared-LFTA and prefilter passes
	// (predicate pushdown always runs: it is per-query and semantics-
	// preserving on its own).
	DisableSharing bool

	// byFingerprint maps boundary fingerprints to the canonical boundary
	// and the name of the query that owns it.
	byFingerprint map[string]*sharedEntry
}

type sharedEntry struct {
	boundary *Boundary
	query    string
}

// Pass is one rewrite over a single query's plan.
type Pass interface {
	Name() string
	Run(pl *QueryPlan, ctx *ScriptContext) error
}

// QueryPasses returns the per-query pipeline in execution order.
// Pushdown must precede sharing: pushed conjuncts land inside boundary
// filters and change fingerprints. Sharing must precede prefilter
// extraction (which runs script-wide afterwards): eliminated boundaries
// must not contribute duplicate members.
func QueryPasses() []Pass {
	return []Pass{PushdownPass{}, SharePass{}}
}

// Rewrite runs the per-query pipeline on one plan.
func Rewrite(pl *QueryPlan, ctx *ScriptContext) error {
	for _, p := range QueryPasses() {
		if err := p.Run(pl, ctx); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Predicate pushdown.

// PushdownPass moves cheap single-source conjuncts past Merge and Join
// into the wrap LFTAs below, and distributes a merge's WHERE clause into
// every branch (σp(A ∪ B) = σp(A) ∪ σp(B); filtering preserves each
// branch's ordering, so the merge invariant holds). Stream-sourced merge
// branches gain an explicit Filter node that emit materializes as a
// small selection HFTA.
type PushdownPass struct{}

func (PushdownPass) Name() string { return "pushdown" }

func (PushdownPass) Run(pl *QueryPlan, ctx *ScriptContext) error {
	switch root := pl.Root.(type) {
	case *Filter:
		if m, ok := root.Input.(*Merge); ok {
			if err := distributeMergeFilter(root, m, ctx); err != nil {
				return err
			}
			pl.Root = m
		}
	case *Join:
		pushJoinConjuncts(root, ctx)
	}
	return nil
}

// distributeMergeFilter pushes every conjunct of a filter-over-merge into
// all branches. Conjuncts must be unqualified (they apply to each branch's
// positionally identical schema) and LFTA-cheap (protocol branches land in
// wrap LFTAs, which cannot run expensive functions); the parser and
// lowering enforce both, so violations here are internal errors.
func distributeMergeFilter(f *Filter, m *Merge, ctx *ScriptContext) error {
	for _, cj := range Conjuncts(f.Pred) {
		if ctx.Cheap != nil && !ctx.Cheap(cj) {
			return fmt.Errorf("internal: expensive conjunct %s reached merge pushdown", cj)
		}
	}
	for i, in := range m.Inputs {
		switch b := in.(type) {
		case *Boundary:
			addBoundaryConjuncts(b, Conjuncts(f.Pred))
		default:
			m.Inputs[i] = &Filter{Pred: f.Pred, Input: in}
		}
	}
	return nil
}

// pushJoinConjuncts moves join conjuncts that are cheap, parameter-free,
// reference exactly one side, and do not touch that side's ordered
// (window-defining) columns into the side's wrap boundary. Conjuncts
// referencing ordered columns stay put: emit's window decomposition reads
// them, and moving one could change the inferred join window.
func pushJoinConjuncts(j *Join, ctx *ScriptContext) {
	sides := [2]Node{j.Left, j.Right}
	var keep []gsql.Expr
	for _, cj := range Conjuncts(j.Pred) {
		pushed := false
		if ctx.Cheap == nil || ctx.Cheap(cj) {
			for _, side := range sides {
				b, ok := side.(*Boundary)
				if !ok || b.Mode != ModeWrap {
					continue
				}
				scan := boundaryScan(b)
				if scan == nil || !conjunctPushable(cj, scan) {
					continue
				}
				addBoundaryConjuncts(b, []gsql.Expr{stripQualifiers(cj)})
				pushed = true
				break
			}
		}
		if !pushed {
			keep = append(keep, cj)
		}
	}
	j.Pred = Conjoin(keep)
}

// conjunctPushable reports whether every column reference in cj is
// qualified to scan's binding, resolves in its schema, avoids ordered
// columns, and the conjunct is parameter-free.
func conjunctPushable(cj gsql.Expr, scan *Scan) bool {
	if HasParam(cj) {
		return false
	}
	ok := true
	sawCol := false
	gsql.Walk(cj, func(n gsql.Expr) bool {
		c, isCol := n.(*gsql.ColRef)
		if !isCol {
			return true
		}
		sawCol = true
		if c.Table == "" ||
			(!strings.EqualFold(c.Table, scan.Binding) && !strings.EqualFold(c.Table, scan.Schema.Name)) {
			ok = false
			return false
		}
		_, col := scan.Schema.Col(c.Name)
		if col == nil || col.Ordering.Usable() {
			ok = false
			return false
		}
		return true
	})
	return ok && sawCol
}

// boundaryScan returns the Scan at the bottom of a boundary's subtree.
func boundaryScan(b *Boundary) *Scan { return b.Scan() }

// addBoundaryConjuncts ANDs extra conjuncts into the boundary's inner
// filter, creating one directly above the scan when absent.
func addBoundaryConjuncts(b *Boundary, cjs []gsql.Expr) {
	if len(cjs) == 0 {
		return
	}
	stripped := make([]gsql.Expr, len(cjs))
	for i, cj := range cjs {
		stripped[i] = stripQualifiers(cj)
	}
	var attach func(n Node) Node
	attach = func(n Node) Node {
		switch x := n.(type) {
		case *Filter:
			x.Pred = Conjoin(append(Conjuncts(x.Pred), stripped...))
			return x
		case *Project:
			x.Input = attach(x.Input)
			return x
		case *Scan:
			return &Filter{Pred: Conjoin(stripped), Input: x}
		}
		return n
	}
	b.Input = attach(b.Input)
}

// stripQualifiers clears table qualifiers so a pushed conjunct compiles
// against the single-source boundary schema.
func stripQualifiers(e gsql.Expr) gsql.Expr {
	switch n := e.(type) {
	case *gsql.ColRef:
		return &gsql.ColRef{Name: n.Name, At: n.At}
	case *gsql.BinaryExpr:
		return &gsql.BinaryExpr{Op: n.Op, L: stripQualifiers(n.L), R: stripQualifiers(n.R), At: n.At}
	case *gsql.UnaryExpr:
		return &gsql.UnaryExpr{Op: n.Op, X: stripQualifiers(n.X), At: n.At}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = stripQualifiers(a)
		}
		return &gsql.FuncCall{Name: n.Name, Args: args, At: n.At}
	}
	return e
}

// ---------------------------------------------------------------------
// Shared-LFTA elimination.

// SharePass folds structurally identical LFTA boundaries across the
// script's query set into a single canonical instantiation (paper §5).
// Later queries' boundaries are marked SharedWith the canonical one; emit
// skips them and subscribes the consumer to the canonical stream via the
// ordinary publisher fan-out.
type SharePass struct{}

func (SharePass) Name() string { return "share-lfta" }

func (SharePass) Run(pl *QueryPlan, ctx *ScriptContext) error {
	if ctx.DisableSharing {
		return nil
	}
	if ctx.byFingerprint == nil {
		ctx.byFingerprint = make(map[string]*sharedEntry)
	}
	for _, b := range Boundaries(pl.Root) {
		fp, ok := Fingerprint(b)
		if !ok {
			continue
		}
		if ent, dup := ctx.byFingerprint[fp]; dup {
			b.SharedWith = ent.boundary.Name
			ent.boundary.SharedBy = append(ent.boundary.SharedBy, pl.Name)
		} else {
			ctx.byFingerprint[fp] = &sharedEntry{boundary: b, query: pl.Name}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Common-prefilter extraction.

// maxPrefilterTerms bounds one group's term set to the mask width.
const maxPrefilterTerms = 64

// PrefilterPass hoists the cheap, parameter-free conjuncts of every LFTA
// boundary into per-(interface, protocol) prefilter groups (paper §5):
// each distinct term is evaluated once per packet and each member LFTA is
// delivered only packets passing its masked conjunction. Runs script-wide
// after every query has been lowered and rewritten. Boundaries eliminated
// by SharePass are skipped — the canonical boundary carries the identical
// terms. Terms beyond the 64-bit mask are simply left ungated (a partial
// mask is sound: gating on a subset of an LFTA's conjuncts never drops a
// packet the LFTA would keep).
type PrefilterPass struct{}

func (PrefilterPass) Name() string { return "prefilter" }

func (p PrefilterPass) Run(s *Script, ctx *ScriptContext) error {
	if ctx.DisableSharing {
		return nil
	}
	type groupKey struct{ iface, proto string }
	groups := make(map[groupKey]*PrefilterGroup)
	termBit := make(map[groupKey]map[string]int)
	var order []groupKey

	for _, pl := range s.Plans {
		for _, b := range Boundaries(pl.Root) {
			if b.SharedWith != "" {
				continue
			}
			scan := boundaryScan(b)
			if scan == nil || !scan.IsProtocol {
				continue
			}
			filt := boundaryFilter(b)
			if filt == nil {
				continue
			}
			key := groupKey{strings.ToLower(scan.Interface), strings.ToLower(scan.Name)}
			g := groups[key]
			if g == nil {
				g = &PrefilterGroup{
					Interface: scan.Interface,
					Protocol:  scan.Name,
					Members:   make(map[string]uint64),
				}
				groups[key] = g
				termBit[key] = make(map[string]int)
				order = append(order, key)
			}
			var mask uint64
			for _, cj := range Conjuncts(filt.Pred) {
				if HasParam(cj) || (ctx.Cheap != nil && !ctx.Cheap(cj)) {
					continue
				}
				canon := Canon(cj)
				bit, seen := termBit[key][canon]
				if !seen {
					if len(g.Terms) >= maxPrefilterTerms {
						continue
					}
					bit = len(g.Terms)
					g.Terms = append(g.Terms, Normalize(cj))
					termBit[key][canon] = bit
				}
				mask |= 1 << uint(bit)
			}
			if mask != 0 {
				name := strings.ToLower(b.Name)
				g.Members[name] |= mask
				b.PrefilterGroup = len(order) - 1
				b.PrefilterMask = mask
			}
		}
	}

	for _, key := range order {
		g := groups[key]
		if len(g.Terms) == 0 || len(g.Members) == 0 {
			continue
		}
		s.Prefilters = append(s.Prefilters, g)
	}
	// Re-number boundary group indexes to the compacted slice.
	index := make(map[*PrefilterGroup]int)
	for i, g := range s.Prefilters {
		index[g] = i
	}
	for _, pl := range s.Plans {
		for _, b := range Boundaries(pl.Root) {
			if b.PrefilterMask == 0 {
				b.PrefilterGroup = -1
				continue
			}
			scan := boundaryScan(b)
			key := groupKey{strings.ToLower(scan.Interface), strings.ToLower(scan.Name)}
			if g, ok := groups[key]; ok {
				if i, ok := index[g]; ok {
					b.PrefilterGroup = i
					continue
				}
			}
			b.PrefilterGroup, b.PrefilterMask = -1, 0
		}
	}
	return nil
}

// boundaryFilter returns the Filter inside a boundary subtree, nil when
// the LFTA has no predicate.
func boundaryFilter(b *Boundary) *Filter { return b.InnerFilter() }
