package nic

import (
	"encoding/binary"
	"testing"

	"gigascope/internal/pkt"
)

func flowPkt(srcIP, dstIP uint32, srcPort, dstPort uint16) pkt.Packet {
	return pkt.BuildTCP(1_000_000, pkt.TCPSpec{
		SrcIP: srcIP, DstIP: dstIP,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: []byte("x"),
	})
}

// setFrag overwrites the IPv4 flags/fragment-offset field (offset in
// 8-byte units, mf sets the more-fragments bit).
func setFrag(p *pkt.Packet, offset uint16, mf bool) {
	v := offset & 0x1fff
	if mf {
		v |= 0x2000
	}
	binary.BigEndian.PutUint16(p.Data[pkt.EthHeaderLen+6:], v)
}

func TestFlowHashStableAndPortSensitive(t *testing.T) {
	a := flowPkt(0x0a000001, 0x0a000002, 1234, 80)
	b := flowPkt(0x0a000001, 0x0a000002, 1234, 80)
	ha, ok := FlowHash(&a)
	if !ok {
		t.Fatal("IPv4 TCP packet must be hashable")
	}
	hb, _ := FlowHash(&b)
	if ha != hb {
		t.Fatalf("same flow hashed differently: %#x vs %#x", ha, hb)
	}
	c := flowPkt(0x0a000001, 0x0a000002, 1234, 443)
	if hc, _ := FlowHash(&c); hc == ha {
		t.Fatalf("different dst port produced the same hash %#x (ports must participate)", hc)
	}
	d := flowPkt(0x0a000009, 0x0a000002, 1234, 80)
	if hd, _ := FlowHash(&d); hd == ha {
		t.Fatalf("different src IP produced the same hash %#x", hd)
	}
}

func TestFlowHashNonIPSteersToShardZero(t *testing.T) {
	p := flowPkt(1, 2, 3, 4)
	binary.BigEndian.PutUint16(p.Data[12:], 0x0806) // ARP
	if _, ok := FlowHash(&p); ok {
		t.Fatal("non-IP packet reported hashable")
	}
	if s := Shard(&p, 8); s != 0 {
		t.Fatalf("non-IP packet steered to shard %d, want 0", s)
	}
}

// TestFlowHashFragmentsStayTogether checks that every fragment of a
// datagram — including the first, which still carries the transport
// header — hashes on the 3-tuple only, so the whole datagram rides one
// shard and can be reassembled there.
func TestFlowHashFragmentsStayTogether(t *testing.T) {
	first := flowPkt(0x0a000001, 0x0a000002, 1234, 80)
	setFrag(&first, 0, true)
	later := flowPkt(0x0a000001, 0x0a000002, 0xdead, 0xbeef) // garbage "ports": fragment payload
	setFrag(&later, 3, false)
	hf, ok := FlowHash(&first)
	if !ok {
		t.Fatal("fragment not hashable")
	}
	hl, _ := FlowHash(&later)
	if hf != hl {
		t.Fatalf("fragments of one datagram hashed apart: %#x vs %#x", hf, hl)
	}
	// An unfragmented packet of the same 5-tuple as `first` must differ
	// (ports mix in) — otherwise ports never participate at all.
	whole := flowPkt(0x0a000001, 0x0a000002, 1234, 80)
	if hw, _ := FlowHash(&whole); hw == hf {
		t.Fatalf("unfragmented packet hashed like the fragment %#x (ports not mixed)", hw)
	}
}

func TestSteerPartitionsPreservingOrder(t *testing.T) {
	const n = 4
	var ps []*pkt.Packet
	for i := 0; i < 200; i++ {
		p := flowPkt(0x0a000000+uint32(i%17), 0x0a010000, uint16(1000+i%7), 80)
		p.TS = uint64(i) // arrival order marker
		ps = append(ps, &p)
	}
	out := Steer(ps, n, nil)
	if len(out) != n {
		t.Fatalf("got %d shards, want %d", len(out), n)
	}
	total := 0
	for s, shard := range out {
		prev := -1
		for _, p := range shard {
			if got := Shard(p, n); got != s {
				t.Fatalf("packet on shard %d but Shard() = %d", s, got)
			}
			if int(p.TS) <= prev {
				t.Fatalf("shard %d order broken: ts %d after %d", s, p.TS, prev)
			}
			prev = int(p.TS)
			total++
		}
	}
	if total != len(ps) {
		t.Fatalf("steered %d packets, offered %d", total, len(ps))
	}
	// Reuse path: the returned buffers must be reusable without leaking
	// packets between calls.
	out2 := Steer(ps[:50], n, out)
	total = 0
	for _, shard := range out2 {
		total += len(shard)
	}
	if total != 50 {
		t.Fatalf("reused Steer buffers carried %d packets, want 50", total)
	}
}
