package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gigascope/internal/exec"
)

// FuzzWireDecode throws arbitrary bytes at the frame reader and every
// payload decoder. The invariants under fuzz are the protocol's safety
// contract against a corrupt or malicious peer:
//
//   - never panic (slice bounds, allocation size, unpack recursion);
//   - never allocate proportionally to a claimed length the payload
//     cannot hold (the fuzz frame cap is 1 MiB, so a run that
//     over-allocates shows up as an OOM or a gigantic slice);
//   - every malformed input fails with a typed *DecodeError (payload
//     decoders) or an io error / ErrFrameTooBig (frame reader).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: one well-formed frame of every type, plus classic
	// corruptions — truncations, a lying length prefix, a huge count.
	sc := feedSchema()
	hello := appendFrame(nil, frameHello,
		encodeHello(nil, helloFrame{Version: Version, Instance: 3, Seq: 9, Stream: "feed"}))
	schemaFr := appendFrame(nil, frameSchema,
		encodeSchemaFrame(nil, schemaFrame{Instance: 3, Seq: 9, Clock: 11, Fingerprint: SchemaFingerprint(sc), Schema: sc}))
	batch := appendFrame(nil, frameBatch,
		encodeBatch(nil, 42, exec.Batch{
			exec.TupleMsg(feedTuple(1, 0x0a000001, "x")),
			exec.HeartbeatMsg(feedTuple(2, 0, "")),
		}))
	keepalive := appendFrame(nil, frameKeepalive, encodeKeepalive(nil, 5, 6))
	fin := appendFrame(nil, frameFin, nil)

	f.Add(hello)
	f.Add(schemaFr)
	f.Add(batch)
	f.Add(keepalive)
	f.Add(fin)
	f.Add(append(append([]byte{}, hello...), batch...)) // two frames back to back
	f.Add(batch[:len(batch)/2])                         // truncated mid-payload
	f.Add(batch[:3])                                    // truncated mid-header
	f.Add([]byte{frameBatch, 0xff, 0xff, 0xff, 0xff})   // 4 GiB length prefix
	huge := append([]byte{}, batch...)
	huge[13], huge[14], huge[15], huge[16] = 0xff, 0xff, 0xff, 0xff // batch count lies
	f.Add(huge)
	f.Add([]byte{})

	const fuzzMaxFrame = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		// Path 1: the framed stream, as readLoop consumes it.
		r := bytes.NewReader(data)
		var buf []byte
		for {
			typ, payload, err := readFrame(r, fuzzMaxFrame, &buf)
			if err != nil {
				var de *DecodeError
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.As(err, &de) {
					t.Fatalf("readFrame: untyped error %T: %v", err, err)
				}
				break
			}
			checkPayload(t, typ, payload)
		}
		// Path 2: raw bytes straight into each payload decoder — the
		// frame reader bounds lengths, but the decoders must hold their
		// own invariants too.
		for _, typ := range []byte{frameHello, frameSchema, frameBatch, frameKeepalive} {
			checkPayload(t, typ, data)
		}
	})
}

// checkPayload runs the type-appropriate payload decoder and asserts the
// error contract; on success it re-encodes where cheap to pin symmetry.
func checkPayload(t *testing.T, typ byte, payload []byte) {
	t.Helper()
	fail := func(err error) {
		if err == nil {
			return
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("frame %q: untyped decode error %T: %v", typ, err, err)
		}
	}
	switch typ {
	case frameHello:
		h, err := decodeHello(payload)
		fail(err)
		if err == nil {
			if got, err2 := decodeHello(encodeHello(nil, h)); err2 != nil || got != h {
				t.Fatalf("hello re-encode mismatch: %+v vs %+v (%v)", got, h, err2)
			}
		}
	case frameSchema:
		sf, err := decodeSchemaFrame(payload)
		fail(err)
		if err == nil {
			// A decoded schema must re-encode to the same fingerprint.
			if _, err2 := decodeSchemaFrame(encodeSchemaFrame(nil, sf)); err2 != nil {
				t.Fatalf("schema re-encode rejected: %v", err2)
			}
		}
	case frameBatch:
		_, b, nT, err := decodeBatch(payload)
		fail(err)
		if err == nil && nT > len(b) {
			t.Fatalf("batch tuple count %d exceeds batch len %d", nT, len(b))
		}
	case frameKeepalive:
		_, _, err := decodeKeepalive(payload)
		fail(err)
	}
}
