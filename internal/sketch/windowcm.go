package sketch

import "fmt"

// WindowCM is a sliding-window Count-Min: frequency estimates over the last
// `window` time units of a stream, in bounded memory, using the exponential
// histogram technique of Datar–Gionis–Indyk–Motwani generalized to mergeable
// sub-sketches ("Sketch-based Querying of Distributed Sliding-Window Data
// Streams"). Time is divided into base intervals; each interval accumulates
// its own Count-Min, and when more than maxPerLevel buckets of a given span
// exist the two oldest merge into one of double span. Expired buckets (those
// entirely outside the window) are dropped whole, so only the single oldest
// surviving bucket can straddle the window edge: a query overcounts by at
// most that bucket's contents, a 1/maxPerLevel relative slack on top of the
// Count-Min eps*N bound.
//
// GSQL queries get sliding windows from time-bucket group keys (tumbling
// windows flushed by heartbeats); WindowCM serves operators and user nodes
// that need a *sliding* decayed view inside one group, and is tested here as
// part of the sketch tier's contract.
type WindowCM struct {
	window      uint64
	base        uint64
	maxPerLevel int
	eps, delta  float64
	buckets     []wbucket // oldest first
}

type wbucket struct {
	start, end uint64 // [start, end)
	span       uint64 // in base intervals; doubles on merge
	cm         *CountMin
}

// NewWindowCM builds a sliding-window sketch over `window` time units with
// Count-Min parameters (eps, delta). maxPerLevel controls the window-edge
// slack (relative overcount at most ~1/maxPerLevel); 8 when zero or less.
func NewWindowCM(window uint64, maxPerLevel int, eps, delta float64) (*WindowCM, error) {
	if window == 0 {
		return nil, fmt.Errorf("sketch: window must be positive")
	}
	if maxPerLevel <= 0 {
		maxPerLevel = 8
	}
	// Probe the CM parameters once so bad eps/delta fail at construction.
	if _, err := NewCountMin(eps, delta); err != nil {
		return nil, err
	}
	base := window / 64
	if base == 0 {
		base = 1
	}
	return &WindowCM{window: window, base: base, maxPerLevel: maxPerLevel, eps: eps, delta: delta}, nil
}

// Add counts n occurrences of key at time now. Time must not regress past
// the newest bucket's start (out-of-order arrivals within the newest base
// interval are fine).
func (w *WindowCM) Add(now uint64, key []byte, n uint64) {
	w.expire(now)
	b := w.newest(now)
	b.cm.Add(key, n)
}

func (w *WindowCM) newest(now uint64) *wbucket {
	if len(w.buckets) > 0 {
		last := &w.buckets[len(w.buckets)-1]
		if now < last.end {
			return last
		}
	}
	start := now - now%w.base
	cm, _ := NewCountMin(w.eps, w.delta)
	w.buckets = append(w.buckets, wbucket{start: start, end: start + w.base, span: 1, cm: cm})
	w.compact()
	return &w.buckets[len(w.buckets)-1]
}

// compact merges the two oldest buckets of any span that exceeds
// maxPerLevel occupancy, cascading upward.
func (w *WindowCM) compact() {
	for span := uint64(1); ; span *= 2 {
		first, count := -1, 0
		for i := range w.buckets {
			if w.buckets[i].span == span {
				if first < 0 {
					first = i
				}
				count++
			}
		}
		if count == 0 && span > 1<<40 {
			return
		}
		if count <= w.maxPerLevel {
			continue
		}
		// Buckets are time-ordered and spans only grow toward the past, so
		// the two oldest of this span are adjacent at `first`.
		a, b := &w.buckets[first], &w.buckets[first+1]
		_ = a.cm.Merge(b.cm)
		a.end = b.end
		a.span = span * 2
		w.buckets = append(w.buckets[:first+1], w.buckets[first+2:]...)
	}
}

// expire drops buckets entirely outside [now-window, now].
func (w *WindowCM) expire(now uint64) {
	if now < w.window {
		return
	}
	edge := now - w.window
	i := 0
	for i < len(w.buckets) && w.buckets[i].end <= edge {
		i++
	}
	if i > 0 {
		w.buckets = w.buckets[i:]
	}
}

// Estimate returns the approximate count of key over the last window time
// units as of now. It never undercounts events inside the window; the
// overcount is bounded by the straddling bucket plus Count-Min error.
func (w *WindowCM) Estimate(now uint64, key []byte) uint64 {
	w.expire(now)
	var est uint64
	for i := range w.buckets {
		est += w.buckets[i].cm.Estimate(key)
	}
	return est
}

// Total is the total count currently held (all live buckets).
func (w *WindowCM) Total() uint64 {
	var n uint64
	for i := range w.buckets {
		n += w.buckets[i].cm.Total()
	}
	return n
}

// Buckets reports the live bucket count (memory is Buckets() Count-Min
// sketches; bounded by maxPerLevel * log2(window/base) + const).
func (w *WindowCM) Buckets() int { return len(w.buckets) }

// Footprint is the approximate in-memory size in bytes.
func (w *WindowCM) Footprint() int {
	n := 96
	for i := range w.buckets {
		n += 48 + w.buckets[i].cm.Footprint()
	}
	return n
}
