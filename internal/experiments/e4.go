package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
)

// E4: the aggregate query splitting ablation (paper §3): "The LFTAs are
// lightweight queries which perform preliminary filtering, projection,
// and aggregation. By linking them into the RTS, these preliminary
// queries can be evaluated without additional data transfers, and greatly
// reduce the data traffic to the HFTAs."
//
// The same aggregation query is compiled twice — split (LFTA partial
// aggregation) and monolithic (pass-through LFTA, full aggregation in the
// HFTA) — and run over identical traffic. We measure the tuples and bytes
// crossing the LFTA→HFTA boundary and verify both plans produce identical
// results.

// E4Row is one plan's outcome.
type E4Row struct {
	Plan           string
	Packets         uint64
	BoundaryTuples  uint64 // tuples crossing LFTA → HFTA
	BoundaryBytes   uint64 // packed bytes crossing
	BoundaryBatches uint64 // batch crossings carrying those tuples
	Results         int    // final result rows
}

// E4 runs the ablation over `packets` synthetic packets.
func E4(packets int) ([]E4Row, error) {
	gen, err := netsim.New(netsim.Config{
		Seed: 21,
		Classes: []netsim.Class{{
			Name: "mix", RateMbps: 200, PktBytes: 700, DstPort: 80,
			Proto: pkt.ProtoTCP, Flows: 2000,
		}},
	})
	if err != nil {
		return nil, err
	}
	var pkts []pkt.Packet
	for i := 0; i < packets; i++ {
		p, _ := gen.Next()
		pkts = append(pkts, p)
	}

	const query = `
		DEFINE { query_name e4agg; }
		SELECT tb, destIP, count(*), sum(total_length)
		FROM TCP
		GROUP BY time/60 as tb, destIP`

	var rows []E4Row
	var results [2]map[string][2]uint64
	for i, disable := range []bool{false, true} {
		name := "split (LFTA partial agg)"
		if disable {
			name = "monolithic (HFTA-only agg)"
		}
		row, res, err := e4Run(query, disable, pkts)
		if err != nil {
			return nil, err
		}
		row.Plan = name
		rows = append(rows, row)
		results[i] = res
	}
	if len(results[0]) != len(results[1]) {
		return nil, fmt.Errorf("experiments: split and monolithic disagree: %d vs %d groups",
			len(results[0]), len(results[1]))
	}
	for k, v := range results[0] {
		if results[1][k] != v {
			return nil, fmt.Errorf("experiments: split and monolithic disagree on group %q", k)
		}
	}
	return rows, nil
}

func e4Run(query string, disableSplit bool, pkts []pkt.Packet) (E4Row, map[string][2]uint64, error) {
	cat, err := newCatalog()
	if err != nil {
		return E4Row{}, nil, err
	}
	cq, err := compileQuery(cat, query, &core.Options{DisableSplit: disableSplit})
	if err != nil {
		return E4Row{}, nil, err
	}
	lfta, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		return E4Row{}, nil, err
	}
	hfta, err := cq.Nodes[1].Instantiate(nil)
	if err != nil {
		return E4Row{}, nil, err
	}
	row := E4Row{Packets: uint64(len(pkts))}
	res := make(map[string][2]uint64)
	sink := func(m exec.Message) {
		if m.IsHeartbeat() {
			return
		}
		row.Results++
		key := m.Tuple[0].String() + "/" + m.Tuple[1].String()
		res[key] = [2]uint64{m.Tuple[2].Uint(), m.Tuple[3].Uint()}
	}
	// LFTA output crosses the boundary in poll-window batches, the way the
	// RTS moves it: accumulate per window, one PushBatch per crossing.
	const pollWindow = 256
	var pending exec.Batch
	boundary := func(m exec.Message) {
		if !m.IsHeartbeat() {
			row.BoundaryTuples++
			row.BoundaryBytes += uint64(m.Tuple.PackedSize())
		}
		pending = append(pending, m)
	}
	batchSink := func(b exec.Batch) {
		for _, m := range b {
			sink(m)
		}
	}
	crossBoundary := func() error {
		if len(pending) == 0 {
			return nil
		}
		b := pending
		pending = nil
		row.BoundaryBatches++
		return exec.PushBatch(hfta.Op, 0, b, batchSink)
	}
	for i := range pkts {
		if err := lfta.PushPacket(&pkts[i], boundary); err != nil {
			return E4Row{}, nil, err
		}
		if (i+1)%pollWindow == 0 {
			if err := crossBoundary(); err != nil {
				return E4Row{}, nil, err
			}
		}
	}
	lfta.Op.FlushAll(boundary)
	if err := crossBoundary(); err != nil {
		return E4Row{}, nil, err
	}
	if err := exec.FlushAllBatch(hfta.Op, batchSink); err != nil {
		return E4Row{}, nil, err
	}
	return row, res, nil
}

// PrintE4 renders the ablation.
func PrintE4(w io.Writer, rows []E4Row) {
	fmt.Fprintln(w, "E4: aggregate query splitting vs monolithic execution (§3)")
	fmt.Fprintf(w, "  %-28s %10s %16s %16s %10s %10s\n",
		"plan", "packets", "boundary tuples", "boundary bytes", "batches", "results")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %10d %16d %16d %10d %10d\n",
			r.Plan, r.Packets, r.BoundaryTuples, r.BoundaryBytes, r.BoundaryBatches, r.Results)
	}
	if len(rows) == 2 && rows[0].BoundaryTuples > 0 {
		fmt.Fprintf(w, "  boundary data reduction from splitting: %.1fx tuples, %.1fx bytes\n",
			float64(rows[1].BoundaryTuples)/float64(rows[0].BoundaryTuples),
			float64(rows[1].BoundaryBytes)/float64(rows[0].BoundaryBytes))
	}
}
