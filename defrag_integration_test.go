package gigascope

import (
	"testing"
)

// TestDefragQueryTree reproduces the paper's §3 user-node scenario: "we
// have implemented a special IP defragmentation operator in this manner
// and have built a query tree using it". A pass-through LFTA feeds raw
// IPV4 tuples (fragments included) to the defrag user node; a GSQL
// aggregation reads whole datagrams from it.
func TestDefragQueryTree(t *testing.T) {
	// The ring must absorb the full burst: LFTA output rings shed under
	// pressure by design (§4 QoS policy), which would make the exact
	// datagram count nondeterministic.
	sys, err := New(Config{RingSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	// LFTA: project the IPV4 view of the default interface.
	sys.MustAddQuery(`
		DEFINE { query_name rawip; }
		SELECT time, srcIP, destIP, ip_id, protocol, hdr_length,
		       fragment_offset, mf_flag, total_length, ip_payload
		FROM IPV4`, nil)
	// User-written node: the defragmenter.
	if err := sys.AddDefragNode("whole", "rawip", 30); err != nil {
		t.Fatal(err)
	}
	// GSQL over the user node's output, like any other stream.
	sys.MustAddQuery(`
		DEFINE { query_name dgram_sizes; }
		SELECT tb, count(*) as dgrams, sum(total_length) as bytes
		FROM whole GROUP BY time/60 as tb`, nil)

	sub, err := sys.Subscribe("dgram_sizes", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	// Traffic with 1500B datagrams fragmented at MTU 600.
	gen, err := NewTrafficGenerator(TrafficConfig{
		Seed: 5,
		Classes: []TrafficClass{{
			Name: "big", RateMbps: 10, PktBytes: 1514, DstPort: 80,
			Proto: ProtoTCP, FragmentMTU: 600,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const nDatagrams = 500
	sent := 0
	fragments := 0
	for {
		p, _ := gen.Next()
		// Count original datagrams by first fragments (offset 0); stop
		// before the (n+1)th datagram so the nth arrives completely.
		ff := uint16(p.Data[20])<<8 | uint16(p.Data[21])
		if ff&0x1fff == 0 {
			if sent == nDatagrams {
				break
			}
			sent++
		}
		fragments++
		sys.Inject("", &p)
	}
	if fragments < nDatagrams*2 {
		t.Fatalf("traffic not fragmented: %d fragments for %d datagrams", fragments, nDatagrams)
	}
	sys.Stop()

	var dgrams, bytes uint64
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			dgrams += m.Tuple[1].Uint()
			bytes += m.Tuple[2].Uint()
		}
	}
	if dgrams != nDatagrams {
		t.Errorf("reassembled datagrams = %d, want %d", dgrams, nDatagrams)
	}
	// Every datagram is 1514B frame => IP total length 1500.
	if want := uint64(nDatagrams * 1500); bytes != want {
		t.Errorf("bytes = %d, want %d", bytes, want)
	}

	// The user node shows up in registry and stats like any query node.
	found := false
	for _, n := range sys.Registry() {
		if n == "whole" {
			found = true
		}
	}
	if !found {
		t.Errorf("user node missing from registry: %v", sys.Registry())
	}
}

// TestUserNodeValidation covers the AddUserNode error paths.
func TestUserNodeValidation(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddUserNode("x", nil, nil); err == nil {
		t.Error("nil operator accepted")
	}
	if err := sys.AddDefragNode("d", "nosuch", 30); err == nil {
		t.Error("unknown input accepted")
	}
	// Defrag over a schema missing fragment columns fails cleanly.
	sys.MustAddQuery(`DEFINE { query_name thin; } SELECT time, srcIP FROM TCP`, nil)
	if err := sys.AddDefragNode("d2", "thin", 30); err == nil {
		t.Error("schema without fragment columns accepted")
	}
	// Parameters cannot be set on user nodes.
	sys.MustAddQuery(`
		DEFINE { query_name rawip2; }
		SELECT time, srcIP, destIP, ip_id, protocol, hdr_length,
		       fragment_offset, mf_flag, total_length, ip_payload
		FROM IPV4`, nil)
	if err := sys.AddDefragNode("frag2", "rawip2", 30); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetParams("frag2", map[string]Value{"x": Uint(1)}); err == nil {
		t.Error("SetParams on user node accepted")
	}
}
