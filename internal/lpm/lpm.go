// Package lpm implements longest-prefix matching over IPv4 prefixes with a
// path-compressed binary trie. It powers the getlpmid user-defined function
// from the paper (§2.2): mapping a destination IP to the autonomous-system
// peer whose announced prefix matches it most specifically.
package lpm

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gigascope/internal/schema"
)

// Table is an immutable-after-build longest-prefix-match table mapping IPv4
// prefixes to uint64 identifiers.
type Table struct {
	root *node
	n    int
}

type node struct {
	children [2]*node
	hasValue bool
	value    uint64
}

// New returns an empty table.
func New() *Table { return &Table{root: &node{}} }

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.n }

// Insert adds a prefix of the given length (0..32) mapping to id. Inserting
// the same prefix twice overwrites the id.
func (t *Table) Insert(prefix uint32, length int, id uint64) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("lpm: prefix length %d out of range", length)
	}
	if length < 32 && prefix<<uint(length) != 0 {
		// Normalize host bits rather than failing: routing tables in the
		// wild frequently carry them.
		prefix &= ^uint32(0) << uint(32-length)
		if length == 0 {
			prefix = 0
		}
	}
	n := t.root
	for i := 0; i < length; i++ {
		bit := prefix >> uint(31-i) & 1
		if n.children[bit] == nil {
			n.children[bit] = &node{}
		}
		n = n.children[bit]
	}
	if !n.hasValue {
		t.n++
	}
	n.hasValue = true
	n.value = id
	return nil
}

// Lookup returns the id of the longest prefix matching addr. It reports
// false when no prefix matches (a default route 0.0.0.0/0 always matches).
func (t *Table) Lookup(addr uint32) (uint64, bool) {
	n := t.root
	var best uint64
	var found bool
	for i := 0; ; i++ {
		if n.hasValue {
			best, found = n.value, true
		}
		if i == 32 {
			return best, found
		}
		bit := addr >> uint(31-i) & 1
		if n.children[bit] == nil {
			return best, found
		}
		n = n.children[bit]
	}
}

// ParsePrefix parses "a.b.c.d/len"; a bare address means /32.
func ParsePrefix(s string) (uint32, int, error) {
	addrStr, lenStr, hasLen := strings.Cut(s, "/")
	addr, err := schema.ParseIP(addrStr)
	if err != nil {
		return 0, 0, fmt.Errorf("lpm: %w", err)
	}
	if !hasLen {
		return addr, 32, nil
	}
	length, err := strconv.Atoi(lenStr)
	if err != nil || length < 0 || length > 32 {
		return 0, 0, fmt.Errorf("lpm: bad prefix length %q", lenStr)
	}
	return addr, length, nil
}

// Read builds a table from a prefix file: one "prefix[/len] id" pair per
// line, '#' comments, blank lines ignored. This is the format of the
// pass-by-handle parameter file in the paper's getlpmid example
// ('peerid.tbl', built from a routing table).
func Read(r io.Reader) (*Table, error) {
	t := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("lpm: line %d: want 'prefix id', got %q", lineNo, line)
		}
		prefix, length, err := ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("lpm: line %d: %w", lineNo, err)
		}
		id, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("lpm: line %d: bad id %q", lineNo, fields[1])
		}
		if err := t.Insert(prefix, length, id); err != nil {
			return nil, fmt.Errorf("lpm: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lpm: %w", err)
	}
	return t, nil
}

// Load reads a prefix table from a file.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
