// Package sketch implements the mergeable summary structures behind
// Gigascope's approximate aggregation tier: Count-Min (with an optional
// sliding-window exponential-histogram decay), HyperLogLog, a DDSketch-style
// relative-error quantile sketch, and a Count-Min-backed top-k heavy-hitter
// tracker.
//
// Every sketch here is mergeable: Merge(a, b) over disjoint partitions of a
// stream yields exactly the state that a single pass over the whole stream
// would have built (register-wise max for HLL, counter addition for Count-Min
// and the quantile buckets). Merge is therefore commutative and associative,
// which is what lets sketch partials cross the LFTA→HFTA boundary and the
// shard-reunify merge in any order without changing the answer — the same
// property the exact sub/super-aggregate decomposition relies on.
//
// The sketches are deterministic: hashing is seeded with package constants,
// no randomness is drawn at run time, so a given input multiset always
// produces bit-identical state. The difftest shard-invariance property tests
// depend on this.
package sketch

import "fmt"

// Default error parameters used when a query does not spell them out:
// eps is the additive/relative error knob, delta the failure probability
// for the Count-Min style bounds.
const (
	DefaultEps   = 0.02
	DefaultDelta = 0.01
)

// Hash64 is the package's seeded 64-bit hash: FNV-1a over the bytes folded
// with the seed, finished with a splitmix64 avalanche so low-entropy keys
// (counters, IPv4 addresses) spread across the full width. Hand-rolled so
// the package has no dependencies and the value is stable across platforms.
func Hash64(b []byte, seed uint64) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func checkFraction(name string, v float64) error {
	if !(v > 0 && v < 1) {
		return fmt.Errorf("sketch: %s must be in (0,1), got %v", name, v)
	}
	return nil
}
