package core

import (
	"fmt"
	"strings"

	"gigascope/internal/gsql"
	"gigascope/internal/plan"
)

// Emit: instantiate executable nodes from the rewritten plan IR. The
// structural decisions (boundary placement, cheap/expensive partition,
// pushed conjuncts, sharing) are all read from the tree; this stage only
// synthesizes the per-node GSQL fragments and compiles them through the
// battle-tested builders (buildSelProj/buildAgg/buildMerge/buildJoin and
// the split-aggregate expansion).

// scriptEmit carries emit state across the queries of one CompileScript
// call: canonical shared LFTAs already instantiated, by lower-cased name.
type scriptEmit struct {
	lftaByName map[string]*Node
}

func newScriptEmit() *scriptEmit {
	return &scriptEmit{lftaByName: make(map[string]*Node)}
}

// emitPlan turns one rewritten query plan into its node list (LFTAs
// first, output node last). Nodes reused from earlier queries via sharing
// are not repeated in the list.
func (a *analyzer) emitPlan(pl *plan.QueryPlan, se *scriptEmit) ([]*Node, error) {
	switch root := pl.Root.(type) {
	case *plan.Merge:
		return a.emitMerge(pl, root, se)
	case *plan.Join:
		return a.emitJoin(pl, root, se)
	case *plan.Boundary:
		// ModeWhole: the entire query is one LFTA under its own name.
		n, err := a.buildSelProj(pl.Name, LevelLFTA, refOf(root.Scan()), pl.Query)
		if err != nil {
			return nil, err
		}
		se.lftaByName[strings.ToLower(n.Name)] = n
		return []*Node{n}, nil
	default:
		return a.emitSingle(pl, se)
	}
}

// emitBoundary instantiates one selection/projection boundary (pass-
// through or wrap) or returns the canonical node when the sharing pass
// eliminated it. fresh reports whether the node was newly built and
// belongs in this query's node list.
func (a *analyzer) emitBoundary(b *plan.Boundary, se *scriptEmit) (n *Node, fresh bool, err error) {
	if b.SharedWith != "" {
		canon := se.lftaByName[strings.ToLower(b.SharedWith)]
		if canon == nil {
			return nil, false, fmt.Errorf("internal: shared boundary %s references unknown canonical LFTA %s", b.Name, b.SharedWith)
		}
		canon.sharedBy = append(canon.sharedBy, a.name)
		return canon, false, nil
	}
	scan := b.Scan()
	proj := b.InnerProject()
	if scan == nil || proj == nil {
		return nil, false, fmt.Errorf("internal: boundary %s has no scan/projection", b.Name)
	}
	lq := &gsql.Query{
		Defs:    map[string][]string{"query_name": {b.Name}},
		Kind:    gsql.KindSelect,
		Select:  proj.Items,
		Sources: []gsql.TableRef{{Interface: scan.Interface, Name: scan.Name}},
	}
	if f := b.InnerFilter(); f != nil {
		lq.Where = f.Pred
	}
	n, err = a.buildSelProj(b.Name, LevelLFTA, refOf(scan), lq)
	if err != nil {
		return nil, false, err
	}
	se.lftaByName[strings.ToLower(b.Name)] = n
	return n, true, nil
}

// emitSingle handles single-source plans whose root is a Project or
// Aggregate: stream HFTAs, pass-through splits, and split aggregation.
func (a *analyzer) emitSingle(pl *plan.QueryPlan, se *scriptEmit) ([]*Node, error) {
	q := pl.Query
	isAgg := false
	var in plan.Node
	switch root := pl.Root.(type) {
	case *plan.Project:
		in = root.Input
	case *plan.Aggregate:
		isAgg = true
		in = root.Input
	default:
		return nil, fmt.Errorf("internal: unexpected plan root %T for %s", pl.Root, pl.Name)
	}

	// Peel the expensive filter between root and boundary, if any.
	var expensive []gsql.Expr
	if f, ok := in.(*plan.Filter); ok {
		if _, isBoundary := f.Input.(*plan.Boundary); isBoundary {
			expensive = conjuncts(f.Pred)
			in = f.Input
		}
	}

	switch x := in.(type) {
	case *plan.Boundary:
		if x.Mode == plan.ModeSplitAgg {
			var cheap []gsql.Expr
			if f := x.InnerFilter(); f != nil {
				cheap = conjuncts(f.Pred)
			}
			nodes, err := a.splitAggregate(pl.Name, refOf(x.Scan()), q, cheap)
			if err != nil {
				return nil, err
			}
			se.lftaByName[strings.ToLower(nodes[0].Name)] = nodes[0]
			return nodes, nil
		}
		lfta, fresh, err := a.emitBoundary(x, se)
		if err != nil {
			return nil, err
		}
		// HFTA: the original query over the boundary stream, minus the
		// conjuncts the LFTA already applied, with qualifiers stripped.
		hq := &gsql.Query{
			Defs:    q.Defs,
			Kind:    gsql.KindSelect,
			Sources: []gsql.TableRef{{Name: lfta.Name}},
			Where:   conjoin(stripList(expensive)),
		}
		for _, it := range q.Select {
			hq.Select = append(hq.Select, gsql.SelectItem{Expr: stripQualifiers(it.Expr), Alias: it.Alias})
		}
		for _, it := range q.GroupBy {
			hq.GroupBy = append(hq.GroupBy, gsql.SelectItem{Expr: stripQualifiers(it.Expr), Alias: it.Alias})
		}
		if q.Having != nil {
			hq.Having = stripQualifiers(q.Having)
		}
		var hfta *Node
		if isAgg {
			hfta, err = a.buildAgg(pl.Name, LevelHFTA, a.streamRef(lfta), hq, false)
		} else {
			hfta, err = a.buildSelProj(pl.Name, LevelHFTA, a.streamRef(lfta), hq)
		}
		if err != nil {
			return nil, err
		}
		if fresh {
			return []*Node{lfta, hfta}, nil
		}
		return []*Node{hfta}, nil

	case *plan.Scan, *plan.Filter:
		// Stream input (optionally filtered): a single HFTA compiled from
		// the original query.
		scan := scanBelow(in)
		if scan == nil {
			return nil, fmt.Errorf("internal: no scan under plan root for %s", pl.Name)
		}
		if isAgg {
			n, err := a.buildAgg(pl.Name, LevelHFTA, refOf(scan), q, false)
			return []*Node{n}, err
		}
		n, err := a.buildSelProj(pl.Name, LevelHFTA, refOf(scan), q)
		return []*Node{n}, err
	}
	return nil, fmt.Errorf("internal: unexpected plan shape for %s", pl.Name)
}

func scanBelow(n plan.Node) *plan.Scan {
	var scan *plan.Scan
	plan.Walk(n, func(x plan.Node) bool {
		if s, ok := x.(*plan.Scan); ok {
			scan = s
			return false
		}
		return true
	})
	return scan
}

// emitInput instantiates one join/merge input branch: a wrap boundary, a
// plain stream scan, or a stream scan under a pushed filter (which
// materializes as a small selection HFTA). Returns the source reference
// the parent reads plus any fresh nodes.
func (a *analyzer) emitInput(name string, idx int, in plan.Node, se *scriptEmit) (SourceRef, []*Node, error) {
	switch x := in.(type) {
	case *plan.Boundary:
		lfta, fresh, err := a.emitBoundary(x, se)
		if err != nil {
			return SourceRef{}, nil, err
		}
		ref := SourceRef{Name: lfta.Name, Binding: x.Scan().Binding, Schema: lfta.Out}
		if fresh {
			return ref, []*Node{lfta}, nil
		}
		return ref, nil, nil
	case *plan.Scan:
		return refOf(x), nil, nil
	case *plan.Filter:
		scan, ok := x.Input.(*plan.Scan)
		if !ok {
			return SourceRef{}, nil, fmt.Errorf("internal: unexpected filtered input %T", x.Input)
		}
		fname := fmt.Sprintf("_flt_%s_%d", name, idx)
		fq := &gsql.Query{
			Defs:    map[string][]string{"query_name": {fname}},
			Kind:    gsql.KindSelect,
			Sources: []gsql.TableRef{{Name: scan.Name}},
			Where:   stripQualifiers(x.Pred),
		}
		for _, c := range scan.Schema.Cols {
			fq.Select = append(fq.Select, gsql.SelectItem{Expr: &gsql.ColRef{Name: c.Name}})
		}
		fn, err := a.buildSelProj(fname, LevelHFTA, refOf(scan), fq)
		if err != nil {
			return SourceRef{}, nil, err
		}
		return SourceRef{Name: fname, Binding: scan.Binding, Schema: fn.Out}, []*Node{fn}, nil
	}
	return SourceRef{}, nil, fmt.Errorf("internal: unexpected input node %T", in)
}

func (a *analyzer) emitMerge(pl *plan.QueryPlan, m *plan.Merge, se *scriptEmit) ([]*Node, error) {
	var nodes []*Node
	wrapped := make([]SourceRef, len(m.Inputs))
	for i, in := range m.Inputs {
		ref, fresh, err := a.emitInput(pl.Name, i, in, se)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, fresh...)
		wrapped[i] = ref
	}
	// The merge node itself runs with no predicate: any WHERE clause was
	// distributed into the branches by the pushdown pass.
	rq := *pl.Query
	rq.Where = nil
	merge, err := a.buildMerge(pl.Name, LevelHFTA, wrapped, &rq)
	if err != nil {
		return nil, err
	}
	return append(nodes, merge), nil
}

func (a *analyzer) emitJoin(pl *plan.QueryPlan, j *plan.Join, se *scriptEmit) ([]*Node, error) {
	var nodes []*Node
	wrapped := make([]SourceRef, 2)
	for i, in := range [2]plan.Node{j.Left, j.Right} {
		ref, fresh, err := a.emitInput(pl.Name, i, in, se)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, fresh...)
		wrapped[i] = ref
	}
	// The join predicate may have lost pushed conjuncts; the residual
	// lives on the IR node.
	rq := *pl.Query
	rq.Where = j.Pred
	join, err := a.buildJoin(pl.Name, LevelHFTA, wrapped, &rq)
	if err != nil {
		return nil, err
	}
	return append(nodes, join), nil
}
