package core

import (
	"fmt"
	"strings"
)

// Explain renders one compiled query for the gsql tool: the rewritten
// logical plan tree (lower → rewrite stages, including sharing and
// prefilter annotations), then the emitted runtime nodes — levels,
// operators, source bindings, output schemas with imputed orderings, and
// NIC pushdown.
func (c *CompiledQuery) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s: %d node(s)\n", c.Name, len(c.Nodes))
	if c.Plan != nil {
		b.WriteByte('\n')
		b.WriteString(c.Plan.Format())
	}
	for _, n := range c.Nodes {
		fmt.Fprintf(&b, "\n[%s] %s (%s)\n", n.Level, n.Name, n.Kind)
		for _, s := range n.Sources {
			kind := "stream"
			if s.IsProtocol {
				kind = "protocol"
			}
			fmt.Fprintf(&b, "  from: %s (%s)\n", s, kind)
		}
		fmt.Fprintf(&b, "  exec: %s\n", n.Query)
		fmt.Fprintf(&b, "  out:  %s\n", describeSchema(n))
		if len(n.sharedBy) > 0 {
			fmt.Fprintf(&b, "  shared-by: %s\n", strings.Join(n.sharedBy, ", "))
		}
		if n.Level == LevelLFTA {
			if n.NICProgram != nil {
				fmt.Fprintf(&b, "  nic:  %s\n", n.NICProgram)
			}
			if n.SnapLen > 0 {
				fmt.Fprintf(&b, "  snap: %d bytes\n", n.SnapLen)
			} else if n.Sources[0].IsProtocol {
				fmt.Fprintf(&b, "  snap: full packet\n")
			}
		}
	}
	return b.String()
}

// ExplainScript renders the whole-script view of one CompileScriptPlan
// result: every query's plan tree plus the cross-query rewrites — the
// shared-LFTA table and the common-prefilter groups (paper §5) — and a
// node-count summary showing the instantiation savings.
func ExplainScript(res *ScriptResult) string {
	var b strings.Builder
	b.WriteString(res.Plan.Format())
	total := 0
	lftas := 0
	for _, cq := range res.Queries {
		total += len(cq.Nodes)
		lftas += len(cq.LFTAs())
	}
	fmt.Fprintf(&b, "\n%d queries, %d runtime nodes (%d LFTAs, %d prefilter groups)\n",
		len(res.Queries), total, lftas, len(res.Prefilters))
	return b.String()
}

func describeSchema(n *Node) string {
	var cols []string
	for _, c := range n.Out.Cols {
		s := fmt.Sprintf("%s %s", c.Name, c.Type)
		if c.Ordering.Kind != 0 {
			s += fmt.Sprintf(" (%s)", c.Ordering)
		}
		cols = append(cols, s)
	}
	return strings.Join(cols, ", ")
}
