package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gigascope/internal/gsql"
)

var updateGolden = flag.Bool("update", false, "rewrite golden plan snapshots")

// Golden-plan tests pin the textual rendering of the rewritten plan IR
// for every plan shape the compiler produces: pass-through split, split
// aggregation, merge (with WHERE distribution), join (with single-side
// pushdown), sketched aggregation, and the whole-script view with shared
// LFTAs and prefilter groups. Run `go test ./internal/core -run Golden
// -update` after an intentional plan change; failures print a line diff.
var goldenCases = []struct {
	name   string
	script string
}{
	{
		name: "passthrough",
		script: `
			DEFINE { query_name http80; }
			SELECT time, srcIP, destIP FROM tcp
			WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`,
	},
	{
		name: "splitagg",
		script: `
			DEFINE { query_name flows; }
			SELECT tb, srcIP, count(*), sum(total_length) FROM tcp
			WHERE ipversion = 4
			GROUP BY time/60 as tb, srcIP`,
	},
	{
		name: "merge",
		script: `
			DEFINE { query_name porta; }
			SELECT time, srcIP, destPort FROM eth0.TCP WHERE ipversion = 4;
			DEFINE { query_name portb; }
			SELECT time, srcIP, destPort FROM eth1.TCP WHERE ipversion = 4;
			DEFINE { query_name allports; }
			MERGE porta.time : portb.time FROM porta, portb
			WHERE destPort = 443`,
	},
	{
		name: "join",
		script: `
			DEFINE { query_name pairs; }
			SELECT S.time, S.srcIP FROM eth0.TCP S, eth1.TCP A
			WHERE S.srcIP = A.destIP and S.time >= A.time - 2 and S.time <= A.time + 2
			  and A.total_length = 40 and S.destPort = 80`,
	},
	{
		name: "sketched",
		script: `
			DEFINE { query_name fanout; }
			SELECT tb, srcIP, approx_distinct(destIP) FROM tcp
			WHERE ipversion = 4
			GROUP BY time/60 as tb, srcIP`,
	},
	{
		name: "script_shared",
		script: `
			DEFINE { query_name web_bytes; }
			SELECT tb, sum(total_length) FROM tcp
			WHERE destPort = 80 and str_regex_match(payload, 'HTTP')
			GROUP BY time/60 as tb;
			DEFINE { query_name web_peak; }
			SELECT tb, max(total_length) FROM tcp
			WHERE destPort = 80 and str_regex_match(payload, 'HTTP')
			GROUP BY time/60 as tb;
			DEFINE { query_name dns; }
			SELECT time, srcIP FROM udp WHERE destPort = 53`,
	},
}

func TestGoldenPlans(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			cat := newCatalog(t)
			script, err := gsql.ParseScript(tc.script)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := CompileScriptPlan(cat, script, nil)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got := ExplainScript(res)

			path := filepath.Join("testdata", "golden", tc.name+".plan")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden snapshot (run with -update to create): %v", err)
			}
			want := string(wantBytes)
			if got != want {
				t.Errorf("plan for %s changed (re-run with -update if intentional):\n%s",
					tc.name, lineDiff(want, got))
			}
		})
	}
}

// lineDiff renders a minimal line-by-line diff: matching lines elided,
// removals prefixed '-', additions '+', so a golden failure reads like a
// patch instead of two full dumps.
func lineDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	i, j := 0, 0
	for i < len(wl) || j < len(gl) {
		switch {
		case i < len(wl) && j < len(gl) && wl[i] == gl[j]:
			i++
			j++
		case i < len(wl) && (j >= len(gl) || !contains(gl[j:], wl[i])):
			fmt.Fprintf(&b, "-%4d| %s\n", i+1, wl[i])
			i++
		default:
			fmt.Fprintf(&b, "+%4d| %s\n", j+1, gl[j])
			j++
		}
	}
	if b.Len() == 0 {
		return "(no line differences; whitespace?)"
	}
	return b.String()
}

func contains(lines []string, s string) bool {
	for _, l := range lines {
		if l == s {
			return true
		}
	}
	return false
}
