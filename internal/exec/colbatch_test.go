package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// The columnar path must be byte-identical to the row path: same output
// messages in the same order, same counters, on any input — including
// NULLs, extreme values, heartbeat interleavings, and empty selection
// vectors. These tests drive both paths of each operator over the same
// randomized message sequences and diff everything.

func testInTypes() []schema.Type {
	s := testInSchema()
	types := make([]schema.Type, len(s.Cols))
	for i, c := range s.Cols {
		types[i] = c.Type
	}
	return types
}

// randValue draws a value of the given type, with NULLs and boundary
// values overrepresented (NULL semantics and signed/unsigned edges are
// where the two paths could plausibly diverge).
func randValue(r *rand.Rand, ty schema.Type) schema.Value {
	if r.Intn(8) == 0 {
		return schema.Null
	}
	switch ty {
	case schema.TUint:
		switch r.Intn(4) {
		case 0:
			return schema.MakeUint(uint64(r.Intn(4))) // collisions, zero divisors
		case 1:
			return schema.MakeUint(math.MaxUint64 - uint64(r.Intn(3))) // > MaxInt64
		default:
			return schema.MakeUint(uint64(r.Intn(100_000)))
		}
	case schema.TIP:
		return schema.MakeIP(uint32(r.Intn(1 << 16)))
	case schema.TInt:
		return schema.MakeInt(int64(r.Intn(2001) - 1000))
	case schema.TFloat:
		return schema.MakeFloat(float64(r.Intn(2001)-1000) / 16)
	case schema.TString:
		return schema.MakeStr([]string{"", "GET", "GET / HTTP/1.1", "x"}[r.Intn(4)])
	default:
		return schema.Null
	}
}

func randRow(r *rand.Rand, types []schema.Type) schema.Tuple {
	row := make(schema.Tuple, len(types))
	for i, ty := range types {
		row[i] = randValue(r, ty)
	}
	// Keep the ordered group column non-NULL and non-decreasing-ish so
	// aggregation exercises advances without the NULL-key drop dominating.
	if r.Intn(4) != 0 {
		row[0] = schema.MakeUint(uint64(r.Intn(10)) * 60)
	}
	return row
}

// colRun is one segment of a randomized input: a window of rows with a
// selection mask, or a heartbeat.
type colRun struct {
	rows []schema.Tuple
	sel  []uint32 // live subset, ascending; may be empty (all rows dead)
	hb   schema.Tuple
}

func randRuns(r *rand.Rand, types []schema.Type, nRuns int) []colRun {
	runs := make([]colRun, 0, nRuns)
	for i := 0; i < nRuns; i++ {
		if r.Intn(5) == 0 {
			hb := make(schema.Tuple, len(types))
			hb[0] = schema.MakeUint(uint64(r.Intn(10)) * 60)
			runs = append(runs, colRun{hb: hb})
			continue
		}
		n := r.Intn(12) // includes empty windows
		rows := make([]schema.Tuple, n)
		var sel []uint32
		for j := range rows {
			rows[j] = randRow(r, types)
			// ~1/6 of rows are dead (failed extraction in production);
			// occasionally drop everything to hit empty selection vectors.
			if r.Intn(6) != 0 && r.Intn(20) != 0 {
				sel = append(sel, uint32(j))
			}
		}
		if sel == nil {
			sel = []uint32{} // non-nil empty: no live rows
		}
		runs = append(runs, colRun{rows: rows, sel: sel})
	}
	return runs
}

func msgString(m Message) string {
	kind := "T"
	row := m.Tuple
	if m.IsHeartbeat() {
		kind = "H"
		row = m.Bounds
	}
	s := kind
	for _, v := range row {
		s += fmt.Sprintf("|%d:%d:%x:%q", v.Type, v.U, math.Float64bits(v.F), v.B)
	}
	return s
}

func diffMsgs(t *testing.T, label string, rowOut, colOut []Message) {
	t.Helper()
	if len(rowOut) != len(colOut) {
		t.Fatalf("%s: row path emitted %d messages, columnar %d", label, len(rowOut), len(colOut))
	}
	for i := range rowOut {
		rs, cs := msgString(rowOut[i]), msgString(colOut[i])
		if rs != cs {
			t.Fatalf("%s: message %d differs:\nrow: %s\ncol: %s", label, i, rs, cs)
		}
	}
}

// drive pushes the same runs through a row-path operator (per-row Push)
// and a columnar operator (PushCols per window, Push for heartbeats) and
// returns both output streams.
func drive(t *testing.T, runs []colRun, types []schema.Type, rowOp, colOp ColOperator) (rowOut, colOut []Message) {
	t.Helper()
	if !colOp.Columnar() {
		t.Fatal("operator has no columnar path; property test is vacuous")
	}
	rowEmit := Collect(&rowOut)
	colEmit := Collect(&colOut)
	for _, run := range runs {
		if run.hb != nil {
			if err := rowOp.Push(0, HeartbeatMsg(run.hb), rowEmit); err != nil {
				t.Fatal(err)
			}
			if err := colOp.Push(0, HeartbeatMsg(run.hb), colEmit); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for _, si := range run.sel {
			if err := rowOp.Push(0, TupleMsg(run.rows[si]), rowEmit); err != nil {
				t.Fatal(err)
			}
		}
		cb := ColBatchFromRows(run.rows, types)
		if cb == nil {
			t.Fatal("rows not representable columnarly")
		}
		cb.Sel = run.sel
		if err := colOp.PushCols(cb, colEmit); err != nil {
			t.Fatal(err)
		}
	}
	if err := rowOp.FlushAll(rowEmit); err != nil {
		t.Fatal(err)
	}
	if err := colOp.FlushAll(colEmit); err != nil {
		t.Fatal(err)
	}
	return rowOut, colOut
}

func TestSelProjColumnarMatchesRowPath(t *testing.T) {
	s := testInSchema()
	types := testInTypes()
	cases := []struct {
		name string
		pred string // "" = no predicate
		outs []string
	}{
		{"cmp_uint", "destPort = 80", []string{"time", "len*8"}},
		{"arith_mixed", "len > 100 and delta < 5", []string{"time/60", "len+delta", "ratio*2.0"}},
		{"div_zero", "len / (destPort-80) > 2", []string{"time", "destPort"}},
		{"bool_null", "destPort = 80 or delta = -3", []string{"srcIP", "payload"}},
		{"no_pred", "", []string{"time", "srcIP", "destPort", "len", "payload", "delta", "ratio"}},
		{"cross_type", "ratio < len", []string{"delta % 7", "len & 255", "~len"}},
		{"negate", "not (destPort >= 1024)", []string{"-delta", "-ratio"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *SelProj {
				var pred Expr
				if tc.pred != "" {
					pred = compileOver(t, s, "x", tc.pred)
				}
				outs := compileSel(t, s, "x", tc.outs...)
				return NewSelProj(pred, outs, nil, nil, outSchema(tc.outs...))
			}
			for seed := int64(0); seed < 30; seed++ {
				r := rand.New(rand.NewSource(seed))
				runs := randRuns(r, types, 8)
				rowOp, colOp := build(), build()
				rowOut, colOut := drive(t, runs, types, rowOp, colOp)
				diffMsgs(t, fmt.Sprintf("%s/seed%d", tc.name, seed), rowOut, colOut)
				if rs, cs := rowOp.Stats(), colOp.Stats(); rs != cs {
					t.Fatalf("seed %d: stats diverged: row %+v col %+v", seed, rs, cs)
				}
			}
		})
	}
}

func TestLFTAAggColumnarMatchesRowPath(t *testing.T) {
	s := testInSchema()
	types := testInTypes()
	cnt, _ := funcs.Global.Aggregate("count")
	sum, _ := funcs.Global.Aggregate("sum")
	build := func(tableSize int, withPred bool) *LFTAAgg {
		group := compileSel(t, s, "x", "time/60", "destPort")
		var pred Expr
		if withPred {
			pred = compileOver(t, s, "x", "len > 10")
		}
		post := outSchema("tb", "port", "cnt", "bytes")
		postSel := compileSel(t, post, "out", "tb", "port", "cnt", "bytes")
		sumArg := compileSel(t, s, "x", "len")[0]
		op, err := NewLFTAAgg(AggSpec{
			Pred:       pred,
			GroupExprs: group, OrdGroup: 0,
			Aggs: []AggInstance{
				{Spec: cnt, ArgType: schema.TNull},
				{Spec: sum, Arg: sumArg, ArgType: schema.TUint},
			},
			PostSelect: postSel, Out: post,
		}, tableSize)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	// Small tables force evictions, so the test also pins that the
	// columnar path preserves the direct-mapped eviction pattern (it
	// hashes the identical packed key bytes).
	for _, tableSize := range []int{4, 64} {
		for _, withPred := range []bool{false, true} {
			name := fmt.Sprintf("table%d_pred%v", tableSize, withPred)
			t.Run(name, func(t *testing.T) {
				for seed := int64(0); seed < 30; seed++ {
					r := rand.New(rand.NewSource(seed))
					runs := randRuns(r, types, 10)
					rowOp, colOp := build(tableSize, withPred), build(tableSize, withPred)
					rowOut, colOut := drive(t, runs, types, rowOp, colOp)
					diffMsgs(t, fmt.Sprintf("%s/seed%d", name, seed), rowOut, colOut)
					if rs, cs := rowOp.Stats(), colOp.Stats(); rs != cs {
						t.Fatalf("seed %d: stats diverged: row %+v col %+v", seed, rs, cs)
					}
				}
			})
		}
	}
}

// Operators whose expressions have no columnar form (partial functions)
// must report Columnar() false so callers stay on the row path.
func TestColumnarDisabledForPartialFunctions(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/peer.tbl"
	writeFile(t, path, "10.0.0.0/8 7\n")
	s := testInSchema()
	q, err := parseSelect("getlpmid(srcIP, '" + path + "')")
	if err != nil {
		t.Fatal(err)
	}
	c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(s, "x")}
	e, err := c.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtx(c.Handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := NewSelProj(nil, []Expr{e}, nil, ctx, outSchema("peer"))
	if op.Columnar() {
		t.Fatal("SelProj with a partial function must not claim a columnar path")
	}
}
