package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/netsim"
	"gigascope/internal/schema"
)

// Replayable repro artifacts. A failing (case, config) pair is written as
// a self-contained directory:
//
//	testdata/repros/<name>/
//	    repro.json   seed, config, query texts, parameters, mismatch
//	    trace.bin    the base packet trace (netsim trace format)
//
// The faulted variant of the trace is not stored: it is re-derived from
// the seed, so the artifact replays bit-identically from these two files
// alone. ReplayDir re-runs the comparison; TestReplayRepros in this
// package replays every committed artifact in CI.

// traceFileName is the trace's fixed name inside an artifact directory.
const traceFileName = "trace.bin"

// reproFileName is the metadata file's fixed name.
const reproFileName = "repro.json"

// Artifact is the JSON-serialized description of one failing case.
type Artifact struct {
	Seed    int64    `json:"seed"`
	Config  Config   `json:"config"`
	Queries []string `json:"queries"`
	// Script marks a multi-query script case (compiled as one unit with
	// sharing passes on).
	Script bool `json:"script,omitempty"`
	// Params maps parameter name to "type:value" (e.g. "uint:80").
	Params    map[string]string `json:"params,omitempty"`
	TraceFile string            `json:"trace_file"`
	// Mismatch is the human-readable divergence description captured when
	// the artifact was written; replay recomputes its own.
	Mismatch string `json:"mismatch"`
	// ObservedErr records the measured relative error for bounded-error
	// mismatches, so a triager can see how far outside (eps, delta) the
	// sketch drifted without replaying.
	ObservedErr float64 `json:"observed_err,omitempty"`
	// Plans are one-line plan summaries (node kinds, merge columns,
	// aggregation flush keys, join windows) captured for triage.
	Plans []string `json:"plans,omitempty"`
	// Topology is the rendered topology source for distributed-config
	// artifacts — informational for triage; replay re-derives the same
	// topology from Config.Distributed.
	Topology string `json:"topology,omitempty"`
}

func encodeValue(v schema.Value) string {
	switch v.Type {
	case schema.TString:
		return "string:" + v.Str()
	default:
		return v.Type.String() + ":" + v.String()
	}
}

func decodeValue(s string) (schema.Value, error) {
	name, raw, ok := strings.Cut(s, ":")
	if !ok {
		return schema.Null, fmt.Errorf("difftest: malformed parameter value %q", s)
	}
	t, ok := schema.ParseType(name)
	if !ok {
		return schema.Null, fmt.Errorf("difftest: unknown parameter type %q", name)
	}
	switch t {
	case schema.TBool:
		return schema.MakeBool(raw == "true"), nil
	case schema.TUint:
		u, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return schema.Null, err
		}
		return schema.MakeUint(u), nil
	case schema.TInt:
		i, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return schema.Null, err
		}
		return schema.MakeInt(i), nil
	case schema.TFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return schema.Null, err
		}
		return schema.MakeFloat(f), nil
	case schema.TString:
		return schema.MakeStr(raw), nil
	case schema.TIP:
		a, err := schema.ParseIP(raw)
		if err != nil {
			return schema.Null, err
		}
		return schema.MakeIP(a), nil
	}
	return schema.Null, fmt.Errorf("difftest: unsupported parameter type %q", name)
}

// planSummary renders one compiled query as a triage one-liner.
func planSummary(p *core.CompiledQuery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Name)
	for _, n := range p.Nodes {
		fmt.Fprintf(&b, " [%s %s %s", n.Level, n.Kind, n.Name)
		if cols := n.MergeColumns(); len(cols) > 0 {
			fmt.Fprintf(&b, " mergeCols=%v", cols)
		}
		if idx, band, desc, ok := n.AggOrdGroup(); ok {
			fmt.Fprintf(&b, " ordGroup=%d band=%d desc=%v", idx, band, desc)
		}
		if low, high, ok := n.JoinWindow(); ok {
			fmt.Fprintf(&b, " window=[-%d,+%d]", low, high)
		}
		b.WriteString("]")
	}
	return b.String()
}

// WriteArtifact persists a failing (case, config) pair under dir, named
// case_seed<seed>_<config>. It returns the artifact directory path.
func WriteArtifact(dir string, c *Case, cfg Config, m *Mismatch, plans map[string]*core.CompiledQuery) (string, error) {
	art := Artifact{
		Seed:        c.Seed,
		Config:      cfg,
		Queries:     c.Queries,
		Script:      c.Script,
		TraceFile:   traceFileName,
		Mismatch:    m.String(),
		ObservedErr: m.ObservedErr,
	}
	if cfg.Distributed > 0 {
		if topoSrc, err := DistTopology(cfg.Distributed); err == nil {
			art.Topology = topoSrc
		}
	}
	if len(c.Params) > 0 {
		art.Params = make(map[string]string, len(c.Params))
		for k, v := range c.Params {
			art.Params[k] = encodeValue(v)
		}
	}
	for _, p := range plans {
		art.Plans = append(art.Plans, planSummary(p))
	}
	out := filepath.Join(dir, fmt.Sprintf("case_seed%d_%s", c.Seed, cfg.Name()))
	if err := os.MkdirAll(out, 0o755); err != nil {
		return "", err
	}
	if err := netsim.WriteTraceFile(filepath.Join(out, traceFileName), c.Trace); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(out, reproFileName), append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return out, nil
}

// ReadArtifact loads an artifact directory back into a runnable case.
func ReadArtifact(dir string) (*Case, Config, error) {
	data, err := os.ReadFile(filepath.Join(dir, reproFileName))
	if err != nil {
		return nil, Config{}, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, Config{}, fmt.Errorf("difftest: %s: %w", dir, err)
	}
	traceFile := art.TraceFile
	if traceFile == "" {
		traceFile = traceFileName
	}
	trace, err := netsim.ReadTraceFile(filepath.Join(dir, traceFile))
	if err != nil {
		return nil, Config{}, err
	}
	c := &Case{Seed: art.Seed, Queries: art.Queries, Trace: trace, Script: art.Script}
	if len(art.Params) > 0 {
		c.Params = make(map[string]schema.Value, len(art.Params))
		for k, s := range art.Params {
			v, err := decodeValue(s)
			if err != nil {
				return nil, Config{}, err
			}
			c.Params[k] = v
		}
	}
	return c, art.Config, nil
}

// ReplayDir re-runs an artifact's comparison. A non-nil Mismatch means
// the divergence still reproduces; nil means it no longer does (fixed).
func ReplayDir(dir string) (*Mismatch, error) {
	c, cfg, err := ReadArtifact(dir)
	if err != nil {
		return nil, err
	}
	return Check(c, cfg)
}
