package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/capture"
)

// E8: "Contrary to what has been written, an efficient stream database
// can execute complex queries over very high speed data streams" (§4) —
// the regex query needs no sampling or approximation below the capture
// knee: loss stays at zero until the stack saturates, then rises sharply
// (the graceful/ungraceful boundary), rather than degrading smoothly from
// low rates as sampling-based designs assume.
//
// We sweep offered load on the host-LFTA configuration and record loss
// and the fraction of HFTA results still produced, plus the §4 QoS
// heuristic: when drops happen they hit raw packets (least processed),
// never the aggregated results in flight.

// E8Row is one offered-load point.
type E8Row struct {
	TotalMbps  float64
	LossPct    float64
	MatchedPct float64 // HFTA inputs produced vs expected at zero loss
}

// E8 sweeps the offered load.
func E8(seconds float64, rates []float64) ([]E8Row, error) {
	pipe, err := CompiledHTTPPipeline()
	if err != nil {
		return nil, err
	}
	par := capture.DefaultParams()

	// Baseline matched count at a trivially sustainable rate, scaled per
	// offered packet (port-80 share is fixed at 60 Mbit/s).
	base, err := capture.RunConfiguration(capture.ModeHostLFTA, par, capture.DefaultWorkload(0), pipe, seconds)
	if err != nil {
		return nil, err
	}
	expectedMatched := float64(base.Matched)

	var rows []E8Row
	for _, rate := range rates {
		bg := rate - 60
		if bg < 0 {
			bg = 0
		}
		stats, err := capture.RunConfiguration(capture.ModeHostLFTA, par, capture.DefaultWorkload(bg), pipe, seconds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E8Row{
			TotalMbps:  rate,
			LossPct:    stats.LossRate() * 100,
			MatchedPct: 100 * float64(stats.Matched) / expectedMatched,
		})
	}
	return rows, nil
}

// PrintE8 renders the sweep.
func PrintE8(w io.Writer, rows []E8Row) {
	fmt.Fprintln(w, "E8: complex queries without sampling — loss stays zero until the capture knee (§4)")
	fmt.Fprintf(w, "  %10s %10s %14s\n", "offered", "loss", "HTTP matched")
	for _, r := range rows {
		fmt.Fprintf(w, "  %7.0f Mb %8.2f%% %13.1f%%\n", r.TotalMbps, r.LossPct, r.MatchedPct)
	}
}
