package experiments

import (
	"fmt"
	"io"
	"time"

	"gigascope/internal/pkt"
	"gigascope/internal/rts"
)

// E9: RSS shard scaling. The paper ran one capture thread per interface on
// a dual-CPU host (§5); modern NICs hash each packet's flow tuple and
// steer it to one of N receive queues, one core each. E9 runs the E5
// deployment mix with the capture path sharded at increasing widths and
// measures wall-clock throughput, demonstrating that per-shard LFTA
// instances (shard-local aggregate tables, no shared lock on the hot
// path) scale the capture side across cores while the reunifying merge
// keeps downstream ordering intact.
//
// Unlike E5, the clock stops after Stop(): sharded execution is
// asynchronous, so queued shard work must drain before the comparison is
// fair to the single-core inline path.

// E9Row is one shard count's measurement.
type E9Row struct {
	Shards        int // 1 = unsharded inline execution
	Packets       uint64
	WallSeconds   float64
	PktsPerSecond float64
	Speedup       float64 // vs the Shards=1 row
}

// E9 sweeps the shard counts over the E5 mix with `packets` packets per
// run.
func E9(packets int, shardCounts []int) ([]E9Row, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	rows := make([]E9Row, 0, len(shardCounts))
	base := 0.0
	for _, s := range shardCounts {
		r, err := e9Run(packets, s)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.PktsPerSecond
		}
		r.Speedup = r.PktsPerSecond / base
		rows = append(rows, r)
	}
	return rows, nil
}

// e9Run pushes the E5 workload through the runtime at one shard width,
// measuring from first inject to full drain (Stop).
func e9Run(packets, shards int) (E9Row, error) {
	cat, err := newCatalog()
	if err != nil {
		return E9Row{}, err
	}
	cfg := rts.Config{RingSize: 8192}
	if shards > 1 {
		cfg.Shards = shards
	}
	mgr := rts.NewManager(cat, cfg)
	for _, q := range E5Queries {
		cq, err := compileQuery(cat, q, nil)
		if err != nil {
			return E9Row{}, err
		}
		if err := mgr.AddQuery(cq, nil); err != nil {
			return E9Row{}, err
		}
	}
	var subs []*rts.Subscription
	for _, name := range []string{"e5_port_rate", "e5_talkers", "e5_web_rate"} {
		sub, err := mgr.Subscribe(name, 8192)
		if err != nil {
			return E9Row{}, err
		}
		subs = append(subs, sub)
	}
	done := make(chan uint64, len(subs))
	for _, sub := range subs {
		go func(s *rts.Subscription) {
			var n uint64
			for b := range s.C {
				n += uint64(b.Tuples())
			}
			done <- n
		}(sub)
	}
	if err := mgr.Start(); err != nil {
		return E9Row{}, err
	}

	g0, err := e5Generator(31)
	if err != nil {
		return E9Row{}, err
	}
	g1, err := e5Generator(32)
	if err != nil {
		return E9Row{}, err
	}
	const pollWindow = 256
	half := packets / 2
	p0 := make([]pkt.Packet, half)
	p1 := make([]pkt.Packet, half)
	for i := 0; i < half; i++ {
		p0[i], _ = g0.Next()
		p1[i], _ = g1.Next()
	}
	w0 := make([]*pkt.Packet, 0, pollWindow)
	w1 := make([]*pkt.Packet, 0, pollWindow)

	start := time.Now()
	for i := 0; i < half; i++ {
		w0 = append(w0, &p0[i])
		w1 = append(w1, &p1[i])
		if len(w0) == pollWindow || i == half-1 {
			mgr.InjectBatch("eth0", w0)
			mgr.InjectBatch("eth1", w1)
			w0 = w0[:0]
			w1 = w1[:0]
		}
	}
	mgr.Stop()
	elapsed := time.Since(start).Seconds()
	var results uint64
	for range subs {
		results += <-done
	}
	if results == 0 {
		return E9Row{}, fmt.Errorf("experiments: E9 (shards=%d) produced no aggregate results", shards)
	}
	total := uint64(2 * half)
	return E9Row{
		Shards:        shards,
		Packets:       total,
		WallSeconds:   elapsed,
		PktsPerSecond: float64(total) / elapsed,
	}, nil
}

// PrintE9 renders the sweep.
func PrintE9(w io.Writer, rows []E9Row) {
	fmt.Fprintln(w, "E9: RSS shard scaling — E5 deployment mix, capture path sharded across cores")
	fmt.Fprintf(w, "  %-7s %12s %9s %14s %8s\n", "shards", "packets", "wall", "pkts/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7d %12d %8.2fs %14.0f %7.2fx\n",
			r.Shards, r.Packets, r.WallSeconds, r.PktsPerSecond, r.Speedup)
	}
}
