package experiments

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"gigascope/internal/capture"
	"gigascope/internal/funcs"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// E11: the approximate aggregation tier. Part A quantifies the
// exact-vs-sketched trade at growing flow counts: the same traffic runs
// through an exact query (count_distinct + quantile) and its sketched twin
// (approx_distinct + approx_quantile), comparing answer error against
// aggregate-table memory. The sketches hold a fixed footprint regardless
// of cardinality while the exact states grow linearly, so the memory ratio
// widens with the flow count. Part B closes the loop with the overload
// controller: with DemoteFirst set, the first throttle action demotes the
// target's exact aggregates to their sketched twins — trading bounded
// answer error for memory and work — and only sustained overload after
// that cuts the sampling rate (unbounded error by omission). The decision
// sequence is read back from the SYSMON overload stream.

// E11Row is one flow-count cell of the quality/memory comparison.
type E11Row struct {
	Flows          int
	ExactBytes     int64   // aggregate-table memory of the exact query
	SketchBytes    int64   // same for the sketched twin
	MemRatio       float64 // ExactBytes / SketchBytes
	ExactDistinct  uint64  // exact count_distinct answer (= Flows)
	ApproxDistinct uint64  // HLL estimate
	DistinctErrPct float64 // |approx-exact| / exact
	ExactP90       float64 // exact 0.9-quantile of total_length
	ApproxP90      float64 // DDSketch estimate
	P90ErrPct      float64
}

// E11 runs the comparison at each flow count. Both queries see the same
// packets in the same manager; memory is sampled after injection while the
// aggregation groups are still open.
func E11(flowCounts []int) ([]E11Row, error) {
	rows := make([]E11Row, 0, len(flowCounts))
	for _, n := range flowCounts {
		row, err := e11Quality(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e11Quality(flows int) (E11Row, error) {
	cat, err := newCatalog()
	if err != nil {
		return E11Row{}, err
	}
	mgr := rts.NewManager(cat, rts.Config{RingSize: 4096})
	exact, err := compileQuery(cat, `
		DEFINE { query_name e11_exact; }
		SELECT tb, count_distinct(srcIP), quantile(total_length, 0.9) FROM eth0.TCP
		GROUP BY time/3600 as tb`, nil)
	if err != nil {
		return E11Row{}, err
	}
	sketched, err := compileQuery(cat, `
		DEFINE { query_name e11_sketch; }
		SELECT tb, approx_distinct(srcIP), approx_quantile(total_length, 0.9) FROM eth0.TCP
		GROUP BY time/3600 as tb`, nil)
	if err != nil {
		return E11Row{}, err
	}
	if err := mgr.AddQuery(exact, nil); err != nil {
		return E11Row{}, err
	}
	if err := mgr.AddQuery(sketched, nil); err != nil {
		return E11Row{}, err
	}
	collect := func(name string) (chan []schema.Tuple, error) {
		sub, err := mgr.Subscribe(name, 1024)
		if err != nil {
			return nil, err
		}
		out := make(chan []schema.Tuple, 1)
		go func() {
			var rows []schema.Tuple
			for b := range sub.C {
				for _, m := range b {
					if !m.IsHeartbeat() {
						rows = append(rows, m.Tuple.Clone())
					}
				}
			}
			out <- rows
		}()
		return out, nil
	}
	exactOut, err := collect("e11_exact")
	if err != nil {
		return E11Row{}, err
	}
	sketchOut, err := collect("e11_sketch")
	if err != nil {
		return E11Row{}, err
	}
	if err := mgr.Start(); err != nil {
		return E11Row{}, err
	}

	// One packet per flow, every srcIP distinct, total_length spread over 64
	// sizes so the 0.9-quantile is nontrivial. All timestamps land in one
	// hour bucket: the groups stay open until shutdown, so the memory
	// sample below sees the fully-populated aggregate tables.
	const pollWindow = 256
	payload := make([]byte, 1024)
	ps := make([]pkt.Packet, pollWindow)
	w := make([]*pkt.Packet, 0, pollWindow)
	for i := 0; i < flows; i++ {
		ps[len(w)] = pkt.BuildTCP(1_000_000+uint64(i), pkt.TCPSpec{
			SrcIP: 0x0a000000 + uint32(i), DstIP: 0x0a000002,
			SrcPort: 30000, DstPort: 80,
			Payload: payload[:(i%64)*16],
		})
		w = append(w, &ps[len(w)])
		if len(w) == pollWindow || i == flows-1 {
			mgr.InjectBatch("eth0", w)
			w = w[:0]
		}
	}

	row := E11Row{Flows: flows}
	if row.ExactBytes, err = mgr.StateBytes("e11_exact"); err != nil {
		return E11Row{}, err
	}
	if row.SketchBytes, err = mgr.StateBytes("e11_sketch"); err != nil {
		return E11Row{}, err
	}
	mgr.Stop()

	er, sr := <-exactOut, <-sketchOut
	if len(er) != 1 || len(sr) != 1 {
		return E11Row{}, fmt.Errorf("experiments: E11 flows=%d: got %d exact / %d sketched rows, want 1 each",
			flows, len(er), len(sr))
	}
	row.ExactDistinct = er[0][1].Uint()
	row.ApproxDistinct = sr[0][1].Uint()
	row.ExactP90 = er[0][2].Float()
	row.ApproxP90 = sr[0][2].Float()
	if row.ExactDistinct > 0 {
		row.DistinctErrPct = 100 * math.Abs(float64(row.ApproxDistinct)-float64(row.ExactDistinct)) /
			float64(row.ExactDistinct)
	}
	if row.ExactP90 > 0 {
		row.P90ErrPct = 100 * math.Abs(row.ApproxP90-row.ExactP90) / row.ExactP90
	}
	if row.SketchBytes > 0 {
		row.MemRatio = float64(row.ExactBytes) / float64(row.SketchBytes)
	}
	return row, nil
}

// E11Decision is one SYSMON overload-stream row of the part B run,
// reduced to the demotion-relevant columns.
type E11Decision struct {
	Rate    float64
	Demoted bool
	Eps     float64
	Delta   float64
}

// E11ControlRow summarizes the closed-loop demote-first run.
type E11ControlRow struct {
	Packets          uint64
	RingDrops        uint64
	Decisions        []E11Decision
	FirstActionEased bool    // the first overload action was a demotion at full rate
	MinRate          float64 // deepest $srate cut after demotion
	DemotedAtEnd     bool
}

// E11Control drives the e10 overload workload with DemoteFirst set: the
// controller must demote the target to sketched aggregation before it
// touches the sampling rate.
func E11Control(packets int) (E11ControlRow, error) {
	cat, err := newCatalog()
	if err != nil {
		return E11ControlRow{}, err
	}
	mgr := rts.NewManager(cat, rts.Config{RingSize: 8192})
	cq, err := compileQuery(cat, `
		DEFINE { query_name e11_load; param srate float; }
		SELECT tb, count_distinct(srcIP) FROM eth0.TCP
		WHERE samplehash(srcIP, $srate)
		GROUP BY time/1 as tb`, nil)
	if err != nil {
		return E11ControlRow{}, err
	}
	if err := mgr.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		return E11ControlRow{}, err
	}

	var rateBits atomic.Uint64
	rateBits.Store(math.Float64bits(1.0))
	st, err := capture.NewStack(capture.ModeHostLFTA, e10Params(), capture.Pipeline{
		Filter: func(p *pkt.Packet) bool {
			ip, ok := p.U32(pkt.EthHeaderLen + 12)
			if !ok {
				return false
			}
			return funcs.SampleFraction(schema.MakeIP(uint32(ip)), math.Float64frombits(rateBits.Load()))
		},
	}, 10)
	if err != nil {
		return E11ControlRow{}, err
	}
	mgr.Interface("eth0").BindCapture(st)

	err = mgr.AttachOverloadController(rts.OverloadConfig{
		Iface:         "eth0",
		Target:        "e11_load",
		Param:         "srate",
		HighWater:     64,
		HoldIntervals: 4,
		IntervalUsec:  50_000,
		DemoteFirst:   true,
		OnApply: func(r float64) {
			rateBits.Store(math.Float64bits(r))
		},
	})
	if err != nil {
		return E11ControlRow{}, err
	}
	ctrlSub, err := mgr.Subscribe(rts.OverloadStream, 4096)
	if err != nil {
		return E11ControlRow{}, err
	}
	ctrlDone := make(chan []E11Decision, 1)
	go func() {
		var ds []E11Decision
		for b := range ctrlSub.C {
			for _, m := range b {
				if m.IsHeartbeat() {
					continue
				}
				ds = append(ds, E11Decision{
					Rate:    m.Tuple[3].Float(),
					Demoted: m.Tuple[8].Bool(),
					Eps:     m.Tuple[9].Float(),
					Delta:   m.Tuple[10].Float(),
				})
			}
		}
		ctrlDone <- ds
	}()
	if err := mgr.Start(); err != nil {
		return E11ControlRow{}, err
	}

	const pollWindow = 256
	ps := make([]pkt.Packet, pollWindow)
	w := make([]*pkt.Packet, 0, pollWindow)
	for i := 0; i < packets; i++ {
		ts := 1_000_000 + uint64(i)*e10Gap
		ps[len(w)] = pkt.BuildTCP(ts, pkt.TCPSpec{
			SrcIP: 0x0a000000 + uint32(i), DstIP: 0x0a000002,
			SrcPort: 30000, DstPort: 80,
		})
		w = append(w, &ps[len(w)])
		if len(w) == pollWindow || i == packets-1 {
			mgr.InjectBatch("eth0", w)
			w = w[:0]
		}
	}
	mgr.Stop()

	row := E11ControlRow{Decisions: <-ctrlDone, MinRate: 1.0}
	cs := st.Stats()
	row.Packets = cs.Offered
	row.RingDrops = cs.RingDrops
	if len(row.Decisions) == 0 {
		return E11ControlRow{}, fmt.Errorf("experiments: E11 control run emitted no overload decisions")
	}
	// The stream reports every decision interval, including pre-overload
	// observation rows; the first row showing any action must be a
	// demotion at the still-untouched full rate.
	for _, d := range row.Decisions {
		if d.Demoted || d.Rate < 1.0 {
			row.FirstActionEased = d.Demoted && d.Rate == 1.0
			break
		}
	}
	for _, d := range row.Decisions {
		if d.Rate < row.MinRate {
			row.MinRate = d.Rate
		}
	}
	row.DemotedAtEnd = row.Decisions[len(row.Decisions)-1].Demoted
	return row, nil
}

// PrintE11 renders both parts.
func PrintE11(w io.Writer, rows []E11Row, ctrl E11ControlRow) {
	fmt.Fprintln(w, "E11: sketch tier — exact vs approximate aggregation quality and memory")
	fmt.Fprintf(w, "  %-9s %12s %12s %9s %10s %10s %8s %9s %9s %8s\n",
		"flows", "exactB", "sketchB", "mem", "distinct", "approx", "err", "p90", "approx90", "err")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9d %12d %12d %8.1fx %10d %10d %7.2f%% %9.0f %9.0f %7.2f%%\n",
			r.Flows, r.ExactBytes, r.SketchBytes, r.MemRatio,
			r.ExactDistinct, r.ApproxDistinct, r.DistinctErrPct,
			r.ExactP90, r.ApproxP90, r.P90ErrPct)
	}
	fmt.Fprintln(w, "  demote-first overload control (SYSMON decision sequence):")
	fmt.Fprintf(w, "    packets=%d ringdrops=%d decisions=%d minrate=%.3f\n",
		ctrl.Packets, ctrl.RingDrops, len(ctrl.Decisions), ctrl.MinRate)
	show := ctrl.Decisions
	if len(show) > 8 {
		show = show[:8]
	}
	for i, d := range show {
		fmt.Fprintf(w, "    step %d: rate=%.3f demoted=%v eps=%.3f delta=%.3f\n",
			i, d.Rate, d.Demoted, d.Eps, d.Delta)
	}
	if ctrl.FirstActionEased {
		fmt.Fprintln(w, "    first overload action: demote to sketched aggregation (rate untouched)")
	} else {
		fmt.Fprintln(w, "    WARNING: first overload action was not a full-rate demotion")
	}
}
