module gigascope

go 1.22
