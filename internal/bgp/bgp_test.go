package bgp

import (
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := Update{
		Peer: 0xc0a8ff01, Prefix: 0x0a400000, MaskLen: 12, Kind: KindWithdraw,
		OriginAS: 7018, MED: 42, Time: 1234, Seq: 99,
	}
	p := u.Encode(1_234_500_000)
	got, err := Decode(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("round trip: got %+v, want %+v", got, u)
	}
	short := pkt.Packet{Data: p.Data[:5]}
	if _, err := Decode(&short); err == nil {
		t.Error("short record decoded")
	}
}

func TestInterpFunctionsMatchDecode(t *testing.T) {
	u := Update{Peer: 0xc0a8ff02, Prefix: 0x0a000000, MaskLen: 8, Kind: KindAnnounce,
		OriginAS: 701, MED: 7, Time: 500, Seq: 3}
	p := u.Encode(500_000_000)
	cases := map[string]uint64{
		"bgp_masklen":   8,
		"bgp_kind":      0,
		"bgp_origin_as": 701,
		"bgp_med":       7,
		"bgp_time":      500,
		"bgp_seq":       3,
	}
	for name, want := range cases {
		f, ok := pkt.LookupInterp(name)
		if !ok {
			t.Fatalf("%s unregistered", name)
		}
		v, ok := f.Extract(&p)
		if !ok || v.Uint() != want {
			t.Errorf("%s = %v, %v; want %d", name, v, ok, want)
		}
	}
	f, _ := pkt.LookupInterp("bgp_prefix")
	if v, _ := f.Extract(&p); v.IP() != u.Prefix {
		t.Errorf("bgp_prefix = %v", v)
	}
}

func TestSchemaValid(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	i, c := s.Col("seq")
	if i < 0 || c.Ordering.Kind != schema.OrderIncreasingInGroup {
		t.Errorf("seq ordering = %v", c)
	}
	cat := schema.NewCatalog()
	if err := Register(cat); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorOrderingAndFlaps(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 1, Peers: 3, Prefixes: 100,
		BaselinePerSec: 10, FlappingPrefixes: 1, FlapPerSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	timeCheck := schema.NewOrderChecker(schema.Ordering{Kind: schema.OrderIncreasing}, nil)
	seqCheck := schema.NewOrderChecker(
		schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"peer"}},
		func(tup schema.Tuple) string { return tup[0].String() },
	)
	perPrefix := map[uint32]int{}
	peers := map[uint32]bool{}
	for i := 0; i < 5000; i++ {
		p := g.Next()
		u, err := Decode(&p)
		if err != nil {
			t.Fatal(err)
		}
		if err := timeCheck.Observe(schema.MakeUint(uint64(u.Time)), nil); err != nil {
			t.Fatalf("time order: %v", err)
		}
		key := schema.Tuple{schema.MakeIP(u.Peer), schema.MakeUint(uint64(u.Seq))}
		if err := seqCheck.Observe(key[1], key); err != nil {
			t.Fatalf("per-peer seq: %v", err)
		}
		perPrefix[u.Prefix]++
		peers[u.Peer] = true
	}
	if len(peers) != 3 {
		t.Errorf("peers = %d", len(peers))
	}
	// Flapping prefixes must dominate the update counts.
	max := 0
	for _, c := range perPrefix {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Errorf("hottest prefix has %d updates; flaps not visible", max)
	}
	if _, err := NewGenerator(Config{Peers: 1, Prefixes: 1, FlappingPrefixes: 5}); err == nil {
		t.Error("invalid config accepted")
	}
}

// End-to-end: the flap-detection query over generated updates.
func TestBGPFlapQueryEndToEnd(t *testing.T) {
	cat := schema.NewCatalog()
	if err := Register(cat); err != nil {
		t.Fatal(err)
	}
	q, err := gsql.ParseQuery(`
		DEFINE { query_name flaps; }
		SELECT tb, prefix, count(*) as updates
		FROM BGPUPDATE
		GROUP BY time/60 as tb, prefix
		HAVING count(*) > 30`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.Compile(cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := make([]*core.Instance, len(cq.Nodes))
	for i, n := range cq.Nodes {
		if insts[i], err = n.Instantiate(nil); err != nil {
			t.Fatal(err)
		}
	}
	var flagged []schema.Tuple
	sink := func(m exec.Message) {
		if !m.IsHeartbeat() {
			flagged = append(flagged, m.Tuple)
		}
	}
	mid := func(m exec.Message) { insts[1].Op.Push(0, m, sink) }
	g, err := NewGenerator(Config{Seed: 2, Peers: 2, Prefixes: 200,
		BaselinePerSec: 4, FlappingPrefixes: 1, FlapPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		p := g.Next()
		if err := insts[0].PushPacket(&p, mid); err != nil {
			t.Fatal(err)
		}
	}
	insts[0].Op.FlushAll(mid)
	insts[1].Op.FlushAll(sink)
	if len(flagged) == 0 {
		t.Fatal("no flaps detected")
	}
	// Each flagged row must be one of the flapping prefixes: > 30
	// updates/minute vs baseline 2/s spread over 400 prefixes.
	seen := map[uint32]bool{}
	for _, row := range flagged {
		seen[row[1].IP()] = true
		if row[2].Uint() <= 30 {
			t.Errorf("HAVING violated: %v", row)
		}
	}
	if len(seen) > 2 {
		t.Errorf("flagged %d distinct prefixes, expected at most the 2 flapping ones", len(seen))
	}
}
