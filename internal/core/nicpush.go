package core

import (
	"gigascope/internal/gsql"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// NIC pushdown (paper §3): "Other NICs allow us to specify a bpf (berkley
// packet filter) preliminary filter, and to specify the number of bytes of
// qualifying packets (the snap length) to be returned (that is, we can
// push a simple selection/projection operator into the NIC)."
//
// pushdown derives, for an LFTA node over a protocol source:
//   - a CNF filter over raw header fields from the WHERE conjuncts whose
//     comparisons are (column op constant) with the column being a direct
//     header read (RawRef);
//   - the snap length: the maximum capture prefix any referenced
//     interpretation function needs, or full capture if any referenced
//     field needs the whole packet.
//
// The LFTA re-evaluates its full predicate (the filter is preliminary, as
// on real NICs), so pushdown is a pure optimization: it never changes
// results, only reduces the packets and bytes crossing into the host.
func (a *analyzer) pushdown(n *Node, q *gsql.Query) (*nic.Program, int) {
	src := n.Sources[0]
	prog := &nic.Program{}

	for _, cj := range conjuncts(q.Where) {
		if clause, ok := a.clauseFor(cj, src); ok {
			prog.Clauses = append(prog.Clauses, clause)
		}
	}
	prog.SnapLen = a.snapLen(n, src)
	if len(prog.Clauses) == 0 && prog.SnapLen == 0 {
		return nil, 0
	}
	return prog, prog.SnapLen
}

// snapLen computes the capture prefix needed by the node's referenced
// columns; 0 means the full packet is required.
func (a *analyzer) snapLen(n *Node, src SourceRef) int {
	max := pkt.EthHeaderLen
	for _, idx := range n.needCols {
		col := &src.Schema.Cols[idx]
		spec, ok := pkt.LookupInterp(col.Interp)
		if !ok {
			return 0 // unknown extractor: play safe, capture everything
		}
		if spec.NeedAll {
			return 0
		}
		if spec.NeedBytes > max {
			max = spec.NeedBytes
		}
	}
	return max
}

// clauseFor converts one conjunct into a NIC filter clause (a disjunction
// of raw-field comparisons), reporting false when any disjunct cannot be
// expressed as a header read against a constant.
func (a *analyzer) clauseFor(e gsql.Expr, src SourceRef) (nic.Clause, bool) {
	var clause nic.Clause
	for _, d := range disjuncts(e) {
		cmp, ok := a.cmpFor(d, src)
		if !ok {
			return nil, false
		}
		clause = append(clause, cmp)
	}
	return clause, len(clause) > 0
}

// disjuncts flattens OR-ed terms.
func disjuncts(e gsql.Expr) []gsql.Expr {
	if b, ok := e.(*gsql.BinaryExpr); ok && b.Op == gsql.OpOr {
		return append(disjuncts(b.L), disjuncts(b.R)...)
	}
	return []gsql.Expr{e}
}

var nicOps = map[gsql.Op]nic.CmpOp{
	gsql.OpEq: nic.CmpEq, gsql.OpNe: nic.CmpNe,
	gsql.OpLt: nic.CmpLt, gsql.OpLe: nic.CmpLe,
	gsql.OpGt: nic.CmpGt, gsql.OpGe: nic.CmpGe,
}

// cmpFor matches (column op constant) or (constant op column) where the
// column's interpretation function is a raw header read.
func (a *analyzer) cmpFor(e gsql.Expr, src SourceRef) (nic.Cmp, bool) {
	b, ok := e.(*gsql.BinaryExpr)
	if !ok || !b.Op.Comparison() {
		return nic.Cmp{}, false
	}
	col, cval, op := b.L, b.R, b.Op
	if _, isConst := col.(*gsql.Const); isConst {
		col, cval, op = b.R, b.L, b.Op.Flip()
	}
	cref, ok := col.(*gsql.ColRef)
	if !ok {
		return nic.Cmp{}, false
	}
	k, ok := cval.(*gsql.Const)
	if !ok {
		return nic.Cmp{}, false
	}
	switch k.Val.Type {
	case schema.TUint, schema.TInt, schema.TIP, schema.TBool:
	default:
		return nic.Cmp{}, false
	}
	i, c := src.Schema.Col(cref.Name)
	if i < 0 {
		return nic.Cmp{}, false
	}
	spec, ok := pkt.LookupInterp(c.Interp)
	if !ok || spec.Raw == nil {
		return nic.Cmp{}, false
	}
	nop, ok := nicOps[op]
	if !ok {
		return nic.Cmp{}, false
	}
	return nic.Cmp{Raw: *spec.Raw, Op: nop, Val: k.Val.Uint()}, true
}
