package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gigascope/internal/exec"
	"gigascope/internal/pkt"
)

func TestPushdownProgramNeverDropsQualifyingPackets(t *testing.T) {
	// The NIC pre-filter must be exact for the conjuncts it absorbs: a
	// packet passing the LFTA predicate always passes the NIC program
	// (otherwise pushdown would change results). Property-test against
	// random packets.
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name push; }
		SELECT time FROM tcp
		WHERE destPort = 80 and ipversion = 4 and (protocol = 6 or protocol = 17) and ttl > 5`, nil)
	n := cq.Output()
	if n.NICProgram == nil || len(n.NICProgram.Clauses) != 4 {
		t.Fatalf("program = %v", n.NICProgram)
	}
	inst, err := n.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			var p pkt.Packet
			port := uint16(r.Intn(200))
			ttl := uint8(r.Intn(12))
			if r.Intn(2) == 0 {
				p = pkt.BuildTCP(uint64(i), pkt.TCPSpec{
					SrcIP: r.Uint32(), DstIP: r.Uint32(),
					SrcPort: 1, DstPort: port, TTL: ttl,
				})
			} else {
				p = pkt.BuildUDP(uint64(i), pkt.UDPSpec{
					SrcIP: r.Uint32(), DstIP: r.Uint32(),
					SrcPort: 1, DstPort: port, TTL: ttl,
				})
			}
			var out []exec.Message
			inst.PushPacket(&p, exec.Collect(&out))
			lftaPass := len(out) > 0
			nicPass := n.NICProgram.Match(&p)
			if lftaPass && !nicPass {
				return false // NIC dropped a qualifying packet
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPushdownSkipsNonRawConjuncts(t *testing.T) {
	cat := newCatalog(t)
	// srcIP = destIP is column-to-column: not pushable; payload regex is
	// expensive and in the HFTA anyway; destPort = 80 is pushable.
	cq := compile(t, cat, `
		DEFINE { query_name mixed; }
		SELECT time FROM tcp
		WHERE destPort = 80 and srcIP = destIP`, nil)
	n := cq.Output()
	if n.NICProgram == nil || len(n.NICProgram.Clauses) != 1 {
		t.Fatalf("program = %v", n.NICProgram)
	}
	// And the LFTA still applies the full predicate: a port-80 packet
	// with srcIP != destIP is dropped by the LFTA even though the NIC
	// passes it.
	inst, err := n.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.BuildTCP(1, pkt.TCPSpec{SrcIP: 1, DstIP: 2, DstPort: 80})
	var out []exec.Message
	inst.PushPacket(&p, exec.Collect(&out))
	if len(out) != 0 {
		t.Error("LFTA passed packet failing the non-pushable conjunct")
	}
	if !n.NICProgram.Match(&p) {
		t.Error("NIC rejected pushable-conjunct-passing packet")
	}
}

func TestPushdownParamNotPushable(t *testing.T) {
	cat := newCatalog(t)
	cq := compile(t, cat, `
		DEFINE { query_name parq; param port uint; }
		SELECT time FROM tcp WHERE destPort = $port`, nil)
	n := cq.Output()
	// Parameters change at runtime; the static NIC program cannot absorb
	// them. Only the snap length is pushed.
	if n.NICProgram != nil && len(n.NICProgram.Clauses) != 0 {
		t.Errorf("param comparison pushed: %v", n.NICProgram)
	}
}

func TestSnapLenGrowsWithReferencedFields(t *testing.T) {
	cat := newCatalog(t)
	timeOnly := compile(t, cat, `DEFINE { query_name s1; } SELECT time FROM tcp`, nil)
	ports := compile(t, cat, `DEFINE { query_name s2; } SELECT time, destPort FROM tcp`, nil)
	pay := compile(t, cat, `DEFINE { query_name s3; } SELECT time, payload FROM tcp`, nil)
	if a, b := timeOnly.Output().SnapLen, ports.Output().SnapLen; a > b || b == 0 {
		t.Errorf("snap lens: time-only %d, ports %d", a, b)
	}
	if pay.Output().SnapLen != 0 {
		t.Errorf("payload query snap = %d, want full", pay.Output().SnapLen)
	}
}
