package rts

import (
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/schema"
)

// The controller throttles the target's sampling rate multiplicatively
// while the watched drop counters climb, then restores it with hysteresis
// once they stay quiet — and the rate it pushes really governs the
// target's LFTA filter.
func TestOverloadControllerThrottleAndRestore(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name tq; param srate float; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and samplehash(srcIP, $srate)`)
	if err := m.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		t.Fatal(err)
	}
	var applied []float64
	err := m.AttachOverloadController(OverloadConfig{
		Target:        "tq",
		Param:         "srate",
		HighWater:     10,
		HoldIntervals: 2,
		IntervalUsec:  100_000,
		OnApply:       func(rate float64) { applied = append(applied, rate) },
	})
	if err != nil {
		t.Fatal(err)
	}
	decSub, err := m.Subscribe(OverloadStream, 256)
	if err != nil {
		t.Fatal(err)
	}
	outSub, err := m.Subscribe("tq", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	qn := m.nodes["tq"]
	clock := uint64(0)
	step := func(drops uint64) {
		qn.pub.drops.Add(drops)
		clock += 100_000
		m.AdvanceClock(clock)
	}

	// Three overloaded intervals: 1.0 -> 0.5 -> 0.25 -> 0.125.
	step(100)
	step(100)
	step(100)
	if len(applied) != 3 || applied[2] != 0.125 {
		t.Fatalf("throttle steps = %v, want [0.5 0.25 0.125]", applied)
	}

	// The pushed rate governs the filter: of 200 distinct source IPs, the
	// query passes exactly the hash-sampled subset at rate 0.125.
	want := 0
	base := clock
	for i := 0; i < 200; i++ {
		ip := uint32(0x0a000000 + i)
		if funcs.SampleFraction(schema.MakeIP(ip), 0.125) {
			want++
		}
		p := tcpPkt(1, ip, 80, "x")
		p.TS = base + uint64(i+1) // microsecond apart: no interval boundary crossed
		m.Inject("", &p)
	}
	if want == 0 || want == 200 {
		t.Fatalf("degenerate sample: want = %d of 200", want)
	}
	clock += 200

	// Quiet intervals: HoldIntervals=2 per restore step, StepUp 1.25
	// capped at Full. 0.125 -> 0.15625 -> ... -> 1.0.
	for i := 0; i < 40; i++ {
		step(0)
	}
	if len(applied) == 3 {
		t.Fatal("rate never restored after recovery")
	}
	if got := applied[len(applied)-1]; got != 1.0 {
		t.Fatalf("final rate = %v, want full restore to 1.0", got)
	}
	// Restoring is stepwise and slower than shedding: strictly increasing
	// after the throttle phase.
	for i := 4; i < len(applied); i++ {
		if applied[i] <= applied[i-1] {
			t.Fatalf("restore not monotone: %v", applied)
		}
	}

	m.Stop()
	rows := drain(t, outSub)
	if len(rows) != want {
		t.Fatalf("target passed %d tuples at rate 0.125, want %d", len(rows), want)
	}

	// The decision stream carries one row per interval with the applied
	// rate; the throttled flag tracks rate < Full.
	decRows := drain(t, decSub)
	if len(decRows) == 0 {
		t.Fatal("no decision tuples on the controller stream")
	}
	sawThrottled := false
	for _, r := range decRows {
		rate := r[3].F
		throttled := r[6].U != 0
		if throttled != (rate < 1.0) {
			t.Fatalf("decision row inconsistent: rate=%v throttled=%v", rate, throttled)
		}
		if throttled {
			sawThrottled = true
		}
		if appliedOK := r[7].U != 0; !appliedOK {
			t.Fatalf("decision row reports failed SetParams: %v", r)
		}
	}
	if !sawThrottled {
		t.Fatal("no throttled decision rows recorded")
	}
}

// Hysteresis dead band: drop deltas between LowWater and HighWater
// advance neither run, so the rate holds steady.
func TestOverloadControllerDeadBand(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name dq; param srate float; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and samplehash(srcIP, $srate)`)
	if err := m.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		t.Fatal(err)
	}
	var applied []float64
	err := m.AttachOverloadController(OverloadConfig{
		Target:        "dq",
		Param:         "srate",
		HighWater:     100,
		LowWater:      0,
		HoldIntervals: 1,
		IntervalUsec:  100_000,
		OnApply:       func(rate float64) { applied = append(applied, rate) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	qn := m.nodes["dq"]
	// One trip below Min... first overload: 1.0 -> 0.5.
	qn.pub.drops.Add(1000)
	m.AdvanceClock(100_000)
	if len(applied) != 1 || applied[0] != 0.5 {
		t.Fatalf("applied = %v, want [0.5]", applied)
	}
	// In-band deltas (0 < 50 < 100): hold at 0.5, no restore, no throttle.
	clock := uint64(100_000)
	for i := 0; i < 10; i++ {
		qn.pub.drops.Add(50)
		clock += 100_000
		m.AdvanceClock(clock)
	}
	if len(applied) != 1 {
		t.Fatalf("dead band moved the rate: %v", applied)
	}
	m.Stop()
}

// The throttle floor: repeated overload never pushes the rate below Min.
func TestOverloadControllerFloor(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name fq; param srate float; }
		SELECT time FROM tcp WHERE samplehash(srcIP, $srate)`)
	if err := m.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		t.Fatal(err)
	}
	var last float64
	err := m.AttachOverloadController(OverloadConfig{
		Target:       "fq",
		Param:        "srate",
		Min:          0.1,
		IntervalUsec: 100_000,
		OnApply:      func(rate float64) { last = rate },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	qn := m.nodes["fq"]
	clock := uint64(0)
	for i := 0; i < 20; i++ {
		qn.pub.drops.Add(1000)
		clock += 100_000
		m.AdvanceClock(clock)
	}
	if last != 0.1 {
		t.Fatalf("rate = %v, want floor 0.1", last)
	}
	m.Stop()
}

func TestAttachOverloadControllerValidation(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	if err := m.AttachOverloadController(OverloadConfig{Param: "p"}); err == nil {
		t.Error("missing target accepted")
	}
	if err := m.AttachOverloadController(OverloadConfig{Target: "x"}); err == nil {
		t.Error("missing param accepted")
	}
	if err := m.AttachOverloadController(OverloadConfig{Target: "ghost", Param: "p"}); err == nil {
		t.Error("unregistered target accepted")
	}
}
