package gsql_test

import (
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// FuzzParseGSQL drives arbitrary source text through the parser and — when
// it parses — the compiler. Errors are the expected outcome for garbage
// input; any panic (including a schema-catalog lookup on an unknown name)
// is a bug.
func FuzzParseGSQL(f *testing.F) {
	seeds := []string{
		`SELECT time FROM tcp`,
		`DEFINE { query_name q; } SELECT time, srcIP FROM eth0.TCP WHERE destPort = 80`,
		`DEFINE { query_name agg; } SELECT tb, count(*), sum(len) FROM tcp GROUP BY time as tb`,
		`DEFINE { query_name p; param port uint; } SELECT time FROM tcp WHERE destPort = $port`,
		`SELECT time FROM udp WHERE samplehash(srcIP, 0.5)`,
		`DEFINE { query_name j; } SELECT s.time, r.srcIP FROM tcp s, udp r WHERE s.time = r.time`,
		`SELECT time FROM nosuchstream`,
		`SELECT nosuchcol FROM tcp`,
		`PROTOCOL base (time uint (increasing)) { }`,
		`SELECT time FROM tcp WHERE str_regex_match(payload, '^GET .*')`,
		`SELECT time FROM tcp HAVING count(*) > 3`,
		`SELECT 1 +`,
		`DEFINE { query_name x; } SELECT`,
		"SELECT time FROM tcp WHERE destPort = 80 and\x00",
		`SELECT time/0, srcIP|0xff FROM tcp GROUP BY time`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Fresh catalog per input: compilation registers output schemas, and
		// a shared catalog would make crashes order-dependent.
		cat := schema.NewCatalog()
		if err := pkt.RegisterBuiltins(cat); err != nil {
			t.Fatal(err)
		}
		script, err := gsql.ParseScript(src)
		if err != nil {
			return
		}
		for _, def := range script.Protocols {
			sc, err := core.ProtocolSchema(def)
			if err != nil {
				continue
			}
			_ = cat.Register(sc)
		}
		for _, q := range script.Queries {
			_, _ = core.Compile(cat, q, nil)
		}
	})
}
