package nic

import (
	"strings"
	"testing"

	"gigascope/internal/pkt"
)

func tcp80(payload int) pkt.Packet {
	return pkt.BuildTCP(1000, pkt.TCPSpec{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 30000, DstPort: 80, Payload: make([]byte, payload),
	})
}

func udp53() pkt.Packet {
	return pkt.BuildUDP(1000, pkt.UDPSpec{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 5353, DstPort: 53, Payload: []byte{1, 2, 3},
	})
}

func destPortCmp(op CmpOp, val uint64) Cmp {
	return Cmp{Raw: pkt.RawRef{Off: 36, Width: 2}, Op: op, Val: val}
}

func protoCmp(val uint64) Cmp {
	return Cmp{Raw: pkt.RawRef{Off: 23, Width: 1}, Op: CmpEq, Val: val}
}

func TestCmpOperators(t *testing.T) {
	p := tcp80(10)
	cases := []struct {
		cmp  Cmp
		want bool
	}{
		{destPortCmp(CmpEq, 80), true},
		{destPortCmp(CmpEq, 443), false},
		{destPortCmp(CmpNe, 443), true},
		{destPortCmp(CmpLt, 81), true},
		{destPortCmp(CmpLe, 80), true},
		{destPortCmp(CmpGt, 80), false},
		{destPortCmp(CmpGe, 80), true},
	}
	for _, c := range cases {
		if got := c.cmp.Match(&p); got != c.want {
			t.Errorf("%s = %v, want %v", c.cmp, got, c.want)
		}
	}
}

func TestCmpShortCaptureFails(t *testing.T) {
	p := tcp80(10)
	s := p.Snap(20)
	if destPortCmp(CmpEq, 80).Match(&s) {
		t.Error("comparison succeeded on short capture")
	}
}

func TestProgramCNF(t *testing.T) {
	// (port = 80 or port = 8080) and proto = 6
	prog := &Program{Clauses: []Clause{
		{destPortCmp(CmpEq, 80), destPortCmp(CmpEq, 8080)},
		{protoCmp(6)},
	}}
	p80 := tcp80(10)
	if !prog.Match(&p80) {
		t.Error("port 80 TCP rejected")
	}
	dns := udp53()
	if prog.Match(&dns) {
		t.Error("UDP DNS accepted")
	}
	if prog.Empty() {
		t.Error("program with clauses reported empty")
	}
	var nilProg *Program
	if !nilProg.Empty() {
		t.Error("nil program not empty")
	}
	s := prog.String()
	if !strings.Contains(s, "or") || !strings.Contains(s, "and") {
		t.Errorf("String() = %q", s)
	}
}

func TestMaskedFieldRead(t *testing.T) {
	// IP version: high nibble of byte 14.
	ver := Cmp{Raw: pkt.RawRef{Off: 14, Width: 1, Shift: 4, Mask: 0x0f}, Op: CmpEq, Val: 4}
	p := tcp80(10)
	if !ver.Match(&p) {
		t.Error("IP version 4 not matched")
	}
}

func TestDeviceTiers(t *testing.T) {
	prog := &Program{
		Clauses: []Clause{{destPortCmp(CmpEq, 80)}},
		SnapLen: 54,
	}

	dumb := NewDevice(CapDumb)
	if err := dumb.Install(prog); err == nil {
		t.Error("dumb device accepted a program")
	}
	p := tcp80(500)
	out, ok := dumb.Process(&p)
	if !ok || out.CapLen() != p.WireLen {
		t.Errorf("dumb device altered packet: %d bytes", out.CapLen())
	}

	bpf := NewDevice(CapBPF)
	if err := bpf.Install(prog); err != nil {
		t.Fatal(err)
	}
	out, ok = bpf.Process(&p)
	if !ok {
		t.Fatal("matching packet filtered")
	}
	if out.CapLen() != 54 {
		t.Errorf("snap: caplen = %d, want 54", out.CapLen())
	}
	if out.WireLen != p.WireLen {
		t.Error("snap changed wire length")
	}
	dns := udp53()
	if _, ok := bpf.Process(&dns); ok {
		t.Error("non-matching packet delivered")
	}
	if bpf.Delivered() != 1 || bpf.Filtered() != 1 {
		t.Errorf("counters = %d, %d", bpf.Delivered(), bpf.Filtered())
	}

	rts := NewDevice(CapRTS)
	if err := rts.Install(prog); err != nil {
		t.Fatal(err)
	}
	if rts.Capability().String() == "" {
		t.Error("empty capability name")
	}
}
