package core

import (
	"fmt"
	"strings"

	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// Join and merge analysis (paper §2.1, §2.2).

// sideOf classifies which sources an expression references: bit 0 = left,
// bit 1 = right.
func sideOf(e gsql.Expr, left, right SourceRef) int {
	mask := 0
	gsql.Walk(e, func(n gsql.Expr) bool {
		c, ok := n.(*gsql.ColRef)
		if !ok {
			return true
		}
		inL := refBinds(c, left)
		inR := refBinds(c, right)
		switch {
		case inL && inR:
			mask |= 3 // ambiguous: counts as both
		case inL:
			mask |= 1
		case inR:
			mask |= 2
		default:
			mask |= 4 // unresolvable
		}
		return true
	})
	return mask
}

func refBinds(c *gsql.ColRef, src SourceRef) bool {
	if c.Table != "" && !strings.EqualFold(c.Table, src.Binding) && !strings.EqualFold(c.Table, src.Schema.Name) {
		return false
	}
	return src.Schema.HasCol(c.Name)
}

// ordTerm is one side of a window constraint: an ordered column plus a
// constant offset (B.ts, C.ts+1, C.ts-1 ...).
type ordTerm struct {
	col    *gsql.ColRef
	colIdx int
	offset int64
	side   int // 0 = left, 1 = right
}

// parseOrdTerm matches ColRef, ColRef+const, ColRef-const over one source
// with a usable increasing ordering.
func parseOrdTerm(e gsql.Expr, left, right SourceRef) (ordTerm, bool) {
	var base gsql.Expr = e
	var off int64
	if b, ok := e.(*gsql.BinaryExpr); ok && (b.Op == gsql.OpAdd || b.Op == gsql.OpSub) {
		c, ok := b.R.(*gsql.Const)
		if !ok || !c.Val.Type.Numeric() {
			return ordTerm{}, false
		}
		base = b.L
		off = c.Val.Int()
		if c.Val.Type == schema.TUint {
			off = int64(c.Val.Uint())
		}
		if b.Op == gsql.OpSub {
			off = -off
		}
	}
	col, ok := base.(*gsql.ColRef)
	if !ok {
		return ordTerm{}, false
	}
	for side, src := range []SourceRef{left, right} {
		if !refBinds(col, src) {
			continue
		}
		i, c := src.Schema.Col(col.Name)
		if c == nil {
			continue
		}
		if !c.Ordering.Increasing() && c.Ordering.Kind != schema.OrderBandedIncreasing {
			return ordTerm{}, false
		}
		return ordTerm{col: col, colIdx: i, offset: off, side: side}, true
	}
	return ordTerm{}, false
}

// buildJoin analyzes a two-stream join node.
func (a *analyzer) buildJoin(name string, level Level, srcs []SourceRef, q *gsql.Query) (*Node, error) {
	left, right := srcs[0], srcs[1]
	if strings.EqualFold(left.Binding, right.Binding) {
		return nil, fmt.Errorf("join sources share the binding %q; alias them", left.Binding)
	}

	spec := &exec.JoinSpec{OutOrdL: -1, OutOrdR: -1}
	// One compiler accumulates all handle slots; the resolver is swapped
	// depending on whether an expression evaluates over the left row, the
	// right row, or the combined row.
	joinRes := exec.JoinResolver(left.Schema, right.Schema, left.Binding, right.Binding)
	leftRes := exec.SchemaResolver(left.Schema, left.Binding)
	rightRes := exec.SchemaResolver(right.Schema, right.Binding)
	comp := &exec.Compiler{Reg: a.reg, Params: a.params, Resolve: joinRes}
	compileWith := func(res func(string, string) (int, schema.Type, error), e gsql.Expr) (exec.Expr, error) {
		comp.Resolve = res
		defer func() { comp.Resolve = joinRes }()
		return comp.Compile(e)
	}

	// Decompose the WHERE clause: window constraints on ordered
	// attributes, hash-equality pairs, and a residual predicate.
	var (
		residual   []gsql.Expr
		ordL, ordR *ordTerm
		haveLow    bool
		haveHigh   bool
		low, high  int64
	)
	addBound := func(lt, rt ordTerm, op gsql.Op) {
		// Normalize to: D = ordR - ordL compared against rt/lt offsets.
		// ordL + lo <= ordR + ro  ==>  D >= lo - ro.
		d := lt.offset - rt.offset
		setLow := func(v int64) {
			// Constraint D >= v; the spec encodes D >= -LowSlack, so the
			// tightest (largest) v gives LowSlack = -v.
			if !haveLow || -v < low {
				low, haveLow = -v, true
			}
		}
		setHigh := func(v int64) {
			if !haveHigh || v < high {
				high, haveHigh = v, true
			}
		}
		switch op {
		case gsql.OpEq:
			setLow(d)
			setHigh(d)
		case gsql.OpLe: // ordL+lo <= ordR+ro => D >= d
			setLow(d)
		case gsql.OpLt:
			setLow(d + 1)
		case gsql.OpGe: // D <= d
			setHigh(d)
		case gsql.OpGt:
			setHigh(d - 1)
		}
	}

	for _, cj := range conjuncts(q.Where) {
		b, ok := cj.(*gsql.BinaryExpr)
		if ok && b.Op.Comparison() {
			lt, lok := parseOrdTerm(b.L, left, right)
			rt, rok := parseOrdTerm(b.R, left, right)
			if lok && rok && lt.side != rt.side {
				// Window constraint on ordered attributes.
				if lt.side == 1 {
					lt, rt = rt, lt
					b = &gsql.BinaryExpr{Op: b.Op.Flip(), L: b.R, R: b.L, At: b.At}
				}
				if ordL == nil {
					ordL, ordR = &lt, &rt
				}
				if lt.colIdx == ordL.colIdx && rt.colIdx == ordR.colIdx {
					addBound(lt, rt, b.Op)
					if b.Op == gsql.OpEq && lt.offset == 0 && rt.offset == 0 {
						// Also usable as a hash key.
						le, err := compileWith(leftRes, lt.col)
						if err != nil {
							return nil, err
						}
						re, err := compileWith(rightRes, rt.col)
						if err != nil {
							return nil, err
						}
						spec.EqL = append(spec.EqL, le)
						spec.EqR = append(spec.EqR, re)
					}
					continue
				}
			}
			// Plain cross-side equality: hash key.
			if ok && b.Op == gsql.OpEq {
				ls, rs := sideOf(b.L, left, right), sideOf(b.R, left, right)
				if ls == 1 && rs == 2 || ls == 2 && rs == 1 {
					el, er := b.L, b.R
					if ls == 2 {
						el, er = b.R, b.L
					}
					le, err := compileWith(leftRes, el)
					if err != nil {
						return nil, err
					}
					re, err := compileWith(rightRes, er)
					if err != nil {
						return nil, err
					}
					spec.EqL = append(spec.EqL, le)
					spec.EqR = append(spec.EqR, re)
					continue
				}
			}
		}
		residual = append(residual, cj)
	}

	if ordL == nil || !haveLow || !haveHigh {
		return nil, fmt.Errorf("join predicate must define a window on ordered attributes of both inputs (e.g. %s.ts = %s.ts, or a banded constraint); paper §2.1",
			left.Binding, right.Binding)
	}
	if low < 0 || high < 0 {
		// e.g. only D >= 5 given: window is shifted; normalize by folding
		// the shift into slacks (still a finite window as long as
		// low+high >= 0).
		if low+high < 0 {
			return nil, fmt.Errorf("join window is empty: constraints exclude all pairs")
		}
	}
	spec.LowSlack, spec.HighSlack = low, high

	var err error
	spec.OrdL, err = compileWith(leftRes, ordL.col)
	if err != nil {
		return nil, err
	}
	spec.OrdR, err = compileWith(rightRes, ordR.col)
	if err != nil {
		return nil, err
	}
	if len(residual) > 0 {
		spec.Residual, err = comp.Compile(conjoin(residual))
		if err != nil {
			return nil, err
		}
	}

	// The choice of join algorithm affects the imputed output ordering
	// (paper §2.1): the default low-buffer algorithm yields
	// banded-increasing(low+high) on the window attribute; the DEFINE
	// hint "join_algorithm ordered" selects the reorder-buffered variant
	// whose output is monotonically increasing at the cost of more
	// buffer space.
	ordered := false
	if alg, ok := q.Defs["join_algorithm"]; ok && len(alg) > 0 {
		switch strings.ToLower(alg[0]) {
		case "ordered":
			ordered = true
		case "banded", "default":
		default:
			return nil, fmt.Errorf("unknown join_algorithm %q (want ordered or banded)", alg[0])
		}
	}
	spec.SortOutput = ordered

	// Output columns over the combined row.
	used := make(map[string]bool)
	out := &schema.Schema{Name: name, Kind: schema.KindStream}
	winOrd := schema.Ordering{Kind: schema.OrderIncreasing}
	if low+high > 0 && !ordered {
		winOrd = schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: uint64(low + high)}
	}
	for i, item := range q.Select {
		if a.hasAggregate(item.Expr) {
			return nil, fmt.Errorf("aggregation over a join must be composed as a separate query reading this join's output")
		}
		e, err := comp.Compile(item.Expr)
		if err != nil {
			return nil, err
		}
		colName, err := outName(item, i, used)
		if err != nil {
			return nil, err
		}
		ord := schema.NoOrder
		if c, ok := item.Expr.(*gsql.ColRef); ok {
			if refBinds(c, left) && !refBinds(c, right) {
				if idx, _ := left.Schema.Col(c.Name); idx == ordL.colIdx {
					ord = winOrd
					if spec.OutOrdL < 0 {
						spec.OutOrdL = i
					}
				}
			} else if refBinds(c, right) && !refBinds(c, left) {
				if idx, _ := right.Schema.Col(c.Name); idx == ordR.colIdx {
					ord = winOrd
					if spec.OutOrdR < 0 {
						spec.OutOrdR = i
					}
				}
			}
		}
		out.Cols = append(out.Cols, schema.Column{Name: colName, Type: e.Type(), Ordering: ord})
		spec.Outs = append(spec.Outs, e)
	}
	spec.Out = out
	if ordered && spec.OutOrdL < 0 {
		return nil, fmt.Errorf("join_algorithm ordered requires selecting %s.%s (the left window attribute)",
			left.Binding, ordL.col.Name)
	}

	n := &Node{
		Name: name, Level: level, Kind: OpJoin,
		Sources: srcs, Query: q, Out: out,
		joinSpec: spec, params: a.params,
		handles: comp.Handles,
	}
	return n, nil
}

// buildMerge analyzes an N-way order-preserving merge node.
func (a *analyzer) buildMerge(name string, level Level, srcs []SourceRef, q *gsql.Query) (*Node, error) {
	if len(q.MergeCols) != len(srcs) {
		return nil, fmt.Errorf("MERGE lists %d columns for %d sources", len(q.MergeCols), len(srcs))
	}
	base := srcs[0].Schema
	cols := make([]int, len(srcs))
	merged := schema.Ordering{}
	for i, src := range srcs {
		s := src.Schema
		if len(s.Cols) != len(base.Cols) {
			return nil, fmt.Errorf("merge inputs %s and %s have different schemas", base.Name, s.Name)
		}
		for j := range s.Cols {
			if s.Cols[j].Type != base.Cols[j].Type {
				return nil, fmt.Errorf("merge inputs disagree on column %d: %s vs %s",
					j+1, base.Cols[j].Type, s.Cols[j].Type)
			}
		}
		mc := q.MergeCols[i]
		if mc.Table != "" && !strings.EqualFold(mc.Table, src.Binding) && !strings.EqualFold(mc.Table, s.Name) {
			return nil, fmt.Errorf("merge column %s does not reference source %s", mc, src.Binding)
		}
		idx, c := s.Col(mc.Name)
		if idx < 0 {
			return nil, fmt.Errorf("merge column %s not in %s", mc.Name, s.Name)
		}
		if !c.Ordering.Increasing() && c.Ordering.Kind != schema.OrderBandedIncreasing {
			return nil, fmt.Errorf("merge column %s.%s must be increasing (it is %s)",
				src.Binding, mc.Name, c.Ordering)
		}
		cols[i] = idx
		if i == 0 {
			merged = c.Ordering
		} else {
			merged = schema.Meet(merged, c.Ordering)
		}
	}
	for i := 1; i < len(cols); i++ {
		if cols[i] != cols[0] {
			return nil, fmt.Errorf("merge columns must occupy the same position in every input schema")
		}
	}
	out := base.Clone()
	out.Name = name
	out.Kind = schema.KindStream
	for j := range out.Cols {
		if j == cols[0] {
			out.Cols[j].Ordering = merged
		} else if !out.Cols[j].Ordering.Usable() {
			out.Cols[j].Ordering = schema.NoOrder
		} else {
			// Per-input orderings on other columns do not survive
			// interleaving.
			out.Cols[j].Ordering = schema.NoOrder
		}
		out.Cols[j].Interp = ""
	}
	return &Node{
		Name: name, Level: level, Kind: OpMerge,
		Sources: srcs, Query: q, Out: out,
		mergeCols: cols, params: a.params,
	}, nil
}
