package rts

import (
	"sync/atomic"

	"gigascope/internal/pkt"
	"gigascope/internal/ring"
)

// shardWorkDepth bounds each shard's work ring, in entries (poll
// windows or heartbeats). A full ring blocks the capture path — the
// multicore analogue of the host ring between the interrupt half and the
// processing half — rather than dropping: loss placement stays at the
// LFTA output rings (shed) and the capture-stack simulation (ring full),
// where the paper puts it.
const shardWorkDepth = 256

// shardWork is one entry on a shard's work ring: a steered slice of a
// poll window, or a source heartbeat. Entries are enqueued under the
// interface lock — which both serializes the producers (the SPSC ring's
// single-producer contract, with the lock handing the role across Inject
// callers) and keeps each shard's windows and heartbeats in clock order:
// a heartbeat carrying bound T is enqueued after every window that
// advanced the clock to T.
type shardWork struct {
	window []*pkt.Packet // nil for heartbeat entries
	hb     uint64        // heartbeat clock, microseconds; 0 for window entries
}

// ifaceShard is one RSS shard of an interface's capture path: a worker
// goroutine running its own instances of every LFTA attached to the
// interface over the flow-hash slice of the traffic steered to it. The
// capture→worker hop is a lock-free SPSC ring, not a channel: the
// capture path enqueues with one atomic store in the common case.
type ifaceShard struct {
	it      *Interface // owning interface; the worker reads its gate lock-free
	id      int
	lftas   []*queryNode // shard-local LFTA instances (shardIdx == id+1)
	work    *ring.SPSC[shardWork]
	done    chan struct{}
	packets atomic.Uint64 // packets steered to this shard
}

func newIfaceShard(it *Interface, id int) *ifaceShard {
	sh := &ifaceShard{
		it:   it,
		id:   id,
		work: ring.New[shardWork](shardWorkDepth, nil),
		done: make(chan struct{}),
	}
	go sh.run()
	return sh
}

// run is the shard worker loop. It never takes the interface lock (the
// capture path enqueues while holding it) and its LFTA publishers shed
// rather than block, so the worker always drains — the enqueue side can
// therefore block on a full work ring without deadlock.
func (sh *ifaceShard) run() {
	defer close(sh.done)
	for {
		w, ok := sh.work.Pop()
		if !ok {
			break
		}
		if w.window != nil {
			sh.packets.Add(uint64(len(w.window)))
			// Each shard worker gates with its own prefilter instance
			// (slot id), so the common-predicate evaluation scales with
			// the shards instead of contending on one evaluator.
			deliverWindow(sh.it.gating.Load(), sh.id, w.window, sh.lftas)
			continue
		}
		for _, qn := range sh.lftas {
			qn.clockHeartbeat(w.hb)
		}
	}
	// Ring closed and drained: shutdown. Flush shard-local aggregate
	// tables and close the shard publishers; the reunifying merge then
	// sees its inputs end and drains in global order.
	for _, qn := range sh.lftas {
		qn.flushInline()
	}
}
