package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/exec"
)

// publisher fans a node's output out to its subscribers over bounded
// rings (the shared-memory channels of the paper's architecture).
//
// Drop policy implements the §4 tuple-value heuristic: LFTA outputs (least
// processed, cheapest to lose) are shed when a ring is full; HFTA outputs
// (highly processed, most valuable) block instead, applying backpressure.
type publisher struct {
	name  string
	level core.Level
	shed  bool

	mu     sync.Mutex
	subs   []*Subscription
	closed bool
	drops  atomic.Uint64
}

func (p *publisher) subscribe(buf int) *Subscription {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Subscription{
		Name: p.name,
		C:    make(chan exec.Message, buf),
		pub:  p,
	}
	if p.closed {
		close(s.C)
		return s
	}
	p.subs = append(p.subs, s)
	return s
}

func (p *publisher) publish(m exec.Message) {
	p.mu.Lock()
	subs := p.subs
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	for _, s := range subs {
		if s.cancelled.Load() {
			continue
		}
		if p.shed && !m.IsHeartbeat() {
			select {
			case s.C <- m:
			default:
				p.drops.Add(1) // least-processed tuples shed first
			}
			continue
		}
		if m.IsHeartbeat() {
			// Heartbeats carry no data; never block on them.
			select {
			case s.C <- m:
			default:
			}
			continue
		}
		s.C <- m
	}
}

func (p *publisher) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, s := range p.subs {
		close(s.C)
	}
	p.subs = nil
}

// Subscription is a query handle: a bounded ring of messages from one
// stream plus the ability to demand a heartbeat from upstream.
type Subscription struct {
	Name string
	C    chan exec.Message

	pub       *publisher
	cancelled atomic.Bool
	reqFn     func()
}

// Cancel detaches the subscription. The publisher stops sending to it and
// anything in flight is drained; the channel closes when the stream ends.
func (s *Subscription) Cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		// Drain so a publisher mid-send is never stranded.
		go func() {
			for range s.C {
			}
		}()
	}
}

// RequestHeartbeat asks the producing chain for an ordering update token
// (paper §3's on-demand variant): the request propagates to the packet
// sources, which emit clock bounds on the next AdvanceClock.
func (s *Subscription) RequestHeartbeat() {
	if s.reqFn != nil {
		s.reqFn()
	}
}
