package rts

import (
	"testing"
	"time"
)

// TestLFTAShedAccounting pins the §4 drop policy bookkeeping: with a slow
// and a fast subscriber on one LFTA output ring, the slow ring sheds
// (least-processed tuples first), the fast subscriber still sees every
// tuple, and NodeStats.RingDrop accounts for every shed tuple exactly.
func TestLFTAShedAccounting(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name alltcp; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	slow, err := m.Subscribe("alltcp", 2) // two slots, never read while running
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Subscribe("alltcp", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		p := tcpPkt(uint64(i+1), 0x0a000001, 80, "x")
		m.Inject("eth0", &p)
	}
	m.Stop()

	fastRows := drain(t, fast)
	if len(fastRows) != n {
		t.Fatalf("fast subscriber got %d tuples, want %d", len(fastRows), n)
	}
	slowRows := drain(t, slow)
	var drops uint64
	for _, ns := range m.Stats() {
		if ns.Name == "alltcp" {
			drops = ns.RingDrop
		}
	}
	// Every tuple that did not fit in the slow ring was shed and counted.
	if want := uint64(n - len(slowRows)); drops != want {
		t.Errorf("RingDrop = %d, want %d (n=%d, slow ring kept %d)", drops, want, n, len(slowRows))
	}
	if drops == 0 {
		t.Error("expected the slow subscriber to force shedding")
	}
}

// TestHFTABackpressure pins the other half of the policy: HFTA output is
// highly processed, so its publisher blocks on a full ring instead of
// shedding — a slow consumer delays the pipeline but loses nothing.
func TestHFTABackpressure(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	// LFTA filter + HFTA regex: the output node runs at the HFTA level.
	cq := mustCompile(t, cat, `
		DEFINE { query_name http; }
		SELECT time, srcIP FROM tcp
		WHERE destPort = 80 and str_regex_match(payload, '^[^\n]*HTTP/1.*')`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("http", 1) // single-slot ring: constant pressure
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	go func() {
		rows := 0
		for b := range sub.C {
			for _, msg := range b {
				if !msg.IsHeartbeat() {
					rows++
					time.Sleep(50 * time.Microsecond) // slow consumer
				}
			}
		}
		got <- rows
	}()
	const n = 200
	for i := 0; i < n; i++ {
		p := tcpPkt(uint64(i+1), 0x0a000001, 80, "GET / HTTP/1.1\r\n")
		m.Inject("", &p)
	}
	m.Stop()

	select {
	case rows := <-got:
		if rows != n {
			t.Errorf("slow consumer got %d tuples, want %d (HFTA must not shed)", rows, n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never finished")
	}
	for _, ns := range m.Stats() {
		if ns.Name == "http" && ns.RingDrop != 0 {
			t.Errorf("HFTA RingDrop = %d, want 0 (backpressure, not shedding)", ns.RingDrop)
		}
	}
}
