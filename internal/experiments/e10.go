package experiments

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"gigascope/internal/capture"
	"gigascope/internal/funcs"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// E10: closed-loop overload control. The paper's §4 remedy for overload is
// parameter-based load shedding — "reducing the amount of data sent to the
// HFTAs, e.g. by setting the sampling rate of some of the queries" —
// operated by hand. E10 runs that loop automatically: a capture stack is
// driven past its processing capacity, the overload controller watches its
// ring-drop counter, and throttles the target query's `$srate` parameter
// through the SetParams path until the ring drains, then creeps the rate
// back up. The capture stack's per-packet cost mirrors the rebound
// predicate exactly (funcs.SampleFraction, the samplehash kernel), so a
// lower sampling rate genuinely sheds host work — closing the loop.
//
// The run is repeated with the controller detached; comparing the two
// RingDrops counts is the experiment: unchecked, the saturated ring sheds
// for the whole run, while the controlled run stops dropping once the
// first decisions land and oscillates around the sustainable rate.

// E10Row is one run's outcome: the uncontrolled baseline or the
// controlled run over the identical packet sequence.
type E10Row struct {
	Controller   bool
	Packets      uint64  // packets offered on the wire
	RingDrops    uint64  // lost at the saturated host ring
	LossPct      float64 // RingDrops / Packets
	Delivered    uint64  // packets that survived capture
	OutputTuples uint64  // rows the target query produced
	FinalRate    float64 // $srate when the run ended
	MinRate      float64 // deepest throttle reached
	Decisions    uint64  // SYSMON.Overload rows emitted
	Throttled    uint64  // decisions taken with rate below full
}

// E10 runs the overload workload twice — controller off, then on — over
// the same deterministic packet sequence.
func E10(packets int) ([]E10Row, error) {
	off, err := e10Run(packets, false)
	if err != nil {
		return nil, err
	}
	on, err := e10Run(packets, true)
	if err != nil {
		return nil, err
	}
	return []E10Row{off, on}, nil
}

// e10Params is the cost model that makes the loop sharp: at the full
// sampling rate the per-packet processing cost exceeds the inter-arrival
// budget (the ring fills and sheds), while at the throttle floor it is
// well under it (the ring drains). The sustainable rate sits near 0.3.
func e10Params() capture.Params {
	par := capture.DefaultParams()
	par.InterruptUs = 2.0
	par.CopyPerByteUs = 0
	par.LFTAPerPktUs = 1.0
	par.HFTAPerTupleUs = 10.0
	par.RegexPerByteUs = 0
	par.RingPackets = 512
	return par
}

// e10Gap is the packet inter-arrival time in virtual microseconds.
const e10Gap = 6

func e10Run(packets int, controlled bool) (E10Row, error) {
	cat, err := newCatalog()
	if err != nil {
		return E10Row{}, err
	}
	mgr := rts.NewManager(cat, rts.Config{RingSize: 8192})
	cq, err := compileQuery(cat, `
		DEFINE { query_name e10_load; param srate float; }
		SELECT time, srcIP, destPort FROM eth0.TCP
		WHERE samplehash(srcIP, $srate)`, nil)
	if err != nil {
		return E10Row{}, err
	}
	if err := mgr.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		return E10Row{}, err
	}

	// The capture stack charges the HFTA cost for exactly the packets the
	// rebound samplehash predicate keeps, so throttling $srate sheds real
	// simulated work.
	var rateBits atomic.Uint64
	rateBits.Store(math.Float64bits(1.0))
	st, err := capture.NewStack(capture.ModeHostLFTA, e10Params(), capture.Pipeline{
		Filter: func(p *pkt.Packet) bool {
			ip, ok := p.U32(pkt.EthHeaderLen + 12)
			if !ok {
				return false
			}
			return funcs.SampleFraction(schema.MakeIP(uint32(ip)), math.Float64frombits(rateBits.Load()))
		},
	}, 10)
	if err != nil {
		return E10Row{}, err
	}
	mgr.Interface("eth0").BindCapture(st)

	row := E10Row{Controller: controlled, FinalRate: 1.0, MinRate: 1.0}
	var ctrlSub *rts.Subscription
	if controlled {
		err := mgr.AttachOverloadController(rts.OverloadConfig{
			Iface:         "eth0",
			Target:        "e10_load",
			Param:         "srate",
			HighWater:     64,
			HoldIntervals: 4,
			IntervalUsec:  50_000,
			OnApply: func(r float64) {
				rateBits.Store(math.Float64bits(r))
			},
		})
		if err != nil {
			return E10Row{}, err
		}
		ctrlSub, err = mgr.Subscribe(rts.OverloadStream, 4096)
		if err != nil {
			return E10Row{}, err
		}
	}
	outSub, err := mgr.Subscribe("e10_load", 8192)
	if err != nil {
		return E10Row{}, err
	}
	outDone := make(chan uint64, 1)
	go func() {
		var n uint64
		for b := range outSub.C {
			n += uint64(b.Tuples())
		}
		outDone <- n
	}()
	type ctrlSummary struct {
		decisions, throttled uint64
		final, min           float64
	}
	ctrlDone := make(chan ctrlSummary, 1)
	if ctrlSub != nil {
		go func() {
			s := ctrlSummary{final: 1.0, min: 1.0}
			for b := range ctrlSub.C {
				for _, m := range b {
					if m.IsHeartbeat() {
						continue
					}
					s.decisions++
					s.final = m.Tuple[3].Float()
					if s.final < s.min {
						s.min = s.final
					}
					if m.Tuple[6].Bool() {
						s.throttled++
					}
				}
			}
			ctrlDone <- s
		}()
	}
	if err := mgr.Start(); err != nil {
		return E10Row{}, err
	}

	// A deterministic overload: back-to-back packets at a fixed arrival
	// gap, srcIP sweeping a large space so samplehash keeps an unbiased
	// fraction.
	const pollWindow = 256
	ps := make([]pkt.Packet, pollWindow)
	w := make([]*pkt.Packet, 0, pollWindow)
	for i := 0; i < packets; i++ {
		ts := 1_000_000 + uint64(i)*e10Gap
		ps[len(w)] = pkt.BuildTCP(ts, pkt.TCPSpec{
			SrcIP: 0x0a000000 + uint32(i), DstIP: 0x0a000002,
			SrcPort: 30000, DstPort: 80,
		})
		w = append(w, &ps[len(w)])
		if len(w) == pollWindow || i == packets-1 {
			mgr.InjectBatch("eth0", w)
			w = w[:0]
		}
	}
	mgr.Stop()

	row.OutputTuples = <-outDone
	if ctrlSub != nil {
		s := <-ctrlDone
		row.Decisions = s.decisions
		row.Throttled = s.throttled
		row.FinalRate = s.final
		row.MinRate = s.min
	}
	cs := st.Stats()
	row.Packets = cs.Offered
	row.RingDrops = cs.RingDrops
	row.Delivered = cs.Delivered
	if cs.Offered > 0 {
		row.LossPct = 100 * float64(cs.RingDrops) / float64(cs.Offered)
	}
	if row.OutputTuples == 0 {
		return E10Row{}, fmt.Errorf("experiments: E10 (controller=%v) produced no output", controlled)
	}
	return row, nil
}

// PrintE10 renders the comparison.
func PrintE10(w io.Writer, rows []E10Row) {
	fmt.Fprintln(w, "E10: closed-loop overload control — §4 sampling-rate load shedding run automatically")
	fmt.Fprintf(w, "  %-12s %10s %10s %8s %10s %10s %7s %7s %6s\n",
		"controller", "packets", "ringdrops", "loss", "delivered", "tuples", "rate", "minrate", "steps")
	for _, r := range rows {
		name := "off"
		if r.Controller {
			name = "on"
		}
		fmt.Fprintf(w, "  %-12s %10d %10d %7.2f%% %10d %10d %7.3f %7.3f %6d\n",
			name, r.Packets, r.RingDrops, r.LossPct, r.Delivered, r.OutputTuples,
			r.FinalRate, r.MinRate, r.Decisions)
	}
	if len(rows) == 2 && rows[1].RingDrops > 0 {
		fmt.Fprintf(w, "  ring-drop reduction: %.1fx\n",
			float64(rows[0].RingDrops)/float64(rows[1].RingDrops))
	}
}
