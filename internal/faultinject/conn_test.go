package faultinject

import (
	"net"
	"testing"
	"time"
)

// connPipe returns a wrapped writer end and the raw reader end of an
// in-memory connection.
func connPipe(t *testing.T, w *WireFaults) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return w.WrapConn(a), b
}

// drainReader consumes everything the writer sends so net.Pipe's
// synchronous writes never block the test.
func drainReader(c net.Conn) {
	buf := make([]byte, 1024)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

func TestWireFaultsPositionalKill(t *testing.T) {
	w := NewWireFaults(ConnFaultConfig{KillAt: []uint64{2}})
	wc, rd := connPipe(t, w)
	go drainReader(rd)
	msg := []byte("frame")
	for i := 0; i < 2; i++ {
		if _, err := wc.Write(msg); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := wc.Write(msg); err == nil {
		t.Fatal("write 2 survived a KillAt={2}")
	}
	st := w.Stats()
	if st.Writes != 3 || st.Kills != 1 {
		t.Fatalf("stats = %+v, want 3 writes / 1 kill", st)
	}
}

func TestWireFaultsTruncateTearsHalfFrame(t *testing.T) {
	w := NewWireFaults(ConnFaultConfig{TruncateAt: []uint64{0}})
	wc, rd := connPipe(t, w)
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := rd.Read(buf)
		got <- n
	}()
	if _, err := wc.Write([]byte("12345678")); err == nil {
		t.Fatal("truncated write returned no error")
	}
	select {
	case n := <-got:
		if n != 4 {
			t.Fatalf("peer saw %d bytes of an 8-byte frame, want the torn half (4)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the torn bytes")
	}
	if st := w.Stats(); st.Truncates != 1 {
		t.Fatalf("stats = %+v, want 1 truncate", st)
	}
}

// TestWireFaultsSeededDeterminism: two injectors with the same seed and
// the same write/clock sequence must deliver identical fault placement —
// the property the reconnect tests lean on.
func TestWireFaultsSeededDeterminism(t *testing.T) {
	run := func(seed int64) ([]bool, []uint64) {
		w := NewWireFaults(ConnFaultConfig{Seed: seed, KillRate: 0.3, SkewRate: 0.5, SkewUsec: 1000})
		var kills []bool
		var clocks []uint64
		for i := 0; i < 64; i++ {
			// Exercise the PRNG exactly as Write does, via a fresh pipe per
			// write (a killed faultConn closes its conn).
			wc, rd := connPipe(t, w)
			go drainReader(rd)
			_, err := wc.Write([]byte("x"))
			kills = append(kills, err != nil)
			clocks = append(clocks, w.SkewClock(uint64(1_000_000+i)))
		}
		return kills, clocks
	}
	k1, c1 := run(42)
	k2, c2 := run(42)
	k3, _ := run(43)
	anyKill := false
	for i := range k1 {
		if k1[i] != k2[i] || c1[i] != c2[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
		anyKill = anyKill || k1[i]
	}
	if !anyKill {
		t.Fatal("KillRate 0.3 over 64 writes produced no kills")
	}
	same := true
	for i := range k1 {
		if k1[i] != k3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical kill placement")
	}
}

func TestWireFaultsSkewClampsAtZero(t *testing.T) {
	w := NewWireFaults(ConnFaultConfig{Seed: 7, SkewRate: 1, SkewUsec: 1 << 40})
	for i := 0; i < 100; i++ {
		if got := w.SkewClock(5); got > 5+(1<<40) {
			t.Fatalf("skew overflowed: %d", got)
		}
	}
}
