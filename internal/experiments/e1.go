// Package experiments implements the reproduction of every quantitative
// claim in the paper's evaluation (§4–§5), one experiment per file. Each
// experiment returns printable rows; cmd/gsbench renders them and
// bench_test.go reports them as benchmark metrics. The experiment index
// lives in DESIGN.md; measured-vs-paper results in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/capture"
	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// newCatalog builds a catalog with the built-in protocols.
func newCatalog() (*schema.Catalog, error) {
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		return nil, err
	}
	return cat, nil
}

func compileQuery(cat *schema.Catalog, src string, opts *core.Options) (*core.CompiledQuery, error) {
	q, err := gsql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return core.Compile(cat, q, opts)
}

// CompiledHTTPPipeline wires the §4 query's real compiled LFTA as the
// capture-stack filter, so E1 exercises the production code path rather
// than a hand-written stand-in.
func CompiledHTTPPipeline() (capture.Pipeline, error) {
	cat, err := newCatalog()
	if err != nil {
		return capture.Pipeline{}, err
	}
	cq, err := compileQuery(cat, `
		DEFINE { query_name e1_port80; }
		SELECT time, payload FROM TCP
		WHERE protocol = 6 and destPort = 80`, nil)
	if err != nil {
		return capture.Pipeline{}, err
	}
	inst, err := cq.Output().Instantiate(nil)
	if err != nil {
		return capture.Pipeline{}, err
	}
	matched := false
	sink := func(exec.Message) { matched = true }
	return capture.Pipeline{
		Filter: func(p *pkt.Packet) bool {
			matched = false
			inst.PushPacket(p, sink)
			return matched
		},
		HFTABytes: func(p *pkt.Packet) int {
			pay, ok := p.Payload()
			if !ok {
				return 0
			}
			return len(pay)
		},
	}, nil
}

// E1Row is one configuration's outcome in the §4 experiment.
type E1Row struct {
	Config      string
	MaxRateMbps float64 // highest total offered load at <= 2% loss
	PaperMbps   float64 // the paper's reported value
}

// E1 reproduces the §4 experiment: maximum sustainable rate at 2% packet
// loss for the four capture configurations.
func E1(seconds float64) ([]E1Row, error) {
	pipe, err := CompiledHTTPPipeline()
	if err != nil {
		return nil, err
	}
	par := capture.DefaultParams()
	paper := map[capture.Mode]float64{
		capture.ModeDiskDump:    180,
		capture.ModePcapDiscard: 480,
		capture.ModeHostLFTA:    480,
		capture.ModeNICLFTA:     610,
	}
	var rows []E1Row
	for _, mode := range []capture.Mode{
		capture.ModeDiskDump, capture.ModePcapDiscard,
		capture.ModeHostLFTA, capture.ModeNICLFTA,
	} {
		rate, err := capture.MaxSustainableRate(mode, par, pipe, 0.02, seconds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E1Row{
			Config:      capture.ConfigurationName(mode),
			MaxRateMbps: rate,
			PaperMbps:   paper[mode],
		})
	}
	return rows, nil
}

// PrintE1 renders the table.
func PrintE1(w io.Writer, rows []E1Row) {
	fmt.Fprintln(w, "E1: §4 max sustainable rate at 2% packet loss (60 Mbit/s port-80 + background)")
	fmt.Fprintf(w, "  %-30s %12s %12s\n", "configuration", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-30s %8.0f Mb/s %8.0f Mb/s\n", r.Config, r.MaxRateMbps, r.PaperMbps)
	}
}

// E1Point is one point of the loss-vs-rate curve (the experiment's
// underlying figure).
type E1Point struct {
	Config    string
	TotalMbps float64
	LossPct   float64
}

// E1Curve sweeps offered load and reports the loss rate per
// configuration — the drop-rate curves behind the §4 table.
func E1Curve(seconds float64, rates []float64) ([]E1Point, error) {
	pipe, err := CompiledHTTPPipeline()
	if err != nil {
		return nil, err
	}
	par := capture.DefaultParams()
	var pts []E1Point
	for _, mode := range []capture.Mode{
		capture.ModeDiskDump, capture.ModePcapDiscard,
		capture.ModeHostLFTA, capture.ModeNICLFTA,
	} {
		for _, rate := range rates {
			bg := rate - 60
			if bg < 0 {
				bg = 0
			}
			stats, err := capture.RunConfiguration(mode, par, capture.DefaultWorkload(bg), pipe, seconds)
			if err != nil {
				return nil, err
			}
			pts = append(pts, E1Point{
				Config:    capture.ConfigurationName(mode),
				TotalMbps: rate,
				LossPct:   stats.LossRate() * 100,
			})
		}
	}
	return pts, nil
}

// PrintE1Curve renders the loss curves.
func PrintE1Curve(w io.Writer, pts []E1Point) {
	fmt.Fprintln(w, "E1 (figure): packet loss vs offered load")
	last := ""
	for _, p := range pts {
		if p.Config != last {
			fmt.Fprintf(w, "  %s\n", p.Config)
			last = p.Config
		}
		fmt.Fprintf(w, "    %7.0f Mb/s  loss %6.2f%%\n", p.TotalMbps, p.LossPct)
	}
}
