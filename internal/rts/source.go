package rts

import (
	"fmt"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// SourceNode is a tuple source driven by the virtual clock rather than by
// a packet interface or by upstream subscriptions. The manager invokes
// Tick on every clock movement (packet arrival or AdvanceClock); the node
// decides internally whether enough virtual time has passed to emit. The
// sysmon samplers are the canonical implementation: they publish system
// telemetry (SYSMON.NodeStats, SYSMON.IfaceStats) as ordinary streams any
// GSQL query can read.
//
// Tick, Heartbeat, and Flush are serialized by the node's lock; emit must
// be called only from within them. Source-node publishers shed when a
// subscriber ring is full (the §4 tuple-value heuristic: telemetry is
// source-level, least-processed data) and therefore never block the
// capture path that drives the clock.
type SourceNode interface {
	// OutSchema describes the emitted stream, including its ordering
	// annotations; it is registered in the catalog under the node name.
	OutSchema() *schema.Schema
	// Tick observes the virtual clock; it emits tuples (and a trailing
	// heartbeat) when its sampling interval has elapsed.
	Tick(nowUsec uint64, emit exec.Emit)
	// Heartbeat serves a downstream on-demand ordering-token request
	// (paper §3) at the current clock.
	Heartbeat(nowUsec uint64, emit exec.Emit)
	// Flush emits one final sample at shutdown so downstream totals match
	// the final node counters.
	Flush(nowUsec uint64, emit exec.Emit)
}

// AddSourceNode registers a clock-driven source node. Its output stream is
// entered into the catalog and the registry under name, so queries can
// read it (FROM name) and applications can Subscribe to it exactly like a
// compiled query's output.
func (m *Manager) AddSourceNode(name string, src SourceNode) error {
	if src == nil {
		return fmt.Errorf("rts: nil source node")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("rts: manager stopped")
	}
	key := strings.ToLower(name)
	if _, dup := m.nodes[key]; dup {
		return fmt.Errorf("rts: query node %s already registered", name)
	}
	out := src.OutSchema().Clone()
	out.Name = name
	out.Kind = schema.KindStream
	if err := m.cat.Register(out); err != nil {
		return err
	}
	qn := &queryNode{
		m:     m,
		name:  name,
		level: core.LevelSource,
		src:   src,
		// Telemetry sheds on overload instead of back-pressuring the
		// capture path its Tick runs on.
		pub:      &publisher{name: name, level: core.LevelSource, shed: true},
		maxBatch: m.cfg.maxBatch(),
		hbFlush:  true, // each sample ends in a heartbeat: flush per tick
	}
	if m.cfg.ValidateOrdering {
		qn.initCheckers(out)
	}
	m.nodes[key] = qn
	m.order = append(m.order, qn)
	m.sources = append(m.sources, qn)
	return nil
}

// noteClock advances the manager-wide virtual clock high-water mark and
// gives every source node a chance to sample. Called on every Inject and
// AdvanceClock.
func (m *Manager) noteClock(usec uint64) {
	for {
		cur := m.clock.Load()
		if usec <= cur {
			usec = cur
			break
		}
		if m.clock.CompareAndSwap(cur, usec) {
			break
		}
	}
	m.mu.Lock()
	sources := m.sources
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		return
	}
	for _, qn := range sources {
		qn.tickSource(usec)
	}
}

// Clock returns the manager-wide virtual clock high-water mark
// (microseconds): the maximum timestamp seen across all interfaces.
func (m *Manager) Clock() uint64 { return m.clock.Load() }

// tickSource runs the source node's sampler under the node lock. A panic
// in the sampler quarantines the node (permanently: source nodes carry no
// compiled plan to rebuild) without touching the inject path that drove
// the tick.
func (qn *queryNode) tickSource(nowUsec uint64) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.srcClosed || !qn.maybeRestart() {
		return
	}
	qn.guard("tick", func() error { qn.src.Tick(nowUsec, qn.emit); return nil })
}

// sourceHeartbeat serves an on-demand ordering token from a source node.
func (qn *queryNode) sourceHeartbeat() {
	now := qn.m.clock.Load()
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.srcClosed || !qn.maybeRestart() {
		return
	}
	qn.guard("heartbeat", func() error { qn.src.Heartbeat(now, qn.emit); return nil })
}

// flushSource emits the final sample and closes the stream at shutdown.
func (qn *queryNode) flushSource(nowUsec uint64) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if qn.srcClosed {
		return
	}
	qn.srcClosed = true
	if qn.maybeRestart() {
		qn.guard("flush", func() error { qn.src.Flush(nowUsec, qn.emit); return nil })
		qn.flushPending(&qn.flushWindow)
	}
	qn.pub.close()
}
