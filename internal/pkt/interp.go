package pkt

import (
	"fmt"
	"sort"
	"sync"

	"gigascope/internal/schema"
)

// ExtractFunc pulls one field out of a packet. It reports false when the
// field cannot be produced (capture too short, wrong protocol); the tuple
// is then dropped, mirroring GSQL partial-function semantics.
type ExtractFunc func(p *Packet) (schema.Value, bool)

// RawRef describes a field as a fixed-offset big-endian header read, which
// lets the planner push predicates on the field into the NIC's BPF engine:
// value = (read(Off, Width) >> Shift) & Mask. A zero Mask means "no mask".
//
// Off is stated for the common IPv4-without-options layout (IHL=5). Fields
// past the IP header set L4, and Read then rebases the offset on the
// packet's actual IHL — the BPF indirect-load idiom (ldx 4*([14]&0xf)) —
// so option-bearing packets are read at their true transport offset
// instead of inside the options. A packet whose IHL cannot be validated
// (truncated capture, IHL < 5) reads as absent, matching the full
// extractor's failure on the same bytes.
type RawRef struct {
	Off   int
	Width int // 1, 2, or 4 bytes
	Shift uint
	Mask  uint64
	// L4 marks Off as relative to the assumed-IHL=5 transport base; Read
	// adjusts it by the packet's real IP header length.
	L4 bool
}

// Read evaluates the raw reference against a packet.
func (r RawRef) Read(p *Packet) (uint64, bool) {
	off := r.Off
	if r.L4 {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		off = base + (r.Off - l4Base)
	}
	var v uint64
	var ok bool
	switch r.Width {
	case 1:
		v, ok = p.U8(off)
	case 2:
		v, ok = p.U16(off)
	case 4:
		v, ok = p.U32(off)
	}
	if !ok {
		return 0, false
	}
	v >>= r.Shift
	if r.Mask != 0 {
		v &= r.Mask
	}
	return v, true
}

// End returns the first byte offset past the referenced field.
func (r RawRef) End() int { return r.Off + r.Width }

// FieldSpec is one entry in the interpretation-function library.
type FieldSpec struct {
	Name    string
	Type    schema.Type
	Extract ExtractFunc
	// Raw is non-nil when the field is a direct header read, enabling NIC
	// BPF pushdown of predicates over it.
	Raw *RawRef
	// NeedBytes is how many captured bytes the extractor requires; the
	// planner takes the max over referenced fields as the NIC snap length.
	// NeedAll marks fields (payload) that need the entire packet.
	NeedBytes int
	NeedAll   bool
	// Clock, when non-nil, derives the field from the capture clock
	// rather than packet bytes; sources use it to synthesize heartbeat
	// bounds for the field from the current virtual time (microseconds).
	Clock func(usec uint64) schema.Value
}

var (
	interpMu  sync.RWMutex
	interpLib = make(map[string]*FieldSpec)
)

// RegisterInterp adds an interpretation function to the library. It panics
// on duplicates: the library is assembled at init time.
func RegisterInterp(f *FieldSpec) {
	interpMu.Lock()
	defer interpMu.Unlock()
	if _, ok := interpLib[f.Name]; ok {
		panic(fmt.Sprintf("pkt: interpretation function %s registered twice", f.Name))
	}
	interpLib[f.Name] = f
}

// LookupInterp returns the named interpretation function.
func LookupInterp(name string) (*FieldSpec, bool) {
	interpMu.RLock()
	defer interpMu.RUnlock()
	f, ok := interpLib[name]
	return f, ok
}

// InterpNames returns the registered interpretation function names, sorted.
func InterpNames() []string {
	interpMu.RLock()
	defer interpMu.RUnlock()
	names := make([]string, 0, len(interpLib))
	for n := range interpLib {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func uintField(name string, need int, raw *RawRef, f func(p *Packet) (uint64, bool)) *FieldSpec {
	return &FieldSpec{
		Name: name, Type: schema.TUint, Raw: raw, NeedBytes: need,
		Extract: func(p *Packet) (schema.Value, bool) {
			v, ok := f(p)
			if !ok {
				return schema.Null, false
			}
			return schema.MakeUint(v), true
		},
	}
}

func ipField(name string, raw RawRef) *FieldSpec {
	return &FieldSpec{
		Name: name, Type: schema.TIP, Raw: &raw, NeedBytes: raw.End(),
		Extract: func(p *Packet) (schema.Value, bool) {
			v, ok := raw.Read(p)
			if !ok {
				return schema.Null, false
			}
			return schema.MakeIP(uint32(v)), true
		},
	}
}

func rawUintField(name string, raw RawRef) *FieldSpec {
	return uintField(name, raw.End(), &raw, raw.Read)
}

// l4Field reads a 16-bit field at the given offset within the transport
// header. The raw ref carries the L4 flag, so both the extractor and any
// NIC-pushed predicate honor variable IP header lengths.
func l4Field(name string, l4off int) *FieldSpec {
	raw := RawRef{Off: l4Base + l4off, Width: 2, L4: true}
	return uintField(name, raw.End(), &raw, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U16(base + l4off)
	})
}

func init() {
	// Capture metadata.
	timeSpec := uintField("get_time", 0, nil, func(p *Packet) (uint64, bool) {
		return p.TS / 1e6, true // 1-second granularity timer (paper §2.2)
	})
	timeSpec.Clock = func(usec uint64) schema.Value { return schema.MakeUint(usec / 1e6) }
	RegisterInterp(timeSpec)
	tsSpec := uintField("get_timestamp", 0, nil, func(p *Packet) (uint64, bool) {
		return p.TS, true // microsecond granularity
	})
	tsSpec.Clock = func(usec uint64) schema.Value { return schema.MakeUint(usec) }
	RegisterInterp(tsSpec)
	RegisterInterp(uintField("get_caplen", 0, nil, func(p *Packet) (uint64, bool) {
		return uint64(p.CapLen()), true
	}))
	RegisterInterp(uintField("get_wirelen", 0, nil, func(p *Packet) (uint64, bool) {
		return uint64(p.WireLen), true
	}))

	// Ethernet header.
	RegisterInterp(uintField("get_eth_dst", 6, nil, func(p *Packet) (uint64, bool) { return p.U48(0) }))
	RegisterInterp(uintField("get_eth_src", 12, nil, func(p *Packet) (uint64, bool) { return p.U48(6) }))
	RegisterInterp(rawUintField("get_ethertype", RawRef{Off: 12, Width: 2}))

	// IPv4 header.
	RegisterInterp(rawUintField("get_ip_version", RawRef{Off: ipOff, Width: 1, Shift: 4, Mask: 0x0f}))
	RegisterInterp(uintField("get_hdr_length", ipOff+1, nil, func(p *Packet) (uint64, bool) {
		ihl, ok := p.IPHeaderLen()
		return uint64(ihl), ok
	}))
	RegisterInterp(rawUintField("get_tos", RawRef{Off: ipOff + 1, Width: 1}))
	RegisterInterp(rawUintField("get_total_length", RawRef{Off: ipOff + 2, Width: 2}))
	RegisterInterp(rawUintField("get_ip_id", RawRef{Off: ipOff + 4, Width: 2}))
	RegisterInterp(rawUintField("get_fragment_offset", RawRef{Off: ipOff + 6, Width: 2, Mask: 0x1fff}))
	RegisterInterp(rawUintField("get_mf_flag", RawRef{Off: ipOff + 6, Width: 2, Shift: 13, Mask: 0x1}))
	RegisterInterp(rawUintField("get_ttl", RawRef{Off: ipOff + 8, Width: 1}))
	RegisterInterp(rawUintField("get_protocol", RawRef{Off: ipOff + 9, Width: 1}))
	RegisterInterp(ipField("get_src_ip", RawRef{Off: ipOff + 12, Width: 4}))
	RegisterInterp(ipField("get_dest_ip", RawRef{Off: ipOff + 16, Width: 4}))

	// Transport header (TCP and UDP share the port offsets).
	RegisterInterp(l4Field("get_src_port", 0))
	RegisterInterp(l4Field("get_dest_port", 2))
	RegisterInterp(uintField("get_seq_number", l4Base+8, nil, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U32(base + 4)
	}))
	RegisterInterp(uintField("get_ack_number", l4Base+12, nil, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U32(base + 8)
	}))
	RegisterInterp(uintField("get_tcp_flags", l4Base+14, nil, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U8(base + 13)
	}))
	RegisterInterp(uintField("get_window", l4Base+16, nil, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U16(base + 14)
	}))
	RegisterInterp(uintField("get_udp_length", l4Base+6, nil, func(p *Packet) (uint64, bool) {
		base, ok := p.L4Offset()
		if !ok {
			return 0, false
		}
		return p.U16(base + 4)
	}))

	// IP payload: everything after the IP header (transport header
	// included). This is the unit of IPv4 fragmentation and what the
	// defragmentation operator reassembles.
	RegisterInterp(&FieldSpec{
		Name: "get_ip_payload", Type: schema.TString, NeedAll: true,
		Extract: func(p *Packet) (schema.Value, bool) {
			off, ok := p.L4Offset()
			if !ok || off > len(p.Data) {
				return schema.Null, false
			}
			return schema.MakeString(p.Data[off:]), true
		},
	})

	// Payload: needs the whole packet; never BPF-pushable.
	RegisterInterp(&FieldSpec{
		Name: "get_payload", Type: schema.TString, NeedAll: true,
		Extract: func(p *Packet) (schema.Value, bool) {
			b, ok := p.Payload()
			if !ok {
				return schema.Null, false
			}
			return schema.MakeString(b), true
		},
	})
	RegisterInterp(uintField("get_payload_length", l4Base+16, nil, func(p *Packet) (uint64, bool) {
		off, ok := p.PayloadOffset()
		if !ok {
			return 0, false
		}
		if off > p.WireLen {
			return 0, true
		}
		return uint64(p.WireLen - off), true
	}))
}
