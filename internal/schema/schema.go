package schema

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two stream flavors (paper §2.2).
type Kind uint8

const (
	// KindProtocol is a stream produced by interpreting raw data packets
	// with a library of interpretation functions (e.g. eth0.TCP).
	KindProtocol Kind = iota + 1
	// KindStream is the output of a Gigascope query; fields are packed
	// tuples in the standard format.
	KindStream
)

func (k Kind) String() string {
	switch k {
	case KindProtocol:
		return "PROTOCOL"
	case KindStream:
		return "STREAM"
	}
	return "?"
}

// Column describes one attribute of a stream.
type Column struct {
	Name     string
	Type     Type
	Ordering Ordering
	// Interp names the interpretation function used to extract this field
	// from a raw packet. Only meaningful for Protocol schemas.
	Interp string
}

// Schema describes the tuple layout of one stream.
type Schema struct {
	Name string
	Kind Kind
	Cols []Column
	// Base names the protocol this protocol refines (e.g. TCP refines
	// IPV4); informational, fields are flattened at definition time.
	Base string
}

// Col returns the index and column with the given name (case-insensitive,
// as GSQL identifiers are), or -1 and nil.
func (s *Schema) Col(name string) (int, *Column) {
	for i := range s.Cols {
		if strings.EqualFold(s.Cols[i].Name, name) {
			return i, &s.Cols[i]
		}
	}
	return -1, nil
}

// HasCol reports whether the schema has a column with the given name.
func (s *Schema) HasCol(name string) bool {
	i, _ := s.Col(name)
	return i >= 0
}

// ColNames returns the column names in order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.Cols))
	for i := range s.Cols {
		names[i] = s.Cols[i].Name
	}
	return names
}

// OrderedCols returns the indexes of columns with a usable (monotone)
// ordering property.
func (s *Schema) OrderedCols() []int {
	var idx []int
	for i := range s.Cols {
		if s.Cols[i].Ordering.Usable() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name, Kind: s.Kind, Base: s.Base}
	c.Cols = make([]Column, len(s.Cols))
	copy(c.Cols, s.Cols)
	for i := range c.Cols {
		if g := c.Cols[i].Ordering.Group; g != nil {
			c.Cols[i].Ordering.Group = append([]string(nil), g...)
		}
	}
	return c
}

// Validate checks structural invariants: nonempty name, unique column
// names, known types, and in-group ordering groups referring to real
// columns.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: unnamed schema")
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("schema %s: no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Cols))
	for i := range s.Cols {
		c := &s.Cols[i]
		lower := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("schema %s: column %d unnamed", s.Name, i)
		}
		if seen[lower] {
			return fmt.Errorf("schema %s: duplicate column %s", s.Name, c.Name)
		}
		seen[lower] = true
		if c.Type == TNull {
			return fmt.Errorf("schema %s: column %s has no type", s.Name, c.Name)
		}
		if c.Ordering.Kind != OrderNone && !c.Type.Ordered() {
			return fmt.Errorf("schema %s: column %s of type %s cannot carry ordering %s",
				s.Name, c.Name, c.Type, c.Ordering)
		}
		if c.Ordering.Kind == OrderIncreasingInGroup {
			for _, g := range c.Ordering.Group {
				if !s.HasCol(g) && !strings.EqualFold(g, c.Name) {
					return fmt.Errorf("schema %s: column %s ordering group references unknown column %s",
						s.Name, c.Name, g)
				}
			}
		}
	}
	return nil
}

// String renders the schema in DDL-like form.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s {", s.Kind, s.Name)
	for i := range s.Cols {
		c := &s.Cols[i]
		fmt.Fprintf(&b, " %s %s", c.Type, c.Name)
		if c.Interp != "" {
			fmt.Fprintf(&b, " %s", c.Interp)
		}
		if c.Ordering.Kind != OrderNone {
			fmt.Fprintf(&b, " (%s)", c.Ordering)
		}
		b.WriteString(";")
	}
	b.WriteString(" }")
	return b.String()
}
