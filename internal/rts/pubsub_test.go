package rts

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"gigascope/internal/exec"
	"gigascope/internal/ring"
	"gigascope/internal/schema"
)

func tupleBatch(tuples, hbs int) exec.Batch {
	b := make(exec.Batch, 0, tuples+hbs)
	for i := 0; i < tuples; i++ {
		b = append(b, exec.TupleMsg(schema.Tuple{schema.MakeUint(uint64(i))}))
	}
	for i := 0; i < hbs; i++ {
		b = append(b, exec.HeartbeatMsg(schema.Tuple{schema.MakeUint(uint64(i))}))
	}
	return b
}

// Regression for the publish/close race: a blocking HFTA send in flight
// while another goroutine runs the Stop-path close used to panic with
// "send on closed channel" (close closed the channel under mu while
// publish was blocked outside it). With delivery and closes both
// serialized under sendMu the interleaving is safe. Run with -race.
func TestPublishCloseCancelRace(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		p := &publisher{name: "x"} // shed=false: blocking HFTA sends
		keep := p.subscribe(1)
		tgt := p.subscribe(1)
		b := tupleBatch(2, 1)
		var wg sync.WaitGroup
		wg.Add(4)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.publish(b, 2)
			}
		}()
		go func() {
			defer wg.Done()
			for range keep.C {
			}
		}()
		go func() {
			defer wg.Done()
			tgt.Cancel()
		}()
		go func() {
			defer wg.Done()
			runtime.Gosched()
			p.close()
		}()
		wg.Wait()
	}
}

// Regression for the Cancel leak: cancelling a subscription whose
// publisher never publishes again used to leave the channel open and the
// drain goroutine parked forever (pruning only ran inside publish/close).
// Cancel now detaches eagerly: the channel closes, the drain goroutine
// exits, and the subscriber list shrinks without any publisher activity.
func TestCancelPrunesWithoutPublish(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 50
	pubs := make([]*publisher, n)
	for i := range pubs {
		pubs[i] = &publisher{name: "idle", shed: true}
		sub := pubs[i].subscribe(4)
		sub.Cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, p := range pubs {
			p.mu.Lock()
			left := len(p.subs)
			p.mu.Unlock()
			if left != 0 {
				clean = false
				break
			}
		}
		if clean && runtime.NumGoroutine() <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled subs not pruned: goroutines %d -> %d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// A cancelled subscription's channel must close even when a delivery is
// blocked on it at the moment of Cancel: the drain goroutine unsticks
// the in-flight send, then the detach closes the channel.
func TestCancelUnsticksBlockedPublish(t *testing.T) {
	p := &publisher{name: "x"} // blocking sends
	sub := p.subscribe(1)
	b := tupleBatch(1, 0)
	published := make(chan struct{})
	go func() {
		p.publish(b, 1) // fills the buffer
		p.publish(b, 1) // blocks until Cancel's drain goroutine consumes
		close(published)
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Cancel()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publish still blocked after Cancel")
	}
}

// Pins the shed accounting semantics: drops are per subscriber, not per
// batch — a batch that finds k full rings adds its tuple count k times —
// while tuples (the occupancy denominator) counts each publish once.
// Heartbeats lost at full rings land in hbDrops, and the SPSC ring edge
// accounts exactly like a channel subscriber.
func TestShedDropAccountingPerSubscriber(t *testing.T) {
	p := &publisher{name: "x", shed: true}
	p.subscribe(1)
	p.subscribe(1)
	p.ringEdge = ring.New[exec.Batch](1, nil) // capacity rounds up to 2

	b := tupleBatch(3, 1)
	p.publish(b, 3) // fills both channel buffers and one ring slot
	p.publish(b, 3) // fills the second ring slot; both channels drop
	p.publish(b, 3) // everything full: all three edges drop

	if got := p.tuples.Load(); got != 9 {
		t.Fatalf("tuples = %d, want 9 (once per publish)", got)
	}
	if got := p.batches.Load(); got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
	// Publish 2: two channel subscribers dropped 3 tuples each.
	// Publish 3: two channels + the ring edge dropped 3 each.
	if got := p.drops.Load(); got != 15 {
		t.Fatalf("drops = %d, want 15 (per-subscriber accounting)", got)
	}
	if got := p.hbDrops.Load(); got != 5 {
		t.Fatalf("hbDrops = %d, want 5", got)
	}
}

// Heartbeat-only batches never block, even on a backpressuring HFTA
// publisher: a full ring discards the bounds (counted) instead of
// stalling the pipeline for ordering hints.
func TestHeartbeatOnlyBatchNeverBlocks(t *testing.T) {
	p := &publisher{name: "x"} // shed=false
	p.subscribe(1)
	hb := tupleBatch(0, 2)
	done := make(chan struct{})
	go func() {
		p.publish(hb, 0) // fills the buffer
		p.publish(hb, 0) // full: must drop, not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat-only publish blocked on a full ring")
	}
	if got := p.hbDrops.Load(); got != 2 {
		t.Fatalf("hbDrops = %d, want 2", got)
	}
	if got := p.drops.Load(); got != 0 {
		t.Fatalf("drops = %d, want 0", got)
	}
}
