package pkt

import (
	"encoding/binary"
	"fmt"
)

// IPv4 fragmentation support. The paper (§3) describes a special IP
// defragmentation operator implemented against the query-node API; this
// file provides the wire-level substrate: fragmenting synthesized packets
// (for the traffic generator) and the MF-flag/fragment-offset fields the
// defragmenter needs.

// Fragment splits a full IPv4 frame into fragments whose IP payloads are
// at most mtu-20 bytes (mtu counts the IP header, not the Ethernet
// header). The input must be an unsnapped IPv4 frame. Offsets are rounded
// to 8-byte units as the protocol requires.
func Fragment(p *Packet, mtu int) ([]Packet, error) {
	if !p.IsIPv4() {
		return nil, fmt.Errorf("pkt: cannot fragment a non-IPv4 frame")
	}
	if p.CapLen() != p.WireLen {
		return nil, fmt.Errorf("pkt: cannot fragment a snapped capture")
	}
	ihl, ok := p.IPHeaderLen()
	if !ok {
		return nil, fmt.Errorf("pkt: truncated IP header")
	}
	payload := p.Data[EthHeaderLen+ihl:] // IP payload (transport header + data)
	maxChunk := (mtu - ihl) &^ 7
	if maxChunk <= 0 {
		return nil, fmt.Errorf("pkt: MTU %d too small", mtu)
	}
	if len(payload) <= maxChunk {
		return []Packet{*p}, nil
	}
	var frags []Packet
	for off := 0; off < len(payload); off += maxChunk {
		end := off + maxChunk
		more := true
		if end >= len(payload) {
			end = len(payload)
			more = false
		}
		chunk := payload[off:end]
		data := make([]byte, EthHeaderLen+ihl+len(chunk))
		copy(data, p.Data[:EthHeaderLen+ihl])
		copy(data[EthHeaderLen+ihl:], chunk)
		ip := data[EthHeaderLen:]
		binary.BigEndian.PutUint16(ip[2:], uint16(ihl+len(chunk)))
		fragField := uint16(off / 8)
		if more {
			fragField |= 0x2000 // MF
		}
		binary.BigEndian.PutUint16(ip[6:], fragField)
		binary.BigEndian.PutUint16(ip[10:], 0)
		binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ihl]))
		frags = append(frags, Packet{TS: p.TS, WireLen: len(data), Data: data})
	}
	return frags, nil
}

// Reassemble merges fragments (same IP id/src/dst/proto, any order) back
// into the original frame. It reports an error on gaps or inconsistent
// headers. Used by tests as the reference for the defrag operator.
func Reassemble(frags []Packet) (Packet, error) {
	if len(frags) == 0 {
		return Packet{}, fmt.Errorf("pkt: no fragments")
	}
	type piece struct {
		off  int
		data []byte
		more bool
	}
	var pieces []piece
	var first *Packet
	for i := range frags {
		f := &frags[i]
		ihl, ok := f.IPHeaderLen()
		if !ok {
			return Packet{}, fmt.Errorf("pkt: truncated fragment")
		}
		ff, _ := f.U16(ipOff + 6)
		off := int(ff&0x1fff) * 8
		if off == 0 {
			first = f
		}
		pieces = append(pieces, piece{
			off:  off,
			data: f.Data[EthHeaderLen+ihl:],
			more: ff&0x2000 != 0,
		})
	}
	if first == nil {
		return Packet{}, fmt.Errorf("pkt: missing first fragment")
	}
	total := 0
	sawLast := false
	for _, pc := range pieces {
		if end := pc.off + len(pc.data); end > total {
			total = end
		}
		if !pc.more {
			sawLast = true
		}
	}
	if !sawLast {
		return Packet{}, fmt.Errorf("pkt: missing last fragment")
	}
	payload := make([]byte, total)
	covered := make([]bool, total)
	for _, pc := range pieces {
		copy(payload[pc.off:], pc.data)
		for i := pc.off; i < pc.off+len(pc.data); i++ {
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			return Packet{}, fmt.Errorf("pkt: gap at payload byte %d", i)
		}
	}
	ihl, _ := first.IPHeaderLen()
	data := make([]byte, EthHeaderLen+ihl+total)
	copy(data, first.Data[:EthHeaderLen+ihl])
	copy(data[EthHeaderLen+ihl:], payload)
	ip := data[EthHeaderLen:]
	binary.BigEndian.PutUint16(ip[2:], uint16(ihl+total))
	binary.BigEndian.PutUint16(ip[6:], 0)
	binary.BigEndian.PutUint16(ip[10:], 0)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ihl]))
	return Packet{TS: first.TS, WireLen: len(data), Data: data}, nil
}
