// Package netsim synthesizes network traffic for the Gigascope
// reproduction: deterministic, byte-accurate Ethernet/IPv4/TCP/UDP frames
// at configurable bit rates with realistic flow structure, HTTP and
// non-HTTP payloads on port 80 (the paper's §4 workload: port 80 is used
// to tunnel through firewalls), and bursty on/off sources ("network
// traffic is notoriously bursty", §3).
//
// The generator replaces the paper's live OC48/GigE feeds: rates, mixes,
// and burstiness are controllable and reproducible from a seed.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"gigascope/internal/pkt"
)

// PayloadKind selects packet payload content.
type PayloadKind uint8

const (
	// PayloadRandom is pseudo-random bytes (tunneled/opaque traffic).
	PayloadRandom PayloadKind = iota
	// PayloadHTTP makes the payload an HTTP/1.x request or response line,
	// matching the paper's detection regex ^[^\n]*HTTP/1.*.
	PayloadHTTP
)

// Class describes one homogeneous traffic class.
type Class struct {
	Name     string
	RateMbps float64 // offered load, wire bits per second / 1e6
	PktBytes int     // wire size per packet (Ethernet frame)
	DstPort  uint16
	Proto    uint8 // pkt.ProtoTCP or pkt.ProtoUDP
	Payload  PayloadKind
	// HTTPFraction is the fraction of packets carrying HTTP payloads when
	// Payload is PayloadHTTP (the rest get random bytes: tunnels).
	HTTPFraction float64
	// Flows is the number of distinct (srcIP, srcPort) pairs to cycle
	// through; 0 means 256.
	Flows int
	// Bursty superimposes on/off modulation: mean on/off durations in
	// seconds (exponentially distributed). During off periods the class
	// is silent; during on periods it sends at RateMbps scaled so the
	// long-run average stays RateMbps.
	Bursty         bool
	MeanOnSeconds  float64
	MeanOffSeconds float64
	// FragmentMTU, when non-zero, fragments frames whose IP datagram
	// exceeds it (IP header + payload bytes), exercising the
	// defragmentation operator (paper §3).
	FragmentMTU int
}

func (c Class) flows() int {
	if c.Flows <= 0 {
		return 256
	}
	return c.Flows
}

// Config configures a generator.
type Config struct {
	Seed    int64
	Classes []Class
	// StartUsec is the virtual time of the first packet.
	StartUsec uint64
}

// Generator produces packets from all classes in global timestamp order.
type Generator struct {
	classes []*classState
	pq      eventQueue
	pending []pkt.Packet // fragments awaiting delivery
	count   uint64
	bits    uint64
}

type classState struct {
	cfg     Class
	rng     *rand.Rand
	nextUs  float64
	gapUs   float64 // mean interarrival in on state
	onUntil float64
	flows   []flowID
	// Flow selection models real traffic structure: a Zipf popularity
	// distribution over flows, emitted in trains of consecutive packets.
	// This temporal locality is what makes small direct-mapped LFTA
	// tables effective (paper §3).
	zipf      *rand.Zipf
	trainFlow int
	trainLeft int
	seq       uint32
	payload   []byte // scratch
}

type flowID struct {
	srcIP   uint32
	srcPort uint16
	dstIP   uint32
}

type eventQueue []*classState

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].nextUs < q[j].nextUs }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(*classState)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// New builds a generator; it panics on an unusable configuration (caller
// bug), returning descriptive errors for user-level mistakes instead.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("netsim: no traffic classes")
	}
	g := &Generator{}
	base := rand.New(rand.NewSource(cfg.Seed))
	for _, c := range cfg.Classes {
		if c.RateMbps <= 0 {
			continue // silent class
		}
		if c.PktBytes < pkt.EthHeaderLen+pkt.IPv4HeaderLen+pkt.UDPHeaderLen {
			return nil, fmt.Errorf("netsim: class %s: packet size %d too small", c.Name, c.PktBytes)
		}
		if c.Proto == 0 {
			c.Proto = pkt.ProtoTCP
		}
		cs := &classState{
			cfg: c,
			rng: rand.New(rand.NewSource(base.Int63())),
		}
		pktBits := float64(c.PktBytes * 8)
		cs.gapUs = pktBits / c.RateMbps // microseconds between packets at RateMbps
		if c.Bursty {
			if c.MeanOnSeconds <= 0 || c.MeanOffSeconds <= 0 {
				return nil, fmt.Errorf("netsim: class %s: bursty needs on/off durations", c.Name)
			}
			// Send faster during on periods so the average holds.
			duty := c.MeanOnSeconds / (c.MeanOnSeconds + c.MeanOffSeconds)
			cs.gapUs *= duty
			cs.onUntil = float64(cfg.StartUsec) + cs.rng.ExpFloat64()*c.MeanOnSeconds*1e6
		}
		for i := 0; i < c.flows(); i++ {
			cs.flows = append(cs.flows, flowID{
				srcIP:   0x0a000000 | uint32(cs.rng.Intn(1<<22)),
				srcPort: uint16(20000 + cs.rng.Intn(30000)),
				dstIP:   0xc0a80000 | uint32(cs.rng.Intn(1<<14)),
			})
		}
		cs.zipf = rand.NewZipf(cs.rng, 1.2, 4, uint64(len(cs.flows)-1))
		cs.nextUs = float64(cfg.StartUsec) + cs.rng.ExpFloat64()*cs.gapUs
		g.classes = append(g.classes, cs)
		heap.Push(&g.pq, cs)
	}
	if len(g.pq) == 0 {
		return nil, fmt.Errorf("netsim: all classes silent")
	}
	return g, nil
}

// Next returns the next packet in global time order, and false when the
// generator is exhausted (it never is — callers stop by time or count).
func (g *Generator) Next() (pkt.Packet, bool) {
	if len(g.pending) > 0 {
		p := g.pending[0]
		g.pending = g.pending[1:]
		g.count++
		g.bits += uint64(p.WireLen * 8)
		return p, true
	}
	cs := g.pq[0]
	p := cs.emit()
	cs.schedule()
	heap.Fix(&g.pq, 0)
	if mtu := cs.cfg.FragmentMTU; mtu > 0 && p.WireLen-pkt.EthHeaderLen > mtu {
		frags, err := pkt.Fragment(&p, mtu)
		if err == nil && len(frags) > 1 {
			p = frags[0]
			g.pending = append(g.pending, frags[1:]...)
		}
	}
	g.count++
	g.bits += uint64(p.WireLen * 8)
	return p, true
}

// Until generates packets up to the given virtual time (exclusive),
// calling fn for each.
func (g *Generator) Until(usec uint64, fn func(*pkt.Packet)) {
	for len(g.pending) > 0 || g.pq[0].nextUs < float64(usec) {
		p, _ := g.Next()
		fn(&p)
	}
}

// Count returns the number of packets generated so far.
func (g *Generator) Count() uint64 { return g.count }

// Bits returns the total wire bits generated so far.
func (g *Generator) Bits() uint64 { return g.bits }

func (cs *classState) schedule() {
	gap := cs.rng.ExpFloat64() * cs.gapUs
	t := cs.nextUs + gap
	if cs.cfg.Bursty {
		for t > cs.onUntil {
			// Enter an off period at onUntil, resume after it.
			off := cs.rng.ExpFloat64() * cs.cfg.MeanOffSeconds * 1e6
			on := cs.rng.ExpFloat64() * cs.cfg.MeanOnSeconds * 1e6
			t += off
			cs.onUntil += off + on
		}
	}
	cs.nextUs = t
}

func (cs *classState) emit() pkt.Packet {
	if cs.trainLeft == 0 {
		// Start a new packet train from a Zipf-popular flow.
		cs.trainFlow = int(cs.zipf.Uint64())
		cs.trainLeft = 1 + cs.rng.Intn(12)
	}
	cs.trainLeft--
	f := cs.flows[cs.trainFlow]
	ts := uint64(math.Round(cs.nextUs))
	payloadLen := cs.cfg.PktBytes - pkt.EthHeaderLen - pkt.IPv4HeaderLen
	if cs.cfg.Proto == pkt.ProtoUDP {
		payloadLen -= pkt.UDPHeaderLen
		return pkt.BuildUDP(ts, pkt.UDPSpec{
			SrcIP: f.srcIP, DstIP: f.dstIP,
			SrcPort: f.srcPort, DstPort: cs.cfg.DstPort,
			Payload: cs.buildPayload(payloadLen),
		})
	}
	payloadLen -= pkt.TCPHeaderLen
	cs.seq += uint32(payloadLen)
	return pkt.BuildTCP(ts, pkt.TCPSpec{
		SrcIP: f.srcIP, DstIP: f.dstIP,
		SrcPort: f.srcPort, DstPort: cs.cfg.DstPort,
		Seq: cs.seq, Flags: pkt.FlagACK | pkt.FlagPSH, Window: 65535,
		Payload: cs.buildPayload(payloadLen),
	})
}

var httpLines = [][]byte{
	[]byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: sim\r\n\r\n"),
	[]byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nConnection: keep-alive\r\n\r\n"),
	[]byte("POST /api/v1/report HTTP/1.1\r\nHost: example.com\r\nContent-Length: 64\r\n\r\n"),
	[]byte("HTTP/1.0 304 Not Modified\r\nDate: Mon, 09 Jun 2003 10:00:00 GMT\r\n\r\n"),
}

func (cs *classState) buildPayload(n int) []byte {
	if n <= 0 {
		return nil
	}
	if cap(cs.payload) < n {
		cs.payload = make([]byte, n)
	}
	buf := cs.payload[:n]
	isHTTP := cs.cfg.Payload == PayloadHTTP && cs.rng.Float64() < cs.cfg.HTTPFraction
	if isHTTP {
		line := httpLines[cs.rng.Intn(len(httpLines))]
		m := copy(buf, line)
		for i := m; i < n; i++ {
			buf[i] = byte('a' + i%26)
		}
		// Defensive: an HTTP payload must start with the request/response
		// line; if the packet is too small for the line it still matches
		// the paper's regex as long as "HTTP/1" fits on the first line.
		return buf
	}
	// Random bytes, guaranteed never to match ^[^\n]*HTTP/1.* (we exclude
	// 'H' entirely for determinism). The frame builders copy the payload,
	// so returning the scratch buffer is safe.
	for i := range buf {
		b := byte(cs.rng.Intn(256))
		if b == 'H' {
			b = 'h'
		}
		buf[i] = b
	}
	return buf
}
