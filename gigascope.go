// Package gigascope is a stream database for network applications — a
// from-scratch Go reproduction of Gigascope (Cranor, Johnson, Spatscheck,
// Shkapenyuk; SIGMOD 2003).
//
// Queries are written in GSQL, a pure stream dialect of SQL: every input
// and output is a stream. The compiler splits each query into low-level
// LFTA nodes that run on the packet capture path (with selection and snap
// length pushed into the NIC where possible) and high-level HFTA nodes
// that complete the computation; blocking operators are unblocked by
// attribute ordering properties and heartbeat punctuations rather than
// sliding windows.
//
// Basic use:
//
//	sys, _ := gigascope.New()
//	sys.MustAddQuery(`
//	    DEFINE { query_name tcpdest; }
//	    SELECT destIP, destPort, time FROM eth0.TCP
//	    WHERE ipversion = 4 and protocol = 6`, nil)
//	sub, _ := sys.Subscribe("tcpdest", 1024)
//	sys.Start()
//	go func() { /* feed packets */ sys.Inject("eth0", pkt); sys.Stop() }()
//	for batch := range sub.C {
//	    for _, msg := range batch { ... }
//	}
package gigascope

import (
	"fmt"
	"strings"

	"gigascope/internal/bgp"
	"gigascope/internal/capture"
	"gigascope/internal/core"
	"gigascope/internal/defrag"
	"gigascope/internal/faultinject"
	"gigascope/internal/gsql"
	"gigascope/internal/netflow"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
	"gigascope/internal/sysmon"
)

// Config tunes a System.
type Config struct {
	// RingSize is the capacity, in batches, of the rings connecting query
	// nodes and subscribers (default 1024). Each batch carries up to
	// MaxBatch messages, so a ring holds at least as many tuples as the
	// same setting did under the old per-message pipeline.
	RingSize int
	// MaxBatch is the output batch flush threshold: a node publishes its
	// pending batch when it reaches this many messages, or earlier on a
	// heartbeat or window end (default 64; 1 approximates per-message
	// delivery).
	MaxBatch int
	// InboxDepth is the capacity, in batches, of each HFTA node's input
	// inbox (default 64).
	InboxDepth int
	// HeartbeatUsec is the virtual-time interval between source
	// heartbeats (default 1s).
	HeartbeatUsec uint64
	// LFTATableSize is the direct-mapped aggregation table size used by
	// LFTA nodes (default 4096 slots).
	LFTATableSize int
	// DisableSplit turns off LFTA/HFTA query splitting (for ablation
	// experiments).
	DisableSplit bool
	// DisableSharing turns off the cross-query rewrite passes of script
	// compilation — shared-LFTA elimination and common-prefilter
	// extraction (paper §5) — so every query instantiates its own nodes
	// and no delivery gate is installed. For ablation experiments;
	// sharing is on by default for AddScript/AddScriptParams.
	DisableSharing bool
	// ValidateOrdering enables runtime verification of imputed ordering
	// properties; violations are counted in Stats (debugging mode).
	ValidateOrdering bool
	// Shards is the RSS shard count for the capture path (default 0 =
	// single-core inline LFTA execution). For n > 1, each interface steers
	// packets by flow hash across n shard workers, each running its own
	// LFTA instances; shard outputs are reunified by an order-preserving
	// merge under the original stream name, so queries, subscribers, and
	// ordering guarantees are unchanged.
	Shards int
	// SelfMonitor attaches the sysmon samplers: system statistics are
	// published as the SYSMON.NodeStats and SYSMON.IfaceStats streams,
	// queryable with ordinary GSQL and subscribable like query outputs.
	SelfMonitor bool
	// MonitorIntervalUsec is the sysmon sampling period on the virtual
	// clock (default 1s of virtual time).
	MonitorIntervalUsec uint64
	// QuarantineRestartUsec, when non-zero, lets a quarantined query node
	// restart with clean operator state after this much virtual time,
	// doubling per repeat quarantine up to 64x (bounded exponential
	// backoff). Zero means a faulting query stays quarantined until Stop.
	// User-written and source nodes always quarantine permanently.
	QuarantineRestartUsec uint64
	// DisableColumnar forces the capture path onto the row-at-a-time
	// reference pipeline instead of the columnar batch path (debugging
	// and A/B benchmarking switch; semantics are identical).
	DisableColumnar bool
	// SketchEps / SketchDelta override the default error parameters of
	// sketch aggregates (approx_distinct, approx_quantile, heavy_hitters,
	// cm_count) for call sites that do not spell them out; explicit literal
	// arguments in a query always win. Zero keeps the registered defaults.
	// Values must lie in (0,1); violations surface as compile errors.
	SketchEps   float64
	SketchDelta float64
}

// System is one Gigascope instance: a schema catalog, the query compiler,
// and the run time system.
type System struct {
	cfg     Config
	catalog *schema.Catalog
	mgr     *rts.Manager
	plans   map[string]*core.CompiledQuery
	scripts []*core.ScriptResult
}

// New builds a System with the built-in protocol schemas (ETH, IPV4, TCP,
// UDP, NETFLOW, BGPUPDATE) registered.
func New(cfg ...Config) (*System, error) {
	var c Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		return nil, err
	}
	if err := netflow.Register(cat); err != nil {
		return nil, err
	}
	if err := bgp.Register(cat); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     c,
		catalog: cat,
		mgr: rts.NewManager(cat, rts.Config{
			RingSize:              c.RingSize,
			MaxBatch:              c.MaxBatch,
			InboxDepth:            c.InboxDepth,
			HeartbeatUsec:         c.HeartbeatUsec,
			ValidateOrdering:      c.ValidateOrdering,
			Shards:                c.Shards,
			QuarantineRestartUsec: c.QuarantineRestartUsec,
			DisableColumnar:       c.DisableColumnar,
		}),
		plans: make(map[string]*core.CompiledQuery),
	}
	if c.SelfMonitor {
		if err := sysmon.Attach(s.mgr, sysmon.Config{IntervalUsec: c.MonitorIntervalUsec}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *System) compileOptions() *core.Options {
	return &core.Options{
		LFTATableSize:  s.cfg.LFTATableSize,
		DisableSplit:   s.cfg.DisableSplit,
		DisableSharing: s.cfg.DisableSharing,
		SketchEps:      s.cfg.SketchEps,
		SketchDelta:    s.cfg.SketchDelta,
	}
}

// DefineProtocols parses PROTOCOL declarations (the Gigascope DDL) and
// registers them. Interpretation functions named by the declarations must
// exist in the interpretation library.
func (s *System) DefineProtocols(ddl string) error {
	script, err := gsql.ParseScript(ddl)
	if err != nil {
		return err
	}
	if len(script.Queries) > 0 {
		return fmt.Errorf("gigascope: DefineProtocols accepts only PROTOCOL declarations; use AddQuery for queries")
	}
	for _, def := range script.Protocols {
		sc, err := core.ProtocolSchema(def)
		if err != nil {
			return err
		}
		for _, col := range sc.Cols {
			if col.Interp == "" {
				return fmt.Errorf("gigascope: protocol %s column %s has no interpretation function", sc.Name, col.Name)
			}
			if _, ok := pkt.LookupInterp(col.Interp); !ok {
				return fmt.Errorf("gigascope: protocol %s column %s: interpretation function %q not registered", sc.Name, col.Name, col.Interp)
			}
		}
		if err := s.catalog.Register(sc); err != nil {
			return err
		}
	}
	return nil
}

// AddQuery parses, compiles, and registers one GSQL query with the given
// parameter bindings, returning its compiled plan. LFTA-bearing queries
// must be added before Start.
func (s *System) AddQuery(text string, params map[string]Value) (*core.CompiledQuery, error) {
	q, err := gsql.ParseQuery(text)
	if err != nil {
		return nil, err
	}
	cq, err := core.Compile(s.catalog, q, s.compileOptions())
	if err != nil {
		return nil, err
	}
	if err := s.mgr.AddQuery(cq, params); err != nil {
		// Roll the catalog registrations back so the query can be fixed
		// and resubmitted.
		for _, n := range cq.Nodes {
			s.catalog.Remove(n.Name)
		}
		return nil, err
	}
	s.plans[cq.Name] = cq
	return cq, nil
}

// MustAddQuery is AddQuery panicking on error; for examples and tests.
func (s *System) MustAddQuery(text string, params map[string]Value) *core.CompiledQuery {
	cq, err := s.AddQuery(text, params)
	if err != nil {
		panic(err)
	}
	return cq
}

// AddScript parses a GSQL source file: protocol definitions are
// registered and every query is compiled and added (with no parameter
// bindings; use AddQuery or AddScriptParams for parameterized queries).
func (s *System) AddScript(text string) error {
	return s.AddScriptParams(text, nil)
}

// AddScriptParams is AddScript with per-query parameter bindings: the
// outer map is keyed by query name (case-insensitive), the inner map
// binds that query's DEFINE-block params.
//
// The script compiles as one unit (core.CompileScriptPlan): structurally
// identical LFTAs across the script's queries are instantiated once and
// fanned out to every reader, and the shared cheap predicates are
// factored into per-interface common prefilters installed as a delivery
// gate on the capture path (paper §5). Config.DisableSharing reverts to
// isolated per-query compilation.
func (s *System) AddScriptParams(text string, params map[string]map[string]Value) error {
	script, err := gsql.ParseScript(text)
	if err != nil {
		return err
	}
	res, err := core.CompileScriptPlan(s.catalog, script, s.compileOptions())
	if err != nil {
		return err
	}
	binds := make(map[string]map[string]Value, len(params))
	for name, p := range params {
		binds[strings.ToLower(name)] = p
	}
	for _, cq := range res.Queries {
		if err := s.mgr.AddQuery(cq, binds[strings.ToLower(cq.Name)]); err != nil {
			return err
		}
		s.plans[cq.Name] = cq
	}
	if len(res.Prefilters) > 0 {
		if err := s.mgr.InstallPrefilters(res.Prefilters); err != nil {
			return err
		}
	}
	s.scripts = append(s.scripts, res)
	return nil
}

// ExplainScript renders the whole-script plan view of every script added
// so far: per-query plan trees plus the cross-query rewrites — shared
// LFTAs and the common-prefilter groups (paper §5). Empty when no script
// has been added.
func (s *System) ExplainScript() string {
	var b strings.Builder
	for i, res := range s.scripts {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(core.ExplainScript(res))
	}
	return b.String()
}

// Explain renders the compiled plan of a registered query.
func (s *System) Explain(name string) (string, error) {
	cq, ok := s.plans[name]
	if !ok {
		return "", fmt.Errorf("gigascope: no query named %s", name)
	}
	return cq.Explain(), nil
}

// Plan returns the compiled plan of a registered query.
func (s *System) Plan(name string) (*core.CompiledQuery, bool) {
	cq, ok := s.plans[name]
	return cq, ok
}

// Catalog exposes the schema catalog (protocols and stream schemas).
func (s *System) Catalog() *schema.Catalog { return s.catalog }

// Registry lists every subscribable stream, including mangled LFTA names.
func (s *System) Registry() []string { return s.mgr.Registry() }

// Subscribe returns a handle on a stream by name.
func (s *System) Subscribe(name string, bufSize int) (*Subscription, error) {
	return s.mgr.Subscribe(name, bufSize)
}

// SetParams changes a query node's parameters on the fly.
func (s *System) SetParams(name string, params map[string]Value) error {
	return s.mgr.SetParams(name, params)
}

// SetApprox demotes (on=true) or promotes (on=false) a query's eligible
// exact aggregates to/from their sketched twins (count_distinct ->
// approx_distinct, quantile -> approx_quantile), returning how many
// aggregate slots are demotable. Groups already open finish in their
// current representation; the sketch union aggregates merge the mix.
// AttachOverloadController with DemoteFirst runs this automatically.
func (s *System) SetApprox(name string, on bool) (int, error) {
	return s.mgr.SetApprox(name, on)
}

// StateBytes estimates the aggregate-table memory a query currently holds
// across its plan (group keys plus per-group aggregate state, LFTA slots
// included). Queries without aggregation report 0.
func (s *System) StateBytes(name string) (int64, error) {
	return s.mgr.StateBytes(name)
}

// AddUserNode registers a hand-written query node (an exec.Operator-style
// stream operator) against the query-node API, the extension mechanism
// the paper describes for special operators like IP defragmentation (§3).
// Port i of the operator is fed from inputs[i]; its output is registered
// under name and subscribable like any query.
func (s *System) AddUserNode(name string, op StreamOperator, inputs []string) error {
	return s.mgr.AddUserNode(name, op, inputs)
}

// AddDefragNode registers the built-in IP defragmentation operator (the
// paper's §3 example of a user-written query node) reading the named
// stream, which must carry the standard IPV4 column set (time, srcIP,
// destIP, ip_id, protocol, fragment_offset, mf_flag, ip_payload).
// Downstream queries read whole datagrams FROM name.
func (s *System) AddDefragNode(name, input string, timeoutSec uint64) error {
	in, ok := s.catalog.Lookup(input)
	if !ok {
		return fmt.Errorf("gigascope: unknown stream %s", input)
	}
	cfg, err := defrag.ConfigFor(in)
	if err != nil {
		return err
	}
	cfg.TimeoutSec = timeoutSec
	out := in.Clone()
	out.Name = name
	op, err := defrag.New(cfg, out)
	if err != nil {
		return err
	}
	return s.mgr.AddUserNode(name, op, []string{input})
}

// Start freezes the LFTA set and launches the HFTA nodes.
func (s *System) Start() error { return s.mgr.Start() }

// Stop flushes all queries and closes every subscription.
func (s *System) Stop() { s.mgr.Stop() }

// Inject delivers one packet to the named interface ("" = default).
func (s *System) Inject(iface string, p *Packet) { s.mgr.Inject(iface, p) }

// InjectBatch delivers one interrupt/poll window of packets to the named
// interface ("" = default): LFTA output accumulated over the window
// crosses the rings as one batch per LFTA instead of one per packet.
func (s *System) InjectBatch(iface string, ps []*Packet) { s.mgr.InjectBatch(iface, ps) }

// AdvanceClock moves the virtual clock (microseconds), generating source
// heartbeats for idle interfaces.
func (s *System) AdvanceClock(usec uint64) { s.mgr.AdvanceClock(usec) }

// Stats returns per-node monitoring counters.
func (s *System) Stats() []rts.NodeStats { return s.mgr.Stats() }

// IfaceStats returns per-interface monitoring counters, including the
// capture-stack and NIC drop placement of any devices bound with
// BindCapture/BindNIC.
func (s *System) IfaceStats() []rts.IfaceStats { return s.mgr.IfaceStats() }

// Names of the self-monitoring streams registered when Config.SelfMonitor
// is set. Queries read them like any stream: FROM SYSMON.NodeStats.
const (
	StreamNodeStats  = sysmon.StreamNodeStats
	StreamIfaceStats = sysmon.StreamIfaceStats
)

// SubscribeStats subscribes to the raw SYSMON.NodeStats telemetry stream.
// Requires Config.SelfMonitor.
func (s *System) SubscribeStats(bufSize int) (*Subscription, error) {
	return s.mgr.Subscribe(StreamNodeStats, bufSize)
}

// SubscribeIfaceStats subscribes to the raw SYSMON.IfaceStats stream.
// Requires Config.SelfMonitor.
func (s *System) SubscribeIfaceStats(bufSize int) (*Subscription, error) {
	return s.mgr.Subscribe(StreamIfaceStats, bufSize)
}

// BindCapture routes the named interface's packets through a capture-stack
// simulation; packets it loses never reach the LFTAs, and its counters
// appear in IfaceStats and SYSMON.IfaceStats. Bind before traffic starts.
func (s *System) BindCapture(iface string, st *capture.Stack) {
	s.mgr.Interface(iface).BindCapture(st)
}

// BindNIC routes the named interface's packets through a virtual NIC
// device (filtering and snapping). Bind before traffic starts.
func (s *System) BindNIC(iface string, d *nic.Device) {
	s.mgr.Interface(iface).BindNIC(d)
}

// BindFaults routes the named interface's packets through a seeded fault
// injector before the NIC and capture stack: truncated captures, mangled
// IPv4 headers, option-bearing frames, and clock skew, reproducible from
// the injector's seed. Bind before traffic starts.
func (s *System) BindFaults(iface string, inj *faultinject.Injector) {
	s.mgr.Interface(iface).BindFaults(inj)
}

// AttachOverloadController registers a closed-loop overload controller
// (the paper's §4 load shedding run automatically): it watches an
// interface's capture-path drop counters, throttles the target query's
// sampling-rate parameter under overload, and restores it on recovery.
// Its decision stream (default SYSMON.Overload) is registered like any
// query output. Attach after the target query, before Start.
func (s *System) AttachOverloadController(cfg OverloadConfig) error {
	return s.mgr.AttachOverloadController(cfg)
}
