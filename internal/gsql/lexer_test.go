package gsql

import "testing"

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasics(t *testing.T) {
	toks, err := Tokenize("SELECT destIP, time/60 FROM eth0.tcp WHERE x >= 5;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokKeyword, TokIdent, TokComma, TokIdent, TokSlash, TokInt,
		TokKeyword, TokIdent, TokDot, TokIdent, TokKeyword, TokIdent,
		TokGe, TokInt, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("keyword text = %q", toks[0].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Tokenize("= <> != < <= > >= << >> + - * / % & | ^ ~ : .")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokEq, TokNe, TokNe, TokLt, TokLe, TokGt, TokGe, TokShl, TokShr,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokAmp, TokPipe,
		TokCaret, TokTilde, TokColon, TokDot, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexIPAndNumbers(t *testing.T) {
	toks, err := Tokenize("10.0.0.1 3.25 42 0xff")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIP || toks[0].Text != "10.0.0.1" {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Text != "3.25" {
		t.Errorf("tok1 = %v", toks[1])
	}
	if toks[2].Kind != TokInt {
		t.Errorf("tok2 = %v", toks[2])
	}
	if toks[3].Kind != TokInt || toks[3].Text != "0xff" {
		t.Errorf("tok3 = %v", toks[3])
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := Tokenize(`'^[^\n]*HTTP/1.*' "double" 'it\'s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "^[^\n]*HTTP/1.*" {
		t.Errorf("tok0 = %q", toks[0].Text)
	}
	if toks[1].Text != "double" {
		t.Errorf("tok1 = %q", toks[1].Text)
	}
	if toks[2].Text != "it's" {
		t.Errorf("tok2 = %q", toks[2].Text)
	}
}

func TestLexParam(t *testing.T) {
	toks, err := Tokenize("destPort = $port")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokParam || toks[2].Text != "port" {
		t.Errorf("param tok = %v", toks[2])
	}
}

func TestLexComments(t *testing.T) {
	src := `SELECT -- line comment
	// another
	/* block
	comment */ x FROM y`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKeyword, TokIdent, TokKeyword, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "/* unterminated", "a ! b", "$", "@"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}
