package difftest

import (
	"bytes"
	"strings"
	"testing"
)

// Every default bounded-error case must pass over several seeds and both
// sampled configs: sketched pipeline answers stay within their declared
// error of the exact oracle.
func TestApproxBoundedError(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		trace, err := GenTrace(seed, tracePackets)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ac := range DefaultApproxCases() {
			for _, cfg := range approxConfigs() {
				m, observed, err := CheckApprox(ac, seed, trace, cfg)
				if err != nil {
					t.Fatalf("seed %d %s %s: harness: %v", seed, ac.Name, cfg.Name(), err)
				}
				if m != nil {
					t.Fatalf("seed %d %s %s: %s", seed, ac.Name, cfg.Name(), m)
				}
				if observed < 0 || observed > ac.RelErr {
					t.Fatalf("seed %d %s %s: observed error %v outside [0, %v]",
						seed, ac.Name, cfg.Name(), observed, ac.RelErr)
				}
			}
		}
	}
}

// The standalone runner must report every cell ok and no failures.
func TestRunApproxMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if n := RunApproxMatrix(&buf, 2, tracePackets); n != 0 {
		t.Fatalf("%d failing cells:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "ok (observed err") || strings.Contains(out, "MISMATCH") {
		t.Fatalf("unexpected runner output:\n%s", out)
	}
}

// A deliberately impossible bound must produce a bounded-error mismatch
// carrying the observed error, not a harness error.
func TestApproxBoundViolationReported(t *testing.T) {
	trace, err := GenTrace(1, tracePackets)
	if err != nil {
		t.Fatal(err)
	}
	ac := ApproxCase{
		Name: "impossible",
		// A coarse quantile sketch (10% relative accuracy) against an
		// absurd 0.00001% tolerance: the comparison must trip.
		Sketched: `DEFINE { query_name imp; }
			SELECT tb, approx_quantile(total_length, 0.5, 0.1) FROM eth0.TCP
			GROUP BY time/2 as tb`,
		Exact: `DEFINE { query_name imp; }
			SELECT tb, quantile(total_length, 0.5) FROM eth0.TCP
			GROUP BY time/2 as tb`,
		KeyCols: 1,
		RelErr:  1e-7,
	}
	m, observed, err := CheckApprox(ac, 1, trace, Config{MaxBatch: 64, Shards: 1})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if m == nil {
		t.Fatal("impossible bound passed")
	}
	if m.Kind != "bounded-error" {
		t.Fatalf("mismatch kind = %q, want bounded-error", m.Kind)
	}
	if m.ObservedErr <= ac.RelErr {
		t.Fatalf("ObservedErr = %v, want > %v", m.ObservedErr, ac.RelErr)
	}
	if observed != m.ObservedErr {
		t.Fatalf("returned observed %v != mismatch ObservedErr %v", observed, m.ObservedErr)
	}
	if !strings.Contains(m.Detail, "exceeds bound") {
		t.Fatalf("detail missing bound text: %s", m.Detail)
	}
}
