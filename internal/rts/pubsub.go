package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/exec"
)

// publisher fans a node's output out to its subscribers over bounded
// rings (the shared-memory channels of the paper's architecture). Rings
// carry batches: each send moves a whole exec.Batch, so the per-tuple
// channel cost is amortized over the batch (see queryNode's flush policy
// for when batches close).
//
// Drop policy implements the §4 tuple-value heuristic at batch
// granularity: LFTA outputs (least processed, cheapest to lose) are shed
// when a ring is full — the whole batch is discarded and every tuple in it
// is counted, so drop accounting stays exact per tuple; HFTA outputs
// (highly processed, most valuable) block instead, applying backpressure.
// Heartbeat-only batches never block; heartbeats lost to full rings are
// counted in hbDrops.
type publisher struct {
	name  string
	level core.Level
	shed  bool

	mu     sync.Mutex
	subs   []*Subscription
	closed bool

	drops   atomic.Uint64 // tuples shed at full rings
	hbDrops atomic.Uint64 // heartbeats discarded at full rings
	batches atomic.Uint64 // batches published (ring crossings)
	tuples  atomic.Uint64 // tuples published (occupancy numerator)
}

func (p *publisher) subscribe(buf int) *Subscription {
	p.mu.Lock()
	defer p.mu.Unlock()
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		Name: p.name,
		C:    make(chan exec.Batch, buf),
		pub:  p,
	}
	if p.closed {
		close(s.C)
		return s
	}
	p.subs = append(p.subs, s)
	return s
}

// pruneLocked removes cancelled subscriptions and closes their channels.
// Caller holds p.mu. Safe because each publisher sends from exactly one
// goroutine (the owning node's), which is the goroutine calling this — no
// send can be in flight on a channel we close here.
func (p *publisher) pruneLocked() {
	cancelled := false
	for _, s := range p.subs {
		if s.cancelled.Load() {
			cancelled = true
			break
		}
	}
	if !cancelled {
		return
	}
	kept := make([]*Subscription, 0, len(p.subs))
	for _, s := range p.subs {
		if s.cancelled.Load() {
			close(s.C)
		} else {
			kept = append(kept, s)
		}
	}
	p.subs = kept
}

// publish delivers one batch to every subscriber. Exactly one goroutine
// (the owning query node's) calls publish for a given publisher.
func (p *publisher) publish(b exec.Batch) {
	if len(b) == 0 {
		return
	}
	p.mu.Lock()
	p.pruneLocked()
	subs := p.subs
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	nTuples := uint64(b.Tuples())
	nHBs := uint64(len(b)) - nTuples
	p.batches.Add(1)
	p.tuples.Add(nTuples)
	for _, s := range subs {
		if s.cancelled.Load() {
			continue
		}
		if p.shed || nTuples == 0 {
			// LFTA/source output sheds under overload; heartbeat-only
			// batches never block anyone.
			select {
			case s.C <- b:
			default:
				p.drops.Add(nTuples) // least-processed tuples shed first
				p.hbDrops.Add(nHBs)
			}
			continue
		}
		s.C <- b // HFTA output: backpressure, never lose a tuple
	}
}

func (p *publisher) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.pruneLocked()
	for _, s := range p.subs {
		close(s.C)
	}
	p.subs = nil
}

// Subscription is a query handle: a bounded ring of message batches from
// one stream plus the ability to demand a heartbeat from upstream. Ring
// capacity is counted in batches; each batch holds up to the manager's
// MaxBatch messages. Batches are shared between subscribers — treat them
// as read-only.
type Subscription struct {
	Name string
	C    chan exec.Batch

	pub       *publisher
	cancelled atomic.Bool
	reqFn     func()
}

// Cancel detaches the subscription. The publisher prunes it and closes the
// channel on its next publish (or at stream end, whichever comes first); a
// short-lived drain goroutine unsticks any send already in flight and
// exits as soon as the channel closes.
func (s *Subscription) Cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		go func() {
			for range s.C {
			}
		}()
	}
}

// RequestHeartbeat asks the producing chain for an ordering update token
// (paper §3's on-demand variant): the request propagates to the packet
// sources, which emit clock bounds on the next AdvanceClock.
func (s *Subscription) RequestHeartbeat() {
	if s.reqFn != nil {
		s.reqFn()
	}
}
