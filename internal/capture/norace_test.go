//go:build !race

package capture

const raceDetectorEnabled = false
