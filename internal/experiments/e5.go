package experiments

import (
	"fmt"
	"io"
	"time"

	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
)

// E5: the §5 deployment claim: "At peak periods, Gigascope processes 1.2
// million packets per second using an inexpensive dual 2.4 Ghz CPU
// server", running an application-protocol monitoring query set over two
// Gigabit Ethernet links.
//
// We run a realistic seven-query monitoring mix over two interfaces
// through the full RTS (real compiled operators, goroutine query nodes,
// rings) and measure wall-clock packets per second. Absolute numbers
// depend on the machine; the point is that a commodity host sustains
// packet rates of the reported order of magnitude.

// E5Queries is the monitoring mix: per-link filters, merged view,
// per-minute aggregates, and a scan detector — the kind of set the
// paper's deployments ran.
var E5Queries = []string{
	`DEFINE { query_name e5_link0; }
	 SELECT time, srcIP, destIP, destPort, total_length FROM eth0.TCP
	 WHERE ipversion = 4 and protocol = 6`,
	`DEFINE { query_name e5_link1; }
	 SELECT time, srcIP, destIP, destPort, total_length FROM eth1.TCP
	 WHERE ipversion = 4 and protocol = 6`,
	`DEFINE { query_name e5_all; }
	 MERGE e5_link0.time : e5_link1.time FROM e5_link0, e5_link1`,
	`DEFINE { query_name e5_port_rate; }
	 SELECT tb, destPort, count(*) as pkts, sum(total_length) as bytes
	 FROM e5_all GROUP BY time/60 as tb, destPort`,
	`DEFINE { query_name e5_talkers; }
	 SELECT tb, srcIP, sum(total_length) as bytes
	 FROM e5_all GROUP BY time/60 as tb, srcIP`,
	`DEFINE { query_name e5_web; }
	 SELECT time, srcIP, destIP FROM e5_all WHERE destPort = 80`,
	`DEFINE { query_name e5_web_rate; }
	 SELECT tb, count(*) as pkts FROM e5_web GROUP BY time/60 as tb`,
}

// e5Generator builds one link's traffic source for the deployment mix:
// 800 Mbit/s of 800-byte TCP across 8192 flows, 70% of the web class
// carrying HTTP payloads. Shared with the E9 shard sweep so both
// experiments measure the same workload.
func e5Generator(seed int64) (*netsim.Generator, error) {
	return netsim.New(netsim.Config{
		Seed: seed,
		Classes: []netsim.Class{
			{Name: "web", RateMbps: 400, PktBytes: 800, DstPort: 80,
				Proto: pkt.ProtoTCP, Payload: netsim.PayloadHTTP, HTTPFraction: 0.7, Flows: 4096},
			{Name: "other", RateMbps: 400, PktBytes: 800, DstPort: 443,
				Proto: pkt.ProtoTCP, Flows: 4096},
		},
	})
}

// E5Row is the outcome.
type E5Row struct {
	Queries       int
	Packets       uint64
	WallSeconds   float64
	PktsPerSecond float64
	PaperPPS      float64
}

// E5 pushes `packets` packets (split across two interfaces) through the
// full runtime and measures wall-clock throughput.
func E5(packets int) (E5Row, error) {
	cat, err := newCatalog()
	if err != nil {
		return E5Row{}, err
	}
	mgr := rts.NewManager(cat, rts.Config{RingSize: 8192})
	for _, q := range E5Queries {
		cq, err := compileQuery(cat, q, nil)
		if err != nil {
			return E5Row{}, err
		}
		if err := mgr.AddQuery(cq, nil); err != nil {
			return E5Row{}, err
		}
	}
	// Subscribe to the aggregate outputs and drain them concurrently.
	var subs []*rts.Subscription
	for _, name := range []string{"e5_port_rate", "e5_talkers", "e5_web_rate"} {
		sub, err := mgr.Subscribe(name, 8192)
		if err != nil {
			return E5Row{}, err
		}
		subs = append(subs, sub)
	}
	done := make(chan uint64, len(subs))
	for _, sub := range subs {
		go func(s *rts.Subscription) {
			var n uint64
			for b := range s.C {
				n += uint64(b.Tuples())
			}
			done <- n
		}(sub)
	}
	if err := mgr.Start(); err != nil {
		return E5Row{}, err
	}

	g0, err := e5Generator(31)
	if err != nil {
		return E5Row{}, err
	}
	g1, err := e5Generator(32)
	if err != nil {
		return E5Row{}, err
	}
	// Pre-generate so generation cost stays out of the measurement, and
	// pre-slice into poll windows the way a polling capture driver hands
	// packets to the RTS.
	const pollWindow = 256
	half := packets / 2
	p0 := make([]pkt.Packet, half)
	p1 := make([]pkt.Packet, half)
	w0 := make([]*pkt.Packet, 0, pollWindow)
	w1 := make([]*pkt.Packet, 0, pollWindow)
	for i := 0; i < half; i++ {
		p0[i], _ = g0.Next()
		p1[i], _ = g1.Next()
	}

	start := time.Now()
	for i := 0; i < half; i++ {
		w0 = append(w0, &p0[i])
		w1 = append(w1, &p1[i])
		if len(w0) == pollWindow || i == half-1 {
			mgr.InjectBatch("eth0", w0)
			mgr.InjectBatch("eth1", w1)
			w0 = w0[:0]
			w1 = w1[:0]
		}
	}
	elapsed := time.Since(start).Seconds()
	mgr.Stop()
	var results uint64
	for range subs {
		results += <-done
	}
	if results == 0 {
		return E5Row{}, fmt.Errorf("experiments: E5 produced no aggregate results")
	}
	total := uint64(2 * half)
	return E5Row{
		Queries:       len(E5Queries),
		Packets:       total,
		WallSeconds:   elapsed,
		PktsPerSecond: float64(total) / elapsed,
		PaperPPS:      1_200_000,
	}, nil
}

// PrintE5 renders the result.
func PrintE5(w io.Writer, r E5Row) {
	fmt.Fprintln(w, "E5: §5 deployment throughput — 7-query mix over two links, full RTS")
	fmt.Fprintf(w, "  queries: %d   packets: %d   wall: %.2fs\n", r.Queries, r.Packets, r.WallSeconds)
	fmt.Fprintf(w, "  measured: %.0f pkts/s   paper (dual 2.4 GHz, 2003): %.0f pkts/s\n",
		r.PktsPerSecond, r.PaperPPS)
}
