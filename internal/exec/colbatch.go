package exec

import "gigascope/internal/schema"

// ColBatch is the struct-of-arrays form of a window of tuples: one Col
// per input column, plus a selection vector of live row indexes. It is
// the capture-path counterpart of Batch (ROADMAP item 2): instead of a
// []Message of row tuples, the poll window is accumulated column-wise so
// selection and aggregation run as tight loops over primitive slices,
// with the selection vector carrying filter results instead of copying
// rows.
//
// Ownership and immutability: a ColBatch and its column payloads are
// owned by the producer (the capture-path Instance), which reuses them
// window to window. An operator's columnar path may read the columns and
// derive new selection vectors during the PushCols call but must not
// mutate column contents, retain references past the call, or alias the
// producer's Sel slice into its own state. Anything an operator emits
// downstream is materialized into fresh row tuples first.
type ColBatch struct {
	// N is the window length: every column slice has at least N entries
	// and every selection index is < N.
	N int
	// Cols holds one column per input-schema slot, indexed like the row
	// form's tuple positions.
	Cols []Col
	// Sel lists the live row indexes in ascending order. nil means all N
	// rows are live; an empty non-nil Sel means no rows are live (e.g.
	// every packet in the window failed field extraction).
	Sel []uint32

	idSel []uint32 // cached identity selection for Sel == nil
}

// ColOperator is implemented by operators with a native columnar path
// (capture-path LFTA operators: selection/projection and the
// direct-mapped aggregation). PushCols consumes one column window of
// tuples; heartbeats keep flowing through the row-form Push. Columnar
// reports whether the path is usable for this instance's expressions —
// when false the caller must stay on the row path (the semantic
// fallback; function calls are partial and have no columnar form).
type ColOperator interface {
	Operator
	Columnar() bool
	PushCols(cb *ColBatch, emit Emit) error
}

// Col is a single column: a declared type, an optional per-row null
// mask, and the payload slice matching the type. Exactly one payload
// slice is populated: U for bool/uint/int/IP (int as two's-complement
// bits, mirroring schema.Value), F for float, B for string. A Col with
// Ty == TNull is all-NULL and carries no payload.
type Col struct {
	Ty   schema.Type
	Null []bool // nil means no NULL rows
	U    []uint64
	F    []float64
	B    [][]byte
}

// IsNull reports whether row i of the column is NULL.
func (c *Col) IsNull(i int) bool {
	return c.Ty == schema.TNull || (c.Null != nil && c.Null[i])
}

// Value reconstructs row i as a schema.Value. String payloads are
// aliased, not copied, exactly as the row path's extraction does.
func (c *Col) Value(i int) schema.Value {
	if c.IsNull(i) {
		return schema.Null
	}
	switch c.Ty {
	case schema.TFloat:
		return schema.Value{Type: schema.TFloat, F: c.F[i]}
	case schema.TString:
		return schema.Value{Type: schema.TString, B: c.B[i]}
	default:
		return schema.Value{Type: c.Ty, U: c.U[i]}
	}
}

// prep retypes the column and sizes its payload and null slices for n
// rows, reusing capacity. Contents are undefined until written; callers
// must write Null[i] for every row they define (slices are reused, so a
// stale mask would otherwise leak between batches).
func (c *Col) prep(ty schema.Type, n int) {
	c.Ty = ty
	if cap(c.Null) < n {
		c.Null = make([]bool, n)
	}
	c.Null = c.Null[:n]
	switch ty {
	case schema.TNull:
	case schema.TFloat:
		if cap(c.F) < n {
			c.F = make([]float64, n)
		}
		c.F = c.F[:n]
	case schema.TString:
		if cap(c.B) < n {
			c.B = make([][]byte, n)
		}
		c.B = c.B[:n]
	default:
		if cap(c.U) < n {
			c.U = make([]uint64, n)
		}
		c.U = c.U[:n]
	}
}

// Set writes row i. v must be NULL or match the column type; it reports
// false (leaving the row NULL) on a type mismatch, which callers treat
// as "this window is not representable columnarly".
func (c *Col) Set(i int, v schema.Value) bool {
	if v.IsNull() {
		c.Null[i] = true
		return true
	}
	if v.Type != c.Ty {
		c.Null[i] = true
		return false
	}
	c.Null[i] = false
	switch c.Ty {
	case schema.TFloat:
		c.F[i] = v.F
	case schema.TString:
		c.B[i] = v.B
	default:
		c.U[i] = v.U
	}
	return true
}

// Prep sizes the batch for n rows over the given column types, reusing
// prior capacity, and resets Sel to nil (all rows live).
func (cb *ColBatch) Prep(types []schema.Type, n int) {
	cb.N = n
	if cap(cb.Cols) < len(types) {
		cb.Cols = make([]Col, len(types))
	}
	cb.Cols = cb.Cols[:len(types)]
	for i, ty := range types {
		cb.Cols[i].prep(ty, n)
	}
	cb.Sel = nil
}

// LiveSel returns the selection vector, materializing the identity
// selection when Sel is nil. The returned slice is read-only.
func (cb *ColBatch) LiveSel() []uint32 {
	if cb.Sel != nil {
		return cb.Sel
	}
	if cap(cb.idSel) < cb.N {
		cb.idSel = make([]uint32, cb.N)
		for i := range cb.idSel {
			cb.idSel[i] = uint32(i)
		}
	}
	for len(cb.idSel) < cb.N {
		cb.idSel = append(cb.idSel, uint32(len(cb.idSel)))
	}
	return cb.idSel[:cb.N]
}

// Row materializes row i as a fresh tuple (test and fallback helper).
func (cb *ColBatch) Row(i int) schema.Tuple {
	t := make(schema.Tuple, len(cb.Cols))
	for c := range cb.Cols {
		t[c] = cb.Cols[c].Value(i)
	}
	return t
}

// ColBatchFromRows converts row tuples to columnar form using the given
// declared column types. It reports nil when the rows are not
// representable (a non-NULL value whose type differs from the declared
// column type), in which case the caller stays on the row path. Rows
// shorter than the schema are padded with NULL.
func ColBatchFromRows(rows []schema.Tuple, types []schema.Type) *ColBatch {
	cb := &ColBatch{}
	cb.Prep(types, len(rows))
	for i, row := range rows {
		for c := range types {
			v := schema.Null
			if c < len(row) {
				v = row[c]
			}
			if !cb.Cols[c].Set(i, v) {
				return nil
			}
		}
	}
	return cb
}
