package core

import (
	"fmt"
	"sync/atomic"

	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Instance is one runnable instantiation of a compiled node. The RTS may
// run multiple instances of the same LFTA with different parameters
// (paper §3).
type Instance struct {
	Node *Node
	Op   exec.Operator
	Ctx  *exec.Ctx

	// Protocol-source extraction (LFTA instances only).
	extractors []extractor
	protoWidth int
	clockCols  []clockCol
	// rowBuf is the reusable extraction tuple for the capture hot path.
	// Reuse is safe because PushPacket runs under the owning node's lock
	// and no packet-source operator retains its input row.
	rowBuf schema.Tuple
	// dropped is written on the capture path and read by monitoring
	// snapshots (sysmon sampling) from other goroutines.
	dropped atomic.Uint64

	// Columnar capture path: colTypes is non-nil when the instantiated
	// operator has a usable columnar form; it maps protocol slots to
	// their extracted types (TNull for columns the query never
	// references). The operator itself is re-resolved from Op per window
	// — a swapped Op (fault injection, instrumentation) must not be
	// bypassed. colBuf/selBuf are reused window to window under the same
	// locking discipline as rowBuf.
	colTypes []schema.Type
	colBuf   exec.ColBatch
	selBuf   []uint32
}

type extractor struct {
	slot int
	spec *pkt.FieldSpec
}

type clockCol struct {
	slot  int
	clock func(usec uint64) schema.Value
}

// Instantiate binds parameters and prepares handles, returning a runnable
// instance with fresh operator state.
func (n *Node) Instantiate(params map[string]schema.Value) (*Instance, error) {
	if err := n.checkParams(params); err != nil {
		return nil, err
	}
	ctx, err := exec.NewCtx(n.handles, params)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Node: n, Ctx: ctx}

	switch n.Kind {
	case OpSelProj:
		inst.Op = exec.NewSelProj(n.selPred, n.selOuts, n.selHB, ctx, n.Out)
	case OpAgg:
		spec := *n.aggSpec
		spec.Ctx = ctx
		if n.Level == LevelLFTA {
			op, err := exec.NewLFTAAgg(spec, n.lftaTable)
			if err != nil {
				return nil, err
			}
			inst.Op = op
		} else {
			op, err := exec.NewAgg(spec)
			if err != nil {
				return nil, err
			}
			inst.Op = op
		}
	case OpJoin:
		spec := *n.joinSpec
		spec.Ctx = ctx
		op, err := exec.NewJoin(spec)
		if err != nil {
			return nil, err
		}
		inst.Op = op
	case OpMerge:
		op, err := exec.NewMerge(n.mergeCols, n.Out)
		if err != nil {
			return nil, err
		}
		inst.Op = op
	default:
		return nil, fmt.Errorf("core: node %s has unknown kind", n.Name)
	}

	if src := n.Sources[0]; src.IsProtocol && n.Level == LevelLFTA {
		inst.protoWidth = len(src.Schema.Cols)
		for _, idx := range n.needCols {
			col := &src.Schema.Cols[idx]
			spec, ok := pkt.LookupInterp(col.Interp)
			if !ok {
				return nil, fmt.Errorf("core: %s.%s: interpretation function %q not registered",
					src.Schema.Name, col.Name, col.Interp)
			}
			inst.extractors = append(inst.extractors, extractor{slot: idx, spec: spec})
			if spec.Clock != nil {
				inst.clockCols = append(inst.clockCols, clockCol{slot: idx, clock: spec.Clock})
			}
		}
		if co, ok := inst.Op.(exec.ColOperator); ok && co.Columnar() {
			inst.colTypes = make([]schema.Type, inst.protoWidth)
			for _, ex := range inst.extractors {
				inst.colTypes[ex.slot] = ex.spec.Type
			}
		}
	}
	return inst, nil
}

func (n *Node) checkParams(params map[string]schema.Value) error {
	for name, ty := range n.params {
		v, ok := params[name]
		if !ok {
			return fmt.Errorf("core: parameter $%s (%s) not bound", name, ty)
		}
		if v.Type != ty && !(v.Type.Numeric() && ty.Numeric()) {
			return fmt.Errorf("core: parameter $%s: want %s, got %s", name, ty, v.Type)
		}
	}
	return nil
}

// Rebind changes the instance's parameters on the fly (paper §3: query
// parameters "can be changed on-the-fly"). The caller must ensure no
// concurrent evaluation (the RTS runs it on the node's goroutine).
func (i *Instance) Rebind(params map[string]schema.Value) error {
	if err := i.Node.checkParams(params); err != nil {
		return err
	}
	return i.Ctx.Rebind(i.Node.handles, params)
}

// IsPacketSource reports whether the instance consumes raw packets.
func (i *Instance) IsPacketSource() bool { return i.protoWidth > 0 }

// PacketsDropped counts packets whose needed fields could not be
// interpreted (wrong framing, short capture).
func (i *Instance) PacketsDropped() uint64 { return i.dropped.Load() }

// PushPacket interprets a raw packet into a protocol tuple (extracting
// only the columns the query references) and pushes it through the
// operator. Packets whose referenced fields cannot be interpreted are
// dropped, mirroring the behavior of the interpretation library.
func (i *Instance) PushPacket(p *pkt.Packet, emit exec.Emit) error {
	if !i.IsPacketSource() {
		return fmt.Errorf("core: node %s is not a packet source", i.Node.Name)
	}
	if i.rowBuf == nil {
		i.rowBuf = make(schema.Tuple, i.protoWidth)
	}
	row := i.rowBuf
	for _, ex := range i.extractors {
		v, ok := ex.spec.Extract(p)
		if !ok {
			i.dropped.Add(1)
			return nil
		}
		row[ex.slot] = v
	}
	return i.Op.Push(0, exec.TupleMsg(row), emit)
}

// PushWindow runs a whole poll window of packets through the operator's
// columnar path: fields are extracted into the reused column batch, the
// selection vector lists the packets whose referenced fields all
// interpreted, and the operator consumes the window in one PushCols
// call. handled is false when the instance has no columnar path (or a
// value drifted from its declared column type), in which case nothing
// has been pushed or counted and the caller must fall back to
// per-packet PushPacket.
//
// Drop accounting matches the row path exactly: extraction stops at the
// first failing field per packet and the packet is dropped.
func (i *Instance) PushWindow(ps []*pkt.Packet, emit exec.Emit) (handled bool, err error) {
	if i.colTypes == nil {
		return false, nil
	}
	colOp, ok := i.Op.(exec.ColOperator)
	if !ok || !colOp.Columnar() {
		// The operator was swapped after instantiation (fault injection,
		// wrappers) for one without a columnar form: row path.
		return false, nil
	}
	if len(ps) == 0 {
		return true, nil
	}
	cb := &i.colBuf
	cb.Prep(i.colTypes, len(ps))
	sel := i.selBuf[:0]
	var drops uint64
	for r, p := range ps {
		live := true
		for _, ex := range i.extractors {
			v, ok := ex.spec.Extract(p)
			if !ok {
				drops++
				live = false
				break
			}
			if !cb.Cols[ex.slot].Set(r, v) {
				// Extracted value does not match the declared column type;
				// nothing is counted yet, so the row path re-runs cleanly.
				i.selBuf = sel[:0]
				return false, nil
			}
		}
		if live {
			sel = append(sel, uint32(r))
		}
	}
	i.selBuf = sel
	if drops > 0 {
		i.dropped.Add(drops)
	}
	cb.Sel = sel
	return true, colOp.PushCols(cb, emit)
}

// ClockHeartbeat injects a source heartbeat at the given virtual time:
// bounds are derived for every clock-driven column (time, timestamp). The
// operator transforms and forwards them downstream (paper §3's ordering
// update tokens).
func (i *Instance) ClockHeartbeat(usec uint64, emit exec.Emit) error {
	if !i.IsPacketSource() || len(i.clockCols) == 0 {
		return nil
	}
	bounds := make(schema.Tuple, i.protoWidth)
	for _, cc := range i.clockCols {
		bounds[cc.slot] = cc.clock(usec)
	}
	return i.Op.Push(0, exec.HeartbeatMsg(bounds), emit)
}

// Stats exposes the operator's counters when available.
func (i *Instance) Stats() exec.OpStats {
	type statser interface{ Stats() exec.OpStats }
	if s, ok := i.Op.(statser); ok {
		return s.Stats()
	}
	return exec.OpStats{}
}
