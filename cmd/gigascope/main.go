// gigascope runs a GSQL query set against synthetic traffic and prints
// the result streams — the whole system end to end: compilation,
// LFTA/HFTA split, the stream manager, and the traffic substrate.
//
//	gigascope -f queries.gsql [-watch name,name] [-seconds 10] [-rate 100]
//	          [-monitor]
//
// Traffic: a mix of port-80 HTTP/tunneled TCP and background TCP/UDP on
// interfaces eth0 and eth1 (also bound to the default interface).
//
// With -monitor, the system watches itself: the sysmon samplers publish
// SYSMON.NodeStats / SYSMON.IfaceStats, a built-in GSQL alert query
// aggregates ring shedding per node and ten-second window, and any window
// with drops prints as an ALERT line. Interface counters print at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"gigascope"
)

// monitorQuery is the self-monitoring alert: ring-shed totals per node
// per ten-second window, raised only when something was actually lost.
const monitorQuery = `
	DEFINE { query_name _sysmon_ringalert; }
	SELECT tb, name, sum(ringDrop) FROM SYSMON.NodeStats
	GROUP BY ts/10000000 as tb, name
	HAVING sum(ringDrop) > 0`

func main() {
	file := flag.String("f", "", "GSQL file with protocol definitions and queries (required)")
	watch := flag.String("watch", "", "comma-separated stream names to print (default: every query in the file)")
	seconds := flag.Float64("seconds", 5, "virtual seconds of traffic")
	rate := flag.Float64("rate", 100, "total offered load, Mbit/s")
	httpFrac := flag.Float64("http", 0.6, "fraction of port-80 packets that are HTTP")
	maxRows := flag.Int("n", 20, "max rows to print per stream (0 = all)")
	monitor := flag.Bool("monitor", false, "self-monitor: run a GSQL alert query over SYSMON.NodeStats and print ring-shed alerts")
	shards := flag.Int("shards", 0, "RSS-shard each interface's capture path across n workers (0 = inline)")
	noshare := flag.Bool("noshare", false, "disable cross-query sharing (shared LFTAs, common prefilter); outputs must not change")
	faults := flag.Int64("faults", 0, "inject seeded capture faults on eth0/eth1 (dirty-tap mix: truncation, bad IHL, bogus lengths, IP options, clock skew); the value is the seed, 0 = off")
	quarRestart := flag.Uint64("quarantine-restart-ms", 0, "auto-restart quarantined queries after this backoff base (doubles per quarantine, capped at 64x); 0 = quarantine is permanent")
	control := flag.String("control", "", "attach a closed-loop overload controller as query:param (the param is the query's sampling-rate parameter); decisions print as CONTROL lines")
	demoteFirst := flag.Bool("demote-first", false, "with -control: demote the target's exact aggregates to their sketched twins before cutting the sampling rate, and promote back after full recovery")
	sketchEps := flag.Float64("sketch-eps", 0, "default relative error for sketch aggregates that omit the literal (0 = builtin default); must be in (0,1)")
	sketchDelta := flag.Float64("sketch-delta", 0, "default failure probability for sketch aggregates that omit the literal (0 = builtin default); must be in (0,1)")
	params := flag.String("params", "", "comma-separated query.param=value bindings for DEFINE-block parameters (values parse as float, uint, or string)")
	serveAddr := flag.String("serve", "", "export every stream over the wire transport at [net:]addr (unix:/path or tcp:host:port; bare addr = tcp); remote processes subscribe with -connect")
	connectAddr := flag.String("connect", "", "import remote streams from a wire server at [net:]addr before compiling queries; name them with -import")
	imports := flag.String("import", "", "with -connect: comma-separated remote stream names to import as local streams (queries read FROM these names)")
	degrade := flag.String("degrade", "hold", "with -connect: policy when a peer is declared dead: hold (retry forever, downstream waits) or drop (close the partition, downstream merges continue)")
	topoPath := flag.String("topo", "", "topology file for coordinated deployment (see -coordinate)")
	coordinate := flag.Bool("coordinate", false, "with -topo: place the script across the topology's hosts, spawn one OS process per host, and print the sink's rows (sort-diffable against a single-process run)")
	placedHost := flag.String("placed-host", "", "internal: run as one host of a coordinated deployment")
	addrsFlag := flag.String("addrs", "", "internal: host wire addresses as name=addr[,name=addr...]")
	placeSeed := flag.Int64("place-seed", 1, "placement tie-break seed for -coordinate")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "usage: gigascope -f queries.gsql [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *coordinate || *placedHost != "" {
		if *topoPath == "" {
			fatal(fmt.Errorf("-coordinate requires -topo topology-file"))
		}
		opt := coordOptions{
			scriptPath: *file, topoPath: *topoPath, host: *placedHost,
			addrs: *addrsFlag, seed: *placeSeed, seconds: *seconds,
			rate: *rate, httpFrac: *httpFrac, maxRows: *maxRows,
		}
		if *placedHost != "" {
			runPlacedHost(opt)
		} else {
			runCoordinator(opt)
		}
		return
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}

	for name, v := range map[string]float64{"-sketch-eps": *sketchEps, "-sketch-delta": *sketchDelta} {
		if v != 0 && (v <= 0 || v >= 1) {
			fatal(fmt.Errorf("%s must be in (0,1), got %v", name, v))
		}
	}
	if *demoteFirst && *control == "" {
		fatal(fmt.Errorf("-demote-first requires -control"))
	}

	// Rings sized to match the 8192-batch subscription buffers below: the
	// inject loop is unpaced, so default-size rings shed under the burst
	// (visibly so on the sharded path, where the workers drain async).
	sys, err := gigascope.New(gigascope.Config{
		SelfMonitor: *monitor, Shards: *shards, RingSize: 8192,
		DisableSharing:        *noshare,
		QuarantineRestartUsec: *quarRestart * 1000,
		SketchEps:             *sketchEps, SketchDelta: *sketchDelta,
	})
	if err != nil {
		fatal(err)
	}
	binds, err := parseParams(*params)
	if err != nil {
		fatal(err)
	}
	// Imports register before the script compiles, so queries can read
	// FROM the remote stream names.
	var clients []*gigascope.WireClient
	if *connectAddr != "" {
		if *imports == "" {
			fatal(fmt.Errorf("-connect requires -import stream[,stream...]"))
		}
		pol := gigascope.DegradeHold
		switch *degrade {
		case "hold":
		case "drop":
			pol = gigascope.DegradeDropPartition
		default:
			fatal(fmt.Errorf("-degrade wants hold or drop, got %q", *degrade))
		}
		network, addr := splitAddr(*connectAddr)
		for _, stream := range strings.Split(*imports, ",") {
			stream = strings.TrimSpace(stream)
			// Retry the first dial: in a two-process launch the serving
			// process may still be compiling its script.
			var cl *gigascope.WireClient
			var err error
			for deadline := time.Now().Add(10 * time.Second); ; {
				cl, err = sys.ConnectWire(gigascope.WireClientConfig{
					Network: network, Addr: addr, Stream: stream, Degrade: pol,
				})
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "gigascope: imported %s from %s\n", stream, *connectAddr)
			clients = append(clients, cl)
		}
	}
	if err := sys.AddScriptParams(string(src), binds); err != nil {
		fatal(err)
	}
	if *monitor {
		if _, err := sys.AddQuery(monitorQuery, nil); err != nil {
			fatal(err)
		}
	}
	var injectors []*gigascope.FaultInjector
	if *faults != 0 {
		for _, ifc := range []string{"eth0", "eth1"} {
			inj := gigascope.NewFaultInjector(gigascope.DefaultFaultConfig(*faults))
			sys.BindFaults(ifc, inj)
			injectors = append(injectors, inj)
		}
	}
	if *control != "" {
		target, param, ok := strings.Cut(*control, ":")
		if !ok || target == "" || param == "" {
			fatal(fmt.Errorf("-control wants query:param, got %q", *control))
		}
		if err := sys.AttachOverloadController(gigascope.OverloadConfig{
			Target: target, Param: param, DemoteFirst: *demoteFirst,
		}); err != nil {
			fatal(err)
		}
	}

	var names []string
	if *watch != "" {
		names = strings.Split(*watch, ",")
	} else {
		for _, n := range sys.Registry() {
			// Internal streams: mangled LFTA halves, per-shard copies,
			// raw telemetry, and the monitor's own alert query (printed
			// as ALERT lines).
			if strings.HasPrefix(n, "_lfta_") || strings.HasPrefix(n, "_sysmon_") ||
				strings.Contains(n, "#shard") ||
				strings.HasPrefix(strings.ToUpper(n), "SYSMON.") {
				continue
			}
			names = append(names, n)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		sub, err := sys.Subscribe(strings.TrimSpace(name), 8192)
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func(name string, sub *gigascope.Subscription) {
			defer wg.Done()
			rows := 0
			for b := range sub.C {
				for _, m := range b {
					if m.IsHeartbeat() {
						continue
					}
					rows++
					if *maxRows == 0 || rows <= *maxRows {
						mu.Lock()
						fmt.Printf("%-20s %s\n", name+":", m.Tuple)
						mu.Unlock()
					}
				}
			}
			mu.Lock()
			fmt.Printf("%-20s %d tuples total\n", name+":", rows)
			mu.Unlock()
		}(name, sub)
	}

	if *monitor {
		alerts, err := sys.Subscribe("_sysmon_ringalert", 8192)
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range alerts.C {
				for _, m := range b {
					if m.IsHeartbeat() {
						continue
					}
					mu.Lock()
					fmt.Printf("ALERT: node %s shed %s tuples in window %s\n",
						m.Tuple[1], m.Tuple[2], m.Tuple[0])
					mu.Unlock()
				}
			}
		}()
	}

	if *control != "" {
		decisions, err := sys.Subscribe(gigascope.StreamOverload, 8192)
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range decisions.C {
				for _, m := range b {
					if m.IsHeartbeat() {
						continue
					}
					// Cols: ts iface target rate drops livelocked throttled
					// applied demoted eps delta.
					mu.Lock()
					fmt.Printf("CONTROL: t=%s %s rate=%s drops=%s livelocked=%s demoted=%s eps=%s delta=%s\n",
						m.Tuple[0], m.Tuple[2], m.Tuple[3], m.Tuple[4], m.Tuple[5],
						m.Tuple[8], m.Tuple[9], m.Tuple[10])
					mu.Unlock()
				}
			}
		}()
	}

	if err := sys.Start(); err != nil {
		fatal(err)
	}

	var srv *gigascope.WireServer
	if *serveAddr != "" {
		network, addr := splitAddr(*serveAddr)
		srv, err = sys.ServeWire(network, addr, gigascope.WireServerConfig{})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gigascope: serving streams on %s (%s)\n", srv.Addr(), network)
		if *seconds > 0 {
			// The virtual-clock traffic loop below runs as fast as the CPU
			// allows — without this wait a serving process would finish and
			// fin before a subscriber launched alongside it ever connected
			// (a wire subscription only sees batches published after it
			// attaches). Proceed after a grace period so a serve with no
			// takers still completes.
			wait := time.Now().Add(10 * time.Second)
			for srv.Conns() == 0 && time.Now().Before(wait) {
				time.Sleep(10 * time.Millisecond)
			}
			if srv.Conns() == 0 {
				fmt.Fprintln(os.Stderr, "gigascope: no wire subscriber within 10s; starting traffic anyway")
			}
		}
	}

	web := *rate * 0.6
	bg := *rate - web
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 1,
		Classes: []gigascope.TrafficClass{
			{Name: "web", RateMbps: web, PktBytes: 1000, DstPort: 80,
				Proto: gigascope.ProtoTCP, Payload: gigascope.PayloadHTTP, HTTPFraction: *httpFrac},
			{Name: "tcp-bg", RateMbps: bg * 0.7, PktBytes: 800, DstPort: 443,
				Proto: gigascope.ProtoTCP},
			{Name: "udp-bg", RateMbps: bg * 0.3, PktBytes: 400, DstPort: 53,
				Proto: gigascope.ProtoUDP},
		},
	})
	if err != nil {
		fatal(err)
	}
	horizon := uint64(*seconds * 1e6)
	step := horizon / 100
	if step == 0 {
		step = horizon
	}
	if step == 0 {
		// -seconds 0 (an import-only process generates no local traffic):
		// the loop must not spin on a zero step.
		step = 1
	}
	ifaces := []string{"eth0", "eth1"}
	i := 0
	for usec := step; usec <= horizon; usec += step {
		gen.Until(usec, func(p *gigascope.Packet) {
			sys.Inject(ifaces[i%len(ifaces)], p)
			sys.Inject("", p)
			i++
		})
		sys.AdvanceClock(usec)
	}
	// Importing process: let each remote stream run to its end (the
	// server's fin, or this client degrading a dead peer away) before
	// stopping, so downstream aggregates see complete input.
	for _, cl := range clients {
		<-cl.Done()
	}
	sys.Stop()
	if srv != nil {
		// Let in-flight fin frames reach subscribers (clean end of
		// stream) before tearing the connections down.
		srv.Drain(10 * time.Second)
		srv.Close()
	}
	for _, cl := range clients {
		cl.Close()
	}
	wg.Wait()

	fmt.Println("\nnode statistics:")
	for _, s := range sys.Stats() {
		line := fmt.Sprintf("  %-6s %-24s in=%-9d out=%-9d dropped=%-7d ring-drops=%d",
			s.Level, s.Name, s.Op.In, s.Op.Out, s.Op.Dropped, s.RingDrop)
		if s.Quarantines > 0 {
			line += fmt.Sprintf(" quarantined=%v(x%d restarts=%d: %s)",
				s.Quarantined, s.Quarantines, s.Restarts, s.QuarantineReason)
		}
		fmt.Println(line)
	}
	if len(injectors) > 0 {
		fmt.Println("\nfault statistics:")
		for i, inj := range injectors {
			fs := inj.Stats()
			fmt.Printf("  eth%d    faulted=%-7d clean=%-9d truncated=%d bad-ihl=%d bad-len=%d options=%d clock-skew=%d clock-regress=%d\n",
				i, fs.Total(), fs.Clean, fs.Truncated, fs.BadIHL, fs.BadTotalLen,
				fs.Options, fs.ClockSkew, fs.ClockRegress)
		}
	}
	if *monitor {
		fmt.Println("\ninterface statistics:")
		for _, is := range sys.IfaceStats() {
			line := fmt.Sprintf("  %-8s lftas=%-3d packets=%-9d offered=%-9d heartbeats=%d",
				is.Name, is.LFTAs, is.Packets, is.Offered, is.Heartbeats)
			if is.Shards > 0 {
				line += fmt.Sprintf(" shards=%d shard-packets=%v", is.Shards, is.ShardPackets)
			}
			if is.HasCapture {
				line += fmt.Sprintf(" ring-drops=%d nic-overrun=%d livelocked=%v",
					is.Capture.RingDrops, is.Capture.NICOverrun, is.Livelocked)
			}
			if is.HasNIC {
				line += fmt.Sprintf(" nic-delivered=%d nic-filtered=%d", is.NICDelivered, is.NICFiltered)
			}
			fmt.Println(line)
		}
	}
}

// parseParams turns "query.param=value,..." into per-query binding maps.
// Values parse as uint, then float, falling back to string.
func parseParams(s string) (map[string]map[string]gigascope.Value, error) {
	if s == "" {
		return nil, nil
	}
	binds := map[string]map[string]gigascope.Value{}
	for _, item := range strings.Split(s, ",") {
		kv, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf("-params wants query.param=value, got %q", item)
		}
		query, param, ok := strings.Cut(kv, ".")
		if !ok || query == "" || param == "" {
			return nil, fmt.Errorf("-params wants query.param=value, got %q", item)
		}
		var v gigascope.Value
		if u, err := strconv.ParseUint(val, 0, 64); err == nil {
			v = gigascope.Uint(u)
		} else if f, err := strconv.ParseFloat(val, 64); err == nil {
			v = gigascope.Float(f)
		} else {
			v = gigascope.Str(val)
		}
		if binds[query] == nil {
			binds[query] = map[string]gigascope.Value{}
		}
		binds[query][param] = v
	}
	return binds, nil
}

// splitAddr parses "[net:]addr": unix:/path selects a unix socket,
// tcp:host:port (or a bare host:port) selects TCP.
func splitAddr(s string) (network, addr string) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", strings.TrimPrefix(s, "unix:")
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", strings.TrimPrefix(s, "tcp:")
	}
	return "tcp", s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gigascope: %v\n", err)
	os.Exit(1)
}
