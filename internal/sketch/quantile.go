package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Quantile is a DDSketch-style relative-error quantile sketch: values are
// binned into logarithmic buckets with base gamma = (1+alpha)/(1-alpha), so
// any rank query is answered with relative error at most alpha on the value.
//
// We use log buckets rather than KLL/GK because bucket-count addition makes
// Merge exact (commutative, associative, deterministic): per-partition
// sketches merge to precisely the single-pass sketch, which KLL's randomized
// compactors and GK's pruning cannot promise. The memory bound is intrinsic:
// the number of distinct buckets is at most log_gamma(max/min) + 2 — about
// 2200 buckets at alpha=0.01 even for values spanning the full uint64 range
// — so no collapsing (which would break merge exactness) is needed.
type Quantile struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	zero    uint64 // count of values in [-minIndexable, +minIndexable]
	count   uint64
	pos     map[int32]uint64
	neg     map[int32]uint64
}

// minIndexable is the smallest magnitude with its own log bucket; anything
// closer to zero lands in the exact zero bucket.
const minIndexable = 1e-9

// NewQuantile builds a sketch with relative value error at most alpha.
func NewQuantile(alpha float64) (*Quantile, error) {
	if err := checkFraction("eps", alpha); err != nil {
		return nil, err
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Quantile{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		pos:     make(map[int32]uint64),
		neg:     make(map[int32]uint64),
	}, nil
}

// Alpha is the relative error bound.
func (s *Quantile) Alpha() float64 { return s.alpha }

// Count is the number of values added.
func (s *Quantile) Count() uint64 { return s.count }

func (s *Quantile) index(x float64) int32 {
	return int32(math.Ceil(math.Log(x) / s.lnGamma))
}

func (s *Quantile) bucketValue(i int32) float64 {
	// Midpoint (in relative terms) of bucket i = (gamma^(i-1), gamma^i].
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add observes one value. NaN is ignored.
func (s *Quantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.count++
	switch {
	case x > minIndexable:
		s.pos[s.index(x)]++
	case x < -minIndexable:
		s.neg[s.index(-x)]++
	default:
		s.zero++
	}
}

// Query returns an estimate of the q-quantile (q in [0,1]): a value whose
// rank matches within the sketch's resolution and whose magnitude is within
// a factor (1±alpha) of the true quantile. Returns NaN on an empty sketch.
func (s *Quantile) Query(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the target is the ceil(q*n)-th smallest value (1-based).
	target := uint64(math.Ceil(q * float64(s.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	// Negative buckets, most negative (largest magnitude index) first.
	for _, i := range sortedKeys(s.neg, true) {
		cum += s.neg[i]
		if cum >= target {
			return -s.bucketValue(i)
		}
	}
	cum += s.zero
	if cum >= target {
		return 0
	}
	for _, i := range sortedKeys(s.pos, false) {
		cum += s.pos[i]
		if cum >= target {
			return s.bucketValue(i)
		}
	}
	// Rounding left target just past the end; return the largest bucket.
	keys := sortedKeys(s.pos, false)
	if len(keys) > 0 {
		return s.bucketValue(keys[len(keys)-1])
	}
	if s.zero > 0 {
		return 0
	}
	keys = sortedKeys(s.neg, true)
	return -s.bucketValue(keys[len(keys)-1])
}

func sortedKeys(m map[int32]uint64, desc bool) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if desc {
			return ks[i] > ks[j]
		}
		return ks[i] < ks[j]
	})
	return ks
}

// Merge adds o's buckets into s; alphas must match.
func (s *Quantile) Merge(o *Quantile) error {
	if s.alpha != o.alpha {
		return fmt.Errorf("sketch: quantile alpha mismatch (%v vs %v)", s.alpha, o.alpha)
	}
	for i, c := range o.pos {
		s.pos[i] += c
	}
	for i, c := range o.neg {
		s.neg[i] += c
	}
	s.zero += o.zero
	s.count += o.count
	return nil
}

// Footprint is the approximate in-memory size in bytes.
func (s *Quantile) Footprint() int { return 96 + 16*(len(s.pos)+len(s.neg)) }

// AppendBinary serializes the sketch (buckets in sorted order, so the
// encoding of a given state is unique).
func (s *Quantile) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.alpha))
	dst = binary.BigEndian.AppendUint64(dst, s.zero)
	dst = binary.BigEndian.AppendUint64(dst, s.count)
	for _, m := range []map[int32]uint64{s.pos, s.neg} {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m)))
		for _, i := range sortedKeys(m, false) {
			dst = binary.BigEndian.AppendUint32(dst, uint32(i))
			dst = binary.BigEndian.AppendUint64(dst, m[i])
		}
	}
	return dst
}

// ParseQuantile deserializes a sketch written by AppendBinary, returning it
// and the number of bytes consumed.
func ParseQuantile(b []byte) (*Quantile, int, error) {
	if len(b) < 24 {
		return nil, 0, fmt.Errorf("sketch: short quantile header")
	}
	alpha := math.Float64frombits(binary.BigEndian.Uint64(b))
	s, err := NewQuantile(alpha)
	if err != nil {
		return nil, 0, err
	}
	s.zero = binary.BigEndian.Uint64(b[8:])
	s.count = binary.BigEndian.Uint64(b[16:])
	off := 24
	for _, m := range []map[int32]uint64{s.pos, s.neg} {
		if len(b) < off+4 {
			return nil, 0, fmt.Errorf("sketch: truncated quantile bucket count")
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if n > 1<<24 || len(b) < off+12*n {
			return nil, 0, fmt.Errorf("sketch: truncated quantile buckets")
		}
		for j := 0; j < n; j++ {
			i := int32(binary.BigEndian.Uint32(b[off:]))
			c := binary.BigEndian.Uint64(b[off+4:])
			m[i] = c
			off += 12
		}
	}
	return s, off, nil
}
