package rts

import (
	"strings"
	"sync/atomic"
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/faultinject"
	"gigascope/internal/schema"
)

// passOp is a one-port pass-through operator for user-node tests.
type passOp struct{ out *schema.Schema }

func (o *passOp) Ports() int                { return 1 }
func (o *passOp) OutSchema() *schema.Schema { return o.out }
func (o *passOp) Push(port int, m exec.Message, emit exec.Emit) error {
	emit(m)
	return nil
}
func (o *passOp) FlushAll(emit exec.Emit) error { return nil }

func valueEq(a, b schema.Value) bool {
	return a.Type == b.Type && a.U == b.U && a.F == b.F && string(a.B) == string(b.B)
}

func rowsEqual(a, b []schema.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !valueEq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

func nodeStats(t *testing.T, m *Manager, name string) NodeStats {
	t.Helper()
	for _, ns := range m.Stats() {
		if ns.Name == name {
			return ns
		}
	}
	t.Fatalf("no stats for node %s", name)
	return NodeStats{}
}

// A panic inside one LFTA quarantines that query only: the capture path
// survives, and a sibling query's output is byte-identical to a
// fault-free run.
func TestLFTAPanicQuarantineSiblingByteIdentical(t *testing.T) {
	run := func(fault bool) (aRows, bRows []schema.Tuple, m *Manager) {
		cat := newCatalog(t)
		m = NewManager(cat, Config{})
		qa := mustCompile(t, cat, `
			DEFINE { query_name qa; }
			SELECT time, srcIP FROM tcp WHERE destPort = 80`)
		qb := mustCompile(t, cat, `
			DEFINE { query_name qb; }
			SELECT time, srcIP FROM tcp WHERE destPort = 443`)
		if err := m.AddQuery(qa, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.AddQuery(qb, nil); err != nil {
			t.Fatal(err)
		}
		if fault {
			qn := m.nodes["qa"]
			qn.inst.Op = &faultinject.FaultyOp{Inner: qn.inst.Op, FailAt: 2, Mode: faultinject.FailPanic}
		}
		subA, err := m.Subscribe("qa", 128)
		if err != nil {
			t.Fatal(err)
		}
		subB, err := m.Subscribe("qb", 128)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			port := uint16(80)
			if i%2 == 1 {
				port = 443
			}
			p := tcpPkt(uint64(i+1), uint32(i+1), port, "x")
			m.Inject("", &p)
		}
		m.Stop()
		return drain(t, subA), drain(t, subB), m
	}

	cleanA, cleanB, _ := run(false)
	faultA, faultB, m := run(true)

	if len(cleanA) != 5 || len(cleanB) != 5 {
		t.Fatalf("clean run rows: qa=%d qb=%d", len(cleanA), len(cleanB))
	}
	// The faulting query delivered only the pre-panic prefix.
	if len(faultA) != 1 {
		t.Fatalf("faulting query delivered %d rows, want 1", len(faultA))
	}
	// The sibling is byte-identical to the fault-free run.
	if !rowsEqual(cleanB, faultB) {
		t.Fatalf("sibling output diverged:\nclean=%v\nfault=%v", cleanB, faultB)
	}
	ns := nodeStats(t, m, "qa")
	if !ns.Quarantined || ns.Quarantines != 1 {
		t.Fatalf("qa not quarantined: %+v", ns)
	}
	if !strings.Contains(ns.QuarantineReason, "forced panic") {
		t.Fatalf("reason = %q", ns.QuarantineReason)
	}
	if ns.QuarDrop == 0 {
		t.Fatalf("no quarantine drops recorded: %+v", ns)
	}
	if nb := nodeStats(t, m, "qb"); nb.Quarantined || nb.Quarantines != 0 {
		t.Fatalf("sibling quarantined: %+v", nb)
	}
}

// A panic in an HFTA-level user node quarantines it on its own goroutine;
// the node keeps draining its inbox so the upstream forwarder never
// blocks, and the base stream keeps flowing to other subscribers.
func TestHFTAPanicQuarantineViaUserNode(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name base; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	baseSchema, ok := cat.Lookup("base")
	if !ok {
		t.Fatal("base schema not registered")
	}
	fop := &faultinject.FaultyOp{Inner: &passOp{out: baseSchema}, FailAt: 2, Mode: faultinject.FailPanic}
	if err := m.AddUserNode("relay", fop, []string{"base"}); err != nil {
		t.Fatal(err)
	}
	relaySub, err := m.Subscribe("relay", 128)
	if err != nil {
		t.Fatal(err)
	}
	baseSub, err := m.Subscribe("base", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := tcpPkt(uint64(i+1), uint32(i+1), 80, "x")
		m.Inject("", &p)
	}
	m.Stop()
	if rows := drain(t, baseSub); len(rows) != 6 {
		t.Fatalf("base rows = %d, want 6", len(rows))
	}
	if rows := drain(t, relaySub); len(rows) != 1 {
		t.Fatalf("relay rows = %d, want 1 (pre-panic prefix)", len(rows))
	}
	ns := nodeStats(t, m, "relay")
	if !ns.Quarantined || ns.Quarantines != 1 || ns.QuarDrop == 0 {
		t.Fatalf("relay stats = %+v", ns)
	}
	if fop.Fired() != 1 {
		t.Fatalf("fault fired %d times, want 1", fop.Fired())
	}
}

// An operator error (Push returning error) is the non-fatal case: counted
// in OpErrors, node keeps running, never quarantined.
func TestOpErrorCountedNotQuarantined(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name ebase; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sc, _ := cat.Lookup("ebase")
	fop := &faultinject.FaultyOp{Inner: &passOp{out: sc}, FailAt: 2, FailEvery: 2, Mode: faultinject.FailError}
	if err := m.AddUserNode("erelay", fop, []string{"ebase"}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("erelay", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := tcpPkt(uint64(i+1), uint32(i+1), 80, "x")
		m.Inject("", &p)
	}
	m.Stop()
	// Tuples 2, 4, 6 errored; 1, 3, 5 passed through.
	if rows := drain(t, sub); len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	ns := nodeStats(t, m, "erelay")
	if ns.Quarantined || ns.Quarantines != 0 {
		t.Fatalf("errors escalated to quarantine: %+v", ns)
	}
	if ns.OpErrors != 3 {
		t.Fatalf("OpErrors = %d, want 3", ns.OpErrors)
	}
}

// Quarantine backoff doubles per entry and caps at 64x the base.
func TestQuarantineBackoffBounds(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{QuarantineRestartUsec: 1000})
	cq := mustCompile(t, cat, `
		DEFINE { query_name bq; }
		SELECT time FROM tcp`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	qn := m.nodes["bq"]
	qn.mu.Lock()
	defer qn.mu.Unlock()
	want := uint64(1000)
	for i := 0; i < 12; i++ {
		qn.quarantine("test")
		if qn.backoffUsec != want {
			t.Fatalf("entry %d: backoff = %d, want %d", i, qn.backoffUsec, want)
		}
		if want < 64_000 {
			want *= 2
		}
		// Eligible again: restart to reset the quarantined flag.
		m.clock.Store(qn.restartAt)
		if !qn.maybeRestart() {
			t.Fatalf("entry %d: restart refused at eligibility", i)
		}
	}
	if got := qn.restarts.Load(); got != 12 {
		t.Fatalf("restarts = %d, want 12", got)
	}
}

// End-to-end auto-restart: a faulting LFTA quarantines, sits out its
// backoff dropping input, then restarts with clean state and resumes.
func TestQuarantineAutoRestart(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{QuarantineRestartUsec: 500_000})
	cq := mustCompile(t, cat, `
		DEFINE { query_name rq; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	qn := m.nodes["rq"]
	qn.inst.Op = &faultinject.FaultyOp{Inner: qn.inst.Op, FailAt: 1, Mode: faultinject.FailPanic}
	sub, err := m.Subscribe("rq", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.AdvanceClock(1_000_000)
	p1 := tcpPkt(1, 1, 80, "x") // t=1s: panics, restartAt = 1.5s
	m.Inject("", &p1)
	p2 := tcpPkt(1, 2, 80, "x") // still inside backoff: dropped
	p2.TS = 1_200_000
	m.Inject("", &p2)
	m.AdvanceClock(2_000_000) // backoff elapsed: heartbeat path restarts
	p3 := tcpPkt(1, 3, 80, "x")
	p3.TS = 2_100_000
	m.Inject("", &p3) // fresh instance: flows
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 1 || rows[0][1].IP() != 3 {
		t.Fatalf("rows = %v, want the single post-restart tuple", rows)
	}
	ns := nodeStats(t, m, "rq")
	if ns.Quarantined || ns.Quarantines != 1 || ns.Restarts != 1 {
		t.Fatalf("stats = %+v", ns)
	}
	if ns.QuarDrop == 0 {
		t.Fatalf("backoff window dropped nothing: %+v", ns)
	}
}

// panicSource panics on the first tick at or after panicAtUsec.
type panicSource struct {
	out         *schema.Schema
	panicAtUsec uint64
	ticks       atomic.Uint64
}

func newPanicSource(panicAt uint64) *panicSource {
	return &panicSource{
		out: &schema.Schema{
			Name: "psrc",
			Kind: schema.KindStream,
			Cols: []schema.Column{{Name: "ts", Type: schema.TUint,
				Ordering: schema.Ordering{Kind: schema.OrderIncreasing}}},
		},
		panicAtUsec: panicAt,
	}
}

func (s *panicSource) OutSchema() *schema.Schema { return s.out }
func (s *panicSource) Tick(now uint64, emit exec.Emit) {
	if now >= s.panicAtUsec {
		panic("sampler bug")
	}
	s.ticks.Add(1)
	emit(exec.TupleMsg(schema.Tuple{schema.MakeUint(now)}))
	// Trailing heartbeat, per the SourceNode contract: flushes the sample.
	emit(exec.HeartbeatMsg(schema.Tuple{schema.MakeUint(now)}))
}
func (s *panicSource) Heartbeat(now uint64, emit exec.Emit) {}
func (s *panicSource) Flush(now uint64, emit exec.Emit)     {}

// A panicking source node quarantines permanently — even with restarts
// enabled, there is no compiled plan to rebuild it from — and the clock
// path that drove the tick keeps running.
func TestSourceNodePanicPermanentQuarantine(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{QuarantineRestartUsec: 1000})
	if err := m.AddSourceNode("psrc", newPanicSource(2_000_000)); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("psrc", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.AdvanceClock(1_000_000) // healthy tick
	m.AdvanceClock(2_000_000) // panics
	m.AdvanceClock(9_000_000) // far past any backoff: must stay quarantined
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want the single healthy sample", rows)
	}
	ns := nodeStats(t, m, "psrc")
	if !ns.Quarantined || ns.Restarts != 0 {
		t.Fatalf("source node stats = %+v (want permanent quarantine)", ns)
	}
	if !strings.Contains(ns.QuarantineReason, "sampler bug") {
		t.Fatalf("reason = %q", ns.QuarantineReason)
	}
}

// On a sharded capture path, a panic in one shard's LFTA instance
// quarantines that shard only: the other shards' slices of the traffic
// keep flowing through the reunifying merge.
func TestShardWorkerQuarantineIsolation(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{Shards: 2})
	cq := mustCompile(t, cat, `
		DEFINE { query_name sq; }
		SELECT time, srcIP FROM tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sh0 := m.nodes["sq#shard0"]
	sh0.inst.Op = &faultinject.FaultyOp{Inner: sh0.inst.Op, FailAt: 1, Mode: faultinject.FailPanic}
	sub, err := m.Subscribe("sq", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		p := tcpPkt(uint64(i+1), uint32(i+1), 80, "x")
		m.Inject("", &p)
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) == 0 || len(rows) >= n {
		t.Fatalf("rows = %d, want shard 1's nonzero strict subset of %d", len(rows), n)
	}
	s0 := nodeStats(t, m, "sq#shard0")
	s1 := nodeStats(t, m, "sq#shard1")
	if !s0.Quarantined || s0.QuarDrop == 0 {
		t.Fatalf("shard0 stats = %+v", s0)
	}
	if s1.Quarantined || s1.Quarantines != 0 {
		t.Fatalf("shard1 stats = %+v", s1)
	}
	// Every tuple that reached the subscriber came from shard 1.
	if uint64(len(rows)) != s1.Op.Out {
		t.Fatalf("rows = %d but shard1 emitted %d", len(rows), s1.Op.Out)
	}
}
