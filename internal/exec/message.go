// Package exec implements the physical query operators of Gigascope:
// compiled expressions, selection/projection, ordered group-by aggregation
// (both the HFTA hash aggregation and the LFTA direct-mapped variant with
// collision eviction), two-stream window join, and N-way order-preserving
// merge. All operators are pure stream operators unblocked by ordering
// properties and heartbeat punctuations (paper §2.1, §3).
package exec

import (
	"fmt"

	"gigascope/internal/schema"
)

// Message is one unit on a stream: either a tuple or a heartbeat
// (punctuation) carrying lower bounds for the stream's ordered attributes
// (after Tucker & Maier, cited in paper §3). Bounds are aligned with the
// stream schema; a NULL bound means "no information for this column".
type Message struct {
	Tuple  schema.Tuple
	Bounds schema.Tuple // non-nil marks a heartbeat
}

// IsHeartbeat reports whether the message is a punctuation.
func (m Message) IsHeartbeat() bool { return m.Bounds != nil }

// TupleMsg wraps a tuple.
func TupleMsg(t schema.Tuple) Message { return Message{Tuple: t} }

// HeartbeatMsg wraps punctuation bounds.
func HeartbeatMsg(bounds schema.Tuple) Message { return Message{Bounds: bounds} }

func (m Message) String() string {
	if m.IsHeartbeat() {
		return "HB" + m.Bounds.String()
	}
	return m.Tuple.String()
}

// Emit receives operator output.
type Emit func(Message)

// Operator is a physical stream operator. Push processes one input message
// from the given port (0 for unary operators) and emits zero or more output
// messages. FlushAll force-closes all pending state (end of stream, or the
// user-requested flush the paper mentions for unordered aggregation).
type Operator interface {
	// Ports returns the number of input ports.
	Ports() int
	// Push processes one message.
	Push(port int, m Message, emit Emit) error
	// FlushAll emits everything still buffered.
	FlushAll(emit Emit) error
	// OutSchema describes the output stream.
	OutSchema() *schema.Schema
}

// Collect is a test helper Emit that appends to a slice.
func Collect(dst *[]Message) Emit {
	return func(m Message) { *dst = append(*dst, m) }
}

// CollectTuples gathers only tuples, discarding heartbeats.
func CollectTuples(dst *[]schema.Tuple) Emit {
	return func(m Message) {
		if !m.IsHeartbeat() {
			*dst = append(*dst, m.Tuple)
		}
	}
}

// RunTuples pushes a sequence of tuples through a unary operator followed
// by FlushAll, returning the emitted tuples. Test and example helper.
func RunTuples(op Operator, in []schema.Tuple) ([]schema.Tuple, error) {
	if op.Ports() != 1 {
		return nil, fmt.Errorf("exec: RunTuples needs a unary operator")
	}
	var out []schema.Tuple
	emit := CollectTuples(&out)
	for _, t := range in {
		if err := op.Push(0, TupleMsg(t), emit); err != nil {
			return nil, err
		}
	}
	if err := op.FlushAll(emit); err != nil {
		return nil, err
	}
	return out, nil
}
