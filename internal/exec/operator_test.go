package exec

import (
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// helpers -----------------------------------------------------------------

func compileOver(t *testing.T, s *schema.Schema, binding, src string) Expr {
	t.Helper()
	q, err := gsql.ParseQuery("SELECT time FROM x WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(s, binding)}
	e, err := c.Compile(q.Where)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return e
}

func compileSel(t *testing.T, s *schema.Schema, binding string, items ...string) []Expr {
	t.Helper()
	var out []Expr
	for _, it := range items {
		q, err := gsql.ParseQuery("SELECT " + it + " FROM x")
		if err != nil {
			t.Fatalf("parse %q: %v", it, err)
		}
		c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(s, binding)}
		e, err := c.Compile(q.Select[0].Expr)
		if err != nil {
			t.Fatalf("compile %q: %v", it, err)
		}
		out = append(out, e)
	}
	return out
}

func outSchema(names ...string) *schema.Schema {
	s := &schema.Schema{Name: "out", Kind: schema.KindStream}
	for _, n := range names {
		s.Cols = append(s.Cols, schema.Column{Name: n, Type: schema.TUint})
	}
	return s
}

func mkRow(time, port, l uint64) schema.Tuple {
	return schema.Tuple{
		schema.MakeUint(time),
		schema.MakeIP(0x0a000001),
		schema.MakeUint(port),
		schema.MakeUint(l),
		schema.MakeStr("GET / HTTP/1.1"),
		schema.MakeInt(0),
		schema.MakeFloat(1),
	}
}

// SelProj ------------------------------------------------------------------

func TestSelProjFilterAndProject(t *testing.T) {
	s := testInSchema()
	pred := compileOver(t, s, "x", "destPort = 80")
	outs := compileSel(t, s, "x", "time", "len*8")
	op := NewSelProj(pred, outs, []bool{true, false}, nil, outSchema("time", "bits"))
	in := []schema.Tuple{mkRow(1, 80, 100), mkRow(2, 443, 200), mkRow(3, 80, 50)}
	got, err := RunTuples(op, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d rows: %v", len(got), got)
	}
	if got[0][0].Uint() != 1 || got[0][1].Uint() != 800 {
		t.Errorf("row0 = %v", got[0])
	}
	if got[1][0].Uint() != 3 || got[1][1].Uint() != 400 {
		t.Errorf("row1 = %v", got[1])
	}
	st := op.Stats()
	if st.In != 3 || st.Out != 2 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelProjHeartbeatPropagation(t *testing.T) {
	s := testInSchema()
	outs := compileSel(t, s, "x", "time/60", "destPort")
	op := NewSelProj(nil, outs, []bool{true, false}, nil, outSchema("tb", "port"))
	var msgs []Message
	bounds := make(schema.Tuple, len(s.Cols))
	bounds[0] = schema.MakeUint(600) // time >= 600
	if err := op.Push(0, HeartbeatMsg(bounds), Collect(&msgs)); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !msgs[0].IsHeartbeat() {
		t.Fatalf("msgs = %v", msgs)
	}
	hb := msgs[0].Bounds
	if hb[0].IsNull() || hb[0].Uint() != 10 {
		t.Errorf("tb bound = %v, want 10", hb[0])
	}
	if !hb[1].IsNull() {
		t.Errorf("port bound = %v, want NULL (not order-preserving)", hb[1])
	}
}

func TestSelProjPartialFunctionDiscards(t *testing.T) {
	// getlpmid with no match discards the tuple (foreign-key join
	// semantics).
	dir := t.TempDir()
	path := dir + "/peer.tbl"
	writeFile(t, path, "10.0.0.0/8 7\n")
	s := testInSchema()
	q, _ := gsql.ParseQuery("SELECT getlpmid(srcIP, '" + path + "') FROM x")
	c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(s, "x")}
	e, err := c.Compile(q.Select[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtx(c.Handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := NewSelProj(nil, []Expr{e}, nil, ctx, outSchema("peer"))
	inMatch := mkRow(1, 80, 100)
	inMiss := mkRow(2, 80, 100)
	inMiss[1] = schema.MakeIP(0xC0000001) // 192.0.0.1: no prefix
	got, err := RunTuples(op, []schema.Tuple{inMatch, inMiss})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].Uint() != 7 {
		t.Fatalf("got %v", got)
	}
	if op.Stats().Dropped != 1 {
		t.Errorf("dropped = %d", op.Stats().Dropped)
	}
}

// Agg ----------------------------------------------------------------------

// buildCountAgg builds: SELECT tb, count(*) FROM s GROUP BY time/60 as tb
func buildCountAgg(t *testing.T, band uint64) *Agg {
	t.Helper()
	s := testInSchema()
	group := compileSel(t, s, "x", "time/60")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "cnt")
	postSel := compileSel(t, post, "out", "tb", "cnt")
	op, err := NewAgg(AggSpec{
		GroupExprs: group,
		OrdGroup:   0,
		Band:       band,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel,
		Out:        post,
	})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestAggFlushOnOrderedAdvance(t *testing.T) {
	op := buildCountAgg(t, 0)
	var out []Message
	emit := Collect(&out)
	// Three tuples in minute 0, two in minute 1.
	for _, ts := range []uint64{10, 20, 59} {
		if err := op.Push(0, TupleMsg(mkRow(ts, 80, 1)), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(tuplesOf(out)) != 0 {
		t.Fatalf("premature flush: %v", out)
	}
	if err := op.Push(0, TupleMsg(mkRow(60, 80, 1)), emit); err != nil {
		t.Fatal(err)
	}
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][0].Uint() != 0 || rows[0][1].Uint() != 3 {
		t.Fatalf("flush = %v", rows)
	}
	if op.OpenGroups() != 1 {
		t.Errorf("open groups = %d", op.OpenGroups())
	}
	if err := op.FlushAll(emit); err != nil {
		t.Fatal(err)
	}
	rows = tuplesOf(out)
	if len(rows) != 2 || rows[1][0].Uint() != 1 || rows[1][1].Uint() != 1 {
		t.Fatalf("final = %v", rows)
	}
}

func tuplesOf(msgs []Message) []schema.Tuple {
	var out []schema.Tuple
	for _, m := range msgs {
		if !m.IsHeartbeat() {
			out = append(out, m.Tuple)
		}
	}
	return out
}

func TestAggMultipleGroupsSortedFlush(t *testing.T) {
	// GROUP BY time/60, destPort: flushing a minute emits its port groups
	// sorted deterministically.
	s := testInSchema()
	group := compileSel(t, s, "x", "time/60", "destPort")
	cnt, _ := funcs.Global.Aggregate("count")
	sum, _ := funcs.Global.Aggregate("sum")
	lenArg := compileSel(t, s, "x", "len")[0]
	post := outSchema("tb", "port", "cnt", "bytes")
	postSel := compileSel(t, post, "out", "tb", "port", "cnt", "bytes")
	op, err := NewAgg(AggSpec{
		GroupExprs: group,
		OrdGroup:   0,
		Aggs: []AggInstance{
			{Spec: cnt, ArgType: schema.TNull},
			{Spec: sum, Arg: lenArg, ArgType: schema.TUint},
		},
		PostSelect: postSel,
		Out:        post,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	push := func(ts, port, l uint64) {
		if err := op.Push(0, TupleMsg(mkRow(ts, port, l)), emit); err != nil {
			t.Fatal(err)
		}
	}
	push(5, 443, 10)
	push(6, 80, 20)
	push(7, 80, 30)
	push(65, 80, 1) // advances to minute 1, flushes minute 0
	rows := tuplesOf(out)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Sorted by group key: port 80 packs before 443.
	if rows[0][1].Uint() != 80 || rows[0][2].Uint() != 2 || rows[0][3].Uint() != 50 {
		t.Errorf("row0 = %v", rows[0])
	}
	if rows[1][1].Uint() != 443 || rows[1][2].Uint() != 1 || rows[1][3].Uint() != 10 {
		t.Errorf("row1 = %v", rows[1])
	}
}

func TestAggBandedFlushLagsWatermark(t *testing.T) {
	// Band 1: groups stay open until the watermark passes ord+band.
	op := buildCountAgg(t, 1)
	var out []Message
	emit := Collect(&out)
	op.Push(0, TupleMsg(mkRow(30, 80, 1)), emit) // tb 0
	op.Push(0, TupleMsg(mkRow(70, 80, 1)), emit) // tb 1: wm=1, tb0 within band
	if len(tuplesOf(out)) != 0 {
		t.Fatalf("band violated: %v", out)
	}
	op.Push(0, TupleMsg(mkRow(35, 80, 1)), emit)  // straggler into tb 0
	op.Push(0, TupleMsg(mkRow(130, 80, 1)), emit) // tb 2: closes tb 0 only
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][0].Uint() != 0 || rows[0][1].Uint() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggHeartbeatClosesGroups(t *testing.T) {
	op := buildCountAgg(t, 0)
	var out []Message
	emit := Collect(&out)
	op.Push(0, TupleMsg(mkRow(10, 80, 1)), emit)
	// Heartbeat: time >= 120 closes minute 0 with no tuple flowing.
	bounds := make(schema.Tuple, len(testInSchema().Cols))
	bounds[0] = schema.MakeUint(120)
	op.Push(0, HeartbeatMsg(bounds), emit)
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][1].Uint() != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// And the heartbeat is forwarded with a transformed bound.
	last := out[len(out)-1]
	if !last.IsHeartbeat() || last.Bounds[0].Uint() != 2 {
		t.Errorf("forwarded HB = %v", last)
	}
}

func TestAggHaving(t *testing.T) {
	s := testInSchema()
	group := compileSel(t, s, "x", "time/60")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "cnt")
	postSel := compileSel(t, post, "out", "tb", "cnt")
	having := compileOver(t, post, "out", "cnt > 1")
	op, err := NewAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Having: having, Out: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunTuples(op, []schema.Tuple{
		mkRow(1, 80, 1), mkRow(2, 80, 1), mkRow(61, 80, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Uint() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggPreFilter(t *testing.T) {
	s := testInSchema()
	pred := compileOver(t, s, "x", "destPort = 80")
	group := compileSel(t, s, "x", "time/60")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "cnt")
	postSel := compileSel(t, post, "out", "tb", "cnt")
	op, err := NewAgg(AggSpec{
		Pred: pred, GroupExprs: group, OrdGroup: 0,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunTuples(op, []schema.Tuple{
		mkRow(1, 80, 1), mkRow(2, 443, 1), mkRow(3, 80, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Uint() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggRejectsBadSpec(t *testing.T) {
	if _, err := NewAgg(AggSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	s := testInSchema()
	group := compileSel(t, s, "x", "time/60")
	if _, err := NewAgg(AggSpec{GroupExprs: group, OrdGroup: 5}); err == nil {
		t.Error("out-of-range OrdGroup accepted")
	}
}

func TestAggDecreasingOrderedKey(t *testing.T) {
	// A decreasing ordered key flushes as the key falls (paper §2.1
	// allows decreasing timestamps, e.g. countdown sequence numbers).
	s := testInSchema()
	s.Cols[0].Ordering = schema.Ordering{Kind: schema.OrderDecreasing}
	group := compileSel(t, s, "x", "time/60")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("tb", "cnt")
	postSel := compileSel(t, post, "out", "tb", "cnt")
	op, err := NewAgg(AggSpec{
		GroupExprs: group, OrdGroup: 0, Desc: true,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	op.Push(0, TupleMsg(mkRow(130, 80, 1)), emit) // tb 2
	op.Push(0, TupleMsg(mkRow(125, 80, 1)), emit) // tb 2
	if len(tuplesOf(out)) != 0 {
		t.Fatal("premature flush")
	}
	op.Push(0, TupleMsg(mkRow(59, 80, 1)), emit) // tb 0: closes tb 2
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][0].Uint() != 2 || rows[0][1].Uint() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	op.FlushAll(emit)
	rows = tuplesOf(out)
	if len(rows) != 2 || rows[1][0].Uint() != 0 {
		t.Fatalf("final = %v", rows)
	}
}

func TestAggUnorderedKeyOnlyFlushesManually(t *testing.T) {
	// Paper §2.2: the ordered-group restriction "is not enforced (the
	// user can obtain output by flushing the query)".
	s := testInSchema()
	group := compileSel(t, s, "x", "destPort")
	cnt, _ := funcs.Global.Aggregate("count")
	post := outSchema("port", "cnt")
	postSel := compileSel(t, post, "out", "port", "cnt")
	op, err := NewAgg(AggSpec{
		GroupExprs: group, OrdGroup: -1,
		Aggs:       []AggInstance{{Spec: cnt, ArgType: schema.TNull}},
		PostSelect: postSel, Out: post,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	for i := 0; i < 100; i++ {
		op.Push(0, TupleMsg(mkRow(uint64(i), uint64(80+i%3), 1)), emit)
	}
	if len(tuplesOf(out)) != 0 {
		t.Fatal("unordered aggregation flushed spontaneously")
	}
	op.FlushAll(emit)
	if len(tuplesOf(out)) != 3 {
		t.Fatalf("flush = %v", tuplesOf(out))
	}
}
