package coord

import (
	"strings"
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

const placeScript = `
DEFINE { query_name feed; }
SELECT time, srcIP, destIP, destPort FROM eth0.TCP
WHERE ipversion = 4 and protocol = 6;

DEFINE { query_name counts; }
SELECT time, destPort, count(*) FROM feed
GROUP BY time, destPort;

DEFINE { query_name udptotal; }
SELECT time, count(*) FROM eth1.UDP
WHERE ipversion = 4
GROUP BY time;
`

func compileScript(t *testing.T, src string) []*core.CompiledQuery {
	t.Helper()
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		t.Fatal(err)
	}
	parsed, err := gsql.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileScriptPlan(cat, parsed, &core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Queries
}

func TestPlaceDeterministic(t *testing.T) {
	queries := compileScript(t, placeScript)
	topo := mustParse(t, trioSrc)
	m1, err := Place(queries, topo, PlaceOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Place(queries, topo, PlaceOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Render() != m2.Render() {
		t.Fatalf("same inputs, different placements:\n%s\nvs\n%s", m1.Render(), m2.Render())
	}
}

func TestPlacePinsLFTAsAndSplitsPartitions(t *testing.T) {
	queries := compileScript(t, placeScript)
	topo := mustParse(t, trioSrc)
	m, err := Place(queries, topo, PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// eth0 is split 2 ways: every eth0 LFTA appears once per capture
	// host, renamed, and its consumers see a reunify under the logical
	// name somewhere.
	partsSeen := map[string]int{}
	for _, h := range m.Hosts {
		tn := topo.Node(h.Name)
		for _, a := range h.Assignments {
			if a.Level != "lfta" {
				continue
			}
			if _, ok := tn.CaptureOf(a.Interface); !ok {
				t.Errorf("LFTA %s on %s which does not capture %s", a.Node, h.Name, a.Interface)
			}
			if a.Of > 1 {
				if a.Node != PartitionName(a.Logical, a.Partition) {
					t.Errorf("partition node name %s, want %s", a.Node, PartitionName(a.Logical, a.Partition))
				}
				partsSeen[a.Logical]++
			}
		}
	}
	for logical, n := range partsSeen {
		if n != 2 {
			t.Errorf("logical LFTA %s has %d partition instances, want 2", logical, n)
		}
	}
	if len(partsSeen) == 0 {
		t.Fatal("no partitioned LFTAs placed on a split-capture topology")
	}
	// The sink can read every query output: either a local assignment,
	// an import, or a reunify materializes each output name there.
	sink := m.Host(m.Sink)
	for _, q := range queries {
		name := strings.ToLower(q.Output().Name)
		ok := false
		for _, a := range sink.Assignments {
			if strings.ToLower(a.Node) == name {
				ok = true
			}
		}
		for _, imp := range sink.Imports {
			if strings.ToLower(imp.LocalName) == name {
				ok = true
			}
		}
		for _, r := range sink.Reunify {
			if strings.ToLower(r.Name) == name {
				ok = true
			}
		}
		if !ok {
			t.Errorf("query output %s not materialized at sink:\n%s", q.Output().Name, m.Render())
		}
	}
}

func TestPlaceErrorsOnUncapturedInterface(t *testing.T) {
	queries := compileScript(t, placeScript)
	topo := mustParse(t, "node only { cpu 10 capture eth0 }")
	_, err := Place(queries, topo, PlaceOptions{})
	if err == nil || !strings.Contains(err.Error(), "captures interface") {
		t.Fatalf("want no-captor error, got %v", err)
	}
}

func TestPlaceObservedCostsShiftHFTAs(t *testing.T) {
	queries := compileScript(t, placeScript)
	// Two identical HFTA-tier hosts: with default costs the greedy
	// balancer spreads HFTAs by utilization. Observing a huge cost for
	// one query's stream must deterministically change the modeled
	// utilization (and the manifest stays deterministic under the
	// observation).
	src := `
node capA { cpu 10 capture eth0 eth1 default uplink t1 }
node t1 { cpu 100 }
node t2 { cpu 100 }
node agg { cpu 100 sink }
`
	topo := mustParse(t, src)
	base, err := Place(queries, topo, PlaceOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	cm.Observed["feed"] = ObservedCost{InRate: 5_000_000, Selectivity: 1.0}
	obs, err := Place(queries, topo, PlaceOptions{Seed: 5, Costs: cm})
	if err != nil {
		t.Fatal(err)
	}
	obs2, err := Place(queries, topo, PlaceOptions{Seed: 5, Costs: cm})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Render() != obs2.Render() {
		t.Fatal("observed-cost placement is nondeterministic")
	}
	findCost := func(m *Manifest, node string) float64 {
		for _, h := range m.Hosts {
			for _, a := range h.Assignments {
				if strings.EqualFold(a.Node, node) {
					return a.CostUs
				}
			}
		}
		t.Fatalf("node %s not placed", node)
		return 0
	}
	if findCost(obs, "feed") <= findCost(base, "feed") {
		t.Errorf("observed 5M pkts/s did not raise feed's modeled cost (%v vs %v)",
			findCost(obs, "feed"), findCost(base, "feed"))
	}
}

func TestPlaceOrderIsProducerFirst(t *testing.T) {
	queries := compileScript(t, placeScript)
	topo := mustParse(t, trioSrc)
	m, err := Place(queries, topo, PlaceOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	for i, h := range m.Order {
		rank[h] = i
	}
	for _, h := range m.Hosts {
		for _, imp := range h.Imports {
			if rank[imp.From] >= rank[h.Name] {
				t.Errorf("host %s imports %s from %s, but %s starts later (order %v)",
					h.Name, imp.Stream, imp.From, imp.From, m.Order)
			}
		}
	}
}

func TestObserveStatsAndIfaceStats(t *testing.T) {
	cm := DefaultCostModel()
	cm.ObserveStats(nil, 0) // no-op on zero elapsed
	cm.ObserveIfaceStats(nil, 1_000_000)
	if len(cm.Observed) != 0 {
		t.Fatal("unexpected observations")
	}
}
