package experiments

import (
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/pkt"
)

// E13 compares the row and columnar capture paths; the comparison is
// vacuous if the deployment's packet-source LFTAs silently decline the
// columnar path (PushWindow handled=false makes both sides run the row
// path and the ratio measures nothing). Pin that every capture-level
// node in the E5 mix takes the columnar path on real generated traffic.
func TestE13WorkloadTakesColumnarPath(t *testing.T) {
	cat, err := newCatalog()
	if err != nil {
		t.Fatal(err)
	}
	g, err := e5Generator(7)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]*pkt.Packet, 64)
	for i := range ps {
		p, _ := g.Next()
		pp := p
		ps[i] = &pp
	}
	sources := 0
	for _, q := range E5Queries {
		cq, err := compileQuery(cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cq.LFTAs() {
			inst, err := n.Instantiate(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !inst.IsPacketSource() {
				continue
			}
			sources++
			handled, err := inst.PushWindow(ps, func(exec.Message) {})
			if err != nil {
				t.Fatalf("%s: PushWindow: %v", n.Name, err)
			}
			if !handled {
				t.Errorf("%s: packet-source LFTA declined the columnar path; E13's A/B would be vacuous", n.Name)
			}
		}
	}
	if sources == 0 {
		t.Fatal("E5 deployment compiled to no packet-source LFTAs")
	}
}
