package ring

import (
	"sync"
	"testing"
	"time"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {256, 256}, {300, 512},
	} {
		if got := New[int](tc.ask, nil).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestTryPushTryPopFIFO(t *testing.T) {
	r := New[int](4, nil)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on drained ring succeeded")
	}
}

func TestWraparound(t *testing.T) {
	r := New[int](4, nil)
	// Push/pop enough times to wrap the indices through the buffer
	// several times, in mixed fill levels.
	next := 0
	for round := 0; round < 50; round++ {
		n := 1 + round%4
		for i := 0; i < n; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("round %d: push %d failed", round, next+i)
			}
		}
		for i := 0; i < n; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = (%d, %v), want (%d, true)", round, v, ok, next+i)
			}
		}
		next += n
	}
}

func TestCloseDrain(t *testing.T) {
	r := New[int](8, nil)
	r.TryPush(1)
	r.TryPush(2)
	r.Close()
	if r.Done() {
		t.Fatal("Done before drain")
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = (%d, %v), want (1, true)", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Fatalf("Pop = (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop after close+drain reported a value")
	}
	if !r.Done() {
		t.Fatal("Done false after close+drain")
	}
}

// TestConcurrentTransfer is the core -race exercise: one producer using
// the blocking Push over a deliberately tiny ring (so both the full and
// empty parking paths trigger constantly), one consumer using blocking
// Pop, values must arrive exactly once in order.
func TestConcurrentTransfer(t *testing.T) {
	const n = 100000
	r := New[int](4, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	for i := 0; ; i++ {
		v, ok := r.Pop()
		if !ok {
			if i != n {
				t.Fatalf("stream ended after %d values, want %d", i, n)
			}
			break
		}
		if v != i {
			t.Fatalf("got %d at position %d", v, i)
		}
	}
	wg.Wait()
}

// TestSharedWakerMultiRing models the reunify topology: several rings,
// one consumer parked on a shared waker, producers on separate
// goroutines. All values must be observed.
func TestSharedWakerMultiRing(t *testing.T) {
	const perRing, nrings = 20000, 4
	w := NewWaker()
	rings := make([]*SPSC[int], nrings)
	for i := range rings {
		rings[i] = New[int](8, w)
	}
	var wg sync.WaitGroup
	for i, r := range rings {
		wg.Add(1)
		go func(base int, r *SPSC[int]) {
			defer wg.Done()
			for j := 0; j < perRing; j++ {
				r.Push(base + j)
			}
			r.Close()
		}(i*perRing, r)
	}
	seen := make(map[int]bool, perRing*nrings)
	open := nrings
	for open > 0 {
		progressed := false
		for _, r := range rings {
			for {
				v, ok := r.TryPop()
				if !ok {
					break
				}
				if seen[v] {
					t.Fatalf("value %d delivered twice", v)
				}
				seen[v] = true
				progressed = true
			}
		}
		open = 0
		for _, r := range rings {
			if !r.Done() {
				open++
			}
		}
		if !progressed && open > 0 {
			// Double-check park: clear, re-check, then wait.
			w.Clear()
			again := false
			for _, r := range rings {
				if r.Len() > 0 || r.Done() {
					again = true
					break
				}
			}
			if !again {
				<-w.Chan()
			}
		}
	}
	wg.Wait()
	if len(seen) != perRing*nrings {
		t.Fatalf("saw %d values, want %d", len(seen), perRing*nrings)
	}
}

// TestParkWakeStress is the lost-wakeup regression: wake decisions made
// from indices loaded *before* the publishing store can miss a peer that
// re-polled and parked mid-operation (consumer pops the last entry and
// parks between the producer's head load and tail store, or the mirror
// on the full edge), leaving an endpoint parked forever. Many short
// sessions over a capacity-2 ring maximize empty/full transitions and
// park pressure; a watchdog converts the would-be deadlock into a
// failure instead of hanging the test binary.
func TestParkWakeStress(t *testing.T) {
	const sessions = 200
	const n = 1000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := 0; s < sessions; s++ {
			r := New[int](2, nil)
			go func() {
				for i := 0; i < n; i++ {
					r.Push(i)
				}
				r.Close()
			}()
			for i := 0; ; i++ {
				v, ok := r.Pop()
				if !ok {
					if i != n {
						t.Errorf("session %d: stream ended after %d values, want %d", s, i, n)
					}
					break
				}
				if v != i {
					t.Errorf("session %d: got %d at position %d", s, v, i)
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("park/wake stress did not finish: lost wakeup deadlock")
	}
}

func BenchmarkSPSCTransfer(b *testing.B) {
	r := New[int](256, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := r.Pop(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(i)
	}
	r.Close()
	<-done
}

func BenchmarkChannelTransfer(b *testing.B) {
	ch := make(chan int, 256)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch <- i
	}
	close(ch)
	<-done
}
