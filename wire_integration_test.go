package gigascope

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

const wireFeedQuery = `
	DEFINE { query_name feed; }
	SELECT time, srcIP, destIP, destPort FROM eth0.TCP
	WHERE ipversion = 4 and protocol = 6`

const wireCountsQuery = `
	DEFINE { query_name counts; }
	SELECT time, destPort, count(*) FROM feed
	GROUP BY time, destPort`

func wireSock(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "gsw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return filepath.Join(dir, "s.sock")
}

// injectWireTraffic drives the deterministic seeded traffic both sides
// of the byte-identity comparison use: poll-window batches (one publish
// per step), so batch boundaries are reproducible.
func injectWireTraffic(t *testing.T, sys *System) {
	t.Helper()
	gen, err := NewTrafficGenerator(TrafficConfig{
		Seed: 42,
		Classes: []TrafficClass{
			{Name: "web", RateMbps: 20, PktBytes: 1000, DstPort: 80, Proto: ProtoTCP},
			{Name: "tls", RateMbps: 10, PktBytes: 800, DstPort: 443, Proto: ProtoTCP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2_000_000
	const step = horizon / 40
	for usec := uint64(step); usec <= horizon; usec += step {
		var window []*Packet
		gen.Until(usec, func(p *Packet) { window = append(window, p) })
		sys.InjectBatch("eth0", window)
		sys.AdvanceClock(usec)
	}
}

func collectRows(t *testing.T, sub *Subscription) []string {
	t.Helper()
	var rows []string
	timeout := time.After(30 * time.Second)
	for {
		select {
		case b, ok := <-sub.C:
			if !ok {
				return rows
			}
			for _, m := range b {
				if !m.IsHeartbeat() {
					rows = append(rows, m.Tuple.String())
				}
			}
		case <-timeout:
			t.Fatal("collectRows timed out")
		}
	}
}

// TestWireTwoSystemByteIdentity is the acceptance criterion from the
// paper's distributed architecture: splitting the pipeline across two
// run time systems joined by the wire transport must not change the
// answer. Fault-free, the aggregate rows are identical — same values,
// same order — to the single-process run.
func TestWireTwoSystemByteIdentity(t *testing.T) {
	// Reference: both queries in one System.
	single, err := New()
	if err != nil {
		t.Fatal(err)
	}
	single.MustAddQuery(wireFeedQuery, nil)
	single.MustAddQuery(wireCountsQuery, nil)
	refSub, err := single.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Start(); err != nil {
		t.Fatal(err)
	}
	injectWireTraffic(t, single)
	single.Stop()
	want := collectRows(t, refSub)
	if len(want) == 0 {
		t.Fatal("reference run produced no rows")
	}

	// Split: server runs the capture-side selection and exports "feed";
	// client imports it and runs the aggregation.
	sysS, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sysS.MustAddQuery(wireFeedQuery, nil)
	if err := sysS.Start(); err != nil {
		t.Fatal(err)
	}
	sock := wireSock(t)
	srv, err := sysS.ServeWire("unix", sock, WireServerConfig{RingBatches: 8192})
	if err != nil {
		t.Fatal(err)
	}

	sysC, err := New()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sysC.ConnectWire(WireClientConfig{Network: "unix", Addr: sock, Stream: "feed"})
	if err != nil {
		t.Fatal(err)
	}
	sysC.MustAddQuery(wireCountsQuery, nil)
	gotSub, err := sysC.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysC.Start(); err != nil {
		t.Fatal(err)
	}

	injectWireTraffic(t, sysS)
	sysS.Stop()
	if !srv.Drain(10 * time.Second) {
		t.Fatal("server did not drain")
	}
	srv.Close()
	<-cl.Done()
	got := collectRows(t, gotSub)
	sysC.Stop()
	cl.Close()

	if len(got) != len(want) {
		t.Fatalf("row count: wire %d vs single %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\n wire:   %s\n single: %s", i, got[i], want[i])
		}
	}
}

// TestWireReconnectGapVisibleInSysmon runs the transport under a seeded
// connection kill and checks the full observability chain: the client
// reconnects with backoff on its own, and the gap accounting surfaces
// through the client's PeerStats AND as SYSMON.NodeStats columns
// queryable with ordinary GSQL.
func TestWireReconnectGapVisibleInSysmon(t *testing.T) {
	sysS, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sysS.MustAddQuery(wireFeedQuery, nil)
	if err := sysS.Start(); err != nil {
		t.Fatal(err)
	}
	sock := wireSock(t)
	// Kill the connection at the 4th server write (schema frame is write
	// 0, so the cut lands mid-stream), exactly once, deterministically.
	wf := NewWireFaults(ConnFaultConfig{Seed: 9, KillAt: []uint64{3}})
	srv, err := sysS.ServeWire("unix", sock, WireServerConfig{
		RingBatches: 8192,
		WrapConn:    wf.WrapConn,
	})
	if err != nil {
		t.Fatal(err)
	}

	sysC, err := New(Config{SelfMonitor: true, MonitorIntervalUsec: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sysC.ConnectWire(WireClientConfig{
		Network: "unix", Addr: sock, Stream: "feed",
		BackoffMin: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The satellite requirement: peer-failure telemetry is just another
	// stream — an HFTA aggregation over SYSMON.NodeStats.
	sysC.MustAddQuery(`
		DEFINE { query_name peermon; }
		SELECT tb, name, sum(reconnects), sum(gapEvents) FROM SYSMON.NodeStats
		GROUP BY ts/1000000 as tb, name
		HAVING sum(reconnects) > 0`, nil)
	mon, err := sysC.Subscribe("peermon", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysC.Start(); err != nil {
		t.Fatal(err)
	}

	// Pace the traffic in wall-clock time so the kill/backoff/redial
	// cycle happens mid-stream (the reconnect needs a few milliseconds
	// of real time while virtual time keeps moving).
	gen, err := NewTrafficGenerator(TrafficConfig{
		Seed:    7,
		Classes: []TrafficClass{{Name: "web", RateMbps: 10, PktBytes: 1000, DstPort: 80, Proto: ProtoTCP}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3_000_000
	const step = horizon / 60
	for usec := uint64(step); usec <= horizon; usec += step {
		var window []*Packet
		gen.Until(usec, func(p *Packet) { window = append(window, p) })
		sysS.InjectBatch("eth0", window)
		sysS.AdvanceClock(usec)
		time.Sleep(2 * time.Millisecond)
	}
	// The client must have reconnected on its own by now.
	deadline := time.Now().Add(10 * time.Second)
	for cl.PeerStats().Reconnects == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	sysS.Stop()
	srv.Drain(10 * time.Second)
	srv.Close()
	<-cl.Done()
	ps := cl.PeerStats()
	sysC.Stop()
	cl.Close()

	if st := wf.Stats(); st.Kills != 1 {
		t.Fatalf("fault injector delivered %d kills, want 1", st.Kills)
	}
	if ps.Reconnects < 1 {
		t.Fatalf("client never reconnected: %+v", ps)
	}
	if ps.GapEvents < 1 {
		t.Fatalf("no gap event recorded: %+v", ps)
	}

	// And the same facts, through the query path: the HAVING clause only
	// passes windows that saw a reconnect, so any "feed" row is the gap
	// accounting surfacing in SYSMON.
	var sumRec uint64
	timeout := time.After(10 * time.Second)
drain:
	for {
		select {
		case b, ok := <-mon.C:
			if !ok {
				break drain
			}
			for _, m := range b {
				if m.IsHeartbeat() {
					continue
				}
				if m.Tuple[1].Str() == "feed" {
					sumRec += m.Tuple[2].Uint()
				}
			}
		case <-timeout:
			t.Fatal("peermon drain timed out")
		}
	}
	if sumRec < 1 {
		t.Fatalf("SYSMON peermon query never reported the reconnect (sum %d)", sumRec)
	}
}

// TestWireReunifyAcrossHosts is the paper's many-capture-hosts topology:
// two exporter systems each run the same capture-side selection over
// their own interface's traffic, a third system imports both partitions
// over the wire and reunifies them into one logical stream with the
// shard-reunify merge (schema agreement pinned by the same fingerprint
// the wire handshake checks).
func TestWireReunifyAcrossHosts(t *testing.T) {
	startExporter := func(sock string) (*System, *WireServer) {
		sys, err := New()
		if err != nil {
			t.Fatal(err)
		}
		sys.MustAddQuery(wireFeedQuery, nil)
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}
		srv, err := sys.ServeWire("unix", sock, WireServerConfig{RingBatches: 8192})
		if err != nil {
			t.Fatal(err)
		}
		return sys, srv
	}
	sockA, sockB := wireSock(t), wireSock(t)
	sysA, srvA := startExporter(sockA)
	sysB, srvB := startExporter(sockB)

	sysC, err := New()
	if err != nil {
		t.Fatal(err)
	}
	connect := func(sock, local string) *WireClient {
		cl, err := sysC.ConnectWire(WireClientConfig{
			Network: "unix", Addr: sock, Stream: "feed", LocalName: local,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	clA := connect(sockA, "feedA")
	clB := connect(sockB, "feedB")
	if err := sysC.AddReunifyNode("feed", []string{"feedA", "feedB"}); err != nil {
		t.Fatal(err)
	}
	sub, err := sysC.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysC.Start(); err != nil {
		t.Fatal(err)
	}

	// Each "host" captures a disjoint traffic class; the reunified stream
	// must carry both.
	injectOne := func(sys *System, seed int64, port uint16) {
		gen, err := NewTrafficGenerator(TrafficConfig{
			Seed:    seed,
			Classes: []TrafficClass{{Name: "c", RateMbps: 10, PktBytes: 1000, DstPort: port, Proto: ProtoTCP}},
		})
		if err != nil {
			t.Fatal(err)
		}
		const horizon = 1_000_000
		const step = horizon / 20
		for usec := uint64(step); usec <= horizon; usec += step {
			var window []*Packet
			gen.Until(usec, func(p *Packet) { window = append(window, p) })
			sys.InjectBatch("eth0", window)
			sys.AdvanceClock(usec)
		}
	}
	injectOne(sysA, 1, 80)
	injectOne(sysB, 2, 443)

	for _, s := range []*System{sysA, sysB} {
		s.Stop()
	}
	for _, srv := range []*WireServer{srvA, srvB} {
		srv.Drain(10 * time.Second)
		srv.Close()
	}
	// Both imports end (fin -> PortDone); the reunify output closes once
	// every partition is done, so the drain below terminates.
	<-clA.Done()
	<-clB.Done()

	byPort := map[uint64]int{}
	timeout := time.After(30 * time.Second)
	for {
		var b Batch
		var ok bool
		select {
		case b, ok = <-sub.C:
		case <-timeout:
			t.Fatal("reunified stream never closed")
		}
		if !ok {
			break
		}
		for _, m := range b {
			if !m.IsHeartbeat() {
				byPort[m.Tuple[3].Uint()]++
			}
		}
	}
	sysC.Stop()
	clA.Close()
	clB.Close()
	if byPort[80] == 0 || byPort[443] == 0 {
		t.Fatalf("reunified stream missing a partition: %v", byPort)
	}
	if len(byPort) != 2 {
		t.Fatalf("unexpected ports in reunified stream: %v", byPort)
	}
}
