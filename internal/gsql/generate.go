package gsql

import (
	"fmt"
	"math/rand"

	"gigascope/internal/schema"
)

// Seeded random query generation for the differential-test harness
// (internal/difftest). Queries are built as ASTs and rendered through
// Query.String(), so every generated case is guaranteed to round-trip
// through the parser — which is also what lets the harness minimize a
// failing case at the text level.
//
// The generated subset is deliberately confined to shapes whose output is
// a well-defined multiset under every pipeline configuration:
//
//   - ordered attributes are always derived from the `time` column
//     (nondecreasing); `timestamp` is avoided because simultaneous packets
//     make its declared strictness unverifiable,
//   - avg/sum arguments are uint expressions, so the split path's
//     sum/count recombination is exact (integer partials below 2^53),
//   - join window attributes come from increasing feeder columns, the
//     regime where the join's eviction discipline is lossless.

// GenCase is one generated differential-test case: a dependency-ordered
// query set plus bindings for any declared parameters.
type GenCase struct {
	Queries []*Query
	Params  map[string]schema.Value
}

// Texts renders the case's queries.
func (c *GenCase) Texts() []string {
	out := make([]string, len(c.Queries))
	for i, q := range c.Queries {
		out[i] = q.String()
	}
	return out
}

type generator struct {
	rng    *rand.Rand
	n      int // query counter
	np     int // param counter
	params map[string]schema.Value
}

// GenerateCase builds a seeded random query set: one to three independent
// units, each a selection, an aggregation, a two-feeder merge, or a
// two-feeder join.
func GenerateCase(seed int64) *GenCase {
	g := &generator{rng: rand.New(rand.NewSource(seed)), params: make(map[string]schema.Value)}
	var queries []*Query
	units := 1 + g.rng.Intn(3)
	for u := 0; u < units; u++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			queries = append(queries, g.selProj())
		case 3, 4, 5:
			queries = append(queries, g.agg())
		case 6, 7:
			queries = append(queries, g.merge()...)
		default:
			queries = append(queries, g.join()...)
		}
	}
	return &GenCase{Queries: queries, Params: g.params}
}

// GenerateScriptCase builds a seeded multi-query script case for the
// cross-query rewrite passes: 2..8 queries over a shared pool of cheap
// predicates and a fixed pass-through template, so the compiled script
// exercises common-prefilter extraction (overlapping conjuncts on the
// same interface/protocol) and shared-LFTA elimination (template
// instances differ only above the boundary). Every query remains
// independently evaluable, so the per-query naive oracle stays the
// reference.
func GenerateScriptCase(seed int64) *GenCase {
	g := &generator{rng: rand.New(rand.NewSource(seed ^ 0x5c819)), params: make(map[string]schema.Value)}

	// Shared atom pool: each maker rebuilds the same conjunct as a fresh
	// AST (queries must not alias expression nodes — the rewrite passes
	// splice conjuncts into per-query filters).
	pool := map[string][]atomMaker{}
	for _, proto := range []string{"TCP", "UDP"} {
		for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
			pool[proto] = append(pool[proto], g.pooledAtom(proto))
		}
	}
	// The sharing template: a fixed projection plus a fixed cheap
	// predicate; instances add only a varying expensive (HFTA-side) atom.
	tmplAtoms := pool["TCP"][:1+g.rng.Intn(2)]
	tmplCols := []string{"time", g.uintCol("TCP"), "wirelen"}

	var queries []*Query
	n := 2 + g.rng.Intn(7)
	for len(queries) < n {
		switch g.rng.Intn(8) {
		case 0, 1, 2:
			queries = append(queries, g.pooledSelProj(pool))
		case 3, 4:
			queries = append(queries, g.pooledAgg(pool))
		case 5:
			queries = append(queries, g.merge()...)
		default:
			// Two instances at once: a lone template query has nothing to
			// share its LFTA with.
			queries = append(queries, g.templateQuery(tmplCols, tmplAtoms),
				g.templateQuery(tmplCols, tmplAtoms))
		}
	}
	return &GenCase{Queries: queries, Params: g.params}
}

// atomMaker rebuilds one pooled conjunct as a fresh AST per call.
type atomMaker func(q func(string) Expr) Expr

// pooledAtom fixes a (column, op, literal) triple so every query drawing
// this atom contributes a structurally identical prefilter term.
func (g *generator) pooledAtom(proto string) atomMaker {
	c := g.uintCol(proto)
	op := g.cmpOp()
	v := g.constFor(c)
	return func(q func(string) Expr) Expr { return bin(op, q(c), uconst(v)) }
}

// pooledWhere draws 1..2 pool atoms plus at most one fresh atom.
func (g *generator) pooledWhere(q func(string) Expr, proto string, pool map[string][]atomMaker) Expr {
	atoms := pool[proto]
	conjs := []Expr{atoms[g.rng.Intn(len(atoms))](q)}
	if g.rng.Intn(2) == 0 {
		conjs = append(conjs, atoms[g.rng.Intn(len(atoms))](q))
	}
	if g.rng.Intn(3) == 0 {
		conjs = append(conjs, g.atom(q, proto))
	}
	var out Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = bin(OpAnd, out, c)
		}
	}
	return out
}

// pooledSelProj is selProj with pool-drawn predicates.
func (g *generator) pooledSelProj(pool map[string][]atomMaker) *Query {
	q := g.selProj()
	proto := q.Sources[0].Name
	q.Where = g.pooledWhere(func(c string) Expr { return col(c) }, proto, pool)
	return q
}

// pooledAgg is agg with pool-drawn predicates.
func (g *generator) pooledAgg(pool map[string][]atomMaker) *Query {
	q := g.agg()
	q.Where = g.pooledWhere(func(c string) Expr { return col(c) }, q.Sources[0].Name, pool)
	return q
}

// templateQuery instantiates the sharing template: identical projection
// and cheap conjuncts (so the LFTA fingerprints match across instances),
// with one varying expensive atom forcing the pass-through split.
func (g *generator) templateQuery(cols []string, atoms []atomMaker) *Query {
	q := &Query{Defs: g.defineName(), Kind: KindSelect,
		Sources: []TableRef{{Interface: "eth0", Name: "TCP"}}}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			continue
		}
		seen[c] = true
		q.Select = append(q.Select, SelectItem{Expr: col(c)})
	}
	unq := func(c string) Expr { return col(c) }
	var where Expr
	for _, mk := range atoms {
		a := mk(unq)
		if where == nil {
			where = a
		} else {
			where = bin(OpAnd, where, a)
		}
	}
	q.Where = bin(OpAnd, where, g.expensiveAtom(unq))
	return q
}

// --- small AST constructors ---

func col(name string) *ColRef          { return &ColRef{Name: name} }
func qcol(tbl, name string) *ColRef    { return &ColRef{Table: tbl, Name: name} }
func uconst(v uint64) *Const           { return &Const{Val: schema.MakeUint(v)} }
func fconst(v float64) *Const          { return &Const{Val: schema.MakeFloat(v)} }
func sconst(s string) *Const           { return &Const{Val: schema.MakeStr(s)} }
func ipconst(a uint32) *Const          { return &Const{Val: schema.MakeIP(a)} }
func bin(op Op, l, r Expr) *BinaryExpr { return &BinaryExpr{Op: op, L: l, R: r} }
func callFn(name string, args ...Expr) *FuncCall {
	return &FuncCall{Name: name, Args: args}
}

func (g *generator) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *generator) proto() string {
	if g.rng.Intn(2) == 0 {
		return "TCP"
	}
	return "UDP"
}

// uintCols lists the uint protocol columns safe for arithmetic and
// aggregation in both TCP and UDP (plus per-protocol extras).
func uintCols(proto string) []string {
	base := []string{"caplen", "wirelen", "total_length", "ttl", "srcPort", "destPort", "payload_length", "ip_id"}
	if proto == "UDP" {
		return append(base, "udp_length")
	}
	return base
}

func (g *generator) uintCol(proto string) string { return g.pick(uintCols(proto)) }

func (g *generator) defineName() map[string][]string {
	g.n++
	return map[string][]string{"query_name": {fmt.Sprintf("q%d", g.n)}}
}

func lastName(qs []*Query) string { return qs[len(qs)-1].Name() }

// cmpOp picks a comparison operator.
func (g *generator) cmpOp() Op {
	return []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[g.rng.Intn(6)]
}

// constFor returns a plausible literal for a uint column so predicates
// are neither always-true nor always-false.
func (g *generator) constFor(c string) uint64 {
	switch c {
	case "srcPort":
		return uint64(20000 + g.rng.Intn(30000))
	case "destPort":
		return []uint64{53, 80, 443, 8080}[g.rng.Intn(4)]
	case "ttl":
		return []uint64{32, 64, 128}[g.rng.Intn(3)]
	case "ip_id":
		return uint64(g.rng.Intn(65536))
	default: // lengths
		return []uint64{60, 200, 600, 1000, 1400}[g.rng.Intn(5)]
	}
}

// atom builds one cheap predicate conjunct over a protocol source.
func (g *generator) atom(q func(string) Expr, proto string) Expr {
	switch g.rng.Intn(6) {
	case 0, 1:
		c := g.uintCol(proto)
		return bin(g.cmpOp(), q(c), uconst(g.constFor(c)))
	case 2:
		c := g.uintCol(proto)
		k := uint64(2 + g.rng.Intn(5))
		return bin(OpEq, bin(OpMod, q(c), uconst(k)), uconst(uint64(g.rng.Intn(int(k)))))
	case 3:
		c := g.pick([]string{"srcIP", "destIP", "srcPort", "wirelen"})
		rate := []float64{0.25, 0.5, 0.75}[g.rng.Intn(3)]
		return callFn("samplehash", q(c), fconst(rate))
	case 4:
		// netsim sources draw srcIP from 10.0.0.0/10, so a /12 membership
		// test splits the stream.
		mask := []uint32{0xffc00000, 0xfff00000, 0xffff0000}[g.rng.Intn(3)]
		return callFn("ip_in_net", q("srcIP"), ipconst(0x0a000000|uint32(g.rng.Intn(1<<22))&mask), ipconst(mask))
	default:
		c := g.uintCol(proto)
		return bin(g.cmpOp(), q(c), q(g.uintCol(proto)))
	}
}

// expensiveAtom builds a payload-scanning conjunct, forcing the compiler
// down the passThroughLFTA split.
func (g *generator) expensiveAtom(q func(string) Expr) Expr {
	switch g.rng.Intn(3) {
	case 0:
		return callFn("str_find_substr", q("payload"), sconst("GET"))
	case 1:
		return callFn("str_regex_match", q("payload"), sconst("^[A-Z]+ /"))
	default:
		return callFn("str_prefix", q("payload"), sconst("HTTP"))
	}
}

// paramAtom builds a conjunct referencing a fresh declared parameter.
func (g *generator) paramAtom(q func(string) Expr, proto string, query *Query) Expr {
	g.np++
	name := fmt.Sprintf("p%d", g.np)
	c := g.uintCol(proto)
	query.addParam([]string{name, "uint"})
	g.params[name] = schema.MakeUint(g.constFor(c))
	return bin(g.cmpOp(), q(c), &ParamRef{Name: name})
}

// where builds a conjunction of 0..3 atoms (nil means no WHERE clause).
func (g *generator) where(q func(string) Expr, proto string, query *Query, allowExpensive bool) Expr {
	var conjs []Expr
	for i, n := 0, g.rng.Intn(4); i < n; i++ {
		conjs = append(conjs, g.atom(q, proto))
	}
	if allowExpensive && g.rng.Intn(4) == 0 {
		conjs = append(conjs, g.expensiveAtom(q))
	}
	if g.rng.Intn(5) == 0 {
		conjs = append(conjs, g.paramAtom(q, proto, query))
	}
	var out Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = bin(OpAnd, out, c)
		}
	}
	return out
}

// selProj builds one SELECT/WHERE query over a protocol source.
func (g *generator) selProj() *Query {
	proto := g.proto()
	q := &Query{Defs: g.defineName(), Kind: KindSelect,
		Sources: []TableRef{{Interface: "eth0", Name: proto}}}
	unq := func(c string) Expr { return col(c) }

	items := []SelectItem{{Expr: col("time")}}
	seen := map[string]bool{"time": true}
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		c := g.uintCol(proto)
		if seen[c] {
			continue
		}
		seen[c] = true
		if g.rng.Intn(4) == 0 {
			items = append(items, SelectItem{
				Expr:  bin(OpAdd, col(c), uconst(uint64(1+g.rng.Intn(100)))),
				Alias: fmt.Sprintf("e_%s", c),
			})
		} else {
			items = append(items, SelectItem{Expr: col(c)})
		}
	}
	if g.rng.Intn(3) == 0 {
		items = append(items, SelectItem{Expr: col("srcIP")})
		seen["srcIP"] = true
	}
	q.Select = items
	q.Where = g.where(unq, proto, q, true)
	return q
}

// aggExpr builds a uint argument expression for sum/min/max/avg.
func (g *generator) aggArg(q func(string) Expr, proto string) Expr {
	c := q(g.uintCol(proto))
	switch g.rng.Intn(4) {
	case 0:
		return bin(OpAdd, c, uconst(uint64(1+g.rng.Intn(50))))
	case 1:
		return bin(OpAdd, c, q(g.uintCol(proto)))
	default:
		return c
	}
}

// agg builds one grouped aggregation over a protocol source, grouped on a
// time-derived ordered key plus up to two unordered keys.
func (g *generator) agg() *Query {
	proto := g.proto()
	q := &Query{Defs: g.defineName(), Kind: KindSelect,
		Sources: []TableRef{{Interface: "eth0", Name: proto}}}
	unq := func(c string) Expr { return col(c) }

	// Ordered group key: time or time/k.
	var ordExpr Expr = col("time")
	if g.rng.Intn(2) == 0 {
		ordExpr = bin(OpDiv, col("time"), uconst(uint64(2+g.rng.Intn(9))))
	}
	groups := []SelectItem{{Expr: ordExpr, Alias: "tb"}}
	items := []SelectItem{{Expr: col("tb")}}
	for i, n := 0, g.rng.Intn(3); i < n; i++ {
		alias := fmt.Sprintf("gk%d", i)
		var ge Expr
		switch g.rng.Intn(3) {
		case 0:
			ge = col(g.uintCol(proto))
		case 1:
			ge = bin(OpDiv, col(g.uintCol(proto)), uconst(uint64(2+g.rng.Intn(9))))
		default:
			ge = callFn("subnet", col("srcIP"), uconst(uint64(8+4*g.rng.Intn(5))))
		}
		groups = append(groups, SelectItem{Expr: ge, Alias: alias})
		items = append(items, SelectItem{Expr: col(alias)})
	}
	q.GroupBy = groups

	// Aggregates: always count(*), plus up to two of sum/min/max/avg.
	items = append(items, SelectItem{Expr: callFn("count", &Star{}), Alias: "cnt"})
	for i, n := 0, g.rng.Intn(3); i < n; i++ {
		fn := g.pick([]string{"sum", "min", "max", "avg"})
		items = append(items, SelectItem{
			Expr:  callFn(fn, g.aggArg(unq, proto)),
			Alias: fmt.Sprintf("a%d", i),
		})
	}
	q.Select = items
	q.Where = g.where(unq, proto, q, true)
	if g.rng.Intn(3) == 0 {
		q.Having = bin(OpGt, callFn("count", &Star{}), uconst(uint64(1+g.rng.Intn(4))))
	}
	return q
}

// feeder builds a named selection producing exactly the given column list
// (each item a plain column aliased to a fixed name), for merge and join
// inputs. The first column is always time, preserving its ordering.
func (g *generator) feeder(proto string, cols []string, aliases []string) *Query {
	q := &Query{Defs: g.defineName(), Kind: KindSelect,
		Sources: []TableRef{{Interface: "eth0", Name: proto}}}
	for i, c := range cols {
		q.Select = append(q.Select, SelectItem{Expr: col(c), Alias: aliases[i]})
	}
	unq := func(c string) Expr { return col(c) }
	q.Where = g.where(unq, proto, q, false)
	return q
}

// merge builds two schema-identical feeders plus a MERGE combining them on
// time.
func (g *generator) merge() []*Query {
	extra := g.uintCol("TCP") // present in both protocols
	cols := []string{"time", extra, "wirelen"}
	aliases := []string{"time", "c1", "c2"}
	f1 := g.feeder(g.proto(), cols, aliases)
	f2 := g.feeder(g.proto(), cols, aliases)
	m := &Query{Defs: g.defineName(), Kind: KindMerge,
		Sources: []TableRef{
			{Name: f1.Name(), Alias: "a"},
			{Name: f2.Name(), Alias: "b"},
		},
		MergeCols: []*ColRef{qcol("a", "time"), qcol("b", "time")},
	}
	return []*Query{f1, f2, m}
}

// join builds two feeders over TCP (shared flow space, so keys match) and
// an ordered join on a time window plus a flow-key equality.
func (g *generator) join() []*Query {
	f1 := g.feeder("TCP", []string{"time", "srcIP", "wirelen"}, []string{"time", "ip", "w"})
	f2 := g.feeder("TCP", []string{"time", "srcIP", "caplen"}, []string{"time", "ip", "c"})
	j := &Query{Defs: g.defineName(), Kind: KindSelect,
		Sources: []TableRef{
			{Name: f1.Name(), Alias: "a"},
			{Name: f2.Name(), Alias: "b"},
		},
	}
	if g.rng.Intn(2) == 0 {
		j.Defs["join_algorithm"] = []string{"ordered"}
	}

	// Window constraint on the increasing time columns.
	var window Expr
	if g.rng.Intn(2) == 0 {
		window = bin(OpEq, qcol("a", "time"), qcol("b", "time"))
	} else {
		low := uint64(g.rng.Intn(3))
		high := uint64(g.rng.Intn(3))
		window = bin(OpAnd,
			bin(OpGe, qcol("b", "time"), bin(OpSub, qcol("a", "time"), uconst(low))),
			bin(OpLe, qcol("b", "time"), bin(OpAdd, qcol("a", "time"), uconst(high))))
	}
	where := bin(OpAnd, window, bin(OpEq, qcol("a", "ip"), qcol("b", "ip")))
	if g.rng.Intn(2) == 0 {
		where = bin(OpAnd, where, bin(g.cmpOp(), qcol("a", "w"), qcol("b", "c")))
	}
	j.Where = where
	j.Select = []SelectItem{
		{Expr: qcol("a", "time"), Alias: "t"},
		{Expr: qcol("a", "ip"), Alias: "ip"},
		{Expr: qcol("a", "w"), Alias: "w"},
		{Expr: qcol("b", "c"), Alias: "c"},
	}
	return []*Query{f1, f2, j}
}
