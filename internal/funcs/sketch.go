package funcs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"gigascope/internal/schema"
	"gigascope/internal/sketch"
)

// The sketch-based approximate aggregation tier: approx_distinct (HLL),
// approx_quantile (log-bucket DDSketch), heavy_hitters (Count-Min + top-k
// candidates), and cm_count (Count-Min point query), plus their exact
// counterparts count_distinct and quantile.
//
// Every family decomposes through the standard Subs/Supers contract, but
// unlike sum/count the partial crossing the LFTA→HFTA boundary is an opaque
// serialized sketch in a TString column: the LFTA runs the *_part aggregate
// (per-group sketch, blob out), the HFTA runs the *_union super (blob in,
// merged blob out), and a FinalScalarCall finalizer turns the recombined
// blob into the user-visible value. Because sketch merge is commutative and
// associative, partials survive the shard-reunify merge and collision
// ejection in any order.
//
// Every blob is self-describing (a leading tag byte), and the exact unions
// accept their approximate family's blobs too: set_union converts its key
// set to an HLL the moment a demoted LFTA starts shipping HLL partials, and
// quant_union likewise converts a value list to a quantile sketch. That is
// what lets the overload controller demote just the capture-path half of a
// split plan and promote it back without restarting the query.
const (
	blobHLL      = 'H' // HLL register file
	blobSet      = 'S' // exact distinct key set
	blobQuantile = 'Q' // quantile sketch, prefixed with q
	blobVals     = 'V' // exact value list, prefixed with q
	blobTopK     = 'T' // top-k tracker
	blobCM       = 'C' // count-min + target key
)

// Default sketch error parameters, used when a call site gives no eps/delta
// and the compiler supplies no override (-sketch-eps / -sketch-delta).
const (
	DefaultEps   = sketch.DefaultEps
	DefaultDelta = sketch.DefaultDelta
)

// Sizer is implemented by aggregate states that can report their
// approximate in-memory footprint in bytes; the executor's aggregate-table
// accounting and experiment E11 use it.
type Sizer interface{ Footprint() int }

// valueKey encodes a value into canonical bytes for sketch hashing and
// exact distinct sets: the standard single-field tuple packing, so the
// encoding is typed, unambiguous, and reversible for display.
func valueKey(v schema.Value) []byte { return schema.Tuple{v}.Pack(nil) }

func keyValue(b []byte) (schema.Value, bool) {
	t, _, err := schema.Unpack(b)
	if err != nil || len(t) != 1 {
		return schema.Null, false
	}
	return t[0], true
}

func fracParam(name string, def float64) AggParam {
	return AggParam{
		Name: name, Type: schema.TFloat, Default: schema.MakeFloat(def),
		Check: func(v schema.Value) error {
			if f := v.Float(); !(f > 0 && f < 1) {
				return fmt.Errorf("must be in (0,1), got %s", v.String())
			}
			return nil
		},
	}
}

func quantileParam() AggParam {
	return AggParam{
		Name: "q", Type: schema.TFloat, Required: true,
		Check: func(v schema.Value) error {
			if f := v.Float(); !(f >= 0 && f <= 1) {
				return fmt.Errorf("must be in [0,1], got %s", v.String())
			}
			return nil
		},
	}
}

// ---- distinct counting: count_distinct (exact) / approx_distinct (HLL) ----

type hllState struct {
	h     *sketch.HLL
	final bool
}

func newHLLState(params []schema.Value, final bool) AggState {
	h, err := sketch.NewHLL(params[0].Float())
	if err != nil { // params validated at compile time; defend anyway
		h, _ = sketch.NewHLL(DefaultEps)
	}
	return &hllState{h: h, final: final}
}

func (s *hllState) Add(v schema.Value) {
	if !v.IsNull() {
		s.h.Add(valueKey(v))
	}
}

func (s *hllState) Result() schema.Value {
	if s.final {
		return schema.MakeUint(s.h.Estimate())
	}
	return schema.MakeString(s.h.AppendBinary([]byte{blobHLL}))
}

func (s *hllState) Footprint() int { return 16 + s.h.Footprint() }

type setState struct {
	keys  map[string]struct{}
	final bool
}

func newSetState(final bool) AggState {
	return &setState{keys: make(map[string]struct{}), final: final}
}

func (s *setState) Add(v schema.Value) {
	if !v.IsNull() {
		s.keys[string(valueKey(v))] = struct{}{}
	}
}

func (s *setState) Result() schema.Value {
	if s.final {
		return schema.MakeUint(uint64(len(s.keys)))
	}
	return schema.MakeString(appendSetBlob(nil, s.keys))
}

func (s *setState) Footprint() int {
	n := 56
	for k := range s.keys {
		n += 48 + len(k)
	}
	return n
}

// appendSetBlob serializes a key set with keys sorted, so a given set has
// exactly one encoding regardless of insertion order.
func appendSetBlob(dst []byte, keys map[string]struct{}) []byte {
	dst = append(dst, blobSet)
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(sorted)))
	for _, k := range sorted {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

func parseSetBlob(b []byte) ([]string, bool) {
	if len(b) < 4 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(b))
	off := 4
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < off+4 {
			return nil, false
		}
		l := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if len(b) < off+l {
			return nil, false
		}
		keys = append(keys, string(b[off:off+l]))
		off += l
	}
	return keys, true
}

// distUnionState merges distinct-count partials of either form. It stays an
// exact key set while only set blobs arrive; the first HLL blob (a demoted
// shard or LFTA) converts the accumulated set into the HLL, after which
// everything folds into the sketch.
type distUnionState struct {
	set map[string]struct{}
	hll *sketch.HLL
}

func newDistUnionState() AggState {
	return &distUnionState{set: make(map[string]struct{})}
}

func (s *distUnionState) Add(v schema.Value) {
	b := v.Bytes()
	if v.Type != schema.TString || len(b) == 0 {
		return
	}
	switch b[0] {
	case blobSet:
		keys, ok := parseSetBlob(b[1:])
		if !ok {
			return
		}
		if s.hll != nil {
			for _, k := range keys {
				s.hll.Add([]byte(k))
			}
			return
		}
		for _, k := range keys {
			s.set[k] = struct{}{}
		}
	case blobHLL:
		h, _, err := sketch.ParseHLL(b[1:])
		if err != nil {
			return
		}
		if s.hll == nil {
			// Demotion mid-stream: fold the exact keys gathered so far into
			// a sketch of the incoming precision, then merge.
			nh, err := sketch.NewHLLPrecision(h.Precision())
			if err != nil {
				return
			}
			for k := range s.set {
				nh.Add([]byte(k))
			}
			s.set, s.hll = nil, nh
		}
		_ = s.hll.Merge(h) // precision mismatch cannot happen within a call site
	}
}

func (s *distUnionState) Result() schema.Value {
	if s.hll != nil {
		return schema.MakeString(s.hll.AppendBinary([]byte{blobHLL}))
	}
	return schema.MakeString(appendSetBlob(nil, s.set))
}

func (s *distUnionState) Footprint() int {
	if s.hll != nil {
		return 32 + s.hll.Footprint()
	}
	n := 56
	for k := range s.set {
		n += 48 + len(k)
	}
	return n
}

// distCard finalizes either distinct blob to its cardinality.
func distCard(b []byte) (schema.Value, bool) {
	if len(b) == 0 {
		return schema.Null, true
	}
	switch b[0] {
	case blobSet:
		keys, ok := parseSetBlob(b[1:])
		if !ok {
			return schema.Null, true
		}
		return schema.MakeUint(uint64(len(keys))), true
	case blobHLL:
		h, _, err := sketch.ParseHLL(b[1:])
		if err != nil {
			return schema.Null, true
		}
		return schema.MakeUint(h.Estimate()), true
	}
	return schema.Null, true
}

// ---- quantiles: quantile (exact) / approx_quantile (DDSketch) ----

// exactQuantile is the nearest-rank quantile: the ceil(q*n)-th smallest
// value. The sketch uses the same rank rule, so exact and approximate
// answers differ only by the sketch's relative value error.
func exactQuantile(vals []float64, q float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx], true
}

type valsState struct {
	q     float64
	vals  []float64
	final bool
}

func (s *valsState) Add(v schema.Value) {
	if !v.IsNull() {
		s.vals = append(s.vals, v.Float())
	}
}

func (s *valsState) Result() schema.Value {
	if s.final {
		v, ok := exactQuantile(append([]float64(nil), s.vals...), s.q)
		if !ok {
			return schema.Null
		}
		return schema.MakeFloat(v)
	}
	return schema.MakeString(appendValsBlob(nil, s.q, s.vals))
}

func (s *valsState) Footprint() int { return 48 + 8*len(s.vals) }

// appendValsBlob serializes an exact value list (sorted, so a given
// multiset has one encoding).
func appendValsBlob(dst []byte, q float64, vals []float64) []byte {
	dst = append(dst, blobVals)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(q))
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(sorted)))
	for _, v := range sorted {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func parseValsBlob(b []byte) (q float64, vals []float64, ok bool) {
	if len(b) < 12 {
		return 0, nil, false
	}
	q = math.Float64frombits(binary.BigEndian.Uint64(b))
	n := int(binary.BigEndian.Uint32(b[8:]))
	if len(b) < 12+8*n {
		return 0, nil, false
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[12+8*i:]))
	}
	return q, vals, true
}

type ddState struct {
	q     float64
	sk    *sketch.Quantile
	final bool
}

func newDDState(params []schema.Value, final bool) AggState {
	sk, err := sketch.NewQuantile(params[1].Float())
	if err != nil {
		sk, _ = sketch.NewQuantile(DefaultEps)
	}
	return &ddState{q: params[0].Float(), sk: sk, final: final}
}

func (s *ddState) Add(v schema.Value) {
	if !v.IsNull() {
		s.sk.Add(v.Float())
	}
}

func (s *ddState) Result() schema.Value {
	if s.final {
		v := s.sk.Query(s.q)
		if math.IsNaN(v) {
			return schema.Null
		}
		return schema.MakeFloat(v)
	}
	dst := append([]byte{blobQuantile}, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(dst[1:], math.Float64bits(s.q))
	return schema.MakeString(s.sk.AppendBinary(dst))
}

func (s *ddState) Footprint() int { return 24 + s.sk.Footprint() }

// quantUnionState merges quantile partials of either form, converting the
// exact value list to a sketch when a demoted partial arrives.
type quantUnionState struct {
	q    float64
	vals []float64
	sk   *sketch.Quantile
}

func (s *quantUnionState) Add(v schema.Value) {
	b := v.Bytes()
	if v.Type != schema.TString || len(b) == 0 {
		return
	}
	switch b[0] {
	case blobVals:
		q, vals, ok := parseValsBlob(b[1:])
		if !ok {
			return
		}
		s.q = q
		if s.sk != nil {
			for _, x := range vals {
				s.sk.Add(x)
			}
			return
		}
		s.vals = append(s.vals, vals...)
	case blobQuantile:
		if len(b) < 9 {
			return
		}
		s.q = math.Float64frombits(binary.BigEndian.Uint64(b[1:]))
		sk, _, err := sketch.ParseQuantile(b[9:])
		if err != nil {
			return
		}
		if s.sk == nil {
			nsk, err := sketch.NewQuantile(sk.Alpha())
			if err != nil {
				return
			}
			for _, x := range s.vals {
				nsk.Add(x)
			}
			s.vals, s.sk = nil, nsk
		}
		_ = s.sk.Merge(sk)
	}
}

func (s *quantUnionState) Result() schema.Value {
	if s.sk != nil {
		dst := append([]byte{blobQuantile}, 0, 0, 0, 0, 0, 0, 0, 0)
		binary.BigEndian.PutUint64(dst[1:], math.Float64bits(s.q))
		return schema.MakeString(s.sk.AppendBinary(dst))
	}
	return schema.MakeString(appendValsBlob(nil, s.q, s.vals))
}

func (s *quantUnionState) Footprint() int {
	if s.sk != nil {
		return 40 + s.sk.Footprint()
	}
	return 40 + 8*len(s.vals)
}

// quantValue finalizes either quantile blob to its value.
func quantValue(b []byte) (schema.Value, bool) {
	if len(b) == 0 {
		return schema.Null, true
	}
	switch b[0] {
	case blobVals:
		q, vals, ok := parseValsBlob(b[1:])
		if !ok {
			return schema.Null, true
		}
		v, ok := exactQuantile(vals, q)
		if !ok {
			return schema.Null, true
		}
		return schema.MakeFloat(v), true
	case blobQuantile:
		if len(b) < 9 {
			return schema.Null, true
		}
		q := math.Float64frombits(binary.BigEndian.Uint64(b[1:]))
		sk, _, err := sketch.ParseQuantile(b[9:])
		if err != nil {
			return schema.Null, true
		}
		v := sk.Query(q)
		if math.IsNaN(v) {
			return schema.Null, true
		}
		return schema.MakeFloat(v), true
	}
	return schema.Null, true
}

// ---- heavy hitters ----

type topkState struct {
	tk    *sketch.TopK
	final bool
}

func newTopKState(params []schema.Value, final bool) AggState {
	tk, err := sketch.NewTopK(int(params[0].Uint()), params[1].Float(), params[2].Float())
	if err != nil {
		tk, _ = sketch.NewTopK(1, DefaultEps, DefaultDelta)
	}
	return &topkState{tk: tk, final: final}
}

func (s *topkState) Add(v schema.Value) {
	if !v.IsNull() {
		s.tk.Add(valueKey(v), 1)
	}
}

func (s *topkState) Result() schema.Value {
	if s.final {
		return schema.MakeStr(renderTopK(s.tk))
	}
	return schema.MakeString(s.tk.AppendBinary([]byte{blobTopK}))
}

func (s *topkState) Footprint() int { return 16 + s.tk.Footprint() }

type topkUnionState struct{ tk *sketch.TopK }

func (s *topkUnionState) Add(v schema.Value) {
	b := v.Bytes()
	if v.Type != schema.TString || len(b) == 0 || b[0] != blobTopK {
		return
	}
	tk, _, err := sketch.ParseTopK(b[1:])
	if err != nil {
		return
	}
	if s.tk == nil {
		s.tk = tk
		return
	}
	_ = s.tk.Merge(tk)
}

func (s *topkUnionState) Result() schema.Value {
	if s.tk == nil {
		return schema.Null
	}
	return schema.MakeString(s.tk.AppendBinary([]byte{blobTopK}))
}

func (s *topkUnionState) Footprint() int {
	if s.tk == nil {
		return 16
	}
	return 16 + s.tk.Footprint()
}

// renderTopK formats a top-k report as "value:count value:count ...", with
// the original typed values decoded from their packed keys.
func renderTopK(tk *sketch.TopK) string {
	var b strings.Builder
	for i, e := range tk.Top() {
		if i > 0 {
			b.WriteByte(' ')
		}
		if v, ok := keyValue(e.Key); ok {
			b.WriteString(v.String())
		} else {
			b.WriteString("?")
		}
		b.WriteByte(':')
		fmt.Fprintf(&b, "%d", e.Count)
	}
	return b.String()
}

// hhTopK finalizes a top-k blob to its rendered report.
func hhTopK(b []byte) (schema.Value, bool) {
	if len(b) == 0 || b[0] != blobTopK {
		return schema.Null, true
	}
	tk, _, err := sketch.ParseTopK(b[1:])
	if err != nil {
		return schema.Null, true
	}
	return schema.MakeStr(renderTopK(tk)), true
}

// ---- cm_count: Count-Min point query for one target value ----

type cmState struct {
	key   []byte
	cm    *sketch.CountMin
	final bool
}

func newCMState(params []schema.Value, final bool) AggState {
	cm, err := sketch.NewCountMin(params[1].Float(), params[2].Float())
	if err != nil {
		cm, _ = sketch.NewCountMin(DefaultEps, DefaultDelta)
	}
	return &cmState{key: valueKey(params[0]), cm: cm, final: final}
}

func (s *cmState) Add(v schema.Value) {
	if !v.IsNull() {
		s.cm.Add(valueKey(v), 1)
	}
}

func (s *cmState) Result() schema.Value {
	if s.final {
		return schema.MakeUint(s.cm.Estimate(s.key))
	}
	dst := []byte{blobCM}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.key)))
	dst = append(dst, s.key...)
	return schema.MakeString(s.cm.AppendBinary(dst))
}

func (s *cmState) Footprint() int { return 32 + len(s.key) + s.cm.Footprint() }

func parseCMBlob(b []byte) (key []byte, cm *sketch.CountMin, ok bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	l := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+l {
		return nil, nil, false
	}
	key = append([]byte(nil), b[4:4+l]...)
	cm, _, err := sketch.ParseCountMin(b[4+l:])
	if err != nil {
		return nil, nil, false
	}
	return key, cm, true
}

type cmUnionState struct {
	key []byte
	cm  *sketch.CountMin
}

func (s *cmUnionState) Add(v schema.Value) {
	b := v.Bytes()
	if v.Type != schema.TString || len(b) == 0 || b[0] != blobCM {
		return
	}
	key, cm, ok := parseCMBlob(b[1:])
	if !ok {
		return
	}
	if s.cm == nil {
		s.key, s.cm = key, cm
		return
	}
	_ = s.cm.Merge(cm)
}

func (s *cmUnionState) Result() schema.Value {
	if s.cm == nil {
		return schema.Null
	}
	dst := []byte{blobCM}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.key)))
	dst = append(dst, s.key...)
	return schema.MakeString(s.cm.AppendBinary(dst))
}

func (s *cmUnionState) Footprint() int {
	if s.cm == nil {
		return 32
	}
	return 32 + len(s.key) + s.cm.Footprint()
}

// cmEst finalizes a cm_count blob to the target value's estimate.
func cmEst(b []byte) (schema.Value, bool) {
	if len(b) == 0 || b[0] != blobCM {
		return schema.Null, true
	}
	key, cm, ok := parseCMBlob(b[1:])
	if !ok {
		return schema.Null, true
	}
	return schema.MakeUint(cm.Estimate(key)), true
}

// ---- registration ----

func retUint(schema.Type) schema.Type   { return schema.TUint }
func retFloat(schema.Type) schema.Type  { return schema.TFloat }
func retString(schema.Type) schema.Type { return schema.TString }

func registerSketchAggregates(r *Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// Finalizer scalars: blob in, user-visible value out. Expensive keeps
	// them on the HFTA side of the split.
	blobScalar := func(name string, ret schema.Type, eval func([]byte) (schema.Value, bool)) *Scalar {
		return &Scalar{
			Name: name, Args: []schema.Type{schema.TString}, Ret: ret,
			Cost: CostExpensive, HandleArg: -1,
			Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
				if args[0].IsNull() {
					return schema.Null, true
				}
				return eval(args[0].Bytes())
			},
		}
	}
	must(r.RegisterScalar(blobScalar("dist_card", schema.TUint, distCard)))
	must(r.RegisterScalar(blobScalar("quant_value", schema.TFloat, quantValue)))
	must(r.RegisterScalar(blobScalar("hh_topk", schema.TString, hhTopK)))
	must(r.RegisterScalar(blobScalar("cm_est", schema.TUint, cmEst)))

	// Distinct counting.
	epsP := func() []AggParam { return []AggParam{fracParam("eps", DefaultEps)} }
	must(r.RegisterAggregate(&Aggregate{
		Name: "approx_distinct", TakesArg: true, AllowAnyArg: true,
		Ret:    retUint,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newHLLState(p, true) },
		Params: epsP(),
		Subs:   []string{"approx_distinct_part"}, Supers: []string{"dist_union"},
		Final: FinalScalarCall, Finalizer: "dist_card",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "approx_distinct_part", TakesArg: true, AllowAnyArg: true,
		Ret:    retString,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newHLLState(p, false) },
		Params: epsP(),
		Subs:   []string{"approx_distinct_part"}, Supers: []string{"dist_union"},
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "count_distinct", TakesArg: true, AllowAnyArg: true,
		Ret:  retUint,
		New:  func(schema.Type) AggState { return newSetState(true) },
		Subs: []string{"count_distinct_part"}, Supers: []string{"dist_union"},
		Final: FinalScalarCall, Finalizer: "dist_card",
		Demote: "approx_distinct",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "count_distinct_part", TakesArg: true, AllowAnyArg: true,
		Ret:  retString,
		New:  func(schema.Type) AggState { return newSetState(false) },
		Subs: []string{"count_distinct_part"}, Supers: []string{"dist_union"},
		Demote: "approx_distinct_part",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "dist_union", TakesArg: true, AllowAnyArg: true,
		Ret:  retString,
		New:  func(schema.Type) AggState { return newDistUnionState() },
		Subs: []string{"dist_union"}, Supers: []string{"dist_union"},
	}))

	// Quantiles.
	qOnly := func() []AggParam { return []AggParam{quantileParam()} }
	qEps := func() []AggParam { return []AggParam{quantileParam(), fracParam("eps", DefaultEps)} }
	must(r.RegisterAggregate(&Aggregate{
		Name: "quantile", TakesArg: true,
		Ret: retFloat,
		NewP: func(_ schema.Type, p []schema.Value) AggState {
			return &valsState{q: p[0].Float(), final: true}
		},
		Params: qOnly(),
		Subs:   []string{"quantile_part"}, Supers: []string{"quant_union"},
		Final: FinalScalarCall, Finalizer: "quant_value",
		Demote: "approx_quantile",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "quantile_part", TakesArg: true,
		Ret: retString,
		NewP: func(_ schema.Type, p []schema.Value) AggState {
			return &valsState{q: p[0].Float()}
		},
		Params: qOnly(),
		Subs:   []string{"quantile_part"}, Supers: []string{"quant_union"},
		Demote: "approx_quantile_part",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "approx_quantile", TakesArg: true,
		Ret:    retFloat,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newDDState(p, true) },
		Params: qEps(),
		Subs:   []string{"approx_quantile_part"}, Supers: []string{"quant_union"},
		Final: FinalScalarCall, Finalizer: "quant_value",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "approx_quantile_part", TakesArg: true,
		Ret:    retString,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newDDState(p, false) },
		Params: qEps(),
		Subs:   []string{"approx_quantile_part"}, Supers: []string{"quant_union"},
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "quant_union", TakesArg: true, AllowAnyArg: true,
		Ret:  retString,
		New:  func(schema.Type) AggState { return &quantUnionState{} },
		Subs: []string{"quant_union"}, Supers: []string{"quant_union"},
	}))

	// Heavy hitters.
	hhP := func() []AggParam {
		return []AggParam{
			{
				Name: "k", Type: schema.TUint, Required: true,
				Check: func(v schema.Value) error {
					if k := v.Uint(); k < 1 || k > 4096 {
						return fmt.Errorf("must be in [1,4096], got %s", v.String())
					}
					return nil
				},
			},
			fracParam("eps", DefaultEps),
			fracParam("delta", DefaultDelta),
		}
	}
	must(r.RegisterAggregate(&Aggregate{
		Name: "heavy_hitters", TakesArg: true, AllowAnyArg: true,
		Ret:    retString,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newTopKState(p, true) },
		Params: hhP(),
		Subs:   []string{"heavy_hitters_part"}, Supers: []string{"hh_union"},
		Final: FinalScalarCall, Finalizer: "hh_topk",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "heavy_hitters_part", TakesArg: true, AllowAnyArg: true,
		Ret:    retString,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newTopKState(p, false) },
		Params: hhP(),
		Subs:   []string{"heavy_hitters_part"}, Supers: []string{"hh_union"},
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "hh_union", TakesArg: true, AllowAnyArg: true,
		Ret:  retString,
		New:  func(schema.Type) AggState { return &topkUnionState{} },
		Subs: []string{"hh_union"}, Supers: []string{"hh_union"},
	}))

	// Count-Min point query.
	cmP := func() []AggParam {
		return []AggParam{
			{
				Name: "value", Type: schema.TNull, Required: true,
				Check: func(v schema.Value) error {
					if v.IsNull() {
						return fmt.Errorf("target value must not be NULL")
					}
					return nil
				},
			},
			fracParam("eps", DefaultEps),
			fracParam("delta", DefaultDelta),
		}
	}
	must(r.RegisterAggregate(&Aggregate{
		Name: "cm_count", TakesArg: true, AllowAnyArg: true,
		Ret:    retUint,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newCMState(p, true) },
		Params: cmP(),
		Subs:   []string{"cm_count_part"}, Supers: []string{"cm_union"},
		Final: FinalScalarCall, Finalizer: "cm_est",
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "cm_count_part", TakesArg: true, AllowAnyArg: true,
		Ret:    retString,
		NewP:   func(_ schema.Type, p []schema.Value) AggState { return newCMState(p, false) },
		Params: cmP(),
		Subs:   []string{"cm_count_part"}, Supers: []string{"cm_union"},
	}))
	must(r.RegisterAggregate(&Aggregate{
		Name: "cm_union", TakesArg: true, AllowAnyArg: true,
		Ret:  retString,
		New:  func(schema.Type) AggState { return &cmUnionState{} },
		Subs: []string{"cm_union"}, Supers: []string{"cm_union"},
	}))
}
