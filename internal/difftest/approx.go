package difftest

import (
	"fmt"
	"io"
	"math"
	"sort"

	"gigascope/internal/oracle"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Bounded-error comparison mode: a sketched query's pipeline output is
// checked against the EXACT answer computed by the reference oracle for
// the same grouping — not for byte equality (the sketch is approximate by
// design) but for containment within the declared (eps, delta) bound. The
// exact-equality matrix already covers sketched queries against the
// sketched oracle (the sketches are deterministic); this mode closes the
// remaining gap by verifying that the approximation itself honors its
// advertised error.

// ApproxCase pairs a sketched query with its exact counterpart.
type ApproxCase struct {
	// Name labels the case in runner output and repro directories.
	Name string
	// Sketched is the query the real pipeline runs (sketch aggregates).
	Sketched string
	// Exact is the same query shape with exact aggregates, evaluated by
	// the reference oracle.
	Exact string
	// KeyCols is how many leading output columns are group keys: they must
	// match exactly and align the rows. Every remaining column is a
	// numeric value column compared within RelErr.
	KeyCols int
	// RelErr is the allowed relative error per value column:
	// |got-want| <= RelErr * max(1, |want|). Derived from the sketch's
	// (eps, delta) with headroom so a correct implementation essentially
	// never trips it (e.g. 4 standard errors for the HLL).
	RelErr float64
}

// DefaultApproxCases covers every sketch family over the standard difftest
// traffic mix (TCP web flows on port 80, UDP DNS on port 53).
func DefaultApproxCases() []ApproxCase {
	return []ApproxCase{
		{
			// HLL vs exact distinct count. eps 0.02 -> 4 sigma = 8%; at the
			// trace's small cardinalities the HLL's linear-counting range
			// makes it nearly exact.
			Name: "distinct",
			Sketched: `DEFINE { query_name adist; }
				SELECT tb, count(*), approx_distinct(srcIP, 0.02) FROM eth0.TCP
				GROUP BY time/2 as tb`,
			Exact: `DEFINE { query_name adist; }
				SELECT tb, count(*), count_distinct(srcIP) FROM eth0.TCP
				GROUP BY time/2 as tb`,
			KeyCols: 1,
			RelErr:  0.08,
		},
		{
			// DDSketch vs exact nearest-rank quantile: value within 3x the
			// sketch's relative-accuracy parameter.
			Name: "quantile",
			Sketched: `DEFINE { query_name aquant; }
				SELECT tb, approx_quantile(total_length, 0.9, 0.02) FROM eth0.TCP
				GROUP BY time/2 as tb`,
			Exact: `DEFINE { query_name aquant; }
				SELECT tb, quantile(total_length, 0.9) FROM eth0.TCP
				GROUP BY time/2 as tb`,
			KeyCols: 1,
			RelErr:  0.06,
		},
		{
			// Count-min point query vs exact count. Restricted to DNS
			// requests (destPort 53 — responses carry it as srcPort), the
			// point query's key accounts for every sketched packet, so
			// count(*) is the exact answer and the CM overcount is bounded
			// by eps * total; 0.03 leaves headroom over eps = 0.01.
			Name: "cmcount",
			Sketched: `DEFINE { query_name acm; }
				SELECT tb, count(*), cm_count(destPort, 53, 0.01) FROM eth0.UDP WHERE destPort = 53
				GROUP BY time/2 as tb`,
			Exact: `DEFINE { query_name acm; }
				SELECT tb, count(*), count(*) FROM eth0.UDP WHERE destPort = 53
				GROUP BY time/2 as tb`,
			KeyCols: 1,
			RelErr:  0.03,
		},
	}
}

// CheckApprox runs the sketched query through the real pipeline under cfg
// and the exact query through the reference oracle over the same trace,
// then verifies every value column lies within the case's error bound.
// It returns the observed maximum relative error alongside any mismatch
// (the observed error is also recorded on the mismatch for repro
// artifacts), and an error only for harness problems.
func CheckApprox(ac ApproxCase, seed int64, trace []pkt.Packet, cfg Config) (*Mismatch, float64, error) {
	c := &Case{Seed: seed, Queries: []string{ac.Sketched}, Trace: trace}
	run, err := RunPipeline(c, cfg)
	if err != nil {
		return nil, 0, err
	}
	var got []schema.Tuple
	for _, rows := range run.Rows {
		got = rows
	}
	res, err := oracle.Eval([]string{ac.Exact}, nil, c.effectiveTrace(cfg))
	if err != nil {
		return nil, 0, fmt.Errorf("difftest: approx oracle: %w", err)
	}
	want := res[0].Rows

	mismatch := func(observed float64, detail string) *Mismatch {
		return &Mismatch{
			Query: ac.Name, Config: cfg, Kind: "bounded-error",
			Detail:      detail,
			ObservedErr: observed,
		}
	}

	sortByKey := func(rows []schema.Tuple) {
		sort.Slice(rows, func(i, j int) bool {
			return string(rows[i][:ac.KeyCols].Pack(nil)) < string(rows[j][:ac.KeyCols].Pack(nil))
		})
	}
	sortByKey(got)
	sortByKey(want)
	if len(got) != len(want) {
		return mismatch(-1,
			fmt.Sprintf("row count: pipeline %d, exact oracle %d", len(got), len(want))), -1, nil
	}
	var maxErr float64
	for i := range want {
		gk := string(got[i][:ac.KeyCols].Pack(nil))
		wk := string(want[i][:ac.KeyCols].Pack(nil))
		if gk != wk {
			return mismatch(-1,
				fmt.Sprintf("group keys diverge at row %d: %s vs %s",
					i, got[i][:ac.KeyCols], want[i][:ac.KeyCols])), -1, nil
		}
		for col := ac.KeyCols; col < len(want[i]); col++ {
			w, g := want[i][col].Float(), got[i][col].Float()
			rel := math.Abs(g-w) / math.Max(1, math.Abs(w))
			if rel > maxErr {
				maxErr = rel
			}
			if rel > ac.RelErr {
				return mismatch(rel,
					fmt.Sprintf("row %s column %d: sketched %v vs exact %v: relative error %.4f exceeds bound %.4f",
						want[i][:ac.KeyCols], col, g, w, rel, ac.RelErr)), maxErr, nil
			}
		}
	}
	return nil, maxErr, nil
}

// approxConfigs is the reduced matrix bounded-error cases run under: the
// sketches are deterministic and partition-invariant, so batch size and
// shard count are sampled rather than swept.
func approxConfigs() []Config {
	return []Config{
		{MaxBatch: 64, Shards: 1},
		{MaxBatch: 4096, Shards: 4},
	}
}

// RunApproxMatrix runs the default bounded-error cases for seeds 1..seeds,
// printing one line per (seed, case, config) cell with the observed error,
// and returns the number of failing cells. Failing cells write repro
// artifacts under testdata/repros like the exact-equality matrix.
func RunApproxMatrix(w io.Writer, seeds, tracePackets int) int {
	failures := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		trace, err := GenTrace(seed, tracePackets)
		if err != nil {
			fmt.Fprintf(w, "approx seed %d: generate: %v\n", seed, err)
			failures++
			continue
		}
		for _, ac := range DefaultApproxCases() {
			for _, cfg := range approxConfigs() {
				m, observed, err := CheckApprox(ac, seed, trace, cfg)
				switch {
				case err != nil:
					fmt.Fprintf(w, "approx seed %-3d %-9s %-12s HARNESS ERROR: %v\n",
						seed, ac.Name, cfg.Name(), err)
					failures++
				case m != nil:
					fmt.Fprintf(w, "approx seed %-3d %-9s %-12s MISMATCH: %s\n",
						seed, ac.Name, cfg.Name(), m)
					c := &Case{Seed: seed, Queries: []string{ac.Sketched, ac.Exact}, Trace: trace}
					if dir, werr := WriteArtifact("testdata/repros", c, cfg, m, nil); werr == nil {
						fmt.Fprintf(w, "  repro written: %s\n", dir)
					}
					failures++
				default:
					fmt.Fprintf(w, "approx seed %-3d %-9s %-12s ok (observed err %.4f <= %.2f)\n",
						seed, ac.Name, cfg.Name(), observed, ac.RelErr)
				}
			}
		}
	}
	return failures
}
