package rts

import (
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// The demote-first controller switches the target's exact aggregates to
// their sketched twins on the first armed throttle step — before touching
// the sampling rate — and promotes back to exact only after the rate has
// fully restored.
func TestOverloadControllerDemoteFirst(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name aq; param srate float; }
		SELECT tb, count_distinct(srcIP) FROM tcp
		WHERE samplehash(srcIP, $srate)
		GROUP BY time/60 as tb`)
	if err := m.AddQuery(cq, map[string]schema.Value{"srate": schema.MakeFloat(1.0)}); err != nil {
		t.Fatal(err)
	}
	var applied []float64
	err := m.AttachOverloadController(OverloadConfig{
		Target:        "aq",
		Param:         "srate",
		HighWater:     10,
		HoldIntervals: 2,
		IntervalUsec:  100_000,
		DemoteFirst:   true,
		OnApply:       func(rate float64) { applied = append(applied, rate) },
	})
	if err != nil {
		t.Fatal(err)
	}
	decSub, err := m.Subscribe(OverloadStream, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	lfta := m.nodes["_lfta_aq"]
	if lfta == nil {
		t.Fatal("no mangled LFTA registered")
	}
	approx := func(qn *queryNode) bool {
		d, ok := qn.op.(exec.Demotable)
		return ok && d.Approx()
	}

	qn := m.nodes["aq"]
	clock := uint64(0)
	step := func(drops uint64) {
		qn.pub.drops.Add(drops)
		clock += 100_000
		m.AdvanceClock(clock)
	}

	// First overloaded interval: demote, don't shed. In the split plan the
	// demotion lives in the LFTA (count_distinct_part -> its sketched twin);
	// the HFTA's dist_union merges exact and sketched partials as-is.
	step(100)
	if len(applied) != 0 {
		t.Fatalf("rate cut before demotion: %v", applied)
	}
	if !approx(lfta) {
		t.Fatal("LFTA not demoted after first trip")
	}

	// Still overloaded: now the rate takes the hit.
	step(100)
	step(100)
	if len(applied) != 2 || applied[1] != 0.25 {
		t.Fatalf("throttle steps after demotion = %v, want [0.5 0.25]", applied)
	}

	// Recovery: the rate restores to Full first, and only then does the
	// controller promote back to exact aggregation.
	for i := 0; i < 20; i++ {
		step(0)
		if approx(lfta) && len(applied) > 2 && applied[len(applied)-1] == 1.0 {
			// Rate just hit Full; demotion must persist for at least the
			// hold run before promotion.
			break
		}
	}
	for i := 0; i < 10; i++ {
		step(0)
	}
	if got := applied[len(applied)-1]; got != 1.0 {
		t.Fatalf("final rate = %v, want 1.0", got)
	}
	if approx(lfta) {
		t.Fatal("never promoted back to exact after full restore")
	}

	m.Stop()
	rows := drain(t, decSub)
	if len(rows) == 0 {
		t.Fatal("no decision rows")
	}
	// The decision stream must show a demoted interval at full rate —
	// demotion strictly precedes rate shedding — with the active error
	// bound published, and the final row back at exact.
	sawDemotedAtFull := false
	for _, r := range rows {
		rate, demoted := r[3].F, r[8].U != 0
		eps, delta := r[9].F, r[10].F
		if demoted {
			if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
				t.Fatalf("demoted row with bad bounds eps=%v delta=%v", eps, delta)
			}
			if rate == 1.0 {
				sawDemotedAtFull = true
			}
		} else if eps != 0 || delta != 0 {
			t.Fatalf("exact row publishes nonzero bounds: eps=%v delta=%v", eps, delta)
		}
	}
	if !sawDemotedAtFull {
		t.Fatal("no decision row with demotion at full rate: demotion did not precede shedding")
	}
	last := rows[len(rows)-1]
	if last[8].U != 0 {
		t.Fatalf("final decision row still demoted: %v", last)
	}
}

// SetApprox through the manager demotes new groups only: open groups
// finish exact, and the union super-aggregates merge the mixed partials.
func TestManagerSetApproxMixedPartials(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name mix; }
		SELECT tb, count_distinct(srcIP) FROM tcp
		GROUP BY time/60 as tb`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("mix", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Bucket 1 (exact): 100 distinct sources.
	for i := 0; i < 100; i++ {
		p := tcpPkt(10, uint32(0x0a000000+i), 80, "x")
		m.Inject("", &p)
	}
	// The open exact group holds real aggregate-table memory, readable
	// while the node is live (the HFTA read routes through its goroutine).
	exactBytes, err := m.StateBytes("mix")
	if err != nil {
		t.Fatal(err)
	}
	if exactBytes <= 0 {
		t.Fatalf("StateBytes = %d with an open exact group", exactBytes)
	}
	n, err := m.SetApprox("mix", true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("SetApprox found no demotable slots")
	}
	// Bucket 2 (sketched): 200 distinct sources.
	for i := 0; i < 200; i++ {
		p := tcpPkt(70, uint32(0x0b000000+i), 80, "x")
		m.Inject("", &p)
	}
	m.Stop()
	rows := drain(t, sub)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// The exact bucket was opened before the switch: exact answer. The
	// demoted bucket answers within HLL error at default eps.
	if got := rows[0][1].Uint(); got != 100 {
		t.Fatalf("exact bucket count_distinct = %d, want 100", got)
	}
	got := float64(rows[1][1].Uint())
	if got < 200*0.85 || got > 200*1.15 {
		t.Fatalf("demoted bucket count_distinct = %v, want ~200", got)
	}

	if _, err := m.SetApprox("ghost", true); err == nil {
		t.Fatal("SetApprox on unknown query succeeded")
	}
	if _, err := m.StateBytes("ghost"); err == nil {
		t.Fatal("StateBytes on unknown query succeeded")
	}
}
