// Quickstart: the paper's first example query (§2.2) over synthetic
// traffic — report destination IP, port, and timestamp of TCP packets.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's tcpdest0 query, verbatim.
	sys.MustAddQuery(`
		DEFINE { query_name tcpdest0; }
		SELECT destIP, destPort, time
		FROM eth0.TCP
		WHERE ipversion = 4 and protocol = 6`, nil)

	// Show what the compiler did with it: a single LFTA with the whole
	// predicate pushed into the NIC as a BPF program.
	plan, _ := sys.Explain("tcpdest0")
	fmt.Println(plan)

	sub, err := sys.Subscribe("tcpdest0", 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	// Feed one virtual second of mixed traffic.
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 1,
		Classes: []gigascope.TrafficClass{
			{Name: "web", RateMbps: 2, PktBytes: 600, DstPort: 80,
				Proto: gigascope.ProtoTCP, Payload: gigascope.PayloadHTTP, HTTPFraction: 1},
			{Name: "dns", RateMbps: 1, PktBytes: 200, DstPort: 53,
				Proto: gigascope.ProtoUDP},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		gen.Until(1_000_000, func(p *gigascope.Packet) { sys.Inject("eth0", p) })
		sys.Stop()
	}()

	shown := 0
	total := 0
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			total++
			if shown < 10 {
				fmt.Printf("  %-16s port %-5d t=%ds\n",
					gigascope.FormatIP(m.Tuple[0].IP()), m.Tuple[1].Uint(), m.Tuple[2].Uint())
				shown++
			}
		}
	}
	fmt.Printf("... %d TCP tuples total (UDP traffic was filtered by the LFTA)\n", total)
}
