package funcs

import (
	"os"
	"path/filepath"
	"testing"

	"gigascope/internal/schema"
)

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range []string{"getlpmid", "str_regex_match", "str_prefix", "str_len", "to_uint", "to_float", "ip_in_net", "str_find_substr"} {
		if _, ok := Global.Scalar(name); !ok {
			t.Errorf("scalar %s missing", name)
		}
	}
	for _, name := range []string{"count", "sum", "min", "max", "avg", "or_agg", "and_agg"} {
		if !Global.IsAggregate(name) {
			t.Errorf("aggregate %s missing", name)
		}
	}
	if Global.IsAggregate("getlpmid") {
		t.Error("getlpmid reported as aggregate")
	}
	if len(Global.ScalarNames()) == 0 || len(Global.AggregateNames()) == 0 {
		t.Error("names lists empty")
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterScalar(&Scalar{Name: "", HandleArg: -1}); err == nil {
		t.Error("unnamed scalar accepted")
	}
	f := &Scalar{
		Name: "f", Args: []schema.Type{schema.TUint}, Ret: schema.TUint, HandleArg: -1,
		Eval: func(a []schema.Value, _ Handle) (schema.Value, bool) { return a[0], true },
	}
	if err := r.RegisterScalar(f); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterScalar(f); err == nil {
		t.Error("duplicate scalar accepted")
	}
	if err := r.RegisterScalar(&Scalar{
		Name: "g", Args: []schema.Type{schema.TUint}, HandleArg: 3,
		Eval: func([]schema.Value, Handle) (schema.Value, bool) { return schema.Null, true },
	}); err == nil {
		t.Error("out-of-range handle arg accepted")
	}
	if err := r.RegisterScalar(&Scalar{
		Name: "h", Args: []schema.Type{schema.TUint}, HandleArg: 0,
		Eval: func([]schema.Value, Handle) (schema.Value, bool) { return schema.Null, true },
	}); err == nil {
		t.Error("handle arg without MakeHandle accepted")
	}
	if err := r.RegisterAggregate(&Aggregate{Name: "a"}); err == nil {
		t.Error("aggregate without New accepted")
	}
	agg := &Aggregate{
		Name: "a", Ret: retSame,
		New:  func(schema.Type) AggState { return &countState{} },
		Subs: []string{"a"}, Supers: []string{"sum"},
	}
	if err := r.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterAggregate(agg); err == nil {
		t.Error("duplicate aggregate accepted")
	}
}

func TestCheckArgs(t *testing.T) {
	f, _ := Global.Scalar("str_regex_match")
	if err := f.CheckArgs([]schema.Type{schema.TString, schema.TString}); err != nil {
		t.Errorf("exact types rejected: %v", err)
	}
	if err := f.CheckArgs([]schema.Type{schema.TUint, schema.TString}); err == nil {
		t.Error("uint for string accepted")
	}
	if err := f.CheckArgs([]schema.Type{schema.TString}); err == nil {
		t.Error("wrong arity accepted")
	}
	// Numeric coercion.
	g, _ := Global.Scalar("ip_in_net")
	_ = g
	h := &Scalar{Name: "h", Args: []schema.Type{schema.TFloat}}
	if err := h.CheckArgs([]schema.Type{schema.TUint}); err != nil {
		t.Errorf("numeric coercion rejected: %v", err)
	}
	anyf := &Scalar{Name: "any", Args: []schema.Type{schema.TNull}}
	if err := anyf.CheckArgs([]schema.Type{schema.TString}); err != nil {
		t.Errorf("any-typed arg rejected: %v", err)
	}
}

func TestGetLPMID(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peerid.tbl")
	if err := os.WriteFile(path, []byte("10.0.0.0/8 7\n192.168.0.0/16 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := Global.Scalar("getlpmid")
	if f.HandleArg != 1 || !f.Partial || f.Cost != CostCheap {
		t.Fatalf("getlpmid spec = %+v", f)
	}
	h, err := f.MakeHandle(schema.MakeStr(path))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := f.Eval([]schema.Value{schema.MakeIP(0x0a010101), schema.Null}, h)
	if !ok || v.Uint() != 7 {
		t.Errorf("getlpmid(10.1.1.1) = %v, %v", v, ok)
	}
	// Partial semantics: unmatched address discards the tuple.
	if _, ok := f.Eval([]schema.Value{schema.MakeIP(0x08080808), schema.Null}, h); ok {
		t.Error("unmatched address returned a value")
	}
	if _, err := f.MakeHandle(schema.MakeStr(filepath.Join(dir, "missing.tbl"))); err == nil {
		t.Error("missing table file accepted")
	}
}

func TestStrRegexMatch(t *testing.T) {
	f, _ := Global.Scalar("str_regex_match")
	if f.Cost != CostExpensive {
		t.Error("regex not marked expensive")
	}
	// The paper's HTTP detection pattern (§4).
	h, err := f.MakeHandle(schema.MakeStr(`^[^\n]*HTTP/1.*`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		payload string
		want    bool
	}{
		{"GET /index.html HTTP/1.1\r\nHost: x\r\n", true},
		{"HTTP/1.0 200 OK\r\n", true},
		{"\nHTTP/1.1 in second line", false},
		{"random tunneled bytes", false},
	}
	for _, c := range cases {
		v, ok := f.Eval([]schema.Value{schema.MakeStr(c.payload), schema.Null}, h)
		if !ok || v.Bool() != c.want {
			t.Errorf("match(%q) = %v, %v; want %v", c.payload, v, ok, c.want)
		}
	}
	if _, err := f.MakeHandle(schema.MakeStr("[bad")); err == nil {
		t.Error("bad regex accepted")
	}
}

func TestSimpleScalars(t *testing.T) {
	eval := func(name string, args ...schema.Value) schema.Value {
		f, ok := Global.Scalar(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		v, ok := f.Eval(args, nil)
		if !ok {
			t.Fatalf("%s returned no value", name)
		}
		return v
	}
	if v := eval("str_prefix", schema.MakeStr("GET /"), schema.MakeStr("GET")); !v.Bool() {
		t.Error("str_prefix(GET /, GET) = false")
	}
	if v := eval("str_len", schema.MakeStr("abcd")); v.Uint() != 4 {
		t.Errorf("str_len = %v", v)
	}
	if v := eval("to_uint", schema.MakeFloat(3.9)); v.Uint() != 3 {
		t.Errorf("to_uint(3.9) = %v", v)
	}
	if v := eval("to_float", schema.MakeUint(5)); v.Float() != 5 {
		t.Errorf("to_float(5) = %v", v)
	}
	if v := eval("ip_in_net", schema.MakeIP(0x0a0101fe), schema.MakeIP(0x0a010100), schema.MakeIP(0xffffff00)); !v.Bool() {
		t.Error("ip_in_net inside = false")
	}
	if v := eval("ip_in_net", schema.MakeIP(0x0a0102fe), schema.MakeIP(0x0a010100), schema.MakeIP(0xffffff00)); v.Bool() {
		t.Error("ip_in_net outside = true")
	}
	if v := eval("str_find_substr", schema.MakeStr("xxHTTPyy"), schema.MakeStr("HTTP")); !v.Bool() {
		t.Error("str_find_substr = false")
	}
	if v := eval("subnet", schema.MakeIP(0x0a01027f), schema.MakeUint(24)); v.IP() != 0x0a010200 {
		t.Errorf("subnet(10.1.2.127, 24) = %v", v)
	}
	if v := eval("subnet", schema.MakeIP(0x0a01027f), schema.MakeUint(0)); v.IP() != 0 {
		t.Errorf("subnet(.., 0) = %v", v)
	}
	f, _ := Global.Scalar("subnet")
	if _, ok := f.Eval([]schema.Value{schema.MakeIP(1), schema.MakeUint(33)}, nil); ok {
		t.Error("subnet masklen 33 accepted")
	}
}

func TestAggregateStates(t *testing.T) {
	add := func(s AggState, vals ...schema.Value) AggState {
		for _, v := range vals {
			s.Add(v)
		}
		return s
	}
	newAgg := func(name string, arg schema.Type) AggState {
		a, ok := Global.Aggregate(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		return a.New(arg)
	}
	u := schema.MakeUint
	if got := add(newAgg("count", schema.TNull), schema.Null, schema.Null, schema.Null).Result(); got.Uint() != 3 {
		t.Errorf("count = %v", got)
	}
	if got := add(newAgg("sum", schema.TUint), u(1), u(2), u(3)).Result(); got.Uint() != 6 {
		t.Errorf("sum uint = %v", got)
	}
	if got := add(newAgg("sum", schema.TInt), schema.MakeInt(-5), schema.MakeInt(2)).Result(); got.Int() != -3 {
		t.Errorf("sum int = %v", got)
	}
	if got := add(newAgg("sum", schema.TFloat), schema.MakeFloat(1.5), schema.MakeFloat(2.0)).Result(); got.Float() != 3.5 {
		t.Errorf("sum float = %v", got)
	}
	if got := add(newAgg("min", schema.TUint), u(5), u(2), u(9)).Result(); got.Uint() != 2 {
		t.Errorf("min = %v", got)
	}
	if got := add(newAgg("max", schema.TUint), u(5), u(2), u(9)).Result(); got.Uint() != 9 {
		t.Errorf("max = %v", got)
	}
	if got := add(newAgg("avg", schema.TUint), u(2), u(4)).Result(); got.Float() != 3 {
		t.Errorf("avg = %v", got)
	}
	if got := newAgg("avg", schema.TUint).Result(); !got.IsNull() {
		t.Errorf("avg of empty = %v", got)
	}
	if got := newAgg("min", schema.TUint).Result(); !got.IsNull() {
		t.Errorf("min of empty = %v", got)
	}
	if got := add(newAgg("or_agg", schema.TUint), u(0b001), u(0b100)).Result(); got.Uint() != 0b101 {
		t.Errorf("or_agg = %v", got)
	}
	if got := add(newAgg("and_agg", schema.TUint), u(0b011), u(0b110)).Result(); got.Uint() != 0b010 {
		t.Errorf("and_agg = %v", got)
	}
}

func TestAggregateDecompositionsResolvable(t *testing.T) {
	// Every declared sub and super aggregate must itself be registered:
	// the planner relies on this when splitting queries.
	for _, name := range Global.AggregateNames() {
		a, _ := Global.Aggregate(name)
		for i := range a.Subs {
			if !Global.IsAggregate(a.Subs[i]) {
				t.Errorf("%s: sub %s unregistered", name, a.Subs[i])
			}
			if !Global.IsAggregate(a.Supers[i]) {
				t.Errorf("%s: super %s unregistered", name, a.Supers[i])
			}
		}
	}
	// min/max/sum/count must be self-decomposable (paper §3).
	for _, name := range []string{"min", "max", "sum"} {
		a, _ := Global.Aggregate(name)
		if len(a.Subs) != 1 || a.Subs[0] != name || a.Supers[0] != name {
			t.Errorf("%s not self-decomposable: %v/%v", name, a.Subs, a.Supers)
		}
	}
	cnt, _ := Global.Aggregate("count")
	if cnt.Supers[0] != "sum" {
		t.Errorf("count super = %v, want sum", cnt.Supers)
	}
	avg, _ := Global.Aggregate("avg")
	if avg.Final != FinalRatio || len(avg.Subs) != 2 {
		t.Errorf("avg decomposition = %+v", avg)
	}
}

func TestSplitAggregateEquivalence(t *testing.T) {
	// Simulating the LFTA/HFTA split at the state level: applying the sub
	// aggregates to a partition of the input and the super aggregates to
	// the partials must equal the unsplit aggregate. This is the §3
	// sub/super-aggregate invariant.
	vals := []uint64{5, 1, 9, 9, 3, 7, 2, 8, 4, 6}
	partitions := [][]uint64{vals[:3], vals[3:4], vals[4:]}
	for _, name := range []string{"count", "sum", "min", "max", "avg"} {
		a, _ := Global.Aggregate(name)
		// Unsplit.
		whole := a.New(schema.TUint)
		for _, v := range vals {
			whole.Add(schema.MakeUint(v))
		}
		// Split: sub states per partition, super states over partials.
		supers := make([]AggState, len(a.Subs))
		for i, s := range a.Supers {
			sa, _ := Global.Aggregate(s)
			supers[i] = sa.New(schema.TUint)
		}
		for _, part := range partitions {
			subs := make([]AggState, len(a.Subs))
			for i, s := range a.Subs {
				sa, _ := Global.Aggregate(s)
				subs[i] = sa.New(schema.TUint)
			}
			for _, v := range part {
				for _, s := range subs {
					s.Add(schema.MakeUint(v))
				}
			}
			for i, s := range subs {
				supers[i].Add(s.Result())
			}
		}
		var got schema.Value
		switch a.Final {
		case FinalRatio:
			got = schema.MakeFloat(supers[0].Result().Float() / supers[1].Result().Float())
		default:
			got = supers[0].Result()
		}
		want := whole.Result()
		if got.Compare(want) != 0 {
			t.Errorf("%s: split = %v, unsplit = %v", name, got, want)
		}
	}
}
