package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/ring"
)

// publisher fans a node's output out to its subscribers over bounded
// rings (the shared-memory channels of the paper's architecture). Rings
// carry batches: each send moves a whole exec.Batch, so the per-tuple
// channel cost is amortized over the batch (see queryNode's flush policy
// for when batches close).
//
// Drop policy implements the §4 tuple-value heuristic at batch
// granularity, and the accounting is per subscriber, not per batch: a
// batch that finds two of three rings full adds its tuple count to drops
// twice — each subscriber independently lost that many tuples. SYSMON
// occupancy denominators divide by tuples-published (counted once per
// publish), so drops/tuples reads as mean per-subscriber loss and stays
// interpretable as fan-out grows. LFTA outputs (least processed,
// cheapest to lose) are shed when a ring is full; HFTA outputs (highly
// processed, most valuable) block instead, applying backpressure.
// Heartbeat-only batches never block; heartbeats lost to full rings are
// counted in hbDrops.
//
// Locking: sendMu serializes delivery (publish, and any channel close)
// so a subscription channel is never closed while a blocking send is in
// flight on it; mu guards the subscriber list and closed flag. Lock
// order is sendMu then mu — never the reverse.
type publisher struct {
	name  string
	level core.Level
	shed  bool

	sendMu sync.Mutex // held across delivery and across channel closes
	mu     sync.Mutex // guards subs/closed; nested inside sendMu
	subs   []*Subscription
	closed bool

	// ringEdge, when non-nil, is a lock-free SPSC edge to one dedicated
	// consumer — the shard→reunify hop. It is wired before the producer
	// starts and receives every published batch under the same shed
	// accounting as a channel subscriber. Only the owning node's
	// executing context pushes or closes it.
	ringEdge *ring.SPSC[exec.Batch]

	drops   atomic.Uint64 // tuples shed at full rings (summed per subscriber)
	hbDrops atomic.Uint64 // heartbeats discarded at full rings (per subscriber)
	batches atomic.Uint64 // batches published (ring crossings)
	tuples  atomic.Uint64 // tuples published (occupancy denominator; once per publish)
}

func (p *publisher) subscribe(buf int) *Subscription {
	p.mu.Lock()
	defer p.mu.Unlock()
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{
		Name: p.name,
		C:    make(chan exec.Batch, buf),
		pub:  p,
	}
	if p.closed {
		// Freshly made channel: no send can be in flight, safe to close
		// without sendMu.
		close(s.C)
		return s
	}
	p.subs = append(p.subs, s)
	return s
}

// pruneLocked removes cancelled subscriptions and closes their channels.
// Caller holds sendMu and mu: sendMu guarantees no send is in flight on
// a channel closed here.
func (p *publisher) pruneLocked() {
	cancelled := false
	for _, s := range p.subs {
		if s.cancelled.Load() {
			cancelled = true
			break
		}
	}
	if !cancelled {
		return
	}
	kept := make([]*Subscription, 0, len(p.subs))
	for _, s := range p.subs {
		if s.cancelled.Load() {
			close(s.C)
		} else {
			kept = append(kept, s)
		}
	}
	p.subs = kept
}

// detach removes one cancelled subscription and closes its channel, for
// Subscription.Cancel: pruning must not wait for the next publish (a
// quarantined or idle publisher may never publish again, which used to
// leak the drain goroutine and hold the ring open forever). A no-op if
// publish/close already pruned it.
func (p *publisher) detach(s *Subscription) {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, t := range p.subs {
		if t == s {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			close(s.C)
			return
		}
	}
}

// publish delivers one batch to every subscriber and the ring edge.
// Exactly one executing context (the owning query node's) calls publish
// for a given publisher. nTuples is b's tuple count, tracked
// incrementally by the batch assembler as messages are appended — the
// shed path must not rescan the batch per full subscriber (it used to
// call Tuples() and Heartbeats(), two O(len) scans per drop).
func (p *publisher) publish(b exec.Batch, nTuples int) {
	if len(b) == 0 {
		return
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.mu.Lock()
	p.pruneLocked()
	subs := p.subs
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	nT := uint64(nTuples)
	nHBs := uint64(len(b)) - nT
	p.batches.Add(1)
	p.tuples.Add(nT)
	for _, s := range subs {
		if s.cancelled.Load() {
			continue
		}
		if p.shed || nT == 0 {
			// LFTA/source output sheds under overload; heartbeat-only
			// batches never block anyone.
			select {
			case s.C <- b:
			default:
				p.drops.Add(nT) // least-processed tuples shed first
				p.hbDrops.Add(nHBs)
			}
			continue
		}
		// HFTA output: backpressure, never lose a tuple. Safe to block
		// while holding sendMu: close() waits for sendMu instead of
		// closing the channel under us (the old close/publish race), and
		// a cancelling subscriber drains until the close it requested.
		s.C <- b
	}
	if r := p.ringEdge; r != nil {
		if p.shed || nT == 0 {
			if !r.TryPush(b) {
				p.drops.Add(nT)
				p.hbDrops.Add(nHBs)
			}
		} else {
			r.Push(b)
		}
	}
}

// close ends the stream: subscribers' channels close after any in-
// flight delivery completes, and the ring edge (if any) is closed for
// draining. Idempotent; callable from any goroutine — taking sendMu
// first is what makes a Stop-path close safe against a concurrent
// blocking publish from the owning node.
func (p *publisher) close() {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	subs := p.subs
	p.subs = nil
	p.mu.Unlock()
	for _, s := range subs {
		close(s.C)
	}
	if p.ringEdge != nil {
		p.ringEdge.Close()
	}
}

// Subscription is a query handle: a bounded ring of message batches from
// one stream plus the ability to demand a heartbeat from upstream. Ring
// capacity is counted in batches; each batch holds up to the manager's
// MaxBatch messages. Batches are shared between subscribers — treat them
// as read-only.
type Subscription struct {
	Name string
	C    chan exec.Batch

	pub       *publisher
	cancelled atomic.Bool
	reqFn     func()
}

// Cancel detaches the subscription: the channel is closed as soon as no
// delivery is in flight, without waiting for the publisher to publish
// again. A short-lived drain goroutine unsticks any send already in
// flight (the detach itself must wait for that send to finish) and
// exits when the channel closes.
func (s *Subscription) Cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		go func() {
			for range s.C {
			}
		}()
		go s.pub.detach(s)
	}
}

// StreamTuples returns the stream's cumulative published-tuple count —
// the per-stream sequence number the wire transport's gap accounting is
// built on (tuples is counted once per publish, before any per-
// subscriber shed, so two subscribers of one stream agree on it).
func (s *Subscription) StreamTuples() uint64 { return s.pub.tuples.Load() }

// RequestHeartbeat asks the producing chain for an ordering update token
// (paper §3's on-demand variant): the request propagates to the packet
// sources, which emit clock bounds on the next AdvanceClock.
func (s *Subscription) RequestHeartbeat() {
	if s.reqFn != nil {
		s.reqFn()
	}
}
