// gsql parses, type-checks, and explains GSQL queries: it shows the
// LFTA/HFTA split, imputed ordering properties, NIC pushdown programs,
// and snap lengths without running anything.
//
//	gsql [-f file.gsql] ['query text']
//
// With no arguments it reads from stdin. Files may contain PROTOCOL
// definitions and multiple queries separated by semicolons.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/netflow"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
	"gigascope/internal/sysmon"
)

func main() {
	file := flag.String("f", "", "read GSQL from this file instead of the command line")
	noSplit := flag.Bool("nosplit", false, "disable LFTA/HFTA query splitting")
	noShare := flag.Bool("noshare", false, "disable cross-query sharing (shared LFTAs, common prefilter)")
	explain := flag.String("explain", "query", "explain view: query (per-query plans and nodes), script (whole-script plan with shared LFTAs and prefilter groups), all (both)")
	tableSize := flag.Int("lfta-table", 0, "LFTA direct-mapped aggregation table slots (default 4096)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gsql [-f file.gsql] ['query text']\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	src, err := readSource(*file, flag.Args())
	if err != nil {
		fatal(err)
	}
	script, err := gsql.ParseScript(src)
	if err != nil {
		fatal(err)
	}
	if len(script.Protocols) == 0 && len(script.Queries) == 0 {
		fatal(fmt.Errorf("no queries or protocol definitions in input"))
	}

	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		fatal(err)
	}
	if err := netflow.Register(cat); err != nil {
		fatal(err)
	}
	// Telemetry schemas, so self-monitoring queries explain like any other.
	if err := sysmon.RegisterSchemas(cat); err != nil {
		fatal(err)
	}
	opts := &core.Options{DisableSplit: *noSplit, DisableSharing: *noShare, LFTATableSize: *tableSize}
	switch *explain {
	case "query", "script", "all":
	default:
		fatal(fmt.Errorf("unknown -explain view %q (want query, script, or all)", *explain))
	}

	for _, def := range script.Protocols {
		s, err := core.ProtocolSchema(def)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("registered protocol %s (%d fields)\n", s.Name, len(s.Cols))
	}
	// The whole script compiles as one unit so cross-query rewrites
	// (shared LFTAs, common prefilter) appear in the explanation exactly
	// as the RTS would run them.
	res, err := core.CompileScriptPlan(cat, script, opts)
	if err != nil {
		fatal(err)
	}
	if *explain == "query" || *explain == "all" {
		for i, cq := range res.Queries {
			if i > 0 {
				fmt.Println(strings.Repeat("-", 72))
			}
			fmt.Print(cq.Explain())
		}
	}
	if *explain == "script" || *explain == "all" {
		if *explain == "all" {
			fmt.Println(strings.Repeat("=", 72))
		}
		fmt.Print(core.ExplainScript(res))
	}
}

func readSource(file string, args []string) (string, error) {
	if file != "" {
		b, err := os.ReadFile(file)
		return string(b), err
	}
	if len(args) > 0 {
		return strings.Join(args, " "), nil
	}
	b, err := io.ReadAll(os.Stdin)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gsql: %v\n", err)
	os.Exit(1)
}
