// Package defrag implements the IP defragmentation operator the paper
// describes as the canonical user-written query node (§3): "we have
// implemented a special IP defragmentation operator in this manner and
// have built a query tree using it. The ability to bypass the existing
// query system when necessary is a critical flexibility in our
// application domain."
//
// The operator consumes a stream of IPV4-shaped tuples (fragments
// included), reassembles fragmented datagrams, and emits a stream with
// the same schema in which every tuple is a whole datagram: ip_payload is
// the reassembled payload, fragment_offset and mf_flag are zero, and
// total_length is updated. Unfragmented tuples pass through untouched.
// Incomplete datagrams are evicted (and counted) once the stream's time
// attribute moves past a timeout — ordering properties bound even a
// user-written operator's state.
package defrag

import (
	"fmt"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// Config maps the operator onto its input schema. Build one with
// ConfigFor, or fill the indexes by hand for custom schemas.
type Config struct {
	TimeIdx     int // ordered time attribute (seconds)
	SrcIdx      int // source IP
	DstIdx      int // destination IP
	IDIdx       int // IP identification
	ProtoIdx    int // IP protocol
	FragOffIdx  int // fragment offset (8-byte units already applied: bytes = value*8)
	MFIdx       int // more-fragments flag (0/1)
	PayloadIdx  int // IP payload bytes
	TotalLenIdx int // IP total length; -1 if absent
	HdrLenIdx   int // IP header length; -1 if absent
	// TimeoutSec evicts incomplete datagrams once the time attribute
	// passes their first fragment by this much (default 30).
	TimeoutSec uint64
}

// ConfigFor derives a Config from a schema carrying the standard IPV4
// column names.
func ConfigFor(s *schema.Schema) (Config, error) {
	idx := func(name string) (int, error) {
		i, _ := s.Col(name)
		if i < 0 {
			return -1, fmt.Errorf("defrag: schema %s lacks column %s", s.Name, name)
		}
		return i, nil
	}
	var cfg Config
	var err error
	required := []struct {
		dst  *int
		name string
	}{
		{&cfg.TimeIdx, "time"}, {&cfg.SrcIdx, "srcIP"}, {&cfg.DstIdx, "destIP"},
		{&cfg.IDIdx, "ip_id"}, {&cfg.ProtoIdx, "protocol"},
		{&cfg.FragOffIdx, "fragment_offset"}, {&cfg.MFIdx, "mf_flag"},
		{&cfg.PayloadIdx, "ip_payload"},
	}
	for _, r := range required {
		if *r.dst, err = idx(r.name); err != nil {
			return Config{}, err
		}
	}
	cfg.TotalLenIdx, _ = s.Col("total_length")
	cfg.HdrLenIdx, _ = s.Col("hdr_length")
	return cfg, nil
}

// Operator is the defragmenter. It implements exec.Operator and is
// registered with the RTS through Manager.AddUserNode.
type Operator struct {
	cfg   Config
	out   *schema.Schema
	table map[fragKey]*datagram
	wm    uint64
	hasWM bool
	stats exec.Counters
	// Evicted counts datagrams dropped incomplete at timeout.
	evictedIncomplete uint64
}

type fragKey struct {
	src, dst uint32
	id       uint64
	proto    uint64
}

type datagram struct {
	first    schema.Tuple // tuple of the offset-0 fragment
	haveHead bool
	pieces   []piece
	total    int // payload length once the last fragment is seen; -1 unknown
	arrived  uint64
}

type piece struct {
	off  int
	data []byte
}

// New builds a defragmenter emitting tuples of the given schema (usually
// the input schema itself; the operator does not reorder columns).
func New(cfg Config, out *schema.Schema) (*Operator, error) {
	if cfg.TimeoutSec == 0 {
		cfg.TimeoutSec = 30
	}
	for _, i := range []int{cfg.TimeIdx, cfg.SrcIdx, cfg.DstIdx, cfg.IDIdx,
		cfg.ProtoIdx, cfg.FragOffIdx, cfg.MFIdx, cfg.PayloadIdx} {
		if i < 0 || i >= len(out.Cols) {
			return nil, fmt.Errorf("defrag: column index %d out of range for %s", i, out.Name)
		}
	}
	return &Operator{cfg: cfg, out: out, table: make(map[fragKey]*datagram)}, nil
}

// Ports implements exec.Operator.
func (o *Operator) Ports() int { return 1 }

// OutSchema implements exec.Operator.
func (o *Operator) OutSchema() *schema.Schema { return o.out }

// Stats returns the operator counters.
func (o *Operator) Stats() exec.OpStats { return o.stats.Snapshot() }

// EvictedIncomplete counts datagrams dropped at timeout.
func (o *Operator) EvictedIncomplete() uint64 { return o.evictedIncomplete }

// Pending returns the number of datagrams awaiting fragments.
func (o *Operator) Pending() int { return len(o.table) }

// Push implements exec.Operator.
func (o *Operator) Push(_ int, m exec.Message, emit exec.Emit) error {
	if m.IsHeartbeat() {
		if b := m.Bounds[o.cfg.TimeIdx]; !b.IsNull() {
			o.advance(b.Uint())
		}
		emit(m)
		return nil
	}
	o.stats.In.Add(1)
	row := m.Tuple
	t := row[o.cfg.TimeIdx].Uint()
	o.advance(t)

	fragOff := row[o.cfg.FragOffIdx].Uint()
	mf := row[o.cfg.MFIdx].Uint()
	if fragOff == 0 && mf == 0 {
		o.stats.Out.Add(1)
		emit(m) // whole datagram: pass through
		return nil
	}

	key := fragKey{
		src:   row[o.cfg.SrcIdx].IP(),
		dst:   row[o.cfg.DstIdx].IP(),
		id:    row[o.cfg.IDIdx].Uint(),
		proto: row[o.cfg.ProtoIdx].Uint(),
	}
	d, ok := o.table[key]
	if !ok {
		d = &datagram{total: -1, arrived: t}
		o.table[key] = d
	}
	payload := row[o.cfg.PayloadIdx].Bytes()
	off := int(fragOff) * 8
	buf := make([]byte, len(payload))
	copy(buf, payload)
	d.pieces = append(d.pieces, piece{off: off, data: buf})
	if off == 0 {
		d.first = row.Clone()
		d.haveHead = true
	}
	if mf == 0 {
		d.total = off + len(payload)
	}
	if d.complete() {
		delete(o.table, key)
		o.emitDatagram(d, emit)
	}
	return nil
}

func (d *datagram) complete() bool {
	if !d.haveHead || d.total < 0 {
		return false
	}
	covered := make([]bool, d.total)
	for _, pc := range d.pieces {
		for i := pc.off; i < pc.off+len(pc.data) && i < d.total; i++ {
			covered[i] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

func (o *Operator) emitDatagram(d *datagram, emit exec.Emit) {
	payload := make([]byte, d.total)
	for _, pc := range d.pieces {
		if pc.off < d.total {
			end := pc.off + len(pc.data)
			if end > d.total {
				end = d.total
			}
			copy(payload[pc.off:end], pc.data[:end-pc.off])
		}
	}
	row := d.first
	row[o.cfg.PayloadIdx] = schema.MakeString(payload)
	row[o.cfg.FragOffIdx] = schema.MakeUint(0)
	row[o.cfg.MFIdx] = schema.MakeUint(0)
	if o.cfg.TotalLenIdx >= 0 {
		hdr := uint64(20)
		if o.cfg.HdrLenIdx >= 0 && !row[o.cfg.HdrLenIdx].IsNull() {
			hdr = row[o.cfg.HdrLenIdx].Uint()
		}
		row[o.cfg.TotalLenIdx] = schema.MakeUint(hdr + uint64(d.total))
	}
	o.stats.Out.Add(1)
	emit(exec.TupleMsg(row))
}

// advance moves the watermark and evicts timed-out incomplete datagrams.
func (o *Operator) advance(t uint64) {
	if o.hasWM && t <= o.wm {
		return
	}
	o.wm, o.hasWM = t, true
	for key, d := range o.table {
		if d.arrived+o.cfg.TimeoutSec < t {
			delete(o.table, key)
			o.evictedIncomplete++
			o.stats.Dropped.Add(1)
		}
	}
}

// FlushAll implements exec.Operator: incomplete datagrams at end of
// stream are dropped (there is nothing valid to emit).
func (o *Operator) FlushAll(exec.Emit) error {
	o.evictedIncomplete += uint64(len(o.table))
	o.stats.Dropped.Add(uint64(len(o.table)))
	o.table = make(map[fragKey]*datagram)
	return nil
}
