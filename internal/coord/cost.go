package coord

import (
	"sort"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/plan"
	"gigascope/internal/rts"
)

// CostModel estimates per-operator CPU cost in microseconds of work per
// second of traffic. The static coefficients mirror the capture-path
// defaults (capture.CostConfig); observed per-operator rates and
// selectivities — harvested from the same NodeStats/IfaceStats counters
// SYSMON publishes — override the static guesses when present, so a
// long-running coordinator converges toward measured reality while a
// cold start still places deterministically.
type CostModel struct {
	// Per-packet LFTA-side costs.
	SteerPerPktUs   float64 // ring steering, per packet reaching the LFTA
	ExtractPerColUs float64 // per referenced column per packet
	TermPerPktUs    float64 // per predicate conjunct per packet

	// Per-tuple HFTA-side costs by operator kind.
	SelPerTupleUs   float64
	AggPerTupleUs   float64
	JoinPerTupleUs  float64
	MergePerTupleUs float64

	// IfaceRate is packets/sec offered per interface (default applied
	// to interfaces not listed).
	IfaceRate       map[string]float64
	DefaultRate     float64
	// GateFactor is the fraction of an interface's packets that survive
	// the prefilter for a given LFTA (1 = ungated). Keyed by
	// lower-cased interface name; applied to every LFTA on it.
	GateFactor map[string]float64

	// Observed holds measured per-node costs keyed by lower-cased node
	// name; entries override the static selectivity chain.
	Observed map[string]ObservedCost
}

// ObservedCost is a measured data point for one operator.
type ObservedCost struct {
	InRate      float64 // tuples (or packets) per second seen at the input
	Selectivity float64 // OutTuples / InTuples
}

// DefaultCostModel returns the static model used when nothing has been
// measured yet. The LFTA-side coefficients match the capture cost
// defaults (SteerPerPktUs 0.05 etc.) so the coordinator and the capture
// simulator agree about where cycles go.
func DefaultCostModel() *CostModel {
	return &CostModel{
		SteerPerPktUs:   0.05,
		ExtractPerColUs: 0.02,
		TermPerPktUs:    0.03,
		SelPerTupleUs:   0.2,
		AggPerTupleUs:   1.0,
		JoinPerTupleUs:  1.5,
		MergePerTupleUs: 0.1,
		DefaultRate:     100_000,
		IfaceRate:       map[string]float64{},
		GateFactor:      map[string]float64{},
		Observed:        map[string]ObservedCost{},
	}
}

// ObserveStats folds a stats snapshot (e.g. from System.Stats or the
// SYSMON.NodeStats stream) into the model: every node's input rate and
// selectivity become Observed entries that subsequent Place calls use
// instead of the static chain. elapsedUsec is the wall (virtual) time
// the counters cover.
func (cm *CostModel) ObserveStats(stats []rts.NodeStats, elapsedUsec int64) {
	if elapsedUsec <= 0 {
		return
	}
	sec := float64(elapsedUsec) / 1e6
	if cm.Observed == nil {
		cm.Observed = map[string]ObservedCost{}
	}
	for _, st := range stats {
		in := float64(st.Op.In)
		if in <= 0 {
			continue
		}
		oc := ObservedCost{InRate: in / sec, Selectivity: float64(st.Op.Out) / in}
		cm.Observed[strings.ToLower(st.Name)] = oc
	}
}

// ObserveIfaceStats folds interface counters into per-interface offered
// rates and prefilter gate factors.
func (cm *CostModel) ObserveIfaceStats(stats []rts.IfaceStats, elapsedUsec int64) {
	if elapsedUsec <= 0 {
		return
	}
	sec := float64(elapsedUsec) / 1e6
	if cm.IfaceRate == nil {
		cm.IfaceRate = map[string]float64{}
	}
	if cm.GateFactor == nil {
		cm.GateFactor = map[string]float64{}
	}
	for _, st := range stats {
		key := strings.ToLower(st.Name)
		if st.Packets > 0 {
			cm.IfaceRate[key] = float64(st.Packets) / sec
		}
		if st.PrefilterEvals > 0 {
			cm.GateFactor[key] = 1 - float64(st.PrefilterGated)/float64(st.PrefilterEvals)
		}
	}
}

func (cm *CostModel) ifaceRate(iface string) float64 {
	if iface == "" {
		iface = "default"
	}
	if r, ok := cm.IfaceRate[strings.ToLower(iface)]; ok && r > 0 {
		return r
	}
	if cm.DefaultRate > 0 {
		return cm.DefaultRate
	}
	return 100_000
}

func (cm *CostModel) gateFactor(iface string) float64 {
	if iface == "" {
		iface = "default"
	}
	if g, ok := cm.GateFactor[strings.ToLower(iface)]; ok && g > 0 && g <= 1 {
		return g
	}
	return 1
}

// staticSelectivity guesses an operator's Out/In ratio from its shape.
func staticSelectivity(n *core.Node) float64 {
	switch n.Kind {
	case core.OpAgg:
		return 0.1
	case core.OpJoin:
		return 0.5
	case core.OpMerge:
		return 1.0
	default:
		s := 1.0
		for i := 0; i < n.PredConjuncts(); i++ {
			s *= 0.75
		}
		if s < 0.05 {
			s = 0.05
		}
		return s
	}
}

func (cm *CostModel) selectivity(n *core.Node) float64 {
	if oc, ok := cm.Observed[strings.ToLower(n.Name)]; ok && oc.Selectivity >= 0 {
		return oc.Selectivity
	}
	return staticSelectivity(n)
}

// perUnitUs is the model's cost to process one input unit (packet for
// LFTAs, tuple for HFTAs) at node n.
func (cm *CostModel) perUnitUs(n *core.Node) float64 {
	if n.Level == core.LevelLFTA {
		c := cm.SteerPerPktUs
		c += float64(len(n.NeedCols())) * cm.ExtractPerColUs
		c += float64(n.PredConjuncts()) * cm.TermPerPktUs
		if n.Kind == core.OpAgg {
			c += cm.AggPerTupleUs * 0.5 // LFTA sub-aggregate: cheap table probe
		}
		return c
	}
	var c float64
	switch n.Kind {
	case core.OpAgg:
		c = cm.AggPerTupleUs
	case core.OpJoin:
		c = cm.JoinPerTupleUs
	case core.OpMerge:
		c = cm.MergePerTupleUs
	default:
		c = cm.SelPerTupleUs
	}
	return c + float64(n.PredConjuncts())*cm.TermPerPktUs
}

// nodeRates walks every query's node graph root-down and computes the
// modeled input and output rates (units/sec) at each node, keyed by
// lower-cased node name. Partitioned LFTAs are handled by the caller
// dividing by Of.
func (cm *CostModel) nodeRates(queries []*core.CompiledQuery) (in, out map[string]float64) {
	rates := map[string]float64{}
	outRates := map[string]float64{}
	// Queries compile in dependency order: earlier outputs feed later
	// reads, and within a query LFTAs precede the HFTAs above them, so
	// one ordered pass settles every rate.
	for _, q := range queries {
		for _, n := range q.Nodes {
			key := strings.ToLower(n.Name)
			var in float64
			for _, src := range n.Sources {
				if n.Level == core.LevelLFTA || src.IsProtocol {
					in += cm.ifaceRate(src.Interface) * cm.gateFactor(src.Interface)
					continue
				}
				if r, ok := outRates[strings.ToLower(src.Name)]; ok {
					in += r
				} else if oc, ok := cm.Observed[strings.ToLower(src.Name)]; ok {
					in += oc.InRate * oc.Selectivity
				} else {
					in += cm.DefaultRate * 0.1 // unknown stream (e.g. SYSMON)
				}
			}
			if oc, ok := cm.Observed[key]; ok && oc.InRate > 0 {
				in = oc.InRate
			}
			rates[key] = in
			outRates[key] = in * cm.selectivity(n)
		}
	}
	return rates, outRates
}

// planBoundary finds the plan boundary record for a query (used to
// surface boundary modes in the manifest for triage).
func planBoundary(p *plan.QueryPlan, name string) *plan.Boundary {
	if p == nil || p.Root == nil {
		return nil
	}
	for _, b := range plan.Boundaries(p.Root) {
		if strings.EqualFold(b.Name, name) {
			return b
		}
	}
	return nil
}

// sortedHostNames returns topology host names in deterministic order.
func sortedHostNames(t *Topology) []string {
	names := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
