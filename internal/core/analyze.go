package core

import (
	"fmt"
	"strings"

	"gigascope/internal/exec"
	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// analyzer carries per-query compilation state.
type analyzer struct {
	cat    *schema.Catalog
	reg    *funcs.Registry
	opts   *Options
	name   string
	params map[string]schema.Type
}

// resolveSources maps the FROM clause to schemas. Protocol sources carry
// their interface binding; stream sources must already be in the catalog.
func (a *analyzer) resolveSources(q *gsql.Query) ([]SourceRef, error) {
	if len(q.Sources) == 0 {
		return nil, fmt.Errorf("query has no sources")
	}
	refs := make([]SourceRef, len(q.Sources))
	for i, t := range q.Sources {
		// A dotted FROM clause usually means Interface.Protocol, but it can
		// also name a namespace-qualified stream registered under the
		// compound name (e.g. SYSMON.NodeStats, the self-monitoring
		// telemetry streams). The compound match is more specific, so it
		// wins when present.
		if t.Interface != "" {
			if cs, ok := a.cat.Lookup(t.Interface + "." + t.Name); ok && cs.Kind == schema.KindStream {
				refs[i] = SourceRef{Name: cs.Name, Binding: t.Binding(), Schema: cs}
				continue
			}
		}
		s, ok := a.cat.Lookup(t.Name)
		if !ok {
			return nil, fmt.Errorf("unknown stream or protocol %q", t.Name)
		}
		refs[i] = SourceRef{
			Name:       s.Name,
			Interface:  t.Interface,
			Binding:    t.Binding(),
			Schema:     s,
			IsProtocol: s.Kind == schema.KindProtocol,
		}
		if t.Interface != "" && s.Kind != schema.KindProtocol {
			return nil, fmt.Errorf("%s is a stream; interface qualifiers apply only to protocols", t.Name)
		}
	}
	return refs, nil
}

// conjuncts flattens a predicate into AND-ed terms.
func conjuncts(e gsql.Expr) []gsql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*gsql.BinaryExpr); ok && b.Op == gsql.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []gsql.Expr{e}
}

// conjoin rebuilds a predicate from conjuncts; nil for an empty list.
func conjoin(es []gsql.Expr) gsql.Expr {
	var out gsql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &gsql.BinaryExpr{Op: gsql.OpAnd, L: out, R: e, At: e.Pos()}
		}
	}
	return out
}

// exprCheap reports whether every function referenced is LFTA-safe.
func (a *analyzer) exprCheap(e gsql.Expr) bool {
	cheap := true
	gsql.Walk(e, func(n gsql.Expr) bool {
		if call, ok := n.(*gsql.FuncCall); ok {
			if f, ok := a.reg.Scalar(call.Name); ok && f.Cost == funcs.CostExpensive {
				cheap = false
				return false
			}
		}
		return true
	})
	return cheap
}

// hasAggregate reports whether the expression contains an aggregate call.
func (a *analyzer) hasAggregate(e gsql.Expr) bool {
	found := false
	gsql.Walk(e, func(n gsql.Expr) bool {
		if call, ok := n.(*gsql.FuncCall); ok && a.reg.IsAggregate(call.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// colRefs collects the distinct column names (by lower-cased name)
// referenced by the expressions, resolved against a single source.
func colRefs(es []gsql.Expr) []*gsql.ColRef {
	var out []*gsql.ColRef
	seen := make(map[string]bool)
	for _, e := range es {
		gsql.Walk(e, func(n gsql.Expr) bool {
			if c, ok := n.(*gsql.ColRef); ok {
				key := strings.ToLower(c.Name)
				if !seen[key] {
					seen[key] = true
					out = append(out, c)
				}
			}
			return true
		})
	}
	return out
}

// outName derives the output column name for a select item:
// alias > column name > synthesized.
func outName(item gsql.SelectItem, i int, used map[string]bool) (string, error) {
	name := item.Alias
	if name == "" {
		if c, ok := item.Expr.(*gsql.ColRef); ok {
			name = c.Name
		} else {
			name = fmt.Sprintf("f%d", i)
		}
	}
	key := strings.ToLower(name)
	if used[key] {
		return "", fmt.Errorf("duplicate output column %q (add AS aliases)", name)
	}
	used[key] = true
	return name, nil
}

// transform rebuilds an expression bottom-up, replacing each node with
// f(node) where f returns non-nil.
func transform(e gsql.Expr, f func(gsql.Expr) gsql.Expr) gsql.Expr {
	if e == nil {
		return nil
	}
	if r := f(e); r != nil {
		return r
	}
	switch n := e.(type) {
	case *gsql.BinaryExpr:
		return &gsql.BinaryExpr{Op: n.Op, L: transform(n.L, f), R: transform(n.R, f), At: n.At}
	case *gsql.UnaryExpr:
		return &gsql.UnaryExpr{Op: n.Op, X: transform(n.X, f), At: n.At}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(n.Args))
		for i, arg := range n.Args {
			args[i] = transform(arg, f)
		}
		return &gsql.FuncCall{Name: n.Name, Args: args, At: n.At}
	}
	return e
}

// stripQualifiers clears table qualifiers (used when rewriting an HFTA to
// read the LFTA's output stream).
func stripQualifiers(e gsql.Expr) gsql.Expr {
	return transform(e, func(n gsql.Expr) gsql.Expr {
		if c, ok := n.(*gsql.ColRef); ok {
			return &gsql.ColRef{Name: c.Name, At: c.At}
		}
		return nil
	})
}

// buildSelProj analyzes a pure selection/projection node.
func (a *analyzer) buildSelProj(name string, level Level, src SourceRef, q *gsql.Query) (*Node, error) {
	comp := &exec.Compiler{
		Reg:     a.reg,
		Params:  a.params,
		Resolve: exec.SchemaResolver(src.Schema, src.Binding),
	}
	n := &Node{
		Name: name, Level: level, Kind: OpSelProj,
		Sources: []SourceRef{src}, Query: q, params: a.params,
	}
	if q.Where != nil {
		pred, err := comp.Compile(q.Where)
		if err != nil {
			return nil, err
		}
		if pred.Type() != schema.TBool {
			return nil, fmt.Errorf("WHERE clause is %s, not boolean", pred.Type())
		}
		n.selPred = pred
		n.predTerms = len(conjuncts(q.Where))
	}
	used := make(map[string]bool)
	out := &schema.Schema{Name: name, Kind: schema.KindStream}
	for i, item := range q.Select {
		if a.hasAggregate(item.Expr) {
			return nil, fmt.Errorf("aggregate in SELECT requires a GROUP BY clause")
		}
		e, err := comp.Compile(item.Expr)
		if err != nil {
			return nil, err
		}
		colName, err := outName(item, i, used)
		if err != nil {
			return nil, err
		}
		ord := imputeExpr(item.Expr, src.Schema, src.Binding)
		// In-group ordering survives only if all its group fields are
		// projected through untouched; conservatively drop it.
		if ord.Kind == schema.OrderIncreasingInGroup {
			ord = schema.NoOrder
		}
		out.Cols = append(out.Cols, schema.Column{Name: colName, Type: e.Type(), Ordering: ord})
		n.selOuts = append(n.selOuts, e)
		n.selHB = append(n.selHB, hbPropagatable(item.Expr, src.Schema, src.Binding))
	}
	n.handles = comp.Handles
	n.Out = out
	a.finishProtocolNode(n, q)
	return n, nil
}

// finishProtocolNode records which protocol columns an LFTA extracts and
// derives the NIC pushdown.
func (a *analyzer) finishProtocolNode(n *Node, q *gsql.Query) {
	src := n.Sources[0]
	if !src.IsProtocol {
		return
	}
	var exprs []gsql.Expr
	for _, it := range q.Select {
		exprs = append(exprs, it.Expr)
	}
	for _, it := range q.GroupBy {
		exprs = append(exprs, it.Expr)
	}
	if q.Where != nil {
		exprs = append(exprs, q.Where)
	}
	if q.Having != nil {
		exprs = append(exprs, q.Having)
	}
	for _, c := range colRefs(exprs) {
		if i, _ := src.Schema.Col(c.Name); i >= 0 {
			n.needCols = append(n.needCols, i)
		}
	}
	n.NICProgram, n.SnapLen = a.pushdown(n, q)
}

// buildAgg analyzes a group-by/aggregation node. When lfta is true it
// builds the LFTA direct-mapped variant.
func (a *analyzer) buildAgg(name string, level Level, src SourceRef, q *gsql.Query, lfta bool) (*Node, error) {
	comp := &exec.Compiler{
		Reg:     a.reg,
		Params:  a.params,
		Resolve: exec.SchemaResolver(src.Schema, src.Binding),
	}
	n := &Node{
		Name: name, Level: level, Kind: OpAgg,
		Sources: []SourceRef{src}, Query: q, params: a.params,
		lftaTable: a.opts.tableSize(),
	}
	spec := &exec.AggSpec{OrdGroup: -1}

	if q.Where != nil {
		if a.hasAggregate(q.Where) {
			return nil, fmt.Errorf("aggregates are not allowed in WHERE (use HAVING)")
		}
		pred, err := comp.Compile(q.Where)
		if err != nil {
			return nil, err
		}
		spec.Pred = pred
		n.predTerms = len(conjuncts(q.Where))
	}

	// Group-by expressions: names come from aliases, then column names.
	groupNames := make([]string, len(q.GroupBy))
	groupOrds := make([]schema.Ordering, len(q.GroupBy))
	usedGroups := make(map[string]bool)
	for i, item := range q.GroupBy {
		if a.hasAggregate(item.Expr) {
			return nil, fmt.Errorf("aggregate in GROUP BY")
		}
		e, err := comp.Compile(item.Expr)
		if err != nil {
			return nil, err
		}
		gname, err := outName(item, i, usedGroups)
		if err != nil {
			return nil, fmt.Errorf("group-by: %w", err)
		}
		groupNames[i] = gname
		groupOrds[i] = imputeExpr(item.Expr, src.Schema, src.Binding)
		spec.GroupExprs = append(spec.GroupExprs, e)
	}

	// Pick the flush-driving ordered key (paper §2.1: "the group key must
	// contain at least one ordered attribute"). Preference: increasing,
	// then banded, then decreasing. Not enforced when absent — the user
	// can flush manually (§2.2) — but recorded as OrdGroup = -1.
	for i, ord := range groupOrds {
		switch {
		case ord.Increasing():
			spec.OrdGroup, spec.Band, spec.Desc = i, 0, false
		case ord.Kind == schema.OrderBandedIncreasing && spec.OrdGroup < 0:
			spec.OrdGroup, spec.Band, spec.Desc = i, ord.Band, false
		case ord.Decreasing() && spec.OrdGroup < 0:
			spec.OrdGroup, spec.Band, spec.Desc = i, 0, true
		}
		if ord.Increasing() {
			break
		}
	}

	// Collect aggregate calls from SELECT and HAVING; rewrite both into
	// the post-aggregation namespace [groups..., aggregates...].
	post := &schema.Schema{Name: "post$" + name, Kind: schema.KindStream}
	for i, gname := range groupNames {
		ord := groupOrds[i]
		// The flush discipline makes the ordered key's output ordering
		// clean: increasing when band 0, banded otherwise.
		switch {
		case i == spec.OrdGroup && spec.Band == 0 && !spec.Desc:
			ord = schema.Ordering{Kind: schema.OrderIncreasing}
		case i == spec.OrdGroup && spec.Band == 0 && spec.Desc:
			ord = schema.Ordering{Kind: schema.OrderDecreasing}
		case i == spec.OrdGroup:
			ord = schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: spec.Band}
		case ord.Kind == schema.OrderIncreasingInGroup:
			ord = schema.NoOrder
		default:
			// Non-flush ordered keys lose their global ordering: flushes
			// interleave groups.
			ord = schema.NoOrder
		}
		post.Cols = append(post.Cols, schema.Column{
			Name: gname, Type: spec.GroupExprs[i].Type(), Ordering: ord,
		})
	}

	aggKeys := make(map[string]int) // canonical call text -> agg slot
	var aggNames []string
	collect := func(e gsql.Expr) (gsql.Expr, error) {
		var walkErr error
		r := transform(e, func(x gsql.Expr) gsql.Expr {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !a.reg.IsAggregate(call.Name) || walkErr != nil {
				return nil
			}
			slot, err := a.addAggregate(spec, comp, call, aggKeys, &aggNames, post, name)
			if err != nil {
				walkErr = err
				return x
			}
			return &gsql.ColRef{Name: aggNames[slot], At: call.At}
		})
		return r, walkErr
	}

	// Rewrite select items: aggregate calls become post columns; group
	// aliases and group expressions become post columns; anything else
	// referencing raw input columns is an error.
	groupText := make(map[string]int)
	for i, item := range q.GroupBy {
		groupText[item.Expr.String()] = i
	}
	rewriteItem := func(e gsql.Expr) (gsql.Expr, error) {
		e2, err := collect(e)
		if err != nil {
			return nil, err
		}
		e3 := transform(e2, func(x gsql.Expr) gsql.Expr {
			if i, ok := groupText[x.String()]; ok {
				return &gsql.ColRef{Name: groupNames[i], At: x.Pos()}
			}
			if c, ok := x.(*gsql.ColRef); ok {
				for i, gname := range groupNames {
					if strings.EqualFold(c.Name, gname) {
						return &gsql.ColRef{Name: groupNames[i], At: c.At}
					}
				}
			}
			return nil
		})
		return e3, nil
	}

	postComp := &exec.Compiler{
		Reg:     a.reg,
		Params:  a.params,
		Resolve: exec.SchemaResolver(post, "post"),
		Handles: comp.Handles,
	}
	used := make(map[string]bool)
	out := &schema.Schema{Name: name, Kind: schema.KindStream}
	for i, item := range q.Select {
		re, err := rewriteItem(item.Expr)
		if err != nil {
			return nil, err
		}
		pe, err := postComp.Compile(re)
		if err != nil {
			return nil, fmt.Errorf("SELECT item %d must be built from group-by expressions and aggregates: %w", i+1, err)
		}
		colName, err := outName(item, i, used)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, schema.Column{
			Name: colName, Type: pe.Type(),
			Ordering: imputeExpr(re, post, "post"),
		})
		spec.PostSelect = append(spec.PostSelect, pe)
	}
	if q.Having != nil {
		rh, err := rewriteItem(q.Having)
		if err != nil {
			return nil, err
		}
		ph, err := postComp.Compile(rh)
		if err != nil {
			return nil, fmt.Errorf("HAVING must be built from group-by expressions and aggregates: %w", err)
		}
		if ph.Type() != schema.TBool {
			return nil, fmt.Errorf("HAVING is %s, not boolean", ph.Type())
		}
		spec.Having = ph
	}
	if len(spec.Aggs) == 0 {
		return nil, fmt.Errorf("GROUP BY without any aggregate; use SELECT DISTINCT semantics via count(*) if intended")
	}

	spec.Out = out
	n.Out = out
	n.aggSpec = spec
	n.handles = postComp.Handles
	if lfta {
		n.Kind = OpAgg
	}
	a.finishProtocolNode(n, q)
	_ = lfta
	return n, nil
}

// addAggregate registers one aggregate call in the spec, returning its
// slot. Identical calls share a slot.
func (a *analyzer) addAggregate(spec *exec.AggSpec, comp *exec.Compiler, call *gsql.FuncCall,
	keys map[string]int, names *[]string, post *schema.Schema, node string) (int, error) {

	canon := strings.ToLower(call.Name) + "(" + argsText(call.Args) + ")"
	if slot, ok := keys[canon]; ok {
		return slot, nil
	}
	agg, _ := a.reg.Aggregate(call.Name)
	inst := exec.AggInstance{Spec: agg}
	switch {
	case !agg.TakesArg:
		if len(call.Args) != 1 {
			return 0, fmt.Errorf("%s(*) takes exactly one argument", agg.Name)
		}
		if _, ok := call.Args[0].(*gsql.Star); !ok {
			// count(expr) counts non-discarded rows; treat like count(*).
			e, err := comp.Compile(call.Args[0])
			if err != nil {
				return 0, err
			}
			inst.Arg, inst.ArgType = e, e.Type()
		} else {
			inst.ArgType = schema.TNull
		}
	default:
		if len(agg.Params) == 0 && len(call.Args) != 1 {
			return 0, fmt.Errorf("%s takes exactly one argument", agg.Name)
		}
		if len(call.Args) < 1 || len(call.Args) > 1+len(agg.Params) {
			return 0, fmt.Errorf("%s takes between 1 and %d arguments, got %d",
				agg.Name, 1+len(agg.Params), len(call.Args))
		}
		if _, ok := call.Args[0].(*gsql.Star); ok {
			return 0, fmt.Errorf("%s(*) is not valid; give an argument", agg.Name)
		}
		e, err := comp.Compile(call.Args[0])
		if err != nil {
			return 0, err
		}
		if !e.Type().Numeric() && !agg.AllowAnyArg && agg.Name != "min" && agg.Name != "max" {
			return 0, fmt.Errorf("%s needs a numeric argument, got %s", agg.Name, e.Type())
		}
		inst.Arg, inst.ArgType = e, e.Type()
		// Trailing arguments are compile-time literal parameters (quantile
		// q, sketch eps/delta, heavy-hitter k); bind and validate them now
		// so a bad eps is a positioned compile error, not a runtime panic.
		given := make([]schema.Value, 0, len(call.Args)-1)
		for i, arg := range call.Args[1:] {
			c, ok := arg.(*gsql.Const)
			if !ok {
				return 0, &gsql.Error{Pos: arg.Pos(), Msg: fmt.Sprintf(
					"argument %d of %s must be a literal (aggregate parameters are fixed at compile time)",
					i+2, agg.Name)}
			}
			given = append(given, c.Val)
		}
		params, badIdx, err := agg.ResolveParams(given, a.opts.sketchOverrides())
		if err != nil {
			pos := call.Pos()
			if badIdx >= 0 && badIdx < len(call.Args)-1 {
				pos = call.Args[1+badIdx].Pos()
			}
			return 0, &gsql.Error{Pos: pos, Msg: err.Error()}
		}
		inst.Params = params
		a.resolveDemotion(&inst, agg)
	}
	slot := len(spec.Aggs)
	spec.Aggs = append(spec.Aggs, inst)
	keys[canon] = slot
	aggName := fmt.Sprintf("%s_%d", strings.ToLower(call.Name), slot)
	*names = append(*names, aggName)
	post.Cols = append(post.Cols, schema.Column{Name: aggName, Type: agg.Ret(inst.ArgType)})
	return slot, nil
}

// resolveDemotion binds an aggregate's approximate twin onto the instance
// when one is declared and compatible, so the executor can switch the call
// site to its sketched form under overload. The twin's extra parameters
// (eps/delta) resolve from defaults or the compiler's sketch overrides.
func (a *analyzer) resolveDemotion(inst *exec.AggInstance, agg *funcs.Aggregate) {
	if agg.Demote == "" {
		return
	}
	twin, ok := a.reg.Aggregate(agg.Demote)
	if !ok || twin.Ret(inst.ArgType) != agg.Ret(inst.ArgType) {
		return
	}
	tp, _, err := twin.ResolveParams(inst.Params, a.opts.sketchOverrides())
	if err != nil {
		return
	}
	inst.DemoteSpec, inst.DemoteParams = twin, tp
}

func argsText(args []gsql.Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}
