package exec

import (
	"fmt"
	"strings"

	"gigascope/internal/schema"
)

// SchemaResolver resolves column references against a single input schema.
// binding is the name/alias references may qualify columns with; an empty
// qualifier always resolves.
func SchemaResolver(s *schema.Schema, binding string) func(table, name string) (int, schema.Type, error) {
	return func(table, name string) (int, schema.Type, error) {
		if table != "" && !strings.EqualFold(table, binding) && !strings.EqualFold(table, s.Name) {
			return 0, schema.TNull, fmt.Errorf("unknown source %q (have %s)", table, binding)
		}
		i, c := s.Col(name)
		if i < 0 {
			return 0, schema.TNull, fmt.Errorf("unknown column %s in %s", name, s.Name)
		}
		return i, c.Type, nil
	}
}

// JoinResolver resolves references against the combined row of a join:
// left columns first, then right columns. Unqualified names must be
// unambiguous.
func JoinResolver(left, right *schema.Schema, lbind, rbind string) func(table, name string) (int, schema.Type, error) {
	return func(table, name string) (int, schema.Type, error) {
		matchL := table == "" || strings.EqualFold(table, lbind) || strings.EqualFold(table, left.Name)
		matchR := table == "" || strings.EqualFold(table, rbind) || strings.EqualFold(table, right.Name)
		li, lc := -1, (*schema.Column)(nil)
		ri, rc := -1, (*schema.Column)(nil)
		if matchL {
			li, lc = left.Col(name)
		}
		if matchR {
			ri, rc = right.Col(name)
		}
		switch {
		case li >= 0 && ri >= 0:
			return 0, schema.TNull, fmt.Errorf("ambiguous column %s (in both %s and %s)", name, lbind, rbind)
		case li >= 0:
			return li, lc.Type, nil
		case ri >= 0:
			return len(left.Cols) + ri, rc.Type, nil
		}
		if table != "" && !matchL && !matchR {
			return 0, schema.TNull, fmt.Errorf("unknown source %q (have %s, %s)", table, lbind, rbind)
		}
		return 0, schema.TNull, fmt.Errorf("unknown column %s", name)
	}
}
